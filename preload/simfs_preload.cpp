// libsimfs_preload — transparent POSIX access to a running DV daemon:
//
//   SIMFS_MOUNT_SOCKET=/run/simfs.sock SIMFS_POSIX_STORE=/data/store
//   LD_PRELOAD=$PWD/libsimfs_preload.so cat /simfs/ctx0/out_000041.dat
//
// Interposes the libc file API via dlsym(RTLD_NEXT). Paths under
// SIMFS_POSIX_PREFIX (default "/simfs") resolve against the daemon's
// synthesized namespace; everything else takes the passthrough fast path
// — exactly ONE prefix comparison for path calls, one bounds-checked
// atomic load for fd calls, then the real libc function (the <5% gate in
// bench/micro_posix.cpp pins this).
//
// SimFS open() is facade-faithful: it registers interest (attaching to a
// listing's vectored prefetch batch when one covers the file) and
// returns a placeholder fd immediately; the first read() blocks until
// the step is resident — transparently waiting out a re-simulation —
// then dup2()s the real store file over the placeholder so every later
// read/lseek/mmap-free consumer runs at native speed. close() of a
// never-read handle cancels the registration instead of leaking it.
//
// Known limits (documented in README): writes are EROFS, mmap of a
// not-yet-materialized fd is unsupported, fcntl(F_DUPFD) of a SimFS fd
// duplicates the placeholder without shim state, and fork()ed children
// share materialized fds but not pending ones.
#include "common/env.hpp"
#include "common/status.hpp"
#include "posix/path.hpp"
#include "posix/shim.hpp"
#include "posix/vfs_core.hpp"

#include <dirent.h>
#include <dlfcn.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdarg>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

using namespace simfs;
using namespace simfs::posix;

namespace {

template <typename Fn>
Fn realSym(const char* name) {
  return reinterpret_cast<Fn>(::dlsym(RTLD_NEXT, name));
}

int fail(int err) {
  errno = err;
  return -1;
}

int statusErrno(const Status& st) {
  switch (st.code()) {
    case StatusCode::kOk: return 0;
    case StatusCode::kNotFound: return ENOENT;
    case StatusCode::kInvalidArgument: return EINVAL;
    case StatusCode::kOutOfRange: return ENOENT;
    case StatusCode::kTimedOut: return ETIMEDOUT;
    case StatusCode::kCancelled: return EINTR;
    default: return EIO;
  }
}

/// Process-wide shim state, built lazily on the first interposed call.
/// The classifier is immutable after construction, so the fast path
/// reads it without synchronization; only the vfs (which dials sockets)
/// is created under a lock, on the first SimFS-path operation.
struct Shim {
  PathClassifier classifier;
  std::string socketPath;
  std::string storeRoot;
  FdTable fds;
  std::mutex vfsMutex;
  std::shared_ptr<PosixVfs> vfs;

  Shim()
      : classifier(env::getOr("SIMFS_POSIX_PREFIX", "/simfs")),
        socketPath(env::getOr("SIMFS_MOUNT_SOCKET", "")),
        storeRoot(env::getOr("SIMFS_POSIX_STORE", "")) {}

  PosixVfs* getVfs() {
    std::lock_guard lock(vfsMutex);
    if (vfs == nullptr) {
      if (socketPath.empty()) return nullptr;
      vfs = std::make_shared<PosixVfs>(PosixVfs::socketOptions(socketPath));
    }
    return vfs.get();
  }
};

Shim& shim() {
  static Shim* s = new Shim();  // leaked: interposers may run during exit
  return *s;
}

/// The ONE prefix comparison every path-taking call pays.
bool classify(const char* path, ParsedPath* out) {
  std::string_view rest;
  if (!shim().classifier.match(path, &rest)) return false;
  *out = parsePosixPath(rest);
  return true;
}

template <typename StatT>
void fillStat(StatT* st, bool dir, Bytes size) {
  std::memset(st, 0, sizeof(*st));
  st->st_mode = dir ? (S_IFDIR | 0555) : (S_IFREG | 0444);
  st->st_nlink = dir ? 2 : 1;
  st->st_uid = ::getuid();
  st->st_gid = ::getgid();
  st->st_size = static_cast<off_t>(size);
  st->st_blksize = 4096;
  st->st_blocks = static_cast<blkcnt_t>((size + 511) / 512);
}

void fillStatx(struct statx* stx, bool dir, Bytes size) {
  std::memset(stx, 0, sizeof(*stx));
  stx->stx_mask = STATX_BASIC_STATS;
  stx->stx_mode = dir ? (S_IFDIR | 0555) : (S_IFREG | 0444);
  stx->stx_nlink = dir ? 2 : 1;
  stx->stx_uid = ::getuid();
  stx->stx_gid = ::getgid();
  stx->stx_size = size;
  stx->stx_blksize = 4096;
  stx->stx_blocks = (size + 511) / 512;
}

int placeholderFd(int flags) {
  static const auto realOpen = realSym<int (*)(const char*, int, ...)>("open");
  return realOpen("/dev/null", O_RDONLY | (flags & O_CLOEXEC));
}

/// Opens a SimFS path: directories get a synthesized placeholder, files
/// register interest with the daemon (facade open: non-blocking, starts
/// re-simulation on a miss).
int simfsOpen(const ParsedPath& p, int flags) {
  if (p.kind == PathKind::kInvalid) return fail(ENOENT);
  if ((flags & O_ACCMODE) != O_RDONLY ||
      (flags & (O_CREAT | O_TRUNC | O_APPEND)) != 0) {
    return fail(EROFS);
  }
  PosixVfs* vfs = shim().getVfs();
  if (vfs == nullptr) return fail(ENOENT);
  if (p.kind != PathKind::kFile) {
    const auto attr = vfs->getattr(p);
    if (!attr) return fail(statusErrno(attr.status()));
    const int fd = placeholderFd(flags);
    if (fd < 0) return -1;
    FdEntry* e = shim().fds.acquireEntry();
    e->isDir = true;
    e->backingPath = std::string(p.context);  // "" for the root
    shim().fds.install(fd, e);
    return fd;
  }
  auto opened = vfs->open(std::string(p.context), std::string(p.file));
  if (!opened) return fail(statusErrno(opened.status()));
  const int fd = placeholderFd(flags);
  if (fd < 0) {
    vfs->close(opened->id);
    return -1;
  }
  FdEntry* e = shim().fds.acquireEntry();
  e->vfsOpenId = opened->id;
  e->size = opened->size;
  e->openFlags = flags;
  e->backingPath = shim().storeRoot.empty()
                       ? opened->storeName
                       : shim().storeRoot + "/" + opened->storeName;
  shim().fds.install(fd, e);
  return fd;
}

/// First-read path: wait out the (possible) re-simulation, then splice
/// the real store file over the placeholder fd. Returns 0 or an errno.
int materialize(int fd, FdEntry* e) {
  static const auto realOpen = realSym<int (*)(const char*, int, ...)>("open");
  static const auto realClose = realSym<int (*)(int)>("close");
  static const auto realLseek =
      realSym<off_t (*)(int, off_t, int)>("lseek");
  // NOT ::dup2 — that resolves to our own interposer, which would tear
  // down the very entry being materialized when it handles `fd`.
  static const auto realDup2 = realSym<int (*)(int, int)>("dup2");
  std::lock_guard lock(e->materialize);
  if (e->state.load(std::memory_order_acquire) == FdEntry::kReady) return 0;
  e->state.store(FdEntry::kMaterializing, std::memory_order_relaxed);
  PosixVfs* vfs = shim().getVfs();
  if (vfs == nullptr) {
    e->state.store(FdEntry::kPending, std::memory_order_relaxed);
    return EIO;
  }
  if (const Status st = vfs->waitReady(e->vfsOpenId); !st.isOk()) {
    e->state.store(FdEntry::kPending, std::memory_order_relaxed);
    return statusErrno(st);
  }
  const int backing = realOpen(e->backingPath.c_str(), O_RDONLY | O_CLOEXEC);
  if (backing < 0) {
    e->state.store(FdEntry::kPending, std::memory_order_relaxed);
    return EIO;
  }
  if (e->offset != 0) {
    (void)realLseek(backing, static_cast<off_t>(e->offset), SEEK_SET);
  }
  if (realDup2(backing, fd) < 0) {
    realClose(backing);
    e->state.store(FdEntry::kPending, std::memory_order_relaxed);
    return EIO;
  }
  realClose(backing);
  if ((e->openFlags & O_CLOEXEC) != 0) {
    (void)::fcntl(fd, F_SETFD, FD_CLOEXEC);
  }
  e->state.store(FdEntry::kReady, std::memory_order_release);
  return 0;
}

int simfsStatPath(const ParsedPath& p, struct stat* st) {
  if (p.kind == PathKind::kInvalid) return fail(ENOENT);
  PosixVfs* vfs = shim().getVfs();
  if (vfs == nullptr) return fail(ENOENT);
  const auto attr = vfs->getattr(p);
  if (!attr) return fail(statusErrno(attr.status()));
  fillStat(st, attr->dir, attr->size);
  return 0;
}

int simfsStatPath64(const ParsedPath& p, struct stat64* st) {
  if (p.kind == PathKind::kInvalid) return fail(ENOENT);
  PosixVfs* vfs = shim().getVfs();
  if (vfs == nullptr) return fail(ENOENT);
  const auto attr = vfs->getattr(p);
  if (!attr) return fail(statusErrno(attr.status()));
  fillStat(st, attr->dir, attr->size);
  return 0;
}

/// Resolves `name` relative to a SimFS directory placeholder fd (whose
/// entry stores its context name; "" for the root).
ParsedPath childOf(const FdEntry* e, const char* name, std::string* hold) {
  if (e->backingPath.empty()) {
    *hold = name;
  } else {
    *hold = e->backingPath + "/" + name;
  }
  return parsePosixPath(*hold);
}

// ---------------------------------------------------------------- opendir

constexpr std::uint64_t kShimDirMagic = 0x53696D4644495231ull;  // "SimFDIR1"

/// Fake DIR handle; `magic` MUST stay the first member — readdir() tells
/// ours from glibc's by reading the first 8 bytes.
struct ShimDir {
  std::uint64_t magic = kShimDirMagic;
  bool rootListing = false;  ///< entries are contexts (DT_DIR) not steps
  int placeholderFd = -1;    ///< backs dirfd()/fstatat()
  std::vector<std::string> names;
  std::size_t next = 0;
  struct dirent ent;
  struct dirent64 ent64;
};

bool isShimDir(DIR* dirp) {
  if (dirp == nullptr) return false;
  std::uint64_t magic;
  std::memcpy(&magic, dirp, sizeof(magic));
  return magic == kShimDirMagic;
}

DIR* simfsOpendir(const ParsedPath& p) {
  if (p.kind == PathKind::kFile) {
    errno = ENOTDIR;
    return nullptr;
  }
  if (p.kind == PathKind::kInvalid) {
    errno = ENOENT;
    return nullptr;
  }
  PosixVfs* vfs = shim().getVfs();
  if (vfs == nullptr) {
    errno = ENOENT;
    return nullptr;
  }
  auto dir = std::make_unique<ShimDir>();
  dir->names.push_back(".");
  dir->names.push_back("..");
  if (p.kind == PathKind::kRoot) {
    dir->rootListing = true;
    auto names = vfs->listContexts();
    if (!names) {
      errno = statusErrno(names.status());
      return nullptr;
    }
    for (auto& n : *names) dir->names.push_back(std::move(n));
  } else {
    // Page the synthesized listing; the offset-0 page also fires the
    // vectored prefetch batch the subsequent opens attach to.
    const std::string ctx(p.context);
    std::int64_t off = 0;
    for (;;) {
      auto page = vfs->readdir(ctx, off, 256);
      if (!page) {
        errno = statusErrno(page.status());
        return nullptr;
      }
      off += static_cast<std::int64_t>(page->names.size());
      for (auto& n : page->names) dir->names.push_back(std::move(n));
      if (!page->more) break;
    }
  }
  const int fd = placeholderFd(O_CLOEXEC);
  if (fd >= 0) {
    FdEntry* e = shim().fds.acquireEntry();
    e->isDir = true;
    e->backingPath = std::string(p.context);
    shim().fds.install(fd, e);
  }
  dir->placeholderFd = fd;
  return reinterpret_cast<DIR*>(dir.release());
}

template <typename DirentT>
DirentT* fillDirent(ShimDir* d, DirentT* ent) {
  if (d->next >= d->names.size()) return nullptr;
  const std::string& name = d->names[d->next++];
  std::memset(ent, 0, sizeof(*ent));
  ent->d_ino = d->next;  // 1-based; readers only require non-zero
  ent->d_off = static_cast<off_t>(d->next);
  ent->d_reclen = sizeof(*ent);
  const bool isDot = name[0] == '.';
  ent->d_type = (d->rootListing || isDot) ? DT_DIR : DT_REG;
  std::strncpy(ent->d_name, name.c_str(), sizeof(ent->d_name) - 1);
  return ent;
}

}  // namespace

// ------------------------------------------------------------ interposers

extern "C" {

int open(const char* path, int flags, ...) {
  static const auto realOpen = realSym<int (*)(const char*, int, ...)>("open");
  mode_t mode = 0;
  if ((flags & O_CREAT) != 0 || (flags & O_TMPFILE) == O_TMPFILE) {
    va_list ap;
    va_start(ap, flags);
    mode = va_arg(ap, mode_t);
    va_end(ap);
  }
  ParsedPath p;
  if (!classify(path, &p)) return realOpen(path, flags, mode);
  return simfsOpen(p, flags);
}

int open64(const char* path, int flags, ...) {
  static const auto realOpen64 =
      realSym<int (*)(const char*, int, ...)>("open64");
  mode_t mode = 0;
  if ((flags & O_CREAT) != 0 || (flags & O_TMPFILE) == O_TMPFILE) {
    va_list ap;
    va_start(ap, flags);
    mode = va_arg(ap, mode_t);
    va_end(ap);
  }
  ParsedPath p;
  if (!classify(path, &p)) return realOpen64(path, flags, mode);
  return simfsOpen(p, flags);
}

int openat(int dirfd, const char* path, int flags, ...) {
  static const auto realOpenat =
      realSym<int (*)(int, const char*, int, ...)>("openat");
  mode_t mode = 0;
  if ((flags & O_CREAT) != 0 || (flags & O_TMPFILE) == O_TMPFILE) {
    va_list ap;
    va_start(ap, flags);
    mode = va_arg(ap, mode_t);
    va_end(ap);
  }
  ParsedPath p;
  if (path != nullptr && path[0] == '/' && classify(path, &p)) {
    return simfsOpen(p, flags);
  }
  if (const FdEntry* e = shim().fds.get(dirfd);
      e != nullptr && e->isDir && path != nullptr) {
    std::string hold;
    return simfsOpen(childOf(e, path, &hold), flags);
  }
  return realOpenat(dirfd, path, flags, mode);
}

int openat64(int dirfd, const char* path, int flags, ...) {
  static const auto realOpenat64 =
      realSym<int (*)(int, const char*, int, ...)>("openat64");
  mode_t mode = 0;
  if ((flags & O_CREAT) != 0 || (flags & O_TMPFILE) == O_TMPFILE) {
    va_list ap;
    va_start(ap, flags);
    mode = va_arg(ap, mode_t);
    va_end(ap);
  }
  ParsedPath p;
  if (path != nullptr && path[0] == '/' && classify(path, &p)) {
    return simfsOpen(p, flags);
  }
  if (const FdEntry* e = shim().fds.get(dirfd);
      e != nullptr && e->isDir && path != nullptr) {
    std::string hold;
    return simfsOpen(childOf(e, path, &hold), flags);
  }
  return realOpenat64(dirfd, path, flags, mode);
}

ssize_t read(int fd, void* buf, size_t count) {
  static const auto realRead =
      realSym<ssize_t (*)(int, void*, size_t)>("read");
  FdEntry* e = shim().fds.get(fd);
  if (e == nullptr) return realRead(fd, buf, count);
  if (e->isDir) return fail(EISDIR);
  if (e->state.load(std::memory_order_acquire) != FdEntry::kReady) {
    if (const int err = materialize(fd, e); err != 0) return fail(err);
  }
  return realRead(fd, buf, count);
}

ssize_t pread(int fd, void* buf, size_t count, off_t offset) {
  static const auto realPread =
      realSym<ssize_t (*)(int, void*, size_t, off_t)>("pread");
  FdEntry* e = shim().fds.get(fd);
  if (e == nullptr) return realPread(fd, buf, count, offset);
  if (e->isDir) return fail(EISDIR);
  if (e->state.load(std::memory_order_acquire) != FdEntry::kReady) {
    if (const int err = materialize(fd, e); err != 0) return fail(err);
  }
  return realPread(fd, buf, count, offset);
}

ssize_t pread64(int fd, void* buf, size_t count, off64_t offset) {
  static const auto realPread64 =
      realSym<ssize_t (*)(int, void*, size_t, off64_t)>("pread64");
  FdEntry* e = shim().fds.get(fd);
  if (e == nullptr) return realPread64(fd, buf, count, offset);
  if (e->isDir) return fail(EISDIR);
  if (e->state.load(std::memory_order_acquire) != FdEntry::kReady) {
    if (const int err = materialize(fd, e); err != 0) return fail(err);
  }
  return realPread64(fd, buf, count, offset);
}

off_t lseek(int fd, off_t offset, int whence) {
  static const auto realLseek =
      realSym<off_t (*)(int, off_t, int)>("lseek");
  FdEntry* e = shim().fds.get(fd);
  if (e == nullptr || e->isDir ||
      e->state.load(std::memory_order_acquire) == FdEntry::kReady) {
    return realLseek(fd, offset, whence);
  }
  // Pending SimFS fd: the placeholder has no meaningful offset, so track
  // it here; materialization seeks the real file to it before splicing.
  std::lock_guard lock(e->materialize);
  if (e->state.load(std::memory_order_acquire) == FdEntry::kReady) {
    return realLseek(fd, offset, whence);
  }
  std::int64_t base = 0;
  switch (whence) {
    case SEEK_SET: base = 0; break;
    case SEEK_CUR: base = e->offset; break;
    case SEEK_END: base = static_cast<std::int64_t>(e->size); break;
    default: return fail(EINVAL);
  }
  const std::int64_t target = base + static_cast<std::int64_t>(offset);
  if (target < 0) return fail(EINVAL);
  e->offset = target;
  return static_cast<off_t>(target);
}

off64_t lseek64(int fd, off64_t offset, int whence) {
  return lseek(fd, static_cast<off_t>(offset), whence);
}

int close(int fd) {
  static const auto realClose = realSym<int (*)(int)>("close");
  FdEntry* e = shim().fds.take(fd);
  if (e != nullptr) {
    if (!e->isDir) {
      // Unread handles cancel their registration daemon-side; read ones
      // deref. Either way nothing stays pinned.
      if (PosixVfs* vfs = shim().getVfs()) vfs->close(e->vfsOpenId);
    }
    shim().fds.recycle(e);
  }
  return realClose(fd);
}

// Duplicating a pending SimFS fd materializes it first (waiting out any
// re-simulation), so the duplicate is a plain kernel fd sharing the real
// open file description — dd's open + dup2-onto-stdin + close(orig)
// pattern then works natively. The original fd keeps the table entry
// (and the vfs deref on its close); the duplicate needs none.
int dup(int oldfd) {
  static const auto realDup = realSym<int (*)(int)>("dup");
  FdEntry* e = shim().fds.get(oldfd);
  if (e != nullptr && !e->isDir &&
      e->state.load(std::memory_order_acquire) != FdEntry::kReady) {
    if (const int err = materialize(oldfd, e); err != 0) return fail(err);
  }
  return realDup(oldfd);
}

int dup2(int oldfd, int newfd) {
  static const auto realDup2 = realSym<int (*)(int, int)>("dup2");
  FdEntry* e = shim().fds.get(oldfd);
  if (e != nullptr && !e->isDir && oldfd != newfd &&
      e->state.load(std::memory_order_acquire) != FdEntry::kReady) {
    if (const int err = materialize(oldfd, e); err != 0) return fail(err);
  }
  if (oldfd != newfd) {
    // dup2 implicitly closes newfd: release any SimFS state it carried.
    FdEntry* clobbered = shim().fds.take(newfd);
    if (clobbered != nullptr) {
      if (!clobbered->isDir) {
        if (PosixVfs* vfs = shim().getVfs()) vfs->close(clobbered->vfsOpenId);
      }
      shim().fds.recycle(clobbered);
    }
  }
  return realDup2(oldfd, newfd);
}

int dup3(int oldfd, int newfd, int flags) {
  static const auto realDup3 = realSym<int (*)(int, int, int)>("dup3");
  FdEntry* e = shim().fds.get(oldfd);
  if (e != nullptr && !e->isDir &&
      e->state.load(std::memory_order_acquire) != FdEntry::kReady) {
    if (const int err = materialize(oldfd, e); err != 0) return fail(err);
  }
  if (oldfd != newfd) {
    FdEntry* clobbered = shim().fds.take(newfd);
    if (clobbered != nullptr) {
      if (!clobbered->isDir) {
        if (PosixVfs* vfs = shim().getVfs()) vfs->close(clobbered->vfsOpenId);
      }
      shim().fds.recycle(clobbered);
    }
  }
  return realDup3(oldfd, newfd, flags);
}

int fstat(int fd, struct stat* st) {
  static const auto realFstat = realSym<int (*)(int, struct stat*)>("fstat");
  FdEntry* e = shim().fds.get(fd);
  if (e == nullptr) return realFstat(fd, st);
  if (!e->isDir && e->state.load(std::memory_order_acquire) == FdEntry::kReady) {
    return realFstat(fd, st);
  }
  fillStat(st, e->isDir, e->size);
  return 0;
}

int fstat64(int fd, struct stat64* st) {
  static const auto realFstat64 =
      realSym<int (*)(int, struct stat64*)>("fstat64");
  FdEntry* e = shim().fds.get(fd);
  if (e == nullptr) return realFstat64(fd, st);
  if (!e->isDir && e->state.load(std::memory_order_acquire) == FdEntry::kReady) {
    return realFstat64(fd, st);
  }
  fillStat(st, e->isDir, e->size);
  return 0;
}

int stat(const char* path, struct stat* st) {
  static const auto realStat =
      realSym<int (*)(const char*, struct stat*)>("stat");
  ParsedPath p;
  if (!classify(path, &p)) return realStat(path, st);
  return simfsStatPath(p, st);
}

int stat64(const char* path, struct stat64* st) {
  static const auto realStat64 =
      realSym<int (*)(const char*, struct stat64*)>("stat64");
  ParsedPath p;
  if (!classify(path, &p)) return realStat64(path, st);
  return simfsStatPath64(p, st);
}

int lstat(const char* path, struct stat* st) {
  static const auto realLstat =
      realSym<int (*)(const char*, struct stat*)>("lstat");
  ParsedPath p;
  if (!classify(path, &p)) return realLstat(path, st);
  return simfsStatPath(p, st);  // no symlinks in the synthesized tree
}

int lstat64(const char* path, struct stat64* st) {
  static const auto realLstat64 =
      realSym<int (*)(const char*, struct stat64*)>("lstat64");
  ParsedPath p;
  if (!classify(path, &p)) return realLstat64(path, st);
  return simfsStatPath64(p, st);
}

int fstatat(int dirfd, const char* path, struct stat* st, int flags) {
  static const auto realFstatat =
      realSym<int (*)(int, const char*, struct stat*, int)>("fstatat");
  ParsedPath p;
  if (path != nullptr && path[0] == '/' && classify(path, &p)) {
    return simfsStatPath(p, st);
  }
  if (const FdEntry* e = shim().fds.get(dirfd);
      e != nullptr && e->isDir && path != nullptr && path[0] != '\0') {
    std::string hold;
    return simfsStatPath(childOf(e, path, &hold), st);
  }
  return realFstatat(dirfd, path, st, flags);
}

int fstatat64(int dirfd, const char* path, struct stat64* st, int flags) {
  static const auto realFstatat64 =
      realSym<int (*)(int, const char*, struct stat64*, int)>("fstatat64");
  ParsedPath p;
  if (path != nullptr && path[0] == '/' && classify(path, &p)) {
    return simfsStatPath64(p, st);
  }
  if (const FdEntry* e = shim().fds.get(dirfd);
      e != nullptr && e->isDir && path != nullptr && path[0] != '\0') {
    std::string hold;
    return simfsStatPath64(childOf(e, path, &hold), st);
  }
  return realFstatat64(dirfd, path, st, flags);
}

int statx(int dirfd, const char* path, int flags, unsigned int mask,
          struct statx* stx) {
  static const auto realStatx = realSym<int (*)(
      int, const char*, int, unsigned int, struct statx*)>("statx");
  ParsedPath p;
  bool ours = false;
  std::string hold;
  if (path != nullptr && path[0] == '/' && classify(path, &p)) {
    ours = true;
  } else if (const FdEntry* e = shim().fds.get(dirfd);
             e != nullptr && e->isDir && path != nullptr &&
             path[0] != '\0') {
    p = childOf(e, path, &hold);
    ours = true;
  }
  if (!ours) return realStatx(dirfd, path, flags, mask, stx);
  if (p.kind == PathKind::kInvalid) return fail(ENOENT);
  PosixVfs* vfs = shim().getVfs();
  if (vfs == nullptr) return fail(ENOENT);
  const auto attr = vfs->getattr(p);
  if (!attr) return fail(statusErrno(attr.status()));
  fillStatx(stx, attr->dir, attr->size);
  return 0;
}

int access(const char* path, int mode) {
  static const auto realAccess = realSym<int (*)(const char*, int)>("access");
  ParsedPath p;
  if (!classify(path, &p)) return realAccess(path, mode);
  if (p.kind == PathKind::kInvalid) return fail(ENOENT);
  if ((mode & W_OK) != 0) return fail(EROFS);
  PosixVfs* vfs = shim().getVfs();
  if (vfs == nullptr) return fail(ENOENT);
  const auto attr = vfs->getattr(p);
  if (!attr) return fail(statusErrno(attr.status()));
  return 0;
}

DIR* opendir(const char* path) {
  static const auto realOpendir = realSym<DIR* (*)(const char*)>("opendir");
  ParsedPath p;
  if (!classify(path, &p)) return realOpendir(path);
  return simfsOpendir(p);
}

struct dirent* readdir(DIR* dirp) {
  static const auto realReaddir = realSym<struct dirent* (*)(DIR*)>("readdir");
  if (!isShimDir(dirp)) return realReaddir(dirp);
  ShimDir* d = reinterpret_cast<ShimDir*>(dirp);
  return fillDirent(d, &d->ent);
}

struct dirent64* readdir64(DIR* dirp) {
  static const auto realReaddir64 =
      realSym<struct dirent64* (*)(DIR*)>("readdir64");
  if (!isShimDir(dirp)) return realReaddir64(dirp);
  ShimDir* d = reinterpret_cast<ShimDir*>(dirp);
  return fillDirent(d, &d->ent64);
}

void rewinddir(DIR* dirp) {
  static const auto realRewinddir = realSym<void (*)(DIR*)>("rewinddir");
  if (!isShimDir(dirp)) {
    realRewinddir(dirp);
    return;
  }
  reinterpret_cast<ShimDir*>(dirp)->next = 0;
}

int dirfd(DIR* dirp) {
  static const auto realDirfd = realSym<int (*)(DIR*)>("dirfd");
  if (!isShimDir(dirp)) return realDirfd(dirp);
  const int fd = reinterpret_cast<ShimDir*>(dirp)->placeholderFd;
  return fd >= 0 ? fd : fail(EINVAL);
}

int closedir(DIR* dirp) {
  static const auto realClosedir = realSym<int (*)(DIR*)>("closedir");
  if (!isShimDir(dirp)) return realClosedir(dirp);
  ShimDir* d = reinterpret_cast<ShimDir*>(dirp);
  if (d->placeholderFd >= 0) close(d->placeholderFd);  // our interposer
  delete d;
  return 0;
}

// Mutations on SimFS paths answer EROFS before any syscall is spent.

int unlink(const char* path) {
  static const auto realUnlink = realSym<int (*)(const char*)>("unlink");
  ParsedPath p;
  if (!classify(path, &p)) return realUnlink(path);
  return fail(EROFS);
}

int mkdir(const char* path, mode_t mode) {
  static const auto realMkdir =
      realSym<int (*)(const char*, mode_t)>("mkdir");
  ParsedPath p;
  if (!classify(path, &p)) return realMkdir(path, mode);
  return fail(EROFS);
}

int rmdir(const char* path) {
  static const auto realRmdir = realSym<int (*)(const char*)>("rmdir");
  ParsedPath p;
  if (!classify(path, &p)) return realRmdir(path);
  return fail(EROFS);
}

int rename(const char* from, const char* to) {
  static const auto realRename =
      realSym<int (*)(const char*, const char*)>("rename");
  ParsedPath p;
  if (!classify(from, &p) && !classify(to, &p)) return realRename(from, to);
  return fail(EROFS);
}

int truncate(const char* path, off_t length) {
  static const auto realTruncate =
      realSym<int (*)(const char*, off_t)>("truncate");
  ParsedPath p;
  if (!classify(path, &p)) return realTruncate(path, length);
  return fail(EROFS);
}

}  // extern "C"
