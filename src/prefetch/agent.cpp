#include "prefetch/agent.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace simfs::prefetch {

namespace {
/// Below this, an estimate counts as "unknown / infinitely fast".
constexpr double kEps = 1e-9;
}  // namespace

PrefetchAgent::PrefetchAgent(const simmodel::ContextConfig& config)
    : config_(config),
      tauCli_(config.emaSmoothing),
      alphaObs_(config.emaSmoothing),
      tauSimObs_(config.emaSmoothing) {}

double PrefetchAgent::alphaEstimate() const noexcept {
  if (alphaObs_.primed()) return alphaObs_.value();
  return static_cast<double>(config_.perf.at(level_).alphaSim);
}

double PrefetchAgent::tauSimEstimate() const noexcept {
  if (tauSimObs_.primed()) return tauSimObs_.value();
  return static_cast<double>(config_.perf.at(level_).tauSim);
}

void PrefetchAgent::observeRestartLatency(VDuration alpha) {
  alphaObs_.observe(static_cast<double>(alpha));
}

void PrefetchAgent::observeTauSim(VDuration tau) {
  tauSimObs_.observe(static_cast<double>(tau));
}

void PrefetchAgent::reset() {
  hasLast_ = false;
  direction_ = Direction::kNone;
  stride_ = 1;
  consec_ = 0;
  tauCli_.reset();
  rampS_ = 1;
  hasCoverage_ = false;
  prefetchedSteps_.clear();
  // alphaObs_/tauSimObs_ survive: they describe the system, not the client.
}

std::int64_t PrefetchAgent::maskingDistance() const {
  const double k = static_cast<double>(stride_);
  const double perStep = std::max(k * tauSimEstimate(), tauCli_.value());
  if (perStep <= kEps) return 0;
  const double alpha = alphaEstimate();
  return static_cast<std::int64_t>(std::ceil(alpha / perStep)) * stride_;
}

std::int64_t PrefetchAgent::resimLength() const {
  const auto& geom = config_.geometry;
  const double k = static_cast<double>(stride_);
  const double tauSim = tauSimEstimate();
  const double tauCli = tauCli_.value();
  const double alpha = alphaEstimate();

  if (direction_ == Direction::kBackward) {
    // Sec. IV-B2: analysis slower than the simulation -> long enough that
    // consuming n steps covers the next re-simulation end to end.
    const double slack = tauCli - k * tauSim;
    if (tauCli_.primed() && slack > kEps) {
      const auto n = static_cast<std::int64_t>(std::ceil(k * alpha / slack));
      return geom.roundUpToRestartMultiple(n);
    }
    // Analysis faster: favour small n and scale with parallel sims
    // (the paper's s/n trade-off; n is one restart interval).
    return geom.stepsPerRestartInterval();
  }

  // Forward (Sec. IV-B1a): n = R(ceil(alpha/max(k tau_sim, tau_cli)) + 2)k
  // + delta_r/delta_d), rounded up to a restart-interval multiple.
  const double perStep = std::max(k * tauSim, tauCli);
  std::int64_t waitSteps = 0;
  if (perStep > kEps) {
    waitSteps = static_cast<std::int64_t>(std::ceil(alpha / perStep));
  }
  const std::int64_t base =
      (waitSteps + 2) * stride_ + geom.stepsPerRestartInterval();
  return geom.roundUpToRestartMultiple(base);
}

int PrefetchAgent::targetParallelSims() const {
  if (!config_.bandwidthMatchingEnabled) return 1;  // masking only (Fig. 8)
  const double k = static_cast<double>(stride_);
  const double tauSim = tauSimEstimate();
  const double tauCli = tauCli_.value();
  if (!tauCli_.primed() || tauCli <= kEps) {
    // Client speed unknown or effectively infinite: use every slot.
    return config_.sMax;
  }
  double s = 1.0;
  if (direction_ == Direction::kBackward) {
    const double n = static_cast<double>(resimLength());
    s = std::ceil(k * alphaEstimate() / (n * tauCli) + k * tauSim / tauCli);
  } else {
    s = std::ceil(k * tauSim / tauCli);  // s_opt
  }
  return static_cast<int>(std::clamp(s, 1.0, static_cast<double>(config_.sMax)));
}

void PrefetchAgent::updateDetection(StepIndex step, VTime now,
                                    AgentActions& actions) {
  if (!hasLast_) {
    hasLast_ = true;
    lastStep_ = step;
    lastTime_ = now;
    return;
  }
  const std::int64_t diff = step - lastStep_;
  if (diff == 0) {  // repeated access: refresh time only
    lastTime_ = now;
    return;
  }
  const Direction dir = diff > 0 ? Direction::kForward : Direction::kBackward;
  const std::int64_t k = std::llabs(diff);
  if (dir == direction_ && k == stride_) {
    ++consec_;
  } else {
    // Direction and/or stride changed: the agent resets itself
    // (Sec. IV-B) and the DV may kill now-useless prefetches (Sec. IV-C).
    // Establishing the *initial* trajectory is not a change: coverage
    // already registered for the demand job must survive it.
    if (direction_ != Direction::kNone) {
      actions.trajectoryAbandoned = true;
      tauCli_.reset();
      rampS_ = 1;
      hasCoverage_ = false;
      prefetchedSteps_.clear();
    }
    direction_ = dir;
    stride_ = k;
    consec_ = 1;  // this pair already is one k-strided step
  }
  lastStep_ = step;
  lastTime_ = now;
}

void PrefetchAgent::maybeRaiseLevel() {
  // Strategy (1): raise the parallelism level while the analysis outpaces
  // the simulation and more parallelism still helps.
  if (!tauCli_.primed()) return;
  const double k = static_cast<double>(stride_);
  if (tauCli_.value() < k * tauSimEstimate() &&
      config_.perf.levelImproves(level_)) {
    ++level_;
  }
}

void PrefetchAgent::planLaunches(StepIndex step, AgentActions& actions) {
  if (!config_.prefetchEnabled) return;
  if (direction_ == Direction::kNone || !patternDetected()) return;
  if (!hasCoverage_) return;  // wait until the DV reports the demand job

  const std::int64_t L = maskingDistance();
  const std::int64_t n = resimLength();
  const auto maxStep = config_.geometry.numTimesteps() > 0
                           ? config_.geometry.numOutputSteps() - 1
                           : std::numeric_limits<StepIndex>::max() / 4;

  int s = targetParallelSims();
  if (config_.doublingRampUp) {
    s = std::min(s, rampS_);
  }

  // Per-simulation block length. With a single simulation it must be the
  // full masking length n; with parallel simulations the paper stacks
  // short jobs (Figs. 8-9 show delta_r/delta_d-sized sims), which keeps
  // the serially-produced block ahead of the analysis short — but the
  // whole batch must still cover the masking length, so each block is at
  // least n/s, rounded up to restart intervals (high restart latencies
  // need deep batches, Sec. IV-C1).
  const std::int64_t blockLen =
      s > 1 ? config_.geometry.roundUpToRestartMultiple((n + s - 1) / s) : n;

  if (direction_ == Direction::kForward) {
    const std::int64_t remaining = coveredHi_ - step;
    if (remaining > L) return;
    StepIndex next = coveredHi_ + 1;
    for (int j = 0; j < s && next <= maxStep; ++j) {
      LaunchRequest req;
      req.startStep = next;
      req.stopStep = std::min<StepIndex>(next + blockLen - 1, maxStep);
      req.parallelismLevel = level_;
      actions.launches.push_back(req);
      next = req.stopStep + 1;
    }
  } else {
    const std::int64_t remaining = step - coveredLo_;
    if (remaining > L) return;
    StepIndex stop = coveredLo_ - 1;
    for (int j = 0; j < s && stop >= 0; ++j) {
      LaunchRequest req;
      req.stopStep = stop;
      req.startStep = std::max<StepIndex>(stop - blockLen + 1, 0);
      req.parallelismLevel = level_;
      actions.launches.push_back(req);
      stop = req.startStep - 1;
    }
  }
  if (!actions.launches.empty() && config_.doublingRampUp) {
    rampS_ = std::min(rampS_ * 2, config_.sMax);
  }
}

AgentActions PrefetchAgent::onAccess(StepIndex step, VTime now, bool hit,
                                     bool servedBySim) {
  AgentActions actions;

  // Pollution check (Sec. IV-C): a step this agent prefetched is gone.
  const auto pf = prefetchedSteps_.find(step);
  if (pf != prefetchedSteps_.end()) {
    prefetchedSteps_.erase(pf);
    if (!hit && !servedBySim) actions.pollutionDetected = true;
  }

  // tau_cli can only be measured between back-to-back unstalled accesses;
  // a stalled access measures the simulation, not the client.
  const bool canMeasure = hit && lastWasHit_ && hasLast_;
  const VTime prevTime = lastTime_;
  const StepIndex prevStep = lastStep_;

  updateDetection(step, now, actions);

  if (canMeasure && step != prevStep && direction_ != Direction::kNone &&
      std::llabs(step - prevStep) == stride_) {
    tauCli_.observe(static_cast<double>(now - prevTime));
  }
  lastWasHit_ = hit;

  maybeRaiseLevel();
  planLaunches(step, actions);
  return actions;
}

void PrefetchAgent::onJobLaunched(StepIndex startStep, StepIndex stopStep,
                                  bool prefetched) {
  if (!hasCoverage_) {
    coveredLo_ = startStep;
    coveredHi_ = stopStep;
    hasCoverage_ = true;
  } else {
    coveredLo_ = std::min(coveredLo_, startStep);
    coveredHi_ = std::max(coveredHi_, stopStep);
  }
  if (prefetched) {
    for (StepIndex s = startStep; s <= stopStep; ++s) {
      prefetchedSteps_.insert(s);
    }
  }
}

}  // namespace simfs::prefetch
