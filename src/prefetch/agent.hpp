// Prefetch agents (Sec. IV "Optimizing Simulation Data Accesses").
//
// SimFS associates one prefetch agent with each analysis application. The
// agent monitors the access pattern and, once a forward or backward
// trajectory with stride k is detected (two consecutive k-strided
// accesses), prefetches re-simulations so that
//   (a) restart latencies are masked (Sec. IV-B1a), and
//   (b) the aggregate simulation bandwidth matches the analysis ingestion
//       bandwidth (Sec. IV-B1b), by first raising the simulation
//       parallelism level (strategy 1) and then launching multiple
//       re-simulations in parallel (strategy 2).
//
// Key quantities (forward, Sec. IV-B1a):
//   per-step processing time  = max(k*tau_sim, tau_cli)
//   re-simulation length      n >= ceil(alpha / max(...) + 2) * k,
//                             rounded up to a restart-interval multiple
//   prefetch (trigger) step   = d_i + n - ceil(alpha / max(...)) * k
//   parallel simulations      s_opt = ceil(k * tau_sim / tau_cli)
// Backward (Sec. IV-B2), analysis slower than simulation:
//   n = k * alpha / (tau_cli - k * tau_sim), rounded up to a restart step
// Backward, analysis faster:
//   s = k * alpha / (n * tau_cli) + k * tau_sim / tau_cli
//
// Restart latencies are tracked with an exponential moving average whose
// smoothing factor is a simulation-context parameter (Sec. IV-C1c).
// Cache pollution (an agent-prefetched step evicted before its access,
// Sec. IV-C) is flagged so the DV can reset all active agents.
#pragma once

#include "common/stats.hpp"
#include "common/types.hpp"
#include "simmodel/context.hpp"

#include <optional>
#include <unordered_set>
#include <vector>

namespace simfs::prefetch {

/// Trajectory direction.
enum class Direction { kNone, kForward, kBackward };

/// One re-simulation the agent wants launched.
struct LaunchRequest {
  StepIndex startStep = 0;  ///< first output step to produce
  StepIndex stopStep = 0;   ///< last output step to produce (inclusive)
  int parallelismLevel = 0;
};

/// What the DV should do after an access was fed to the agent.
struct AgentActions {
  std::vector<LaunchRequest> launches;
  /// An agent-prefetched step was found missing: produced and evicted
  /// before use. The DV resets every active prefetch agent (Sec. IV-C).
  bool pollutionDetected = false;
  /// Direction/stride changed or trajectory abandoned: the DV may kill
  /// prefetched re-simulations nobody is waiting for (Sec. IV-C).
  bool trajectoryAbandoned = false;
};

/// Per-client prefetch agent. Deterministic and clock-agnostic: all times
/// arrive as explicit arguments.
class PrefetchAgent {
 public:
  /// `config` supplies geometry, perf model, s_max, EMA smoothing and the
  /// strategy-2 ramp-up knob.
  explicit PrefetchAgent(const simmodel::ContextConfig& config);

  /// Feeds one analysis access. `hit` is whether the file was on disk;
  /// `servedBySim` whether a running simulation is already producing it.
  /// The returned launches are *requests*: the DV clamps them against
  /// s_max and actually starts the jobs (reporting back via
  /// onJobLaunched so the agent's coverage frontier stays truthful).
  [[nodiscard]] AgentActions onAccess(StepIndex step, VTime now, bool hit,
                                      bool servedBySim);

  /// The DV reports every job it launches that serves this client's
  /// trajectory (demand recovery and accepted prefetches alike).
  /// `prefetched` marks agent-initiated jobs: their steps feed the
  /// pollution detector.
  void onJobLaunched(StepIndex startStep, StepIndex stopStep,
                     bool prefetched = false);

  /// Observation feed: measured restart latency of a job (queuing time
  /// included), Sec. IV-C1c.
  void observeRestartLatency(VDuration alpha);

  /// Observation feed: measured inter-production time of a simulation.
  void observeTauSim(VDuration tau);

  /// Resets detection, timing and coverage (pattern change, pollution,
  /// client disconnect). Keeps latency observations: they are properties
  /// of the system, not of the trajectory.
  void reset();

  // --- inspection (tests, diagnostics) -----------------------------------
  [[nodiscard]] Direction direction() const noexcept { return direction_; }
  [[nodiscard]] std::int64_t stride() const noexcept { return stride_; }
  [[nodiscard]] bool patternDetected() const noexcept { return consec_ >= 1; }
  [[nodiscard]] int parallelismLevel() const noexcept { return level_; }
  [[nodiscard]] double tauCliEstimate() const noexcept { return tauCli_.value(); }
  [[nodiscard]] double alphaEstimate() const noexcept;
  [[nodiscard]] double tauSimEstimate() const noexcept;

  /// Computed re-simulation length n for the current estimates (exposed
  /// for the Fig. 7-11 schedule bench and unit tests).
  [[nodiscard]] std::int64_t resimLength() const;

  /// Computed masking distance L = ceil(alpha / max(k tau_sim, tau_cli)) * k.
  [[nodiscard]] std::int64_t maskingDistance() const;

  /// Target number of parallel simulations for the current estimates.
  [[nodiscard]] int targetParallelSims() const;

 private:
  void updateDetection(StepIndex step, VTime now, AgentActions& actions);
  void maybeRaiseLevel();
  void planLaunches(StepIndex step, AgentActions& actions);

  const simmodel::ContextConfig& config_;
  // -- pattern detection ----------------------------------------------------
  bool hasLast_ = false;
  bool lastWasHit_ = false;
  StepIndex lastStep_ = 0;
  VTime lastTime_ = 0;
  Direction direction_ = Direction::kNone;
  std::int64_t stride_ = 1;
  int consec_ = 0;  ///< consecutive consistent strides observed
  // -- timing estimates ------------------------------------------------------
  Ema tauCli_;
  Ema alphaObs_;
  Ema tauSimObs_;
  // -- strategies -------------------------------------------------------------
  int level_ = 0;       ///< parallelism level for the next launches
  int rampS_ = 1;       ///< doubling ramp state for strategy (2)
  // -- coverage ---------------------------------------------------------------
  bool hasCoverage_ = false;
  StepIndex coveredLo_ = 0;  ///< lowest step being/already produced
  StepIndex coveredHi_ = 0;  ///< highest step being/already produced
  // -- pollution detection ----------------------------------------------------
  std::unordered_set<StepIndex> prefetchedSteps_;
};

}  // namespace simfs::prefetch
