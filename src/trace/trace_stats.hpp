// Trace characterization: the quantities that explain why the Fig. 5
// patterns behave so differently under the replacement schemes.
//
// Used by the ablation benches and available to operators sizing a SimFS
// deployment from a recorded access log.
#pragma once

#include "common/types.hpp"
#include "trace/trace.hpp"

#include <cstdint>
#include <map>
#include <vector>

namespace simfs::trace {

/// Aggregate statistics of one access trace.
struct TraceProfile {
  std::size_t accesses = 0;
  std::size_t distinctSteps = 0;
  /// Fraction of accesses to the top-10% most popular steps (popularity
  /// skew; ~0.1 for uniform, ->1 for archival Zipf traces).
  double top10Share = 0.0;
  /// Fraction of consecutive access pairs with |delta| == 1 (scan-ness).
  double sequentialFraction = 0.0;
  /// Fraction of consecutive pairs moving forward (+) among the
  /// sequential ones; 0.5 means direction-balanced.
  double forwardFraction = 0.0;
  /// Median reuse distance (distinct steps between two accesses to the
  /// same step); -1 when no step is ever reused.
  double medianReuseDistance = -1.0;
  /// Fraction of accesses that are re-references (not first-touch).
  double reuseFraction = 0.0;
};

/// Computes the profile in O(n log n).
[[nodiscard]] TraceProfile profileTrace(const Trace& trace);

/// Reuse-distance histogram with power-of-two buckets:
/// bucket[i] counts re-references with distance in [2^i, 2^(i+1)).
/// The last element counts cold (first-touch) accesses.
[[nodiscard]] std::vector<std::uint64_t> reuseDistanceHistogram(
    const Trace& trace, int maxBuckets = 24);

}  // namespace simfs::trace
