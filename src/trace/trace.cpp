#include "trace/trace.hpp"

#include "common/strings.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <fstream>

namespace simfs::trace {

Result<PatternKind> parsePatternKind(const std::string& name) {
  const auto lower = str::toLower(name);
  if (lower == "forward") return PatternKind::kForward;
  if (lower == "backward") return PatternKind::kBackward;
  if (lower == "random") return PatternKind::kRandom;
  return errInvalidArgument("unknown pattern: " + name);
}

const char* patternKindName(PatternKind kind) noexcept {
  switch (kind) {
    case PatternKind::kForward: return "forward";
    case PatternKind::kBackward: return "backward";
    case PatternKind::kRandom: return "random";
  }
  return "?";
}

Trace makeForwardTrace(StepIndex start, std::int64_t len,
                       StepIndex timelineSteps, std::int64_t stride) {
  assert(stride >= 1);
  Trace t;
  t.reserve(static_cast<std::size_t>(std::max<std::int64_t>(len, 0)));
  for (std::int64_t i = 0; i < len; ++i) {
    const StepIndex step = start + i * stride;
    if (step >= timelineSteps) break;
    if (step < 0) continue;
    t.push_back(step);
  }
  return t;
}

Trace makeBackwardTrace(StepIndex start, std::int64_t len,
                        StepIndex timelineSteps, std::int64_t stride) {
  assert(stride >= 1);
  Trace t;
  t.reserve(static_cast<std::size_t>(std::max<std::int64_t>(len, 0)));
  for (std::int64_t i = 0; i < len; ++i) {
    const StepIndex step = start - i * stride;
    if (step < 0) break;
    if (step >= timelineSteps) continue;
    t.push_back(step);
  }
  return t;
}

Trace makeRandomTrace(Rng& rng, StepIndex start, std::int64_t len,
                      std::int64_t windowLen, StepIndex timelineSteps) {
  assert(windowLen >= 1);
  Trace t;
  t.reserve(static_cast<std::size_t>(std::max<std::int64_t>(len, 0)));
  const StepIndex lo = std::clamp<StepIndex>(start, 0, timelineSteps - 1);
  const StepIndex hi =
      std::clamp<StepIndex>(start + windowLen - 1, lo, timelineSteps - 1);
  for (std::int64_t i = 0; i < len; ++i) {
    t.push_back(rng.uniformInt(lo, hi));
  }
  return t;
}

Trace makeConcatenatedPattern(Rng& rng, PatternKind kind,
                              const PatternWorkload& params) {
  Trace out;
  for (int i = 0; i < params.numTraces; ++i) {
    const auto len = rng.uniformInt(params.minLen, params.maxLen);
    const auto start = rng.uniformInt(0, params.timelineSteps - 1);
    Trace one;
    switch (kind) {
      case PatternKind::kForward:
        one = makeForwardTrace(start, len, params.timelineSteps, params.stride);
        break;
      case PatternKind::kBackward:
        one = makeBackwardTrace(start, len, params.timelineSteps, params.stride);
        break;
      case PatternKind::kRandom:
        one = makeRandomTrace(rng, start, len, /*windowLen=*/len,
                              params.timelineSteps);
        break;
    }
    out.insert(out.end(), one.begin(), one.end());
  }
  return out;
}

Trace makeEcmwfLikeTrace(Rng& rng, const EcmwfParams& params,
                         StepIndex timelineSteps) {
  SIMFS_CHECK(params.distinctFiles > 0);
  SIMFS_CHECK(timelineSteps > 0);

  // Map "archive files" to output steps spread uniformly (but shuffled)
  // across the timeline, so popular files are not clustered in time.
  std::vector<StepIndex> fileToStep(params.distinctFiles);
  for (std::size_t i = 0; i < params.distinctFiles; ++i) {
    fileToStep[i] = static_cast<StepIndex>(
        (i * static_cast<std::size_t>(timelineSteps)) / params.distinctFiles);
  }
  rng.shuffle(fileToStep);

  const ZipfSampler zipf(params.distinctFiles, params.zipfExponent);
  std::deque<std::size_t> recent;  // recently-accessed file ranks
  Trace out;
  out.reserve(params.totalAccesses);
  for (std::size_t i = 0; i < params.totalAccesses; ++i) {
    std::size_t file;
    if (!recent.empty() && rng.bernoulli(params.burstProbability)) {
      // Temporal burst: re-reference something from the recent working set.
      const auto idx = static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(recent.size()) - 1));
      file = recent[idx];
    } else {
      file = zipf.sample(rng);
    }
    recent.push_back(file);
    if (recent.size() > params.burstWindow) recent.pop_front();
    out.push_back(fileToStep[file]);
  }
  return out;
}

Status saveTrace(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return errIoError("trace: cannot write " + path);
  for (const auto step : trace) out << step << '\n';
  return out ? Status::ok() : errIoError("trace: short write " + path);
}

Result<Trace> loadTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) return errIoError("trace: cannot open " + path);
  Trace t;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto trimmed = str::trim(line);
    if (trimmed.empty()) continue;
    const auto v = str::parseInt(trimmed);
    if (!v) {
      return errInvalidArgument(
          str::format("trace: bad line %d in %s", lineno, path.c_str()));
    }
    t.push_back(*v);
  }
  return t;
}

}  // namespace simfs::trace
