// Trace-driven cache replay (the measurement engine behind Fig. 5 and the
// V(gamma) re-simulation counts of the Sec. V cost models).
//
// Replays an access trace against a replacement policy using the paper's
// re-simulation semantics: a miss on output step d_i restarts the
// simulation from restart step R(d_i) and runs it until at least the next
// restart step, inserting every produced output step into the cache
// (spatial locality, Sec. II-A).
#pragma once

#include "cache/cache.hpp"
#include "simmodel/step_geometry.hpp"
#include "trace/trace.hpp"

#include <cstdint>

namespace simfs::trace {

/// Counters reported by a replay.
struct ReplayResult {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t restarts = 0;        ///< re-simulations started
  std::uint64_t simulatedSteps = 0;  ///< output steps produced by them
  std::uint64_t evictions = 0;

  [[nodiscard]] double hitRate() const noexcept {
    return accesses == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(accesses);
  }
};

/// Replay options.
struct ReplayOptions {
  /// If true (paper semantics) a re-simulation fills its whole restart
  /// interval; if false only the missed step is produced (ablation knob).
  bool fillWholeInterval = true;
};

/// Replays `trace` against `cache` for a timeline shaped by `geometry`.
/// Out-of-range steps are clamped into the timeline; the cache keeps its
/// prior contents (call repeatedly to model back-to-back analyses).
[[nodiscard]] ReplayResult replayTrace(const Trace& trace,
                                       const simmodel::StepGeometry& geometry,
                                       cache::Cache& cache,
                                       const ReplayOptions& options = {});

}  // namespace simfs::trace
