// Access traces for the caching study (Sec. III-D "Caching Schemes
// Evaluation").
//
// A trace is a sequence of output-step indices accessed by (synthetic)
// analysis tools. The paper evaluates four patterns:
//   forward  — scan forward-in-time from a random start,
//   backward — scan backward-in-time from a random start,
//   random   — randomly selected output steps near a random start,
//   ECMWF    — replay of the (proprietary) ECFS archival trace; this repo
//              synthesizes an equivalent (Zipf popularity + bursts).
// Per the paper, 50 traces per pattern with lengths U[100, 400] starting
// at random timeline points are concatenated into one mega-trace.
#pragma once

#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

#include <string>
#include <vector>

namespace simfs::trace {

/// A trace is a flat list of accessed output-step indices.
using Trace = std::vector<StepIndex>;

/// Scan/random pattern selector.
enum class PatternKind { kForward, kBackward, kRandom };

/// Parses "forward|backward|random" (case-insensitive).
[[nodiscard]] Result<PatternKind> parsePatternKind(const std::string& name);

/// Stable lowercase name.
[[nodiscard]] const char* patternKindName(PatternKind kind) noexcept;

/// One forward scan: start, start+stride, ..., `len` accesses, truncated at
/// the timeline end.
[[nodiscard]] Trace makeForwardTrace(StepIndex start, std::int64_t len,
                                     StepIndex timelineSteps,
                                     std::int64_t stride = 1);

/// One backward scan: start, start-stride, ..., truncated at step 0.
[[nodiscard]] Trace makeBackwardTrace(StepIndex start, std::int64_t len,
                                      StepIndex timelineSteps,
                                      std::int64_t stride = 1);

/// One random-access trace: `len` uniform picks within the window
/// [start, start + windowLen) clipped to the timeline. The window models
/// an analysis randomly probing the region it studies.
[[nodiscard]] Trace makeRandomTrace(Rng& rng, StepIndex start,
                                    std::int64_t len, std::int64_t windowLen,
                                    StepIndex timelineSteps);

/// Parameters of the paper's concatenated-pattern workload.
struct PatternWorkload {
  StepIndex timelineSteps = 1152;  ///< 4 days at 5-minute output steps
  int numTraces = 50;
  std::int64_t minLen = 100;
  std::int64_t maxLen = 400;
  std::int64_t stride = 1;
};

/// Generates the Fig. 5 workload: numTraces single-pattern traces with
/// random starts and U[minLen,maxLen] lengths, concatenated.
[[nodiscard]] Trace makeConcatenatedPattern(Rng& rng, PatternKind kind,
                                            const PatternWorkload& params);

/// Synthetic ECMWF-like archival trace parameters. Defaults mirror the
/// real trace's aggregate statistics (874 distinct files, 659,989
/// accesses, Jan 2012 - May 2014); totalAccesses can be scaled down for
/// faster repetitions without changing the distributional shape.
struct EcmwfParams {
  std::size_t distinctFiles = 874;
  std::size_t totalAccesses = 659989;
  double zipfExponent = 0.9;   ///< archival popularity skew
  double burstProbability = 0.35;  ///< P(next access re-references recent set)
  std::size_t burstWindow = 16;    ///< size of the recent working set
};

/// Synthesizes the ECMWF-like trace over a timeline: distinct "files" are
/// mapped to output steps spread across the timeline; accesses follow a
/// Zipf popularity with temporal bursts.
[[nodiscard]] Trace makeEcmwfLikeTrace(Rng& rng, const EcmwfParams& params,
                                       StepIndex timelineSteps);

/// Writes one step index per line.
[[nodiscard]] Status saveTrace(const Trace& trace, const std::string& path);

/// Reads the saveTrace format.
[[nodiscard]] Result<Trace> loadTrace(const std::string& path);

}  // namespace simfs::trace
