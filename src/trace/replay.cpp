#include "trace/replay.hpp"

#include <algorithm>
#include <limits>
#include <string>

namespace simfs::trace {

ReplayResult replayTrace(const Trace& trace,
                         const simmodel::StepGeometry& geometry,
                         cache::Cache& cache, const ReplayOptions& options) {
  ReplayResult res;
  const StepIndex maxStep =
      geometry.numTimesteps() > 0 ? geometry.numOutputSteps() - 1
                                  : std::numeric_limits<StepIndex>::max() / 2;
  for (StepIndex raw : trace) {
    const StepIndex i = std::clamp<StepIndex>(raw, 0, maxStep);
    ++res.accesses;
    const double cost = static_cast<double>(geometry.missCostSteps(i));
    auto outcome = cache.access(i, cost);
    res.evictions += outcome.evicted.size();
    if (outcome.hit) {
      ++res.hits;
      continue;
    }
    ++res.misses;
    ++res.restarts;
    if (options.fillWholeInterval) {
      // The re-simulation starts at R(d_i) and runs until at least the next
      // restart step, producing every output step in between.
      const auto r = geometry.restartFor(i);
      const auto rEnd = geometry.nextRestartAfter(i);
      const StepIndex first = geometry.firstStepAtOrAfterRestart(r);
      const StepIndex last =
          std::min<StepIndex>(geometry.lastStepOfRunUntil(rEnd), maxStep);
      res.simulatedSteps += static_cast<std::uint64_t>(last - first + 1);
      for (StepIndex j = first; j <= last; ++j) {
        if (j == i) continue;  // already inserted by the access above
        const auto evicted = cache.insert(
            j, static_cast<double>(geometry.missCostSteps(j)));
        res.evictions += evicted.size();
      }
    } else {
      res.simulatedSteps +=
          static_cast<std::uint64_t>(geometry.missCostSteps(i));
    }
  }
  return res;
}

}  // namespace simfs::trace
