#include "trace/trace_stats.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

namespace simfs::trace {

namespace {

/// Exact reuse distances via an order-statistic-free approach: for each
/// re-reference, count distinct steps touched since the previous access
/// of the same step. O(n * d) worst case is avoided with an epoch trick:
/// we keep, per step, the index of its last access, and count distinct
/// steps in the window with a Fenwick tree over "last occurrence" flags.
class ReuseDistanceScanner {
 public:
  explicit ReuseDistanceScanner(std::size_t n) : fen_(n + 1, 0) {}

  void add(std::size_t pos) { update(pos + 1, +1); }
  void remove(std::size_t pos) { update(pos + 1, -1); }

  /// Number of flagged positions in (from, to).
  [[nodiscard]] std::int64_t countBetween(std::size_t from, std::size_t to) const {
    if (to <= from + 1) return 0;
    return query(to) - query(from + 1);
  }

 private:
  void update(std::size_t i, int delta) {
    for (; i < fen_.size(); i += i & (~i + 1)) {
      fen_[i] += delta;
    }
  }
  [[nodiscard]] std::int64_t query(std::size_t i) const {  // prefix [1, i)
    std::int64_t sum = 0;
    for (--i; i > 0; i -= i & (~i + 1)) sum += fen_[i];
    return sum;
  }

  std::vector<std::int64_t> fen_;
};

}  // namespace

TraceProfile profileTrace(const Trace& trace) {
  TraceProfile profile;
  profile.accesses = trace.size();
  if (trace.empty()) return profile;

  std::unordered_map<StepIndex, std::size_t> counts;
  for (const auto s : trace) ++counts[s];
  profile.distinctSteps = counts.size();

  // Popularity skew.
  std::vector<std::size_t> freq;
  freq.reserve(counts.size());
  for (const auto& [_, c] : counts) freq.push_back(c);
  std::sort(freq.rbegin(), freq.rend());
  const std::size_t top = std::max<std::size_t>(1, freq.size() / 10);
  std::size_t topSum = 0;
  for (std::size_t i = 0; i < top; ++i) topSum += freq[i];
  profile.top10Share =
      static_cast<double>(topSum) / static_cast<double>(trace.size());

  // Scan-ness and direction.
  std::size_t sequential = 0;
  std::size_t forward = 0;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const auto d = trace[i] - trace[i - 1];
    if (d == 1 || d == -1) {
      ++sequential;
      if (d == 1) ++forward;
    }
  }
  if (trace.size() > 1) {
    profile.sequentialFraction =
        static_cast<double>(sequential) / static_cast<double>(trace.size() - 1);
  }
  profile.forwardFraction =
      sequential == 0 ? 0.0
                      : static_cast<double>(forward) /
                            static_cast<double>(sequential);

  // Reuse distances (distinct steps between same-step accesses).
  ReuseDistanceScanner scanner(trace.size());
  std::unordered_map<StepIndex, std::size_t> lastPos;
  std::vector<double> distances;
  std::size_t reuses = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto it = lastPos.find(trace[i]);
    if (it != lastPos.end()) {
      ++reuses;
      distances.push_back(
          static_cast<double>(scanner.countBetween(it->second, i)));
      scanner.remove(it->second);
    }
    scanner.add(i);
    lastPos[trace[i]] = i;
  }
  profile.reuseFraction =
      static_cast<double>(reuses) / static_cast<double>(trace.size());
  if (!distances.empty()) {
    std::nth_element(distances.begin(),
                     distances.begin() + static_cast<std::ptrdiff_t>(
                                             distances.size() / 2),
                     distances.end());
    profile.medianReuseDistance = distances[distances.size() / 2];
  }
  return profile;
}

std::vector<std::uint64_t> reuseDistanceHistogram(const Trace& trace,
                                                  int maxBuckets) {
  std::vector<std::uint64_t> hist(static_cast<std::size_t>(maxBuckets) + 1, 0);
  ReuseDistanceScanner scanner(trace.size());
  std::unordered_map<StepIndex, std::size_t> lastPos;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto it = lastPos.find(trace[i]);
    if (it == lastPos.end()) {
      hist.back()++;  // cold access
    } else {
      const auto d = scanner.countBetween(it->second, i);
      int bucket = 0;
      while ((1LL << (bucket + 1)) <= d + 1 && bucket < maxBuckets - 1) {
        ++bucket;
      }
      ++hist[static_cast<std::size_t>(bucket)];
      scanner.remove(it->second);
    }
    scanner.add(i);
    lastPos[trace[i]] = i;
  }
  return hist;
}

}  // namespace simfs::trace
