#include "harness/scenario.hpp"

#include "engine/engine.hpp"
#include "simulator/des_fleet.hpp"

#include <map>
#include <memory>

namespace simfs::harness {

namespace {

/// Virtual-time analysis client: replays one trace against the DV.
class AnalysisActor {
 public:
  AnalysisActor(engine::Engine& engine, dv::DataVirtualizer& dv,
                const simmodel::ContextConfig& cfg, const AnalysisSpec& spec)
      : engine_(engine), dv_(dv), cfg_(cfg), spec_(spec) {
    result_.label = spec.label;
  }

  /// Connects and schedules the first access.
  void start() {
    auto id = dv_.clientConnect(cfg_.name);
    SIMFS_CHECK(id.isOk());
    client_ = *id;
    engine_.scheduleAt(spec_.startTime, [this] {
      result_.start = engine_.now();
      accessNext();
    });
  }

  [[nodiscard]] ClientId client() const noexcept { return client_; }
  [[nodiscard]] bool done() const noexcept { return done_; }
  [[nodiscard]] const AnalysisResult& result() const noexcept { return result_; }

  /// DV notification sink for this client.
  void onNotify(const std::string& file, const Status& status) {
    if (!waiting_ || file != waitingFile_) return;  // stale notification
    waiting_ = false;
    if (!status.isOk()) {
      ++result_.failures;
      advance(/*releaseFile=*/false);
      return;
    }
    advance(/*releaseFile=*/true);
  }

 private:
  void accessNext() {
    if (idx_ >= spec_.steps.size()) {
      finish();
      return;
    }
    const StepIndex step = spec_.steps[idx_];
    const std::string file = cfg_.codec.outputFile(step);
    ++result_.accesses;
    const auto res = dv_.clientOpen(client_, file);
    if (!res.status.isOk()) {
      ++result_.failures;
      ++idx_;
      engine_.scheduleAfter(0, [this] { accessNext(); });
      return;
    }
    if (res.available) {
      ++result_.immediateHits;
      advance(/*releaseFile=*/true);
    } else {
      ++result_.stalls;
      waiting_ = true;
      waitingFile_ = file;
      // The read now blocks inside DVLib until the DV's notification.
    }
  }

  /// Processes the current step for tau_cli, releases it, moves on.
  void advance(bool releaseFile) {
    const StepIndex step = spec_.steps[idx_];
    const std::string file = cfg_.codec.outputFile(step);
    ++idx_;
    engine_.scheduleAfter(spec_.tauCli, [this, file, releaseFile] {
      if (releaseFile) (void)dv_.clientRelease(client_, file);
      accessNext();
    });
  }

  void finish() {
    result_.end = engine_.now();
    done_ = true;
    dv_.clientDisconnect(client_);
  }

  engine::Engine& engine_;
  dv::DataVirtualizer& dv_;
  const simmodel::ContextConfig& cfg_;
  AnalysisSpec spec_;
  ClientId client_ = 0;
  std::size_t idx_ = 0;
  bool waiting_ = false;
  std::string waitingFile_;
  bool done_ = false;
  AnalysisResult result_;
};

}  // namespace

ScenarioResult runScenario(const ScenarioConfig& config) {
  engine::Engine engine;
  dv::DataVirtualizer dv(engine.clock());
  simulator::DesSimulatorFleet fleet(engine, config.batch, config.seed);
  fleet.bind(&dv);
  dv.setLauncher(&fleet);

  auto st = dv.registerContext(
      std::make_unique<simmodel::SyntheticDriver>(config.context));
  SIMFS_CHECK(st.isOk());
  fleet.registerContext(config.context);

  for (const StepIndex s : config.preloadedSteps) {
    (void)dv.seedAvailableStep(config.context.name, s);
  }

  std::vector<std::unique_ptr<AnalysisActor>> actors;
  std::map<ClientId, AnalysisActor*> byClient;
  actors.reserve(config.analyses.size());
  for (const auto& spec : config.analyses) {
    actors.push_back(std::make_unique<AnalysisActor>(engine, dv,
                                                     config.context, spec));
  }

  dv.setNotifyFn([&byClient](ClientId client, const std::string& file,
                             const Status& status) {
    const auto it = byClient.find(client);
    if (it != byClient.end()) it->second->onNotify(file, status);
  });

  for (auto& actor : actors) {
    actor->start();
    byClient.emplace(actor->client(), actor.get());
  }

  engine.run(config.horizon);

  ScenarioResult result;
  result.completed = true;
  for (const auto& actor : actors) {
    result.analyses.push_back(actor->result());
    if (!actor->done()) result.completed = false;
  }
  result.dv = dv.stats();
  if (const auto* cs = dv.cacheStats(config.context.name)) result.cache = *cs;
  result.makespan = engine.now();
  return result;
}

}  // namespace simfs::harness
