// Scenario harness: wires Engine + DataVirtualizer + DesSimulatorFleet +
// synthetic analysis actors into one virtual-time experiment.
//
// This is the measurement engine behind Figs. 16-19 (strong scaling and
// prefetching-under-latency studies) and the integration tests. An
// analysis actor replays an access trace against the DV exactly like a
// DVLib client: open (non-blocking), wait for the notification on a miss,
// process the step for tau_cli, release it, move on.
#pragma once

#include "common/types.hpp"
#include "dv/data_virtualizer.hpp"
#include "simmodel/context.hpp"
#include "simulator/batch.hpp"
#include "trace/trace.hpp"

#include <string>
#include <vector>

namespace simfs::harness {

/// One synthetic analysis client.
struct AnalysisSpec {
  VTime startTime = 0;            ///< when the analysis begins
  trace::Trace steps;             ///< output steps it accesses, in order
  VDuration tauCli = 0;           ///< per-step processing time (tau_cli)
  std::string label;              ///< for reports
};

/// One experiment.
struct ScenarioConfig {
  simmodel::ContextConfig context;
  simulator::BatchModel batch;            ///< queuing-delay model
  std::vector<AnalysisSpec> analyses;
  std::vector<StepIndex> preloadedSteps;  ///< warm-cache seeding
  std::uint64_t seed = 7;
  VTime horizon = kTimeInf;               ///< safety stop for the engine
};

/// Per-analysis outcome.
struct AnalysisResult {
  std::string label;
  VTime start = 0;
  VTime end = 0;
  std::uint64_t accesses = 0;
  std::uint64_t immediateHits = 0;  ///< file was on disk at open time
  std::uint64_t stalls = 0;         ///< open had to wait for a simulation
  std::uint64_t failures = 0;       ///< restart-failed notifications

  [[nodiscard]] VDuration completion() const noexcept { return end - start; }
};

/// Whole-experiment outcome.
struct ScenarioResult {
  std::vector<AnalysisResult> analyses;
  dv::DvStats dv;
  cache::CacheStats cache;
  VTime makespan = 0;      ///< virtual time when everything finished
  bool completed = false;  ///< false if the horizon stopped the run early
};

/// Runs the scenario to completion (or to the horizon) and reports.
[[nodiscard]] ScenarioResult runScenario(const ScenarioConfig& config);

}  // namespace simfs::harness
