// Virtual-time simulator fleet: plays (re-)simulation jobs as events on
// the discrete-event engine.
//
// A job launched by the DV proceeds through: batch-queue delay -> restart
// latency alpha_sim(p) -> one output file every tau_sim(p). The fleet
// reports each phase back to the DV (simulationStarted /
// simulationFileWritten / simulationFinished). Kill cancels the job's
// pending events, modelling scancel.
//
// Timing constants come from the registered ContextConfigs, mirroring how
// the real system's driver encapsulates simulator performance.
#pragma once

#include "common/rng.hpp"
#include "dv/data_virtualizer.hpp"
#include "dv/launcher.hpp"
#include "engine/engine.hpp"
#include "simulator/batch.hpp"

#include <map>
#include <string>
#include <vector>

namespace simfs::simulator {

/// SimLauncher implementation for discrete-event experiments.
class DesSimulatorFleet final : public dv::SimLauncher {
 public:
  DesSimulatorFleet(engine::Engine& engine, BatchModel batch,
                    std::uint64_t seed = 7);

  /// The DV to report progress to. Must be set before the first launch.
  void bind(dv::DataVirtualizer* dv) noexcept { dv_ = dv; }

  /// Registers the timing/naming description of a context (same config the
  /// DV's driver holds).
  void registerContext(const simmodel::ContextConfig& config);

  // --- SimLauncher -----------------------------------------------------------
  void launch(SimJobId job, const simmodel::JobSpec& spec) override;
  void kill(SimJobId job) override;

  // --- diagnostics ------------------------------------------------------------
  [[nodiscard]] std::uint64_t launched() const noexcept { return launched_; }
  [[nodiscard]] std::uint64_t killed() const noexcept { return killed_; }

 private:
  struct RunningJob {
    std::vector<engine::EventId> events;
  };

  engine::Engine& engine_;
  BatchModel batch_;
  Rng rng_;
  dv::DataVirtualizer* dv_ = nullptr;
  std::map<std::string, simmodel::ContextConfig> contexts_;
  std::map<SimJobId, RunningJob> running_;
  std::uint64_t launched_ = 0;
  std::uint64_t killed_ = 0;
};

}  // namespace simfs::simulator
