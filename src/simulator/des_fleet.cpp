#include "simulator/des_fleet.hpp"

#include "common/log.hpp"

namespace simfs::simulator {

DesSimulatorFleet::DesSimulatorFleet(engine::Engine& engine, BatchModel batch,
                                     std::uint64_t seed)
    : engine_(engine), batch_(batch), rng_(seed) {}

void DesSimulatorFleet::registerContext(const simmodel::ContextConfig& config) {
  contexts_.insert_or_assign(config.name, config);
}

void DesSimulatorFleet::launch(SimJobId job, const simmodel::JobSpec& spec) {
  SIMFS_CHECK(dv_ != nullptr);
  const auto cit = contexts_.find(spec.context);
  SIMFS_CHECK(cit != contexts_.end());
  const auto& cfg = cit->second;
  const auto& perf = cfg.perf.at(spec.parallelismLevel);

  ++launched_;
  RunningJob& rj = running_[job];

  const VDuration queue = batch_.sample(rng_);
  const VTime startTime = engine_.now() + queue;
  rj.events.push_back(engine_.scheduleAt(
      startTime, [this, job] { dv_->simulationStarted(job); }));

  // First file appears after the restart latency plus one production
  // interval; each further file one interval later.
  VTime t = startTime + perf.alphaSim;
  for (StepIndex s = spec.startStep; s <= spec.stopStep; ++s) {
    t += perf.tauSim;
    const std::string file = cfg.codec.outputFile(s);
    rj.events.push_back(engine_.scheduleAt(t, [this, job, file] {
      dv_->simulationFileWritten(job, file);
    }));
  }
  rj.events.push_back(engine_.scheduleAt(t, [this, job] {
    running_.erase(job);
    dv_->simulationFinished(job, Status::ok());
  }));
}

void DesSimulatorFleet::kill(SimJobId job) {
  const auto it = running_.find(job);
  if (it == running_.end()) return;
  for (const auto ev : it->second.events) engine_.cancel(ev);
  running_.erase(it);
  ++killed_;
  SIMFS_LOG_DEBUG("fleet", "killed job %llu",
                  static_cast<unsigned long long>(job));
}

}  // namespace simfs::simulator
