// Wall-clock simulator fleet: runs (re-)simulation jobs as threads that
// write real files, for the live (daemon) deployment.
//
// Each launched job sleeps through its scaled queue delay and restart
// latency, then produces one output file per (scaled) tau_sim: content
// comes from a pluggable producer (synthetic payload by default, or the
// Sedov solver in the physics examples), lands in a FileStore, and the DV
// daemon is notified exactly as a DVLib-intercepted simulator would
// (create -> write -> close -> "file is ready").
//
// `timeScale` compresses virtual seconds into real ones so examples run in
// milliseconds while keeping the paper's timing ratios.
#pragma once

#include "common/types.hpp"
#include "dv/daemon.hpp"
#include "dv/launcher.hpp"
#include "simulator/batch.hpp"
#include "vfs/file_store.hpp"

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

namespace simfs::simulator {

/// SimLauncher for live deployments.
class ThreadedSimulatorFleet final : public dv::SimLauncher {
 public:
  /// Produces the content of one output step.
  using ProduceFn =
      std::function<std::string(const simmodel::JobSpec&, StepIndex)>;

  /// `timeScale` multiplies all model durations (1.0 = real time,
  /// 0.001 = 1000x compressed). Default producer emits a small synthetic
  /// payload derived from (context, step) — deterministic, so Bitrep holds.
  ThreadedSimulatorFleet(dv::Daemon& daemon, vfs::FileStore& store,
                         double timeScale = 0.001);

  ~ThreadedSimulatorFleet() override;

  /// Registers context timing/naming (same config the daemon's driver has).
  void registerContext(const simmodel::ContextConfig& config);

  /// Installs a custom producer (e.g. the Sedov solver).
  void setProducer(ProduceFn produce);

  /// Queue-delay model applied to every launch.
  void setBatchModel(BatchModel model) { batch_ = model; }

  // --- SimLauncher ------------------------------------------------------------
  /// Non-blocking: spawns the job thread. Called on a daemon worker with
  /// the owning shard's lock held, so it must never call back into the
  /// daemon synchronously (job threads report events asynchronously via
  /// the daemon's shard queues).
  void launch(SimJobId job, const simmodel::JobSpec& spec) override;
  void kill(SimJobId job) override;

  /// Blocks until every job thread has finished (shutdown path). Must not
  /// be called from a daemon worker (it would wait on jobs whose events
  /// need that worker).
  void joinAll();

  [[nodiscard]] std::uint64_t launched() const noexcept { return launched_.load(); }

  /// Jobs whose threads are still running (stress tests and benches poll
  /// this to detect quiescence).
  [[nodiscard]] std::uint64_t activeJobs() const noexcept {
    return active_.load();
  }

 private:
  struct Job {
    std::thread thread;
    std::atomic<bool> killed{false};
  };

  /// Sleeps for `d` (already scaled) or until the job is killed.
  bool sleepOrKilled(Job& job, VDuration d);

  void runJob(Job& job, SimJobId id, simmodel::JobSpec spec);

  dv::Daemon& daemon_;
  vfs::FileStore& store_;
  double timeScale_;
  BatchModel batch_;
  ProduceFn produce_;
  Rng rng_{123};

  std::mutex mutex_;
  std::condition_variable killCv_;
  std::map<std::string, simmodel::ContextConfig> contexts_;
  std::map<SimJobId, std::unique_ptr<Job>> jobs_;
  std::atomic<std::uint64_t> launched_{0};
  std::atomic<std::uint64_t> active_{0};
};

}  // namespace simfs::simulator
