#include "simulator/threaded_fleet.hpp"

#include "common/log.hpp"
#include "common/strings.hpp"

#include <chrono>

namespace simfs::simulator {

namespace {
/// Deterministic synthetic payload: derived from context and step only, so
/// a re-simulation reproduces it bitwise (the paper's reproducibility
/// assumption, Sec. II).
std::string syntheticPayload(const simmodel::JobSpec& spec, StepIndex step) {
  return str::format("context=%s step=%lld payload=%016llx\n",
                     spec.context.c_str(), static_cast<long long>(step),
                     static_cast<unsigned long long>(
                         0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(step + 1)));
}
}  // namespace

ThreadedSimulatorFleet::ThreadedSimulatorFleet(dv::Daemon& daemon,
                                               vfs::FileStore& store,
                                               double timeScale)
    : daemon_(daemon), store_(store), timeScale_(timeScale) {
  SIMFS_CHECK(timeScale_ > 0.0);
  produce_ = syntheticPayload;
}

ThreadedSimulatorFleet::~ThreadedSimulatorFleet() {
  // Detach from the daemon FIRST. Launcher calls only happen under shard
  // locks and setLauncher acquires every one of them, so once this
  // returns no daemon worker is inside (or will ever again enter) this
  // fleet — no launch() can slip in behind the join below, and the
  // daemon may keep processing queued requests after we are gone.
  daemon_.setLauncher(nullptr);
  // Kill outstanding jobs so shutdown does not wait out their full runtime.
  {
    std::lock_guard lock(mutex_);
    for (auto& [id, job] : jobs_) job->killed.store(true);
    killCv_.notify_all();
  }
  joinAll();
}

void ThreadedSimulatorFleet::registerContext(
    const simmodel::ContextConfig& config) {
  std::lock_guard lock(mutex_);
  contexts_.insert_or_assign(config.name, config);
}

void ThreadedSimulatorFleet::setProducer(ProduceFn produce) {
  std::lock_guard lock(mutex_);
  produce_ = std::move(produce);
}

bool ThreadedSimulatorFleet::sleepOrKilled(Job& job, VDuration d) {
  if (d <= 0) return !job.killed.load();
  const auto realNs =
      static_cast<std::int64_t>(static_cast<double>(d) * timeScale_);
  std::unique_lock lock(mutex_);
  killCv_.wait_for(lock, std::chrono::nanoseconds(realNs),
                   [&job] { return job.killed.load(); });
  return !job.killed.load();
}

void ThreadedSimulatorFleet::launch(SimJobId id, const simmodel::JobSpec& spec) {
  std::lock_guard lock(mutex_);
  auto job = std::make_unique<Job>();
  Job* raw = job.get();
  launched_.fetch_add(1);
  active_.fetch_add(1);
  // The thread body runs entirely outside the daemon's shard locks.
  raw->thread = std::thread([this, raw, id, spec] {
    runJob(*raw, id, spec);
    active_.fetch_sub(1);
  });
  jobs_.emplace(id, std::move(job));
}

void ThreadedSimulatorFleet::runJob(Job& job, SimJobId id,
                                    simmodel::JobSpec spec) {
  simmodel::ContextConfig cfg;
  ProduceFn produce;
  VDuration queueDelay = 0;
  {
    std::lock_guard lock(mutex_);
    const auto it = contexts_.find(spec.context);
    if (it == contexts_.end()) {
      SIMFS_LOG_ERROR("fleet", "job %llu: unknown context '%s'",
                      static_cast<unsigned long long>(id),
                      spec.context.c_str());
      return;
    }
    cfg = it->second;
    produce = produce_;
    queueDelay = batch_.sample(rng_);
  }
  const auto& perf = cfg.perf.at(spec.parallelismLevel);

  if (!sleepOrKilled(job, queueDelay)) return;
  daemon_.simulationStarted(id);
  if (!sleepOrKilled(job, perf.alphaSim)) return;

  for (StepIndex s = spec.startStep; s <= spec.stopStep; ++s) {
    if (!sleepOrKilled(job, perf.tauSim)) return;
    const std::string file = cfg.codec.outputFile(s);
    const auto st = store_.put(file, produce(spec, s));
    if (!st.isOk()) {
      daemon_.simulationFinished(id, st);
      return;
    }
    daemon_.simulationFileWritten(id, file);
  }
  daemon_.simulationFinished(id, Status::ok());
}

void ThreadedSimulatorFleet::kill(SimJobId id) {
  std::lock_guard lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return;
  it->second->killed.store(true);
  killCv_.notify_all();
}

void ThreadedSimulatorFleet::joinAll() {
  std::map<SimJobId, std::unique_ptr<Job>> jobs;
  {
    std::lock_guard lock(mutex_);
    jobs.swap(jobs_);
  }
  for (auto& [id, job] : jobs) {
    if (job->thread.joinable()) job->thread.join();
  }
}

}  // namespace simfs::simulator
