// Batch-system model (the paper's "queuing time in a batch system" /
// "VM deploying time" component of the restart latency, Secs. IV-A, IV-C1).
//
// A launched job waits in the queue before it starts executing; the queue
// delay adds to the effective restart latency the analyses observe. The
// Fig. 17/19 sweeps vary exactly this knob.
#pragma once

#include "common/rng.hpp"
#include "common/types.hpp"

namespace simfs::simulator {

/// Queue-delay distribution: fixed base plus optional uniform jitter
/// (non-constant restart latencies, Sec. IV-C1c).
struct BatchModel {
  VDuration baseDelay = 0;    ///< deterministic queue time
  VDuration jitterMax = 0;    ///< extra delay drawn uniformly from [0, jitterMax]

  /// Draws one queue delay.
  [[nodiscard]] VDuration sample(Rng& rng) const noexcept {
    if (jitterMax <= 0) return baseDelay;
    return baseDelay + rng.uniformInt(0, jitterMax);
  }
};

}  // namespace simfs::simulator
