#include "cost/cost_model.hpp"

#include <cmath>

namespace simfs::cost {

std::int64_t Scenario::restartIntervalSteps(double deltaRHours) const noexcept {
  const double steps = deltaRHours * 60.0 / modelMinutesPerStep;
  return static_cast<std::int64_t>(std::llround(steps));
}

std::int64_t Scenario::numRestartFiles(double deltaRHours) const noexcept {
  const auto interval = restartIntervalSteps(deltaRHours);
  if (interval <= 0) return 0;
  return (numOutputSteps + interval - 1) / interval;
}

Scenario cosmoScenario() noexcept { return Scenario{}; }

double simCost(std::int64_t outputSteps, const Scenario& s,
               const CostRates& rates) noexcept {
  const double hoursPerStep = s.tauSimSeconds / 3600.0;
  return static_cast<double>(outputSteps) * hoursPerStep *
         static_cast<double>(s.nodes) * rates.computePerNodeHour;
}

double storeCost(std::int64_t files, double sizeGiB, double months,
                 const CostRates& rates) noexcept {
  return static_cast<double>(files) * sizeGiB * months *
         rates.storagePerGiBMonth;
}

double onDiskCost(const Scenario& s, double months,
                  const CostRates& rates) noexcept {
  return simCost(s.numOutputSteps, s, rates) +
         storeCost(s.numOutputSteps, s.outputGiB, months, rates);
}

double inSituCost(const Scenario& s, const std::vector<AnalysisSpan>& analyses,
                  const CostRates& rates) noexcept {
  double total = 0.0;
  for (const auto& a : analyses) {
    // The simulation must run from step 0 through the last accessed step;
    // the prefix d_0 .. d_{i_j - 1} is produced but useless to the analysis.
    total += simCost(a.start + a.length, s, rates);
  }
  return total;
}

double simfsCost(const Scenario& s, double months, double deltaRHours,
                 double cacheFraction, std::int64_t resimulatedSteps,
                 const CostRates& rates) noexcept {
  const std::int64_t cacheSteps = static_cast<std::int64_t>(
      cacheFraction * static_cast<double>(s.numOutputSteps));
  return simCost(s.numOutputSteps, s, rates)  // initial run (writes restarts)
         + storeCost(s.numRestartFiles(deltaRHours), s.restartGiB, months,
                     rates)                   // restart files
         + storeCost(cacheSteps, s.outputGiB, months, rates)  // cache
         + simCost(resimulatedSteps, s, rates);               // V(gamma)
}

double resimulationHours(const Scenario& s,
                         std::int64_t resimulatedSteps) noexcept {
  return static_cast<double>(resimulatedSteps) * s.tauSimSeconds / 3600.0;
}

}  // namespace simfs::cost
