#include "cost/workload.hpp"

#include "cache/cache.hpp"
#include "simmodel/step_geometry.hpp"

#include <algorithm>
#include <queue>

namespace simfs::cost {

std::vector<AnalysisSpan> makeForwardAnalyses(Rng& rng, int count,
                                              std::int64_t numOutputSteps,
                                              std::int64_t minLen,
                                              std::int64_t maxLen) {
  std::vector<AnalysisSpan> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    AnalysisSpan span;
    span.length = rng.uniformInt(minLen, maxLen);
    span.start = rng.uniformInt(0, std::max<std::int64_t>(numOutputSteps - 1, 0));
    span.length = std::min(span.length, numOutputSteps - span.start);
    out.push_back(span);
  }
  return out;
}

trace::Trace interleaveAnalyses(const std::vector<AnalysisSpan>& analyses,
                                double overlap) {
  overlap = std::clamp(overlap, 0.0, 1.0);
  // Each access gets an abstract position; merging by position interleaves
  // analyses exactly by the requested amount.
  struct Cursor {
    double pos;
    StepIndex step;
    std::size_t analysis;
    std::int64_t remaining;
    bool operator>(const Cursor& o) const noexcept { return pos > o.pos; }
  };
  std::priority_queue<Cursor, std::vector<Cursor>, std::greater<>> heap;
  double startPos = 0.0;
  for (std::size_t j = 0; j < analyses.size(); ++j) {
    const auto& a = analyses[j];
    if (a.length <= 0) continue;
    heap.push(Cursor{startPos, a.start, j, a.length});
    startPos += static_cast<double>(a.length) * (1.0 - overlap);
  }
  trace::Trace merged;
  while (!heap.empty()) {
    Cursor c = heap.top();
    heap.pop();
    merged.push_back(c.step);
    if (--c.remaining > 0) {
      ++c.step;
      c.pos += 1.0;
      heap.push(c);
    }
  }
  return merged;
}

trace::ReplayResult evaluateVgamma(const Scenario& scenario,
                                   const std::vector<AnalysisSpan>& analyses,
                                   double overlap, const VgammaConfig& config) {
  const auto merged = interleaveAnalyses(analyses, overlap);
  const std::int64_t interval =
      std::max<std::int64_t>(scenario.restartIntervalSteps(config.deltaRHours), 1);
  // Geometry in "output step" units: delta_d = 1, delta_r = interval.
  const simmodel::StepGeometry geometry(1, interval, scenario.numOutputSteps);
  const auto cacheSteps = static_cast<std::int64_t>(
      config.cacheFraction * static_cast<double>(scenario.numOutputSteps));
  const auto cache = cache::makeCache(config.policy, cacheSteps);
  return trace::replayTrace(merged, geometry, *cache);
}

}  // namespace simfs::cost
