// Cost-study workload synthesis (Sec. V-A).
//
// "We use a number of synthetic analysis tools, accessing a sequence of
//  output steps with a forward-in-time trajectory. Each of these sequences
//  starts at a randomly selected output step [...]. We express the analysis
//  overlap as the percentage of accesses that an analysis performs without
//  being interleaved with others' execution."
//
// Overlap model: analysis j's k-th access happens at abstract position
// pos_j + k, where pos_{j+1} = pos_j + len_j * (1 - overlap). At overlap 0
// analyses run back-to-back; at overlap 1 they are fully interleaved.
// The merged position-ordered stream feeds the cache replay which yields
// V(gamma) — the number of re-simulated output steps.
#pragma once

#include "common/rng.hpp"
#include "cost/cost_model.hpp"
#include "simmodel/context.hpp"
#include "trace/replay.hpp"

#include <vector>

namespace simfs::cost {

/// Draws `count` forward analyses with random starts and U[minLen, maxLen]
/// lengths over a timeline of `numOutputSteps` (spans are clipped).
[[nodiscard]] std::vector<AnalysisSpan> makeForwardAnalyses(
    Rng& rng, int count, std::int64_t numOutputSteps, std::int64_t minLen,
    std::int64_t maxLen);

/// Builds the merged access trace for the given overlap in [0, 1].
[[nodiscard]] trace::Trace interleaveAnalyses(
    const std::vector<AnalysisSpan>& analyses, double overlap);

/// Everything needed to evaluate V(gamma) for one SimFS configuration.
struct VgammaConfig {
  double deltaRHours = 8.0;
  double cacheFraction = 0.25;
  simmodel::PolicyKind policy = simmodel::PolicyKind::kDcl;
};

/// Replays the interleaved workload through a cache of the configured
/// size/policy and returns the replay counters (simulatedSteps is V).
[[nodiscard]] trace::ReplayResult evaluateVgamma(
    const Scenario& scenario, const std::vector<AnalysisSpan>& analyses,
    double overlap, const VgammaConfig& config);

}  // namespace simfs::cost
