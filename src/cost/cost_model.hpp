// Cost models for simulation data analysis (Sec. V, Table II).
//
// Symbols (Table II):
//   dt   - simulation data availability period (months)
//   c_c  - compute cost ($/node/hour)
//   c_s  - storage cost ($/GiB/month)
//   n    - number of timesteps
//   n_o  - number of output steps
//   n_r  - number of restart steps
//   s_o  - output step size (GiB)
//   s_r  - restart step size (GiB)
//   P    - compute nodes used to run re-simulations
//
// Building blocks:
//   C_sim(O, P)        = O * tau_sim(P) * P * c_c
//   C_store(F, m, dt)  = F * m * dt * c_s
// Models:
//   C_on-disk(dt) = C_sim(n_o, N) + C_store(n_o, s_o, dt)
//   C_SimFS(dt)   = C_sim(n_o, P) + C_store(n_r, s_r, dt)
//                 + C_store(M, s_o, dt) + C_sim(V(gamma_dt), P)
//   C_in-situ(dt) = sum_j C_sim(i_j + |gamma_dt(j)|, P)
#pragma once

#include "common/types.hpp"

#include <cstdint>
#include <vector>

namespace simfs::cost {

/// Platform price calibration.
struct CostRates {
  double computePerNodeHour = 0.0;  ///< c_c ($/node/hour)
  double storagePerGiBMonth = 0.0;  ///< c_s ($/GiB/month)
};

/// Microsoft Azure calibration used by the paper (NCv2 VM + File share).
[[nodiscard]] constexpr CostRates azureRates() noexcept {
  return CostRates{2.07, 0.06};
}

/// Piz Daint calibration (derived from the public CSCS cost catalog;
/// approximate, used for the Fig. 15a datapoint).
[[nodiscard]] constexpr CostRates pizDaintRates() noexcept {
  return CostRates{1.00, 0.04};
}

/// The COSMO production scenario of Sec. V-A.
struct Scenario {
  std::int64_t numOutputSteps = 8533;  ///< n_o: 50 TiB / 6 GiB per step
  double tauSimSeconds = 20.0;         ///< tau_sim(P): one step per 20 s
  int nodes = 100;                     ///< P
  double outputGiB = 6.0;              ///< s_o
  double restartGiB = 36.0;            ///< s_r
  double modelMinutesPerStep = 5.0;    ///< model-time between output steps

  /// Output steps per restart interval for a restart spacing given in
  /// hours of *model* time (e.g. 8 h -> 96 steps at 5 min/step).
  [[nodiscard]] std::int64_t restartIntervalSteps(double deltaRHours) const noexcept;

  /// Number of restart files n_r on the timeline for a restart spacing.
  [[nodiscard]] std::int64_t numRestartFiles(double deltaRHours) const noexcept;

  /// Total output data volume in GiB (the "100%" for cache fractions).
  [[nodiscard]] double totalOutputGiB() const noexcept {
    return static_cast<double>(numOutputSteps) * outputGiB;
  }
};

/// Default scenario exactly as calibrated in Sec. V-A.
[[nodiscard]] Scenario cosmoScenario() noexcept;

/// C_sim(O, P): cost of simulating `outputSteps` output steps.
[[nodiscard]] double simCost(std::int64_t outputSteps, const Scenario& s,
                             const CostRates& rates) noexcept;

/// C_store(F files of `sizeGiB`, dt months).
[[nodiscard]] double storeCost(std::int64_t files, double sizeGiB,
                               double months, const CostRates& rates) noexcept;

/// C_on-disk(dt): initial simulation + storing all output steps.
[[nodiscard]] double onDiskCost(const Scenario& s, double months,
                                const CostRates& rates) noexcept;

/// One analysis for the in-situ model: starts at output step `start` and
/// reads `length` steps forward.
struct AnalysisSpan {
  StepIndex start = 0;
  std::int64_t length = 0;
};

/// C_in-situ(dt): every analysis j re-runs the simulation from step 0 to
/// its last accessed step i_j + |gamma(j)|.
[[nodiscard]] double inSituCost(const Scenario& s,
                                const std::vector<AnalysisSpan>& analyses,
                                const CostRates& rates) noexcept;

/// C_SimFS(dt): initial simulation + restart-file storage + cache storage
/// + re-simulated steps V(gamma_dt) (obtained from a cache replay).
[[nodiscard]] double simfsCost(const Scenario& s, double months,
                               double deltaRHours, double cacheFraction,
                               std::int64_t resimulatedSteps,
                               const CostRates& rates) noexcept;

/// Wall-clock hours of re-simulation compute (Fig. 15c's y-axis):
/// V * tau_sim / 3600.
[[nodiscard]] double resimulationHours(const Scenario& s,
                                       std::int64_t resimulatedSteps) noexcept;

}  // namespace simfs::cost
