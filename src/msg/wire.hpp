// Zero-copy wire-pipeline building blocks: pooled framed send buffers and
// bump arenas for receive-side message copies.
//
//   * WireBuffer — a growable byte buffer holding ONE framed message. The
//     4-byte length header is reserved up front by beginFrame() and
//     back-patched by endFrame(), so serialization writes the final wire
//     bytes in one pass — no encode-then-frame re-copy. Messages that fit
//     kInlineCapacity (all control traffic) live entirely in inline
//     storage: a pooled buffer round trip touches no allocator at all.
//   * BufferPool — a bounded free-list of WireBuffers. Transports keep one
//     per connection so steady-state sends reuse the same handful of
//     buffers; the reactor returns them after writev() completes.
//   * Arena — a bump allocator for receive-side copies that must outlive
//     the transport's receive buffer (queued daemon requests, buffered
//     replies). reset() recycles the blocks, so a drain-reset cycle is
//     allocation-free once warm.
//
// Pool sizing knobs (read once per pool at construction):
//   SIMFS_WIRE_POOL_BUFS    max buffers retained per pool     (default 64)
//   SIMFS_WIRE_BUF_RETAIN   max capacity retained per buffer; buffers
//                           grown past this are shrunk back to inline
//                           storage on release (default 256 KiB)
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <new>
#include <span>
#include <string_view>
#include <type_traits>
#include <vector>

namespace simfs::msg {

/// THE frame-size constant: sized so every control message (acks, opens,
/// small batches) fits without spilling. WireBuffer's inline storage and
/// the shm ring slot size both derive from it — a static_assert in
/// shm_ring.hpp ties them together, so the two paths cannot drift apart.
inline constexpr std::size_t kInlineFrameBytes = 256;

/// One framed outbound message; see file comment.
class WireBuffer {
 public:
  /// Control messages (acks, opens, small batches) fit inline; only bulk
  /// payloads (ring tables, big batches) spill to the heap.
  static constexpr std::size_t kInlineCapacity = kInlineFrameBytes;
  static constexpr std::size_t kFrameHeaderBytes = 4;

  WireBuffer() = default;
  WireBuffer(WireBuffer&& other) noexcept { moveFrom(other); }
  WireBuffer& operator=(WireBuffer&& other) noexcept {
    if (this != &other) moveFrom(other);
    return *this;
  }
  WireBuffer(const WireBuffer&) = delete;
  WireBuffer& operator=(const WireBuffer&) = delete;

  /// Starts a frame: resets the buffer and reserves the length header.
  void beginFrame() {
    size_ = kFrameHeaderBytes;
  }

  /// Back-patches the length header with the payload size.
  void endFrame() {
    const auto payload = static_cast<std::uint32_t>(size_ - kFrameHeaderBytes);
    char* base = data();
    for (int i = 0; i < 4; ++i) {
      base[i] = static_cast<char>((payload >> (8 * i)) & 0xFF);
    }
  }

  /// Appends `n` raw bytes.
  void append(const void* p, std::size_t n) {
    std::memcpy(grow(n), p, n);
  }

  /// Reserves `n` bytes at the tail and returns the write cursor.
  char* grow(std::size_t n) {
    ensure(size_ + n);
    char* at = data() + size_;
    size_ += n;
    return at;
  }

  [[nodiscard]] char* data() noexcept {
    return heap_ ? heap_.get() : inline_;
  }
  [[nodiscard]] const char* data() const noexcept {
    return heap_ ? heap_.get() : inline_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// The complete frame (header + payload).
  [[nodiscard]] std::string_view view() const noexcept {
    return {data(), size_};
  }
  /// The payload only (what decode()/MessageView::parse consume).
  [[nodiscard]] std::string_view payload() const noexcept {
    return {data() + kFrameHeaderBytes, size_ - kFrameHeaderBytes};
  }

  void clear() noexcept { size_ = 0; }

  /// Drops heap storage grown past `maxRetainBytes` (pool hygiene: one
  /// huge ring table must not pin megabytes in the free list forever).
  void shrink(std::size_t maxRetainBytes) noexcept {
    if (heap_ && cap_ > maxRetainBytes) {
      heap_.reset();
      cap_ = kInlineCapacity;
    }
    size_ = 0;
  }

 private:
  void ensure(std::size_t need) {
    if (need <= cap_) return;
    std::size_t cap = cap_ * 2;
    while (cap < need) cap *= 2;
    auto grown = std::make_unique<char[]>(cap);
    std::memcpy(grown.get(), data(), size_);
    heap_ = std::move(grown);
    cap_ = cap;
  }

  void moveFrom(WireBuffer& other) noexcept {
    heap_ = std::move(other.heap_);
    cap_ = other.cap_;
    size_ = other.size_;
    if (!heap_ && size_ > 0) std::memcpy(inline_, other.inline_, size_);
    other.cap_ = kInlineCapacity;
    other.size_ = 0;
  }

  char inline_[kInlineCapacity];
  std::unique_ptr<char[]> heap_;  ///< null while the buffer fits inline
  std::size_t cap_ = kInlineCapacity;
  std::size_t size_ = 0;
};

/// Bounded, thread-safe free-list of WireBuffers; see file comment.
class BufferPool {
 public:
  /// Zero arguments = take the SIMFS_WIRE_* environment knobs.
  BufferPool();
  BufferPool(std::size_t maxBuffers, std::size_t maxRetainBytes);

  /// Pops a cleared buffer off the free list (or makes a fresh one).
  [[nodiscard]] WireBuffer acquire();

  /// Returns a buffer to the free list. Over-grown buffers are shrunk
  /// back to inline storage; past `maxBuffers` the buffer is dropped.
  void release(WireBuffer&& buffer);

  [[nodiscard]] std::size_t retained() const;

 private:
  const std::size_t maxBuffers_;
  const std::size_t maxRetainBytes_;
  mutable std::mutex mutex_;
  std::vector<WireBuffer> free_;
};

/// Bump allocator; see file comment. Not thread-safe: callers provide the
/// exclusion (the daemon allocates under the shard queue/serving locks).
class Arena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = 64 * 1024;
  /// reset() keeps at most this many bytes of blocks (burst hygiene:
  /// one queue-full flood of large batches must not pin its peak
  /// footprint in every shard's arenas forever). Generous enough that a
  /// deep-but-normal drain batch stays within its warm blocks — only
  /// genuine bursts pay a refill.
  static constexpr std::size_t kDefaultRetainBytes = 8 * 1024 * 1024;

  explicit Arena(std::size_t blockBytes = kDefaultBlockBytes,
                 std::size_t maxRetainBytes = kDefaultRetainBytes)
      : blockBytes_(blockBytes),
        maxRetainBytes_(std::max(blockBytes, maxRetainBytes)) {}

  /// Raw aligned allocation. Only trivially-destructible payloads belong
  /// in an arena — reset() never runs destructors.
  [[nodiscard]] void* alloc(std::size_t bytes, std::size_t align);

  template <typename T>
  [[nodiscard]] std::span<T> allocSpan(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>);
    if (n == 0) return {};
    auto* p = static_cast<T*>(alloc(n * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < n; ++i) new (p + i) T();
    return {p, n};
  }

  /// Copies `s` into the arena and returns the stable view.
  [[nodiscard]] std::string_view copyString(std::string_view s) {
    if (s.empty()) return {};
    auto* p = static_cast<char*>(alloc(s.size(), 1));
    std::memcpy(p, s.data(), s.size());
    return {p, s.size()};
  }

  /// Rewinds to empty. Blocks are kept for reuse up to the retain
  /// budget; beyond it (a burst of oversized batches) they are freed so
  /// steady-state memory tracks steady-state load, not the peak.
  void reset() noexcept {
    std::size_t kept = 0;
    std::size_t n = 0;
    while (n < blocks_.size() && kept + blocks_[n].cap <= maxRetainBytes_) {
      kept += blocks_[n].cap;
      ++n;
    }
    // Note a normal first block (cap == blockBytes_) always fits the
    // budget, so the steady state keeps its warm blocks; only oversize
    // burst blocks are dropped.
    blocks_.resize(n);
    block_ = 0;
    used_ = 0;
  }

  [[nodiscard]] std::size_t blockCount() const noexcept {
    return blocks_.size();
  }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    std::size_t cap = 0;
  };

  const std::size_t blockBytes_;
  const std::size_t maxRetainBytes_;
  std::vector<Block> blocks_;
  std::size_t block_ = 0;  ///< index of the block being bumped
  std::size_t used_ = 0;   ///< bytes consumed in blocks_[block_]
};

}  // namespace simfs::msg
