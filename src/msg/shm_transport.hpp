// Same-host shared-memory transport and its kHello negotiation.
//
// The data plane is a per-connection POSIX shm segment holding two SPSC
// rings (see shm_ring.hpp). The companion Unix socket stays open for the
// whole session but carries no traffic once the upgrade settles — its
// only remaining job is crash detection: a peer that dies (even SIGKILL)
// closes its socket fd, the surviving side observes EOF and tears the shm
// session down exactly like a socket loss, so Session's rebind/resend
// machinery needs no new code path.
//
// Negotiation (rides kHello, fully backward compatible):
//
//   client                               daemon
//     | kHello{caps|=shm, text=key}  ->    |   (socket)
//     |                                    |  accept: map segment, swap the
//     |    <- kHelloAck{choice=shm}        |   session transport, ack on the
//     |        (RING)                      |   RING
//     |    <- kHelloAck/kRedirect/kError   |  decline / old daemon: answer on
//     |        (socket)                    |   the socket as always
//
// The client wrapper buffers every send between the hello and the ack, so
// after the handshake settles exactly ONE channel has ever carried
// traffic — per-session FIFO ordering survives the upgrade. An old daemon
// simply ignores the offer fields and answers on the socket; an old
// client never sets the capability bit and the daemon never upgrades.
//
// Knobs: SIMFS_SHM=0 disables the offer (client) and acceptance (daemon);
// SIMFS_SHM_RING_SLOTS sizes each direction's ring (default 1024 slots of
// kShmSlotBytes).
#pragma once

#include "common/status.hpp"
#include "msg/transport.hpp"

#include <memory>
#include <string>

namespace simfs::msg {

/// True unless SIMFS_SHM=0 — gates both the client offer and the daemon's
/// acceptance. Read per call, so tests can flip it between connections.
[[nodiscard]] bool shmNegotiationEnabled();

/// Client side: wraps a freshly-dialed socket transport in the shm
/// negotiator described above. Called by unixSocketConnect; the wrapper
/// is a pure passthrough until (and unless) a kHello flows through it.
[[nodiscard]] std::unique_ptr<Transport> wrapShmClient(
    std::unique_ptr<Transport> socket);

/// Daemon side: maps the client-created segment named `key`, takes
/// ownership of the session's socket transport and returns the combined
/// shm transport — the caller then sends its kHelloAck through it (i.e.
/// over the ring, which IS the accept signal). Returns nullptr on any
/// validation/mapping failure, leaving `socket` untouched so the caller
/// falls back to the socket path. The segment is shm_unlink()ed as soon
/// as it is mapped: no crash can leak it.
[[nodiscard]] std::unique_ptr<Transport> shmAdoptServer(
    const std::string& key, std::unique_ptr<Transport>& socket);

}  // namespace simfs::msg
