// Minimal raw-syscall io_uring wrapper for the reactor's uring backend.
//
// No liburing dependency: the ring is set up with io_uring_setup(2), SQ/
// CQ/SQE arrays are mmap()ed directly and submission goes through
// io_uring_enter(2) with EXT_ARG timeouts. The surface is exactly what
// the reactor needs — SQE acquisition, submit(+wait), CQE drain, and one
// provided-buffer ring (IORING_REGISTER_PBUF_RING) feeding multishot
// recv — nothing more.
//
// Compile-gated on the kernel headers: on a toolchain without
// <linux/io_uring.h> everything degrades to supported() == false and the
// reactor stays on epoll.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>

#if __has_include(<linux/io_uring.h>)
#define SIMFS_HAS_URING 1
#include <linux/io_uring.h>
#else
#define SIMFS_HAS_URING 0
#endif

namespace simfs::msg::uring {

/// Cached runtime probe: true when the kernel accepts an io_uring with
/// the features this backend relies on (EXT_ARG timeouts and a provided-
/// buffer ring). False on old kernels, seccomp-filtered sandboxes, or
/// builds without the headers.
[[nodiscard]] bool supported();

#if SIMFS_HAS_URING

class Queue {
 public:
  Queue() = default;
  ~Queue();
  Queue(const Queue&) = delete;
  Queue& operator=(const Queue&) = delete;

  /// Sets the ring up with `sqEntries` submission slots. False on any
  /// setup/mmap failure or missing kernel feature (caller falls back).
  [[nodiscard]] bool init(unsigned sqEntries);

  /// Next free SQE (zeroed), or nullptr when the SQ is full — submit()
  /// and retry.
  [[nodiscard]] io_uring_sqe* getSqe();

  /// Submits queued SQEs without waiting. Returns -errno on failure.
  int submit();

  /// Submits queued SQEs and waits up to `timeout` for >= 1 CQE
  /// (negative timeout = block indefinitely). Returns -errno on failure;
  /// -ETIME (timeout expired) is a normal outcome.
  int submitAndWait(std::chrono::nanoseconds timeout);

  /// Drains every pending CQE through `fn(const io_uring_cqe&)`.
  template <typename Fn>
  unsigned drainCqes(Fn&& fn) {
    unsigned head = *cqHead_;
    const unsigned tail = __atomic_load_n(cqTail_, __ATOMIC_ACQUIRE);
    unsigned n = 0;
    while (head != tail) {
      fn(cqes_[head & cqMask_]);
      ++head;
      ++n;
    }
    __atomic_store_n(cqHead_, head, __ATOMIC_RELEASE);
    return n;
  }

  /// Registers a provided-buffer ring (group `bgid`): `bufCount` (power
  /// of two) buffers of `bufBytes` each, carved from one slab, all
  /// published to the kernel immediately. Multishot recv SQEs select
  /// from this pool via IOSQE_BUFFER_SELECT.
  [[nodiscard]] bool setupBufRing(std::uint16_t bgid, std::uint32_t bufCount,
                                  std::uint32_t bufBytes);

  /// Hands buffer `bid` back to the kernel after its data is consumed.
  void recycleBuf(std::uint16_t bid);


  [[nodiscard]] char* bufData(std::uint16_t bid) const noexcept {
    return slab_ + static_cast<std::size_t>(bid) * bufBytes_;
  }
  [[nodiscard]] std::uint32_t bufBytes() const noexcept { return bufBytes_; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  int fd_ = -1;
  unsigned sqEntries_ = 0;
  void* sqRing_ = nullptr;
  std::size_t sqRingBytes_ = 0;
  void* cqRing_ = nullptr;  ///< == sqRing_ with IORING_FEAT_SINGLE_MMAP
  std::size_t cqRingBytes_ = 0;
  io_uring_sqe* sqes_ = nullptr;
  std::size_t sqesBytes_ = 0;
  unsigned* sqHead_ = nullptr;
  unsigned* sqTail_ = nullptr;
  unsigned sqMask_ = 0;
  unsigned* sqArray_ = nullptr;
  unsigned* cqHead_ = nullptr;
  unsigned* cqTail_ = nullptr;
  unsigned cqMask_ = 0;
  io_uring_cqe* cqes_ = nullptr;
  unsigned localTail_ = 0;  ///< SQEs written but not yet pushed to ktail
  unsigned pending_ = 0;    ///< SQEs pushed but not yet submitted

  io_uring_buf_ring* bufRing_ = nullptr;
  std::size_t bufRingBytes_ = 0;
  char* slab_ = nullptr;
  std::uint32_t bufCount_ = 0;
  std::uint32_t bufBytes_ = 0;
  unsigned bufTail_ = 0;
};

#endif  // SIMFS_HAS_URING

}  // namespace simfs::msg::uring
