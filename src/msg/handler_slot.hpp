// Internal receive-side handler machinery shared by the transport
// implementations (socket reactor, in-proc pair, shm negotiator). Not
// part of the public API — include only from src/msg/*.cpp.
//
//   * scratch buffers — per-thread stack of WireBuffers for view
//     deliveries that start from an owned Message.
//   * HandlerSlot — at most one of the two handler kinds installed
//     (latest wins) plus the pre-handler backlog.
//   * installAndReplay — the setHandler/setViewHandler body: install,
//     then replay the backlog in order on the calling thread.
#pragma once

#include "common/log.hpp"
#include "msg/message.hpp"
#include "msg/transport.hpp"

#include <iterator>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace simfs::msg::detail {

/// Per-thread stack of scratch WireBuffers for view deliveries that start
/// from an owned Message (in-proc sends, backlog replay, legacy-handler
/// adaptation). A STACK, not a single buffer: a handler that replies
/// inline over another in-proc transport nests a second delivery while
/// the outer view still references the outer scratch buffer.
inline std::vector<WireBuffer>& scratchStack() {
  thread_local std::vector<WireBuffer> stack;
  return stack;
}

inline WireBuffer acquireScratch() {
  auto& stack = scratchStack();
  if (stack.empty()) return WireBuffer();
  WireBuffer b = std::move(stack.back());
  stack.pop_back();
  return b;
}

inline void releaseScratch(WireBuffer&& b) {
  auto& stack = scratchStack();
  if (stack.size() >= 8) return;
  b.shrink(64 * 1024);
  stack.push_back(std::move(b));
}

/// Encodes `m` (Message or MessageRef) into a scratch buffer and hands
/// the parsed view to `handler` — the adapter between owned messages and
/// the zero-copy receive contract.
template <typename M>
void deliverAsView(const Transport::ViewHandler& handler, const M& m) {
  WireBuffer scratch = acquireScratch();
  encodeInto(m, scratch);
  auto view = MessageView::parse(scratch.payload());
  SIMFS_CHECK(view.isOk());  // our own encoder output always parses
  handler(*view);
  releaseScratch(std::move(scratch));
}

/// The receive-side handler state shared by the transports: at most one
/// of the two handler kinds installed (latest wins), plus the pre-handler
/// backlog. Handlers live behind shared_ptr so delivery copies a pointer
/// under the lock instead of a std::function (whose captures would
/// otherwise reallocate on every message).
struct HandlerSlot {
  std::shared_ptr<Transport::Handler> onMessage;
  std::shared_ptr<Transport::ViewHandler> onView;
  bool draining = false;  ///< a setHandler replay is in flight
  std::vector<Message> backlog;

  [[nodiscard]] bool any() const noexcept {
    return onMessage != nullptr || onView != nullptr;
  }
};

/// setHandler/setViewHandler body shared by the implementations: installs
/// the handler (exactly one of `h`/`vh`) and replays the backlog in order
/// on the calling thread. `draining` makes concurrent sends append behind
/// the replay instead of overtaking.
template <typename Lockable>
void installAndReplay(Lockable& mutex, HandlerSlot& slot, Transport::Handler h,
                      Transport::ViewHandler vh) {
  std::unique_lock lock(mutex);
  if (h) {
    slot.onMessage = std::make_shared<Transport::Handler>(std::move(h));
    slot.onView.reset();
  } else if (vh) {
    slot.onView = std::make_shared<Transport::ViewHandler>(std::move(vh));
    slot.onMessage.reset();
  } else {
    slot.onMessage.reset();
    slot.onView.reset();
    return;
  }
  if (slot.backlog.empty()) return;
  slot.draining = true;
  while (!slot.backlog.empty()) {
    std::vector<Message> batch(std::make_move_iterator(slot.backlog.begin()),
                               std::make_move_iterator(slot.backlog.end()));
    slot.backlog.clear();
    const auto msgHandler = slot.onMessage;
    const auto viewHandler = slot.onView;
    lock.unlock();
    for (auto& m : batch) {
      if (viewHandler) {
        deliverAsView(*viewHandler, m);
      } else {
        (*msgHandler)(std::move(m));
      }
    }
    lock.lock();
  }
  slot.draining = false;
}

/// Hands one decoded view to the slot's handler: in place for a view
/// handler, as an owned materialization for a legacy handler or the
/// pre-handler backlog.
template <typename Lockable>
void deliverView(Lockable& mutex, HandlerSlot& slot, const MessageView& view) {
  std::shared_ptr<Transport::Handler> h;
  std::shared_ptr<Transport::ViewHandler> vh;
  {
    std::lock_guard lock(mutex);
    if (!slot.any() || slot.draining) {
      slot.backlog.push_back(view.toMessage());
      return;
    }
    vh = slot.onView;
    h = slot.onMessage;
  }
  if (vh) {
    (*vh)(view);
  } else {
    (*h)(view.toMessage());
  }
}

}  // namespace simfs::msg::detail
