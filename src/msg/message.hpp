// DV <-> DVLib protocol messages (the "TCP/IP control messages" of Fig. 4).
//
// One compact tagged struct covers the whole protocol; the fields a given
// message type uses are documented next to the type. Encoding is a simple
// length-prefixed binary format (little-endian) so the same messages flow
// over the in-process transport and Unix-domain sockets unchanged.
#pragma once

#include "common/status.hpp"
#include "common/types.hpp"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace simfs::msg {

/// Protocol message types.
enum class MsgType : std::uint16_t {
  // --- session setup -------------------------------------------------------
  kHello = 1,      ///< client->DV: context=ctx name, intArg=role (ClientRole)
  kHelloAck,       ///< DV->client: code=status, intArg=assigned client id

  // --- analysis-side data access (Sec. III-A, III-C) -----------------------
  kOpenReq,        ///< files[0]=name: transparent open interception
  kOpenAck,        ///< code=status, intArg: 1 if already available else 0
  kCloseNotify,    ///< files[0]=name: close interception (deref), no reply
  kAcquireReq,     ///< files[]: SIMFS_Acquire(_nb)
  kAcquireAck,     ///< code=status, intArg=estimated wait (ns)
  kReleaseReq,     ///< files[0]=name: SIMFS_Release
  kReleaseAck,     ///< code=status
  kBitrepReq,      ///< files[0]=name: SIMFS_Bitrep
  kBitrepAck,      ///< code=status, intArg: 1 bitwise match, 0 mismatch
  kFileReady,      ///< DV->client: files[0]=name, code=status (also failures)

  // --- simulator-side events (Sec. III-B) -----------------------------------
  kSimHello,       ///< simulator->DV: intArg=job id
  kSimFileCreated, ///< files[0]=name: create interception (redirect)
  kSimFileClosed,  ///< files[0]=name, intArg=size: file is ready on disk
  kSimFinished,    ///< job completed; code=status (failures propagate)

  // --- introspection ----------------------------------------------------------
  kStatusReq,      ///< ask the DV for its aggregate statistics
  kStatusAck,      ///< text="key=value;..." dump, intArg=stepsProduced

  // --- generic --------------------------------------------------------------
  kError,          ///< code=status, text=message

  // --- introspection (daemon pipeline) ---------------------------------------
  kShardStatsReq,  ///< ask the daemon for per-shard serving counters
  kShardStatsAck,  ///< files[i]="key=value;..." per shard, intArg=#shards,
                   ///< text="shards=N;workers=M"

  // --- federation (consistent-hash context routing) --------------------------
  kRedirect,       ///< DV->client: context is owned by another node.
                   ///< context=ctx, text=owner node id, files[i]=ring
                   ///< entries "id=endpoint", intArg=ring version
  kRingReq,        ///< ask a daemon for its ring membership table
  kRingUpdate,     ///< DV->client: files[i]="id=endpoint", intArg=ring
                   ///< version, text=answering node's id. Sent as the
                   ///< kRingReq reply and pushed when a daemon learns a
                   ///< newer table; receivers re-resolve routing.

  // --- vectored session ops (async DVLib core) --------------------------------
  kOpenBatchReq,   ///< files[]: open N files in ONE round trip. The daemon
                   ///< resolves the whole batch under a single shard-lock
                   ///< acquisition; per-file outcomes come back in the ack.
  kOpenBatchAck,   ///< code/text=worst per-file status. Outcome pairs are
                   ///< positional (request order): ints[2i]=per-file
                   ///< StatusCode*2 + (1 if already available),
                   ///< ints[2i+1]=per-file estimated wait (ns).
                   ///< intArg=#immediately available, intArg2=max
                   ///< estimated wait across the batch.
  kCancelReq,      ///< files[]: release DV interest registered by an
                   ///< abandoned acquire — per file, either the client's
                   ///< waiter entry (still pending) or one output-step
                   ///< reference (already delivered). Never shed: dropping
                   ///< a cancel would leak pinned cache slots. requestId 0
                   ///< = fire-and-forget (no ack), the DVLib default.
  kCancelAck,      ///< code=status, intArg=#files whose interest was freed
                   ///< (only sent for cancels with requestId != 0)
};

/// Who is connecting (intArg of kHello).
enum class ClientRole : std::int64_t { kAnalysis = 0, kSimulator = 1 };

/// The one protocol message shape.
struct Message {
  MsgType type = MsgType::kError;
  std::uint64_t requestId = 0;   ///< echoes the request on replies
  std::string context;           ///< simulation context name
  std::vector<std::string> files;
  /// Type-specific scalar list (e.g. the per-file outcome pairs of
  /// kOpenBatchAck). Encoded after `files`.
  std::vector<std::int64_t> ints;
  std::int32_t code = 0;         ///< StatusCode as int
  std::int64_t intArg = 0;       ///< type-specific scalar
  std::int64_t intArg2 = 0;      ///< second scalar (e.g. estimated wait)
  /// Federation forwarding hop count. A daemon only relays messages with
  /// hops == 0 and increments it on the relayed copy, so disagreeing
  /// rings can never ping-pong a message between nodes.
  std::uint16_t hops = 0;
  std::string text;              ///< human-readable detail

  friend bool operator==(const Message&, const Message&) = default;
};

/// Serializes a message (without any outer framing).
[[nodiscard]] std::string encode(const Message& m);

/// Parses an encode()d buffer.
[[nodiscard]] Result<Message> decode(std::string_view data);

/// Frames a payload with a u32 length prefix for stream transports.
[[nodiscard]] std::string frame(std::string_view payload);

}  // namespace simfs::msg
