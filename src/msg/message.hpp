// DV <-> DVLib protocol messages (the "TCP/IP control messages" of Fig. 4).
//
// One compact tagged struct covers the whole protocol; the fields a given
// message type uses are documented next to the type. Encoding is a simple
// length-prefixed binary format (little-endian) so the same messages flow
// over the in-process transport and Unix-domain sockets unchanged.
#pragma once

#include "common/status.hpp"
#include "common/types.hpp"
#include "msg/wire.hpp"

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace simfs::msg {

/// Protocol message types.
enum class MsgType : std::uint16_t {
  // --- session setup -------------------------------------------------------
  kHello = 1,      ///< client->DV: context=ctx name, intArg=role (ClientRole).
                   ///< Transport negotiation (additive, PR 7): intArg2 is a
                   ///< bitmask of client transport capabilities (0 = legacy
                   ///< client, socket only) and text carries the client's shm
                   ///< segment key when kHelloCapShm is set. Old daemons
                   ///< ignore both fields — the offer degrades transparently.
  kHelloAck,       ///< DV->client: code=status, intArg=assigned client id.
                   ///< intArg2=TransportChoice the daemon selected; 0
                   ///< (kLegacy) from old daemons AND whenever the client did
                   ///< not advertise capabilities, so acks to legacy clients
                   ///< stay byte-identical to the pre-negotiation protocol.

  // --- analysis-side data access (Sec. III-A, III-C) -----------------------
  kOpenReq,        ///< files[0]=name: transparent open interception
  kOpenAck,        ///< code=status, intArg: 1 if already available else 0
  kCloseNotify,    ///< files[0]=name: close interception (deref), no reply
  kAcquireReq,     ///< files[]: SIMFS_Acquire(_nb)
  kAcquireAck,     ///< code=status, intArg=estimated wait (ns)
  kReleaseReq,     ///< files[]: SIMFS_Release. Vectored like kOpenBatchReq:
                   ///< the daemon drops every file's reference under ONE
                   ///< shard-lock acquisition.
  kReleaseAck,     ///< code=worst per-file status, intArg=#refs released
  kBitrepReq,      ///< files[0]=name: SIMFS_Bitrep
  kBitrepAck,      ///< code=status, intArg: 1 bitwise match, 0 mismatch
  kFileReady,      ///< DV->client: files[0]=name, code=status (also failures)

  // --- simulator-side events (Sec. III-B) -----------------------------------
  kSimHello,       ///< simulator->DV: intArg=job id
  kSimFileCreated, ///< files[0]=name: create interception (redirect)
  kSimFileClosed,  ///< files[0]=name, intArg=size: file is ready on disk
  kSimFinished,    ///< job completed; code=status (failures propagate)

  // --- introspection ----------------------------------------------------------
  kStatusReq,      ///< ask the DV for its aggregate statistics
  kStatusAck,      ///< text="key=value;..." dump, intArg=stepsProduced

  // --- generic --------------------------------------------------------------
  kError,          ///< code=status, text=message

  // --- introspection (daemon pipeline) ---------------------------------------
  kShardStatsReq,  ///< ask the daemon for per-shard serving counters
  kShardStatsAck,  ///< files[i]="key=value;..." per shard, intArg=#shards,
                   ///< text="shards=N;workers=M"

  // --- federation (consistent-hash context routing) --------------------------
  kRedirect,       ///< DV->client: context is owned by another node.
                   ///< context=ctx, text=owner node id, files[i]=ring
                   ///< entries "id=endpoint", intArg=ring version.
                   ///< intArg2=read-replica count R (additive, PR 8):
                   ///< 0 from pre-replica daemons and whenever replicas
                   ///< are disabled, so legacy redirects stay
                   ///< byte-identical.
  kRingReq,        ///< ask a daemon for its ring membership table
  kRingUpdate,     ///< DV->client: files[i]="id=endpoint", intArg=ring
                   ///< version, text=answering node's id. Sent as the
                   ///< kRingReq reply and pushed when a daemon learns a
                   ///< newer table; receivers re-resolve routing.
                   ///< intArg2=read-replica count R (0 = replicas off).

  // --- vectored session ops (async DVLib core) --------------------------------
  kOpenBatchReq,   ///< files[]: open N files in ONE round trip. The daemon
                   ///< resolves the whole batch under a single shard-lock
                   ///< acquisition; per-file outcomes come back in the ack.
                   ///< intArg2=relative deadline budget (ns, 0 = none): the
                   ///< daemon converts it to an absolute shard deadline at
                   ///< dispatch, and re-simulations whose waiters have all
                   ///< expired or cancelled are killed. Relative on the wire
                   ///< so cross-process clock skew cannot shift it.
  kOpenBatchAck,   ///< code/text=worst per-file status. Outcome pairs are
                   ///< positional (request order): ints[2i]=per-file
                   ///< StatusCode*2 + (1 if already available),
                   ///< ints[2i+1]=per-file estimated wait (ns).
                   ///< intArg=#immediately available, intArg2=max
                   ///< estimated wait across the batch.
  kCancelReq,      ///< files[]: release DV interest registered by an
                   ///< abandoned acquire — per file, either the client's
                   ///< waiter entry (still pending) or one output-step
                   ///< reference (already delivered). Never shed: dropping
                   ///< a cancel would leak pinned cache slots. requestId 0
                   ///< = fire-and-forget (no ack), the DVLib default.
  kCancelAck,      ///< code=status, intArg=#files whose interest was freed
                   ///< (only sent for cancels with requestId != 0)

  // --- liveness (peer health / probing) ---------------------------------------
  kPing,           ///< liveness probe: intArg=sender's monotonic sequence
                   ///< number. Sent daemon->daemon as the peer heartbeat and
                   ///< by `simfsctl ping`; answered inline, never queued.
  kPong,           ///< probe reply: intArg echoes the ping sequence,
                   ///< text=answering node's id

  // --- read-only replica leases (owner -> ring successors) --------------------
  kLeaseGrant,     ///< owner->replica: context, intArg=lease generation,
                   ///< ints[]=resident StepIndex values now covered,
                   ///< text=granting node's id. Grants are incremental
                   ///< (union into the replica's leased set) and fenced
                   ///< by generation: a grant older than the replica's
                   ///< current generation is inert.
  kLeaseRevoke,    ///< owner->replica: context, intArg=lease generation
                   ///< (already bumped past every outstanding grant),
                   ///< ints[]=steps to revoke; an EMPTY list revokes the
                   ///< whole context (used for resync after a peer link
                   ///< is re-established). Sent BEFORE the owner mutates
                   ///< the step (eviction unlink / re-simulation).
  kLeaseAck,       ///< replica->owner: context, code=status, intArg
                   ///< echoes the generation, intArg2=1 when acking a
                   ///< revoke (0 for grants), text=acking node's id.

  // --- context geometry (POSIX frontend namespace synthesis) ------------------
  kGeometryReq,    ///< ask a daemon for a context's step/file geometry so a
                   ///< POSIX adapter can synthesize listings and stat
                   ///< results without opening anything. context="" asks
                   ///< for the context enumeration instead. Answered inline
                   ///< on the dispatching thread (geometry is static config,
                   ///< registered on every node, so no kRedirect is needed).
  kGeometryAck,    ///< context form: ints[] = [deltaD, deltaR, numTimesteps,
                   ///< outputStepBytes, padWidth], files[] = [outputPrefix,
                   ///< outputSuffix], intArg = numOutputSteps, text =
                   ///< answering node's id, code = status (kNotFound for an
                   ///< unknown context). Enumeration form (req context ""):
                   ///< files[] = registered context names, intArg = count,
                   ///< ints[] empty. Decoders must length-check both lists
                   ///< like every other ack — a hostile peer controls them.

  // --- elastic membership (ring admin + live context handoff) ---------------
  kRingPropose,    ///< admin/peer->DV: stage a membership change. files[] =
                   ///< proposed ring entries ("id=endpoint"), intArg =
                   ///< proposed ring version (must exceed the current one).
                   ///< The first receiver (hops == 0) relays the proposal to
                   ///< every member of old ∪ new membership; each node that
                   ///< loses a context starts streaming its kContextHandoff
                   ///< snapshot to the new owner while still serving it.
  kRingProposeAck, ///< DV->admin: code=status, intArg=proposed version,
                   ///< intArg2=#contexts changing owner, files[] = the moved
                   ///< contexts as "ctx:oldOwner>newOwner".
  kRingCommit,     ///< admin/peer->DV: commit a proposed change. Same payload
                   ///< as kRingPropose (entries travel again, so a node that
                   ///< missed the proposal still converges). The receiver
                   ///< adopts the ring, applies staged handoff imports whose
                   ///< epoch matches, and relays when hops == 0. Old owners
                   ///< flip moved contexts to redirect mode at this point.
  kRingCommitAck,  ///< DV->admin: code=status, intArg=committed version.
  kContextHandoff, ///< old owner->new owner: one snapshot frame of a moving
                   ///< context. context=name, intArg=epoch (the ring version
                   ///< the transfer belongs to — the fence), text=sender's
                   ///< node id. Data frame (intArg2 bit0 clear): ints[] =
                   ///< available StepIndex values (≤ SIMFS_HANDOFF_BATCH per
                   ///< frame). Final frame (intArg2 bit0 set): ints[] =
                   ///< [leaseGen, totalRefs, (pendingStep, waiters)...] —
                   ///< lease generation for the PR 8 fence plus the pending
                   ///< steps clients are still owed, so the new owner can
                   ///< warm-launch their re-simulations. Frames with epoch <
                   ///< the receiver's committed version are rejected (stale);
                   ///< epoch == current applies immediately (post-commit
                   ///< delta); epoch > current is staged until kRingCommit.
  kContextHandoffAck, ///< new owner->old owner: context, code=status, intArg
                   ///< echoes the epoch, intArg2=1 when acking the final
                   ///< frame (the commit point of the transfer), text=acking
                   ///< node's id.
};

/// Who is connecting (intArg of kHello).
enum class ClientRole : std::int64_t { kAnalysis = 0, kSimulator = 1 };

/// kHello.intArg2 capability bit: the client can map a same-host shared-
/// memory ring pair; kHello.text then names its shm segment.
inline constexpr std::int64_t kHelloCapShm = 1;

/// kHello.intArg2 capability bit: the client understands replica serving —
/// a non-owner node holding an active read lease for the context may bind
/// the session locally instead of redirecting, and the client handles
/// per-file kNotLeased outcomes by retrying the batch at the ring owner.
inline constexpr std::int64_t kHelloCapReplica = 2;

/// kHello.intArg2 capability bit: the client speaks versioned protocol —
/// kHello.ints = [minVersion, maxVersion] it can serve, and the daemon
/// answers kHelloAck.ints = [chosenVersion] (the top of the intersection)
/// or rejects the hello with kFailedPrecondition when the ranges do not
/// overlap. Hellos without this bit (and the acks to them) are
/// byte-identical to the pre-negotiation protocol, which is what lets a
/// mixed-version ring upgrade rolling instead of in lockstep.
inline constexpr std::int64_t kHelloCapVersion = 4;

/// Protocol versions this build can speak. Version 1 is everything up to
/// the static-ring protocol; version 2 adds the elastic-membership ops
/// (kRingPropose/kRingCommit/kContextHandoff) and the version handshake
/// itself. kPing.intArg2 / kPong.intArg2 carry the same negotiation
/// additively (0 = legacy peer) so operators can read a node's negotiated
/// version without binding a session.
inline constexpr std::int64_t kProtocolVersionMin = 1;
inline constexpr std::int64_t kProtocolVersionMax = 2;

/// kHelloAck.intArg2: which data plane the daemon chose for this session.
/// kLegacy (0) doubles as "the daemon predates negotiation" — both sides
/// then behave exactly like the socket path.
enum class TransportChoice : std::int64_t {
  kLegacy = 0,
  kSocket = 1,
  kShm = 2,
  kUringSocket = 3,  ///< socket data plane, io_uring reactor backend
};

/// The one protocol message shape.
struct Message {
  MsgType type = MsgType::kError;
  std::uint64_t requestId = 0;   ///< echoes the request on replies
  std::string context;           ///< simulation context name
  std::vector<std::string> files;
  /// Type-specific scalar list (e.g. the per-file outcome pairs of
  /// kOpenBatchAck). Encoded after `files`.
  std::vector<std::int64_t> ints;
  std::int32_t code = 0;         ///< StatusCode as int
  std::int64_t intArg = 0;       ///< type-specific scalar
  std::int64_t intArg2 = 0;      ///< second scalar (e.g. estimated wait)
  /// Federation forwarding hop count. A daemon only relays messages with
  /// hops == 0 and increments it on the relayed copy, so disagreeing
  /// rings can never ping-pong a message between nodes.
  std::uint16_t hops = 0;
  std::string text;              ///< human-readable detail

  friend bool operator==(const Message&, const Message&) = default;
};

/// Non-owning message for the zero-copy send path: the same fields as
/// Message, but every string is a view and the lists are spans. Callers
/// keep the referenced storage alive until the send call returns (the
/// transport serializes into its own pooled buffer before queueing).
/// The daemon builds replies as MessageRefs over per-shard arena memory.
struct MessageRef {
  MsgType type = MsgType::kError;
  std::uint64_t requestId = 0;
  std::string_view context;
  std::span<const std::string_view> files;
  std::span<const std::int64_t> ints;
  std::int32_t code = 0;
  std::int64_t intArg = 0;
  std::int64_t intArg2 = 0;
  std::uint16_t hops = 0;
  std::string_view text;
};

/// Non-owning view over one encoded message, decoding IN PLACE from the
/// transport's receive buffer: scalars are parsed eagerly (cheap), the
/// context/text strings are string_views into the buffer, and files[] /
/// ints[] decode lazily through forward iterators. parse() validates the
/// whole buffer up front (hostile counts, truncation, trailing bytes —
/// exactly the checks decode() applies), so iteration afterwards is
/// unchecked and allocation-free.
///
/// Lifetime: a view (and everything it hands out) is valid only while the
/// underlying buffer is; transports guarantee it for the duration of the
/// receive callback and not a moment longer. Anything that outlives the
/// callback must be copied out (toMessage(), or an arena copy).
class MessageView {
 public:
  /// Validates `payload` (an encode()d message, no outer frame) and
  /// builds the view. Failure modes and messages match decode().
  [[nodiscard]] static Result<MessageView> parse(std::string_view payload);

  [[nodiscard]] MsgType type() const noexcept { return type_; }
  [[nodiscard]] std::uint64_t requestId() const noexcept { return requestId_; }
  [[nodiscard]] std::int32_t code() const noexcept { return code_; }
  [[nodiscard]] std::int64_t intArg() const noexcept { return intArg_; }
  [[nodiscard]] std::int64_t intArg2() const noexcept { return intArg2_; }
  [[nodiscard]] std::uint16_t hops() const noexcept { return hops_; }
  [[nodiscard]] std::string_view context() const noexcept { return context_; }
  [[nodiscard]] std::string_view text() const noexcept { return text_; }

  [[nodiscard]] std::size_t fileCount() const noexcept { return nFiles_; }
  [[nodiscard]] std::size_t intCount() const noexcept { return nInts_; }

  /// Forward iterator over files[], decoding each length-prefixed entry
  /// in place.
  class FileIterator {
   public:
    FileIterator() = default;
    FileIterator(const char* at, std::size_t remaining)
        : at_(at), remaining_(remaining) {}
    [[nodiscard]] std::string_view operator*() const;
    FileIterator& operator++();
    [[nodiscard]] bool operator==(const FileIterator& o) const noexcept {
      return remaining_ == o.remaining_;
    }

   private:
    const char* at_ = nullptr;
    std::size_t remaining_ = 0;  ///< entries left including *this
  };

  /// Forward iterator over ints[]; entries are byte-decoded, so the
  /// region needs no alignment.
  class IntIterator {
   public:
    IntIterator() = default;
    IntIterator(const char* at, std::size_t remaining)
        : at_(at), remaining_(remaining) {}
    [[nodiscard]] std::int64_t operator*() const;
    IntIterator& operator++() {
      at_ += 8;
      --remaining_;
      return *this;
    }
    [[nodiscard]] bool operator==(const IntIterator& o) const noexcept {
      return remaining_ == o.remaining_;
    }

   private:
    const char* at_ = nullptr;
    std::size_t remaining_ = 0;
  };

  [[nodiscard]] FileIterator filesBegin() const noexcept {
    return {filesRegion_.data(), nFiles_};
  }
  [[nodiscard]] FileIterator filesEnd() const noexcept { return {nullptr, 0}; }
  [[nodiscard]] IntIterator intsBegin() const noexcept {
    return {intsRegion_.data(), nInts_};
  }
  [[nodiscard]] IntIterator intsEnd() const noexcept { return {nullptr, 0}; }

  /// First file, or empty when the list is (most handlers only need
  /// files[0]).
  [[nodiscard]] std::string_view file0() const noexcept {
    return nFiles_ == 0 ? std::string_view() : *filesBegin();
  }

  /// Materializes an owned Message (the legacy decode() result).
  [[nodiscard]] Message toMessage() const;

 private:
  MsgType type_ = MsgType::kError;
  std::uint64_t requestId_ = 0;
  std::int32_t code_ = 0;
  std::int64_t intArg_ = 0;
  std::int64_t intArg2_ = 0;
  std::uint16_t hops_ = 0;
  std::string_view context_;
  std::string_view text_;
  std::string_view filesRegion_;  ///< the validated files[] byte region
  std::string_view intsRegion_;   ///< the validated ints[] byte region
  std::size_t nFiles_ = 0;
  std::size_t nInts_ = 0;
};

/// Serializes `m` as ONE COMPLETE FRAME (u32 length prefix + payload)
/// directly into `out`: beginFrame / payload bytes / endFrame, no
/// intermediate string and no re-copy. out.payload() is byte-identical
/// to encode(m) — pinned by the golden-bytes test.
void encodeInto(const Message& m, WireBuffer& out);
void encodeInto(const MessageRef& m, WireBuffer& out);

/// Exact encode()d payload size of `m` (no outer frame header), computed
/// arithmetically without serializing — how the shm transport reserves a
/// ring extent before encoding straight into it.
[[nodiscard]] std::size_t encodedSize(const Message& m);
[[nodiscard]] std::size_t encodedSize(const MessageRef& m);

/// Serializes `m`'s payload (no outer frame) into caller-provided memory.
/// Writes exactly encodedSize(m) bytes; the bytes are identical to
/// encode(m). The shm send path uses this to encode directly into a
/// reserved ring slot — zero intermediate buffers.
void encodeToBuffer(const Message& m, char* dst);
void encodeToBuffer(const MessageRef& m, char* dst);

/// Materializes an owned Message from a send ref (legacy-transport
/// interop; the zero-copy paths never call this).
[[nodiscard]] Message materialize(const MessageRef& m);

/// Deep-copies a view into `arena` and returns a MessageRef over the
/// stable arena storage — how a request outlives the receive buffer
/// without touching the heap (the daemon's queued shard requests).
[[nodiscard]] MessageRef copyToArena(const MessageView& v, Arena& arena);

/// Serializes a message (without any outer framing). Thin wrapper over
/// encodeInto, kept for tests and cold paths.
[[nodiscard]] std::string encode(const Message& m);

/// Parses an encode()d buffer into an owned Message. Thin wrapper over
/// MessageView::parse + toMessage, kept for tests and cold paths.
[[nodiscard]] Result<Message> decode(std::string_view data);

/// Frames a payload with a u32 length prefix for stream transports.
[[nodiscard]] std::string frame(std::string_view payload);

}  // namespace simfs::msg
