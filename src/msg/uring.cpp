#include "msg/uring.hpp"

#include <cstring>

#if SIMFS_HAS_URING

#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>

namespace simfs::msg::uring {
namespace {

int sysSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int sysEnter(int fd, unsigned toSubmit, unsigned minComplete, unsigned flags,
             const void* arg, std::size_t argsz) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, toSubmit,
                                    minComplete, flags, arg, argsz));
}

int sysRegister(int fd, unsigned opcode, void* arg, unsigned nr) {
  return static_cast<int>(::syscall(__NR_io_uring_register, fd, opcode, arg,
                                    nr));
}

}  // namespace

Queue::~Queue() {
  // Closing the ring fd cancels/reaps in-kernel requests; unmap after so
  // no completion path can touch freed user memory.
  if (fd_ >= 0) ::close(fd_);
  if (sqes_ != nullptr) ::munmap(sqes_, sqesBytes_);
  if (sqRing_ != nullptr) ::munmap(sqRing_, sqRingBytes_);
  if (cqRing_ != nullptr && cqRing_ != sqRing_) ::munmap(cqRing_, cqRingBytes_);
  if (bufRing_ != nullptr) ::munmap(bufRing_, bufRingBytes_);
  delete[] slab_;
}

bool Queue::init(unsigned sqEntries) {
  io_uring_params p{};
  fd_ = sysSetup(sqEntries, &p);
  if (fd_ < 0) return false;
  if ((p.features & IORING_FEAT_EXT_ARG) == 0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  sqEntries_ = p.sq_entries;
  sqRingBytes_ = p.sq_off.array + p.sq_entries * sizeof(unsigned);
  cqRingBytes_ = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
  const bool single = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single) {
    sqRingBytes_ = cqRingBytes_ = std::max(sqRingBytes_, cqRingBytes_);
  }
  sqRing_ = ::mmap(nullptr, sqRingBytes_, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_POPULATE, fd_, IORING_OFF_SQ_RING);
  if (sqRing_ == MAP_FAILED) {
    sqRing_ = nullptr;
    return false;
  }
  if (single) {
    cqRing_ = sqRing_;
  } else {
    cqRing_ = ::mmap(nullptr, cqRingBytes_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, fd_, IORING_OFF_CQ_RING);
    if (cqRing_ == MAP_FAILED) {
      cqRing_ = nullptr;
      return false;
    }
  }
  sqesBytes_ = p.sq_entries * sizeof(io_uring_sqe);
  sqes_ = static_cast<io_uring_sqe*>(
      ::mmap(nullptr, sqesBytes_, PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_POPULATE, fd_, IORING_OFF_SQES));
  if (sqes_ == MAP_FAILED) {
    sqes_ = nullptr;
    return false;
  }
  auto* sq = static_cast<char*>(sqRing_);
  sqHead_ = reinterpret_cast<unsigned*>(sq + p.sq_off.head);
  sqTail_ = reinterpret_cast<unsigned*>(sq + p.sq_off.tail);
  sqMask_ = *reinterpret_cast<unsigned*>(sq + p.sq_off.ring_mask);
  sqArray_ = reinterpret_cast<unsigned*>(sq + p.sq_off.array);
  auto* cq = static_cast<char*>(cqRing_);
  cqHead_ = reinterpret_cast<unsigned*>(cq + p.cq_off.head);
  cqTail_ = reinterpret_cast<unsigned*>(cq + p.cq_off.tail);
  cqMask_ = *reinterpret_cast<unsigned*>(cq + p.cq_off.ring_mask);
  cqes_ = reinterpret_cast<io_uring_cqe*>(cq + p.cq_off.cqes);
  localTail_ = *sqTail_;
  return true;
}

io_uring_sqe* Queue::getSqe() {
  const unsigned head = __atomic_load_n(sqHead_, __ATOMIC_ACQUIRE);
  if (localTail_ - head >= sqEntries_) return nullptr;
  io_uring_sqe* sqe = &sqes_[localTail_ & sqMask_];
  std::memset(sqe, 0, sizeof(*sqe));
  sqArray_[localTail_ & sqMask_] = localTail_ & sqMask_;
  ++localTail_;
  ++pending_;
  return sqe;
}

int Queue::submit() {
  if (pending_ == 0) return 0;
  __atomic_store_n(sqTail_, localTail_, __ATOMIC_RELEASE);
  const int r = sysEnter(fd_, pending_, 0, 0, nullptr, 0);
  if (r < 0) return -errno;
  pending_ -= std::min(pending_, static_cast<unsigned>(r));
  return r;
}

int Queue::submitAndWait(std::chrono::nanoseconds timeout) {
  __atomic_store_n(sqTail_, localTail_, __ATOMIC_RELEASE);
  unsigned flags = IORING_ENTER_GETEVENTS;
  io_uring_getevents_arg arg{};
  __kernel_timespec ts{};
  const void* argp = nullptr;
  std::size_t argsz = 0;
  if (timeout.count() >= 0) {
    ts.tv_sec = timeout.count() / 1'000'000'000;
    ts.tv_nsec = timeout.count() % 1'000'000'000;
    arg.ts = reinterpret_cast<std::uint64_t>(&ts);
    flags |= IORING_ENTER_EXT_ARG;
    argp = &arg;
    argsz = sizeof(arg);
  }
  const unsigned toSubmit = pending_;
  const int r = sysEnter(fd_, toSubmit, 1, flags, argp, argsz);
  if (r < 0) {
    // ETIME (timeout) and EINTR still consumed nothing reportable; the
    // kernel may nonetheless have started the submissions — re-reading
    // khead on the next getSqe keeps the accounting straight either way.
    if (errno == ETIME || errno == EINTR) {
      pending_ = 0;
      return -ETIME;
    }
    return -errno;
  }
  pending_ -= std::min(pending_, static_cast<unsigned>(r));
  return r;
}

bool Queue::setupBufRing(std::uint16_t bgid, std::uint32_t bufCount,
                         std::uint32_t bufBytes) {
  bufRingBytes_ = bufCount * sizeof(io_uring_buf);
  bufRing_ = static_cast<io_uring_buf_ring*>(
      ::mmap(nullptr, bufRingBytes_, PROT_READ | PROT_WRITE,
             MAP_ANONYMOUS | MAP_PRIVATE, -1, 0));
  if (bufRing_ == MAP_FAILED) {
    bufRing_ = nullptr;
    return false;
  }
  io_uring_buf_reg reg{};
  reg.ring_addr = reinterpret_cast<std::uint64_t>(bufRing_);
  reg.ring_entries = bufCount;
  reg.bgid = bgid;
  if (sysRegister(fd_, IORING_REGISTER_PBUF_RING, &reg, 1) != 0) {
    return false;
  }
  slab_ = new (std::nothrow) char[std::size_t{bufCount} * bufBytes];
  if (slab_ == nullptr) return false;
  bufCount_ = bufCount;
  bufBytes_ = bufBytes;
  bufTail_ = 0;
  for (std::uint32_t i = 0; i < bufCount; ++i) {
    recycleBuf(static_cast<std::uint16_t>(i));
  }
  return true;
}

void Queue::recycleBuf(std::uint16_t bid) {
  // Never touch `bufRing_->bufs` from C++: the uapi header's
  // __DECLARE_FLEX_ARRAY C fallback wraps the flexible array together
  // with an empty struct whose sizeof is 1 in C++ (0 in C), padding
  // `bufs` to offset 8 — but the kernel ABI reads entries from offset 0.
  // Index the entry array from the ring base instead; `tail` (offset 14,
  // overlaying entry 0's resv bytes) is declared outside the flex array
  // and stays correct in both languages.
  auto* entries = reinterpret_cast<io_uring_buf*>(bufRing_);
  io_uring_buf& slot = entries[bufTail_ & (bufCount_ - 1)];
  slot.addr = reinterpret_cast<std::uint64_t>(bufData(bid));
  slot.len = bufBytes_;
  slot.bid = bid;
  ++bufTail_;
  __atomic_store_n(&bufRing_->tail, static_cast<std::uint16_t>(bufTail_),
                   __ATOMIC_RELEASE);
}

bool supported() {
  static const bool ok = [] {
    Queue probe;
    return probe.init(8) && probe.setupBufRing(0, 8, 4096);
  }();
  return ok;
}

}  // namespace simfs::msg::uring

#else  // !SIMFS_HAS_URING

namespace simfs::msg::uring {

bool supported() { return false; }

}  // namespace simfs::msg::uring

#endif
