#include "msg/shm_ring.hpp"

#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <climits>
#include <cstring>
#include <thread>

namespace simfs::msg {
namespace {

/// How many times a waiter polls before parking in the kernel. Sized so a
/// peer that answers within a few hundred ns (the shm fast path) is
/// caught without any syscall at all.
constexpr int kSpinIters = 4000;

/// Spinning only helps when the peer can make progress while we burn the
/// CPU. On a single-hardware-thread host the producer and consumer share
/// the one core, so the spin phase just delays the peer's timeslice —
/// park immediately instead.
int spinIters() {
  static const int iters =
      std::thread::hardware_concurrency() > 1 ? kSpinIters : 0;
  return iters;
}

/// Parked waits are chunked: a futex wait never exceeds this, so a peer
/// that dies without running its close path can delay a waiter by at most
/// one chunk before the close-mask recheck.
constexpr auto kParkSlice = std::chrono::milliseconds(100);

/// Oversized-frame reassembly bound — mirrors the socket path's
/// kMaxFrameBytes; a forged chunk stream cannot grow the scratch past it.
constexpr std::size_t kMaxReassemblyBytes = 64u << 20;

/// Cross-process futex (deliberately NOT FUTEX_PRIVATE_FLAG: the waiter
/// and waker live in different processes mapping the same segment).
void futexWait(std::atomic<std::uint32_t>* word, std::uint32_t expected,
               std::chrono::nanoseconds timeout) {
  timespec ts{};
  ts.tv_sec = static_cast<time_t>(timeout.count() / 1'000'000'000);
  ts.tv_nsec = static_cast<long>(timeout.count() % 1'000'000'000);
  (void)::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(word),
                  FUTEX_WAIT, expected, &ts, nullptr, 0);
}

void futexWake(std::atomic<std::uint32_t>* word) {
  (void)::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(word),
                  FUTEX_WAKE, INT_MAX, nullptr, nullptr, 0);
}

[[nodiscard]] constexpr std::uint64_t roundUpToSlot(std::uint64_t n) noexcept {
  return (n + kShmSlotBytes - 1) & ~(std::uint64_t{kShmSlotBytes} - 1);
}

}  // namespace

void ShmRing::initHeader(ShmRingHdr* hdr) {
  hdr->head.store(0, std::memory_order_relaxed);
  hdr->dataSeq.store(0, std::memory_order_relaxed);
  hdr->consumerParked.store(0, std::memory_order_relaxed);
  hdr->tail.store(0, std::memory_order_relaxed);
  hdr->spaceSeq.store(0, std::memory_order_relaxed);
  hdr->producerParked.store(0, std::memory_order_release);
}

char* ShmRing::beginWrite(std::uint32_t len, std::chrono::nanoseconds timeout) {
  const std::uint64_t extent = roundUpToSlot(sizeof(ShmSlotHdr) + len);
  std::uint64_t off = headShadow_ % cap_;
  const std::uint64_t padBytes = off + extent > cap_ ? cap_ - off : 0;
  const std::uint64_t need = padBytes + extent;

  // Wait for contiguous space: spin first, then park on spaceSeq until the
  // consumer frees slots, the peer closes, or the timeout expires. The
  // parked-flag/seq handshake mirrors the consumer side (see consume()).
  auto avail = [&] {
    return cap_ - (headShadow_ - hdr_->tail.load(std::memory_order_acquire));
  };
  if (avail() < need) {
    bool ready = false;
    for (int i = 0; i < spinIters(); ++i) {
      if (isClosed()) return nullptr;
      if (avail() >= need) {
        ready = true;
        break;
      }
    }
    if (!ready) {
      const auto deadline = std::chrono::steady_clock::now() + timeout;
      for (;;) {
        if (isClosed()) return nullptr;
        if (avail() >= need) break;
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) return nullptr;
        const std::uint32_t seq =
            hdr_->spaceSeq.load(std::memory_order_acquire);
        hdr_->producerParked.store(1, std::memory_order_seq_cst);
        if (avail() >= need || isClosed()) {
          hdr_->producerParked.store(0, std::memory_order_relaxed);
          continue;
        }
        const auto slice = std::min<std::chrono::nanoseconds>(
            kParkSlice, deadline - now);
        futexWait(&hdr_->spaceSeq, seq, slice);
        hdr_->producerParked.store(0, std::memory_order_relaxed);
      }
    }
  }

  if (padBytes > 0) {
    ShmSlotHdr pad{static_cast<std::uint32_t>(padBytes - sizeof(ShmSlotHdr)),
                   kSlotPad, 0};
    std::memcpy(data_ + off, &pad, sizeof(pad));
    off = 0;
  }
  pendingOff_ = off;
  pendingAdvance_ = need;
  return data_ + off + sizeof(ShmSlotHdr);
}

void ShmRing::commitWrite(std::uint32_t len, std::uint16_t kind,
                          std::uint16_t flags) {
  ShmSlotHdr rec{len, kind, flags};
  std::memcpy(data_ + pendingOff_, &rec, sizeof(rec));
  headShadow_ += pendingAdvance_;
  hdr_->head.store(headShadow_, std::memory_order_release);
  hdr_->dataSeq.fetch_add(1, std::memory_order_seq_cst);
  // Dekker pairing: the consumer stores consumerParked (seq_cst) and then
  // re-reads head; we store head and then read consumerParked. One side
  // always observes the other, so the wake is never lost.
  if (hdr_->consumerParked.load(std::memory_order_seq_cst) != 0) {
    futexWake(&hdr_->dataSeq);
  }
}

void ShmRing::consumeAdvance(std::uint64_t bytes) {
  tailShadow_ += bytes;
  hdr_->tail.store(tailShadow_, std::memory_order_release);
  hdr_->spaceSeq.fetch_add(1, std::memory_order_seq_cst);
  if (hdr_->producerParked.load(std::memory_order_seq_cst) != 0) {
    futexWake(&hdr_->spaceSeq);
  }
}

ShmRing::Poll ShmRing::consume(
    std::chrono::nanoseconds timeout,
    const std::function<void(std::string_view)>& fn) {
  // Lazily armed: the hot path (data already published) never reads the
  // clock at all.
  std::chrono::steady_clock::time_point deadline{};
  for (;;) {
    std::uint64_t avail =
        hdr_->head.load(std::memory_order_acquire) - tailShadow_;
    if (avail == 0) {
      if (deadline == std::chrono::steady_clock::time_point{}) {
        deadline = std::chrono::steady_clock::now() + timeout;
      }
      // Spin, then park on dataSeq (same handshake as beginWrite).
      bool ready = false;
      for (int i = 0; i < spinIters(); ++i) {
        avail = hdr_->head.load(std::memory_order_acquire) - tailShadow_;
        if (avail != 0) {
          ready = true;
          break;
        }
        if (isClosed()) return Poll::kClosed;
      }
      if (!ready) {
        for (;;) {
          avail = hdr_->head.load(std::memory_order_acquire) - tailShadow_;
          if (avail != 0) break;
          if (isClosed()) return Poll::kClosed;
          const auto now = std::chrono::steady_clock::now();
          if (now >= deadline) return Poll::kIdle;
          const std::uint32_t seq =
              hdr_->dataSeq.load(std::memory_order_acquire);
          hdr_->consumerParked.store(1, std::memory_order_seq_cst);
          avail = hdr_->head.load(std::memory_order_seq_cst) - tailShadow_;
          if (avail != 0 || isClosed()) {
            hdr_->consumerParked.store(0, std::memory_order_relaxed);
            continue;
          }
          const auto slice = std::min<std::chrono::nanoseconds>(
              kParkSlice, deadline - now);
          futexWait(&hdr_->dataSeq, seq, slice);
          hdr_->consumerParked.store(0, std::memory_order_relaxed);
        }
      }
    }

    // One record is (at least partially) published. Validate the header
    // before trusting anything in it — the peer shares this memory and a
    // buggy or hostile one must not be able to crash us.
    const std::uint64_t off = tailShadow_ % cap_;
    if (avail < sizeof(ShmSlotHdr) || cap_ - off < sizeof(ShmSlotHdr)) {
      return Poll::kPoisoned;  // head advanced by a sub-header amount
    }
    ShmSlotHdr rec{};
    std::memcpy(&rec, data_ + off, sizeof(rec));
    if (rec.kind == kSlotPad) {
      const std::uint64_t padBytes = cap_ - off;
      if (padBytes > avail) return Poll::kPoisoned;
      consumeAdvance(padBytes);
      continue;
    }
    if (rec.kind != kSlotMsg && rec.kind != kSlotChunk) {
      return Poll::kPoisoned;
    }
    const std::uint64_t extent = roundUpToSlot(sizeof(ShmSlotHdr) + rec.len);
    if (rec.len > kMaxReassemblyBytes || extent > avail ||
        off + extent > cap_) {
      return Poll::kPoisoned;  // forged length / wrapping extent
    }
    const std::string_view payload(data_ + off + sizeof(ShmSlotHdr), rec.len);
    if (rec.kind == kSlotMsg) {
      // Deliver BEFORE advancing tail: the producer cannot reuse these
      // slots while the callback still reads them — that is the whole
      // in-place contract.
      fn(payload);
      consumeAdvance(extent);
      return Poll::kFrame;
    }
    // Chunked frame: accumulate (bounded) and deliver on the last piece.
    if (chunkScratch_.size() + rec.len > kMaxReassemblyBytes) {
      return Poll::kPoisoned;
    }
    chunkScratch_.append(payload);
    const bool last = (rec.flags & kChunkLast) != 0;
    consumeAdvance(extent);
    if (last) {
      fn(chunkScratch_);
      chunkScratch_.clear();
      return Poll::kFrame;
    }
  }
}

void ShmRing::wakeAll() {
  hdr_->dataSeq.fetch_add(1, std::memory_order_seq_cst);
  hdr_->spaceSeq.fetch_add(1, std::memory_order_seq_cst);
  futexWake(&hdr_->dataSeq);
  futexWake(&hdr_->spaceSeq);
}

}  // namespace simfs::msg
