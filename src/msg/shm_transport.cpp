#include "msg/shm_transport.hpp"

#include "common/env.hpp"
#include "common/fault.hpp"
#include "common/log.hpp"
#include "msg/handler_slot.hpp"
#include "msg/shm_ring.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace simfs::msg {
namespace {

constexpr char kShmMagic[8] = {'S', 'I', 'M', 'F', 'S', 'H', 'M', '1'};

/// How long a producer may wait on a full ring before declaring the peer
/// dead. Matches the socket path's philosophy (bounded patience with a
/// peer that stopped draining), just with a block instead of a buffer.
constexpr auto kSendTimeout = std::chrono::seconds(5);

/// Consumer poll slice; the loop re-checks its stop flag at this cadence.
constexpr auto kConsumeSlice = std::chrono::milliseconds(100);

[[nodiscard]] std::size_t ringBytesFromEnv() {
  std::int64_t slots = 1024;
  if (const auto v = env::getInt("SIMFS_SHM_RING_SLOTS")) {
    slots = std::clamp<std::int64_t>(*v, 16, 1 << 20);
  }
  return static_cast<std::size_t>(slots) * kShmSlotBytes;
}

/// RAII mapping of one connection's segment. The creator (client) keeps
/// `unlinkKey` set as a backstop — the server unlinks the name the moment
/// it maps, and the duplicate unlink fails with ENOENT, harmlessly.
struct ShmSegment {
  std::string key;
  void* base = nullptr;
  std::size_t bytes = 0;
  bool unlinkKey = false;

  [[nodiscard]] ShmSegmentHdr* hdr() const noexcept {
    return static_cast<ShmSegmentHdr*>(base);
  }
  [[nodiscard]] char* c2sData() const noexcept {
    return static_cast<char*>(base) + sizeof(ShmSegmentHdr);
  }
  [[nodiscard]] char* s2cData() const noexcept {
    return c2sData() + hdr()->ringBytes;
  }

  ~ShmSegment() {
    if (base != nullptr) ::munmap(base, bytes);
    if (unlinkKey) (void)::shm_unlink(key.c_str());
  }
};

/// Client side: creates and initializes a fresh segment. nullptr on any
/// failure — the caller then simply keeps the socket path.
std::unique_ptr<ShmSegment> createSegment() {
  static std::atomic<std::uint64_t> seq{0};
  const std::size_t ringBytes = ringBytesFromEnv();
  auto seg = std::make_unique<ShmSegment>();
  seg->key = "/simfs-" + std::to_string(::getpid()) + "-" +
             std::to_string(seq.fetch_add(1));
  seg->bytes = shmSegmentBytes(ringBytes);
  const int fd =
      ::shm_open(seg->key.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) return nullptr;
  seg->unlinkKey = true;
  if (::ftruncate(fd, static_cast<off_t>(seg->bytes)) != 0) {
    ::close(fd);
    return nullptr;
  }
  seg->base = ::mmap(nullptr, seg->bytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                     fd, 0);
  ::close(fd);
  if (seg->base == MAP_FAILED) {
    seg->base = nullptr;
    return nullptr;
  }
  auto* h = new (seg->base) ShmSegmentHdr();
  std::memcpy(h->magic, kShmMagic, sizeof(kShmMagic));
  h->version = kShmVersion;
  h->slotBytes = static_cast<std::uint32_t>(kShmSlotBytes);
  h->ringBytes = ringBytes;
  h->closed.store(0, std::memory_order_relaxed);
  h->serverAttached.store(0, std::memory_order_relaxed);
  ShmRing::initHeader(&h->c2s);
  ShmRing::initHeader(&h->s2c);
  return seg;
}

/// Server side: maps and validates a client-created segment. Every field
/// is checked against the mapped size before any ring code trusts it — a
/// hostile client controls this memory.
std::unique_ptr<ShmSegment> openSegment(const std::string& key) {
  if (key.empty() || key.front() != '/' || key.size() > 200) return nullptr;
  const int fd = ::shm_open(key.c_str(), O_RDWR, 0);
  if (fd < 0) return nullptr;
  struct stat st{};
  if (::fstat(fd, &st) != 0 ||
      static_cast<std::size_t>(st.st_size) < sizeof(ShmSegmentHdr)) {
    ::close(fd);
    return nullptr;
  }
  auto seg = std::make_unique<ShmSegment>();
  seg->key = key;
  seg->bytes = static_cast<std::size_t>(st.st_size);
  seg->base =
      ::mmap(nullptr, seg->bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (seg->base == MAP_FAILED) {
    seg->base = nullptr;
    return nullptr;
  }
  ShmSegmentHdr* h = seg->hdr();
  const std::size_t ringBytes = h->ringBytes;
  if (std::memcmp(h->magic, kShmMagic, sizeof(kShmMagic)) != 0 ||
      h->version != kShmVersion || h->slotBytes != kShmSlotBytes ||
      ringBytes < 16 * kShmSlotBytes || ringBytes > (1u << 30) ||
      ringBytes % kShmSlotBytes != 0 ||
      shmSegmentBytes(ringBytes) != seg->bytes) {
    return nullptr;
  }
  // Unlink immediately: the name served only to hand the mapping over,
  // and with it gone no crash on either side can leak the segment.
  (void)::shm_unlink(key.c_str());
  h->serverAttached.store(1, std::memory_order_release);
  return seg;
}

/// The shm transport. One class serves both roles:
///   * client (wrapClient): starts as a transparent passthrough over the
///     dialed socket, negotiates on the first kHello, and either upgrades
///     to the rings or settles back to pure passthrough.
///   * server (adoptServer): born settled on shm — the daemon only
///     constructs it after deciding to accept, and its first send (the
///     kHelloAck, over the ring) is what tells the client so.
class ShmTransport final : public Transport {
  enum class State { kPassthrough, kNegotiating, kShm, kSocket };

 public:
  ShmTransport(std::unique_ptr<Transport> socket,
               std::unique_ptr<ShmSegment> segment, bool isServer)
      : socket_(std::move(socket)),
        segment_(std::move(segment)),
        isServer_(isServer),
        closedBit_(isServer ? kShmClosedServer : kShmClosedClient) {
    if (isServer_) {
      state_ = State::kShm;
      bindRings();
      startConsumer();
    }
    socket_->setViewHandler(
        [this](const MessageView& v) { onSocketMessage(v); });
    // socketGone=true: the socket is the one reporting the loss, so
    // onPeerGone must not call back into it (it may already be inside its
    // own teardown when this fires).
    socket_->setCloseHandler([this] { onPeerGone(/*socketGone=*/true); });
  }

  ~ShmTransport() override {
    close();
    stopConsumer();
    // Neutralize the socket callbacks (they capture `this`), then let the
    // socket's own destructor handshake wait out any in-flight delivery.
    socket_->setHandler(nullptr);
    socket_->setCloseHandler(nullptr);
    // Quiesce via the socket's destructor WITHOUT nulling the member
    // first: a close callback copied out before the null-install above
    // can still fire onPeerGone during the destructor's deregister
    // handshake, and it must find socket_ pointing at valid memory.
    // (unique_ptr::reset() clears the pointer before deleting — exactly
    // the window that crashed.)
    delete socket_.get();
    (void)socket_.release();
  }

  Status send(const Message& m) override { return sendImpl(m); }
  Status send(const MessageRef& m) override { return sendImpl(m); }

  void setHandler(Handler handler) override {
    detail::installAndReplay(slotMutex_, slot_, std::move(handler), nullptr);
  }

  void setViewHandler(ViewHandler handler) override {
    detail::installAndReplay(slotMutex_, slot_, nullptr, std::move(handler));
  }

  void setCloseHandler(std::function<void()> handler) override {
    std::function<void()> fire;
    {
      std::lock_guard lock(slotMutex_);
      closeHandler_ = std::move(handler);
      if (closePending_ && !closeNotified_) {
        closeNotified_ = true;
        closePending_ = false;
        fire = closeHandler_;
      }
    }
    if (fire) fire();
  }

  void close() override {
    bool expected = false;
    if (!closedLocally_.compare_exchange_strong(expected, true)) return;
    open_.store(false);
    {
      // mutex_ orders this against startNegotiation's segment/ring setup
      // on a concurrent sender thread.
      std::lock_guard lock(mutex_);
      if (segment_) {
        segment_->hdr()->closed.fetch_or(closedBit_, std::memory_order_seq_cst);
        wakeRings();
      }
    }
    stop_.store(true);
    // The socket close gives the peer the same EOF it would see on a
    // plain socket session — one teardown path for both planes.
    socket_->close();
  }

  bool isOpen() const override { return open_.load(); }

  std::string_view kindName() const override {
    std::lock_guard lock(mutex_);
    return state_ == State::kShm ? "shm" : "socket";
  }

 private:
  static Message owned(const Message& m) { return m; }
  static Message owned(const MessageRef& m) { return materialize(m); }

  void bindRings() {
    ShmSegmentHdr* h = segment_->hdr();
    const auto ringBytes = static_cast<std::size_t>(h->ringBytes);
    // Client produces commands (c2s) and consumes completions (s2c); the
    // server is the mirror image.
    if (isServer_) {
      sendRing_.emplace(&h->s2c, segment_->s2cData(), ringBytes, &h->closed);
      recvRing_.emplace(&h->c2s, segment_->c2sData(), ringBytes, &h->closed);
    } else {
      sendRing_.emplace(&h->c2s, segment_->c2sData(), ringBytes, &h->closed);
      recvRing_.emplace(&h->s2c, segment_->s2cData(), ringBytes, &h->closed);
    }
  }

  void startConsumer() {
    std::lock_guard lock(joinMutex_);
    consumer_ = std::thread([this] { consumerMain(); });
  }

  void stopConsumer() {
    stop_.store(true);
    {
      std::lock_guard lock(mutex_);
      if (segment_) {
        segment_->hdr()->closed.fetch_or(closedBit_, std::memory_order_seq_cst);
        wakeRings();
      }
    }
    // Claim the thread handle under a lock: stopConsumer races with itself
    // (settleSocket on the delivery thread vs the destructor on the owner
    // thread), and a concurrent double join is undefined behaviour. One
    // caller gets the handle and joins; the other sees an empty thread.
    std::thread claimed;
    {
      std::lock_guard lock(joinMutex_);
      claimed = std::move(consumer_);
    }
    if (claimed.joinable()) claimed.join();
  }

  void wakeRings() {
    if (sendRing_) sendRing_->wakeAll();
    if (recvRing_) recvRing_->wakeAll();
  }

  template <typename M>
  Status sendImpl(const M& m) {
    std::unique_lock lock(mutex_);
    switch (state_) {
      case State::kPassthrough:
        if (m.type == MsgType::kHello && shmNegotiationEnabled()) {
          return startNegotiation(owned(m), lock);
        }
        lock.unlock();
        return socket_->send(m);
      case State::kNegotiating:
        // FIFO across the upgrade: nothing may travel on either channel
        // until the daemon's answer picks the one channel this session
        // will ever use. The handshake is one RTT; the buffer stays tiny.
        pending_.push_back(owned(m));
        return Status::ok();
      case State::kSocket:
        lock.unlock();
        return socket_->send(m);
      case State::kShm:
        lock.unlock();
        return shmSend(m);
    }
    return errInternal("shm: unreachable");
  }

  /// First kHello through the wrapper: create the segment, rewrite the
  /// hello into an offer, enter the buffering state. Any failure keeps
  /// the plain socket path.
  Status startNegotiation(Message hello, std::unique_lock<std::mutex>& lock) {
    segment_ = createSegment();
    if (!segment_) {
      state_ = State::kSocket;  // no second offer; stay a passthrough
      lock.unlock();
      return socket_->send(hello);
    }
    bindRings();
    hello.intArg2 |= kHelloCapShm;
    hello.text = segment_->key;
    state_ = State::kNegotiating;
    // The consumer must already be listening: the accept signal IS the
    // kHelloAck arriving over the completion ring.
    startConsumer();
    lock.unlock();
    return socket_->send(hello);
  }

  /// Daemon answered on the socket (old daemon, redirect, decline): the
  /// session stays on the socket. Tear the rings down and flush the
  /// buffered sends in order BEFORE the answer reaches the session, so
  /// its handler observes the same ordering a plain socket would give.
  void settleSocket(std::unique_lock<std::mutex>& lock) {
    state_ = State::kSocket;
    std::vector<Message> pend;
    pend.swap(pending_);
    lock.unlock();
    stopConsumer();
    // The declined segment stays MAPPED until the destructor: close() and
    // onPeerGone() on other threads may still dereference it, and an early
    // munmap here is a use-after-unmap in their hands. The name itself is
    // unlinked by ~ShmSegment (the daemon never attached), so the only
    // cost is one idle mapping for the session's remaining lifetime.
    for (auto& p : pend) {
      if (!socket_->send(p).isOk()) break;
    }
  }

  void onSocketMessage(const MessageView& v) {
    {
      std::unique_lock lock(mutex_);
      if (state_ == State::kNegotiating &&
          (v.type() == MsgType::kHelloAck || v.type() == MsgType::kRedirect ||
           v.type() == MsgType::kError)) {
        settleSocket(lock);  // unlocks
      }
    }
    detail::deliverView(slotMutex_, slot_, v);
  }

  void onRingPayload(std::string_view payload) {
    auto view = MessageView::parse(payload);
    if (!view) {
      SIMFS_LOG_ERROR("msg", "shm: undecodable ring frame: %s",
                      view.status().toString().c_str());
      poisoned_ = true;
      return;
    }
    if (fault::active()) {
      fault::maybeDelay(fault::Point::kRecv);
      const auto limit = fault::closeAfterLimit();
      if (limit > 0 && ++faultFramesSeen_ > limit) {
        SIMFS_LOG_WARN("msg", "fault: closing shm session after %u frames",
                       limit);
        poisoned_ = true;  // same observable outcome: hard connection loss
        return;
      }
    }
    bool flush = false;
    std::vector<Message> pend;
    {
      std::unique_lock lock(mutex_);
      if (state_ == State::kNegotiating && view->type() == MsgType::kHelloAck) {
        // Accept: the daemon swapped before acking, so from here the ring
        // is the session's one channel. Flush the buffered sends before
        // the ack reaches the session — its handler may immediately issue
        // follow-ups that must not overtake them.
        state_ = State::kShm;
        pend.swap(pending_);
        flush = true;
      }
    }
    if (flush) {
      for (auto& p : pend) {
        if (!shmSend(p).isOk()) break;
      }
    }
    detail::deliverView(slotMutex_, slot_, *view);
  }

  void consumerMain() {
    while (!stop_.load()) {
      const auto poll = recvRing_->consume(
          kConsumeSlice,
          [this](std::string_view payload) { onRingPayload(payload); });
      // Every LOCAL teardown (close(), settleSocket's stopConsumer, the
      // destructor) sets stop_ before raising the close mask, so a poll
      // that came back kClosed with stop_ set is our own doing — exit
      // quietly. Reporting it as peer loss would fire the close handler
      // into a session that merely settled back to the socket.
      if (stop_.load()) return;
      if (poisoned_ || poll == ShmRing::Poll::kPoisoned) {
        SIMFS_LOG_WARN("msg", "shm: dropping poisoned/faulted session");
        onPeerGone();
        return;
      }
      if (poll == ShmRing::Poll::kClosed) {
        onPeerGone();
        return;
      }
    }
  }

  template <typename M>
  Status shmSend(const M& m) {
    if (fault::active() && fault::shouldFail(fault::Point::kSend)) {
      // Same observable behaviour as the socket path's injected fault:
      // abrupt connection loss, close callback and all.
      onPeerGone();
      return errUnavailable("shm: injected send fault");
    }
    const std::size_t size = encodedSize(m);
    std::lock_guard sendLock(sendMutex_);
    if (!open_.load()) return errUnavailable("shm: closed");
    if (size <= sendRing_->maxExtentPayload()) {
      // The fast path: reserve a ring extent and encode straight into it.
      // No WireBuffer, no copy, no allocation.
      char* dst =
          sendRing_->beginWrite(static_cast<std::uint32_t>(size), kSendTimeout);
      if (dst == nullptr) return sendStalled();
      encodeToBuffer(m, dst);
      sendRing_->commitWrite(static_cast<std::uint32_t>(size), kSlotMsg, 0);
      return Status::ok();
    }
    // Oversized frame: serialize once, stream it through chunk records.
    WireBuffer scratch = detail::acquireScratch();
    encodeInto(m, scratch);
    const std::string_view payload = scratch.payload();
    const std::uint32_t maxChunk = sendRing_->maxExtentPayload();
    std::size_t at = 0;
    Status st = Status::ok();
    while (at < payload.size()) {
      const auto n = static_cast<std::uint32_t>(
          std::min<std::size_t>(maxChunk, payload.size() - at));
      char* dst = sendRing_->beginWrite(n, kSendTimeout);
      if (dst == nullptr) {
        st = sendStalled();
        break;
      }
      std::memcpy(dst, payload.data() + at, n);
      at += n;
      sendRing_->commitWrite(
          n, kSlotChunk, at == payload.size() ? kChunkLast : 0);
    }
    detail::releaseScratch(std::move(scratch));
    return st;
  }

  /// The ring stayed full past the send timeout (or the peer closed):
  /// exactly the situation where the socket path drops the peer for
  /// overflowing its outbox — same verdict here.
  Status sendStalled() {
    SIMFS_LOG_WARN("msg", "shm: peer stopped draining, dropping session");
    onPeerGone();
    return errUnavailable("shm: peer not draining");
  }

  /// Peer loss from any signal (companion-socket EOF, ring close mask,
  /// poisoned record, injected fault): sticky-close and notify once.
  /// `socketGone` means the companion socket itself reported the loss —
  /// closing it again would call into a transport that may be mid-teardown.
  void onPeerGone(bool socketGone = false) {
    open_.store(false);
    stop_.store(true);
    {
      std::lock_guard lock(mutex_);
      if (segment_) {
        segment_->hdr()->closed.fetch_or(closedBit_, std::memory_order_seq_cst);
        wakeRings();
      }
    }
    if (!socketGone) socket_->close();
    std::function<void()> fire;
    {
      std::lock_guard lock(slotMutex_);
      if (!closeNotified_) {
        if (closeHandler_) {
          closeNotified_ = true;
          fire = closeHandler_;
        } else {
          closePending_ = true;
        }
      }
    }
    if (fire) fire();
  }

  std::unique_ptr<Transport> socket_;
  std::unique_ptr<ShmSegment> segment_;
  const bool isServer_;
  const std::uint32_t closedBit_;

  mutable std::mutex mutex_;  ///< guards state_ and pending_
  State state_ = State::kPassthrough;
  std::vector<Message> pending_;  ///< sends buffered during negotiation

  std::mutex sendMutex_;  ///< serializes ring producers (send is MT-safe)
  std::optional<ShmRing> sendRing_;
  std::optional<ShmRing> recvRing_;

  std::thread consumer_;
  std::mutex joinMutex_;  ///< serializes claiming consumer_ for join
  std::atomic<bool> stop_{false};
  bool poisoned_ = false;  ///< consumer-thread only
  std::uint32_t faultFramesSeen_ = 0;

  std::mutex slotMutex_;
  detail::HandlerSlot slot_;
  std::function<void()> closeHandler_;
  bool closeNotified_ = false;
  bool closePending_ = false;

  std::atomic<bool> open_{true};
  std::atomic<bool> closedLocally_{false};
};

}  // namespace

bool shmNegotiationEnabled() {
  const auto v = env::get("SIMFS_SHM");
  return !v || *v != "0";
}

std::unique_ptr<Transport> wrapShmClient(std::unique_ptr<Transport> socket) {
  if (!shmNegotiationEnabled()) return socket;
  return std::make_unique<ShmTransport>(std::move(socket), nullptr,
                                        /*isServer=*/false);
}

std::unique_ptr<Transport> shmAdoptServer(const std::string& key,
                                          std::unique_ptr<Transport>& socket) {
  if (!shmNegotiationEnabled()) return nullptr;
  auto segment = openSegment(key);
  if (!segment) {
    SIMFS_LOG_WARN("msg", "shm: cannot adopt segment '%s', keeping socket",
                   key.c_str());
    return nullptr;
  }
  return std::make_unique<ShmTransport>(std::move(socket), std::move(segment),
                                        /*isServer=*/true);
}

}  // namespace simfs::msg
