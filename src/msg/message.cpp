#include "msg/message.hpp"

#include <cstring>

namespace simfs::msg {
namespace {

// --- Sink primitive writers (little-endian, matching the original
// --- string-based encoder byte for byte). Templated on the sink so the
// --- same serializer fills a growable WireBuffer or a caller-provided
// --- fixed region (a reserved shm ring slot) alike. -------------------------

/// Fixed-region sink: the caller guarantees encodedSize(m) bytes at `at`.
struct FixedSink {
  char* at;
  char* grow(std::size_t n) {
    char* p = at;
    at += n;
    return p;
  }
  void append(const void* p, std::size_t n) {
    std::memcpy(grow(n), p, n);
  }
};

template <typename Sink>
void putU16(Sink& out, std::uint16_t v) {
  char* p = out.grow(2);
  p[0] = static_cast<char>(v & 0xFF);
  p[1] = static_cast<char>((v >> 8) & 0xFF);
}

template <typename Sink>
void putU32(Sink& out, std::uint32_t v) {
  char* p = out.grow(4);
  for (int i = 0; i < 4; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
}

template <typename Sink>
void putU64(Sink& out, std::uint64_t v) {
  char* p = out.grow(8);
  for (int i = 0; i < 8; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
}

template <typename Sink>
void putStr(Sink& out, std::string_view s) {
  putU32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

[[nodiscard]] std::uint32_t readU32(const char* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

[[nodiscard]] std::uint64_t readU64(const char* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

/// The one serializer: works for Message (std::string fields / vectors)
/// and MessageRef (string_views / spans) alike — both expose the same
/// member names, so the wire bytes are identical by construction.
template <typename M, typename Sink>
void encodePayloadImpl(const M& m, Sink& out) {
  putU16(out, static_cast<std::uint16_t>(m.type));
  putU64(out, m.requestId);
  putU32(out, static_cast<std::uint32_t>(m.code));
  putU64(out, static_cast<std::uint64_t>(m.intArg));
  putU64(out, static_cast<std::uint64_t>(m.intArg2));
  putU16(out, m.hops);
  putStr(out, m.context);
  putStr(out, m.text);
  putU32(out, static_cast<std::uint32_t>(m.files.size()));
  for (const auto& f : m.files) putStr(out, f);
  putU32(out, static_cast<std::uint32_t>(m.ints.size()));
  for (const std::int64_t v : m.ints) putU64(out, static_cast<std::uint64_t>(v));
}

template <typename M>
void encodeImpl(const M& m, WireBuffer& out) {
  out.beginFrame();
  encodePayloadImpl(m, out);
  out.endFrame();
}

/// Mirrors encodePayloadImpl field for field; the two are kept adjacent so
/// a codec change cannot update one without the other (and the fuzz test
/// cross-checks them on every message shape).
template <typename M>
std::size_t encodedSizeImpl(const M& m) {
  std::size_t n = 2 + 8 + 4 + 8 + 8 + 2;  // type..hops fixed header
  n += 4 + m.context.size();
  n += 4 + m.text.size();
  n += 4;
  for (const auto& f : m.files) n += 4 + f.size();
  n += 4 + 8 * m.ints.size();
  return n;
}

/// Bounds-checked cursor used only by parse(); after validation the view
/// iterators run uncheck-ed over the recorded regions.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  [[nodiscard]] bool getU16(std::uint16_t& v) {
    if (pos_ + 2 > data_.size()) return false;
    v = static_cast<std::uint16_t>(
        static_cast<std::uint8_t>(data_[pos_]) |
        (static_cast<std::uint8_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return true;
  }

  [[nodiscard]] bool getU32(std::uint32_t& v) {
    if (pos_ + 4 > data_.size()) return false;
    v = readU32(data_.data() + pos_);
    pos_ += 4;
    return true;
  }

  [[nodiscard]] bool getU64(std::uint64_t& v) {
    if (pos_ + 8 > data_.size()) return false;
    v = readU64(data_.data() + pos_);
    pos_ += 8;
    return true;
  }

  [[nodiscard]] bool getStrView(std::string_view& s) {
    std::uint32_t len = 0;
    if (!getU32(len)) return false;
    if (pos_ + len > data_.size()) return false;
    s = data_.substr(pos_, len);
    pos_ += len;
    return true;
  }

  /// Skips one length-prefixed string, bounds-checked.
  [[nodiscard]] bool skipStr() {
    std::string_view ignored;
    return getStrView(ignored);
  }

  [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }

  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
  void advance(std::size_t n) noexcept { pos_ += n; }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace

// --------------------------------------------------------------- MessageView

std::string_view MessageView::FileIterator::operator*() const {
  const std::uint32_t len = readU32(at_);
  return {at_ + 4, len};
}

MessageView::FileIterator& MessageView::FileIterator::operator++() {
  at_ += 4 + readU32(at_);
  --remaining_;
  return *this;
}

std::int64_t MessageView::IntIterator::operator*() const {
  return static_cast<std::int64_t>(readU64(at_));
}

Result<MessageView> MessageView::parse(std::string_view payload) {
  Reader r(payload);
  MessageView v;
  std::uint16_t type = 0;
  std::uint32_t code = 0;
  std::uint64_t intArg = 0;
  std::uint64_t intArg2 = 0;
  std::uint32_t nFiles = 0;
  if (!r.getU16(type) || !r.getU64(v.requestId_) || !r.getU32(code) ||
      !r.getU64(intArg) || !r.getU64(intArg2) || !r.getU16(v.hops_) ||
      !r.getStrView(v.context_) || !r.getStrView(v.text_) ||
      !r.getU32(nFiles)) {
    return errInvalidArgument("msg: truncated header");
  }
  v.type_ = static_cast<MsgType>(type);
  v.code_ = static_cast<std::int32_t>(code);
  v.intArg_ = static_cast<std::int64_t>(intArg);
  v.intArg2_ = static_cast<std::int64_t>(intArg2);
  // A hostile/corrupted count must not drive a huge reserve() downstream:
  // every entry needs at least its 4-byte length prefix, so bound by what
  // the buffer can actually hold.
  if (nFiles > r.remaining() / 4) {
    return errInvalidArgument("msg: file count exceeds buffer");
  }
  const std::size_t filesAt = r.pos();
  for (std::uint32_t i = 0; i < nFiles; ++i) {
    if (!r.skipStr()) return errInvalidArgument("msg: truncated file list");
  }
  v.filesRegion_ = payload.substr(filesAt, r.pos() - filesAt);
  v.nFiles_ = nFiles;
  std::uint32_t nInts = 0;
  if (!r.getU32(nInts)) return errInvalidArgument("msg: truncated int list");
  // Same hostile-count bound as the file list: every entry takes 8 bytes.
  if (nInts > r.remaining() / 8) {
    return errInvalidArgument("msg: int count exceeds buffer");
  }
  if (r.remaining() < 8u * nInts) {
    return errInvalidArgument("msg: truncated int list");
  }
  v.intsRegion_ = payload.substr(r.pos(), 8u * nInts);
  v.nInts_ = nInts;
  r.advance(8u * nInts);
  if (!r.done()) return errInvalidArgument("msg: trailing bytes");
  return v;
}

Message MessageView::toMessage() const {
  Message m;
  m.type = type_;
  m.requestId = requestId_;
  m.code = code_;
  m.intArg = intArg_;
  m.intArg2 = intArg2_;
  m.hops = hops_;
  m.context.assign(context_);
  m.text.assign(text_);
  m.files.reserve(nFiles_);
  for (auto it = filesBegin(); it != filesEnd(); ++it) {
    m.files.emplace_back(*it);
  }
  m.ints.reserve(nInts_);
  for (auto it = intsBegin(); it != intsEnd(); ++it) m.ints.push_back(*it);
  return m;
}

// --------------------------------------------------------------------- codec

void encodeInto(const Message& m, WireBuffer& out) { encodeImpl(m, out); }

void encodeInto(const MessageRef& m, WireBuffer& out) { encodeImpl(m, out); }

std::size_t encodedSize(const Message& m) { return encodedSizeImpl(m); }

std::size_t encodedSize(const MessageRef& m) { return encodedSizeImpl(m); }

void encodeToBuffer(const Message& m, char* dst) {
  FixedSink sink{dst};
  encodePayloadImpl(m, sink);
}

void encodeToBuffer(const MessageRef& m, char* dst) {
  FixedSink sink{dst};
  encodePayloadImpl(m, sink);
}

Message materialize(const MessageRef& m) {
  Message out;
  out.type = m.type;
  out.requestId = m.requestId;
  out.context.assign(m.context);
  out.files.reserve(m.files.size());
  for (const auto f : m.files) out.files.emplace_back(f);
  out.ints.assign(m.ints.begin(), m.ints.end());
  out.code = m.code;
  out.intArg = m.intArg;
  out.intArg2 = m.intArg2;
  out.hops = m.hops;
  out.text.assign(m.text);
  return out;
}

MessageRef copyToArena(const MessageView& v, Arena& arena) {
  MessageRef m;
  m.type = v.type();
  m.requestId = v.requestId();
  m.code = v.code();
  m.intArg = v.intArg();
  m.intArg2 = v.intArg2();
  m.hops = v.hops();
  m.context = arena.copyString(v.context());
  m.text = arena.copyString(v.text());
  auto files = arena.allocSpan<std::string_view>(v.fileCount());
  std::size_t i = 0;
  for (auto it = v.filesBegin(); it != v.filesEnd(); ++it) {
    files[i++] = arena.copyString(*it);
  }
  m.files = files;
  auto ints = arena.allocSpan<std::int64_t>(v.intCount());
  i = 0;
  for (auto it = v.intsBegin(); it != v.intsEnd(); ++it) ints[i++] = *it;
  m.ints = ints;
  return m;
}

std::string encode(const Message& m) {
  WireBuffer buf;
  encodeInto(m, buf);
  return std::string(buf.payload());
}

Result<Message> decode(std::string_view data) {
  auto view = MessageView::parse(data);
  if (!view) return view.status();
  return view->toMessage();
}

std::string frame(std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + 4);
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((len >> (8 * i)) & 0xFF));
  }
  out.append(payload);
  return out;
}

}  // namespace simfs::msg
