#include "msg/message.hpp"

#include <cstring>

namespace simfs::msg {
namespace {

void putU16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void putU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void putU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void putStr(std::string& out, std::string_view s) {
  putU32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  [[nodiscard]] bool getU16(std::uint16_t& v) {
    if (pos_ + 2 > data_.size()) return false;
    v = static_cast<std::uint16_t>(
        static_cast<std::uint8_t>(data_[pos_]) |
        (static_cast<std::uint8_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return true;
  }

  [[nodiscard]] bool getU32(std::uint32_t& v) {
    if (pos_ + 4 > data_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  [[nodiscard]] bool getU64(std::uint64_t& v) {
    if (pos_ + 8 > data_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  [[nodiscard]] bool getStr(std::string& s) {
    std::uint32_t len = 0;
    if (!getU32(len)) return false;
    if (pos_ + len > data_.size()) return false;
    s.assign(data_.substr(pos_, len));
    pos_ += len;
    return true;
  }

  [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string encode(const Message& m) {
  std::string out;
  out.reserve(64 + m.context.size() + m.text.size());
  putU16(out, static_cast<std::uint16_t>(m.type));
  putU64(out, m.requestId);
  putU32(out, static_cast<std::uint32_t>(m.code));
  putU64(out, static_cast<std::uint64_t>(m.intArg));
  putU64(out, static_cast<std::uint64_t>(m.intArg2));
  putU16(out, m.hops);
  putStr(out, m.context);
  putStr(out, m.text);
  putU32(out, static_cast<std::uint32_t>(m.files.size()));
  for (const auto& f : m.files) putStr(out, f);
  putU32(out, static_cast<std::uint32_t>(m.ints.size()));
  for (const std::int64_t v : m.ints) putU64(out, static_cast<std::uint64_t>(v));
  return out;
}

Result<Message> decode(std::string_view data) {
  Reader r(data);
  Message m;
  std::uint16_t type = 0;
  std::uint32_t code = 0;
  std::uint64_t intArg = 0;
  std::uint64_t intArg2 = 0;
  std::uint32_t nFiles = 0;
  if (!r.getU16(type) || !r.getU64(m.requestId) || !r.getU32(code) ||
      !r.getU64(intArg) || !r.getU64(intArg2) || !r.getU16(m.hops) ||
      !r.getStr(m.context) || !r.getStr(m.text) || !r.getU32(nFiles)) {
    return errInvalidArgument("msg: truncated header");
  }
  m.type = static_cast<MsgType>(type);
  m.code = static_cast<std::int32_t>(code);
  m.intArg = static_cast<std::int64_t>(intArg);
  m.intArg2 = static_cast<std::int64_t>(intArg2);
  // A hostile/corrupted count must not drive a huge reserve(): every
  // entry needs at least its 4-byte length prefix, so bound by what the
  // buffer can actually hold before allocating.
  if (nFiles > r.remaining() / 4) {
    return errInvalidArgument("msg: file count exceeds buffer");
  }
  m.files.reserve(nFiles);
  for (std::uint32_t i = 0; i < nFiles; ++i) {
    std::string f;
    if (!r.getStr(f)) return errInvalidArgument("msg: truncated file list");
    m.files.push_back(std::move(f));
  }
  std::uint32_t nInts = 0;
  if (!r.getU32(nInts)) return errInvalidArgument("msg: truncated int list");
  // Same hostile-count bound as the file list: every entry takes 8 bytes,
  // so a forged count larger than the remaining buffer can never decode —
  // reject it before it drives the reserve().
  if (nInts > r.remaining() / 8) {
    return errInvalidArgument("msg: int count exceeds buffer");
  }
  m.ints.reserve(nInts);
  for (std::uint32_t i = 0; i < nInts; ++i) {
    std::uint64_t v = 0;
    if (!r.getU64(v)) return errInvalidArgument("msg: truncated int list");
    m.ints.push_back(static_cast<std::int64_t>(v));
  }
  if (!r.done()) return errInvalidArgument("msg: trailing bytes");
  return m;
}

std::string frame(std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + 4);
  putU32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

}  // namespace simfs::msg
