#include "msg/wire.hpp"

#include "common/env.hpp"

#include <algorithm>

namespace simfs::msg {

namespace {

std::size_t envSize(const char* name, std::size_t fallback) {
  if (const auto v = env::getInt(name); v && *v > 0) {
    return static_cast<std::size_t>(*v);
  }
  return fallback;
}

}  // namespace

BufferPool::BufferPool()
    : BufferPool(envSize("SIMFS_WIRE_POOL_BUFS", 64),
                 envSize("SIMFS_WIRE_BUF_RETAIN", 256 * 1024)) {}

BufferPool::BufferPool(std::size_t maxBuffers, std::size_t maxRetainBytes)
    : maxBuffers_(std::max<std::size_t>(1, maxBuffers)),
      maxRetainBytes_(std::max(WireBuffer::kInlineCapacity, maxRetainBytes)) {
  // The free list never reallocates: release() under load must not be the
  // one place a "zero-allocation" send path touches the heap.
  free_.reserve(maxBuffers_);
}

WireBuffer BufferPool::acquire() {
  {
    std::lock_guard lock(mutex_);
    if (!free_.empty()) {
      WireBuffer b = std::move(free_.back());
      free_.pop_back();
      return b;
    }
  }
  return WireBuffer();
}

void BufferPool::release(WireBuffer&& buffer) {
  buffer.shrink(maxRetainBytes_);
  std::lock_guard lock(mutex_);
  if (free_.size() >= maxBuffers_) return;  // drop: pool is full
  free_.push_back(std::move(buffer));
}

std::size_t BufferPool::retained() const {
  std::lock_guard lock(mutex_);
  return free_.size();
}

void* Arena::alloc(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  for (;;) {
    if (block_ < blocks_.size()) {
      Block& b = blocks_[block_];
      const std::size_t at = (used_ + align - 1) & ~(align - 1);
      if (at + bytes <= b.cap) {
        used_ = at + bytes;
        return b.data.get() + at;
      }
      // Current block full: move on (oversize blocks further down the
      // list are revisited on later passes since reset() rewinds).
      ++block_;
      used_ = 0;
      continue;
    }
    Block b;
    b.cap = std::max(blockBytes_, bytes + align);
    b.data = std::make_unique<char[]>(b.cap);
    blocks_.push_back(std::move(b));
  }
}

}  // namespace simfs::msg
