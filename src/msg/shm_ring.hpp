// Same-host shared-memory data plane: the SPSC command/completion ring.
//
// A connection's shm segment holds one ShmSegmentHdr followed by two
// byte rings (client->server commands, server->client completions). Each
// ring is a classic single-producer/single-consumer byte queue carved
// into fixed-size slots of kShmSlotBytes — the SAME constant as
// WireBuffer's inline storage, so a frame that a socket send would keep
// inline also occupies exactly one ring slot.
//
// Record format (one record = one contiguous extent of whole slots):
//
//   +--------+-----------------------------+
//   | 8B hdr | payload (len bytes) ...     |  extent = roundUp(8+len, slot)
//   +--------+-----------------------------+
//
//   hdr = {u32 len, u16 kind, u16 flags}
//   kind: kSlotMsg   — one complete encode()d message payload
//         kSlotPad   — dead space to the wrap point (producer could not
//                      place a contiguous extent before the ring end)
//         kSlotChunk — piece of an oversized frame; the consumer
//                      reassembles chunks until kChunkLast and parses the
//                      concatenation
//
// Extents never wrap: the producer pads to the ring end instead, so every
// kSlotMsg payload is contiguous and decodes IN PLACE as a MessageView
// over shared memory. head/tail are free-running byte cursors
// (release/acquire); "full" is head - tail == capacity.
//
// Doorbell: spin-then-park on a cross-process futex. Each side advertises
// that it is about to sleep in a parked word (seq_cst — the classic
// Dekker handshake with the peer's publish), then FUTEX_WAITs on a
// sequence word the peer bumps per publish/consume. The peer only pays
// the FUTEX_WAKE syscall when the parked word says someone is actually
// asleep, so a busy ring runs syscall-free. Waits use bounded (100 ms)
// timeouts as a belt-and-braces liveness floor: a peer that dies without
// closing can never strand the other side in the kernel.
//
// Crash/abuse safety: the consumer validates every record header (kind,
// length, extent bounds) before touching the payload; anything
// inconsistent reports kPoisoned and the transport drops the connection —
// a forged or corrupted ring can wedge itself, never this process.
#pragma once

#include "common/status.hpp"
#include "msg/wire.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace simfs::msg {

/// Ring slot granularity — tied to the wire pipeline's inline frame size.
inline constexpr std::size_t kShmSlotBytes = kInlineFrameBytes;
static_assert(kShmSlotBytes == WireBuffer::kInlineCapacity,
              "shm slot size and WireBuffer inline storage must stay in "
              "lockstep: both derive from kInlineFrameBytes");
static_assert((kShmSlotBytes & (kShmSlotBytes - 1)) == 0,
              "slot size must be a power of two");

/// Per-record header, written at the start of the record's first slot.
struct ShmSlotHdr {
  std::uint32_t len;    ///< payload bytes (excluding this header)
  std::uint16_t kind;   ///< kSlotMsg / kSlotPad / kSlotChunk
  std::uint16_t flags;  ///< kChunkLast for the final chunk of a frame
};
static_assert(sizeof(ShmSlotHdr) == 8);

inline constexpr std::uint16_t kSlotMsg = 1;
inline constexpr std::uint16_t kSlotPad = 2;
inline constexpr std::uint16_t kSlotChunk = 3;
inline constexpr std::uint16_t kChunkLast = 1;

/// One direction's shared control block. Producer-written and consumer-
/// written fields live on separate cache lines.
struct ShmRingHdr {
  alignas(64) std::atomic<std::uint64_t> head;  ///< bytes produced
  std::atomic<std::uint32_t> dataSeq;        ///< bumped per publish
  std::atomic<std::uint32_t> consumerParked; ///< consumer sleeping on dataSeq
  alignas(64) std::atomic<std::uint64_t> tail;  ///< bytes consumed
  std::atomic<std::uint32_t> spaceSeq;       ///< bumped per consume
  std::atomic<std::uint32_t> producerParked; ///< producer sleeping on spaceSeq
};

/// The shared segment's leading header; the two rings' data areas follow.
struct ShmSegmentHdr {
  char magic[8];           ///< "SIMFSHM1"
  std::uint32_t version;   ///< kShmVersion
  std::uint32_t slotBytes; ///< must equal kShmSlotBytes
  std::uint64_t ringBytes; ///< per-direction data capacity
  std::atomic<std::uint32_t> closed;          ///< kShmClosedClient/Server bits
  std::atomic<std::uint32_t> serverAttached;  ///< daemon mapped the segment
  ShmRingHdr c2s;  ///< client->server commands (client produces)
  ShmRingHdr s2c;  ///< server->client completions (server produces)
};

inline constexpr std::uint32_t kShmVersion = 1;
inline constexpr std::uint32_t kShmClosedClient = 1;
inline constexpr std::uint32_t kShmClosedServer = 2;

/// Total segment size for a per-direction data capacity of `ringBytes`.
[[nodiscard]] constexpr std::size_t shmSegmentBytes(
    std::size_t ringBytes) noexcept {
  return sizeof(ShmSegmentHdr) + 2 * ringBytes;
}

/// One directional SPSC ring over caller-provided memory (a mapped shm
/// segment in production; plain heap memory in the unit tests). Each side
/// constructs its own ShmRing over the shared header/data — the producer
/// methods are called by exactly one thread of one process, the consumer
/// methods by exactly one thread of the other.
class ShmRing {
 public:
  enum class Poll {
    kFrame,     ///< one complete frame delivered to the callback
    kIdle,      ///< timeout expired with no frame
    kClosed,    ///< ring empty and the close mask is set
    kPoisoned,  ///< inconsistent record header — drop the connection
  };

  /// `closed` is the segment's close mask (or any shared u32 in tests);
  /// both waits abort once it is non-zero.
  ShmRing(ShmRingHdr* hdr, char* data, std::size_t capBytes,
          const std::atomic<std::uint32_t>* closed)
      : hdr_(hdr),
        data_(data),
        cap_(capBytes),
        closed_(closed),
        headShadow_(hdr->head.load(std::memory_order_acquire)),
        tailShadow_(hdr->tail.load(std::memory_order_acquire)) {}

  /// Zeroes the shared cursors (segment creator, before the peer maps).
  static void initHeader(ShmRingHdr* hdr);

  /// Largest payload placeable as ONE contiguous extent; bigger frames go
  /// through the kSlotChunk reassembly path. Capped at half the ring so a
  /// single frame can always fit regardless of wrap position.
  [[nodiscard]] std::uint32_t maxExtentPayload() const noexcept {
    return static_cast<std::uint32_t>(cap_ / 2 - sizeof(ShmSlotHdr));
  }

  // --- producer side ---------------------------------------------------------

  /// Reserves a contiguous extent for a `len`-byte payload (writing a pad
  /// record first when the extent would cross the wrap point) and returns
  /// the payload cursor to encode into, or nullptr when the ring stayed
  /// full past `timeout` or the close mask fired. `len` must be
  /// <= maxExtentPayload().
  [[nodiscard]] char* beginWrite(std::uint32_t len,
                                 std::chrono::nanoseconds timeout);

  /// Publishes the record reserved by the preceding beginWrite.
  void commitWrite(std::uint32_t len, std::uint16_t kind, std::uint16_t flags);

  // --- consumer side ---------------------------------------------------------

  /// Waits up to `timeout` for a complete frame and hands its payload to
  /// `fn`: in place over ring memory for single-extent frames, over the
  /// internal reassembly scratch for chunked ones. Pads and non-final
  /// chunks are consumed internally without returning.
  Poll consume(std::chrono::nanoseconds timeout,
               const std::function<void(std::string_view)>& fn);

  /// Wakes both parked sides (close path: the closing process sets the
  /// close mask, then kicks the futexes so nobody waits out a timeout).
  void wakeAll();

  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }

 private:
  [[nodiscard]] bool isClosed() const noexcept {
    return closed_->load(std::memory_order_acquire) != 0;
  }
  void consumeAdvance(std::uint64_t bytes);

  ShmRingHdr* hdr_;
  char* data_;
  std::size_t cap_;
  const std::atomic<std::uint32_t>* closed_;
  // producer-local (single producer: shadows avoid re-reading shared words)
  std::uint64_t headShadow_ = 0;     ///< mirrors hdr_->head
  std::uint64_t pendingOff_ = 0;     ///< reservation between begin/commit
  std::uint64_t pendingAdvance_ = 0;
  // consumer-local
  std::uint64_t tailShadow_ = 0;  ///< mirrors hdr_->tail (single consumer)
  std::string chunkScratch_;      ///< oversized-frame reassembly buffer
};

}  // namespace simfs::msg
