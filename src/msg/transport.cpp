#include "msg/transport.hpp"

#include "common/env.hpp"
#include "common/log.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace simfs::msg {
namespace {

constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Backpressure bound: a peer that stops draining its socket may hold at
/// most this many queued outbound bytes before the connection is torn
/// down (the old thread-per-connection transport blocked in write()
/// instead, which a shared event loop must never do).
constexpr std::size_t kMaxOutboxBytes = 128u << 20;

/// How long a close()d connection may keep flushing its tail to a slow
/// peer before the remainder is dropped and the socket shut down hard.
constexpr auto kCloseGrace = std::chrono::seconds(5);

/// Delivers `m` to the handler, or parks it in the backlog when no handler
/// is installed yet (or a setHandler replay is in flight — keeps order).
/// Shared by both transport implementations.
template <typename Lockable, typename HandlerSlot, typename Backlog>
void deliverOrBuffer(Lockable& mutex, HandlerSlot& handler, bool& draining,
                     Backlog& backlog, Message&& m) {
  Transport::Handler h;
  {
    std::lock_guard lock(mutex);
    if (!handler || draining) {
      backlog.push_back(std::move(m));
      return;
    }
    h = handler;
  }
  h(std::move(m));
}

/// setHandler body shared by both implementations: installs the handler
/// and replays the backlog in order on the calling thread. `draining`
/// makes concurrent sends append behind the replay instead of overtaking.
template <typename Lockable, typename HandlerSlot, typename Backlog>
void installAndReplay(Lockable& mutex, HandlerSlot& handler, bool& draining,
                      Backlog& backlog, Transport::Handler h) {
  std::unique_lock lock(mutex);
  handler = std::move(h);
  if (backlog.empty()) return;
  draining = true;
  while (!backlog.empty()) {
    std::vector<Message> batch(std::make_move_iterator(backlog.begin()),
                               std::make_move_iterator(backlog.end()));
    backlog.clear();
    const Transport::Handler local = handler;
    lock.unlock();
    for (auto& m : batch) local(std::move(m));
    lock.lock();
  }
  draining = false;
}

// ------------------------------------------------------------------- InProc

/// Shared state of one in-process pair; endpoints index it as side 0/1.
struct InProcShared {
  std::mutex mutex[2];
  Transport::Handler handler[2];
  bool draining[2] = {false, false};
  int inFlight[2] = {0, 0};  ///< deliveries currently inside handler[i]
  std::condition_variable idleCv[2];
  std::vector<Message> backlog[2];
  std::function<void()> closeHandler[2];
  bool closePending[2] = {false, false};  ///< peer died before handler set
  std::atomic<bool> open{true};
};

class InProcEndpoint final : public Transport {
 public:
  InProcEndpoint(std::shared_ptr<InProcShared> shared, int side)
      : shared_(std::move(shared)), side_(side) {}

  ~InProcEndpoint() override {
    close();
    // Teardown handshake (mirrors Reactor::remove): clear our handler and
    // wait out deliveries already inside it, so the objects the handler
    // captures may be destroyed the moment this destructor returns.
    std::unique_lock lock(shared_->mutex[side_]);
    shared_->handler[side_] = nullptr;
    shared_->closeHandler[side_] = nullptr;
    shared_->idleCv[side_].wait(lock,
                                [&] { return shared_->inFlight[side_] == 0; });
  }

  Status send(const Message& m) override {
    if (!shared_->open.load()) return errUnavailable("inproc: closed");
    const int peer = 1 - side_;
    Message copy = m;
    // Synchronous delivery on the sender's thread; pre-handler messages
    // are buffered and replayed by the peer's setHandler. The in-flight
    // count lets the peer's destructor wait for this call to leave its
    // handler.
    Handler h;
    {
      std::lock_guard lock(shared_->mutex[peer]);
      if (!shared_->handler[peer] || shared_->draining[peer]) {
        shared_->backlog[peer].push_back(std::move(copy));
        return Status::ok();
      }
      h = shared_->handler[peer];
      ++shared_->inFlight[peer];
    }
    h(std::move(copy));
    {
      std::lock_guard lock(shared_->mutex[peer]);
      --shared_->inFlight[peer];
    }
    shared_->idleCv[peer].notify_all();
    return Status::ok();
  }

  void setHandler(Handler handler) override {
    installAndReplay(shared_->mutex[side_], shared_->handler[side_],
                     shared_->draining[side_], shared_->backlog[side_],
                     std::move(handler));
  }

  void setCloseHandler(std::function<void()> handler) override {
    std::function<void()> fire;
    {
      std::lock_guard lock(shared_->mutex[side_]);
      shared_->closeHandler[side_] = std::move(handler);
      if (shared_->closePending[side_]) {
        shared_->closePending[side_] = false;
        fire = shared_->closeHandler[side_];
      }
    }
    // The peer closed before this handler existed: deliver the buffered
    // close event now (same replay contract as setHandler).
    if (fire) fire();
  }

  void close() override {
    bool expected = true;
    if (!shared_->open.compare_exchange_strong(expected, false)) return;
    // Tell the peer its counterpart is gone. The invocation is counted
    // in inFlight so the peer's destructor handshake also waits out a
    // close callback already past the handler copy, not just message
    // deliveries.
    const int peer = 1 - side_;
    std::function<void()> peerClose;
    {
      std::lock_guard lock(shared_->mutex[peer]);
      peerClose = shared_->closeHandler[peer];
      if (!peerClose) {
        shared_->closePending[peer] = true;
      } else {
        ++shared_->inFlight[peer];
      }
    }
    if (peerClose) {
      peerClose();
      {
        std::lock_guard lock(shared_->mutex[peer]);
        --shared_->inFlight[peer];
      }
      shared_->idleCv[peer].notify_all();
    }
  }

  bool isOpen() const override { return shared_->open.load(); }

 private:
  std::shared_ptr<InProcShared> shared_;
  int side_;
};

// ------------------------------------------------------------------ reactor

/// Per-connection state shared between the reactor loop that owns the fd
/// and the ReactorTransport facade user threads hold.
struct Conn {
  int fd = -1;
  std::size_t loop = 0;

  std::mutex mutex;
  // --- guarded by mutex -----------------------------------------------------
  std::deque<std::string> outbox;  ///< framed messages awaiting writev
  std::size_t outHead = 0;         ///< bytes of outbox.front() already sent
  std::size_t outBytes = 0;        ///< queued + in-flight outbound bytes
  bool writeArmed = false;         ///< a flush is scheduled / EPOLLOUT armed
  bool closing = false;            ///< close() called: flush, then shutdown
  bool shutdownSent = false;
  Transport::Handler handler;
  bool draining = false;
  std::vector<Message> backlog;    ///< messages received before setHandler
  std::function<void()> closeHandler;
  bool closeNotified = false;
  bool closePending = false;       ///< peer died before handler was set
  bool removed = false;            ///< fully deregistered from the reactor
  std::condition_variable removedCv;
  // --- loop-thread only -----------------------------------------------------
  std::string readBuf;
  std::size_t readHead = 0;
  bool wantWrite = false;          ///< EPOLLOUT currently in the interest set
  bool registered = false;
  /// Deadline for draining a close()d connection's tail (zero = unset).
  std::chrono::steady_clock::time_point closeDeadline{};
  // --- any thread -----------------------------------------------------------
  std::atomic<bool> open{true};
};

/// Epoll reactor: one (or SIMFS_REACTOR_THREADS) event-loop thread(s) own
/// every socket endpoint of the process. Inbound frames are decoded and
/// dispatched on the loop thread; outbound frames queue per connection and
/// flush as one writev per loop pass (send batching). All epoll_ctl and
/// connection-table mutation happens on the owning loop thread, driven by
/// a command queue + eventfd wakeup.
class Reactor {
 public:
  explicit Reactor(std::size_t nLoops) {
    loops_.reserve(nLoops);
    for (std::size_t i = 0; i < nLoops; ++i) {
      auto loop = std::make_unique<Loop>();
      loop->epollFd = ::epoll_create1(EPOLL_CLOEXEC);
      loop->wakeFd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
      SIMFS_CHECK(loop->epollFd >= 0 && loop->wakeFd >= 0);
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = loop->wakeFd;
      SIMFS_CHECK(::epoll_ctl(loop->epollFd, EPOLL_CTL_ADD, loop->wakeFd,
                              &ev) == 0);
      loops_.push_back(std::move(loop));
    }
    for (auto& loop : loops_) {
      loop->thread = std::thread([this, raw = loop.get()] { run(*raw); });
    }
  }

  ~Reactor() {
    for (auto& loop : loops_) {
      loop->stop.store(true);
      wake(*loop);
    }
    for (auto& loop : loops_) {
      if (loop->thread.joinable()) loop->thread.join();
    }
    // Single-threaded from here: run stranded commands (e.g. a removal
    // handshake posted during shutdown), then drop whatever is left.
    for (auto& loop : loops_) {
      std::vector<std::function<void()>> cmds;
      {
        std::lock_guard lock(loop->cmdMutex);
        cmds.swap(loop->commands);
      }
      for (auto& c : cmds) c();
      for (auto& [fd, conn] : loop->conns) {
        ::close(fd);
        conn->registered = false;
        std::lock_guard lock(conn->mutex);
        conn->open.store(false);
        conn->removed = true;
        conn->removedCv.notify_all();
      }
      loop->conns.clear();
      ::close(loop->epollFd);
      ::close(loop->wakeFd);
    }
  }

  /// Process-wide reactor; sized by SIMFS_REACTOR_THREADS (default 1).
  static Reactor& shared() {
    static Reactor instance([] {
      const auto v = env::getInt("SIMFS_REACTOR_THREADS");
      if (!v) return std::size_t{1};
      return static_cast<std::size_t>(std::clamp<std::int64_t>(*v, 1, 16));
    }());
    return instance;
  }

  /// Takes ownership of a connected fd; registration completes
  /// asynchronously on the owning loop (commands are ordered, so sends
  /// issued immediately after adopt flush after registration).
  std::shared_ptr<Conn> adopt(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->loop = nextLoop_.fetch_add(1) % loops_.size();
    post(conn->loop, [this, conn] {
      Loop& loop = *loops_[conn->loop];
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = conn->fd;
      if (::epoll_ctl(loop.epollFd, EPOLL_CTL_ADD, conn->fd, &ev) == 0) {
        loop.conns.emplace(conn->fd, conn);
        conn->registered = true;
      } else {
        SIMFS_LOG_ERROR("msg", "reactor: cannot register fd %d", conn->fd);
        ::close(conn->fd);
        // Same owner-notification duties as disconnect(): without them
        // the transport's close handler never fires and e.g. a daemon
        // session would never be reaped.
        std::function<void()> onClose;
        {
          std::lock_guard lock(conn->mutex);
          conn->open.store(false);
          if (conn->closeHandler) {
            conn->closeNotified = true;
            onClose = conn->closeHandler;
          } else {
            conn->closePending = true;
          }
          conn->removedCv.notify_all();
        }
        if (onClose) onClose();
      }
    });
    return conn;
  }

  /// Asks the owning loop to flush `conn`'s outbox (and, once drained,
  /// perform the deferred shutdown of a closing connection).
  void scheduleFlush(const std::shared_ptr<Conn>& conn) {
    post(conn->loop, [this, conn] {
      if (conn->registered) flushWrites(*loops_[conn->loop], conn);
    });
  }

  /// Runs the peer-disconnect teardown (epoll removal, fd close, close
  /// callback) on the owning loop — used when a slow consumer overflows
  /// its send queue and has to be dropped from a sender thread.
  void scheduleDisconnect(const std::shared_ptr<Conn>& conn) {
    post(conn->loop, [this, conn] {
      if (conn->registered) disconnect(*loops_[conn->loop], conn);
    });
  }

  /// Deregisters `conn` and blocks until no loop thread can touch it
  /// again (drop-safe handshake for ~ReactorTransport).
  void remove(const std::shared_ptr<Conn>& conn) {
    Loop& loop = *loops_[conn->loop];
    if (std::this_thread::get_id() == loop.threadId) {
      deregister(loop, conn);
      return;
    }
    // Honor the close contract before tearing the fd down: give the
    // reactor until the grace deadline to flush the queued tail (a
    // responsive peer drains in milliseconds; a dead one is bounded by
    // sweepClosing, which empties the outbox at the deadline).
    {
      std::unique_lock lock(conn->mutex);
      conn->removedCv.wait_for(lock, kCloseGrace, [&] {
        // outBytes (not outbox.empty()): flushWrites steals the outbox
        // into a local deque mid-write, and only outBytes keeps counting
        // those in-flight frames. closeNotified/closePending: the peer is
        // gone (possibly before a close handler existed) — nothing will
        // ever drain the queue.
        return conn->outBytes == 0 || conn->removed || conn->shutdownSent ||
               conn->closeNotified || conn->closePending;
      });
    }
    post(conn->loop, [this, &loop, conn] { deregister(loop, conn); });
    std::unique_lock lock(conn->mutex);
    conn->removedCv.wait(lock, [&] { return conn->removed; });
  }

 private:
  struct Loop {
    int epollFd = -1;
    int wakeFd = -1;
    std::thread thread;
    std::thread::id threadId;
    std::mutex cmdMutex;
    std::vector<std::function<void()>> commands;
    std::unordered_map<int, std::shared_ptr<Conn>> conns;
    /// Closed connections still draining their tail (grace-bounded).
    std::unordered_set<std::shared_ptr<Conn>> closingConns;
    std::atomic<bool> stop{false};
  };

  void post(std::size_t loopIdx, std::function<void()> fn) {
    Loop& loop = *loops_[loopIdx];
    bool needWake = false;
    {
      std::lock_guard lock(loop.cmdMutex);
      needWake = loop.commands.empty();
      loop.commands.push_back(std::move(fn));
    }
    if (needWake) wake(loop);
  }

  void wake(Loop& loop) {
    const std::uint64_t one = 1;
    (void)!::write(loop.wakeFd, &one, sizeof(one));
  }

  void run(Loop& loop) {
    loop.threadId = std::this_thread::get_id();
    std::vector<epoll_event> events(64);
    std::vector<std::function<void()>> cmds;
    for (;;) {
      cmds.clear();
      {
        std::lock_guard lock(loop.cmdMutex);
        cmds.swap(loop.commands);
      }
      for (auto& c : cmds) c();
      if (loop.stop.load()) return;
      // Block indefinitely unless a closed connection is still draining;
      // then wake periodically to enforce its grace deadline.
      const int timeoutMs = loop.closingConns.empty() ? -1 : 100;
      const int n = ::epoll_wait(loop.epollFd, events.data(),
                                 static_cast<int>(events.size()), timeoutMs);
      if (n < 0) {
        if (errno == EINTR) continue;
        SIMFS_LOG_ERROR("msg", "reactor: epoll_wait failed: %s",
                        std::strerror(errno));
        return;
      }
      if (!loop.closingConns.empty()) sweepClosing(loop);
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        if (fd == loop.wakeFd) {
          std::uint64_t drained = 0;
          (void)!::read(loop.wakeFd, &drained, sizeof(drained));
          continue;
        }
        const auto it = loop.conns.find(fd);
        if (it == loop.conns.end()) continue;
        // Copy: the handlers below may deregister the connection.
        const std::shared_ptr<Conn> conn = it->second;
        const auto flags = events[i].events;
        if ((flags & EPOLLERR) != 0) {
          disconnect(loop, conn);
          continue;
        }
        if ((flags & (EPOLLIN | EPOLLHUP)) != 0) handleReadable(loop, conn);
        if (conn->registered && (flags & EPOLLOUT) != 0) {
          flushWrites(loop, conn);
        }
      }
    }
  }

  void handleReadable(Loop& loop, const std::shared_ptr<Conn>& conn) {
    char buf[64 * 1024];
    bool dead = false;
    // Read until EAGAIN (bounded per pass; level-triggered epoll re-fires
    // if the peer outruns us).
    for (int pass = 0; pass < 8; ++pass) {
      const ssize_t r = ::read(conn->fd, buf, sizeof(buf));
      if (r > 0) {
        conn->readBuf.append(buf, static_cast<std::size_t>(r));
        if (static_cast<std::size_t>(r) < sizeof(buf)) break;
        continue;
      }
      if (r == 0) {
        dead = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      dead = true;
      break;
    }
    // Decode every complete frame accumulated so far.
    std::string& rb = conn->readBuf;
    std::size_t& head = conn->readHead;
    while (rb.size() - head >= 4) {
      std::uint32_t len = 0;
      std::memcpy(&len, rb.data() + head, sizeof(len));
      if (len > kMaxFrameBytes) {
        SIMFS_LOG_ERROR("msg", "socket: oversized frame (%u bytes)", len);
        dead = true;
        break;
      }
      if (rb.size() - head < 4 + static_cast<std::size_t>(len)) break;
      auto m = decode(std::string_view(rb).substr(head + 4, len));
      head += 4 + static_cast<std::size_t>(len);
      if (!m) {
        SIMFS_LOG_ERROR("msg", "socket: undecodable frame: %s",
                        m.status().toString().c_str());
        dead = true;
        break;
      }
      deliverOrBuffer(conn->mutex, conn->handler, conn->draining,
                      conn->backlog, std::move(*m));
    }
    if (head > 0) {
      rb.erase(0, head);  // compact once per event, not once per frame
      head = 0;
    }
    if (dead) disconnect(loop, conn);
  }

  void flushWrites(Loop& loop, const std::shared_ptr<Conn>& conn) {
    constexpr int kMaxIov = 64;
    constexpr int kMaxPasses = 4;  // then yield to other connections
    bool fail = false;
    bool wantWrite = false;
    bool doShutdown = false;
    std::size_t poppedBytes = 0;
    std::deque<std::string> local;
    std::size_t head = 0;
    for (int pass = 0; pass < kMaxPasses; ++pass) {
      // Steal the outbox so the writev() syscalls below run without the
      // connection mutex — senders stay non-blocking during kernel I/O.
      {
        std::lock_guard lock(conn->mutex);
        local.swap(conn->outbox);
        head = conn->outHead;
        conn->outHead = 0;
      }
      if (local.empty()) break;
      while (!local.empty()) {
        iovec iov[kMaxIov];
        int cnt = 0;
        std::size_t skip = head;
        for (auto it = local.begin(); it != local.end() && cnt < kMaxIov;
             ++it) {
          iov[cnt].iov_base = const_cast<char*>(it->data() + skip);
          iov[cnt].iov_len = it->size() - skip;
          skip = 0;
          ++cnt;
        }
        const ssize_t w = ::writev(conn->fd, iov, cnt);
        if (w < 0) {
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) {
            wantWrite = true;
            break;
          }
          fail = true;
          break;
        }
        std::size_t n = static_cast<std::size_t>(w);
        while (n > 0 && !local.empty()) {
          const std::size_t remain = local.front().size() - head;
          if (n >= remain) {
            n -= remain;
            poppedBytes += local.front().size();
            local.pop_front();
            head = 0;
          } else {
            head += n;
            n = 0;
          }
        }
      }
      if (fail) break;
      if (!local.empty()) {
        // Partial write: splice the tail back in FRONT of whatever new
        // sends queued meanwhile, preserving frame order.
        std::lock_guard lock(conn->mutex);
        for (auto it = local.rbegin(); it != local.rend(); ++it) {
          conn->outbox.push_front(std::move(*it));
        }
        conn->outHead = head;
        local.clear();
        break;  // socket is full (EAGAIN): wait for EPOLLOUT
      }
      // Drained everything we stole; loop in case senders refilled.
    }
    if (fail) {
      disconnect(loop, conn);
      return;
    }
    bool trackClosing = false;
    {
      std::lock_guard lock(conn->mutex);
      conn->outBytes -= poppedBytes;
      if (conn->outbox.empty()) {
        conn->writeArmed = false;
        if (conn->closing && !conn->shutdownSent) {
          conn->shutdownSent = true;
          doShutdown = true;
        }
      } else {
        if (!wantWrite) {
          // Refilled faster than kMaxPasses could drain: the socket is
          // still writable, so level-triggered EPOLLOUT re-enters us on
          // the next loop pass without starving other connections.
          wantWrite = true;
        }
        // Closing with a tail still queued: keep flushing, but bounded —
        // sweepClosing() drops the remainder once the grace expires.
        if (conn->closing && !conn->shutdownSent) trackClosing = true;
      }
    }
    if (trackClosing) {
      if (conn->closeDeadline == std::chrono::steady_clock::time_point{}) {
        conn->closeDeadline = std::chrono::steady_clock::now() + kCloseGrace;
      }
      loop.closingConns.insert(conn);
    }
    // Wake a destructor waiting in remove() for the tail to flush.
    conn->removedCv.notify_all();
    updateInterest(loop, *conn, wantWrite);
    if (doShutdown) {
      loop.closingConns.erase(conn);
      // Queued sends are on the wire; now let the peer observe EOF. Our
      // own read side then hits EOF and runs the disconnect path.
      ::shutdown(conn->fd, SHUT_RDWR);
    }
  }

  /// Enforces the close grace: a close()d connection whose peer did not
  /// drain the tail in time is shut down hard (close() promises EOF, not
  /// unbounded patience with a peer that stopped reading).
  void sweepClosing(Loop& loop) {
    const auto now = std::chrono::steady_clock::now();
    for (auto it = loop.closingConns.begin(); it != loop.closingConns.end();) {
      const std::shared_ptr<Conn>& conn = *it;
      bool expired = false;
      {
        std::lock_guard lock(conn->mutex);
        if (conn->outbox.empty() || conn->shutdownSent || !conn->registered) {
          it = loop.closingConns.erase(it);
          continue;
        }
        if (now >= conn->closeDeadline) {
          conn->outbox.clear();
          conn->outHead = 0;
          conn->outBytes = 0;
          conn->writeArmed = false;
          conn->shutdownSent = true;
          expired = true;
        }
      }
      if (expired) {
        conn->removedCv.notify_all();
        ::shutdown(conn->fd, SHUT_RDWR);
        it = loop.closingConns.erase(it);
      } else {
        ++it;
      }
    }
  }

  void updateInterest(Loop& loop, Conn& conn, bool wantWrite) {
    if (!conn.registered || conn.wantWrite == wantWrite) return;
    epoll_event ev{};
    ev.events = EPOLLIN | (wantWrite ? EPOLLOUT : 0u);
    ev.data.fd = conn.fd;
    (void)::epoll_ctl(loop.epollFd, EPOLL_CTL_MOD, conn.fd, &ev);
    conn.wantWrite = wantWrite;
  }

  /// Peer-initiated teardown (EOF, error, poisoned frame).
  void disconnect(Loop& loop, const std::shared_ptr<Conn>& conn) {
    std::function<void()> onClose;
    {
      std::lock_guard lock(conn->mutex);
      conn->open.store(false);
      if (!conn->closeNotified) {
        if (conn->closeHandler) {
          conn->closeNotified = true;
          onClose = conn->closeHandler;
        } else {
          // No handler yet: buffer the event, setCloseHandler replays it.
          conn->closePending = true;
        }
      }
    }
    if (conn->registered) {
      (void)::epoll_ctl(loop.epollFd, EPOLL_CTL_DEL, conn->fd, nullptr);
      loop.conns.erase(conn->fd);
      ::close(conn->fd);
      conn->registered = false;
    }
    loop.closingConns.erase(conn);
    conn->removedCv.notify_all();
    if (onClose) onClose();
  }

  /// Transport-initiated teardown; after this returns on the loop thread,
  /// no handler or close callback can run again.
  void deregister(Loop& loop, const std::shared_ptr<Conn>& conn) {
    if (conn->registered) {
      (void)::epoll_ctl(loop.epollFd, EPOLL_CTL_DEL, conn->fd, nullptr);
      loop.conns.erase(conn->fd);
      ::close(conn->fd);
      conn->registered = false;
    }
    loop.closingConns.erase(conn);
    std::lock_guard lock(conn->mutex);
    conn->open.store(false);
    conn->handler = nullptr;
    conn->closeHandler = nullptr;
    conn->removed = true;
    conn->removedCv.notify_all();
  }

  std::vector<std::unique_ptr<Loop>> loops_;
  std::atomic<std::size_t> nextLoop_{0};
};

class ReactorTransport final : public Transport {
 public:
  ReactorTransport(Reactor& reactor, std::shared_ptr<Conn> conn)
      : reactor_(reactor), conn_(std::move(conn)) {}

  ~ReactorTransport() override {
    close();
    reactor_.remove(conn_);
  }

  Status send(const Message& m) override {
    // Cheap sticky-state pre-check before paying for serialization; the
    // locked check below remains authoritative.
    if (!conn_->open.load()) return errUnavailable("socket: closed");
    std::string framed = frame(encode(m));
    bool schedule = false;
    bool overflow = false;
    {
      std::lock_guard lock(conn_->mutex);
      if (!conn_->open.load() || conn_->closing) {
        return errUnavailable("socket: closed");
      }
      if (conn_->outBytes + framed.size() > kMaxOutboxBytes) {
        // Backpressure: the peer stopped draining. A shared event loop
        // must not block the sender, so the connection is dropped — the
        // close callback lets the owner reclaim the session.
        conn_->open.store(false);
        overflow = true;
      } else {
        conn_->outBytes += framed.size();
        conn_->outbox.push_back(std::move(framed));
        if (!conn_->writeArmed) {
          conn_->writeArmed = true;
          schedule = true;
        }
      }
    }
    if (overflow) {
      SIMFS_LOG_WARN("msg", "socket: send queue overflow, dropping peer");
      reactor_.scheduleDisconnect(conn_);
      return errUnavailable("socket: send queue overflow");
    }
    // One wakeup covers every send queued until the loop drains the
    // outbox (writev batching); only the first sender pays the post.
    if (schedule) reactor_.scheduleFlush(conn_);
    return Status::ok();
  }

  void setHandler(Handler handler) override {
    installAndReplay(conn_->mutex, conn_->handler, conn_->draining,
                     conn_->backlog, std::move(handler));
  }

  void setCloseHandler(std::function<void()> handler) override {
    std::function<void()> fire;
    {
      std::lock_guard lock(conn_->mutex);
      conn_->closeHandler = std::move(handler);
      if (conn_->closePending && !conn_->closeNotified) {
        conn_->closeNotified = true;
        conn_->closePending = false;
        fire = conn_->closeHandler;
      }
    }
    // The peer vanished before the handler existed (the reactor starts
    // reading at adopt(), not at setHandler()): replay the close event.
    if (fire) fire();
  }

  void close() override {
    bool schedule = false;
    {
      std::lock_guard lock(conn_->mutex);
      if (conn_->closing) return;
      conn_->closing = true;
      conn_->open.store(false);
      if (!conn_->writeArmed) {
        conn_->writeArmed = true;
        schedule = true;
      }
    }
    // The flush drains anything already queued, then shuts the socket
    // down so the peer observes EOF.
    if (schedule) reactor_.scheduleFlush(conn_);
  }

  bool isOpen() const override { return conn_->open.load(); }

 private:
  Reactor& reactor_;
  std::shared_ptr<Conn> conn_;
};

}  // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
makeInProcPair() {
  auto shared = std::make_shared<InProcShared>();
  return {std::make_unique<InProcEndpoint>(shared, 0),
          std::make_unique<InProcEndpoint>(shared, 1)};
}

// --------------------------------------------------------- UnixSocketServer

struct UnixSocketServer::Impl {
  int listenFd = -1;
  std::thread acceptThread;
  std::atomic<bool> running{false};
};

UnixSocketServer::UnixSocketServer(std::string path)
    : impl_(std::make_unique<Impl>()), path_(std::move(path)) {}

UnixSocketServer::~UnixSocketServer() { stop(); }

Status UnixSocketServer::start(ConnectionHandler onConnection) {
  ::unlink(path_.c_str());
  impl_->listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (impl_->listenFd < 0) return errIoError("socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof(addr.sun_path)) {
    return errInvalidArgument("socket path too long: " + path_);
  }
  std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(impl_->listenFd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return errIoError("bind() failed for " + path_);
  }
  if (::listen(impl_->listenFd, 64) != 0) {
    return errIoError("listen() failed for " + path_);
  }
  impl_->running.store(true);
  impl_->acceptThread = std::thread([this, onConnection = std::move(onConnection)] {
    // Poll with a timeout so stop() can terminate the loop: shutdown() on
    // a listening socket does not reliably wake a blocked accept().
    while (impl_->running.load()) {
      pollfd pfd{impl_->listenFd, POLLIN, 0};
      const int n = ::poll(&pfd, 1, /*timeout_ms=*/100);
      if (n < 0) break;
      if (n == 0 || (pfd.revents & POLLIN) == 0) continue;
      const int fd = ::accept(impl_->listenFd, nullptr, nullptr);
      if (fd < 0) break;
      auto& reactor = Reactor::shared();
      onConnection(
          std::make_unique<ReactorTransport>(reactor, reactor.adopt(fd)));
    }
  });
  return Status::ok();
}

void UnixSocketServer::stop() {
  if (!impl_) return;
  const bool wasRunning = impl_->running.exchange(false);
  if (impl_->acceptThread.joinable()) impl_->acceptThread.join();
  if (wasRunning) {
    ::close(impl_->listenFd);
    ::unlink(path_.c_str());
  }
}

Result<std::unique_ptr<Transport>> unixSocketConnect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return errIoError("socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return errInvalidArgument("socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return errUnavailable("connect() failed for " + path);
  }
  auto& reactor = Reactor::shared();
  return std::unique_ptr<Transport>(
      std::make_unique<ReactorTransport>(reactor, reactor.adopt(fd)));
}

}  // namespace simfs::msg
