#include "msg/transport.hpp"

#include "common/env.hpp"
#include "common/fault.hpp"
#include "common/log.hpp"
#include "msg/handler_slot.hpp"
#include "msg/shm_transport.hpp"
#include "msg/uring.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace simfs::msg {
namespace {

constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Backpressure bound: a peer that stops draining its socket may hold at
/// most this many queued outbound bytes before the connection is torn
/// down (the old thread-per-connection transport blocked in write()
/// instead, which a shared event loop must never do).
constexpr std::size_t kMaxOutboxBytes = 128u << 20;

/// How long a close()d connection may keep flushing its tail to a slow
/// peer before the remainder is dropped and the socket shut down hard.
constexpr auto kCloseGrace = std::chrono::seconds(5);

// The handler-slot machinery (scratch buffers, HandlerSlot,
// installAndReplay, deliverAsView) lives in msg/handler_slot.hpp so the
// shm transport shares it; local aliases keep the call sites unchanged.
using detail::acquireScratch;
using detail::deliverAsView;
using detail::HandlerSlot;
using detail::installAndReplay;
using detail::releaseScratch;

// ------------------------------------------------------------------- InProc

/// Shared state of one in-process pair; endpoints index it as side 0/1.
struct InProcShared {
  std::mutex mutex[2];
  HandlerSlot slot[2];
  int inFlight[2] = {0, 0};  ///< deliveries currently inside a handler
  std::condition_variable idleCv[2];
  std::function<void()> closeHandler[2];
  bool closePending[2] = {false, false};  ///< peer died before handler set
  std::atomic<bool> open{true};
};

class InProcEndpoint final : public Transport {
 public:
  InProcEndpoint(std::shared_ptr<InProcShared> shared, int side)
      : shared_(std::move(shared)), side_(side) {}

  ~InProcEndpoint() override {
    close();
    // Teardown handshake (mirrors Reactor::remove): clear our handler and
    // wait out deliveries already inside it, so the objects the handler
    // captures may be destroyed the moment this destructor returns.
    std::unique_lock lock(shared_->mutex[side_]);
    shared_->slot[side_].onMessage.reset();
    shared_->slot[side_].onView.reset();
    shared_->closeHandler[side_] = nullptr;
    shared_->idleCv[side_].wait(lock,
                                [&] { return shared_->inFlight[side_] == 0; });
  }

  Status send(const Message& m) override { return deliver(m); }
  Status send(const MessageRef& m) override { return deliver(m); }

  void setHandler(Handler handler) override {
    installAndReplay(shared_->mutex[side_], shared_->slot[side_],
                     std::move(handler), nullptr);
  }

  void setViewHandler(ViewHandler handler) override {
    installAndReplay(shared_->mutex[side_], shared_->slot[side_], nullptr,
                     std::move(handler));
  }

  void setCloseHandler(std::function<void()> handler) override {
    std::function<void()> fire;
    {
      std::lock_guard lock(shared_->mutex[side_]);
      shared_->closeHandler[side_] = std::move(handler);
      if (shared_->closePending[side_]) {
        shared_->closePending[side_] = false;
        fire = shared_->closeHandler[side_];
      }
    }
    // The peer closed before this handler existed: deliver the buffered
    // close event now (same replay contract as setHandler).
    if (fire) fire();
  }

  void close() override {
    bool expected = true;
    if (!shared_->open.compare_exchange_strong(expected, false)) return;
    // Tell the peer its counterpart is gone. The invocation is counted
    // in inFlight so the peer's destructor handshake also waits out a
    // close callback already past the handler copy, not just message
    // deliveries.
    const int peer = 1 - side_;
    std::function<void()> peerClose;
    {
      std::lock_guard lock(shared_->mutex[peer]);
      peerClose = shared_->closeHandler[peer];
      if (!peerClose) {
        shared_->closePending[peer] = true;
      } else {
        ++shared_->inFlight[peer];
      }
    }
    if (peerClose) {
      peerClose();
      {
        std::lock_guard lock(shared_->mutex[peer]);
        --shared_->inFlight[peer];
      }
      shared_->idleCv[peer].notify_all();
    }
  }

  bool isOpen() const override { return shared_->open.load(); }

  std::string_view kindName() const override { return "inproc"; }

 private:
  static Message owned(const Message& m) { return m; }
  static Message owned(const MessageRef& m) { return materialize(m); }

  /// Synchronous delivery on the sender's thread; pre-handler messages
  /// are buffered and replayed by the peer's setHandler. The in-flight
  /// count lets the peer's destructor wait for this call to leave its
  /// handler. A view-handling peer receives the message in place over a
  /// scratch encode — no owned Message is ever built for it.
  template <typename M>
  Status deliver(const M& m) {
    if (!shared_->open.load()) return errUnavailable("inproc: closed");
    const int peer = 1 - side_;
    std::shared_ptr<Handler> h;
    std::shared_ptr<ViewHandler> vh;
    {
      std::lock_guard lock(shared_->mutex[peer]);
      auto& slot = shared_->slot[peer];
      if (!slot.any() || slot.draining) {
        slot.backlog.push_back(owned(m));
        return Status::ok();
      }
      vh = slot.onView;
      h = slot.onMessage;
      ++shared_->inFlight[peer];
    }
    if (vh) {
      deliverAsView(*vh, m);
    } else {
      Message copy = owned(m);
      (*h)(std::move(copy));
    }
    {
      std::lock_guard lock(shared_->mutex[peer]);
      --shared_->inFlight[peer];
    }
    shared_->idleCv[peer].notify_all();
    return Status::ok();
  }

  std::shared_ptr<InProcShared> shared_;
  int side_;
};

// ------------------------------------------------------------------ reactor

/// Per-connection state shared between the reactor loop that owns the fd
/// and the ReactorTransport facade user threads hold.
struct Conn {
  int fd = -1;
  std::size_t loop = 0;

  /// Send-buffer pool: senders acquire, the loop releases after writev.
  /// Thread-safe on its own; not guarded by `mutex`.
  BufferPool pool;

  std::mutex mutex;
  // --- guarded by mutex -----------------------------------------------------
  std::vector<WireBuffer> outbox;  ///< framed messages awaiting writev
  std::size_t outBytes = 0;        ///< queued + in-flight outbound bytes
  bool writeArmed = false;         ///< a flush is scheduled / EPOLLOUT armed
  bool closing = false;            ///< close() called: flush, then shutdown
  bool shutdownSent = false;
  HandlerSlot slot;
  std::function<void()> closeHandler;
  bool closeNotified = false;
  bool closePending = false;       ///< peer died before handler was set
  bool removed = false;            ///< fully deregistered from the reactor
  std::condition_variable removedCv;
  // --- loop-thread only -----------------------------------------------------
  /// Buffers stolen from the outbox, being written. The consumed prefix
  /// [0, inflightPos) is released to the pool when the batch drains.
  std::vector<WireBuffer> inflight;
  std::size_t inflightPos = 0;   ///< first unwritten buffer
  std::size_t inflightHead = 0;  ///< bytes of inflight[inflightPos] sent
  std::string readBuf;
  bool wantWrite = false;          ///< EPOLLOUT currently in the interest set
  bool registered = false;
  // uring backend only: tokens of the in-flight multishot recv / writev
  // SQEs (0 = none) and the stable iovec array the pending writev points
  // at. The kernel reads uringIov and the inflight buffers until the
  // write CQE lands, so teardown must never recycle them early.
  std::uint64_t uringRecvToken = 0;
  std::uint64_t uringWriteToken = 0;
  std::vector<iovec> uringIov;
  /// Deadline for draining a close()d connection's tail (zero = unset).
  std::chrono::steady_clock::time_point closeDeadline{};
  /// Frames delivered so far, counted only under fault injection for the
  /// conn:close_after rule.
  std::uint32_t faultFramesSeen = 0;
  // --- any thread -----------------------------------------------------------
  std::atomic<bool> open{true};
};

#if SIMFS_HAS_URING
/// Per-loop io_uring state (uring backend only). The pin maps hold a
/// shared_ptr to the connection of every in-flight SQE so a Conn (and the
/// buffers the kernel still references) cannot be destroyed before its
/// CQEs — including -ECANCELED ones — have drained.
struct UringState {
  uring::Queue q;
  std::uint64_t nextId = 1;
  std::unordered_map<std::uint64_t, std::shared_ptr<Conn>> recvOps;
  std::unordered_map<std::uint64_t, std::shared_ptr<Conn>> writeOps;
  /// Multishot recvs that terminated this drain pass; re-armed only AFTER
  /// the pass so recycled provided buffers are visible to the kernel
  /// (re-arming inside the drain can spin on -ENOBUFS).
  std::vector<std::shared_ptr<Conn>> rearm;
};
#endif

/// Epoll reactor: one (or SIMFS_REACTOR_THREADS) event-loop thread(s) own
/// every socket endpoint of the process. Inbound frames are decoded IN
/// PLACE over the receive buffer and dispatched as MessageViews on the
/// loop thread; outbound frames are pooled WireBuffers queued per
/// connection and flushed as one writev per loop pass (send batching).
/// All epoll_ctl and connection-table mutation happens on the owning loop
/// thread, driven by a command queue + eventfd wakeup. Commands are plain
/// structs (kind + connection), not std::functions, so posting one never
/// allocates.
///
/// Backend selection: SIMFS_REACTOR_BACKEND=uring swaps the per-loop
/// event engine for io_uring (multishot recv over a provided-buffer ring,
/// batched writev submission) behind the exact same Transport / view-
/// handler surface. Anything but a working uring falls back to epoll with
/// a logged notice — never an error.
class Reactor {
 public:
  explicit Reactor(std::size_t nLoops) {
    bool wantUring = false;
    if (const auto v = env::get("SIMFS_REACTOR_BACKEND")) {
      if (*v == "uring") {
        if (uring::supported()) {
          wantUring = true;
        } else {
          SIMFS_LOG_WARN("msg",
                         "reactor: SIMFS_REACTOR_BACKEND=uring but io_uring "
                         "is unavailable here; falling back to epoll");
        }
      } else if (!v->empty() && *v != "epoll") {
        SIMFS_LOG_WARN("msg", "reactor: unknown backend '%s', using epoll",
                       v->c_str());
      }
    }
    loops_.reserve(nLoops);
    for (std::size_t i = 0; i < nLoops; ++i) {
      auto loop = std::make_unique<Loop>();
      loop->epollFd = ::epoll_create1(EPOLL_CLOEXEC);
      loop->wakeFd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
      SIMFS_CHECK(loop->epollFd >= 0 && loop->wakeFd >= 0);
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = loop->wakeFd;
      SIMFS_CHECK(::epoll_ctl(loop->epollFd, EPOLL_CTL_ADD, loop->wakeFd,
                              &ev) == 0);
#if SIMFS_HAS_URING
      if (wantUring) {
        auto st = std::make_unique<UringState>();
        if (st->q.init(256) && st->q.setupBufRing(0, 32, 64 * 1024)) {
          loop->uring = std::move(st);
        } else {
          SIMFS_LOG_WARN("msg",
                         "reactor: io_uring init failed, epoll fallback");
          wantUring = false;
        }
      }
#endif
      loops_.push_back(std::move(loop));
    }
    (void)wantUring;
#if SIMFS_HAS_URING
    if (!loops_.empty() && loops_.front()->uring) backend_ = "uring";
#endif
    for (auto& loop : loops_) {
      loop->thread = std::thread([this, raw = loop.get()] { run(*raw); });
    }
  }

  ~Reactor() {
    for (auto& loop : loops_) {
      loop->stop.store(true);
      wake(*loop);
    }
    for (auto& loop : loops_) {
      if (loop->thread.joinable()) loop->thread.join();
    }
    // Single-threaded from here: run stranded commands (e.g. a removal
    // handshake posted during shutdown), then drop whatever is left.
    for (auto& loop : loops_) {
      std::vector<Cmd> cmds;
      {
        std::lock_guard lock(loop->cmdMutex);
        cmds.swap(loop->commands);
      }
      for (auto& c : cmds) execute(*loop, c);
      for (auto& [fd, conn] : loop->conns) {
        ::close(fd);
        conn->registered = false;
        std::lock_guard lock(conn->mutex);
        conn->open.store(false);
        conn->removed = true;
        conn->removedCv.notify_all();
      }
      loop->conns.clear();
      ::close(loop->epollFd);
      ::close(loop->wakeFd);
    }
  }

  /// Process-wide reactor; sized by SIMFS_REACTOR_THREADS (default 1).
  static Reactor& shared() {
    static Reactor instance([] {
      const auto v = env::getInt("SIMFS_REACTOR_THREADS");
      if (!v) return std::size_t{1};
      return static_cast<std::size_t>(std::clamp<std::int64_t>(*v, 1, 16));
    }());
    return instance;
  }

  /// Takes ownership of a connected fd; registration completes
  /// asynchronously on the owning loop (commands are ordered, so sends
  /// issued immediately after adopt flush after registration).
  std::shared_ptr<Conn> adopt(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->loop = nextLoop_.fetch_add(1) % loops_.size();
    post({Cmd::Kind::kRegister, conn});
    return conn;
  }

  /// Asks the owning loop to flush `conn`'s outbox (and, once drained,
  /// perform the deferred shutdown of a closing connection).
  void scheduleFlush(const std::shared_ptr<Conn>& conn) {
    post({Cmd::Kind::kFlush, conn});
  }

  /// Runs the peer-disconnect teardown (epoll removal, fd close, close
  /// callback) on the owning loop — used when a slow consumer overflows
  /// its send queue and has to be dropped from a sender thread.
  void scheduleDisconnect(const std::shared_ptr<Conn>& conn) {
    post({Cmd::Kind::kDisconnect, conn});
  }

  /// Name of the event engine actually running ("epoll" or "uring").
  [[nodiscard]] std::string_view backendName() const noexcept {
    return backend_;
  }

  /// Deregisters `conn` and blocks until no loop thread can touch it
  /// again (drop-safe handshake for ~ReactorTransport).
  void remove(const std::shared_ptr<Conn>& conn) {
    Loop& loop = *loops_[conn->loop];
    if (std::this_thread::get_id() == loop.threadId) {
      deregister(loop, conn);
      return;
    }
    // Honor the close contract before tearing the fd down: give the
    // reactor until the grace deadline to flush the queued tail (a
    // responsive peer drains in milliseconds; a dead one is bounded by
    // sweepClosing, which empties the outbox at the deadline).
    {
      std::unique_lock lock(conn->mutex);
      conn->removedCv.wait_for(lock, kCloseGrace, [&] {
        // outBytes (not outbox.empty()): flushWrites steals the outbox
        // into its in-flight batch, and only outBytes keeps counting
        // those frames. closeNotified/closePending: the peer is gone
        // (possibly before a close handler existed) — nothing will ever
        // drain the queue.
        return conn->outBytes == 0 || conn->removed || conn->shutdownSent ||
               conn->closeNotified || conn->closePending;
      });
    }
    post({Cmd::Kind::kDeregister, conn});
    std::unique_lock lock(conn->mutex);
    conn->removedCv.wait(lock, [&] { return conn->removed; });
  }

 private:
  /// Loop-thread work item. A plain struct (no type-erased callable):
  /// posting one is a vector push under the command mutex, nothing more.
  struct Cmd {
    enum class Kind { kRegister, kFlush, kDisconnect, kDeregister };
    Kind kind = Kind::kFlush;
    std::shared_ptr<Conn> conn;
  };

  struct Loop {
    int epollFd = -1;
    int wakeFd = -1;
    std::thread thread;
    std::thread::id threadId;
    std::mutex cmdMutex;
    std::vector<Cmd> commands;
    std::unordered_map<int, std::shared_ptr<Conn>> conns;
    /// Closed connections still draining their tail (grace-bounded).
    std::unordered_set<std::shared_ptr<Conn>> closingConns;
    std::atomic<bool> stop{false};
#if SIMFS_HAS_URING
    std::unique_ptr<UringState> uring;  ///< set when this loop runs io_uring
#endif
  };

  void post(Cmd cmd) {
    Loop& loop = *loops_[cmd.conn->loop];
    bool needWake = false;
    {
      std::lock_guard lock(loop.cmdMutex);
      needWake = loop.commands.empty();
      loop.commands.push_back(std::move(cmd));
    }
    if (needWake) wake(loop);
  }

  void wake(Loop& loop) {
    const std::uint64_t one = 1;
    (void)!::write(loop.wakeFd, &one, sizeof(one));
  }

  void execute(Loop& loop, Cmd& cmd) {
    switch (cmd.kind) {
      case Cmd::Kind::kRegister:
        doRegister(loop, cmd.conn);
        return;
      case Cmd::Kind::kFlush:
        if (cmd.conn->registered) {
#if SIMFS_HAS_URING
          if (loop.uring) {
            uringFlush(loop, cmd.conn);
            return;
          }
#endif
          flushWrites(loop, cmd.conn);
        }
        return;
      case Cmd::Kind::kDisconnect:
        if (cmd.conn->registered) disconnect(loop, cmd.conn);
        return;
      case Cmd::Kind::kDeregister:
        deregister(loop, cmd.conn);
        return;
    }
  }

  void doRegister(Loop& loop, const std::shared_ptr<Conn>& conn) {
#if SIMFS_HAS_URING
    if (loop.uring) {
      loop.conns.emplace(conn->fd, conn);
      conn->registered = true;
      armRecv(loop, conn);
      return;
    }
#endif
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = conn->fd;
    if (::epoll_ctl(loop.epollFd, EPOLL_CTL_ADD, conn->fd, &ev) == 0) {
      loop.conns.emplace(conn->fd, conn);
      conn->registered = true;
      return;
    }
    SIMFS_LOG_ERROR("msg", "reactor: cannot register fd %d", conn->fd);
    ::close(conn->fd);
    // Same owner-notification duties as disconnect(): without them the
    // transport's close handler never fires and e.g. a daemon session
    // would never be reaped.
    std::function<void()> onClose;
    {
      std::lock_guard lock(conn->mutex);
      conn->open.store(false);
      if (conn->closeHandler) {
        conn->closeNotified = true;
        onClose = conn->closeHandler;
      } else {
        conn->closePending = true;
      }
      conn->removedCv.notify_all();
    }
    if (onClose) onClose();
  }

  void run(Loop& loop) {
    loop.threadId = std::this_thread::get_id();
#if SIMFS_HAS_URING
    if (loop.uring) {
      runUring(loop);
      return;
    }
#endif
    std::vector<epoll_event> events(64);
    std::vector<Cmd> cmds;
    for (;;) {
      cmds.clear();
      {
        std::lock_guard lock(loop.cmdMutex);
        cmds.swap(loop.commands);
      }
      for (auto& c : cmds) execute(loop, c);
      if (loop.stop.load()) return;
      // Block indefinitely unless a closed connection is still draining;
      // then wake periodically to enforce its grace deadline.
      const int timeoutMs = loop.closingConns.empty() ? -1 : 100;
      const int n = ::epoll_wait(loop.epollFd, events.data(),
                                 static_cast<int>(events.size()), timeoutMs);
      if (n < 0) {
        if (errno == EINTR) continue;
        SIMFS_LOG_ERROR("msg", "reactor: epoll_wait failed: %s",
                        std::strerror(errno));
        return;
      }
      if (!loop.closingConns.empty()) sweepClosing(loop);
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        if (fd == loop.wakeFd) {
          std::uint64_t drained = 0;
          (void)!::read(loop.wakeFd, &drained, sizeof(drained));
          continue;
        }
        const auto it = loop.conns.find(fd);
        if (it == loop.conns.end()) continue;
        // Copy: the handlers below may deregister the connection.
        const std::shared_ptr<Conn> conn = it->second;
        const auto flags = events[i].events;
        if ((flags & EPOLLERR) != 0) {
          disconnect(loop, conn);
          continue;
        }
        if ((flags & (EPOLLIN | EPOLLHUP)) != 0) handleReadable(loop, conn);
        if (conn->registered && (flags & EPOLLOUT) != 0) {
          flushWrites(loop, conn);
        }
      }
    }
  }

  /// Hands one decoded frame to the connection's handler: the view stays
  /// in place over the receive buffer for a view handler; a legacy
  /// handler (or the pre-handler backlog) gets an owned materialization.
  static void deliverFrame(const std::shared_ptr<Conn>& conn,
                           const MessageView& view) {
    std::shared_ptr<Transport::Handler> h;
    std::shared_ptr<Transport::ViewHandler> vh;
    {
      std::lock_guard lock(conn->mutex);
      auto& slot = conn->slot;
      if (!slot.any() || slot.draining) {
        slot.backlog.push_back(view.toMessage());
        return;
      }
      vh = slot.onView;
      h = slot.onMessage;
    }
    if (vh) {
      (*vh)(view);
    } else {
      (*h)(view.toMessage());
    }
  }

  /// Decodes every complete frame in `bytes` and delivers each IN PLACE
  /// (the views reference `bytes` and die with the handler call). Returns
  /// the consumed prefix length; sets `dead` on an oversized/undecodable
  /// frame or a fault-injected close. Shared by both backends — epoll
  /// scans the connection's accumulation buffer, uring scans the kernel-
  /// provided buffer directly.
  static std::size_t scanFrames(const std::shared_ptr<Conn>& conn,
                                std::string_view bytes, bool& dead) {
    std::size_t head = 0;
    while (bytes.size() - head >= 4) {
      std::uint32_t len = 0;
      std::memcpy(&len, bytes.data() + head, sizeof(len));
      if (len > kMaxFrameBytes) {
        SIMFS_LOG_ERROR("msg", "socket: oversized frame (%u bytes)", len);
        dead = true;
        break;
      }
      if (bytes.size() - head < 4 + static_cast<std::size_t>(len)) break;
      auto view = MessageView::parse(bytes.substr(head + 4, len));
      head += 4 + static_cast<std::size_t>(len);
      if (!view) {
        SIMFS_LOG_ERROR("msg", "socket: undecodable frame: %s",
                        view.status().toString().c_str());
        dead = true;
        break;
      }
      if (fault::active()) {
        fault::maybeDelay(fault::Point::kRecv);
        const auto limit = fault::closeAfterLimit();
        if (limit > 0 && ++conn->faultFramesSeen > limit) {
          SIMFS_LOG_WARN("msg", "fault: closing fd %d after %u frames",
                         conn->fd, limit);
          dead = true;
          break;
        }
      }
      deliverFrame(conn, *view);
    }
    return head;
  }

  void handleReadable(Loop& loop, const std::shared_ptr<Conn>& conn) {
    char buf[64 * 1024];
    bool dead = false;
    // Read until EAGAIN (bounded per pass; level-triggered epoll re-fires
    // if the peer outruns us).
    for (int pass = 0; pass < 8; ++pass) {
      const ssize_t r = ::read(conn->fd, buf, sizeof(buf));
      if (r > 0) {
        conn->readBuf.append(buf, static_cast<std::size_t>(r));
        if (static_cast<std::size_t>(r) < sizeof(buf)) break;
        continue;
      }
      if (r == 0) {
        dead = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      dead = true;
      break;
    }
    const std::size_t head = scanFrames(conn, conn->readBuf, dead);
    if (head > 0) {
      // compact once per event, not once per frame
      conn->readBuf.erase(0, head);
    }
    if (dead) disconnect(loop, conn);
  }

#if SIMFS_HAS_URING
  // ---------------------------------------------------- io_uring backend
  //
  // Same state machine as the epoll engine — the Conn fields, command
  // queue, close grace and backpressure rules are identical — with the
  // readiness loop replaced by completions: one multishot recv per
  // connection feeding off a shared provided-buffer ring, one writev SQE
  // per connection at a time, and a multishot poll on the eventfd for
  // cross-thread wakeups. user_data tokens carry the op kind in the low
  // two bits (0=wake, 1=recv, 2=write, 3=cancel).

  static constexpr std::uint64_t kTokWake = 0;

  static std::uint64_t makeToken(UringState& st, unsigned op) {
    return (st.nextId++ << 2) | op;
  }

  /// SQE acquisition with one flush-and-retry when the SQ is full.
  static io_uring_sqe* getSqe(UringState& st) {
    io_uring_sqe* sqe = st.q.getSqe();
    if (sqe == nullptr) {
      st.q.submit();
      sqe = st.q.getSqe();
    }
    return sqe;
  }

  void armWakePoll(Loop& loop) {
    io_uring_sqe* sqe = getSqe(*loop.uring);
    SIMFS_CHECK(sqe != nullptr);  // 256-deep SQ; wake poll is re-armed rarely
    sqe->opcode = IORING_OP_POLL_ADD;
    sqe->fd = loop.wakeFd;
    sqe->poll32_events = POLLIN;
    sqe->len = IORING_POLL_ADD_MULTI;
    sqe->user_data = kTokWake;
  }

  /// Arms (or re-arms) the connection's multishot recv.
  void armRecv(Loop& loop, const std::shared_ptr<Conn>& conn) {
    if (!conn->registered || conn->uringRecvToken != 0) return;
    UringState& st = *loop.uring;
    io_uring_sqe* sqe = getSqe(st);
    if (sqe == nullptr) {
      disconnect(loop, conn);
      return;
    }
    const std::uint64_t tok = makeToken(st, 1);
    sqe->opcode = IORING_OP_RECV;
    sqe->fd = conn->fd;
    sqe->ioprio = IORING_RECV_MULTISHOT;
    sqe->flags = IOSQE_BUFFER_SELECT;
    sqe->buf_group = 0;
    sqe->user_data = tok;
    conn->uringRecvToken = tok;
    st.recvOps.emplace(tok, conn);
  }

  /// Aborts the connection's in-flight SQEs by token. Closing the fd
  /// alone does NOT cancel them — submission took a file reference — so
  /// teardown must cancel explicitly or a multishot recv could outlive
  /// the transport.
  void uringCancelOps(Loop& loop, Conn& conn) {
    UringState& st = *loop.uring;
    for (const std::uint64_t tok : {conn.uringRecvToken, conn.uringWriteToken}) {
      if (tok == 0) continue;
      io_uring_sqe* sqe = getSqe(st);
      if (sqe == nullptr) continue;  // ring teardown will reap it instead
      sqe->opcode = IORING_OP_ASYNC_CANCEL;
      sqe->fd = -1;
      sqe->addr = tok;  // cancel by user_data
      sqe->user_data = makeToken(st, 3);
    }
  }

  /// The uring flush: steals the outbox exactly like flushWrites, then
  /// submits ONE writev SQE covering the head of the in-flight batch.
  /// Continuation happens in handleWriteCqe — at most one write SQE per
  /// connection is ever outstanding, so the iovec array and buffers stay
  /// stable for the kernel.
  void uringFlush(Loop& loop, const std::shared_ptr<Conn>& conn) {
    if (!conn->registered || conn->uringWriteToken != 0) return;
    if (conn->inflightPos == conn->inflight.size()) {
      recycleInflight(*conn);
      std::lock_guard lock(conn->mutex);
      conn->inflight.swap(conn->outbox);
    }
    if (conn->inflightPos == conn->inflight.size()) {
      finishWritePass(loop, conn, 0);  // nothing queued; handles shutdown
      return;
    }
    constexpr std::size_t kMaxIov = 64;
    conn->uringIov.clear();
    std::size_t skip = conn->inflightHead;
    for (std::size_t i = conn->inflightPos;
         i < conn->inflight.size() && conn->uringIov.size() < kMaxIov; ++i) {
      iovec io{};
      io.iov_base = const_cast<char*>(conn->inflight[i].data() + skip);
      io.iov_len = conn->inflight[i].size() - skip;
      skip = 0;
      conn->uringIov.push_back(io);
    }
    UringState& st = *loop.uring;
    io_uring_sqe* sqe = getSqe(st);
    if (sqe == nullptr) {
      disconnect(loop, conn);
      return;
    }
    const std::uint64_t tok = makeToken(st, 2);
    sqe->opcode = IORING_OP_WRITEV;
    sqe->fd = conn->fd;
    sqe->addr = reinterpret_cast<std::uint64_t>(conn->uringIov.data());
    sqe->len = static_cast<std::uint32_t>(conn->uringIov.size());
    sqe->user_data = tok;
    conn->uringWriteToken = tok;
    st.writeOps.emplace(tok, conn);
  }

  /// Shared epilogue of a write pass (uring backend): mirrors the tail of
  /// flushWrites — outBytes accounting, deferred shutdown of a closing
  /// connection, grace tracking, and chaining the next writev.
  void finishWritePass(Loop& loop, const std::shared_ptr<Conn>& conn,
                       std::size_t poppedBytes) {
    const bool inflightDrained = conn->inflightPos == conn->inflight.size();
    bool doShutdown = false;
    bool moreWork = false;
    bool trackClosing = false;
    {
      std::lock_guard lock(conn->mutex);
      conn->outBytes -= std::min(conn->outBytes, poppedBytes);
      if (inflightDrained && conn->outbox.empty()) {
        conn->writeArmed = false;
        if (conn->closing && !conn->shutdownSent) {
          conn->shutdownSent = true;
          doShutdown = true;
        }
      } else {
        moreWork = true;
        if (conn->closing && !conn->shutdownSent) trackClosing = true;
      }
    }
    if (trackClosing) {
      if (conn->closeDeadline == std::chrono::steady_clock::time_point{}) {
        conn->closeDeadline = std::chrono::steady_clock::now() + kCloseGrace;
      }
      loop.closingConns.insert(conn);
    }
    conn->removedCv.notify_all();
    if (doShutdown) {
      loop.closingConns.erase(conn);
      ::shutdown(conn->fd, SHUT_RDWR);
    } else if (moreWork && conn->registered) {
      uringFlush(loop, conn);
    }
  }

  void handleRecvCqe(Loop& loop, const io_uring_cqe& cqe) {
    UringState& st = *loop.uring;
    const auto it = st.recvOps.find(cqe.user_data);
    if (it == st.recvOps.end()) {
      // Stale completion after teardown: just return its buffer.
      if ((cqe.flags & IORING_CQE_F_BUFFER) != 0) {
        st.q.recycleBuf(
            static_cast<std::uint16_t>(cqe.flags >> IORING_CQE_BUFFER_SHIFT));
      }
      return;
    }
    const std::shared_ptr<Conn> conn = it->second;
    if ((cqe.flags & IORING_CQE_F_MORE) == 0) {
      st.recvOps.erase(it);
      conn->uringRecvToken = 0;
    }
    if (cqe.res < 0) {
      if (cqe.res == -ENOBUFS) {
        // Provided-buffer pool momentarily empty; buffers recycle during
        // this drain pass, so re-arm after it completes.
        st.rearm.push_back(conn);
        return;
      }
      if (cqe.res == -ECANCELED) return;  // teardown already ran
      if (conn->registered) disconnect(loop, conn);
      return;
    }
    if (cqe.res == 0) {  // EOF
      if (conn->registered) disconnect(loop, conn);
      return;
    }
    SIMFS_CHECK((cqe.flags & IORING_CQE_F_BUFFER) != 0);
    const auto bid =
        static_cast<std::uint16_t>(cqe.flags >> IORING_CQE_BUFFER_SHIFT);
    const char* data = st.q.bufData(bid);
    const auto n = static_cast<std::size_t>(cqe.res);
    bool dead = false;
    if (conn->registered) {
      if (conn->readBuf.empty()) {
        // Fast path: decode frames in place over the kernel-provided
        // buffer; only an incomplete tail is copied out.
        const std::size_t used = scanFrames(conn, {data, n}, dead);
        if (used < n && !dead) conn->readBuf.append(data + used, n - used);
      } else {
        conn->readBuf.append(data, n);
        const std::size_t used = scanFrames(conn, conn->readBuf, dead);
        if (used > 0) conn->readBuf.erase(0, used);
      }
    }
    st.q.recycleBuf(bid);
    if (dead) {
      disconnect(loop, conn);
      return;
    }
    if ((cqe.flags & IORING_CQE_F_MORE) == 0 && conn->registered) {
      st.rearm.push_back(conn);
    }
  }

  void handleWriteCqe(Loop& loop, const io_uring_cqe& cqe) {
    UringState& st = *loop.uring;
    const auto it = st.writeOps.find(cqe.user_data);
    if (it == st.writeOps.end()) return;
    const std::shared_ptr<Conn> conn = it->second;
    st.writeOps.erase(it);
    conn->uringWriteToken = 0;
    if (cqe.res == -ECANCELED) return;
    if (cqe.res < 0) {
      if (cqe.res == -EAGAIN || cqe.res == -EINTR) {
        if (conn->registered) uringFlush(loop, conn);
        return;
      }
      if (conn->registered) disconnect(loop, conn);
      return;
    }
    // Advance the in-flight cursors past the written bytes (short writes
    // resume from the same iovec batch on the chained flush).
    auto n = static_cast<std::size_t>(cqe.res);
    std::size_t poppedBytes = 0;
    while (n > 0) {
      WireBuffer& front = conn->inflight[conn->inflightPos];
      const std::size_t remain = front.size() - conn->inflightHead;
      if (n >= remain) {
        n -= remain;
        poppedBytes += front.size();
        ++conn->inflightPos;
        conn->inflightHead = 0;
      } else {
        conn->inflightHead += n;
        n = 0;
      }
    }
    finishWritePass(loop, conn, poppedBytes);
  }

  void handleCqe(Loop& loop, const io_uring_cqe& cqe) {
    if (cqe.user_data == kTokWake) {
      std::uint64_t drained = 0;
      (void)!::read(loop.wakeFd, &drained, sizeof(drained));
      if ((cqe.flags & IORING_CQE_F_MORE) == 0) armWakePoll(loop);
      return;
    }
    switch (cqe.user_data & 3) {
      case 1:
        handleRecvCqe(loop, cqe);
        return;
      case 2:
        handleWriteCqe(loop, cqe);
        return;
      default:  // cancel completions carry no state
        return;
    }
  }

  void runUring(Loop& loop) {
    UringState& st = *loop.uring;
    armWakePoll(loop);
    std::vector<Cmd> cmds;
    for (;;) {
      cmds.clear();
      {
        std::lock_guard lock(loop.cmdMutex);
        cmds.swap(loop.commands);
      }
      for (auto& c : cmds) execute(loop, c);
      if (loop.stop.load()) return;
      const auto timeout = loop.closingConns.empty()
                               ? std::chrono::nanoseconds(-1)
                               : std::chrono::nanoseconds(
                                     std::chrono::milliseconds(100));
      const int r = st.q.submitAndWait(timeout);
      if (r < 0 && r != -ETIME) {
        SIMFS_LOG_ERROR("msg", "reactor: io_uring_enter failed: %s",
                        std::strerror(-r));
        return;
      }
      if (!loop.closingConns.empty()) sweepClosing(loop);
      st.q.drainCqes(
          [this, &loop](const io_uring_cqe& cqe) { handleCqe(loop, cqe); });
      if (!st.rearm.empty()) {
        for (auto& conn : st.rearm) armRecv(loop, conn);
        st.rearm.clear();
      }
    }
  }
#endif  // SIMFS_HAS_URING

  /// Releases the consumed in-flight prefix back to the pool and resets
  /// the cursors. Loop thread only.
  static void recycleInflight(Conn& conn) {
    for (auto& b : conn.inflight) conn.pool.release(std::move(b));
    conn.inflight.clear();
    conn.inflightPos = 0;
    conn.inflightHead = 0;
  }

  void flushWrites(Loop& loop, const std::shared_ptr<Conn>& conn) {
    constexpr int kMaxIov = 64;
    constexpr int kMaxPasses = 4;  // then yield to other connections
    bool fail = false;
    bool wantWrite = false;
    bool doShutdown = false;
    std::size_t poppedBytes = 0;
    for (int pass = 0; pass < kMaxPasses && !fail && !wantWrite; ++pass) {
      if (conn->inflightPos == conn->inflight.size()) {
        // Batch drained: recycle its buffers, then steal the outbox. The
        // swap hands the senders back an empty vector whose capacity they
        // reuse — steady-state queueing allocates nothing.
        recycleInflight(*conn);
        std::lock_guard lock(conn->mutex);
        if (conn->outbox.empty()) break;
        conn->inflight.swap(conn->outbox);
      }
      // writev() runs without the connection mutex — senders stay
      // non-blocking during kernel I/O (the in-flight batch is loop-owned).
      while (conn->inflightPos < conn->inflight.size()) {
        iovec iov[kMaxIov];
        int cnt = 0;
        std::size_t skip = conn->inflightHead;
        for (std::size_t i = conn->inflightPos;
             i < conn->inflight.size() && cnt < kMaxIov; ++i) {
          iov[cnt].iov_base =
              const_cast<char*>(conn->inflight[i].data() + skip);
          iov[cnt].iov_len = conn->inflight[i].size() - skip;
          skip = 0;
          ++cnt;
        }
        // sendmsg + MSG_NOSIGNAL, not writev: a peer that died without
        // unwinding (kill -9) must surface as EPIPE on this connection,
        // never as a process-killing SIGPIPE.
        msghdr mh{};
        mh.msg_iov = iov;
        mh.msg_iovlen = static_cast<std::size_t>(cnt);
        const ssize_t w = ::sendmsg(conn->fd, &mh, MSG_NOSIGNAL);
        if (w < 0) {
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) {
            wantWrite = true;  // socket full: wait for EPOLLOUT
            break;
          }
          fail = true;
          break;
        }
        std::size_t n = static_cast<std::size_t>(w);
        while (n > 0) {
          WireBuffer& front = conn->inflight[conn->inflightPos];
          const std::size_t remain = front.size() - conn->inflightHead;
          if (n >= remain) {
            n -= remain;
            poppedBytes += front.size();
            ++conn->inflightPos;
            conn->inflightHead = 0;
          } else {
            conn->inflightHead += n;
            n = 0;
          }
        }
      }
    }
    if (fail) {
      disconnect(loop, conn);
      return;
    }
    const bool inflightDrained = conn->inflightPos == conn->inflight.size();
    bool trackClosing = false;
    {
      std::lock_guard lock(conn->mutex);
      conn->outBytes -= std::min(conn->outBytes, poppedBytes);
      if (inflightDrained && conn->outbox.empty()) {
        conn->writeArmed = false;
        if (conn->closing && !conn->shutdownSent) {
          conn->shutdownSent = true;
          doShutdown = true;
        }
      } else {
        if (!wantWrite) {
          // Refilled faster than kMaxPasses could drain: the socket is
          // still writable, so level-triggered EPOLLOUT re-enters us on
          // the next loop pass without starving other connections.
          wantWrite = true;
        }
        // Closing with a tail still queued: keep flushing, but bounded —
        // sweepClosing() drops the remainder once the grace expires.
        if (conn->closing && !conn->shutdownSent) trackClosing = true;
      }
    }
    if (trackClosing) {
      if (conn->closeDeadline == std::chrono::steady_clock::time_point{}) {
        conn->closeDeadline = std::chrono::steady_clock::now() + kCloseGrace;
      }
      loop.closingConns.insert(conn);
    }
    // Wake a destructor waiting in remove() for the tail to flush.
    conn->removedCv.notify_all();
    updateInterest(loop, *conn, wantWrite);
    if (doShutdown) {
      loop.closingConns.erase(conn);
      // Queued sends are on the wire; now let the peer observe EOF. Our
      // own read side then hits EOF and runs the disconnect path.
      ::shutdown(conn->fd, SHUT_RDWR);
    }
  }

  /// Enforces the close grace: a close()d connection whose peer did not
  /// drain the tail in time is shut down hard (close() promises EOF, not
  /// unbounded patience with a peer that stopped reading).
  void sweepClosing(Loop& loop) {
    const auto now = std::chrono::steady_clock::now();
    for (auto it = loop.closingConns.begin(); it != loop.closingConns.end();) {
      const std::shared_ptr<Conn>& conn = *it;
      const bool inflightDrained =
          conn->inflightPos == conn->inflight.size();  // loop-owned state
      bool expired = false;
      {
        std::lock_guard lock(conn->mutex);
        if ((conn->outbox.empty() && inflightDrained) || conn->shutdownSent ||
            !conn->registered) {
          it = loop.closingConns.erase(it);
          continue;
        }
        if (now >= conn->closeDeadline) {
          conn->outbox.clear();
          conn->outBytes = 0;
          conn->writeArmed = false;
          conn->shutdownSent = true;
          expired = true;
        }
      }
      if (expired) {
        if (conn->uringWriteToken == 0) recycleInflight(*conn);
        conn->removedCv.notify_all();
        ::shutdown(conn->fd, SHUT_RDWR);
        it = loop.closingConns.erase(it);
      } else {
        ++it;
      }
    }
  }

  void updateInterest(Loop& loop, Conn& conn, bool wantWrite) {
    if (!conn.registered || conn.wantWrite == wantWrite) return;
    epoll_event ev{};
    ev.events = EPOLLIN | (wantWrite ? EPOLLOUT : 0u);
    ev.data.fd = conn.fd;
    (void)::epoll_ctl(loop.epollFd, EPOLL_CTL_MOD, conn.fd, &ev);
    conn.wantWrite = wantWrite;
  }

  /// Peer-initiated teardown (EOF, error, poisoned frame).
  void disconnect(Loop& loop, const std::shared_ptr<Conn>& conn) {
    std::function<void()> onClose;
    {
      std::lock_guard lock(conn->mutex);
      conn->open.store(false);
      if (!conn->closeNotified) {
        if (conn->closeHandler) {
          conn->closeNotified = true;
          onClose = conn->closeHandler;
        } else {
          // No handler yet: buffer the event, setCloseHandler replays it.
          conn->closePending = true;
        }
      }
    }
    if (conn->registered) {
#if SIMFS_HAS_URING
      if (loop.uring) {
        uringCancelOps(loop, *conn);
      } else
#endif
      {
        (void)::epoll_ctl(loop.epollFd, EPOLL_CTL_DEL, conn->fd, nullptr);
      }
      loop.conns.erase(conn->fd);
      ::close(conn->fd);
      conn->registered = false;
    }
    // A pending writev SQE means the kernel still reads the in-flight
    // buffers; they are freed with the Conn once its CQE drains the pin.
    if (conn->uringWriteToken == 0) recycleInflight(*conn);
    loop.closingConns.erase(conn);
    conn->removedCv.notify_all();
    if (onClose) onClose();
  }

  /// Transport-initiated teardown; after this returns on the loop thread,
  /// no handler or close callback can run again.
  void deregister(Loop& loop, const std::shared_ptr<Conn>& conn) {
    if (conn->registered) {
#if SIMFS_HAS_URING
      if (loop.uring) {
        uringCancelOps(loop, *conn);
      } else
#endif
      {
        (void)::epoll_ctl(loop.epollFd, EPOLL_CTL_DEL, conn->fd, nullptr);
      }
      loop.conns.erase(conn->fd);
      ::close(conn->fd);
      conn->registered = false;
    }
    if (conn->uringWriteToken == 0) recycleInflight(*conn);
    loop.closingConns.erase(conn);
    std::lock_guard lock(conn->mutex);
    conn->open.store(false);
    conn->slot.onMessage.reset();
    conn->slot.onView.reset();
    conn->closeHandler = nullptr;
    conn->removed = true;
    conn->removedCv.notify_all();
  }

  std::vector<std::unique_ptr<Loop>> loops_;
  std::atomic<std::size_t> nextLoop_{0};
  std::string_view backend_ = "epoll";
};

class ReactorTransport final : public Transport {
 public:
  ReactorTransport(Reactor& reactor, std::shared_ptr<Conn> conn)
      : reactor_(reactor), conn_(std::move(conn)) {}

  ~ReactorTransport() override {
    close();
    reactor_.remove(conn_);
  }

  Status send(const Message& m) override { return sendEncoded(m); }
  Status send(const MessageRef& m) override { return sendEncoded(m); }

  void setHandler(Handler handler) override {
    installAndReplay(conn_->mutex, conn_->slot, std::move(handler), nullptr);
  }

  void setViewHandler(ViewHandler handler) override {
    installAndReplay(conn_->mutex, conn_->slot, nullptr, std::move(handler));
  }

  void setCloseHandler(std::function<void()> handler) override {
    std::function<void()> fire;
    {
      std::lock_guard lock(conn_->mutex);
      conn_->closeHandler = std::move(handler);
      if (conn_->closePending && !conn_->closeNotified) {
        conn_->closeNotified = true;
        conn_->closePending = false;
        fire = conn_->closeHandler;
      }
    }
    // The peer vanished before the handler existed (the reactor starts
    // reading at adopt(), not at setHandler()): replay the close event.
    if (fire) fire();
  }

  void close() override {
    bool schedule = false;
    {
      std::lock_guard lock(conn_->mutex);
      if (conn_->closing) return;
      conn_->closing = true;
      conn_->open.store(false);
      if (!conn_->writeArmed) {
        conn_->writeArmed = true;
        schedule = true;
      }
    }
    // The flush drains anything already queued, then shuts the socket
    // down so the peer observes EOF.
    if (schedule) reactor_.scheduleFlush(conn_);
  }

  bool isOpen() const override { return conn_->open.load(); }

  std::string_view kindName() const override { return "socket"; }

 private:
  /// The one send path: serialize into a pooled buffer (frame header
  /// reserved up front, back-patched — no re-copy), queue it, wake the
  /// loop. Steady-state cost is a pool pop, the serialization itself and
  /// a vector push into reused capacity.
  template <typename M>
  Status sendEncoded(const M& m) {
    // Cheap sticky-state pre-check before paying for serialization; the
    // locked check below remains authoritative.
    if (!conn_->open.load()) return errUnavailable("socket: closed");
    if (fault::active() && fault::shouldFail(fault::Point::kSend)) {
      // Injected abrupt connection loss: the same observable behaviour as
      // the peer dying mid-send (sticky close + close callback), so the
      // recovery machinery above us is exercised, not a fake error path.
      conn_->open.store(false);
      reactor_.scheduleDisconnect(conn_);
      return errUnavailable("socket: injected send fault");
    }
    WireBuffer buf = conn_->pool.acquire();
    encodeInto(m, buf);
    bool schedule = false;
    bool overflow = false;
    {
      std::lock_guard lock(conn_->mutex);
      if (!conn_->open.load() || conn_->closing) {
        return errUnavailable("socket: closed");
      }
      if (conn_->outBytes + buf.size() > kMaxOutboxBytes) {
        // Backpressure: the peer stopped draining. A shared event loop
        // must not block the sender, so the connection is dropped — the
        // close callback lets the owner reclaim the session.
        conn_->open.store(false);
        overflow = true;
      } else {
        conn_->outBytes += buf.size();
        conn_->outbox.push_back(std::move(buf));
        if (!conn_->writeArmed) {
          conn_->writeArmed = true;
          schedule = true;
        }
      }
    }
    if (overflow) {
      SIMFS_LOG_WARN("msg", "socket: send queue overflow, dropping peer");
      reactor_.scheduleDisconnect(conn_);
      return errUnavailable("socket: send queue overflow");
    }
    // One wakeup covers every send queued until the loop drains the
    // outbox (writev batching); only the first sender pays the post.
    if (schedule) reactor_.scheduleFlush(conn_);
    return Status::ok();
  }

  Reactor& reactor_;
  std::shared_ptr<Conn> conn_;
};

}  // namespace

std::string_view reactorBackendName() {
  return Reactor::shared().backendName();
}

// The default adapts legacy-only transports (wrappers forwarding just
// setHandler) to the view contract: each owned Message is re-encoded into
// a per-thread scratch buffer and delivered in place.
void Transport::setViewHandler(ViewHandler handler) {
  if (!handler) {
    setHandler(nullptr);
    return;
  }
  setHandler([h = std::move(handler)](Message&& m) { deliverAsView(h, m); });
}

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
makeInProcPair() {
  auto shared = std::make_shared<InProcShared>();
  return {std::make_unique<InProcEndpoint>(shared, 0),
          std::make_unique<InProcEndpoint>(shared, 1)};
}

// --------------------------------------------------------- UnixSocketServer

struct UnixSocketServer::Impl {
  int listenFd = -1;
  std::thread acceptThread;
  std::atomic<bool> running{false};
};

UnixSocketServer::UnixSocketServer(std::string path)
    : impl_(std::make_unique<Impl>()), path_(std::move(path)) {}

UnixSocketServer::~UnixSocketServer() { stop(); }

Status UnixSocketServer::start(ConnectionHandler onConnection) {
  ::unlink(path_.c_str());
  impl_->listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (impl_->listenFd < 0) return errIoError("socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof(addr.sun_path)) {
    return errInvalidArgument("socket path too long: " + path_);
  }
  std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(impl_->listenFd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return errIoError("bind() failed for " + path_);
  }
  if (::listen(impl_->listenFd, 64) != 0) {
    return errIoError("listen() failed for " + path_);
  }
  impl_->running.store(true);
  impl_->acceptThread = std::thread([this, onConnection = std::move(onConnection)] {
    // Poll with a timeout so stop() can terminate the loop: shutdown() on
    // a listening socket does not reliably wake a blocked accept().
    while (impl_->running.load()) {
      pollfd pfd{impl_->listenFd, POLLIN, 0};
      const int n = ::poll(&pfd, 1, /*timeout_ms=*/100);
      if (n < 0) break;
      if (n == 0 || (pfd.revents & POLLIN) == 0) continue;
      const int fd = ::accept(impl_->listenFd, nullptr, nullptr);
      if (fd < 0) break;
      auto& reactor = Reactor::shared();
      onConnection(
          std::make_unique<ReactorTransport>(reactor, reactor.adopt(fd)));
    }
  });
  return Status::ok();
}

void UnixSocketServer::stop() {
  if (!impl_) return;
  const bool wasRunning = impl_->running.exchange(false);
  if (impl_->acceptThread.joinable()) impl_->acceptThread.join();
  if (wasRunning) {
    ::close(impl_->listenFd);
    ::unlink(path_.c_str());
  }
}

Result<std::unique_ptr<Transport>> unixSocketConnect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return errIoError("socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return errInvalidArgument("socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return errUnavailable("connect() failed for " + path);
  }
  auto& reactor = Reactor::shared();
  // The shm negotiator is a pure passthrough until a kHello flows through
  // it, so wrapping every dialer (sessions, tools, peer links) is safe —
  // only hello-sending endpoints ever negotiate.
  return wrapShmClient(
      std::make_unique<ReactorTransport>(reactor, reactor.adopt(fd)));
}

}  // namespace simfs::msg
