#include "msg/transport.hpp"

#include "common/log.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

namespace simfs::msg {
namespace {

// ------------------------------------------------------------------- InProc

/// Shared state of one in-process pair; endpoints index it as side 0/1.
struct InProcShared {
  std::mutex mutex[2];
  Transport::Handler handler[2];
  std::function<void()> closeHandler[2];
  std::atomic<bool> open{true};
};

class InProcEndpoint final : public Transport {
 public:
  InProcEndpoint(std::shared_ptr<InProcShared> shared, int side)
      : shared_(std::move(shared)), side_(side) {}

  ~InProcEndpoint() override { close(); }

  Status send(const Message& m) override {
    if (!shared_->open.load()) return errUnavailable("inproc: closed");
    Handler handler;
    {
      std::lock_guard lock(shared_->mutex[1 - side_]);
      handler = shared_->handler[1 - side_];
    }
    if (!handler) return errUnavailable("inproc: peer has no handler");
    Message copy = m;
    handler(std::move(copy));  // synchronous delivery on sender's thread
    return Status::ok();
  }

  void setHandler(Handler handler) override {
    std::lock_guard lock(shared_->mutex[side_]);
    shared_->handler[side_] = std::move(handler);
  }

  void setCloseHandler(std::function<void()> handler) override {
    std::lock_guard lock(shared_->mutex[side_]);
    shared_->closeHandler[side_] = std::move(handler);
  }

  void close() override {
    bool expected = true;
    if (!shared_->open.compare_exchange_strong(expected, false)) return;
    // Tell the peer its counterpart is gone.
    std::function<void()> peerClose;
    {
      std::lock_guard lock(shared_->mutex[1 - side_]);
      peerClose = shared_->closeHandler[1 - side_];
    }
    if (peerClose) peerClose();
  }

  bool isOpen() const override { return shared_->open.load(); }

 private:
  std::shared_ptr<InProcShared> shared_;
  int side_;
};

// ------------------------------------------------------------------ sockets

/// Reads exactly n bytes; false on EOF/error.
bool readFull(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r <= 0) return false;
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

bool writeFull(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const char*>(buf);
  while (n > 0) {
    const ssize_t r = ::write(fd, p, n);
    if (r <= 0) return false;
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(int fd) : fd_(fd) {}

  ~SocketTransport() override {
    close();
    if (reader_.joinable()) reader_.join();
  }

  Status send(const Message& m) override {
    std::lock_guard lock(sendMutex_);
    if (!open_.load()) return errUnavailable("socket: closed");
    const std::string framed = frame(encode(m));
    if (!writeFull(fd_, framed.data(), framed.size())) {
      open_.store(false);
      return errUnavailable("socket: peer gone");
    }
    return Status::ok();
  }

  void setHandler(Handler handler) override {
    {
      std::lock_guard lock(handlerMutex_);
      handler_ = std::move(handler);
    }
    startReaderOnce();
  }

  void setCloseHandler(std::function<void()> handler) override {
    std::lock_guard lock(handlerMutex_);
    closeHandler_ = std::move(handler);
  }

  void close() override {
    bool expected = true;
    if (open_.compare_exchange_strong(expected, false)) {
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

  bool isOpen() const override { return open_.load(); }

 private:
  void startReaderOnce() {
    bool expected = false;
    if (!readerStarted_.compare_exchange_strong(expected, true)) return;
    reader_ = std::thread([this] { readLoop(); });
  }

  void readLoop() {
    for (;;) {
      std::uint32_t len = 0;
      if (!readFull(fd_, &len, sizeof(len))) break;
      if (len > (64u << 20)) {
        SIMFS_LOG_ERROR("msg", "socket: oversized frame (%u bytes)", len);
        break;
      }
      std::string payload(len, '\0');
      if (!readFull(fd_, payload.data(), len)) break;
      auto m = decode(payload);
      if (!m) {
        SIMFS_LOG_ERROR("msg", "socket: undecodable frame: %s",
                        m.status().toString().c_str());
        break;
      }
      Handler handler;
      {
        std::lock_guard lock(handlerMutex_);
        handler = handler_;
      }
      if (handler) handler(std::move(*m));
    }
    open_.store(false);
    std::function<void()> onClose;
    {
      std::lock_guard lock(handlerMutex_);
      onClose = closeHandler_;
    }
    if (onClose) onClose();
  }

  int fd_;
  std::atomic<bool> open_{true};
  std::atomic<bool> readerStarted_{false};
  std::mutex sendMutex_;
  std::mutex handlerMutex_;
  Handler handler_;
  std::function<void()> closeHandler_;
  std::thread reader_;
};

}  // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
makeInProcPair() {
  auto shared = std::make_shared<InProcShared>();
  return {std::make_unique<InProcEndpoint>(shared, 0),
          std::make_unique<InProcEndpoint>(shared, 1)};
}

// --------------------------------------------------------- UnixSocketServer

struct UnixSocketServer::Impl {
  int listenFd = -1;
  std::thread acceptThread;
  std::atomic<bool> running{false};
};

UnixSocketServer::UnixSocketServer(std::string path)
    : impl_(std::make_unique<Impl>()), path_(std::move(path)) {}

UnixSocketServer::~UnixSocketServer() { stop(); }

Status UnixSocketServer::start(ConnectionHandler onConnection) {
  ::unlink(path_.c_str());
  impl_->listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (impl_->listenFd < 0) return errIoError("socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof(addr.sun_path)) {
    return errInvalidArgument("socket path too long: " + path_);
  }
  std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(impl_->listenFd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return errIoError("bind() failed for " + path_);
  }
  if (::listen(impl_->listenFd, 64) != 0) {
    return errIoError("listen() failed for " + path_);
  }
  impl_->running.store(true);
  impl_->acceptThread = std::thread([this, onConnection = std::move(onConnection)] {
    // Poll with a timeout so stop() can terminate the loop: shutdown() on
    // a listening socket does not reliably wake a blocked accept().
    while (impl_->running.load()) {
      pollfd pfd{impl_->listenFd, POLLIN, 0};
      const int n = ::poll(&pfd, 1, /*timeout_ms=*/100);
      if (n < 0) break;
      if (n == 0 || (pfd.revents & POLLIN) == 0) continue;
      const int fd = ::accept(impl_->listenFd, nullptr, nullptr);
      if (fd < 0) break;
      onConnection(std::make_unique<SocketTransport>(fd));
    }
  });
  return Status::ok();
}

void UnixSocketServer::stop() {
  if (!impl_) return;
  const bool wasRunning = impl_->running.exchange(false);
  if (impl_->acceptThread.joinable()) impl_->acceptThread.join();
  if (wasRunning) {
    ::close(impl_->listenFd);
    ::unlink(path_.c_str());
  }
}

Result<std::unique_ptr<Transport>> unixSocketConnect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return errIoError("socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return errInvalidArgument("socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return errUnavailable("connect() failed for " + path);
  }
  return std::unique_ptr<Transport>(std::make_unique<SocketTransport>(fd));
}

}  // namespace simfs::msg
