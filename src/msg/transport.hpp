// Message transports between DVLib clients and the DV daemon.
//
// Two implementations behind one interface:
//   * InProc pair — zero-copy, synchronous delivery on the sender's
//     thread; used by tests and by single-process deployments where the
//     DV runs as a thread of the analysis driver.
//   * Unix-domain stream sockets — the daemon deployment (the paper uses
//     TCP/IP; a UNIX socket carries the identical framed protocol and
//     keeps the examples self-contained).
//
// Delivery contract: the receive handler may be invoked from an arbitrary
// thread (the sender's for InProc, a reader thread for sockets) and must
// not synchronously send on the same transport it is handling, except to
// reply — replies are safe because handlers never hold transport locks.
#pragma once

#include "common/status.hpp"
#include "msg/message.hpp"

#include <functional>
#include <memory>
#include <string>

namespace simfs::msg {

/// Bidirectional message endpoint.
class Transport {
 public:
  using Handler = std::function<void(Message&&)>;

  virtual ~Transport() = default;

  /// Sends a message to the peer. Returns kUnavailable once closed.
  [[nodiscard]] virtual Status send(const Message& m) = 0;

  /// Installs the receive handler. Must be set before the peer sends;
  /// messages arriving with no handler are dropped.
  virtual void setHandler(Handler handler) = 0;

  /// Installs a disconnect callback, invoked once when the peer goes away
  /// (socket EOF / peer close). Optional.
  virtual void setCloseHandler(std::function<void()> handler) = 0;

  /// Closes the endpoint; pending sends fail, the peer observes EOF.
  virtual void close() = 0;

  /// True until close() (or peer disconnect for sockets).
  [[nodiscard]] virtual bool isOpen() const = 0;
};

/// Creates a connected in-process transport pair.
[[nodiscard]] std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
makeInProcPair();

/// Listening Unix-domain socket. One reader thread per accepted
/// connection; connections are handed to the callback as Transports.
class UnixSocketServer {
 public:
  using ConnectionHandler = std::function<void(std::unique_ptr<Transport>)>;

  /// Binds and listens at `path` (unlinking a stale socket file first).
  explicit UnixSocketServer(std::string path);
  ~UnixSocketServer();
  UnixSocketServer(const UnixSocketServer&) = delete;
  UnixSocketServer& operator=(const UnixSocketServer&) = delete;

  /// Starts the accept loop on a background thread.
  [[nodiscard]] Status start(ConnectionHandler onConnection);

  /// Stops accepting and joins the accept thread.
  void stop();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::string path_;
};

/// Connects to a UnixSocketServer.
[[nodiscard]] Result<std::unique_ptr<Transport>> unixSocketConnect(
    const std::string& path);

}  // namespace simfs::msg
