// Message transports between DVLib clients and the DV daemon.
//
// Two implementations behind one interface:
//   * InProc pair — zero-copy, synchronous delivery on the sender's
//     thread; used by tests and by single-process deployments where the
//     DV runs as a thread of the analysis driver.
//   * Unix-domain stream sockets — the daemon deployment (the paper uses
//     TCP/IP; a UNIX socket carries the identical framed protocol and
//     keeps the examples self-contained). All socket endpoints of the
//     process are owned by a shared epoll reactor: one (or
//     SIMFS_REACTOR_THREADS) event-loop thread(s) service every
//     connection, and outbound messages are batched into writev() calls
//     instead of one write per frame — connection count no longer implies
//     thread count.
//
// Delivery contract: the receive handler may be invoked from an arbitrary
// thread (the sender's for InProc, an event-loop thread for sockets) and
// must not synchronously send on the same transport it is handling, except
// to reply — replies are safe because handlers never hold transport locks.
// Messages that arrive before a handler is installed are buffered and
// replayed, in order, on the thread that calls setHandler().
#pragma once

#include "common/status.hpp"
#include "msg/message.hpp"

#include <functional>
#include <memory>
#include <string>
#include <string_view>

namespace simfs::msg {

/// Bidirectional message endpoint.
class Transport {
 public:
  using Handler = std::function<void(Message&&)>;
  /// Zero-copy receive handler: the view (and every string_view /
  /// iterator it hands out) references transport-owned buffer memory and
  /// is valid ONLY for the duration of the callback. Copy out (or arena-
  /// copy) anything that must survive it.
  using ViewHandler = std::function<void(const MessageView&)>;

  virtual ~Transport() = default;

  /// Sends a message to the peer. Returns kUnavailable once closed.
  /// Socket sends are asynchronous: the message is queued and flushed by
  /// the reactor (batched with neighbours into one writev). A peer that
  /// stops draining its socket is disconnected once its queue exceeds a
  /// fixed byte bound (send then also returns kUnavailable) — senders
  /// are never blocked on a slow consumer.
  [[nodiscard]] virtual Status send(const Message& m) = 0;

  /// Zero-copy send: the built-in transports serialize `m` straight into
  /// a pooled, framed send buffer (no Message, no intermediate string).
  /// The referenced storage only needs to outlive this call. The default
  /// materializes an owned Message and forwards to send(Message) so
  /// wrapper transports that only override the legacy entry point keep
  /// observing (and counting) every message.
  [[nodiscard]] virtual Status send(const MessageRef& m) {
    return send(materialize(m));
  }

  /// Installs the receive handler. Messages that arrived before the
  /// handler was installed are replayed to it, in arrival order, before
  /// this call returns.
  virtual void setHandler(Handler handler) = 0;

  /// Installs a zero-copy receive handler (mutually exclusive with
  /// setHandler — the most recent installation of either wins). The
  /// built-in transports feed it views straight over their receive
  /// buffers; the default adapts through setHandler by re-encoding into
  /// a scratch buffer, so wrappers forwarding only the legacy hook still
  /// deliver views to their consumers.
  virtual void setViewHandler(ViewHandler handler);

  /// Installs a disconnect callback, invoked once when the peer goes away
  /// (socket EOF / peer close). Optional.
  virtual void setCloseHandler(std::function<void()> handler) = 0;

  /// Closes the endpoint; new sends fail, already-queued sends are
  /// flushed (bounded by a grace period if the peer stops reading), then
  /// the peer observes EOF.
  virtual void close() = 0;

  /// True until close() (or peer disconnect for sockets).
  [[nodiscard]] virtual bool isOpen() const = 0;

  /// Which data plane this endpoint currently uses: "inproc", "socket" or
  /// "shm". A negotiating wrapper's answer can change once — from
  /// "socket" to "shm" — when the hello handshake settles.
  [[nodiscard]] virtual std::string_view kindName() const {
    return "unknown";
  }
};

/// Creates a connected in-process transport pair.
[[nodiscard]] std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
makeInProcPair();

/// Listening Unix-domain socket. Accepted connections are registered with
/// the process-wide epoll reactor and handed to the callback as
/// Transports; no per-connection threads are created.
class UnixSocketServer {
 public:
  using ConnectionHandler = std::function<void(std::unique_ptr<Transport>)>;

  /// Binds and listens at `path` (unlinking a stale socket file first).
  explicit UnixSocketServer(std::string path);
  ~UnixSocketServer();
  UnixSocketServer(const UnixSocketServer&) = delete;
  UnixSocketServer& operator=(const UnixSocketServer&) = delete;

  /// Starts the accept loop on a background thread.
  [[nodiscard]] Status start(ConnectionHandler onConnection);

  /// Stops accepting and joins the accept thread.
  void stop();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::string path_;
};

/// Connects to a UnixSocketServer. When shm negotiation is enabled
/// (SIMFS_SHM unset or != 0) the returned transport is wrapped in the
/// same-host shm negotiator: a kHello sent through it offers a shared-
/// memory ring pair to the peer and the session upgrades transparently if
/// the daemon accepts (see shm_transport.hpp). Endpoints that never send
/// kHello (daemon peer links, raw tools) behave exactly as before.
[[nodiscard]] Result<std::unique_ptr<Transport>> unixSocketConnect(
    const std::string& path);

/// The reactor backend driving this process's socket endpoints: "uring"
/// when SIMFS_REACTOR_BACKEND=uring and the kernel supports io_uring,
/// otherwise "epoll" (including the fallback case, which logs a notice).
[[nodiscard]] std::string_view reactorBackendName();

}  // namespace simfs::msg
