// Live synthetic analysis tool: replays an access trace through the full
// DVLib -> daemon -> simulator stack (the wall-clock counterpart of the
// harness's virtual-time actor).
//
// Each access acquires the output step (blocking until the DV produced
// it), reads the field through the sncdf facade path (store bytes),
// reduces it with analyzeField, and releases the step — exactly the life
// cycle of the paper's transparent-mode analyses.
#pragma once

#include "analysis/field_stats.hpp"
#include "common/types.hpp"
#include "dvlib/simfs_client.hpp"
#include "simmodel/context.hpp"
#include "trace/trace.hpp"
#include "vfs/file_store.hpp"

#include <string>
#include <vector>

namespace simfs::analysis {

/// Outcome of one live replay.
struct TraceToolReport {
  std::uint64_t accesses = 0;
  std::uint64_t immediateHits = 0;  ///< available at acquire time
  std::uint64_t failures = 0;
  VDuration wallTime = 0;           ///< total run time (steady clock)
  FieldStats lastStats;             ///< reduction of the last step read
  double meanOfMeans = 0.0;         ///< average of per-step means
};

/// Replays `steps` against a connected client.
class TraceAnalysisTool {
 public:
  /// `client` must be connected on the context whose codec is given;
  /// `store` holds the produced bytes.
  TraceAnalysisTool(dvlib::SimFSClient& client, vfs::FileStore& store,
                    simmodel::FilenameCodec codec);

  /// Runs the whole trace; blocks until every access was served.
  [[nodiscard]] Result<TraceToolReport> run(const trace::Trace& steps);

 private:
  dvlib::SimFSClient& client_;
  vfs::FileStore& store_;
  simmodel::FilenameCodec codec_;
};

}  // namespace simfs::analysis
