#include "analysis/field_stats.hpp"

#include "dvlib/iolib.hpp"

#include <algorithm>

namespace simfs::analysis {

Result<FieldStats> analyzeField(std::string_view payload) {
  auto values = dvlib::decodeField(payload);
  if (!values) return values.status();
  FieldStats stats;
  if (values->empty()) return stats;
  stats.min = (*values)[0];
  stats.max = (*values)[0];
  double mean = 0.0;
  double m2 = 0.0;
  std::size_t n = 0;
  for (const double x : *values) {
    ++n;
    const double delta = x - mean;
    mean += delta / static_cast<double>(n);
    m2 += delta * (x - mean);
    stats.min = std::min(stats.min, x);
    stats.max = std::max(stats.max, x);
  }
  stats.mean = mean;
  stats.variance = m2 / static_cast<double>(n);
  stats.count = n;
  return stats;
}

}  // namespace simfs::analysis
