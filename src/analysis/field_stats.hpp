// Field analyses used by the live examples and tests.
//
// The paper's evaluation analyses "compute mean and variance of a 1-D
// field of the simulation output steps" (COSMO) and "of the velocity
// field" (FLASH). analyzeField implements exactly that over the SNC1
// payloads our simulators emit.
#pragma once

#include "common/status.hpp"

#include <cstddef>
#include <string_view>

namespace simfs::analysis {

/// Mean/variance summary of one output step's field.
struct FieldStats {
  double mean = 0.0;
  double variance = 0.0;  ///< population variance
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

/// Parses an SNC1 payload and reduces it. Welford's algorithm: single
/// pass, numerically stable on long fields.
[[nodiscard]] Result<FieldStats> analyzeField(std::string_view payload);

}  // namespace simfs::analysis
