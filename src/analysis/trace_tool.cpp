#include "analysis/trace_tool.hpp"

#include "common/clock.hpp"

namespace simfs::analysis {

TraceAnalysisTool::TraceAnalysisTool(dvlib::SimFSClient& client,
                                     vfs::FileStore& store,
                                     simmodel::FilenameCodec codec)
    : client_(client), store_(store), codec_(std::move(codec)) {}

Result<TraceToolReport> TraceAnalysisTool::run(const trace::Trace& steps) {
  TraceToolReport report;
  RealClock clock;
  const VTime start = clock.now();
  double meanSum = 0.0;
  std::uint64_t meanCount = 0;

  for (const StepIndex step : steps) {
    const std::string file = codec_.outputFile(step);
    ++report.accesses;

    dvlib::SimfsStatus status;
    const auto acquired = client_.acquire({file}, &status);
    if (!acquired.isOk()) {
      ++report.failures;
      continue;
    }
    if (status.estimatedWait == 0) ++report.immediateHits;

    const auto content = store_.read(file);
    if (!content) {
      ++report.failures;
      (void)client_.release(file);
      continue;
    }
    const auto stats = analyzeField(*content);
    if (stats) {
      report.lastStats = *stats;
      meanSum += stats->mean;
      ++meanCount;
    } else {
      ++report.failures;
    }
    SIMFS_RETURN_IF_ERROR(client_.release(file));
  }

  report.wallTime = clock.now() - start;
  if (meanCount > 0) report.meanOfMeans = meanSum / static_cast<double>(meanCount);
  return report;
}

}  // namespace simfs::analysis
