#include "cache/arc.hpp"
#include "cache/cache.hpp"
#include "cache/cost_aware.hpp"
#include "cache/lirs.hpp"
#include "cache/lru.hpp"

namespace simfs::cache {

std::unique_ptr<Cache> makeCache(simmodel::PolicyKind kind,
                                 std::int64_t capacityEntries,
                                 std::uint64_t seed) {
  switch (kind) {
    case simmodel::PolicyKind::kLru:
      return std::make_unique<LruCache>(capacityEntries);
    case simmodel::PolicyKind::kLirs:
      return std::make_unique<LirsCache>(capacityEntries);
    case simmodel::PolicyKind::kArc:
      return std::make_unique<ArcCache>(capacityEntries);
    case simmodel::PolicyKind::kBcl:
      return std::make_unique<BclCache>(capacityEntries);
    case simmodel::PolicyKind::kDcl:
      return std::make_unique<DclCache>(capacityEntries);
    case simmodel::PolicyKind::kFifo:
      return std::make_unique<FifoCache>(capacityEntries);
    case simmodel::PolicyKind::kRandom:
      return std::make_unique<RandomCache>(capacityEntries, seed);
  }
  return std::make_unique<LruCache>(capacityEntries);
}

}  // namespace simfs::cache
