// LIRS — Low Inter-reference Recency Set (Jiang & Zhang, SIGMETRICS'02),
// cited by the paper as the reuse-distance-based alternative to LRU.
//
// Entries are partitioned into LIR (hot, always resident) and HIR blocks;
// resident HIR entries wait in a FIFO queue Q and are the preferred
// eviction victims, while the LIRS stack S tracks recency and
// inter-reference recency to promote/demote entries between the sets.
// Non-resident HIR entries linger in S as ghosts so that a quick
// re-reference earns promotion to LIR.
//
// SimFS adaptations: victims must be unpinned (reference-counted output
// steps), and when every resident HIR is pinned the bottom-most unpinned
// LIR entry is demoted and evicted as a fallback. The paper observes LIRS
// behaves poorly on backward scans (Fig. 5) — a property this
// implementation reproduces.
//
// Keys are StepIndex; the stack interleaves residents and ghosts, so it
// stays a node-based list, but refreshes are splices (no allocation) and
// all metadata is integer-keyed.
#pragma once

#include "cache/cache.hpp"

#include <list>
#include <unordered_map>

namespace simfs::cache {

class LirsCache final : public Cache {
 public:
  /// `hirFraction` of the capacity is reserved for resident HIR entries
  /// (at least one); the classic choice is ~1%.
  explicit LirsCache(std::int64_t capacityEntries, double hirFraction = 0.01);

  [[nodiscard]] const char* name() const noexcept override { return "LIRS"; }

  /// LIR-set capacity (diagnostic).
  [[nodiscard]] std::int64_t lirCapacity() const noexcept { return llirs_; }

 protected:
  void hookHit(Slot slot) override;
  void hookInsert(Slot slot, double cost) override;
  void hookRemove(Slot slot, bool evicted) override;
  [[nodiscard]] Slot chooseVictim() override;

 private:
  enum class State { kLir, kHirResident, kGhost };

  struct Meta {
    State state = State::kHirResident;
    bool inStack = false;
    bool inQueue = false;
    std::list<StepIndex>::iterator stackIt{};
    std::list<StepIndex>::iterator queueIt{};
  };

  void stackPushFront(StepIndex key, Meta& meta);
  void stackErase(Meta& meta);
  /// Splice-to-front refresh: reuses the existing stack node.
  void stackRefresh(Meta& meta);
  void queuePushBack(StepIndex key, Meta& meta);
  void queueErase(Meta& meta);
  /// Removes non-LIR entries from the stack bottom (classic pruning).
  void pruneStack();
  /// Demotes the stack's bottom LIR entry to resident HIR (queue tail).
  void demoteBottomLir();
  /// Drops oldest ghosts once the stack grows beyond its bound.
  void boundGhosts();

  std::int64_t llirs_;  ///< max LIR entries
  std::int64_t lhirs_;  ///< target resident-HIR entries
  std::int64_t nLir_ = 0;
  std::list<StepIndex> stack_;  // front = most recent
  std::list<StepIndex> queue_;  // front = oldest resident HIR
  std::unordered_map<StepIndex, Meta> meta_;
};

}  // namespace simfs::cache
