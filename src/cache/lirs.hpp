// LIRS — Low Inter-reference Recency Set (Jiang & Zhang, SIGMETRICS'02),
// cited by the paper as the reuse-distance-based alternative to LRU.
//
// Entries are partitioned into LIR (hot, always resident) and HIR blocks;
// resident HIR entries wait in a FIFO queue Q and are the preferred
// eviction victims, while the LIRS stack S tracks recency and
// inter-reference recency to promote/demote entries between the sets.
// Non-resident HIR entries linger in S as ghosts so that a quick
// re-reference earns promotion to LIR.
//
// SimFS adaptations: victims must be unpinned (reference-counted output
// steps), and when every resident HIR is pinned the bottom-most unpinned
// LIR entry is demoted and evicted as a fallback. The paper observes LIRS
// behaves poorly on backward scans (Fig. 5) — a property this
// implementation reproduces.
#pragma once

#include "cache/cache.hpp"

#include <list>
#include <unordered_map>

namespace simfs::cache {

class LirsCache final : public Cache {
 public:
  /// `hirFraction` of the capacity is reserved for resident HIR entries
  /// (at least one); the classic choice is ~1%.
  explicit LirsCache(std::int64_t capacityEntries, double hirFraction = 0.01);

  [[nodiscard]] const char* name() const noexcept override { return "LIRS"; }

  /// LIR-set capacity (diagnostic).
  [[nodiscard]] std::int64_t lirCapacity() const noexcept { return llirs_; }

 protected:
  void hookHit(const std::string& key) override;
  void hookInsert(const std::string& key, double cost) override;
  void hookRemove(const std::string& key, bool evicted) override;
  [[nodiscard]] std::optional<std::string> chooseVictim() override;

 private:
  enum class State { kLir, kHirResident, kGhost };

  struct Meta {
    State state = State::kHirResident;
    bool inStack = false;
    bool inQueue = false;
    std::list<std::string>::iterator stackIt{};
    std::list<std::string>::iterator queueIt{};
  };

  void stackPushFront(const std::string& key, Meta& meta);
  void stackErase(const std::string& key, Meta& meta);
  void queuePushBack(const std::string& key, Meta& meta);
  void queueErase(const std::string& key, Meta& meta);
  /// Removes non-LIR entries from the stack bottom (classic pruning).
  void pruneStack();
  /// Demotes the stack's bottom LIR entry to resident HIR (queue tail).
  void demoteBottomLir();
  /// Drops oldest ghosts once the stack grows beyond its bound.
  void boundGhosts();

  std::int64_t llirs_;  ///< max LIR entries
  std::int64_t lhirs_;  ///< target resident-HIR entries
  std::int64_t nLir_ = 0;
  std::list<std::string> stack_;  // front = most recent
  std::list<std::string> queue_;  // front = oldest resident HIR
  std::unordered_map<std::string, Meta> meta_;
};

}  // namespace simfs::cache
