#include "cache/lru.hpp"

namespace simfs::cache {

// ------------------------------------------------------------------ LruCache

void LruCache::hookHit(Slot slot) { recency_.moveToFront(slot); }

void LruCache::hookInsert(Slot slot, double /*cost*/) {
  recency_.pushFront(slot);
}

void LruCache::hookRemove(Slot slot, bool /*evicted*/) {
  recency_.erase(slot);
}

Cache::Slot LruCache::chooseVictim() {
  for (Slot s = recency_.tail(); s != kNoSlot; s = recency_.prevOf(s)) {
    if (isEvictable(s)) return s;
    bumpPinSkips();
  }
  return kNoSlot;
}

// ----------------------------------------------------------------- FifoCache

void FifoCache::hookHit(Slot /*slot*/) {}

void FifoCache::hookInsert(Slot slot, double /*cost*/) {
  order_.pushBack(slot);
}

void FifoCache::hookRemove(Slot slot, bool /*evicted*/) { order_.erase(slot); }

Cache::Slot FifoCache::chooseVictim() {
  for (Slot s = order_.head(); s != kNoSlot; s = order_.nextOf(s)) {
    if (isEvictable(s)) return s;
    bumpPinSkips();
  }
  return kNoSlot;
}

// --------------------------------------------------------------- RandomCache

void RandomCache::hookHit(Slot /*slot*/) {}

void RandomCache::hookInsert(Slot slot, double /*cost*/) {
  setAux(slot, static_cast<std::int32_t>(sample_.size()));
  sample_.push_back(slot);
}

void RandomCache::hookRemove(Slot slot, bool /*evicted*/) {
  const auto idx = static_cast<std::size_t>(residentAt(slot).aux);
  const std::size_t last = sample_.size() - 1;
  if (idx != last) {
    sample_[idx] = sample_[last];
    setAux(sample_[idx], static_cast<std::int32_t>(idx));
  }
  sample_.pop_back();
}

Cache::Slot RandomCache::chooseVictim() {
  if (sample_.empty()) return kNoSlot;
  // A few random probes, then a linear sweep (covers heavy pinning).
  for (int probe = 0; probe < 8; ++probe) {
    const auto idx = static_cast<std::size_t>(
        rng_.uniformInt(0, static_cast<std::int64_t>(sample_.size()) - 1));
    if (isEvictable(sample_[idx])) return sample_[idx];
    bumpPinSkips();
  }
  for (const Slot s : sample_) {
    if (isEvictable(s)) return s;
  }
  return kNoSlot;
}

}  // namespace simfs::cache
