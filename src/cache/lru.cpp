#include "cache/lru.hpp"

namespace simfs::cache {

// ------------------------------------------------------------------ LruCache

void LruCache::hookHit(const std::string& key) {
  const auto it = pos_.find(key);
  recency_.splice(recency_.begin(), recency_, it->second);
}

void LruCache::hookInsert(const std::string& key, double /*cost*/) {
  recency_.push_front(key);
  pos_[key] = recency_.begin();
}

void LruCache::hookRemove(const std::string& key, bool /*evicted*/) {
  const auto it = pos_.find(key);
  if (it == pos_.end()) return;
  recency_.erase(it->second);
  pos_.erase(it);
}

std::optional<std::string> LruCache::chooseVictim() {
  for (auto it = recency_.rbegin(); it != recency_.rend(); ++it) {
    if (isEvictable(*it)) return *it;
    bumpPinSkips();
  }
  return std::nullopt;
}

// ----------------------------------------------------------------- FifoCache

void FifoCache::hookHit(const std::string& /*key*/) {}

void FifoCache::hookInsert(const std::string& key, double /*cost*/) {
  order_.push_back(key);
  pos_[key] = std::prev(order_.end());
}

void FifoCache::hookRemove(const std::string& key, bool /*evicted*/) {
  const auto it = pos_.find(key);
  if (it == pos_.end()) return;
  order_.erase(it->second);
  pos_.erase(it);
}

std::optional<std::string> FifoCache::chooseVictim() {
  for (const auto& key : order_) {
    if (isEvictable(key)) return key;
    bumpPinSkips();
  }
  return std::nullopt;
}

// --------------------------------------------------------------- RandomCache

void RandomCache::hookHit(const std::string& /*key*/) {}

void RandomCache::hookInsert(const std::string& key, double /*cost*/) {
  pos_[key] = keys_.size();
  keys_.push_back(key);
}

void RandomCache::hookRemove(const std::string& key, bool /*evicted*/) {
  const auto it = pos_.find(key);
  if (it == pos_.end()) return;
  const std::size_t idx = it->second;
  const std::size_t last = keys_.size() - 1;
  if (idx != last) {
    keys_[idx] = keys_[last];
    pos_[keys_[idx]] = idx;
  }
  keys_.pop_back();
  pos_.erase(it);
}

std::optional<std::string> RandomCache::chooseVictim() {
  if (keys_.empty()) return std::nullopt;
  // A few random probes, then a linear sweep (covers heavy pinning).
  for (int probe = 0; probe < 8; ++probe) {
    const auto idx = static_cast<std::size_t>(
        rng_.uniformInt(0, static_cast<std::int64_t>(keys_.size()) - 1));
    if (isEvictable(keys_[idx])) return keys_[idx];
    bumpPinSkips();
  }
  for (const auto& key : keys_) {
    if (isEvictable(key)) return key;
  }
  return std::nullopt;
}

}  // namespace simfs::cache
