#include "cache/cost_aware.hpp"

#include <algorithm>

namespace simfs::cache {

std::optional<CostAwareLruCache::Selection> CostAwareLruCache::select() {
  const auto& order = recency();
  // Find the LRU: least-recent evictable entry, scanning tail -> head.
  Slot lru = kNoSlot;
  for (Slot s = order.tail(); s != kNoSlot; s = order.prevOf(s)) {
    if (isEvictable(s)) {
      lru = s;
      break;
    }
    bumpPinSkips();
  }
  if (lru == kNoSlot) return std::nullopt;

  Selection sel;
  sel.lru = lru;
  sel.lruCost = residentAt(lru).cost;

  // Scan from the LRU towards the MRU for the first cheaper evictable
  // entry, within the bounded deflection window.
  std::int64_t scanned = 0;
  for (Slot s = order.prevOf(lru); s != kNoSlot && scanned < searchDepth_;
       s = order.prevOf(s)) {
    if (!isEvictable(s)) continue;
    ++scanned;
    const double cost = residentAt(s).cost;
    if (cost < sel.lruCost) {
      sel.victim = s;
      sel.victimCost = cost;
      sel.sparedLru = true;
      return sel;
    }
  }
  sel.victim = sel.lru;
  sel.victimCost = sel.lruCost;
  sel.sparedLru = false;
  return sel;
}

Cache::Slot CostAwareLruCache::chooseVictim() {
  auto sel = select();
  if (!sel) return kNoSlot;
  if (sel->sparedLru) onLruSpared(*sel);
  return sel->victim;
}

// ------------------------------------------------------------------ BclCache

void BclCache::onLruSpared(const Selection& sel) {
  // Immediate depreciation: the spared LRU pays the deflected victim's cost.
  setCost(sel.lru, std::max(0.0, sel.lruCost - sel.victimCost));
}

// ------------------------------------------------------------------ DclCache

void DclCache::onLruSpared(const Selection& sel) {
  // Defer: remember which LRU this victim was deflected for. Depreciation
  // happens only if the victim is re-accessed while that LRU sits untouched.
  const StepIndex victimKey = residentAt(sel.victim).key;
  const StepIndex lruKey = residentAt(sel.lru).key;
  const auto [it, inserted] = ghosts_.try_emplace(victimKey);
  it->second = Deflection{lruKey, sel.victimCost, currentSeq()};
  if (inserted) {
    ghostOrder_.push_back(victimKey);
    const auto cap = static_cast<std::size_t>(std::max<std::int64_t>(capacity(), 1));
    while (ghostOrder_.size() > cap) {
      ghosts_.erase(ghostOrder_.front());
      ghostOrder_.pop_front();
    }
  }
}

void DclCache::hookMiss(StepIndex key) {
  const auto it = ghosts_.find(key);
  if (it == ghosts_.end()) return;
  const Deflection d = it->second;
  ghosts_.erase(it);
  ghostOrder_.remove(key);
  const Slot lru = slotOf(d.sparedLru);
  // Depreciate only if the spared LRU is still resident and has not been
  // accessed since the deflection (i.e. sparing it bought nothing).
  if (lru != kNoSlot && residentAt(lru).lastAccessSeq < d.evictSeq) {
    setCost(lru, std::max(0.0, residentAt(lru).cost - d.victimCost));
  }
}

void DclCache::hookInsert(Slot slot, double cost) {
  // A key re-entering residency through a plain insert (prefetch / interval
  // fill) bypasses hookMiss; drop any stale deflection record so it cannot
  // fire against an unrelated later LRU epoch.
  const StepIndex key = residentAt(slot).key;
  const auto it = ghosts_.find(key);
  if (it != ghosts_.end()) {
    ghosts_.erase(it);
    ghostOrder_.remove(key);
  }
  LruCache::hookInsert(slot, cost);
}

}  // namespace simfs::cache
