#include "cache/cost_aware.hpp"

#include <algorithm>

namespace simfs::cache {

std::optional<CostAwareLruCache::Selection> CostAwareLruCache::select() {
  const auto& order = recency();
  // Find the LRU: least-recent evictable entry.
  auto lruIt = order.rend();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (isEvictable(*it)) {
      lruIt = it;
      break;
    }
    bumpPinSkips();
  }
  if (lruIt == order.rend()) return std::nullopt;

  Selection sel;
  sel.lru = *lruIt;
  sel.lruCost = findResident(sel.lru)->cost;

  // Scan from the LRU towards the MRU for the first cheaper evictable
  // entry, within the bounded deflection window.
  std::int64_t scanned = 0;
  for (auto it = std::next(lruIt);
       it != order.rend() && scanned < searchDepth_; ++it) {
    if (!isEvictable(*it)) continue;
    ++scanned;
    const double cost = findResident(*it)->cost;
    if (cost < sel.lruCost) {
      sel.victim = *it;
      sel.victimCost = cost;
      sel.sparedLru = true;
      return sel;
    }
  }
  sel.victim = sel.lru;
  sel.victimCost = sel.lruCost;
  sel.sparedLru = false;
  return sel;
}

std::optional<std::string> CostAwareLruCache::chooseVictim() {
  auto sel = select();
  if (!sel) return std::nullopt;
  if (sel->sparedLru) onLruSpared(*sel);
  return sel->victim;
}

// ------------------------------------------------------------------ BclCache

void BclCache::onLruSpared(const Selection& sel) {
  // Immediate depreciation: the spared LRU pays the deflected victim's cost.
  setCost(sel.lru, std::max(0.0, sel.lruCost - sel.victimCost));
}

// ------------------------------------------------------------------ DclCache

void DclCache::onLruSpared(const Selection& sel) {
  // Defer: remember which LRU this victim was deflected for. Depreciation
  // happens only if the victim is re-accessed while that LRU sits untouched.
  const auto [it, inserted] = ghosts_.try_emplace(sel.victim);
  it->second = Deflection{sel.lru, sel.victimCost, currentSeq()};
  if (inserted) {
    ghostOrder_.push_back(sel.victim);
    const auto cap = static_cast<std::size_t>(std::max<std::int64_t>(capacity(), 1));
    while (ghostOrder_.size() > cap) {
      ghosts_.erase(ghostOrder_.front());
      ghostOrder_.pop_front();
    }
  }
}

void DclCache::hookMiss(const std::string& key) {
  const auto it = ghosts_.find(key);
  if (it == ghosts_.end()) return;
  const Deflection d = it->second;
  ghosts_.erase(it);
  ghostOrder_.remove(key);
  const auto* lru = findResident(d.sparedLru);
  // Depreciate only if the spared LRU is still resident and has not been
  // accessed since the deflection (i.e. sparing it bought nothing).
  if (lru != nullptr && lru->lastAccessSeq < d.evictSeq) {
    setCost(d.sparedLru, std::max(0.0, lru->cost - d.victimCost));
  }
}

void DclCache::hookInsert(const std::string& key, double cost) {
  // A key re-entering residency through a plain insert (prefetch / interval
  // fill) bypasses hookMiss; drop any stale deflection record so it cannot
  // fire against an unrelated later LRU epoch.
  const auto it = ghosts_.find(key);
  if (it != ghosts_.end()) {
    ghosts_.erase(it);
    ghostOrder_.remove(key);
  }
  LruCache::hookInsert(key, cost);
}

}  // namespace simfs::cache
