// Cache replacement schemes for simulation data (Sec. III-D).
//
// SimFS caches whole output steps in a fully-associative "cache" (the
// context's storage area). Differences from CPU caches that shape this
// interface:
//   * miss costs are nonuniform — producing d_i costs a re-simulation of
//     missCostSteps(d_i) output steps from the previous restart;
//   * entries referenced by a running analysis are pinned and must not be
//     evicted;
//   * re-simulations insert entire restart intervals, not just the missed
//     entry (spatial locality), so insertion without an access is a
//     first-class operation.
//
// The base class owns residency, pinning, statistics and the eviction
// loop; concrete policies (LRU, LIRS, ARC, BCL, DCL, FIFO, RANDOM) supply
// ordering decisions through protected hooks.
#pragma once

#include "common/types.hpp"
#include "simmodel/context.hpp"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace simfs::cache {

/// Counters exposed by every cache.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;   ///< entries brought in (incl. prefills)
  std::uint64_t evictions = 0;
  std::uint64_t pinSkips = 0;     ///< victim candidates skipped because pinned
  double evictedCostTotal = 0.0;  ///< summed miss cost of evicted entries
};

/// Result of an access(): hit flag plus any evictions it triggered.
struct AccessOutcome {
  bool hit = false;
  std::vector<std::string> evicted;
};

/// Fully-associative cache with pluggable replacement. Capacity counts
/// entries (output steps are uniformly sized within a context);
/// capacity <= 0 means unlimited.
class Cache {
 public:
  explicit Cache(std::int64_t capacityEntries);
  virtual ~Cache() = default;
  Cache(const Cache&) = delete;
  Cache& operator=(const Cache&) = delete;

  /// Policy name, e.g. "DCL".
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Records an access. On a miss the entry is inserted with the given
  /// miss cost (the caller is assumed to re-simulate it) and the eviction
  /// loop runs. Pinned entries are never evicted; if every resident entry
  /// is pinned the cache transiently exceeds capacity.
  AccessOutcome access(const std::string& key, double cost);

  /// Inserts an entry without hit/miss accounting — used for the
  /// additional output steps a re-simulation produces around the missed
  /// one, and for prefetched steps. No-op if already resident.
  std::vector<std::string> insert(const std::string& key, double cost);

  /// True if resident.
  [[nodiscard]] bool contains(const std::string& key) const noexcept;

  /// Pins an entry (refcount++). Pinned entries cannot be evicted.
  /// No-op for non-resident keys.
  void pin(const std::string& key) noexcept;

  /// Unpins an entry (refcount--, floored at 0).
  void unpin(const std::string& key) noexcept;

  /// Current pin count (0 for non-resident keys).
  [[nodiscard]] int pinCount(const std::string& key) const noexcept;

  /// Externally removes an entry (e.g. operator deleted the file).
  /// Returns false if not resident.
  bool erase(const std::string& key);

  /// Miss cost recorded for a resident entry; nullopt if absent.
  [[nodiscard]] std::optional<double> costOf(const std::string& key) const noexcept;

  [[nodiscard]] std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(resident_.size());
  }
  [[nodiscard]] std::int64_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }

  /// Resident keys in unspecified order.
  [[nodiscard]] std::vector<std::string> residentKeys() const;

 protected:
  /// Per-entry bookkeeping shared by all policies.
  struct Resident {
    double cost = 0.0;
    int pins = 0;
    std::uint64_t lastAccessSeq = 0;
  };

  // --- hooks implemented by policies -------------------------------------
  /// Resident entry re-accessed.
  virtual void hookHit(const std::string& key) = 0;
  /// Non-resident key observed (access miss) BEFORE insertion; ghost-aware
  /// policies (ARC, LIRS, DCL) react here. Plain inserts do not call this.
  virtual void hookMiss(const std::string& /*key*/) {}
  /// Entry became resident (from an access miss or a plain insert).
  virtual void hookInsert(const std::string& key, double cost) = 0;
  /// Entry left the resident set. `evicted` is true when the eviction loop
  /// removed it (policies may then keep it as a ghost), false on erase().
  virtual void hookRemove(const std::string& key, bool evicted) = 0;
  /// Picks an evictable (unpinned) victim; nullopt if none exists.
  [[nodiscard]] virtual std::optional<std::string> chooseVictim() = 0;

  // --- services for policies ---------------------------------------------
  [[nodiscard]] bool isEvictable(const std::string& key) const noexcept;
  [[nodiscard]] const Resident* findResident(const std::string& key) const noexcept;
  /// Mutable cost access (BCL/DCL depreciate the LRU's cost in place).
  void setCost(const std::string& key, double cost) noexcept;
  [[nodiscard]] std::uint64_t currentSeq() const noexcept { return seq_; }
  void bumpPinSkips() noexcept { ++stats_.pinSkips; }

 private:
  void evictOverflow(std::vector<std::string>& evictedOut);
  void insertInternal(const std::string& key, double cost,
                      std::vector<std::string>& evictedOut);

  std::int64_t capacity_;
  std::unordered_map<std::string, Resident> resident_;
  CacheStats stats_;
  std::uint64_t seq_ = 0;
};

/// Builds a cache of the requested policy kind.
[[nodiscard]] std::unique_ptr<Cache> makeCache(simmodel::PolicyKind kind,
                                               std::int64_t capacityEntries,
                                               std::uint64_t seed = 42);

}  // namespace simfs::cache
