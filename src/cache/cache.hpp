// Cache replacement schemes for simulation data (Sec. III-D).
//
// SimFS caches whole output steps in a fully-associative "cache" (the
// context's storage area). Differences from CPU caches that shape this
// interface:
//   * miss costs are nonuniform — producing d_i costs a re-simulation of
//     missCostSteps(d_i) output steps from the previous restart;
//   * entries referenced by a running analysis are pinned and must not be
//     evicted;
//   * re-simulations insert entire restart intervals, not just the missed
//     entry (spatial locality), so insertion without an access is a
//     first-class operation.
//
// Keys are StepIndex values, not filename strings: the DV parses a
// filename exactly once at its client boundary and every cache operation
// below that point is integer-keyed and allocation-free in the hit case.
// Residency lives in a slot arena indexed by a flat open-addressing hash
// map; recency-ordered policies thread intrusive list links through the
// slots instead of allocating per-key list nodes. Callers that genuinely
// hold filenames (operator tooling) go through FilenameKeyedCache.
//
// The base class owns residency, pinning, statistics and the eviction
// loop; concrete policies (LRU, LIRS, ARC, BCL, DCL, FIFO, RANDOM) supply
// ordering decisions through protected hooks.
#pragma once

#include "common/types.hpp"
#include "simmodel/context.hpp"

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

namespace simfs::cache {

/// Counters exposed by every cache.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;   ///< entries brought in (incl. prefills)
  std::uint64_t evictions = 0;
  std::uint64_t pinSkips = 0;     ///< victim candidates skipped because pinned
  double evictedCostTotal = 0.0;  ///< summed miss cost of evicted entries
};

/// Result of an access(): hit flag plus any evictions it triggered.
struct AccessOutcome {
  bool hit = false;
  std::vector<StepIndex> evicted;
};

/// Flat open-addressing StepIndex -> slot map (linear probing, power-of-two
/// capacity, Knuth Algorithm R deletion). kNoStep is the empty sentinel, so
/// it cannot be used as a key — step indices are non-negative in practice.
class StepSlotMap {
 public:
  StepSlotMap() { cells_.resize(16, Cell{kNoStep, -1}); }

  [[nodiscard]] std::int32_t find(StepIndex key) const noexcept {
    std::size_t i = bucket(key);
    while (cells_[i].key != kNoStep) {
      if (cells_[i].key == key) return cells_[i].value;
      i = (i + 1) & mask();
    }
    return -1;
  }

  /// Inserts a key known to be absent.
  void insert(StepIndex key, std::int32_t value) {
    if ((size_ + 1) * 10 >= cells_.size() * 7) grow();
    std::size_t i = bucket(key);
    while (cells_[i].key != kNoStep) i = (i + 1) & mask();
    cells_[i] = Cell{key, value};
    ++size_;
  }

  bool erase(StepIndex key) noexcept {
    std::size_t i = bucket(key);
    while (cells_[i].key != key) {
      if (cells_[i].key == kNoStep) return false;
      i = (i + 1) & mask();
    }
    // Backward-shift deletion keeps probe chains intact without tombstones.
    std::size_t j = i;
    for (;;) {
      cells_[i].key = kNoStep;
      std::size_t home;
      do {
        j = (j + 1) & mask();
        if (cells_[j].key == kNoStep) {
          --size_;
          return true;
        }
        home = bucket(cells_[j].key);
      } while ((i <= j) ? (i < home && home <= j) : (i < home || home <= j));
      cells_[i] = cells_[j];
      i = j;
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  struct Cell {
    StepIndex key;
    std::int32_t value;
  };

  [[nodiscard]] std::size_t mask() const noexcept { return cells_.size() - 1; }

  [[nodiscard]] std::size_t bucket(StepIndex key) const noexcept {
    auto h = static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ull;
    h ^= h >> 29;
    return static_cast<std::size_t>(h) & mask();
  }

  void grow() {
    std::vector<Cell> old = std::move(cells_);
    cells_.assign(old.size() * 2, Cell{kNoStep, -1});
    for (const auto& c : old) {
      if (c.key == kNoStep) continue;
      std::size_t i = bucket(c.key);
      while (cells_[i].key != kNoStep) i = (i + 1) & mask();
      cells_[i] = c;
    }
  }

  std::vector<Cell> cells_;
  std::size_t size_ = 0;
};

/// Fully-associative cache with pluggable replacement. Capacity counts
/// entries (output steps are uniformly sized within a context);
/// capacity <= 0 means unlimited.
class Cache {
 public:
  explicit Cache(std::int64_t capacityEntries);
  virtual ~Cache() = default;
  Cache(const Cache&) = delete;
  Cache& operator=(const Cache&) = delete;

  /// Policy name, e.g. "DCL".
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Records an access. On a miss the entry is inserted with the given
  /// miss cost (the caller is assumed to re-simulate it) and the eviction
  /// loop runs. Pinned entries are never evicted; if every resident entry
  /// is pinned the cache transiently exceeds capacity.
  AccessOutcome access(StepIndex key, double cost);

  /// Inserts an entry without hit/miss accounting — used for the
  /// additional output steps a re-simulation produces around the missed
  /// one, and for prefetched steps. No-op if already resident.
  std::vector<StepIndex> insert(StepIndex key, double cost);

  /// access() + pin() fused into one index probe — the DV's open-hit path
  /// touches the policy and takes its reference with a single lookup. The
  /// entry is pinned whether the access hit or missed (on a miss the
  /// freshly inserted entry carries the reference).
  AccessOutcome accessAndPin(StepIndex key, double cost);

  /// True if resident.
  [[nodiscard]] bool contains(StepIndex key) const noexcept {
    return index_.find(key) >= 0;
  }

  /// Pins an entry (refcount++). Pinned entries cannot be evicted.
  /// No-op for non-resident keys.
  void pin(StepIndex key) noexcept;

  /// Unpins an entry (refcount--, floored at 0).
  void unpin(StepIndex key) noexcept;

  /// Current pin count (0 for non-resident keys).
  [[nodiscard]] int pinCount(StepIndex key) const noexcept;

  /// Externally removes an entry (e.g. operator deleted the file).
  /// Returns false if not resident.
  bool erase(StepIndex key);

  /// Miss cost recorded for a resident entry; nullopt if absent.
  [[nodiscard]] std::optional<double> costOf(StepIndex key) const noexcept;

  [[nodiscard]] std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(index_.size());
  }
  [[nodiscard]] std::int64_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }

  /// Visits every resident entry as (key, cost, pins), in unspecified
  /// order, without materializing a key vector.
  template <typename Fn>
  void forEachResident(Fn&& fn) const {
    for (const auto& r : slots_) {
      if (r.occupied) fn(r.key, r.cost, r.pins);
    }
  }

 protected:
  /// Slot handle into the resident arena. Slots are stable while an entry
  /// is resident and recycled after removal.
  using Slot = std::int32_t;
  static constexpr Slot kNoSlot = -1;
  /// Intrusive list lanes available to policies (LIRS-style policies need
  /// two simultaneous orders; everyone else uses lane 0).
  static constexpr int kLanes = 2;

  /// Per-entry bookkeeping shared by all policies.
  struct Resident {
    StepIndex key = 0;
    double cost = 0.0;
    int pins = 0;
    std::uint64_t lastAccessSeq = 0;
    bool occupied = false;
    /// Intrusive doubly-linked list links, one pair per lane.
    Slot prev[kLanes] = {kNoSlot, kNoSlot};
    Slot next[kLanes] = {kNoSlot, kNoSlot};
    bool linked[kLanes] = {false, false};
    /// Policy scratch (e.g. RANDOM's sampling-vector position).
    std::int32_t aux = 0;
  };

  /// Intrusive doubly-linked list over resident slots; nodes live inside
  /// the arena, so linking/unlinking never allocates.
  class SlotList {
   public:
    SlotList(Cache& owner, int lane) : owner_(&owner), lane_(lane) {}

    void pushFront(Slot s) {
      auto& r = owner_->slots_[static_cast<std::size_t>(s)];
      r.prev[lane_] = kNoSlot;
      r.next[lane_] = head_;
      r.linked[lane_] = true;
      if (head_ != kNoSlot) owner_->slots_[static_cast<std::size_t>(head_)].prev[lane_] = s;
      head_ = s;
      if (tail_ == kNoSlot) tail_ = s;
      ++size_;
    }

    void pushBack(Slot s) {
      auto& r = owner_->slots_[static_cast<std::size_t>(s)];
      r.next[lane_] = kNoSlot;
      r.prev[lane_] = tail_;
      r.linked[lane_] = true;
      if (tail_ != kNoSlot) owner_->slots_[static_cast<std::size_t>(tail_)].next[lane_] = s;
      tail_ = s;
      if (head_ == kNoSlot) head_ = s;
      ++size_;
    }

    void erase(Slot s) {
      auto& r = owner_->slots_[static_cast<std::size_t>(s)];
      if (!r.linked[lane_]) return;
      if (r.prev[lane_] != kNoSlot) {
        owner_->slots_[static_cast<std::size_t>(r.prev[lane_])].next[lane_] = r.next[lane_];
      } else {
        head_ = r.next[lane_];
      }
      if (r.next[lane_] != kNoSlot) {
        owner_->slots_[static_cast<std::size_t>(r.next[lane_])].prev[lane_] = r.prev[lane_];
      } else {
        tail_ = r.prev[lane_];
      }
      r.linked[lane_] = false;
      --size_;
    }

    void moveToFront(Slot s) {
      if (head_ == s) return;
      erase(s);
      pushFront(s);
    }

    [[nodiscard]] Slot head() const noexcept { return head_; }
    [[nodiscard]] Slot tail() const noexcept { return tail_; }
    [[nodiscard]] Slot prevOf(Slot s) const noexcept {
      return owner_->slots_[static_cast<std::size_t>(s)].prev[lane_];
    }
    [[nodiscard]] Slot nextOf(Slot s) const noexcept {
      return owner_->slots_[static_cast<std::size_t>(s)].next[lane_];
    }
    [[nodiscard]] bool contains(Slot s) const noexcept {
      return owner_->slots_[static_cast<std::size_t>(s)].linked[lane_];
    }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }

   private:
    Cache* owner_;
    int lane_;
    Slot head_ = kNoSlot;
    Slot tail_ = kNoSlot;
    std::size_t size_ = 0;
  };

  // --- hooks implemented by policies -------------------------------------
  /// Resident entry re-accessed.
  virtual void hookHit(Slot slot) = 0;
  /// Non-resident key observed (access miss) BEFORE insertion; ghost-aware
  /// policies (ARC, LIRS, DCL) react here. Plain inserts do not call this.
  virtual void hookMiss(StepIndex /*key*/) {}
  /// Entry became resident (from an access miss or a plain insert).
  virtual void hookInsert(Slot slot, double cost) = 0;
  /// Entry is leaving the resident set (the slot is still valid during the
  /// call and freed afterwards). `evicted` is true when the eviction loop
  /// removed it (policies may then keep it as a ghost), false on erase().
  virtual void hookRemove(Slot slot, bool evicted) = 0;
  /// Picks an evictable (unpinned) victim; kNoSlot if none exists.
  [[nodiscard]] virtual Slot chooseVictim() = 0;

  // --- services for policies ---------------------------------------------
  [[nodiscard]] const Resident& residentAt(Slot s) const noexcept {
    return slots_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] Slot slotOf(StepIndex key) const noexcept {
    return index_.find(key);
  }
  [[nodiscard]] bool isEvictable(Slot s) const noexcept {
    return slots_[static_cast<std::size_t>(s)].pins == 0;
  }
  /// Mutable cost access (BCL/DCL depreciate the LRU's cost in place).
  void setCost(Slot s, double cost) noexcept {
    slots_[static_cast<std::size_t>(s)].cost = cost;
  }
  /// Policy scratch storage.
  void setAux(Slot s, std::int32_t aux) noexcept {
    slots_[static_cast<std::size_t>(s)].aux = aux;
  }
  [[nodiscard]] std::uint64_t currentSeq() const noexcept { return seq_; }
  void bumpPinSkips() noexcept { ++stats_.pinSkips; }

 private:
  void evictOverflow(std::vector<StepIndex>& evictedOut);
  void insertInternal(StepIndex key, double cost,
                      std::vector<StepIndex>& evictedOut);
  Slot allocSlot(StepIndex key, double cost);
  void freeSlot(Slot s);

  std::int64_t capacity_;
  std::vector<Resident> slots_;
  std::vector<Slot> freeSlots_;
  StepSlotMap index_;
  CacheStats stats_;
  std::uint64_t seq_ = 0;
};

/// Builds a cache of the requested policy kind.
[[nodiscard]] std::unique_ptr<Cache> makeCache(simmodel::PolicyKind kind,
                                               std::int64_t capacityEntries,
                                               std::uint64_t seed = 42);

/// Thin string-keyed adapter for callers that genuinely hold filenames
/// (operator tooling, directory scans). Translates through a
/// FilenameCodec at the boundary; everything below stays integer-keyed.
class FilenameKeyedCache {
 public:
  FilenameKeyedCache(Cache& cache, const simmodel::FilenameCodec& codec)
      : cache_(cache), codec_(codec) {}

  [[nodiscard]] bool contains(std::string_view file) const noexcept {
    StepIndex step = 0;
    return codec_.matchOutput(file, &step) && cache_.contains(step);
  }

  AccessOutcome access(std::string_view file, double cost) {
    StepIndex step = 0;
    if (!codec_.matchOutput(file, &step)) return {};
    return cache_.access(step, cost);
  }

  void pin(std::string_view file) noexcept {
    StepIndex step = 0;
    if (codec_.matchOutput(file, &step)) cache_.pin(step);
  }

  void unpin(std::string_view file) noexcept {
    StepIndex step = 0;
    if (codec_.matchOutput(file, &step)) cache_.unpin(step);
  }

  bool erase(std::string_view file) {
    StepIndex step = 0;
    return codec_.matchOutput(file, &step) && cache_.erase(step);
  }

  /// Visits resident entries as filenames (materialized per entry).
  template <typename Fn>
  void forEachResidentFile(Fn&& fn) const {
    cache_.forEachResident([&](StepIndex key, double cost, int pins) {
      fn(codec_.outputFile(key), cost, pins);
    });
  }

 private:
  Cache& cache_;
  const simmodel::FilenameCodec& codec_;
};

}  // namespace simfs::cache
