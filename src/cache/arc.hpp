// ARC — Adaptive Replacement Cache (Megiddo & Modha, FAST'03), cited by
// the paper as the scheme that balances recency against frequency.
//
// Resident entries live in T1 (seen once recently) or T2 (seen at least
// twice); evicted entries leave ghosts in B1/B2. Ghost hits steer the
// adaptation parameter p, which sets the target size of T1.
//
// SimFS adaptations: victim selection skips pinned entries within the
// preferred list and falls through to the other list if necessary, and
// insertions can arrive without an access (re-simulation interval fills),
// which enter T1 like first-touch misses.
//
// Keys are StepIndex; list moves are splices, so steady-state hits and
// ghost transitions never allocate (only first-touch inserts do).
#pragma once

#include "cache/cache.hpp"

#include <list>
#include <unordered_map>

namespace simfs::cache {

class ArcCache final : public Cache {
 public:
  explicit ArcCache(std::int64_t capacityEntries);

  [[nodiscard]] const char* name() const noexcept override { return "ARC"; }

  /// Current adaptation target for |T1| (diagnostic).
  [[nodiscard]] double pTarget() const noexcept { return p_; }

 protected:
  void hookHit(Slot slot) override;
  void hookMiss(StepIndex key) override;
  void hookInsert(Slot slot, double cost) override;
  void hookRemove(Slot slot, bool evicted) override;
  [[nodiscard]] Slot chooseVictim() override;

 private:
  enum class Where { kT1, kT2, kB1, kB2 };

  struct Meta {
    Where where = Where::kT1;
    std::list<StepIndex>::iterator it{};
  };

  std::list<StepIndex>& listOf(Where w) noexcept;
  void moveTo(Meta& meta, Where dst);
  void dropFrom(StepIndex key);
  void trimGhosts();

  /// True if ARC's REPLACE rule prefers evicting from T1.
  [[nodiscard]] bool preferT1Victim() const noexcept;

  double p_ = 0.0;  // target size of T1
  std::list<StepIndex> t1_, t2_, b1_, b2_;  // front = MRU
  std::unordered_map<StepIndex, Meta> meta_;
  /// Set by hookMiss when the missed key was a B2 ghost; REPLACE treats
  /// that case specially (|T1| == p also evicts from T1).
  bool lastMissWasB2Ghost_ = false;
};

}  // namespace simfs::cache
