// Recency-ordered policies: LRU plus the FIFO and RANDOM baselines
// (the latter two are beyond-paper reference points for the ablation
// benches).
//
// All three keep their ordering intrusively inside the base class's
// resident arena (lane 0), so hits and inserts never allocate.
#pragma once

#include "cache/cache.hpp"
#include "common/rng.hpp"

#include <vector>

namespace simfs::cache {

/// Classic Least-Recently-Used with pin awareness: the victim is the
/// least-recent *unpinned* entry.
class LruCache : public Cache {
 public:
  explicit LruCache(std::int64_t capacityEntries)
      : Cache(capacityEntries), recency_(*this, /*lane=*/0) {}

  [[nodiscard]] const char* name() const noexcept override { return "LRU"; }

 protected:
  void hookHit(Slot slot) override;
  void hookInsert(Slot slot, double cost) override;
  void hookRemove(Slot slot, bool evicted) override;
  [[nodiscard]] Slot chooseVictim() override;

  /// Recency list: head = MRU, tail = LRU. Exposed to the cost-aware
  /// subclasses (BCL/DCL) which reuse LRU ordering.
  [[nodiscard]] const SlotList& recency() const noexcept { return recency_; }

 private:
  SlotList recency_;
};

/// First-In-First-Out: insertion order, hits do not refresh.
class FifoCache final : public Cache {
 public:
  explicit FifoCache(std::int64_t capacityEntries)
      : Cache(capacityEntries), order_(*this, /*lane=*/0) {}

  [[nodiscard]] const char* name() const noexcept override { return "FIFO"; }

 protected:
  void hookHit(Slot slot) override;
  void hookInsert(Slot slot, double cost) override;
  void hookRemove(Slot slot, bool evicted) override;
  [[nodiscard]] Slot chooseVictim() override;

 private:
  SlotList order_;  // head = oldest
};

/// Uniform-random eviction among unpinned residents.
class RandomCache final : public Cache {
 public:
  RandomCache(std::int64_t capacityEntries, std::uint64_t seed)
      : Cache(capacityEntries), rng_(seed) {}

  [[nodiscard]] const char* name() const noexcept override { return "RANDOM"; }

 protected:
  void hookHit(Slot slot) override;
  void hookInsert(Slot slot, double cost) override;
  void hookRemove(Slot slot, bool evicted) override;
  [[nodiscard]] Slot chooseVictim() override;

 private:
  // Swap-with-last vector for O(1) removal and O(1) sampling; each slot's
  // position in the vector rides in its aux field.
  std::vector<Slot> sample_;
  Rng rng_;
};

}  // namespace simfs::cache
