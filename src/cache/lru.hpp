// Recency-ordered policies: LRU plus the FIFO and RANDOM baselines
// (the latter two are beyond-paper reference points for the ablation
// benches).
#pragma once

#include "cache/cache.hpp"
#include "common/rng.hpp"

#include <list>
#include <unordered_map>

namespace simfs::cache {

/// Classic Least-Recently-Used with pin awareness: the victim is the
/// least-recent *unpinned* entry.
class LruCache : public Cache {
 public:
  explicit LruCache(std::int64_t capacityEntries) : Cache(capacityEntries) {}

  [[nodiscard]] const char* name() const noexcept override { return "LRU"; }

 protected:
  void hookHit(const std::string& key) override;
  void hookInsert(const std::string& key, double cost) override;
  void hookRemove(const std::string& key, bool evicted) override;
  [[nodiscard]] std::optional<std::string> chooseVictim() override;

  /// Recency list: front = MRU, back = LRU. Exposed to the cost-aware
  /// subclasses (BCL/DCL) which reuse LRU ordering.
  [[nodiscard]] const std::list<std::string>& recency() const noexcept {
    return recency_;
  }

 private:
  std::list<std::string> recency_;
  std::unordered_map<std::string, std::list<std::string>::iterator> pos_;
};

/// First-In-First-Out: insertion order, hits do not refresh.
class FifoCache final : public Cache {
 public:
  explicit FifoCache(std::int64_t capacityEntries) : Cache(capacityEntries) {}

  [[nodiscard]] const char* name() const noexcept override { return "FIFO"; }

 protected:
  void hookHit(const std::string& key) override;
  void hookInsert(const std::string& key, double cost) override;
  void hookRemove(const std::string& key, bool evicted) override;
  [[nodiscard]] std::optional<std::string> chooseVictim() override;

 private:
  std::list<std::string> order_;  // front = oldest
  std::unordered_map<std::string, std::list<std::string>::iterator> pos_;
};

/// Uniform-random eviction among unpinned residents.
class RandomCache final : public Cache {
 public:
  RandomCache(std::int64_t capacityEntries, std::uint64_t seed)
      : Cache(capacityEntries), rng_(seed) {}

  [[nodiscard]] const char* name() const noexcept override { return "RANDOM"; }

 protected:
  void hookHit(const std::string& key) override;
  void hookInsert(const std::string& key, double cost) override;
  void hookRemove(const std::string& key, bool evicted) override;
  [[nodiscard]] std::optional<std::string> chooseVictim() override;

 private:
  // Swap-with-last vector for O(1) removal and O(1) sampling.
  std::vector<std::string> keys_;
  std::unordered_map<std::string, std::size_t> pos_;
  Rng rng_;
};

}  // namespace simfs::cache
