#include "cache/cache.hpp"

#include "common/status.hpp"

namespace simfs::cache {

Cache::Cache(std::int64_t capacityEntries) : capacity_(capacityEntries) {
  if (capacity_ > 0 && capacity_ < (1 << 20)) {
    slots_.reserve(static_cast<std::size_t>(capacity_) + 1);
  }
}

Cache::Slot Cache::allocSlot(StepIndex key, double cost) {
  Slot s;
  if (!freeSlots_.empty()) {
    s = freeSlots_.back();
    freeSlots_.pop_back();
  } else {
    s = static_cast<Slot>(slots_.size());
    slots_.emplace_back();
  }
  auto& r = slots_[static_cast<std::size_t>(s)];
  r.key = key;
  r.cost = cost;
  r.pins = 0;
  r.lastAccessSeq = seq_;
  r.occupied = true;
  for (int lane = 0; lane < kLanes; ++lane) {
    r.prev[lane] = kNoSlot;
    r.next[lane] = kNoSlot;
    r.linked[lane] = false;
  }
  r.aux = 0;
  index_.insert(key, s);
  return s;
}

void Cache::freeSlot(Slot s) {
  auto& r = slots_[static_cast<std::size_t>(s)];
  index_.erase(r.key);
  r.occupied = false;
  freeSlots_.push_back(s);
}

AccessOutcome Cache::access(StepIndex key, double cost) {
  ++seq_;
  AccessOutcome out;
  const Slot s = index_.find(key);
  if (s != kNoSlot) {
    ++stats_.hits;
    slots_[static_cast<std::size_t>(s)].lastAccessSeq = seq_;
    hookHit(s);
    out.hit = true;
    return out;
  }
  ++stats_.misses;
  hookMiss(key);
  insertInternal(key, cost, out.evicted);
  return out;
}

AccessOutcome Cache::accessAndPin(StepIndex key, double cost) {
  ++seq_;
  AccessOutcome out;
  const Slot s = index_.find(key);
  if (s != kNoSlot) {
    ++stats_.hits;
    auto& r = slots_[static_cast<std::size_t>(s)];
    r.lastAccessSeq = seq_;
    ++r.pins;
    hookHit(s);
    out.hit = true;
    return out;
  }
  ++stats_.misses;
  hookMiss(key);
  insertInternal(key, cost, out.evicted);
  pin(key);
  return out;
}

std::vector<StepIndex> Cache::insert(StepIndex key, double cost) {
  std::vector<StepIndex> evicted;
  if (index_.find(key) != kNoSlot) return evicted;
  ++seq_;
  insertInternal(key, cost, evicted);
  return evicted;
}

void Cache::insertInternal(StepIndex key, double cost,
                           std::vector<StepIndex>& evictedOut) {
  const Slot s = allocSlot(key, cost);
  ++stats_.insertions;
  hookInsert(s, cost);
  // Temporarily pin the entry being inserted: when everything else is
  // pinned, evicting the datum this very access is about to consume would
  // defeat the access. Transient overflow is preferable.
  ++slots_[static_cast<std::size_t>(s)].pins;
  evictOverflow(evictedOut);
  --slots_[static_cast<std::size_t>(s)].pins;
}

void Cache::evictOverflow(std::vector<StepIndex>& evictedOut) {
  if (capacity_ <= 0) return;
  while (static_cast<std::int64_t>(index_.size()) > capacity_) {
    const Slot victim = chooseVictim();
    if (victim == kNoSlot) return;  // everything pinned: transient overflow
    auto& r = slots_[static_cast<std::size_t>(victim)];
    SIMFS_CHECK(r.occupied);
    SIMFS_CHECK(r.pins == 0);
    const StepIndex key = r.key;
    stats_.evictedCostTotal += r.cost;
    ++stats_.evictions;
    hookRemove(victim, /*evicted=*/true);
    freeSlot(victim);
    evictedOut.push_back(key);
  }
}

void Cache::pin(StepIndex key) noexcept {
  const Slot s = index_.find(key);
  if (s != kNoSlot) ++slots_[static_cast<std::size_t>(s)].pins;
}

void Cache::unpin(StepIndex key) noexcept {
  const Slot s = index_.find(key);
  if (s != kNoSlot && slots_[static_cast<std::size_t>(s)].pins > 0) {
    --slots_[static_cast<std::size_t>(s)].pins;
  }
}

int Cache::pinCount(StepIndex key) const noexcept {
  const Slot s = index_.find(key);
  return s == kNoSlot ? 0 : slots_[static_cast<std::size_t>(s)].pins;
}

bool Cache::erase(StepIndex key) {
  const Slot s = index_.find(key);
  if (s == kNoSlot) return false;
  hookRemove(s, /*evicted=*/false);
  freeSlot(s);
  return true;
}

std::optional<double> Cache::costOf(StepIndex key) const noexcept {
  const Slot s = index_.find(key);
  if (s == kNoSlot) return std::nullopt;
  return slots_[static_cast<std::size_t>(s)].cost;
}

}  // namespace simfs::cache
