#include "cache/cache.hpp"

#include "common/status.hpp"

namespace simfs::cache {

Cache::Cache(std::int64_t capacityEntries) : capacity_(capacityEntries) {}

AccessOutcome Cache::access(const std::string& key, double cost) {
  ++seq_;
  AccessOutcome out;
  const auto it = resident_.find(key);
  if (it != resident_.end()) {
    ++stats_.hits;
    it->second.lastAccessSeq = seq_;
    hookHit(key);
    out.hit = true;
    return out;
  }
  ++stats_.misses;
  hookMiss(key);
  insertInternal(key, cost, out.evicted);
  return out;
}

std::vector<std::string> Cache::insert(const std::string& key, double cost) {
  std::vector<std::string> evicted;
  if (resident_.count(key) > 0) return evicted;
  ++seq_;
  insertInternal(key, cost, evicted);
  return evicted;
}

void Cache::insertInternal(const std::string& key, double cost,
                           std::vector<std::string>& evictedOut) {
  Resident entry;
  entry.cost = cost;
  entry.lastAccessSeq = seq_;
  const auto it = resident_.emplace(key, entry).first;
  ++stats_.insertions;
  hookInsert(key, cost);
  // Temporarily pin the entry being inserted: when everything else is
  // pinned, evicting the datum this very access is about to consume would
  // defeat the access. Transient overflow is preferable.
  ++it->second.pins;
  evictOverflow(evictedOut);
  --it->second.pins;
}

void Cache::evictOverflow(std::vector<std::string>& evictedOut) {
  if (capacity_ <= 0) return;
  while (static_cast<std::int64_t>(resident_.size()) > capacity_) {
    const auto victim = chooseVictim();
    if (!victim) return;  // everything pinned: allow transient overflow
    const auto it = resident_.find(*victim);
    SIMFS_CHECK(it != resident_.end());
    SIMFS_CHECK(it->second.pins == 0);
    stats_.evictedCostTotal += it->second.cost;
    resident_.erase(it);
    ++stats_.evictions;
    hookRemove(*victim, /*evicted=*/true);
    evictedOut.push_back(*victim);
  }
}

bool Cache::contains(const std::string& key) const noexcept {
  return resident_.count(key) > 0;
}

void Cache::pin(const std::string& key) noexcept {
  const auto it = resident_.find(key);
  if (it != resident_.end()) ++it->second.pins;
}

void Cache::unpin(const std::string& key) noexcept {
  const auto it = resident_.find(key);
  if (it != resident_.end() && it->second.pins > 0) --it->second.pins;
}

int Cache::pinCount(const std::string& key) const noexcept {
  const auto it = resident_.find(key);
  return it == resident_.end() ? 0 : it->second.pins;
}

bool Cache::erase(const std::string& key) {
  const auto it = resident_.find(key);
  if (it == resident_.end()) return false;
  resident_.erase(it);
  hookRemove(key, /*evicted=*/false);
  return true;
}

std::optional<double> Cache::costOf(const std::string& key) const noexcept {
  const auto it = resident_.find(key);
  if (it == resident_.end()) return std::nullopt;
  return it->second.cost;
}

std::vector<std::string> Cache::residentKeys() const {
  std::vector<std::string> out;
  out.reserve(resident_.size());
  for (const auto& [k, _] : resident_) out.push_back(k);
  return out;
}

bool Cache::isEvictable(const std::string& key) const noexcept {
  const auto it = resident_.find(key);
  return it != resident_.end() && it->second.pins == 0;
}

const Cache::Resident* Cache::findResident(const std::string& key) const noexcept {
  const auto it = resident_.find(key);
  return it == resident_.end() ? nullptr : &it->second;
}

void Cache::setCost(const std::string& key, double cost) noexcept {
  const auto it = resident_.find(key);
  if (it != resident_.end()) it->second.cost = cost;
}

}  // namespace simfs::cache
