#include "cache/lirs.hpp"

#include "common/status.hpp"

#include <algorithm>

namespace simfs::cache {

LirsCache::LirsCache(std::int64_t capacityEntries, double hirFraction)
    : Cache(capacityEntries) {
  const std::int64_t cap = std::max<std::int64_t>(capacityEntries, 1);
  lhirs_ = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(static_cast<double>(cap) * hirFraction));
  llirs_ = std::max<std::int64_t>(1, cap - lhirs_);
}

void LirsCache::stackPushFront(const std::string& key, Meta& meta) {
  stack_.push_front(key);
  meta.stackIt = stack_.begin();
  meta.inStack = true;
}

void LirsCache::stackErase(const std::string& key, Meta& meta) {
  (void)key;
  if (!meta.inStack) return;
  stack_.erase(meta.stackIt);
  meta.inStack = false;
}

void LirsCache::queuePushBack(const std::string& key, Meta& meta) {
  queue_.push_back(key);
  meta.queueIt = std::prev(queue_.end());
  meta.inQueue = true;
}

void LirsCache::queueErase(const std::string& key, Meta& meta) {
  (void)key;
  if (!meta.inQueue) return;
  queue_.erase(meta.queueIt);
  meta.inQueue = false;
}

void LirsCache::pruneStack() {
  while (!stack_.empty()) {
    const auto& bottom = stack_.back();
    auto it = meta_.find(bottom);
    SIMFS_CHECK(it != meta_.end());
    if (it->second.state == State::kLir) return;
    // Non-LIR at the bottom: remove from the stack; ghosts vanish entirely.
    it->second.inStack = false;
    stack_.pop_back();
    if (it->second.state == State::kGhost) meta_.erase(it);
  }
}

void LirsCache::demoteBottomLir() {
  pruneStack();
  if (stack_.empty()) return;
  const std::string bottom = stack_.back();
  auto& meta = meta_.at(bottom);
  SIMFS_CHECK(meta.state == State::kLir);
  meta.state = State::kHirResident;
  stackErase(bottom, meta);
  queuePushBack(bottom, meta);
  --nLir_;
  pruneStack();
}

void LirsCache::boundGhosts() {
  // Keep |S| within 3x capacity by discarding the oldest ghosts.
  const auto bound =
      static_cast<std::size_t>(3 * std::max<std::int64_t>(capacity(), 1));
  if (stack_.size() <= bound) return;
  for (auto it = std::prev(stack_.end());
       stack_.size() > bound && it != stack_.begin();) {
    auto cur = it--;
    auto mit = meta_.find(*cur);
    SIMFS_CHECK(mit != meta_.end());
    if (mit->second.state == State::kGhost) {
      stack_.erase(cur);
      meta_.erase(mit);
    }
  }
}

void LirsCache::hookHit(const std::string& key) {
  auto& meta = meta_.at(key);
  if (meta.state == State::kLir) {
    const bool wasBottom = meta.inStack && meta.stackIt == std::prev(stack_.end());
    stackErase(key, meta);
    stackPushFront(key, meta);
    if (wasBottom) pruneStack();
    return;
  }
  SIMFS_CHECK(meta.state == State::kHirResident);
  if (meta.inStack) {
    // Short inter-reference recency: promote to LIR.
    stackErase(key, meta);
    queueErase(key, meta);
    meta.state = State::kLir;
    ++nLir_;
    stackPushFront(key, meta);
    if (nLir_ > llirs_) demoteBottomLir();
  } else {
    // Long recency: stay HIR, refresh both stack and queue position.
    stackPushFront(key, meta);
    queueErase(key, meta);
    queuePushBack(key, meta);
  }
}

void LirsCache::hookInsert(const std::string& key, double /*cost*/) {
  auto it = meta_.find(key);
  if (it != meta_.end() && it->second.state == State::kGhost) {
    // Re-reference of a ghost within the stack: insert as LIR.
    auto& meta = it->second;
    stackErase(key, meta);
    meta.state = State::kLir;
    ++nLir_;
    stackPushFront(key, meta);
    if (nLir_ > llirs_) demoteBottomLir();
    boundGhosts();
    return;
  }
  Meta meta;
  if (nLir_ < llirs_) {
    // Cold start: the first Llirs distinct entries seed the LIR set.
    meta.state = State::kLir;
    ++nLir_;
    stackPushFront(key, meta);
  } else {
    meta.state = State::kHirResident;
    stackPushFront(key, meta);
    queuePushBack(key, meta);
  }
  meta_[key] = meta;
  boundGhosts();
}

void LirsCache::hookRemove(const std::string& key, bool evicted) {
  auto it = meta_.find(key);
  if (it == meta_.end()) return;
  auto& meta = it->second;
  if (meta.state == State::kHirResident) {
    queueErase(key, meta);
    if (evicted && meta.inStack) {
      meta.state = State::kGhost;  // keep history in the stack
    } else {
      stackErase(key, meta);
      meta_.erase(it);
    }
  } else if (meta.state == State::kLir) {
    stackErase(key, meta);
    --nLir_;
    meta_.erase(it);
    pruneStack();
  } else {
    stackErase(key, meta);
    meta_.erase(it);
  }
}

std::optional<std::string> LirsCache::chooseVictim() {
  for (const auto& key : queue_) {
    if (isEvictable(key)) return key;
    bumpPinSkips();
  }
  // Every resident HIR is pinned (or Q empty): fall back to the coldest
  // unpinned LIR entry, scanning the stack bottom-up.
  for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
    const auto mit = meta_.find(*it);
    if (mit == meta_.end() || mit->second.state != State::kLir) continue;
    if (isEvictable(*it)) return *it;
    bumpPinSkips();
  }
  return std::nullopt;
}

}  // namespace simfs::cache
