#include "cache/lirs.hpp"

#include "common/status.hpp"

#include <algorithm>

namespace simfs::cache {

LirsCache::LirsCache(std::int64_t capacityEntries, double hirFraction)
    : Cache(capacityEntries) {
  const std::int64_t cap = std::max<std::int64_t>(capacityEntries, 1);
  lhirs_ = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(static_cast<double>(cap) * hirFraction));
  llirs_ = std::max<std::int64_t>(1, cap - lhirs_);
}

void LirsCache::stackPushFront(StepIndex key, Meta& meta) {
  stack_.push_front(key);
  meta.stackIt = stack_.begin();
  meta.inStack = true;
}

void LirsCache::stackErase(Meta& meta) {
  if (!meta.inStack) return;
  stack_.erase(meta.stackIt);
  meta.inStack = false;
}

void LirsCache::stackRefresh(Meta& meta) {
  if (!meta.inStack) return;
  stack_.splice(stack_.begin(), stack_, meta.stackIt);
  meta.stackIt = stack_.begin();
}

void LirsCache::queuePushBack(StepIndex key, Meta& meta) {
  queue_.push_back(key);
  meta.queueIt = std::prev(queue_.end());
  meta.inQueue = true;
}

void LirsCache::queueErase(Meta& meta) {
  if (!meta.inQueue) return;
  queue_.erase(meta.queueIt);
  meta.inQueue = false;
}

void LirsCache::pruneStack() {
  while (!stack_.empty()) {
    const auto bottom = stack_.back();
    auto it = meta_.find(bottom);
    SIMFS_CHECK(it != meta_.end());
    if (it->second.state == State::kLir) return;
    // Non-LIR at the bottom: remove from the stack; ghosts vanish entirely.
    it->second.inStack = false;
    stack_.pop_back();
    if (it->second.state == State::kGhost) meta_.erase(it);
  }
}

void LirsCache::demoteBottomLir() {
  pruneStack();
  if (stack_.empty()) return;
  const StepIndex bottom = stack_.back();
  auto& meta = meta_.at(bottom);
  SIMFS_CHECK(meta.state == State::kLir);
  meta.state = State::kHirResident;
  stackErase(meta);
  queuePushBack(bottom, meta);
  --nLir_;
  pruneStack();
}

void LirsCache::boundGhosts() {
  // Keep |S| within 3x capacity by discarding the oldest ghosts.
  const auto bound =
      static_cast<std::size_t>(3 * std::max<std::int64_t>(capacity(), 1));
  if (stack_.size() <= bound) return;
  for (auto it = std::prev(stack_.end());
       stack_.size() > bound && it != stack_.begin();) {
    auto cur = it--;
    auto mit = meta_.find(*cur);
    SIMFS_CHECK(mit != meta_.end());
    if (mit->second.state == State::kGhost) {
      stack_.erase(cur);
      meta_.erase(mit);
    }
  }
}

void LirsCache::hookHit(Slot slot) {
  const StepIndex key = residentAt(slot).key;
  auto& meta = meta_.at(key);
  if (meta.state == State::kLir) {
    const bool wasBottom = meta.inStack && meta.stackIt == std::prev(stack_.end());
    stackRefresh(meta);
    if (wasBottom) pruneStack();
    return;
  }
  SIMFS_CHECK(meta.state == State::kHirResident);
  if (meta.inStack) {
    // Short inter-reference recency: promote to LIR.
    stackErase(meta);
    queueErase(meta);
    meta.state = State::kLir;
    ++nLir_;
    stackPushFront(key, meta);
    if (nLir_ > llirs_) demoteBottomLir();
  } else {
    // Long recency: stay HIR, refresh both stack and queue position.
    stackPushFront(key, meta);
    queueErase(meta);
    queuePushBack(key, meta);
  }
}

void LirsCache::hookInsert(Slot slot, double /*cost*/) {
  const StepIndex key = residentAt(slot).key;
  auto it = meta_.find(key);
  if (it != meta_.end() && it->second.state == State::kGhost) {
    // Re-reference of a ghost within the stack: insert as LIR.
    auto& meta = it->second;
    stackErase(meta);
    meta.state = State::kLir;
    ++nLir_;
    stackPushFront(key, meta);
    if (nLir_ > llirs_) demoteBottomLir();
    boundGhosts();
    return;
  }
  Meta meta;
  if (nLir_ < llirs_) {
    // Cold start: the first Llirs distinct entries seed the LIR set.
    meta.state = State::kLir;
    ++nLir_;
    stackPushFront(key, meta);
  } else {
    meta.state = State::kHirResident;
    stackPushFront(key, meta);
    queuePushBack(key, meta);
  }
  meta_[key] = meta;
  boundGhosts();
}

void LirsCache::hookRemove(Slot slot, bool evicted) {
  const StepIndex key = residentAt(slot).key;
  auto it = meta_.find(key);
  if (it == meta_.end()) return;
  auto& meta = it->second;
  if (meta.state == State::kHirResident) {
    queueErase(meta);
    if (evicted && meta.inStack) {
      meta.state = State::kGhost;  // keep history in the stack
    } else {
      stackErase(meta);
      meta_.erase(it);
    }
  } else if (meta.state == State::kLir) {
    stackErase(meta);
    --nLir_;
    meta_.erase(it);
    pruneStack();
  } else {
    stackErase(meta);
    meta_.erase(it);
  }
}

Cache::Slot LirsCache::chooseVictim() {
  for (const StepIndex key : queue_) {
    const Slot s = slotOf(key);
    if (s != kNoSlot && isEvictable(s)) return s;
    bumpPinSkips();
  }
  // Every resident HIR is pinned (or Q empty): fall back to the coldest
  // unpinned LIR entry, scanning the stack bottom-up.
  for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
    const auto mit = meta_.find(*it);
    if (mit == meta_.end() || mit->second.state != State::kLir) continue;
    const Slot s = slotOf(*it);
    if (s != kNoSlot && isEvictable(s)) return s;
    bumpPinSkips();
  }
  return kNoSlot;
}

}  // namespace simfs::cache
