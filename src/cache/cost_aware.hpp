// Cost-sensitive LRU variants BCL and DCL (Sec. III-D, after Jeong &
// Dubois, "Cache replacement algorithms with nonuniform miss costs").
//
// Both keep an LRU recency order but refuse to evict a costly LRU entry
// when a more recently used, *cheaper* entry exists:
//   victim = first entry, scanning from the LRU end towards MRU, whose
//            miss cost is lower than the LRU's; fallback = the LRU.
// When the LRU is spared, its cost is depreciated so a costly but
// rarely-used entry cannot forever deflect evictions onto cheap,
// highly-reused entries:
//   * BCL depreciates immediately, as soon as the LRU is not evicted;
//   * DCL depreciates lazily — only once an entry that was evicted in
//     place of the LRU is re-accessed before the LRU itself is touched
//     (evidence the deflection actually hurt).
//
// In SimFS the miss cost of an output step is its distance (in output
// steps to re-simulate) from the closest previous restart step.
#pragma once

#include "cache/lru.hpp"

#include <list>
#include <unordered_map>

namespace simfs::cache {

/// Common machinery for BCL/DCL: cost-guided victim selection over the
/// inherited intrusive LRU recency order.
///
/// The deflection search is bounded to a window above the LRU (a quarter
/// of the capacity), following Jeong & Dubois' bounded candidate sets:
/// an unbounded search degenerates on scan workloads, where it evicts
/// mid-recency entries that trailing analyses are about to reuse.
class CostAwareLruCache : public LruCache {
 public:
  explicit CostAwareLruCache(std::int64_t capacityEntries)
      : LruCache(capacityEntries),
        searchDepth_(std::max<std::int64_t>(1, capacityEntries / 4)) {}

 protected:
  /// Outcome of one victim-selection round, given to the depreciation hook.
  struct Selection {
    Slot victim = kNoSlot;  ///< chosen victim (may equal lru)
    Slot lru = kNoSlot;     ///< the least-recent evictable entry
    double victimCost = 0.0;
    double lruCost = 0.0;
    bool sparedLru = false;  ///< true when victim != lru
  };

  [[nodiscard]] Slot chooseVictim() final;

  /// Depreciation policy: called after every selection that spared the LRU.
  virtual void onLruSpared(const Selection& sel) = 0;

 private:
  [[nodiscard]] std::optional<Selection> select();

  std::int64_t searchDepth_;
};

/// Basic Cost-sensitive LRU: immediate depreciation.
class BclCache final : public CostAwareLruCache {
 public:
  explicit BclCache(std::int64_t capacityEntries)
      : CostAwareLruCache(capacityEntries) {}

  [[nodiscard]] const char* name() const noexcept override { return "BCL"; }

 protected:
  void onLruSpared(const Selection& sel) override;
};

/// Dynamic Cost-sensitive LRU: depreciation deferred until a deflected
/// victim is re-accessed before the spared LRU.
class DclCache final : public CostAwareLruCache {
 public:
  explicit DclCache(std::int64_t capacityEntries)
      : CostAwareLruCache(capacityEntries) {}

  [[nodiscard]] const char* name() const noexcept override { return "DCL"; }

 protected:
  void onLruSpared(const Selection& sel) override;
  void hookMiss(StepIndex key) override;
  void hookInsert(Slot slot, double cost) override;

 private:
  struct Deflection {
    StepIndex sparedLru = kNoStep;
    double victimCost = 0.0;
    std::uint64_t evictSeq = 0;
  };

  /// Ghosts of entries evicted instead of the LRU, bounded to capacity.
  std::unordered_map<StepIndex, Deflection> ghosts_;
  std::list<StepIndex> ghostOrder_;  // front = oldest
};

}  // namespace simfs::cache
