#include "cache/arc.hpp"

#include "common/status.hpp"

#include <algorithm>

namespace simfs::cache {

ArcCache::ArcCache(std::int64_t capacityEntries) : Cache(capacityEntries) {}

std::list<StepIndex>& ArcCache::listOf(Where w) noexcept {
  switch (w) {
    case Where::kT1: return t1_;
    case Where::kT2: return t2_;
    case Where::kB1: return b1_;
    case Where::kB2: return b2_;
  }
  return t1_;  // unreachable
}

void ArcCache::moveTo(Meta& meta, Where dst) {
  auto& dstList = listOf(dst);
  // Splice the node across lists: O(1), no allocation.
  dstList.splice(dstList.begin(), listOf(meta.where), meta.it);
  meta.where = dst;
  meta.it = dstList.begin();
}

void ArcCache::dropFrom(StepIndex key) {
  const auto it = meta_.find(key);
  if (it == meta_.end()) return;
  listOf(it->second.where).erase(it->second.it);
  meta_.erase(it);
}

void ArcCache::trimGhosts() {
  const auto c = static_cast<std::size_t>(std::max<std::int64_t>(capacity(), 1));
  // |T1|+|B1| <= c and total directory <= 2c, per the ARC paper's DBL(2c).
  while (t1_.size() + b1_.size() > c && !b1_.empty()) {
    dropFrom(b1_.back());
  }
  while (t1_.size() + t2_.size() + b1_.size() + b2_.size() > 2 * c &&
         !b2_.empty()) {
    dropFrom(b2_.back());
  }
}

void ArcCache::hookHit(Slot slot) {
  auto& meta = meta_.at(residentAt(slot).key);
  SIMFS_CHECK(meta.where == Where::kT1 || meta.where == Where::kT2);
  moveTo(meta, Where::kT2);
}

void ArcCache::hookMiss(StepIndex key) {
  lastMissWasB2Ghost_ = false;
  const auto it = meta_.find(key);
  if (it == meta_.end()) return;
  const double b1 = static_cast<double>(std::max<std::size_t>(b1_.size(), 1));
  const double b2 = static_cast<double>(std::max<std::size_t>(b2_.size(), 1));
  const double c = static_cast<double>(std::max<std::int64_t>(capacity(), 1));
  if (it->second.where == Where::kB1) {
    p_ = std::min(c, p_ + std::max(1.0, b2 / b1));
  } else if (it->second.where == Where::kB2) {
    p_ = std::max(0.0, p_ - std::max(1.0, b1 / b2));
    lastMissWasB2Ghost_ = true;
  }
}

void ArcCache::hookInsert(Slot slot, double /*cost*/) {
  const StepIndex key = residentAt(slot).key;
  const auto it = meta_.find(key);
  if (it != meta_.end()) {
    // Ghost re-entry: frequency evidence, insert into T2.
    SIMFS_CHECK(it->second.where == Where::kB1 || it->second.where == Where::kB2);
    moveTo(it->second, Where::kT2);
  } else {
    Meta meta;
    t1_.push_front(key);
    meta.where = Where::kT1;
    meta.it = t1_.begin();
    meta_[key] = meta;
  }
  trimGhosts();
}

void ArcCache::hookRemove(Slot slot, bool evicted) {
  const StepIndex key = residentAt(slot).key;
  const auto it = meta_.find(key);
  if (it == meta_.end()) return;
  auto& meta = it->second;
  SIMFS_CHECK(meta.where == Where::kT1 || meta.where == Where::kT2);
  if (evicted) {
    // Leave a ghost in the matching history list.
    moveTo(meta, meta.where == Where::kT1 ? Where::kB1 : Where::kB2);
    trimGhosts();
  } else {
    listOf(meta.where).erase(meta.it);
    meta_.erase(it);
  }
}

bool ArcCache::preferT1Victim() const noexcept {
  const auto t1 = static_cast<double>(t1_.size());
  if (t1_.empty()) return false;
  return t1 > p_ || (lastMissWasB2Ghost_ && t1 == p_);
}

Cache::Slot ArcCache::chooseVictim() {
  const bool preferT1 = preferT1Victim();
  auto scan = [&](const std::list<StepIndex>& lst) -> Slot {
    for (auto it = lst.rbegin(); it != lst.rend(); ++it) {
      const Slot s = slotOf(*it);
      if (s != kNoSlot && isEvictable(s)) return s;
      bumpPinSkips();
    }
    return kNoSlot;
  };
  if (preferT1) {
    if (const Slot v = scan(t1_); v != kNoSlot) return v;
    return scan(t2_);
  }
  if (const Slot v = scan(t2_); v != kNoSlot) return v;
  return scan(t1_);
}

}  // namespace simfs::cache
