#include "simmodel/context.hpp"

#include "common/checksum.hpp"
#include "common/strings.hpp"

#include <fstream>
#include <sstream>

namespace simfs::simmodel {

Result<PolicyKind> parsePolicyKind(const std::string& name) {
  const auto lower = str::toLower(name);
  if (lower == "lru") return PolicyKind::kLru;
  if (lower == "lirs") return PolicyKind::kLirs;
  if (lower == "arc") return PolicyKind::kArc;
  if (lower == "bcl") return PolicyKind::kBcl;
  if (lower == "dcl") return PolicyKind::kDcl;
  if (lower == "fifo") return PolicyKind::kFifo;
  if (lower == "random") return PolicyKind::kRandom;
  return errInvalidArgument("unknown replacement policy: " + name);
}

const char* policyKindName(PolicyKind kind) noexcept {
  switch (kind) {
    case PolicyKind::kLru: return "LRU";
    case PolicyKind::kLirs: return "LIRS";
    case PolicyKind::kArc: return "ARC";
    case PolicyKind::kBcl: return "BCL";
    case PolicyKind::kDcl: return "DCL";
    case PolicyKind::kFifo: return "FIFO";
    case PolicyKind::kRandom: return "RANDOM";
  }
  return "?";
}

void ChecksumMap::record(const std::string& filename, std::uint64_t digest) {
  map_[filename] = digest;
}

std::optional<std::uint64_t> ChecksumMap::lookup(const std::string& filename) const {
  const auto it = map_.find(filename);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

Result<bool> ChecksumMap::matches(const std::string& filename,
                                  std::uint64_t digest) const {
  const auto ref = lookup(filename);
  if (!ref) return errNotFound("bitrep: no recorded checksum for " + filename);
  return *ref == digest;
}

std::string ChecksumMap::serialize() const {
  std::string out;
  for (const auto& [name, digest] : map_) {
    out += name;
    out += '\t';
    out += digestToHex(digest);
    out += '\n';
  }
  return out;
}

Result<ChecksumMap> ChecksumMap::deserialize(const std::string& text) {
  ChecksumMap map;
  int lineno = 0;
  for (const auto& line : str::split(text, '\n')) {
    ++lineno;
    const auto trimmed = str::trim(line);
    if (trimmed.empty()) continue;
    const auto tab = trimmed.find('\t');
    if (tab == std::string_view::npos) {
      return errInvalidArgument(
          str::format("checksum map: missing tab at line %d", lineno));
    }
    const std::string name(trimmed.substr(0, tab));
    const std::string hex(trimmed.substr(tab + 1));
    char* end = nullptr;
    const auto digest = std::strtoull(hex.c_str(), &end, 16);
    if (end != hex.c_str() + hex.size() || hex.empty()) {
      return errInvalidArgument(
          str::format("checksum map: bad digest at line %d", lineno));
    }
    map.record(name, digest);
  }
  return map;
}

Status ChecksumMap::save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return errIoError("checksum map: cannot write " + path);
  out << serialize();
  return out ? Status::ok() : errIoError("checksum map: short write " + path);
}

Result<ChecksumMap> ChecksumMap::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return errIoError("checksum map: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return deserialize(ss.str());
}

}  // namespace simfs::simmodel
