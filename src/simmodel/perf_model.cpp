#include "simmodel/perf_model.hpp"

#include <algorithm>
#include <cmath>

namespace simfs::simmodel {

PerfModel::PerfModel(std::vector<PerfLevel> levels) : levels_(std::move(levels)) {
  SIMFS_CHECK(!levels_.empty());
  for (const auto& l : levels_) {
    SIMFS_CHECK(l.nodes >= 1);
    SIMFS_CHECK(l.tauSim >= 0);
    SIMFS_CHECK(l.alphaSim >= 0);
  }
}

PerfModel::PerfModel(int nodes, VDuration tauSim, VDuration alphaSim)
    : PerfModel(std::vector<PerfLevel>{PerfLevel{nodes, tauSim, alphaSim}}) {}

PerfModel PerfModel::strongScaling(int baseNodes, VDuration tauSim,
                                   VDuration alphaSim, int maxLevel,
                                   double efficiency) {
  SIMFS_CHECK(maxLevel >= 0);
  SIMFS_CHECK(efficiency > 0.0 && efficiency <= 1.0);
  std::vector<PerfLevel> levels;
  levels.reserve(static_cast<std::size_t>(maxLevel) + 1);
  double tau = static_cast<double>(tauSim);
  int nodes = baseNodes;
  for (int l = 0; l <= maxLevel; ++l) {
    levels.push_back(PerfLevel{nodes, static_cast<VDuration>(tau), alphaSim});
    // Doubling nodes divides tau by (1 + efficiency): eff=1 halves it.
    tau /= (1.0 + efficiency);
    nodes *= 2;
  }
  return PerfModel(std::move(levels));
}

const PerfLevel& PerfModel::at(int level) const noexcept {
  const int clamped = std::clamp(level, 0, maxLevel());
  return levels_[static_cast<std::size_t>(clamped)];
}

VDuration PerfModel::simTime(std::int64_t nSteps, int level) const noexcept {
  const auto& l = at(level);
  return l.alphaSim + nSteps * l.tauSim;
}

bool PerfModel::levelImproves(int fromLevel) const noexcept {
  if (fromLevel >= maxLevel()) return false;
  return at(fromLevel + 1).tauSim < at(fromLevel).tauSim;
}

}  // namespace simfs::simmodel
