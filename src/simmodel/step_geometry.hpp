// Simulation step arithmetic (Sec. II-A, Fig. 3).
//
// A forward-in-time simulation advances in timesteps t1..tn and is
// configured by:
//   delta_d — timesteps between two output steps,
//   delta_r — timesteps between two restart steps.
// Output step d_i lives at timestep i*delta_d; restart step r_j at
// j*delta_r. To produce d_i the simulation restarts from
// R(d_i) = floor(i*delta_d / delta_r) and, to exploit spatial locality,
// runs until at least the next restart step ceil(i*delta_d / delta_r).
#pragma once

#include "common/status.hpp"
#include "common/types.hpp"

#include <cstdint>

namespace simfs::simmodel {

/// Immutable description of a simulation's output/restart step layout.
class StepGeometry {
 public:
  /// `deltaD`, `deltaR` in timesteps (both >= 1); `numTimesteps` bounds the
  /// timeline (0 = unbounded, used when the total length is irrelevant).
  StepGeometry(std::int64_t deltaD, std::int64_t deltaR,
               std::int64_t numTimesteps = 0);

  [[nodiscard]] std::int64_t deltaD() const noexcept { return delta_d_; }
  [[nodiscard]] std::int64_t deltaR() const noexcept { return delta_r_; }
  [[nodiscard]] std::int64_t numTimesteps() const noexcept { return num_timesteps_; }

  /// Number of output steps on a bounded timeline: floor(n / delta_d).
  [[nodiscard]] std::int64_t numOutputSteps() const noexcept;

  /// Number of restart steps on a bounded timeline: floor(n / delta_r).
  [[nodiscard]] std::int64_t numRestartSteps() const noexcept;

  /// Timestep at which output step i is emitted.
  [[nodiscard]] std::int64_t outputTimestep(StepIndex i) const noexcept {
    return i * delta_d_;
  }

  /// Timestep of restart step r.
  [[nodiscard]] std::int64_t restartTimestep(RestartIndex r) const noexcept {
    return r * delta_r_;
  }

  /// R(d_i) = floor(i*delta_d / delta_r): the restart step a re-simulation
  /// producing d_i must start from.
  [[nodiscard]] RestartIndex restartFor(StepIndex i) const noexcept;

  /// ceil(i*delta_d / delta_r): the restart step a re-simulation producing
  /// d_i runs until (at least), per the spatial-locality rule.
  [[nodiscard]] RestartIndex nextRestartAfter(StepIndex i) const noexcept;

  /// First output step whose timestep is >= restart r's timestep.
  [[nodiscard]] StepIndex firstStepAtOrAfterRestart(RestartIndex r) const noexcept;

  /// Last output step strictly before restart r's timestep... i.e. the final
  /// output step a re-simulation [r0, r) produces. For r's timestep exactly
  /// on an output step, that step belongs to the next interval's start but
  /// is still produced by a run "until at least restart r"; we therefore
  /// include it (run semantics are inclusive of the restart-boundary step).
  [[nodiscard]] StepIndex lastStepOfRunUntil(RestartIndex r) const noexcept;

  /// Miss cost of output step i in *output steps to simulate*: the number
  /// of output steps a re-simulation must produce, from the first one after
  /// R(d_i) through d_i itself (>= 1). The paper's BCL/DCL use this as the
  /// nonuniform miss cost.
  [[nodiscard]] std::int64_t missCostSteps(StepIndex i) const noexcept;

  /// Output steps per restart interval: delta_r / delta_d as a rounded-up
  /// integer (the paper's deltaR/deltaD appears in prefetch formulas).
  [[nodiscard]] std::int64_t stepsPerRestartInterval() const noexcept;

  /// Rounds a desired re-simulation length (in output steps) up to the next
  /// restart-interval multiple, per Sec. IV-B1a ("We always round n up to
  /// the nearest restart interval multiple").
  [[nodiscard]] std::int64_t roundUpToRestartMultiple(std::int64_t nSteps) const noexcept;

  /// True if the step exists on the bounded timeline (always true when
  /// unbounded and i >= 0).
  [[nodiscard]] bool validStep(StepIndex i) const noexcept;

  friend bool operator==(const StepGeometry&, const StepGeometry&) = default;

 private:
  std::int64_t delta_d_;
  std::int64_t delta_r_;
  std::int64_t num_timesteps_;
};

}  // namespace simfs::simmodel
