// Naming convention for output/restart step files (Sec. III-B).
//
// The paper requires the simulation driver to provide a function key() such
// that key(d_i) > key(d_j) iff d_i is produced after d_j. FilenameCodec is
// the default convention: zero-padded step indices between a prefix and a
// suffix, e.g. "out_0000000042.snc". key() is the parsed index.
#pragma once

#include "common/status.hpp"
#include "common/types.hpp"

#include <string>
#include <string_view>

namespace simfs::simmodel {

/// Bidirectional filename <-> step-index mapping for one context.
class FilenameCodec {
 public:
  /// Defaults produce "out_<10 digits>.snc" / "restart_<10 digits>.rst".
  FilenameCodec(std::string outputPrefix = "out_",
                std::string outputSuffix = ".snc",
                std::string restartPrefix = "restart_",
                std::string restartSuffix = ".rst", int padWidth = 10);

  /// Renders the output-step filename for index i (>= 0).
  [[nodiscard]] std::string outputFile(StepIndex i) const;

  /// Renders the restart-step filename for index r (>= 0).
  [[nodiscard]] std::string restartFile(RestartIndex r) const;

  /// The paper's key(): parses an output filename back to its index.
  /// Monotone: later steps map to larger keys.
  [[nodiscard]] Result<StepIndex> outputKey(std::string_view filename) const;

  /// Parses a restart filename back to its index.
  [[nodiscard]] Result<RestartIndex> restartKey(std::string_view filename) const;

  /// True if the name matches the output-step convention.
  [[nodiscard]] bool isOutputFile(std::string_view filename) const noexcept;

  /// True if the name matches the restart-step convention.
  [[nodiscard]] bool isRestartFile(std::string_view filename) const noexcept;

  /// Allocation-free parse of an output filename; true on match with the
  /// index stored in *step. The DV hot path uses this instead of the
  /// Result-returning outputKey (whose error branch builds a message).
  [[nodiscard]] bool matchOutput(std::string_view filename,
                                 StepIndex* step) const noexcept;

  /// Allocation-free parse of a restart filename.
  [[nodiscard]] bool matchRestart(std::string_view filename,
                                  RestartIndex* restart) const noexcept;

  /// Convention components, so the geometry wire op (kGeometryAck) can ship
  /// the output-name convention to remote POSIX adapters.
  [[nodiscard]] const std::string& outputPrefix() const noexcept {
    return output_prefix_;
  }
  [[nodiscard]] const std::string& outputSuffix() const noexcept {
    return output_suffix_;
  }
  [[nodiscard]] int padWidth() const noexcept { return pad_width_; }

 private:
  [[nodiscard]] static bool matchIndex(std::string_view filename,
                                       std::string_view prefix,
                                       std::string_view suffix,
                                       std::int64_t* out) noexcept;

  [[nodiscard]] Result<std::int64_t> parseIndex(std::string_view filename,
                                                std::string_view prefix,
                                                std::string_view suffix) const;

  std::string output_prefix_;
  std::string output_suffix_;
  std::string restart_prefix_;
  std::string restart_suffix_;
  int pad_width_;
};

}  // namespace simfs::simmodel
