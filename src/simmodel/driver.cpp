#include "simmodel/driver.hpp"

#include "common/checksum.hpp"
#include "common/ini.hpp"
#include "common/strings.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace simfs::simmodel {

Result<StepIndex> SimulationDriver::key(std::string_view filename) const {
  // Single-pass, allocation-free parse on the match path; the
  // message-building outputKey only runs to produce the error.
  StepIndex step = 0;
  if (config().codec.matchOutput(filename, &step)) return step;
  return config().codec.outputKey(filename);
}

JobSpec SimulationDriver::makeJob(StepIndex start, StepIndex stop,
                                  int parallelismLevel) const {
  const auto& cfg = config();
  JobSpec spec;
  spec.context = cfg.name;
  spec.startStep = start;
  spec.stopStep = std::max(start, stop);
  spec.parallelismLevel =
      std::clamp(parallelismLevel, 0, cfg.perf.maxLevel());
  const int nodes = cfg.perf.at(spec.parallelismLevel).nodes;
  spec.script = str::format(
      "#!/bin/sh\n# job for context %s\nsimulate --start %lld --stop %lld "
      "--nodes %d\n",
      cfg.name.c_str(), static_cast<long long>(spec.startStep),
      static_cast<long long>(spec.stopStep), nodes);
  return spec;
}

std::uint64_t SimulationDriver::checksum(std::string_view content) const {
  return fnv1a64(content);
}

namespace {

/// Driver loaded from a .drv INI description; job scripts rendered from a
/// user template so site-specific batch incantations stay in the file.
class IniDriver final : public SimulationDriver {
 public:
  IniDriver(ContextConfig config, std::string scriptTemplate)
      : config_(std::move(config)),
        script_template_(std::move(scriptTemplate)) {}

  [[nodiscard]] const ContextConfig& config() const noexcept override {
    return config_;
  }

  [[nodiscard]] JobSpec makeJob(StepIndex start, StepIndex stop,
                                int parallelismLevel) const override {
    JobSpec spec = SimulationDriver::makeJob(start, stop, parallelismLevel);
    if (!script_template_.empty()) {
      std::string s = script_template_;
      s = str::replaceAll(s, "{start}",
                          str::format("%lld", static_cast<long long>(spec.startStep)));
      s = str::replaceAll(s, "{stop}",
                          str::format("%lld", static_cast<long long>(spec.stopStep)));
      s = str::replaceAll(
          s, "{nodes}",
          str::format("%d", config_.perf.at(spec.parallelismLevel).nodes));
      spec.script = s;
    }
    return spec;
  }

 private:
  ContextConfig config_;
  std::string script_template_;
};

}  // namespace

Result<std::unique_ptr<SimulationDriver>> parseDriver(const std::string& text) {
  auto doc = IniDoc::parse(text);
  if (!doc) return doc.status();

  ContextConfig cfg;
  cfg.name = doc->getOr("context", "name", "default");

  const auto deltaD = doc->getIntOr("context", "delta_d", 1);
  const auto deltaR = doc->getIntOr("context", "delta_r", 1);
  const auto numTs = doc->getIntOr("context", "num_timesteps", 0);
  if (deltaD < 1 || deltaR < 1 || numTs < 0) {
    return errInvalidArgument("driver: delta_d/delta_r must be >= 1");
  }
  cfg.geometry = StepGeometry(deltaD, deltaR, numTs);

  cfg.outputStepBytes =
      static_cast<Bytes>(doc->getIntOr("context", "output_bytes", 1));
  cfg.restartStepBytes =
      static_cast<Bytes>(doc->getIntOr("context", "restart_bytes", 1));
  cfg.cacheQuotaBytes =
      static_cast<Bytes>(doc->getIntOr("context", "cache_quota_bytes", 0));

  const auto policyName = doc->getOr("context", "policy", "DCL");
  auto policy = parsePolicyKind(policyName);
  if (!policy) return policy.status();
  cfg.policy = *policy;

  cfg.sMax = static_cast<int>(doc->getIntOr("context", "s_max", 8));
  if (cfg.sMax < 1) return errInvalidArgument("driver: s_max must be >= 1");
  cfg.emaSmoothing = doc->getDoubleOr("context", "ema_smoothing", 0.5);
  if (cfg.emaSmoothing <= 0.0 || cfg.emaSmoothing > 1.0) {
    return errInvalidArgument("driver: ema_smoothing must be in (0,1]");
  }
  cfg.doublingRampUp = doc->getIntOr("context", "doubling_ramp", 0) != 0;
  cfg.prefetchEnabled = doc->getIntOr("context", "prefetch", 1) != 0;
  cfg.bandwidthMatchingEnabled =
      doc->getIntOr("context", "bandwidth_matching", 1) != 0;

  const auto nodes = static_cast<int>(doc->getIntOr("perf", "nodes", 1));
  const auto tauMs = doc->getDoubleOr("perf", "tau_sim_ms", 1000.0);
  const auto alphaMs = doc->getDoubleOr("perf", "alpha_sim_ms", 0.0);
  const auto maxLevel = static_cast<int>(doc->getIntOr("perf", "max_level", 0));
  const auto efficiency = doc->getDoubleOr("perf", "efficiency", 0.8);
  if (nodes < 1 || tauMs < 0 || alphaMs < 0 || maxLevel < 0) {
    return errInvalidArgument("driver: invalid [perf] section");
  }
  const auto tau = static_cast<VDuration>(tauMs * vtime::kMillisecond);
  const auto alpha = static_cast<VDuration>(alphaMs * vtime::kMillisecond);
  cfg.perf = (maxLevel == 0)
                 ? PerfModel(nodes, tau, alpha)
                 : PerfModel::strongScaling(nodes, tau, alpha, maxLevel,
                                            efficiency);

  cfg.codec = FilenameCodec(
      doc->getOr("naming", "output_prefix", "out_"),
      doc->getOr("naming", "output_suffix", ".snc"),
      doc->getOr("naming", "restart_prefix", "restart_"),
      doc->getOr("naming", "restart_suffix", ".rst"),
      static_cast<int>(doc->getIntOr("naming", "pad_width", 10)));

  std::string scriptTemplate = doc->getOr("job", "script_template", "");
  return std::unique_ptr<SimulationDriver>(
      std::make_unique<IniDriver>(std::move(cfg), std::move(scriptTemplate)));
}

Result<std::unique_ptr<SimulationDriver>> loadDriverFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return errIoError("driver: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parseDriver(ss.str());
}

}  // namespace simfs::simmodel
