// Simulation contexts (Sec. II-A "Simulation Contexts").
//
// A simulation context = a simulator + one of its configurations. It fixes
// the step geometry, file sizes, the storage area (directory + quota), the
// cache replacement scheme, the prefetching knobs, and the performance
// model. Analyses select a context by name (environment variable or
// SIMFS_Init argument).
#pragma once

#include "common/status.hpp"
#include "common/types.hpp"
#include "simmodel/filename_codec.hpp"
#include "simmodel/perf_model.hpp"
#include "simmodel/step_geometry.hpp"

#include <map>
#include <optional>
#include <string>

namespace simfs::simmodel {

/// Cache replacement scheme selector (Sec. III-D).
enum class PolicyKind {
  kLru,
  kLirs,
  kArc,
  kBcl,
  kDcl,
  kFifo,    // baseline beyond the paper
  kRandom,  // baseline beyond the paper
};

/// Parses "LRU|LIRS|ARC|BCL|DCL|FIFO|RANDOM" (case-insensitive).
[[nodiscard]] Result<PolicyKind> parsePolicyKind(const std::string& name);

/// Stable uppercase name.
[[nodiscard]] const char* policyKindName(PolicyKind kind) noexcept;

/// Full configuration of one simulation context.
struct ContextConfig {
  std::string name = "default";

  /// Output/restart layout.
  StepGeometry geometry{1, 1, 0};

  /// Output-step file size s_o and restart file size s_r.
  Bytes outputStepBytes = 1;
  Bytes restartStepBytes = 1;

  /// Storage-area quota for cached output steps (0 = unlimited).
  Bytes cacheQuotaBytes = 0;

  /// Replacement scheme; the paper fixes DCL after the Fig. 5 study.
  PolicyKind policy = PolicyKind::kDcl;

  /// Max number of simultaneously running re-simulations (s_max).
  int sMax = 8;

  /// Smoothing factor of the restart-latency EMA (Sec. IV-C1c).
  double emaSmoothing = 0.5;

  /// If true, strategy (2) ramps s up by doubling (1,2,4,...) instead of
  /// launching s_opt re-simulations immediately (Sec. IV-B1b).
  bool doublingRampUp = false;

  /// Master switch for the prefetch agents.
  bool prefetchEnabled = true;

  /// Ablation knob separating Sec. IV-B1a from IV-B1b: when false the
  /// agent only masks restart latency (one re-simulation at a time,
  /// Fig. 8); when true it additionally matches the analysis bandwidth
  /// with parallel re-simulations (Fig. 9).
  bool bandwidthMatchingEnabled = true;

  /// Timing model per parallelism level.
  PerfModel perf{1, vtime::kSecond, 0};

  /// Filename convention.
  FilenameCodec codec{};

  /// Derived: cache capacity in whole output steps.
  [[nodiscard]] std::int64_t cacheCapacitySteps() const noexcept {
    if (cacheQuotaBytes == 0 || outputStepBytes == 0) return 0;
    return static_cast<std::int64_t>(cacheQuotaBytes / outputStepBytes);
  }
};

/// Checksum registry backing SIMFS_Bitrep (Sec. III-C2): filename ->
/// digest recorded when the initial simulation ran. Serializable so the
/// "command line utility" workflow (record at first run, verify later)
/// works across processes.
class ChecksumMap {
 public:
  /// Records (or overwrites) a file's reference digest.
  void record(const std::string& filename, std::uint64_t digest);

  /// Reference digest if recorded.
  [[nodiscard]] std::optional<std::uint64_t> lookup(const std::string& filename) const;

  /// Compares a candidate digest against the recorded one.
  /// Returns kNotFound if the file was never recorded.
  [[nodiscard]] Result<bool> matches(const std::string& filename,
                                     std::uint64_t digest) const;

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }

  /// Serializes as "name<TAB>hexdigest" lines.
  [[nodiscard]] std::string serialize() const;

  /// Parses the serialize() format.
  [[nodiscard]] static Result<ChecksumMap> deserialize(const std::string& text);

  /// Saves to / loads from a file.
  [[nodiscard]] Status save(const std::string& path) const;
  [[nodiscard]] static Result<ChecksumMap> load(const std::string& path);

 private:
  std::map<std::string, std::uint64_t> map_;
};

}  // namespace simfs::simmodel
