// Simulation performance model (Sec. IV-A).
//
// The paper models a re-simulation as: restart latency alpha_sim(p)
// followed by one output step every tau_sim(p), where p is a *parallelism
// level* — an integer 0..maxLevel that the driver maps to a concrete node
// count (so the DV can scale parallelism without knowing the simulator's
// allocation constraints, Sec. III-B).
//
//   T_sim(n, p) = alpha_sim(p) + n * tau_sim(p)
#pragma once

#include "common/status.hpp"
#include "common/types.hpp"

#include <vector>

namespace simfs::simmodel {

/// Per-level timing and node count.
struct PerfLevel {
  int nodes = 1;            ///< compute nodes used at this level
  VDuration tauSim = 0;     ///< inter-production time per output step
  VDuration alphaSim = 0;   ///< restart latency (excl. queuing time)
};

/// Table-driven performance model over parallelism levels.
class PerfModel {
 public:
  /// Builds from explicit per-level entries (at least one).
  explicit PerfModel(std::vector<PerfLevel> levels);

  /// Convenience single-level model (fixed parallelism, like the paper's
  /// COSMO context that always runs at its optimal P=100).
  PerfModel(int nodes, VDuration tauSim, VDuration alphaSim);

  /// Builds a strong-scaling ladder: level L uses baseNodes*2^L nodes and
  /// tau shrinks with the given per-doubling efficiency (0 < eff <= 1;
  /// eff = 1 is perfect scaling, 0.5 means doubling nodes buys nothing).
  /// alpha is level-independent (restart latency rarely scales).
  [[nodiscard]] static PerfModel strongScaling(int baseNodes, VDuration tauSim,
                                               VDuration alphaSim,
                                               int maxLevel, double efficiency);

  /// Highest valid level index.
  [[nodiscard]] int maxLevel() const noexcept {
    return static_cast<int>(levels_.size()) - 1;
  }

  /// Level entry; level is clamped into the valid range.
  [[nodiscard]] const PerfLevel& at(int level) const noexcept;

  /// T_sim(n, p): time to simulate n output steps at the given level.
  [[nodiscard]] VDuration simTime(std::int64_t nSteps, int level) const noexcept;

  /// True if raising the level actually shortens tau_sim (the prefetcher's
  /// strategy (1) stops when there is no benefit, Sec. IV-B1b).
  [[nodiscard]] bool levelImproves(int fromLevel) const noexcept;

 private:
  std::vector<PerfLevel> levels_;
};

}  // namespace simfs::simmodel
