#include "simmodel/step_geometry.hpp"

#include <cassert>

namespace simfs::simmodel {

StepGeometry::StepGeometry(std::int64_t deltaD, std::int64_t deltaR,
                           std::int64_t numTimesteps)
    : delta_d_(deltaD), delta_r_(deltaR), num_timesteps_(numTimesteps) {
  SIMFS_CHECK(deltaD >= 1);
  SIMFS_CHECK(deltaR >= 1);
  SIMFS_CHECK(numTimesteps >= 0);
}

std::int64_t StepGeometry::numOutputSteps() const noexcept {
  return num_timesteps_ / delta_d_;
}

std::int64_t StepGeometry::numRestartSteps() const noexcept {
  return num_timesteps_ / delta_r_;
}

RestartIndex StepGeometry::restartFor(StepIndex i) const noexcept {
  assert(i >= 0);
  return (i * delta_d_) / delta_r_;
}

RestartIndex StepGeometry::nextRestartAfter(StepIndex i) const noexcept {
  assert(i >= 0);
  const std::int64_t t = i * delta_d_;
  // ceil(t / delta_r), except that a step exactly on a restart boundary
  // rolls over to the *next* restart: a zero-length run would produce no
  // spatial locality at all.
  if (t % delta_r_ == 0) return t / delta_r_ + 1;
  return (t + delta_r_ - 1) / delta_r_;
}

StepIndex StepGeometry::firstStepAtOrAfterRestart(RestartIndex r) const noexcept {
  assert(r >= 0);
  const std::int64_t t = r * delta_r_;
  return (t + delta_d_ - 1) / delta_d_;
}

StepIndex StepGeometry::lastStepOfRunUntil(RestartIndex r) const noexcept {
  assert(r >= 0);
  // A run "until at least restart r" simulates timesteps up to r*delta_r,
  // emitting every output step with timestep <= r*delta_r.
  return (r * delta_r_) / delta_d_;
}

std::int64_t StepGeometry::missCostSteps(StepIndex i) const noexcept {
  assert(i >= 0);
  const RestartIndex r = restartFor(i);
  const StepIndex first = firstStepAtOrAfterRestart(r);
  // Steps the re-simulation must produce through d_i, inclusive. When d_i
  // sits exactly on its restart step this is 1 (d_i itself), matching the
  // intuition that restart-adjacent steps are the cheapest misses.
  return (i - first) + 1;
}

std::int64_t StepGeometry::stepsPerRestartInterval() const noexcept {
  return (delta_r_ + delta_d_ - 1) / delta_d_;
}

std::int64_t StepGeometry::roundUpToRestartMultiple(std::int64_t nSteps) const noexcept {
  const std::int64_t interval = stepsPerRestartInterval();
  if (nSteps <= 0) return interval;
  return ((nSteps + interval - 1) / interval) * interval;
}

bool StepGeometry::validStep(StepIndex i) const noexcept {
  if (i < 0) return false;
  if (num_timesteps_ == 0) return true;
  return outputTimestep(i) <= num_timesteps_ && i < (num_timesteps_ / delta_d_ + 1);
}

}  // namespace simfs::simmodel
