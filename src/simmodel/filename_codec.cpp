#include "simmodel/filename_codec.hpp"

#include "common/strings.hpp"

#include <cassert>

namespace simfs::simmodel {

FilenameCodec::FilenameCodec(std::string outputPrefix, std::string outputSuffix,
                             std::string restartPrefix,
                             std::string restartSuffix, int padWidth)
    : output_prefix_(std::move(outputPrefix)),
      output_suffix_(std::move(outputSuffix)),
      restart_prefix_(std::move(restartPrefix)),
      restart_suffix_(std::move(restartSuffix)),
      pad_width_(padWidth) {
  SIMFS_CHECK(pad_width_ >= 1 && pad_width_ <= 18);
}

std::string FilenameCodec::outputFile(StepIndex i) const {
  assert(i >= 0);
  return str::format("%s%0*lld%s", output_prefix_.c_str(), pad_width_,
                     static_cast<long long>(i), output_suffix_.c_str());
}

std::string FilenameCodec::restartFile(RestartIndex r) const {
  assert(r >= 0);
  return str::format("%s%0*lld%s", restart_prefix_.c_str(), pad_width_,
                     static_cast<long long>(r), restart_suffix_.c_str());
}

Result<std::int64_t> FilenameCodec::parseIndex(std::string_view filename,
                                               std::string_view prefix,
                                               std::string_view suffix) const {
  if (!str::startsWith(filename, prefix) || !str::endsWith(filename, suffix) ||
      filename.size() <= prefix.size() + suffix.size()) {
    return errInvalidArgument("codec: name does not match convention: " +
                              std::string(filename));
  }
  const auto digits =
      filename.substr(prefix.size(), filename.size() - prefix.size() - suffix.size());
  for (char c : digits) {
    if (c < '0' || c > '9') {
      return errInvalidArgument("codec: non-numeric index in: " +
                                std::string(filename));
    }
  }
  const auto v = str::parseInt(digits);
  if (!v) {
    return errInvalidArgument("codec: unparsable index in: " +
                              std::string(filename));
  }
  return *v;
}

Result<StepIndex> FilenameCodec::outputKey(std::string_view filename) const {
  return parseIndex(filename, output_prefix_, output_suffix_);
}

Result<RestartIndex> FilenameCodec::restartKey(std::string_view filename) const {
  return parseIndex(filename, restart_prefix_, restart_suffix_);
}

bool FilenameCodec::isOutputFile(std::string_view filename) const noexcept {
  return parseIndex(filename, output_prefix_, output_suffix_).isOk();
}

bool FilenameCodec::isRestartFile(std::string_view filename) const noexcept {
  return parseIndex(filename, restart_prefix_, restart_suffix_).isOk();
}

}  // namespace simfs::simmodel
