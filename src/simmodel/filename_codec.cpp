#include "simmodel/filename_codec.hpp"

#include "common/strings.hpp"

#include <cassert>
#include <limits>

namespace simfs::simmodel {

FilenameCodec::FilenameCodec(std::string outputPrefix, std::string outputSuffix,
                             std::string restartPrefix,
                             std::string restartSuffix, int padWidth)
    : output_prefix_(std::move(outputPrefix)),
      output_suffix_(std::move(outputSuffix)),
      restart_prefix_(std::move(restartPrefix)),
      restart_suffix_(std::move(restartSuffix)),
      pad_width_(padWidth) {
  SIMFS_CHECK(pad_width_ >= 1 && pad_width_ <= 18);
}

std::string FilenameCodec::outputFile(StepIndex i) const {
  assert(i >= 0);
  return str::format("%s%0*lld%s", output_prefix_.c_str(), pad_width_,
                     static_cast<long long>(i), output_suffix_.c_str());
}

std::string FilenameCodec::restartFile(RestartIndex r) const {
  assert(r >= 0);
  return str::format("%s%0*lld%s", restart_prefix_.c_str(), pad_width_,
                     static_cast<long long>(r), restart_suffix_.c_str());
}

bool FilenameCodec::matchIndex(std::string_view filename,
                               std::string_view prefix,
                               std::string_view suffix,
                               std::int64_t* out) noexcept {
  if (filename.size() <= prefix.size() + suffix.size() ||
      !str::startsWith(filename, prefix) || !str::endsWith(filename, suffix)) {
    return false;
  }
  const auto digits = filename.substr(
      prefix.size(), filename.size() - prefix.size() - suffix.size());
  std::int64_t v = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    if (v > (std::numeric_limits<std::int64_t>::max() - (c - '0')) / 10) {
      return false;  // overflow
    }
    v = v * 10 + (c - '0');
  }
  *out = v;
  return true;
}

bool FilenameCodec::matchOutput(std::string_view filename,
                                StepIndex* step) const noexcept {
  return matchIndex(filename, output_prefix_, output_suffix_, step);
}

bool FilenameCodec::matchRestart(std::string_view filename,
                                 RestartIndex* restart) const noexcept {
  return matchIndex(filename, restart_prefix_, restart_suffix_, restart);
}

Result<std::int64_t> FilenameCodec::parseIndex(std::string_view filename,
                                               std::string_view prefix,
                                               std::string_view suffix) const {
  std::int64_t v = 0;
  if (matchIndex(filename, prefix, suffix, &v)) return v;
  return errInvalidArgument("codec: name does not match convention: " +
                            std::string(filename));
}

Result<StepIndex> FilenameCodec::outputKey(std::string_view filename) const {
  return parseIndex(filename, output_prefix_, output_suffix_);
}

Result<RestartIndex> FilenameCodec::restartKey(std::string_view filename) const {
  return parseIndex(filename, restart_prefix_, restart_suffix_);
}

bool FilenameCodec::isOutputFile(std::string_view filename) const noexcept {
  StepIndex ignored = 0;
  return matchOutput(filename, &ignored);
}

bool FilenameCodec::isRestartFile(std::string_view filename) const noexcept {
  RestartIndex ignored = 0;
  return matchRestart(filename, &ignored);
}

}  // namespace simfs::simmodel
