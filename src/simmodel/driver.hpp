// Simulation drivers (Sec. III-B "Simulator Interface").
//
// The paper attaches a LUA script to each simulator providing
//   (1) the naming convention: key(filename) -> monotone integer, and
//   (2) simulation-job creation: (start, stop, parallelism level) -> a
//       script the DV executes, with simulator-imposed allocation
//       constraints resolved inside the driver.
// This repo expresses the same contract as a C++ interface; drivers can be
// built programmatically (SyntheticDriver) or loaded from small INI ".drv"
// descriptions (loadDriverFile), our stand-in for the LUA layer.
#pragma once

#include "common/status.hpp"
#include "simmodel/context.hpp"

#include <memory>
#include <string>

namespace simfs::simmodel {

/// A renderable simulation job (the "script" of Sec. III-B plus the
/// structured fields the DV core needs to track it).
struct JobSpec {
  std::string context;        ///< owning simulation context
  StepIndex startStep = 0;    ///< first output step to produce
  StepIndex stopStep = 0;     ///< last output step to produce (inclusive)
  int parallelismLevel = 0;   ///< 0..driver max; driver maps to nodes
  std::string script;         ///< rendered job script (for live/batch mode)
};

/// Simulator-specific behaviour the DV calls through.
class SimulationDriver {
 public:
  virtual ~SimulationDriver() = default;

  /// The context this driver serves (geometry, sizes, perf model, ...).
  [[nodiscard]] virtual const ContextConfig& config() const noexcept = 0;

  /// The paper's key(): total order over output filenames.
  [[nodiscard]] virtual Result<StepIndex> key(std::string_view filename) const;

  /// Builds the job covering output steps [start, stop] at a parallelism
  /// level (clamped by the driver to its own constraints).
  [[nodiscard]] virtual JobSpec makeJob(StepIndex start, StepIndex stop,
                                        int parallelismLevel) const;

  /// Simulator-specific checksum used by SIMFS_Bitrep (default FNV-1a 64).
  [[nodiscard]] virtual std::uint64_t checksum(std::string_view content) const;
};

/// Driver fully described by a ContextConfig (synthetic simulators,
/// DES-mode experiments).
class SyntheticDriver final : public SimulationDriver {
 public:
  explicit SyntheticDriver(ContextConfig config) : config_(std::move(config)) {}

  [[nodiscard]] const ContextConfig& config() const noexcept override {
    return config_;
  }

 private:
  ContextConfig config_;
};

/// Loads a driver from a ".drv" INI description. Recognized keys:
///
///   [context]  name, delta_d, delta_r, num_timesteps,
///              output_bytes, restart_bytes, cache_quota_bytes,
///              policy, s_max, ema_smoothing, doubling_ramp, prefetch
///   [perf]     nodes, tau_sim_ms, alpha_sim_ms, max_level, efficiency
///   [naming]   output_prefix, output_suffix, restart_prefix,
///              restart_suffix, pad_width
///   [job]      script_template   (placeholders: {start} {stop} {nodes})
[[nodiscard]] Result<std::unique_ptr<SimulationDriver>> loadDriverFile(
    const std::string& path);

/// Parses a ".drv" description from text (same schema as loadDriverFile).
[[nodiscard]] Result<std::unique_ptr<SimulationDriver>> parseDriver(
    const std::string& text);

}  // namespace simfs::simmodel
