#include "engine/engine.hpp"

#include <cassert>
#include <utility>

namespace simfs::engine {

EventId Engine::scheduleAt(VTime t, std::function<void()> fn) {
  assert(fn && "cannot schedule an empty callback");
  if (t < now()) t = now();  // late scheduling clamps to "immediately"
  const QueueKey key{t, nextSeq_++};
  const EventId id = nextId_++;
  queue_.emplace(key, Entry{id, std::move(fn)});
  index_.emplace(id, key);
  return id;
}

EventId Engine::scheduleAfter(VDuration delay, std::function<void()> fn) {
  assert(delay >= 0 && "negative delays are invalid");
  return scheduleAt(now() + delay, std::move(fn));
}

bool Engine::cancel(EventId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return false;
  queue_.erase(it->second);
  index_.erase(it);
  return true;
}

VTime Engine::nextEventTime() const noexcept {
  if (queue_.empty()) return kTimeInf;
  return queue_.begin()->first.time;
}

bool Engine::step() {
  if (queue_.empty()) return false;
  auto it = queue_.begin();
  const QueueKey key = it->first;
  Entry entry = std::move(it->second);
  queue_.erase(it);
  index_.erase(entry.id);
  clock_.advanceTo(key.time);
  ++executed_;
  entry.fn();
  return true;
}

std::size_t Engine::run(VTime until) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.begin()->first.time <= until) {
    step();
    ++n;
  }
  // Even with no events left to run, time advances to the horizon the
  // caller asked for (useful when measuring fixed windows).
  if (until != kTimeInf && until > clock_.now()) clock_.advanceTo(until);
  return n;
}

}  // namespace simfs::engine
