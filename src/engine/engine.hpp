// Discrete-event simulation engine.
//
// All model-time experiments (Figs. 16-19 and the schedule reproductions of
// Figs. 7-11) run on this engine: the DV core, synthetic simulators and
// synthetic analyses schedule callbacks at virtual times, and the engine
// executes them in deterministic order (time, then insertion sequence).
//
// The engine owns a ManualClock; components observe time exclusively
// through the Clock& it exposes, which is what makes the DV core reusable
// between virtual-time and wall-clock deployments.
#pragma once

#include "common/clock.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>

namespace simfs::engine {

/// Handle for a scheduled event; used to cancel it.
using EventId = std::uint64_t;

/// Sentinel returned for failed schedules.
inline constexpr EventId kInvalidEvent = 0;

/// Deterministic discrete-event executor with a virtual clock.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// The virtual clock; safe to hand out as `const Clock&` to components.
  [[nodiscard]] Clock& clock() noexcept { return clock_; }

  /// Current virtual time.
  [[nodiscard]] VTime now() const noexcept { return clock_.now(); }

  /// Schedules `fn` at absolute virtual time `t` (>= now).
  /// Events at equal times run in scheduling order.
  EventId scheduleAt(VTime t, std::function<void()> fn);

  /// Schedules `fn` after a non-negative delay from now.
  EventId scheduleAfter(VDuration delay, std::function<void()> fn);

  /// Cancels a pending event. Returns false if it already ran,
  /// was cancelled, or never existed.
  bool cancel(EventId id);

  /// Runs events in order until the queue drains or virtual time would
  /// exceed `until`. Returns the number of events executed.
  std::size_t run(VTime until = kTimeInf);

  /// Executes exactly one event if any is pending. Returns true if one ran.
  bool step();

  /// Number of pending (non-cancelled) events.
  [[nodiscard]] std::size_t pendingCount() const noexcept {
    return queue_.size();
  }

  /// Virtual time of the next pending event, or kTimeInf if none.
  [[nodiscard]] VTime nextEventTime() const noexcept;

  /// Total events executed since construction (diagnostic).
  [[nodiscard]] std::uint64_t executedCount() const noexcept {
    return executed_;
  }

 private:
  struct QueueKey {
    VTime time;
    std::uint64_t seq;  // tie-break: FIFO among equal times
    bool operator<(const QueueKey& o) const noexcept {
      return time != o.time ? time < o.time : seq < o.seq;
    }
  };
  struct Entry {
    EventId id;
    std::function<void()> fn;
  };

  ManualClock clock_;
  std::map<QueueKey, Entry> queue_;
  std::unordered_map<EventId, QueueKey> index_;
  std::uint64_t nextSeq_ = 1;
  std::uint64_t nextId_ = 1;
  std::uint64_t executed_ = 0;
};

}  // namespace simfs::engine
