// Transparent-mode I/O interception (Sec. III-C1, Table I).
//
// The real DVLib ships bindings for netCDF, HDF5 and ADIOS; since those
// libraries are not available here, this repo provides three miniature
// I/O libraries with the same call shapes, all routed through one
// interception core (IoDispatch):
//
//   paper call          sncdf (netCDF-like)   sh5 (HDF5-like)  sadios (ADIOS-like)
//   open                snc_open              sh5_fopen        sadios_open("r")
//   create              snc_create            sh5_fcreate      sadios_open("w")
//   read                snc_get_var_double    sh5_dread        sadios_schedule_read
//                                                              + sadios_perform_reads
//   close               snc_close             sh5_fclose       sadios_close
//
// Interception semantics follow the paper exactly:
//   * analysis open  -> non-blocking DV request (re-simulation may start),
//   * analysis read  -> blocks until the DV signals the file is ready,
//   * analysis close -> dereferences the output step at the DV,
//   * simulator create/close -> content lands in the store and the DV is
//     notified that the file is ready (Fig. 4 steps 4-5).
//
// Pipelining (async session core): an analysis open fires a vectored
// acquire (kOpenBatchReq) and returns WITHOUT waiting for the daemon's
// ack — N consecutive snc/sh5/sadios opens put N requests on the wire
// back-to-back instead of paying N serial round trips. The read is the
// first point that waits on the open's AcquireHandle (for sadios that is
// sadios_perform_reads, the scheduled-read model); open-time errors such
// as an unparsable name therefore surface at the read. Closing a handle
// whose acquire never completed cancels it (kCancelReq), so abandoned
// opens cannot pin DV cache slots.
//
// All payloads use one trivial container format: "SNC1" magic, u64 count,
// raw little-endian doubles (helpers below).
#pragma once

#include "common/status.hpp"
#include "dvlib/simfs_client.hpp"
#include "vfs/file_store.hpp"

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace simfs::dvlib {

/// Serializes a double field into the container format.
[[nodiscard]] std::string encodeField(std::span<const double> values);

/// Parses the container format.
[[nodiscard]] Result<std::vector<double>> decodeField(std::string_view blob);

/// Process-wide interception state shared by the three facades.
/// Mirrors how the real DVLib configures itself per process (environment
/// variables select context/role; here examples install explicitly).
class IoDispatch {
 public:
  /// Singleton accessor.
  static IoDispatch& instance();

  /// Analysis role: opens query the DV via `client`; bytes come from
  /// `store`. Both must outlive the installation.
  void installAnalysis(SimFSClient* client, vfs::FileStore* store);

  /// Simulator role: created files land in `store`; every close reports
  /// the file ready through `onFileClosed` (the DVLib->DV signal).
  void installSimulator(std::function<void(const std::string&)> onFileClosed,
                        vfs::FileStore* store);

  /// No DV: plain file I/O against `store` (useful for tooling/tests).
  void installPassthrough(vfs::FileStore* store);

  /// Clears the installation (handles become invalid).
  void reset();

  // --- operations used by the facades ---------------------------------------

  /// Intercepted open (analysis): non-blocking DV request. Returns a
  /// handle even when the file is still missing.
  [[nodiscard]] Result<std::int64_t> openForRead(const std::string& name);

  /// Intercepted create (simulator): starts buffering a new file.
  [[nodiscard]] Result<std::int64_t> createForWrite(const std::string& name);

  /// Intercepted read: blocks until the file is available, then returns
  /// the full content. Subsequent reads on the handle are served locally.
  [[nodiscard]] Result<std::string> readAll(std::int64_t handle);

  /// Buffers content on a write handle (replaces previous content).
  [[nodiscard]] Status write(std::int64_t handle, std::string content);

  /// Intercepted close: analysis handles dereference at the DV; simulator
  /// handles flush to the store and notify the DV.
  [[nodiscard]] Status close(std::int64_t handle);

  /// Name bound to a handle (diagnostics).
  [[nodiscard]] Result<std::string> nameOf(std::int64_t handle) const;

 private:
  IoDispatch() = default;

  enum class Role { kNone, kAnalysis, kSimulator, kPassthrough };

  struct Handle {
    std::string name;
    bool writing = false;
    std::string buffer;
    /// Analysis role: the pipelined open's completion token; the read
    /// waits on it, close cancels it when still incomplete.
    AcquireHandle acquire;
  };

  mutable std::mutex mutex_;
  Role role_ = Role::kNone;
  SimFSClient* client_ = nullptr;
  vfs::FileStore* store_ = nullptr;
  std::function<void(const std::string&)> onFileClosed_;
  std::map<std::int64_t, Handle> handles_;
  std::int64_t nextHandle_ = 1;
};

// ---------------------------------------------------------------- sncdf
// Miniature netCDF-flavoured API. All functions return 0 on success or a
// simfs::StatusCode as int.

int snc_open(const char* path, int mode, int* ncidp);
int snc_create(const char* path, int cmode, int* ncidp);
/// Reads up to `maxValues` doubles; `*nRead` receives the count. Blocks
/// until the (possibly re-simulated) file is on disk.
int snc_get_var_double(int ncid, double* out, std::size_t maxValues,
                       std::size_t* nRead);
int snc_put_var_double(int ncid, const double* values, std::size_t count);
int snc_close(int ncid);

// ------------------------------------------------------------------ sh5
// Miniature HDF5-flavoured API; handles are sh5_id (negative = error).

using sh5_id = std::int64_t;

sh5_id sh5_fopen(const char* name, unsigned flags);
sh5_id sh5_fcreate(const char* name, unsigned flags);
int sh5_dread(sh5_id file, double* out, std::size_t maxValues,
              std::size_t* nRead);
int sh5_dwrite(sh5_id file, const double* values, std::size_t count);
int sh5_fclose(sh5_id file);

// --------------------------------------------------------------- sadios
// Miniature ADIOS-flavoured API: reads are scheduled, then performed.

using sadios_id = std::int64_t;

/// mode: "r" or "w" (matches adios_open's read/write distinction).
sadios_id sadios_open(const char* name, const char* mode);
/// Registers a pending read into `out`/`maxValues`/`nRead`.
int sadios_schedule_read(sadios_id file, double* out, std::size_t maxValues,
                         std::size_t* nRead);
/// Executes scheduled reads; blocks until data is available.
int sadios_perform_reads(sadios_id file);
int sadios_write(sadios_id file, const double* values, std::size_t count);
int sadios_close(sadios_id file);

}  // namespace simfs::dvlib
