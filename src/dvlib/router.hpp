// Client-side federation routing (the DVLib half of src/cluster).
//
// A NodeRouter is shared by every SimFSClient session a process opens
// against one DV federation. It owns:
//
//   * the live ring — seeded from configuration (SIMFS_RING / Ring::parse)
//     and replaced whenever a kRedirect or kRingUpdate carries a newer
//     version, so all sessions re-resolve placement together, and
//   * a per-node connection pool — transports that were dialed but ended
//     up unbound (a hello that was redirected never binds server-side)
//     are checked back in and reused for the next session that resolves
//     to that node, instead of re-dialing.
//
// Sessions stay single-context (one kHello binds one connection to one
// context, as before); the router is what turns "a transport" into "the
// transport of whichever node owns this context".
#pragma once

#include "cluster/ring.hpp"
#include "msg/transport.hpp"

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace simfs::dvlib {

class NodeRouter {
 public:
  /// Opens a transport to a node endpoint (Unix-socket path by default;
  /// tests inject in-process dialers).
  using Dialer =
      std::function<Result<std::unique_ptr<msg::Transport>>(const std::string&)>;

  NodeRouter(cluster::Ring ring, Dialer dial);

  /// Router over Unix-domain sockets (endpoints are socket paths).
  [[nodiscard]] static std::shared_ptr<NodeRouter> overUnixSockets(
      cluster::Ring ring);

  // --- placement --------------------------------------------------------------

  [[nodiscard]] Result<cluster::NodeInfo> ownerOf(
      const std::string& context) const;
  [[nodiscard]] Result<cluster::NodeInfo> node(const std::string& id) const;
  [[nodiscard]] cluster::Ring ringSnapshot() const;

  /// The context's read-replica set under the current ring and replica
  /// count: the R distinct ring successors after the owner. Empty when
  /// replicas are disabled (R = 0) or the ring has fewer than 2 nodes.
  [[nodiscard]] std::vector<cluster::NodeInfo> replicasOf(
      const std::string& context) const;

  /// Records the federation's read-replica count R, learned from the
  /// intArg2 of a kRedirect / kRingUpdate (0 from pre-replica daemons
  /// and whenever replicas are disabled).
  void noteReplicaCount(std::size_t count);
  [[nodiscard]] std::size_t replicaCount() const;

  /// Installs `ring` if it supersedes the current table: newer version,
  /// or same version with different membership (daemon-provided tables
  /// are authoritative over a wrong client seed). Strictly older tables
  /// are ignored. Returns true if adopted.
  bool adoptRing(const cluster::Ring& ring);

  // --- per-node connection pool ------------------------------------------------

  /// An open transport to `endpoint`: a pooled idle one if present,
  /// freshly dialed otherwise. The caller owns it until checkin().
  [[nodiscard]] Result<std::shared_ptr<msg::Transport>> checkout(
      const std::string& endpoint);

  /// Returns an UNBOUND, still-open transport to the pool. The router
  /// neutralizes its handlers; transports that carried a bound session
  /// must be closed instead (the server tears the session down on EOF).
  void checkin(const std::string& endpoint,
               std::shared_ptr<msg::Transport> transport);

  /// Closes every pooled transport (process shutdown).
  void drainPool();

 private:
  mutable std::mutex mutex_;
  cluster::Ring ring_;
  Dialer dial_;
  std::size_t replicaCount_ = 0;  ///< federation's R (0 = replicas off)
  std::map<std::string, std::vector<std::shared_ptr<msg::Transport>>> idle_;
};

/// Rebuilds the ring a kRedirect / kRingUpdate message carries
/// (files = "id=endpoint" entries, intArg = version).
[[nodiscard]] Result<cluster::Ring> ringFromMessage(const msg::Message& m);

}  // namespace simfs::dvlib
