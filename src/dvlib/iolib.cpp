#include "dvlib/iolib.hpp"

#include <cstring>

namespace simfs::dvlib {

namespace {
constexpr char kMagic[4] = {'S', 'N', 'C', '1'};

int rc(const Status& st) { return static_cast<int>(st.code()); }
int rc(StatusCode code) { return static_cast<int>(code); }
}  // namespace

std::string encodeField(std::span<const double> values) {
  std::string out;
  out.reserve(sizeof(kMagic) + sizeof(std::uint64_t) +
              values.size() * sizeof(double));
  out.append(kMagic, sizeof(kMagic));
  const std::uint64_t n = values.size();
  out.append(reinterpret_cast<const char*>(&n), sizeof(n));
  out.append(reinterpret_cast<const char*>(values.data()),
             values.size() * sizeof(double));
  return out;
}

Result<std::vector<double>> decodeField(std::string_view blob) {
  if (blob.size() < sizeof(kMagic) + sizeof(std::uint64_t) ||
      std::memcmp(blob.data(), kMagic, sizeof(kMagic)) != 0) {
    return errInvalidArgument("iolib: not an SNC1 payload");
  }
  std::uint64_t n = 0;
  std::memcpy(&n, blob.data() + sizeof(kMagic), sizeof(n));
  const std::size_t expect =
      sizeof(kMagic) + sizeof(std::uint64_t) + n * sizeof(double);
  if (blob.size() != expect) {
    return errInvalidArgument("iolib: truncated SNC1 payload");
  }
  std::vector<double> values(n);
  std::memcpy(values.data(), blob.data() + sizeof(kMagic) + sizeof(n),
              n * sizeof(double));
  return values;
}

IoDispatch& IoDispatch::instance() {
  static IoDispatch dispatch;
  return dispatch;
}

void IoDispatch::installAnalysis(SimFSClient* client, vfs::FileStore* store) {
  std::lock_guard lock(mutex_);
  role_ = Role::kAnalysis;
  client_ = client;
  store_ = store;
  onFileClosed_ = nullptr;
  handles_.clear();
}

void IoDispatch::installSimulator(
    std::function<void(const std::string&)> onFileClosed,
    vfs::FileStore* store) {
  std::lock_guard lock(mutex_);
  role_ = Role::kSimulator;
  client_ = nullptr;
  store_ = store;
  onFileClosed_ = std::move(onFileClosed);
  handles_.clear();
}

void IoDispatch::installPassthrough(vfs::FileStore* store) {
  std::lock_guard lock(mutex_);
  role_ = Role::kPassthrough;
  client_ = nullptr;
  store_ = store;
  onFileClosed_ = nullptr;
  handles_.clear();
}

void IoDispatch::reset() {
  std::lock_guard lock(mutex_);
  role_ = Role::kNone;
  client_ = nullptr;
  store_ = nullptr;
  onFileClosed_ = nullptr;
  handles_.clear();
}

Result<std::int64_t> IoDispatch::openForRead(const std::string& name) {
  SimFSClient* client = nullptr;
  {
    std::lock_guard lock(mutex_);
    if (role_ == Role::kNone || store_ == nullptr) {
      return errFailedPrecondition("iolib: no installation");
    }
    client = role_ == Role::kAnalysis ? client_ : nullptr;
    if (client == nullptr && !store_->exists(name)) {
      return errNotFound("iolib: no file " + name);
    }
  }
  AcquireHandle acquire;
  if (client != nullptr) {
    // The paper's non-blocking open, pipelined: the vectored request goes
    // on the wire (the DV may kick off a re-simulation) and we do NOT
    // wait for the ack — consecutive opens stream back-to-back. The read
    // is the blocking point; open-time errors surface there.
    acquire = client->session()->acquireAsync({name});
  }
  std::lock_guard lock(mutex_);
  const auto id = nextHandle_++;
  handles_[id] = Handle{name, /*writing=*/false, {}, std::move(acquire)};
  return id;
}

Result<std::int64_t> IoDispatch::createForWrite(const std::string& name) {
  std::lock_guard lock(mutex_);
  if (role_ == Role::kNone || store_ == nullptr) {
    return errFailedPrecondition("iolib: no installation");
  }
  if (role_ == Role::kAnalysis) {
    return errFailedPrecondition("iolib: analysis role cannot create");
  }
  const auto id = nextHandle_++;
  handles_[id] = Handle{name, /*writing=*/true, {}, {}};
  return id;
}

Result<std::string> IoDispatch::readAll(std::int64_t handle) {
  std::string name;
  AcquireHandle acquire;
  vfs::FileStore* store = nullptr;
  {
    std::lock_guard lock(mutex_);
    const auto it = handles_.find(handle);
    if (it == handles_.end()) return errNotFound("iolib: bad handle");
    if (it->second.writing) {
      return errFailedPrecondition("iolib: handle open for write");
    }
    name = it->second.name;
    acquire = it->second.acquire;
    store = store_;
  }
  if (acquire.valid()) {
    // Blocking point of the intercepted read (Fig. 4 step 6): wait on
    // the pipelined open's completion token.
    SIMFS_RETURN_IF_ERROR(acquire.wait());
  }
  return store->read(name);
}

Status IoDispatch::write(std::int64_t handle, std::string content) {
  std::lock_guard lock(mutex_);
  const auto it = handles_.find(handle);
  if (it == handles_.end()) return errNotFound("iolib: bad handle");
  if (!it->second.writing) {
    return errFailedPrecondition("iolib: handle open for read");
  }
  it->second.buffer = std::move(content);
  return Status::ok();
}

Status IoDispatch::close(std::int64_t handle) {
  Handle h;
  SimFSClient* client = nullptr;
  vfs::FileStore* store = nullptr;
  std::function<void(const std::string&)> onFileClosed;
  Role role;
  {
    std::lock_guard lock(mutex_);
    const auto it = handles_.find(handle);
    if (it == handles_.end()) return errNotFound("iolib: bad handle");
    h = std::move(it->second);
    handles_.erase(it);
    client = client_;
    store = store_;
    onFileClosed = onFileClosed_;
    role = role_;
  }
  if (h.writing) {
    SIMFS_RETURN_IF_ERROR(store->put(h.name, std::move(h.buffer)));
    // Close is the signal that the file is ready on disk (Fig. 4 step 4).
    if (role == Role::kSimulator && onFileClosed) onFileClosed(h.name);
    return Status::ok();
  }
  // Analysis close: dereference the output step at the DV. An open whose
  // acquire never completed (or was never read) is CANCELLED instead —
  // the DV drops the waiter entry / reference so the abandoned open
  // cannot pin a cache slot.
  if (role == Role::kAnalysis && client != nullptr && h.acquire.valid()) {
    bool done = false;
    const Status st = h.acquire.test(&done, nullptr);
    if (!done) {
      (void)h.acquire.cancel();
    } else if (st.isOk()) {
      client->closeNotify(h.name);
    }
    // Completed-with-failure holds no DV interest: nothing to release.
  }
  return Status::ok();
}

Result<std::string> IoDispatch::nameOf(std::int64_t handle) const {
  std::lock_guard lock(mutex_);
  const auto it = handles_.find(handle);
  if (it == handles_.end()) return errNotFound("iolib: bad handle");
  return it->second.name;
}

// ------------------------------------------------------------------ sncdf

int snc_open(const char* path, int /*mode*/, int* ncidp) {
  if (path == nullptr || ncidp == nullptr) {
    return rc(StatusCode::kInvalidArgument);
  }
  auto h = IoDispatch::instance().openForRead(path);
  if (!h) return rc(h.status());
  *ncidp = static_cast<int>(*h);
  return 0;
}

int snc_create(const char* path, int /*cmode*/, int* ncidp) {
  if (path == nullptr || ncidp == nullptr) {
    return rc(StatusCode::kInvalidArgument);
  }
  auto h = IoDispatch::instance().createForWrite(path);
  if (!h) return rc(h.status());
  *ncidp = static_cast<int>(*h);
  return 0;
}

int snc_get_var_double(int ncid, double* out, std::size_t maxValues,
                       std::size_t* nRead) {
  if (out == nullptr || nRead == nullptr) {
    return rc(StatusCode::kInvalidArgument);
  }
  auto blob = IoDispatch::instance().readAll(ncid);
  if (!blob) return rc(blob.status());
  auto values = decodeField(*blob);
  if (!values) return rc(values.status());
  const std::size_t n = std::min(maxValues, values->size());
  std::memcpy(out, values->data(), n * sizeof(double));
  *nRead = n;
  return 0;
}

int snc_put_var_double(int ncid, const double* values, std::size_t count) {
  if (values == nullptr && count > 0) return rc(StatusCode::kInvalidArgument);
  return rc(IoDispatch::instance().write(
      ncid, encodeField(std::span<const double>(values, count))));
}

int snc_close(int ncid) { return rc(IoDispatch::instance().close(ncid)); }

// -------------------------------------------------------------------- sh5

sh5_id sh5_fopen(const char* name, unsigned /*flags*/) {
  if (name == nullptr) return -rc(StatusCode::kInvalidArgument);
  auto h = IoDispatch::instance().openForRead(name);
  if (!h) return -rc(h.status());
  return *h;
}

sh5_id sh5_fcreate(const char* name, unsigned /*flags*/) {
  if (name == nullptr) return -rc(StatusCode::kInvalidArgument);
  auto h = IoDispatch::instance().createForWrite(name);
  if (!h) return -rc(h.status());
  return *h;
}

int sh5_dread(sh5_id file, double* out, std::size_t maxValues,
              std::size_t* nRead) {
  if (out == nullptr || nRead == nullptr) {
    return rc(StatusCode::kInvalidArgument);
  }
  auto blob = IoDispatch::instance().readAll(file);
  if (!blob) return rc(blob.status());
  auto values = decodeField(*blob);
  if (!values) return rc(values.status());
  const std::size_t n = std::min(maxValues, values->size());
  std::memcpy(out, values->data(), n * sizeof(double));
  *nRead = n;
  return 0;
}

int sh5_dwrite(sh5_id file, const double* values, std::size_t count) {
  if (values == nullptr && count > 0) return rc(StatusCode::kInvalidArgument);
  return rc(IoDispatch::instance().write(
      file, encodeField(std::span<const double>(values, count))));
}

int sh5_fclose(sh5_id file) { return rc(IoDispatch::instance().close(file)); }

// ----------------------------------------------------------------- sadios

namespace {
/// Pending scheduled reads per ADIOS handle (ADIOS batches reads and
/// executes them in perform_reads). The open already fired the vectored
/// acquire without blocking, so perform_reads is one wait on the batch
/// handle — the SAVIME/ADIOS scheduled-read model end-to-end.
struct ScheduledRead {
  double* out;
  std::size_t maxValues;
  std::size_t* nRead;
};
std::mutex g_adiosMutex;
std::map<sadios_id, std::vector<ScheduledRead>> g_adiosReads;
}  // namespace

sadios_id sadios_open(const char* name, const char* mode) {
  if (name == nullptr || mode == nullptr) {
    return -rc(StatusCode::kInvalidArgument);
  }
  if (std::strcmp(mode, "w") == 0) {
    auto h = IoDispatch::instance().createForWrite(name);
    if (!h) return -rc(h.status());
    return *h;
  }
  if (std::strcmp(mode, "r") == 0) {
    auto h = IoDispatch::instance().openForRead(name);
    if (!h) return -rc(h.status());
    return *h;
  }
  return -rc(StatusCode::kInvalidArgument);
}

int sadios_schedule_read(sadios_id file, double* out, std::size_t maxValues,
                         std::size_t* nRead) {
  if (out == nullptr || nRead == nullptr) {
    return rc(StatusCode::kInvalidArgument);
  }
  std::lock_guard lock(g_adiosMutex);
  g_adiosReads[file].push_back(ScheduledRead{out, maxValues, nRead});
  return 0;
}

int sadios_perform_reads(sadios_id file) {
  std::vector<ScheduledRead> reads;
  {
    std::lock_guard lock(g_adiosMutex);
    const auto it = g_adiosReads.find(file);
    if (it != g_adiosReads.end()) {
      reads = std::move(it->second);
      g_adiosReads.erase(it);
    }
  }
  if (reads.empty()) return 0;
  auto blob = IoDispatch::instance().readAll(file);
  if (!blob) return rc(blob.status());
  auto values = decodeField(*blob);
  if (!values) return rc(values.status());
  for (const auto& r : reads) {
    const std::size_t n = std::min(r.maxValues, values->size());
    std::memcpy(r.out, values->data(), n * sizeof(double));
    *r.nRead = n;
  }
  return 0;
}

int sadios_write(sadios_id file, const double* values, std::size_t count) {
  if (values == nullptr && count > 0) return rc(StatusCode::kInvalidArgument);
  return rc(IoDispatch::instance().write(
      file, encodeField(std::span<const double>(values, count))));
}

int sadios_close(sadios_id file) {
  {
    std::lock_guard lock(g_adiosMutex);
    g_adiosReads.erase(file);
  }
  return rc(IoDispatch::instance().close(file));
}

}  // namespace simfs::dvlib
