#include "dvlib/simfs_client.hpp"

#include "common/log.hpp"

#include <algorithm>
#include <chrono>

namespace simfs::dvlib {

namespace {
constexpr auto kCallTimeout = std::chrono::seconds(30);

/// Hop bound for redirect-following: a correct federation resolves in one
/// hop (two with a stale ring); more means the cluster disagrees with
/// itself and looping would never converge.
constexpr int kMaxRedirects = 4;

Status statusFrom(const msg::Message& m) {
  const auto code = static_cast<StatusCode>(m.code);
  if (code == StatusCode::kOk) return Status::ok();
  return Status(code, m.text);
}

msg::Message makeHello(const std::string& context) {
  msg::Message hello;
  hello.type = msg::MsgType::kHello;
  hello.context = context;
  hello.intArg = static_cast<std::int64_t>(msg::ClientRole::kAnalysis);
  return hello;
}
}  // namespace

SimFSClient::SimFSClient(std::string context) : context_(std::move(context)) {}

SimFSClient::~SimFSClient() { finalize(); }

void SimFSClient::attach(const std::shared_ptr<msg::Transport>& t) {
  t->setHandler([this](msg::Message&& m) { onMessage(std::move(m)); });
}

Result<std::unique_ptr<SimFSClient>> SimFSClient::connect(
    std::unique_ptr<msg::Transport> transport, const std::string& context) {
  auto client = std::unique_ptr<SimFSClient>(new SimFSClient(context));
  std::shared_ptr<msg::Transport> t = std::move(transport);
  client->attach(t);
  auto reply = client->callOn(t, makeHello(context));
  if (!reply) return reply.status();
  if (reply->type == msg::MsgType::kRedirect) {
    return errFailedPrecondition(
        "dvlib: context '" + context + "' is owned by node '" + reply->text +
        "'; connect through a NodeRouter to follow redirects");
  }
  const auto st = statusFrom(*reply);
  if (!st.isOk()) return st;
  client->clientId_ = static_cast<ClientId>(reply->intArg);
  client->transport_ = std::move(t);
  return client;
}

Result<std::unique_ptr<SimFSClient>> SimFSClient::connect(
    std::shared_ptr<NodeRouter> router, const std::string& context) {
  if (!router) return errInvalidArgument("dvlib: null router");
  auto client = std::unique_ptr<SimFSClient>(new SimFSClient(context));
  client->router_ = std::move(router);
  auto owner = client->router_->ownerOf(context);
  if (!owner) return owner.status();
  SIMFS_RETURN_IF_ERROR(client->rebind(owner->id));
  return client;
}

Status SimFSClient::rebind(std::string targetNode) {
  for (int hop = 0; hop <= kMaxRedirects; ++hop) {
    auto node = router_->node(targetNode);
    if (!node) return node.status();
    auto checked = router_->checkout(node->endpoint);
    if (!checked) return checked.status();
    std::shared_ptr<msg::Transport> t = std::move(*checked);
    attach(t);
    auto reply = callOn(t, makeHello(context_));
    if (!reply) {
      t->close();
      return reply.status();
    }
    if (reply->type == msg::MsgType::kRedirect) {
      // The daemon rejected the hello without binding anything, so the
      // connection is reusable by sessions this node does own.
      if (auto ring = ringFromMessage(*reply)) router_->adoptRing(*ring);
      targetNode = reply->text;
      router_->checkin(node->endpoint, std::move(t));
      continue;
    }
    const Status st = statusFrom(*reply);
    if (!st.isOk()) {
      t->close();
      return st;
    }
    std::shared_ptr<msg::Transport> old;
    {
      std::lock_guard lock(mutex_);
      clientId_ = static_cast<ClientId>(reply->intArg);
      old = std::move(transport_);
      transport_ = std::move(t);
      if (old) {
        retired_.push_back(old);
        // The old node held this session's pending opens and waiters;
        // they die with it. Fail outstanding waits NOW so threads
        // blocked in waitFile()/wait() wake with a retryable error and
        // reopen on the new owner, instead of waiting forever for a
        // kFileReady the new node will never send.
        const Status moved =
            errUnavailable("dvlib: session moved nodes; reopen the file");
        for (auto& [file, fw] : fileWaits_) {
          if (!fw.ready) {
            fw.ready = true;
            fw.status = moved;
          }
        }
        for (auto& [id, req] : requests_) {
          if (!req.pending.empty()) {
            req.pending.clear();
            req.worst = moved;
          }
        }
        // Calls still awaiting a reply on the link being closed would
        // otherwise sit out the full call timeout: hand them a synthetic
        // error reply instead.
        for (const auto& [id, tp] : inflight_) {
          if (tp == old.get() && replies_.count(id) == 0) {
            msg::Message failed;
            failed.type = msg::MsgType::kError;
            failed.requestId = id;
            failed.code = static_cast<std::int32_t>(moved.code());
            failed.text = moved.message();
            replies_.emplace(id, std::move(failed));
          }
        }
        cv_.notify_all();
      }
    }
    // Closing the replaced link tears the stale session down on the node
    // that no longer owns the context.
    if (old) old->close();
    return Status::ok();
  }
  return errUnavailable("dvlib: redirect loop (ring members disagree)");
}

void SimFSClient::onMessage(msg::Message&& m) {
  if (m.type == msg::MsgType::kRingUpdate && router_ != nullptr) {
    // Membership push: re-resolve future routing. router_ is set once at
    // construction, so reading it here without the lock is safe.
    if (auto ring = ringFromMessage(m)) router_->adoptRing(*ring);
    if (m.requestId == 0) return;  // pure push, not a reply
  }
  std::lock_guard lock(mutex_);
  if (m.type == msg::MsgType::kFileReady) {
    const std::string& file = m.files.empty() ? std::string() : m.files[0];
    auto& fw = fileWaits_[file];
    fw.ready = true;
    fw.status = statusFrom(m);
    for (auto& [id, req] : requests_) {
      if (req.pending.erase(file) > 0 && !fw.status.isOk()) {
        req.worst = fw.status;
      }
    }
    cv_.notify_all();
    return;
  }
  replies_[m.requestId] = std::move(m);
  cv_.notify_all();
}

std::shared_ptr<msg::Transport> SimFSClient::transportRef() {
  std::lock_guard lock(mutex_);
  return transport_;
}

Result<msg::Message> SimFSClient::callOn(
    const std::shared_ptr<msg::Transport>& t, msg::Message m) {
  static std::atomic<std::uint64_t> callSeq{1};
  m.requestId = callSeq.fetch_add(1);
  const auto id = m.requestId;
  {
    // Registered before the send so a rebind racing in between still
    // sees (and can fail) this call.
    std::lock_guard lock(mutex_);
    inflight_[id] = t.get();
  }
  const Status sent = t->send(m);
  std::unique_lock lock(mutex_);
  if (!sent.isOk()) {
    inflight_.erase(id);
    return sent;
  }
  const bool got = cv_.wait_for(lock, kCallTimeout,
                                [&] { return replies_.count(id) > 0; });
  inflight_.erase(id);
  if (!got) return errTimedOut("dvlib: no reply from DV");
  auto reply = std::move(replies_.at(id));
  replies_.erase(id);
  return reply;
}

Result<msg::Message> SimFSClient::call(msg::Message m) {
  for (int hop = 0; hop <= kMaxRedirects; ++hop) {
    auto t = transportRef();
    if (!t) return errUnavailable("dvlib: session not connected");
    auto reply = callOn(t, m);  // m kept for a possible post-redirect resend
    if (!reply || reply->type != msg::MsgType::kRedirect) return reply;
    if (router_ == nullptr) {
      return errUnavailable("dvlib: redirected to node '" + reply->text +
                            "' but session has no router");
    }
    if (auto ring = ringFromMessage(*reply)) router_->adoptRing(*ring);
    SIMFS_RETURN_IF_ERROR(rebind(reply->text));
  }
  return errUnavailable("dvlib: redirect loop (ring members disagree)");
}

Result<SimFSClient::OpenInfo> SimFSClient::open(const std::string& file) {
  {
    // An earlier miss may already have completed.
    std::lock_guard lock(mutex_);
    const auto it = fileWaits_.find(file);
    if (it != fileWaits_.end() && it->second.ready && it->second.status.isOk()) {
      return OpenInfo{true, 0};
    }
  }
  msg::Message m;
  m.type = msg::MsgType::kOpenReq;
  m.files = {file};
  auto reply = call(std::move(m));
  if (!reply) return reply.status();
  const auto st = statusFrom(*reply);
  if (!st.isOk()) return st;
  OpenInfo info;
  info.available = reply->intArg == 1;
  info.estimatedWait = reply->intArg2;
  std::lock_guard lock(mutex_);
  auto& fw = fileWaits_[file];
  if (info.available) {
    fw.ready = true;
    fw.status = Status::ok();
  } else if (!fw.ready) {
    fw.status = Status::ok();  // pending; kFileReady resolves it
  } else if (!fw.status.isOk()) {
    // A stale failure (failed job, or waits failed by a rebind) is
    // superseded by this fresh not-yet-available open: back to pending,
    // or waitFile()/acquire() would treat the file as settled and
    // return the old error (or skip the wait entirely).
    fw.ready = false;
    fw.status = Status::ok();
  }
  return info;
}

Status SimFSClient::waitFile(const std::string& file) {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [&] {
    const auto it = fileWaits_.find(file);
    return it != fileWaits_.end() && it->second.ready;
  });
  return fileWaits_.at(file).status;
}

void SimFSClient::closeNotify(const std::string& file) {
  msg::Message m;
  m.type = msg::MsgType::kCloseNotify;
  m.context = context_;  // self-describing for daemon-side diagnostics
  m.files = {file};
  if (auto t = transportRef()) (void)t->send(m);
  std::lock_guard lock(mutex_);
  fileWaits_.erase(file);  // a later reopen re-queries the DV
}

Status SimFSClient::openInto(const std::string& file, RequestId req,
                             VDuration* wait) {
  auto info = open(file);
  if (!info) return info.status();
  if (wait != nullptr) *wait = std::max(*wait, info->estimatedWait);
  if (!info->available) {
    std::lock_guard lock(mutex_);
    const auto it = fileWaits_.find(file);
    const bool ready = it != fileWaits_.end() && it->second.ready;
    if (!ready) requests_.at(req).pending.insert(file);
  }
  return Status::ok();
}

Result<RequestId> SimFSClient::acquireNb(const std::vector<std::string>& files,
                                         SimfsStatus* status) {
  const RequestId id = nextRequest_++;
  {
    std::lock_guard lock(mutex_);
    Request req;
    req.files = files;
    requests_.emplace(id, std::move(req));
  }
  VDuration wait = 0;
  Status worst = Status::ok();
  for (const auto& f : files) {
    const auto st = openInto(f, id, &wait);
    if (!st.isOk()) worst = st;
  }
  {
    std::lock_guard lock(mutex_);
    auto& req = requests_.at(id);
    if (!worst.isOk()) req.worst = worst;
    req.estimatedWait = wait;
    if (status != nullptr) {
      status->error = req.worst;
      status->estimatedWait = wait;
    }
  }
  return id;
}

Status SimFSClient::acquire(const std::vector<std::string>& files,
                            SimfsStatus* status) {
  auto req = acquireNb(files, status);
  if (!req) return req.status();
  return wait(*req, status);
}

Status SimFSClient::wait(RequestId req, SimfsStatus* status) {
  std::unique_lock lock(mutex_);
  const auto it = requests_.find(req);
  if (it == requests_.end()) {
    return errFailedPrecondition("dvlib: unknown request");
  }
  cv_.wait(lock, [&] { return it->second.pending.empty(); });
  const Status st = it->second.worst;
  if (status != nullptr) {
    status->error = st;
    status->estimatedWait = 0;
  }
  requests_.erase(it);
  return st;
}

Status SimFSClient::test(RequestId req, bool* done, SimfsStatus* status) {
  std::lock_guard lock(mutex_);
  const auto it = requests_.find(req);
  if (it == requests_.end()) {
    return errFailedPrecondition("dvlib: unknown request");
  }
  const bool complete = it->second.pending.empty();
  if (done != nullptr) *done = complete;
  if (status != nullptr) {
    status->error = it->second.worst;
    status->estimatedWait = it->second.estimatedWait;
  }
  Status st = it->second.worst;
  if (complete) requests_.erase(it);
  return st;
}

Status SimFSClient::waitSome(RequestId req, std::vector<int>* readyIdx,
                             SimfsStatus* status) {
  std::unique_lock lock(mutex_);
  const auto it = requests_.find(req);
  if (it == requests_.end()) {
    return errFailedPrecondition("dvlib: unknown request");
  }
  auto readyCount = [&] {
    return it->second.files.size() - it->second.pending.size();
  };
  cv_.wait(lock, [&] { return readyCount() > 0 || it->second.pending.empty(); });
  if (readyIdx != nullptr) {
    readyIdx->clear();
    for (std::size_t i = 0; i < it->second.files.size(); ++i) {
      if (it->second.pending.count(it->second.files[i]) == 0) {
        readyIdx->push_back(static_cast<int>(i));
      }
    }
  }
  const Status st = it->second.worst;
  if (status != nullptr) status->error = st;
  if (it->second.pending.empty()) requests_.erase(it);
  return st;
}

Status SimFSClient::testSome(RequestId req, std::vector<int>* readyIdx,
                             SimfsStatus* status) {
  std::lock_guard lock(mutex_);
  const auto it = requests_.find(req);
  if (it == requests_.end()) {
    return errFailedPrecondition("dvlib: unknown request");
  }
  if (readyIdx != nullptr) {
    readyIdx->clear();
    for (std::size_t i = 0; i < it->second.files.size(); ++i) {
      if (it->second.pending.count(it->second.files[i]) == 0) {
        readyIdx->push_back(static_cast<int>(i));
      }
    }
  }
  const Status st = it->second.worst;
  if (status != nullptr) status->error = st;
  if (it->second.pending.empty()) requests_.erase(it);
  return st;
}

Status SimFSClient::release(const std::string& file) {
  msg::Message m;
  m.type = msg::MsgType::kReleaseReq;
  m.files = {file};
  auto reply = call(std::move(m));
  if (!reply) return reply.status();
  {
    std::lock_guard lock(mutex_);
    fileWaits_.erase(file);
  }
  return statusFrom(*reply);
}

Result<bool> SimFSClient::bitrep(const std::string& file,
                                 std::uint64_t digest) {
  msg::Message m;
  m.type = msg::MsgType::kBitrepReq;
  m.files = {file};
  m.intArg = static_cast<std::int64_t>(digest);
  auto reply = call(std::move(m));
  if (!reply) return reply.status();
  const auto st = statusFrom(*reply);
  if (!st.isOk()) return st;
  return reply->intArg == 1;
}

void SimFSClient::finalize() {
  std::shared_ptr<msg::Transport> t;
  std::vector<std::shared_ptr<msg::Transport>> retired;
  {
    std::lock_guard lock(mutex_);
    if (finalized_) return;
    finalized_ = true;
    t = transport_;
    retired = retired_;  // close outside the lock; entries stay alive
  }
  for (const auto& r : retired) r->close();
  if (t) t->close();
}

}  // namespace simfs::dvlib
