#include "dvlib/simfs_client.hpp"

namespace simfs::dvlib {

SimFSClient::SimFSClient(std::shared_ptr<Session> session)
    : session_(std::move(session)) {}

SimFSClient::~SimFSClient() { finalize(); }

Result<std::unique_ptr<SimFSClient>> SimFSClient::connect(
    std::unique_ptr<msg::Transport> transport, const std::string& context) {
  auto session = Session::connect(std::move(transport), context);
  if (!session) return session.status();
  return std::unique_ptr<SimFSClient>(new SimFSClient(std::move(*session)));
}

Result<std::unique_ptr<SimFSClient>> SimFSClient::connect(
    std::shared_ptr<NodeRouter> router, const std::string& context) {
  auto session = Session::connect(std::move(router), context);
  if (!session) return session.status();
  return std::unique_ptr<SimFSClient>(new SimFSClient(std::move(*session)));
}

Result<AcquireHandle> SimFSClient::findRequest(RequestId req) {
  std::lock_guard lock(mutex_);
  const auto it = requests_.find(req);
  if (it == requests_.end()) {
    return errFailedPrecondition("dvlib: unknown request");
  }
  return it->second;
}

void SimFSClient::eraseIfComplete(RequestId req, const AcquireHandle& handle) {
  if (!handle.complete()) return;
  std::lock_guard lock(mutex_);
  requests_.erase(req);
}

Status SimFSClient::acquire(const std::vector<std::string>& files,
                            SimfsStatus* status) {
  return session_->acquire(files, status);
}

Result<RequestId> SimFSClient::acquireNb(const std::vector<std::string>& files,
                                         SimfsStatus* status) {
  auto handle = session_->acquireAsync(files);
  // One round trip: the ack fills the DV's estimates into `status`, the
  // paper's SIMFS_Acquire_nb contract.
  (void)handle.waitAck(status);
  std::lock_guard lock(mutex_);
  const RequestId id = nextRequest_++;
  requests_.emplace(id, std::move(handle));
  return id;
}

Status SimFSClient::wait(RequestId req, SimfsStatus* status) {
  auto handle = findRequest(req);
  if (!handle) return handle.status();
  const Status st = handle->wait(status);
  std::lock_guard lock(mutex_);
  requests_.erase(req);
  return st;
}

Status SimFSClient::test(RequestId req, bool* done, SimfsStatus* status) {
  auto handle = findRequest(req);
  if (!handle) return handle.status();
  bool complete = false;
  const Status st = handle->test(&complete, status);
  if (done != nullptr) *done = complete;
  eraseIfComplete(req, *handle);
  return st;
}

Status SimFSClient::waitSome(RequestId req, std::vector<int>* readyIdx,
                             SimfsStatus* status) {
  auto handle = findRequest(req);
  if (!handle) return handle.status();
  const Status st = handle->waitSome(readyIdx, status);
  eraseIfComplete(req, *handle);
  return st;
}

Status SimFSClient::testSome(RequestId req, std::vector<int>* readyIdx,
                             SimfsStatus* status) {
  auto handle = findRequest(req);
  if (!handle) return handle.status();
  const Status st = handle->testSome(readyIdx, status);
  eraseIfComplete(req, *handle);
  return st;
}

Status SimFSClient::cancel(RequestId req) {
  auto handle = findRequest(req);
  if (!handle) return handle.status();
  {
    std::lock_guard lock(mutex_);
    requests_.erase(req);
  }
  return handle->cancel();
}

Status SimFSClient::release(const std::string& file) {
  return session_->release(file);
}

Result<bool> SimFSClient::bitrep(const std::string& file,
                                 std::uint64_t digest) {
  return session_->bitrep(file, digest);
}

Result<SimFSClient::OpenInfo> SimFSClient::open(const std::string& file) {
  return session_->open(file);
}

Status SimFSClient::waitFile(const std::string& file) {
  return session_->waitFile(file);
}

void SimFSClient::closeNotify(const std::string& file) {
  session_->closeNotify(file);
}

void SimFSClient::finalize() { session_->finalize(); }

}  // namespace simfs::dvlib
