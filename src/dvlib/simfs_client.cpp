#include "dvlib/simfs_client.hpp"

#include "common/log.hpp"

#include <algorithm>
#include <chrono>

namespace simfs::dvlib {

namespace {
constexpr auto kCallTimeout = std::chrono::seconds(30);

Status statusFrom(const msg::Message& m) {
  const auto code = static_cast<StatusCode>(m.code);
  if (code == StatusCode::kOk) return Status::ok();
  return Status(code, m.text);
}
}  // namespace

SimFSClient::SimFSClient(std::unique_ptr<msg::Transport> transport,
                         std::string context)
    : transport_(std::move(transport)), context_(std::move(context)) {}

SimFSClient::~SimFSClient() { finalize(); }

Result<std::unique_ptr<SimFSClient>> SimFSClient::connect(
    std::unique_ptr<msg::Transport> transport, const std::string& context) {
  auto client = std::unique_ptr<SimFSClient>(
      new SimFSClient(std::move(transport), context));
  client->transport_->setHandler(
      [raw = client.get()](msg::Message&& m) { raw->onMessage(std::move(m)); });

  msg::Message hello;
  hello.type = msg::MsgType::kHello;
  hello.context = context;
  hello.intArg = static_cast<std::int64_t>(msg::ClientRole::kAnalysis);
  auto reply = client->call(std::move(hello));
  if (!reply) return reply.status();
  const auto st = statusFrom(*reply);
  if (!st.isOk()) return st;
  client->clientId_ = static_cast<ClientId>(reply->intArg);
  return client;
}

void SimFSClient::onMessage(msg::Message&& m) {
  std::lock_guard lock(mutex_);
  if (m.type == msg::MsgType::kFileReady) {
    const std::string& file = m.files.empty() ? std::string() : m.files[0];
    auto& fw = fileWaits_[file];
    fw.ready = true;
    fw.status = statusFrom(m);
    for (auto& [id, req] : requests_) {
      if (req.pending.erase(file) > 0 && !fw.status.isOk()) {
        req.worst = fw.status;
      }
    }
    cv_.notify_all();
    return;
  }
  replies_[m.requestId] = std::move(m);
  cv_.notify_all();
}

Result<msg::Message> SimFSClient::call(msg::Message m) {
  static std::atomic<std::uint64_t> callSeq{1};
  m.requestId = callSeq.fetch_add(1);
  const auto id = m.requestId;
  SIMFS_RETURN_IF_ERROR(transport_->send(m));
  std::unique_lock lock(mutex_);
  if (!cv_.wait_for(lock, kCallTimeout,
                    [&] { return replies_.count(id) > 0; })) {
    return errTimedOut("dvlib: no reply from DV");
  }
  auto reply = std::move(replies_.at(id));
  replies_.erase(id);
  return reply;
}

Result<SimFSClient::OpenInfo> SimFSClient::open(const std::string& file) {
  {
    // An earlier miss may already have completed.
    std::lock_guard lock(mutex_);
    const auto it = fileWaits_.find(file);
    if (it != fileWaits_.end() && it->second.ready && it->second.status.isOk()) {
      return OpenInfo{true, 0};
    }
  }
  msg::Message m;
  m.type = msg::MsgType::kOpenReq;
  m.files = {file};
  auto reply = call(std::move(m));
  if (!reply) return reply.status();
  const auto st = statusFrom(*reply);
  if (!st.isOk()) return st;
  OpenInfo info;
  info.available = reply->intArg == 1;
  info.estimatedWait = reply->intArg2;
  std::lock_guard lock(mutex_);
  auto& fw = fileWaits_[file];
  if (info.available) {
    fw.ready = true;
    fw.status = Status::ok();
  } else if (!fw.ready) {
    fw.status = Status::ok();  // pending; kFileReady resolves it
  }
  return info;
}

Status SimFSClient::waitFile(const std::string& file) {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [&] {
    const auto it = fileWaits_.find(file);
    return it != fileWaits_.end() && it->second.ready;
  });
  return fileWaits_.at(file).status;
}

void SimFSClient::closeNotify(const std::string& file) {
  msg::Message m;
  m.type = msg::MsgType::kCloseNotify;
  m.files = {file};
  (void)transport_->send(m);
  std::lock_guard lock(mutex_);
  fileWaits_.erase(file);  // a later reopen re-queries the DV
}

Status SimFSClient::openInto(const std::string& file, RequestId req,
                             VDuration* wait) {
  auto info = open(file);
  if (!info) return info.status();
  if (wait != nullptr) *wait = std::max(*wait, info->estimatedWait);
  if (!info->available) {
    std::lock_guard lock(mutex_);
    const auto it = fileWaits_.find(file);
    const bool ready = it != fileWaits_.end() && it->second.ready;
    if (!ready) requests_.at(req).pending.insert(file);
  }
  return Status::ok();
}

Result<RequestId> SimFSClient::acquireNb(const std::vector<std::string>& files,
                                         SimfsStatus* status) {
  const RequestId id = nextRequest_++;
  {
    std::lock_guard lock(mutex_);
    Request req;
    req.files = files;
    requests_.emplace(id, std::move(req));
  }
  VDuration wait = 0;
  Status worst = Status::ok();
  for (const auto& f : files) {
    const auto st = openInto(f, id, &wait);
    if (!st.isOk()) worst = st;
  }
  {
    std::lock_guard lock(mutex_);
    auto& req = requests_.at(id);
    if (!worst.isOk()) req.worst = worst;
    req.estimatedWait = wait;
    if (status != nullptr) {
      status->error = req.worst;
      status->estimatedWait = wait;
    }
  }
  return id;
}

Status SimFSClient::acquire(const std::vector<std::string>& files,
                            SimfsStatus* status) {
  auto req = acquireNb(files, status);
  if (!req) return req.status();
  return wait(*req, status);
}

Status SimFSClient::wait(RequestId req, SimfsStatus* status) {
  std::unique_lock lock(mutex_);
  const auto it = requests_.find(req);
  if (it == requests_.end()) {
    return errFailedPrecondition("dvlib: unknown request");
  }
  cv_.wait(lock, [&] { return it->second.pending.empty(); });
  const Status st = it->second.worst;
  if (status != nullptr) {
    status->error = st;
    status->estimatedWait = 0;
  }
  requests_.erase(it);
  return st;
}

Status SimFSClient::test(RequestId req, bool* done, SimfsStatus* status) {
  std::lock_guard lock(mutex_);
  const auto it = requests_.find(req);
  if (it == requests_.end()) {
    return errFailedPrecondition("dvlib: unknown request");
  }
  const bool complete = it->second.pending.empty();
  if (done != nullptr) *done = complete;
  if (status != nullptr) {
    status->error = it->second.worst;
    status->estimatedWait = it->second.estimatedWait;
  }
  Status st = it->second.worst;
  if (complete) requests_.erase(it);
  return st;
}

Status SimFSClient::waitSome(RequestId req, std::vector<int>* readyIdx,
                             SimfsStatus* status) {
  std::unique_lock lock(mutex_);
  const auto it = requests_.find(req);
  if (it == requests_.end()) {
    return errFailedPrecondition("dvlib: unknown request");
  }
  auto readyCount = [&] {
    return it->second.files.size() - it->second.pending.size();
  };
  cv_.wait(lock, [&] { return readyCount() > 0 || it->second.pending.empty(); });
  if (readyIdx != nullptr) {
    readyIdx->clear();
    for (std::size_t i = 0; i < it->second.files.size(); ++i) {
      if (it->second.pending.count(it->second.files[i]) == 0) {
        readyIdx->push_back(static_cast<int>(i));
      }
    }
  }
  const Status st = it->second.worst;
  if (status != nullptr) status->error = st;
  if (it->second.pending.empty()) requests_.erase(it);
  return st;
}

Status SimFSClient::testSome(RequestId req, std::vector<int>* readyIdx,
                             SimfsStatus* status) {
  std::lock_guard lock(mutex_);
  const auto it = requests_.find(req);
  if (it == requests_.end()) {
    return errFailedPrecondition("dvlib: unknown request");
  }
  if (readyIdx != nullptr) {
    readyIdx->clear();
    for (std::size_t i = 0; i < it->second.files.size(); ++i) {
      if (it->second.pending.count(it->second.files[i]) == 0) {
        readyIdx->push_back(static_cast<int>(i));
      }
    }
  }
  const Status st = it->second.worst;
  if (status != nullptr) status->error = st;
  if (it->second.pending.empty()) requests_.erase(it);
  return st;
}

Status SimFSClient::release(const std::string& file) {
  msg::Message m;
  m.type = msg::MsgType::kReleaseReq;
  m.files = {file};
  auto reply = call(std::move(m));
  if (!reply) return reply.status();
  {
    std::lock_guard lock(mutex_);
    fileWaits_.erase(file);
  }
  return statusFrom(*reply);
}

Result<bool> SimFSClient::bitrep(const std::string& file,
                                 std::uint64_t digest) {
  msg::Message m;
  m.type = msg::MsgType::kBitrepReq;
  m.files = {file};
  m.intArg = static_cast<std::int64_t>(digest);
  auto reply = call(std::move(m));
  if (!reply) return reply.status();
  const auto st = statusFrom(*reply);
  if (!st.isOk()) return st;
  return reply->intArg == 1;
}

void SimFSClient::finalize() {
  bool expected = false;
  {
    std::lock_guard lock(mutex_);
    if (finalized_) return;
    finalized_ = true;
    expected = true;
  }
  if (expected && transport_) transport_->close();
}

}  // namespace simfs::dvlib
