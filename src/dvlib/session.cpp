#include "dvlib/session.hpp"

#include "common/log.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <optional>

namespace simfs::dvlib {

namespace detail {

/// Shared state behind an AcquireHandle. All fields are guarded by the
/// owning Session's mutex. Instances are recycled through the session's
/// state pool, so vectors (and the strings inside them) keep their
/// capacity across acquires.
struct AcquireState {
  std::vector<std::string> files;
  std::vector<Status> fileStatus;      ///< per-file outcome (ack / retire)
  std::vector<bool> availableAtAck;    ///< on disk at batch time
  std::vector<VDuration> fileWait;     ///< per-file DV estimate
  /// Awaiting kFileReady; transparent comparator so retirements probe
  /// with the receive view's string_view.
  std::set<std::string, std::less<>> pending;
  Status worst;
  VDuration estimatedWait = 0;
  std::uint64_t wireId = 0;  ///< requestId of the kOpenBatchReq
  /// Endpoint the batch currently lives on (owner or a replica link):
  /// the cancel unwinding this batch must land where it registered.
  std::shared_ptr<msg::Transport> servedBy;
  bool ack = false;        ///< batch ack processed
  bool completed = false;  ///< terminal; continuations fired
  bool cancelled = false;
  std::vector<std::function<void(const Status&)>> continuations;
};

}  // namespace detail

namespace {

/// Integer env knob with a fallback for unset/garbage values.
std::int64_t envInt(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return fallback;
  return static_cast<std::int64_t>(parsed);
}

/// Steady-clock ns for retry due-times (never the DV's virtual clock:
/// backoff must keep flowing while the daemon is the thing that's down).
VTime steadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Hop bound for redirect-following: a correct federation resolves in one
/// hop (two with a stale ring); more means the cluster disagrees with
/// itself and looping would never converge.
constexpr int kMaxRedirects = 4;

/// How many recyclable AcquireStates a session retains.
constexpr std::size_t kStatePoolCap = 64;

Status statusFrom(const msg::Message& m) {
  const auto code = static_cast<StatusCode>(m.code);
  if (code == StatusCode::kOk) return Status::ok();
  return Status(code, m.text);
}

Status statusFromView(const msg::MessageView& m) {
  const auto code = static_cast<StatusCode>(m.code());
  if (code == StatusCode::kOk) return Status::ok();
  return Status(code, std::string(m.text()));
}

msg::Message makeHello(const std::string& context) {
  msg::Message hello;
  hello.type = msg::MsgType::kHello;
  hello.context = context;
  hello.intArg = static_cast<std::int64_t>(msg::ClientRole::kAnalysis);
  // Protocol-version handshake, additive: the cap bit plus an advertised
  // [min, max] range. Pre-negotiation daemons ignore unknown cap bits and
  // extra ints and answer a legacy ack (no choice echoed), which the
  // caller reads as version 1.
  hello.intArg2 |= msg::kHelloCapVersion;
  hello.ints.push_back(msg::kProtocolVersionMin);
  hello.ints.push_back(msg::kProtocolVersionMax);
  return hello;
}

/// The daemon's protocol pick out of a kHelloAck; 1 when the ack carries
/// none (legacy daemon, or a replica-mode ack).
std::int64_t negotiatedVersionOf(const msg::Message& reply) {
  return reply.ints.empty() ? 1 : reply.ints[0];
}

std::uint64_t nextCallId() {
  static std::atomic<std::uint64_t> callSeq{1};
  return callSeq.fetch_add(1);
}

/// Per-thread view array over an owned file list, for zero-copy sends.
/// Reused across calls; the returned span is only read until the send
/// returns, and the strings it references must outlive the call (the
/// acquire paths pin them through the state's shared_ptr).
std::span<const std::string_view> scratchViewsOf(
    const std::vector<std::string>& files) {
  thread_local std::vector<std::string_view> scratch;
  scratch.clear();
  for (const auto& f : files) scratch.push_back(f);
  return scratch;
}

}  // namespace

// ------------------------------------------------------------- AcquireHandle

AcquireHandle::AcquireHandle() = default;
AcquireHandle::~AcquireHandle() = default;
AcquireHandle::AcquireHandle(const AcquireHandle&) = default;
AcquireHandle& AcquireHandle::operator=(const AcquireHandle&) = default;
AcquireHandle::AcquireHandle(AcquireHandle&&) noexcept = default;
AcquireHandle& AcquireHandle::operator=(AcquireHandle&&) noexcept = default;

AcquireHandle::AcquireHandle(std::shared_ptr<Session> session,
                             std::shared_ptr<detail::AcquireState> state)
    : session_(std::move(session)), state_(std::move(state)) {}

bool AcquireHandle::valid() const noexcept {
  return session_ != nullptr && state_ != nullptr;
}

const std::vector<std::string>& AcquireHandle::files() const {
  static const std::vector<std::string> kEmpty;
  if (!valid()) return kEmpty;
  return state_->files;  // immutable after construction
}

Status AcquireHandle::wait(SimfsStatus* status, VDuration timeoutNs) {
  if (!valid()) return errFailedPrecondition("dvlib: empty handle");
  return session_->handleWait(state_, status, timeoutNs);
}

Status AcquireHandle::test(bool* done, SimfsStatus* status) {
  if (!valid()) return errFailedPrecondition("dvlib: empty handle");
  std::lock_guard lock(session_->mutex_);
  if (done != nullptr) *done = state_->completed;
  if (status != nullptr) {
    status->error = state_->worst;
    status->estimatedWait = state_->estimatedWait;
  }
  return state_->worst;
}

Status AcquireHandle::waitSome(std::vector<int>* readyIdx,
                               SimfsStatus* status) {
  if (!valid()) return errFailedPrecondition("dvlib: empty handle");
  Session::Fired fired;
  std::unique_lock lock(session_->mutex_);
  auto& st = *state_;
  const auto resolvedCount = [&] {
    return st.ack ? st.files.size() - st.pending.size() : 0;
  };
  if (session_->awaitAckLocked(lock, state_, fired)) {
    session_->cv_.wait(lock,
                       [&] { return st.completed || resolvedCount() > 0; });
  }
  if (readyIdx != nullptr) {
    readyIdx->clear();
    for (std::size_t i = 0; i < st.files.size(); ++i) {
      if (st.ack && st.pending.count(st.files[i]) == 0) {
        readyIdx->push_back(static_cast<int>(i));
      }
    }
  }
  if (status != nullptr) {
    status->error = st.worst;
    status->estimatedWait = st.estimatedWait;
  }
  const Status result = st.worst;
  lock.unlock();
  for (auto& [fn, s] : fired) fn(s);
  return result;
}

Status AcquireHandle::testSome(std::vector<int>* readyIdx,
                               SimfsStatus* status) {
  if (!valid()) return errFailedPrecondition("dvlib: empty handle");
  std::lock_guard lock(session_->mutex_);
  auto& st = *state_;
  if (readyIdx != nullptr) {
    readyIdx->clear();
    for (std::size_t i = 0; i < st.files.size(); ++i) {
      if (st.ack && st.pending.count(st.files[i]) == 0) {
        readyIdx->push_back(static_cast<int>(i));
      }
    }
  }
  if (status != nullptr) {
    status->error = st.worst;
    status->estimatedWait = st.estimatedWait;
  }
  return st.worst;
}

Status AcquireHandle::waitAck(SimfsStatus* status) {
  if (!valid()) return errFailedPrecondition("dvlib: empty handle");
  Session::Fired fired;
  std::unique_lock lock(session_->mutex_);
  (void)session_->awaitAckLocked(lock, state_, fired);
  if (status != nullptr) {
    status->error = state_->worst;
    status->estimatedWait = state_->estimatedWait;
  }
  const Status result = state_->worst;
  lock.unlock();
  for (auto& [fn, s] : fired) fn(s);
  return result;
}

void AcquireHandle::then(std::function<void(const Status&)> fn) {
  if (!valid() || !fn) return;
  Status final;
  {
    std::lock_guard lock(session_->mutex_);
    if (!state_->completed) {
      state_->continuations.push_back(std::move(fn));
      return;
    }
    final = state_->worst;
  }
  fn(final);  // already terminal: fire inline
}

Status AcquireHandle::cancel() {
  if (!valid()) return errFailedPrecondition("dvlib: empty handle");
  return session_->handleCancel(state_);
}

bool AcquireHandle::complete() const {
  if (!valid()) return false;
  std::lock_guard lock(session_->mutex_);
  return state_->completed;
}

VDuration AcquireHandle::estimatedWait() const {
  if (!valid()) return 0;
  std::lock_guard lock(session_->mutex_);
  return state_->estimatedWait;
}

AcquireHandle::FileProbe AcquireHandle::probe(std::size_t index) const {
  FileProbe p;
  if (!valid()) {
    p.status = errFailedPrecondition("dvlib: empty handle");
    return p;
  }
  std::lock_guard lock(session_->mutex_);
  if (index >= state_->files.size()) {
    p.status = errInvalidArgument("dvlib: probe index out of range");
    return p;
  }
  p.status = state_->fileStatus[index];
  p.available = state_->availableAtAck[index];
  p.estimatedWait = state_->fileWait[index];
  return p;
}

// ------------------------------------------------------------------ Session

Session::Session(std::string context) : context_(std::move(context)) {
  opDeadlineNs_ =
      std::max<std::int64_t>(0, envInt("SIMFS_OP_DEADLINE_MS", 0)) * 1'000'000;
  retryBudget_ = static_cast<int>(
      std::clamp<std::int64_t>(envInt("SIMFS_RETRY_BUDGET", 3), 0, 1000));
  retryBaseNs_ =
      std::max<std::int64_t>(1, envInt("SIMFS_RETRY_BASE_MS", 10)) * 1'000'000;
  callTimeoutNs_ =
      std::max<std::int64_t>(1, envInt("SIMFS_CALL_TIMEOUT_MS", 30'000)) *
      1'000'000;
}

void Session::setOpDeadline(VDuration ns) {
  std::lock_guard lock(mutex_);
  opDeadlineNs_ = ns > 0 ? ns : 0;
}

void Session::setRetryPolicy(int budget, VDuration baseBackoffNs) {
  std::lock_guard lock(mutex_);
  retryBudget_ = std::max(0, budget);
  if (baseBackoffNs > 0) retryBaseNs_ = baseBackoffNs;
}

Session::~Session() {
  finalize();
  // Teardown handshake: destroying the endpoints disarms their handlers
  // and blocks until in-flight callbacks have left, so the members those
  // callbacks capture (via `this`) are still alive while they run.
  // Pooled states may pin replica transports through servedBy — drop
  // those references here so every endpoint dies inside this body, not
  // during member destruction.
  for (const auto& s : statePool_) s->servedBy.reset();
  retired_.clear();
  transport_.reset();
}

void Session::attach(const std::shared_ptr<msg::Transport>& t) {
  // Raw `this` is deliberate — and safe only because ~Session destroys
  // every attached endpoint FIRST: a transport destructor disarms its
  // handler slots and waits out invocations already inside them, so no
  // callback can touch session members mid-destruction. (A weak/shared
  // self-reference here would be worse, not better: a callback that
  // ends up owning the last reference would run ~Session inside the
  // very handler invocation the transport destructor waits on — a
  // self-deadlock.)
  t->setViewHandler([this](const msg::MessageView& m) { onMessage(m); });
  // Peer death must fail outstanding waits instead of stranding them.
  t->setCloseHandler([this, raw = t.get()] { onTransportClosed(raw); });
}

Result<std::shared_ptr<Session>> Session::connect(
    std::unique_ptr<msg::Transport> transport, const std::string& context) {
  auto session = std::shared_ptr<Session>(new Session(context));
  std::shared_ptr<msg::Transport> t = std::move(transport);
  session->attach(t);
  auto reply = session->callOn(t, makeHello(context));
  if (!reply) return reply.status();
  if (reply->type == msg::MsgType::kRedirect) {
    return errFailedPrecondition(
        "dvlib: context '" + context + "' is owned by node '" + reply->text +
        "'; connect through a NodeRouter to follow redirects");
  }
  const auto st = statusFrom(*reply);
  if (!st.isOk()) return st;
  session->clientId_ = static_cast<ClientId>(reply->intArg);
  session->protocolVersion_.store(negotiatedVersionOf(*reply),
                                  std::memory_order_relaxed);
  session->transport_ = std::move(t);
  return session;
}

Result<std::shared_ptr<Session>> Session::connect(
    std::shared_ptr<NodeRouter> router, const std::string& context) {
  if (!router) return errInvalidArgument("dvlib: null router");
  auto session = std::shared_ptr<Session>(new Session(context));
  session->router_ = std::move(router);
  auto owner = session->router_->ownerOf(context);
  if (!owner) return owner.status();
  SIMFS_RETURN_IF_ERROR(session->rebind(owner->id));
  return session;
}

std::shared_ptr<msg::Transport> Session::transportRef() {
  std::lock_guard lock(mutex_);
  return transport_;
}

// ------------------------------------------------------- read-replica spread

int Session::replicaIndexOfLocked(const msg::Transport* t) const {
  if (t == nullptr) return -1;
  for (std::size_t i = 0; i < replicaLinks_.size(); ++i) {
    if (replicaLinks_[i].transport.get() == t) return static_cast<int>(i);
  }
  return -1;
}

std::size_t Session::replicaEndpoints() {
  std::lock_guard lock(mutex_);
  std::size_t live = 0;
  for (const auto& link : replicaLinks_) {
    if (!link.dead && link.transport && link.transport->isOpen()) ++live;
  }
  return live;
}

std::shared_ptr<msg::Transport> Session::pickTransportLocked() {
  if (router_ != nullptr && transport_ != nullptr && !replicaSetupDone_ &&
      !replicaSetupPending_ && !finalized_ && router_->replicaCount() > 0) {
    // First acquire after the federation advertised replicas: hand the
    // (blocking) dial + replica hellos to the recovery thread. This
    // batch still goes to the owner; later ones spread.
    replicaSetupPending_ = true;
    wakeRecoveryLocked();
  }
  std::size_t live = 0;
  for (const auto& link : replicaLinks_) {
    if (!link.dead && link.transport && link.transport->isOpen()) ++live;
  }
  if (live == 0 || transport_ == nullptr) return transport_;
  // Power-of-two-choices on per-endpoint estimated wait: sample two
  // distinct candidates (0 = owner, 1.. = live replica links) and take
  // the one whose last batch ack promised the shorter wait — loaded
  // endpoints (deep re-simulation queues) shed traffic automatically,
  // idle replicas absorb it.
  const std::size_t n = 1 + live;
  const auto draw = [this](std::uint64_t bound) {
    retrySalt_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = retrySalt_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return (z ^ (z >> 31)) % bound;
  };
  std::size_t a = draw(n);
  std::size_t b = draw(n - 1);
  if (b >= a) ++b;
  const auto candidate = [&](std::size_t idx)
      -> std::pair<std::shared_ptr<msg::Transport>, VDuration> {
    if (idx == 0) return {transport_, ownerWait_};
    std::size_t seen = 0;
    for (const auto& link : replicaLinks_) {
      if (link.dead || !link.transport || !link.transport->isOpen()) continue;
      if (++seen == idx) return {link.transport, link.lastWait};
    }
    return {transport_, ownerWait_};
  };
  auto [ta, wa] = candidate(a);
  auto [tb, wb] = candidate(b);
  return wa <= wb ? std::move(ta) : std::move(tb);
}

void Session::setupReplicaLinks() {
  if (router_ == nullptr) return;
  for (const auto& node : router_->replicasOf(context_)) {
    {
      std::lock_guard lock(mutex_);
      if (finalized_ || recoveryStop_) return;
      bool have = false;
      for (const auto& link : replicaLinks_) {
        if (link.nodeId == node.id && !link.dead && link.transport &&
            link.transport->isOpen()) {
          have = true;
          break;
        }
      }
      if (have) continue;
    }
    auto checked = router_->checkout(node.endpoint);
    if (!checked) continue;  // best effort: the owner still serves
    std::shared_ptr<msg::Transport> t = std::move(*checked);
    attach(t);
    msg::Message hello = makeHello(context_);
    // ONLY the replica cap travels on replica hellos (never on the main
    // session's, so a rebind can never accidentally bind to a replica):
    // the daemon binds this link in replica mode — leased resident steps
    // serve locally, everything else answers kNotLeased.
    hello.intArg2 |= msg::kHelloCapReplica;
    auto reply = callOn(t, hello);
    if (!reply) {
      t->close();
      continue;
    }
    if (reply->type == msg::MsgType::kRedirect) {
      // Not (or no longer) a lease holder: nothing bound server-side, so
      // the connection is reusable by sessions that node does own.
      if (auto ring = ringFromMessage(*reply)) router_->adoptRing(*ring);
      router_->noteReplicaCount(static_cast<std::size_t>(
          std::max<std::int64_t>(0, reply->intArg2)));
      router_->checkin(node.endpoint, std::move(t));
      continue;
    }
    if (!statusFrom(*reply).isOk()) {
      t->close();
      continue;
    }
    bool closeNow = false;
    {
      std::lock_guard lock(mutex_);
      if (finalized_) {
        closeNow = true;  // raced finalize(): nothing tracks it anymore
      } else {
        ReplicaLink link;
        link.nodeId = node.id;
        link.endpoint = node.endpoint;
        link.transport = std::move(t);
        replicaLinks_.push_back(std::move(link));
      }
    }
    if (closeNow) {
      t->close();
      return;
    }
  }
  std::lock_guard lock(mutex_);
  replicaSetupDone_ = true;
}

Result<msg::Message> Session::callOn(const std::shared_ptr<msg::Transport>& t,
                                     msg::Message m) {
  m.requestId = nextCallId();
  const auto id = m.requestId;
  {
    // Registered before the send so a rebind racing in between still
    // sees (and can fail) this call.
    std::lock_guard lock(mutex_);
    inflight_[id] = t.get();
  }
  const Status sent = t->send(m);
  std::unique_lock lock(mutex_);
  if (!sent.isOk()) {
    inflight_.erase(id);
    return sent;
  }
  const bool got = cv_.wait_for(lock, std::chrono::nanoseconds(callTimeoutNs_),
                                [&] { return replies_.count(id) > 0; });
  inflight_.erase(id);
  if (!got) return errTimedOut("dvlib: no reply from DV");
  auto reply = std::move(replies_.at(id));
  replies_.erase(id);
  return reply;
}

Result<msg::Message> Session::call(msg::Message m) {
  for (int hop = 0; hop <= kMaxRedirects; ++hop) {
    auto t = transportRef();
    if (!t) return errUnavailable("dvlib: session not connected");
    auto reply = callOn(t, m);  // m kept for a possible post-redirect resend
    if (!reply || reply->type != msg::MsgType::kRedirect) return reply;
    if (router_ == nullptr) {
      return errUnavailable("dvlib: redirected to node '" + reply->text +
                            "' but session has no router");
    }
    if (auto ring = ringFromMessage(*reply)) router_->adoptRing(*ring);
    router_->noteReplicaCount(static_cast<std::size_t>(
        std::max<std::int64_t>(0, reply->intArg2)));
    SIMFS_RETURN_IF_ERROR(rebind(reply->text));
  }
  return errUnavailable("dvlib: redirect loop (ring members disagree)");
}

// ----------------------------------------------------------- async delivery

std::vector<Session::AsyncOp>::iterator Session::findAsyncOp(
    std::uint64_t id) {
  return std::find_if(asyncOps_.begin(), asyncOps_.end(),
                      [id](const AsyncOp& op) { return op.id == id; });
}

void Session::completeLocked(
    const std::shared_ptr<detail::AcquireState>& state, Fired& fired) {
  if (state->completed) return;
  state->completed = true;
  for (auto& fn : state->continuations) {
    fired.emplace_back(std::move(fn), state->worst);
  }
  state->continuations.clear();
  std::erase(active_, state);
  cv_.notify_all();
}

void Session::failStateLocked(
    const std::shared_ptr<detail::AcquireState>& state, const Status& st,
    Fired& fired) {
  if (state->completed) return;
  state->ack = true;
  if (state->worst.isOk()) state->worst = st;
  for (std::size_t i = 0; i < state->files.size(); ++i) {
    if (!state->availableAtAck[i] && state->fileStatus[i].isOk()) {
      state->fileStatus[i] = st;
    }
  }
  state->pending.clear();
  completeLocked(state, fired);
}

void Session::applyBatchAckLocked(detail::AcquireState& state,
                                  const msg::MessageView& m) {
  state.ack = true;
  const std::size_t n = state.files.size();
  if (m.type() != msg::MsgType::kOpenBatchAck || m.intCount() != 2 * n) {
    // Error reply (or a malformed ack from a hostile peer): the whole
    // batch failed, nothing was registered server-side.
    Status overall = statusFromView(m);
    if (overall.isOk()) {
      overall = errInternal("dvlib: malformed open-batch ack");
    }
    state.worst = overall;
    state.fileStatus.assign(n, overall);
    return;
  }
  // Outcome pairs decode lazily, in place, straight from the receive
  // buffer — the whole hit path runs without touching the heap.
  auto it = m.intsBegin();
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t packed = *it;
    ++it;
    const VDuration wait = *it;
    ++it;
    if (packed < 0) {
      state.fileStatus[i] = errInternal("dvlib: bad per-file outcome");
      state.worst = state.fileStatus[i];
      continue;
    }
    const auto code = static_cast<StatusCode>(packed >> 1);
    const bool avail = (packed & 1) != 0;
    state.availableAtAck[i] = avail;
    state.fileWait[i] = wait;
    if (code != StatusCode::kOk) {
      // Per-file failure: this file registered nothing server-side. The
      // worst-status message travels in the ack's text field.
      Status st(code, m.code() == static_cast<std::int32_t>(code)
                          ? std::string(m.text())
                          : std::string(statusCodeName(code)));
      state.fileStatus[i] = st;
      state.worst = st;
      continue;
    }
    state.fileStatus[i] = Status::ok();
    const std::string& f = state.files[i];
    auto& fw = fileWaits_[f];
    if (avail) {
      fw.ready = true;
      fw.status = Status::ok();
    } else {
      state.estimatedWait = std::max(state.estimatedWait, wait);
      if (fw.ready) {
        // A stale resolution (earlier completion since evicted, failed
        // job, or waits failed by a rebind) is superseded by this fresh
        // not-yet-available outcome: the server is authoritative and has
        // just re-registered us as a waiter.
        fw.ready = false;
        fw.status = Status::ok();
      }
      if (!state.cancelled) state.pending.insert(f);
    }
  }
}

void Session::onMessage(const msg::MessageView& m) {
  // One owned copy serves both the ring adoption and (for kRingReq
  // replies) the sync-reply delivery below.
  std::optional<msg::Message> ringOwned;
  if (m.type() == msg::MsgType::kRingUpdate && router_ != nullptr) {
    // Membership push: re-resolve future routing. router_ is set once at
    // construction, so reading it here without the lock is safe.
    ringOwned = m.toMessage();
    if (auto ring = ringFromMessage(*ringOwned)) router_->adoptRing(*ring);
    router_->noteReplicaCount(static_cast<std::size_t>(
        std::max<std::int64_t>(0, ringOwned->intArg2)));
    if (m.requestId() == 0) return;  // pure push, not a reply
  }
  Fired fired;
  {
    std::lock_guard lock(mutex_);
    if (m.type() == msg::MsgType::kFileReady) {
      const std::string_view file = m.file0();
      auto fit = fileWaits_.find(file);
      if (fit == fileWaits_.end()) {
        fit = fileWaits_.emplace(std::string(file), FileWait{}).first;
      }
      FileWait& fw = fit->second;
      fw.ready = true;
      fw.status = statusFromView(m);
      // Retire the file from every live acquire awaiting it.
      std::vector<std::shared_ptr<detail::AcquireState>> done;
      for (const auto& state : active_) {
        const auto pit = state->pending.find(file);
        if (pit == state->pending.end()) continue;
        state->pending.erase(pit);
        for (std::size_t i = 0; i < state->files.size(); ++i) {
          if (state->files[i] == file && !state->availableAtAck[i]) {
            state->fileStatus[i] = fw.status;
          }
        }
        if (!fw.status.isOk()) state->worst = fw.status;
        if (state->ack && state->pending.empty()) done.push_back(state);
      }
      for (const auto& state : done) completeLocked(state, fired);
      cv_.notify_all();
    } else if (const auto op = findAsyncOp(m.requestId());
               op != asyncOps_.end()) {
      if (m.type() == msg::MsgType::kRedirect) {
        ++op->redirects;
        if (router_ == nullptr || op->redirects > kMaxRedirects) {
          auto state = op->state;
          asyncOps_.erase(op);
          failStateLocked(
              state,
              router_ == nullptr
                  ? errUnavailable("dvlib: redirected to node '" +
                                   std::string(m.text()) +
                                   "' but session has no router")
                  : errUnavailable(
                        "dvlib: redirect loop (ring members disagree)"),
              fired);
        } else {
          // The rebind dials and blocks for a hello — not allowed on
          // this (reactor) thread. Hand it to the recovery thread, which
          // resends every surviving op once rebound.
          const msg::Message owned = m.toMessage();
          if (auto ring = ringFromMessage(owned)) router_->adoptRing(*ring);
          router_->noteReplicaCount(static_cast<std::size_t>(
              std::max<std::int64_t>(0, owned.intArg2)));
          queueRedirectLocked(owned.text);
        }
      } else {
        // A replica whose lease was revoked (or never covered the batch)
        // answers kNotLeased — whole-batch or per-file. Not a failure:
        // the recovery thread unwinds the partial registration on the
        // replica and resends the op, same requestId, on the owner.
        const int replicaIdx = replicaIndexOfLocked(op->transport);
        bool notLeased = false;
        if (replicaIdx >= 0 && !op->state->cancelled) {
          if (static_cast<StatusCode>(m.code()) == StatusCode::kNotLeased) {
            notLeased = true;
          } else if (m.type() == msg::MsgType::kOpenBatchAck) {
            for (auto ip = m.intsBegin(); ip != m.intsEnd(); ++ip) {
              const std::int64_t packed = *ip;  // (code << 1) | available
              if (packed >= 0 && static_cast<StatusCode>(packed >> 1) ==
                                     StatusCode::kNotLeased) {
                notLeased = true;
                break;
              }
              ++ip;  // skip this pair's estimated wait
              if (ip == m.intsEnd()) break;
            }
          }
        }
        if (notLeased) {
          fallbacks_.push_back(ReplicaFallback{
              op->id,
              replicaLinks_[static_cast<std::size_t>(replicaIdx)].transport});
          wakeRecoveryLocked();
          return;  // op stays in asyncOps_ awaiting the owner's ack
        }
        // A whole-batch kUnavailable with no outcome pairs is a load
        // shed: the shard dropped the request before registering
        // anything, so resending the SAME requestId is safe (and the
        // daemon's dedup window absorbs the case where it did answer
        // and the ack was lost).
        const bool shed =
            static_cast<StatusCode>(m.code()) == StatusCode::kUnavailable &&
            m.intCount() == 0 && !op->state->cancelled;
        if (shed && op->attempts < retryBudget_) {
          ++op->attempts;
          const VDuration hint =
              std::max(op->state->estimatedWait, retryBaseNs_);
          queueRetryLocked(op->id, retryBackoffNs(op->attempts, hint));
        } else if (shed) {
          auto state = op->state;
          asyncOps_.erase(op);
          failStateLocked(
              state,
              errUnreachable("dvlib: retry budget exhausted (DV shedding)"),
              fired);
        } else {
          auto state = op->state;
          const msg::Transport* src = op->transport;
          asyncOps_.erase(op);
          applyBatchAckLocked(*state, m);
          // Feed the p2c picker: the batch's worst estimated wait is the
          // endpoint's freshest load signal (0 = everything was resident).
          if (src == transport_.get()) {
            ownerWait_ = state->estimatedWait;
          } else if (const int ri = replicaIndexOfLocked(src); ri >= 0) {
            auto& link = replicaLinks_[static_cast<std::size_t>(ri)];
            link.lastWait = state->estimatedWait;
            // The step references now live at the REPLICA: remember the
            // serving link per file so release() unwinds them there.
            for (std::size_t i = 0; i < state->files.size(); ++i) {
              if (state->fileStatus[i].isOk()) {
                replicaRefs_[state->files[i]].push_back(link.transport);
              }
            }
          }
          if (!state->cancelled && state->pending.empty()) {
            completeLocked(state, fired);
          }
          cv_.notify_all();
        }
      }
    } else if (inflight_.count(m.requestId()) != 0) {
      replies_[m.requestId()] =
          ringOwned ? std::move(*ringOwned) : m.toMessage();
      cv_.notify_all();
    } else {
      // Unmatched reply — e.g. a batch ack landing after its op already
      // timed out. Dropping it is the only option that does not grow
      // replies_ without bound on a slow daemon.
      SIMFS_LOG_DEBUG("dvlib", "dropping unmatched reply");
    }
  }
  for (auto& [fn, st] : fired) fn(st);
}

void Session::wakeRecoveryLocked() {
  if (!recovery_.joinable()) {
    recovery_ = std::thread([this] { recoveryLoop(); });
  }
  cv_.notify_all();
}

void Session::queueRedirectLocked(const std::string& target) {
  if (std::find(redirectTargets_.begin(), redirectTargets_.end(), target) ==
      redirectTargets_.end()) {
    redirectTargets_.push_back(target);
  }
  wakeRecoveryLocked();
}

void Session::queueRetryLocked(std::uint64_t opId, VDuration delayNs) {
  retries_.push_back(PendingRetry{opId, steadyNowNs() + delayNs});
  wakeRecoveryLocked();
}

void Session::queueReconnectLocked() {
  if (reconnectPending_) return;  // one re-dial covers every closed-op wake
  reconnectPending_ = true;
  wakeRecoveryLocked();
}

VDuration Session::retryBackoffNs(int attempt, VDuration hint) {
  constexpr VDuration kBackoffCap = 2'000'000'000;  // 2s
  VDuration base = std::max(hint, retryBaseNs_);
  for (int i = 1; i < attempt && base < kBackoffCap; ++i) base *= 2;
  base = std::min(base, kBackoffCap);
  // Deterministic ±25% jitter (splitmix-style) so a fleet of shed clients
  // does not re-dogpile the shard in lockstep.
  retrySalt_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = retrySalt_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  const std::uint64_t r = (z ^ (z >> 31)) & 0x1ff;  // 0..511
  return static_cast<VDuration>(static_cast<double>(base) *
                                (0.75 + static_cast<double>(r) / 1024.0));
}

void Session::recoveryLoop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    const auto signalled = [&] {
      return recoveryStop_ || !redirectTargets_.empty() ||
             reconnectPending_ || !fallbacks_.empty() || replicaSetupPending_;
    };
    if (retries_.empty()) {
      cv_.wait(lock, [&] { return signalled() || !retries_.empty(); });
    } else {
      VTime due = retries_.front().due;
      for (const auto& r : retries_) due = std::min(due, r.due);
      const auto until =
          std::chrono::steady_clock::now() +
          std::chrono::nanoseconds(std::max<VTime>(0, due - steadyNowNs()));
      (void)cv_.wait_until(lock, until, signalled);
    }
    if (recoveryStop_) return;
    if (!redirectTargets_.empty()) {
      const std::string target = redirectTargets_.front();
      redirectTargets_.pop_front();
      lock.unlock();
      const Status st = rebind(target);
      if (!st.isOk()) failAsyncOps(st);
      lock.lock();
      continue;
    }
    if (replicaSetupPending_) {
      replicaSetupPending_ = false;
      lock.unlock();
      setupReplicaLinks();  // dials + replica hellos; best effort
      lock.lock();
      continue;
    }
    if (!fallbacks_.empty()) {
      ReplicaFallback fb = std::move(fallbacks_.front());
      fallbacks_.pop_front();
      std::vector<std::string> files;
      if (const auto it = findAsyncOp(fb.opId);
          it != asyncOps_.end() && !it->state->completed &&
          !it->state->cancelled) {
        files = it->state->files;
      }
      lock.unlock();
      if (!files.empty()) {
        // Unwind whatever the replica partially registered before its
        // not-leased answer (fire-and-forget; replica refs carry no
        // cache pins, so a lost cancel is benign), then resend the batch
        // on the owner under the same requestId.
        if (fb.replica && fb.replica->isOpen()) {
          msg::MessageRef cancel;
          cancel.type = msg::MsgType::kCancelReq;
          cancel.context = context_;
          cancel.files = scratchViewsOf(files);
          (void)fb.replica->send(cancel);
        }
        resendOp(fb.opId);
      }
      lock.lock();
      continue;
    }
    if (reconnectPending_) {
      reconnectPending_ = false;
      const int attempt = ++reconnectAttempts_;
      const int budget = retryBudget_;
      lock.unlock();
      // Re-resolve the context owner — the ring may have healed around
      // the dead node — and rebind, which resends surviving un-acked
      // batches under their original requestIds.
      Status st = errUnavailable("dvlib: session has no router");
      if (router_ != nullptr) {
        if (auto owner = router_->ownerOf(context_)) {
          st = rebind(owner->id);
        } else {
          st = owner.status();
        }
      }
      if (st.isOk()) {
        lock.lock();
        reconnectAttempts_ = 0;
        continue;
      }
      if (attempt > budget) {
        // Out of budget: everything still outstanding completes with a
        // terminal kUnreachable instead of hanging on a dead endpoint.
        Fired fired;
        {
          std::lock_guard lk(mutex_);
          failAllLocked(errUnreachable("dvlib: retry budget exhausted: " +
                                       std::string(st.message())),
                        fired);
        }
        for (auto& [fn, s] : fired) fn(s);
        lock.lock();
        reconnectAttempts_ = 0;
        continue;
      }
      lock.lock();
      (void)cv_.wait_for(lock,
                         std::chrono::nanoseconds(
                             retryBackoffNs(attempt, retryBaseNs_)),
                         [&] { return recoveryStop_; });
      if (recoveryStop_) return;
      reconnectPending_ = true;
      continue;
    }
    const VTime now = steadyNowNs();
    for (std::size_t i = 0; i < retries_.size();) {
      if (retries_[i].due > now) {
        ++i;
        continue;
      }
      const std::uint64_t opId = retries_[i].opId;
      retries_.erase(retries_.begin() + static_cast<std::ptrdiff_t>(i));
      lock.unlock();
      resendOp(opId);
      lock.lock();
      i = 0;  // the deque may have changed while unlocked
    }
  }
}

void Session::resendOp(std::uint64_t opId) {
  std::shared_ptr<msg::Transport> t;
  std::shared_ptr<detail::AcquireState> state;
  VDuration deadline = 0;
  {
    std::lock_guard lock(mutex_);
    const auto it = findAsyncOp(opId);
    if (it == asyncOps_.end() || it->state->completed ||
        it->state->cancelled) {
      return;  // resolved (or abandoned) while the backoff ran
    }
    t = transport_;
    if (!t) return;  // reconnect in flight; the rebind resends survivors
    it->transport = t.get();
    it->state->servedBy = t;  // retarget: resends always go to the owner
    state = it->state;
    deadline = opDeadlineNs_;
  }
  msg::MessageRef req;
  req.type = msg::MsgType::kOpenBatchReq;
  req.requestId = opId;
  req.intArg2 = deadline;
  req.files = scratchViewsOf(state->files);
  const Status sent = t->send(req);
  if (sent.isOk()) return;
  Fired fired;
  {
    std::lock_guard lock(mutex_);
    const auto it = findAsyncOp(opId);
    if (it != asyncOps_.end() && it->transport == t.get()) {
      auto failing = it->state;
      asyncOps_.erase(it);
      failStateLocked(failing, sent, fired);
    }
  }
  for (auto& [fn, s] : fired) fn(s);
}

void Session::failAllLocked(const Status& down, Fired& fired) {
  for (auto& op : asyncOps_) failStateLocked(op.state, down, fired);
  asyncOps_.clear();
  for (auto& [file, fw] : fileWaits_) {
    if (!fw.ready) {
      fw.ready = true;
      fw.status = down;
    }
  }
  const auto actives = active_;  // completeLocked mutates active_
  for (const auto& s : actives) failStateLocked(s, down, fired);
  for (const auto& [id, tp] : inflight_) {
    if (replies_.count(id) == 0) {
      msg::Message failed;
      failed.type = msg::MsgType::kError;
      failed.requestId = id;
      failed.code = static_cast<std::int32_t>(down.code());
      failed.text = down.message();
      replies_.emplace(id, std::move(failed));
    }
  }
  cv_.notify_all();
}

void Session::failNonResendableLocked(const Status& down, Fired& fired) {
  // Per-file waiter registrations died with the connection; threads in
  // waitFile() wake with a retryable error and reopen after the rebind.
  for (auto& [file, fw] : fileWaits_) {
    if (!fw.ready) {
      fw.ready = true;
      fw.status = down;
    }
  }
  // Acked acquires still owed files cannot be resent (their batch already
  // registered and the registrations are gone) — complete them now.
  std::vector<std::shared_ptr<detail::AcquireState>> owed;
  for (const auto& s : active_) {
    if (s->ack && !s->pending.empty()) owed.push_back(s);
  }
  for (const auto& s : owed) failStateLocked(s, down, fired);
  // Sync calls are request/reply: hand them a synthetic error instead of
  // letting them sit out the full call timeout.
  for (const auto& [id, tp] : inflight_) {
    if (replies_.count(id) == 0) {
      msg::Message failed;
      failed.type = msg::MsgType::kError;
      failed.requestId = id;
      failed.code = static_cast<std::int32_t>(down.code());
      failed.text = down.message();
      replies_.emplace(id, std::move(failed));
    }
  }
  cv_.notify_all();
}

void Session::onTransportClosed(const msg::Transport* t) {
  Fired fired;
  {
    std::lock_guard lock(mutex_);
    const Status down = errUnavailable("dvlib: connection to DV lost");
    if (transport_ != nullptr && transport_.get() == t) {
      if (router_ != nullptr && !finalized_) {
        // The live link died mid-session, but the router can re-resolve
        // the context owner: fail only what cannot survive the move and
        // hand re-dialing to the recovery thread. Un-acked async ops stay
        // alive — the rebind resends them under their original
        // requestIds, and the daemon's dedup window makes that safe even
        // if the original request was processed and only its ack lost.
        failNonResendableLocked(down, fired);
        queueReconnectLocked();
      } else {
        // No router to fail over with: nothing outstanding can resolve
        // anymore. Terminal, not transient — retrying a dead endpoint
        // the session cannot re-resolve would hang forever.
        failAllLocked(errUnreachable("dvlib: connection to DV lost"), fired);
      }
    } else if (const int ri = replicaIndexOfLocked(t); ri >= 0) {
      // A replica link died: nothing is lost — ops tagged to it retarget
      // to the owner through the retry path (untagged first, so a racing
      // send failure cannot double-fail them). The transport object must
      // outlive this callback, so it parks on the retired list instead
      // of being destroyed here.
      ReplicaLink& link = replicaLinks_[static_cast<std::size_t>(ri)];
      link.dead = true;
      if (link.transport) retired_.push_back(std::move(link.transport));
      for (auto& op : asyncOps_) {
        if (op.transport != t || op.state->completed ||
            op.state->cancelled) {
          continue;
        }
        op.transport = nullptr;
        queueRetryLocked(op.id, 0);
      }
      // A sync call on the link (the replica hello, at most) fails soft.
      for (const auto& [id, tp] : inflight_) {
        if (tp == t && replies_.count(id) == 0) {
          msg::Message failed;
          failed.type = msg::MsgType::kError;
          failed.requestId = id;
          failed.code = static_cast<std::int32_t>(down.code());
          failed.text = down.message();
          replies_.emplace(id, std::move(failed));
        }
      }
      cv_.notify_all();
    } else {
      // A retired link died late: only ops still tagged to it are lost
      // (rebind retargets surviving ops before closing the old link).
      for (auto it = asyncOps_.begin(); it != asyncOps_.end();) {
        if (it->transport != t) {
          ++it;
          continue;
        }
        auto state = it->state;
        it = asyncOps_.erase(it);
        failStateLocked(state, down, fired);
      }
      for (const auto& [id, tp] : inflight_) {
        if (tp == t && replies_.count(id) == 0) {
          msg::Message failed;
          failed.type = msg::MsgType::kError;
          failed.requestId = id;
          failed.code = static_cast<std::int32_t>(down.code());
          failed.text = down.message();
          replies_.emplace(id, std::move(failed));
        }
      }
      cv_.notify_all();
    }
  }
  for (auto& [fn, s] : fired) fn(s);
}

void Session::failAsyncOps(const Status& st) {
  Fired fired;
  {
    std::lock_guard lock(mutex_);
    for (auto& op : asyncOps_) failStateLocked(op.state, st, fired);
    asyncOps_.clear();
    cv_.notify_all();
  }
  for (auto& [fn, s] : fired) fn(s);
}

Status Session::rebind(std::string targetNode) {
  for (int hop = 0; hop <= kMaxRedirects; ++hop) {
    auto node = router_->node(targetNode);
    if (!node) return node.status();
    auto checked = router_->checkout(node->endpoint);
    if (!checked) return checked.status();
    std::shared_ptr<msg::Transport> t = std::move(*checked);
    attach(t);
    auto reply = callOn(t, makeHello(context_));
    if (!reply) {
      t->close();
      return reply.status();
    }
    if (reply->type == msg::MsgType::kRedirect) {
      // The daemon rejected the hello without binding anything, so the
      // connection is reusable by sessions this node does own.
      if (auto ring = ringFromMessage(*reply)) router_->adoptRing(*ring);
      router_->noteReplicaCount(static_cast<std::size_t>(
          std::max<std::int64_t>(0, reply->intArg2)));
      targetNode = reply->text;
      router_->checkin(node->endpoint, std::move(t));
      continue;
    }
    const Status st = statusFrom(*reply);
    if (!st.isOk()) {
      t->close();
      return st;
    }
    std::shared_ptr<msg::Transport> old;
    std::vector<std::uint64_t> resendIds;
    std::vector<msg::Message> resend;
    Fired fired;
    {
      std::lock_guard lock(mutex_);
      clientId_ = static_cast<ClientId>(reply->intArg);
      protocolVersion_.store(negotiatedVersionOf(*reply),
                             std::memory_order_relaxed);
      old = std::move(transport_);
      transport_ = t;
      if (old) {
        retired_.push_back(old);
        const Status moved =
            errUnavailable("dvlib: session moved nodes; reopen the file");
        // Un-acked vectored ops SURVIVE the move: they are resent on the
        // new link below under the same requestId, so the eventual ack
        // still matches — this is the redirect-follow for batched opens.
        // Ops already cancelled client-side are dropped instead;
        // resending them would re-register interest nobody releases. The
        // wire message is rebuilt from the state's file list.
        for (auto it = asyncOps_.begin(); it != asyncOps_.end();) {
          if (it->state->completed) {
            it = asyncOps_.erase(it);
            continue;
          }
          it->transport = t.get();
          it->state->servedBy = t;
          msg::Message req;
          req.type = msg::MsgType::kOpenBatchReq;
          req.requestId = it->id;
          req.intArg2 = opDeadlineNs_;  // fresh budget on the new owner
          req.files = it->state->files;
          resendIds.push_back(it->id);
          resend.push_back(std::move(req));
          ++it;
        }
        // The old node held this session's registered waiters; they die
        // with it. Fail outstanding per-file waits NOW so threads
        // blocked in waitFile() wake with a retryable error and reopen
        // on the new owner, instead of waiting forever for a kFileReady
        // the new node will never send. (Resent ops re-arm their files
        // when their fresh ack lands.)
        for (auto& [file, fw] : fileWaits_) {
          if (!fw.ready) {
            fw.ready = true;
            fw.status = moved;
          }
        }
        // Acked acquires still owed files complete with the same
        // retryable error — their waiter registrations died on the old
        // node.
        std::vector<std::shared_ptr<detail::AcquireState>> owed;
        for (const auto& s : active_) {
          if (s->ack && !s->pending.empty()) owed.push_back(s);
        }
        for (const auto& s : owed) failStateLocked(s, moved, fired);
        // Sync calls still awaiting a reply on the link being closed
        // would otherwise sit out the full call timeout: hand them a
        // synthetic error reply instead.
        for (const auto& [id, tp] : inflight_) {
          if (tp == old.get() && replies_.count(id) == 0) {
            msg::Message failed;
            failed.type = msg::MsgType::kError;
            failed.requestId = id;
            failed.code = static_cast<std::int32_t>(moved.code());
            failed.text = moved.message();
            replies_.emplace(id, std::move(failed));
          }
        }
        cv_.notify_all();
      }
    }
    for (auto& [fn, s] : fired) fn(s);
    // Closing the replaced link tears the stale session down on the node
    // that no longer owns the context.
    if (old) old->close();
    // Resend surviving vectored ops on the new link, outside the lock
    // (an in-proc send can deliver the ack inline).
    for (std::size_t i = 0; i < resend.size(); ++i) {
      const Status sent = t->send(resend[i]);
      if (sent.isOk()) continue;
      Fired f2;
      {
        std::lock_guard lock(mutex_);
        const auto it = findAsyncOp(resendIds[i]);
        if (it == asyncOps_.end()) continue;
        auto state = it->state;
        asyncOps_.erase(it);
        failStateLocked(state, sent, f2);
      }
      for (auto& [fn, s] : f2) fn(s);
    }
    return Status::ok();
  }
  return errUnavailable("dvlib: redirect loop (ring members disagree)");
}

// -------------------------------------------------------------- acquire core

std::shared_ptr<detail::AcquireState> Session::takeStateLocked() {
  for (auto& pooled : statePool_) {
    // Sole pool reference: no handle, active-list entry or async op can
    // reach this state anymore, so it is safe to recycle. Vectors (and
    // the strings inside files) keep their capacity.
    if (pooled.use_count() != 1) continue;
    auto state = pooled;
    state->pending.clear();
    state->continuations.clear();
    state->worst = Status::ok();
    state->estimatedWait = 0;
    state->wireId = 0;
    state->servedBy.reset();
    state->ack = false;
    state->completed = false;
    state->cancelled = false;
    return state;
  }
  auto state = std::make_shared<detail::AcquireState>();
  if (statePool_.size() < kStatePoolCap) statePool_.push_back(state);
  return state;
}

template <typename FillFn>
AcquireHandle Session::startAcquire(FillFn&& fill) {
  auto self = shared_from_this();
  std::shared_ptr<detail::AcquireState> state;
  std::shared_ptr<msg::Transport> t;
  std::uint64_t id = 0;
  VDuration deadline = 0;
  {
    std::lock_guard lock(mutex_);
    deadline = opDeadlineNs_;
    state = takeStateLocked();
    fill(*state);
    const std::size_t n = state->files.size();
    state->fileStatus.assign(n, Status::ok());
    state->availableAtAck.assign(n, false);
    state->fileWait.assign(n, static_cast<VDuration>(0));
    if (n == 0) {  // trivially complete; nothing to put on the wire
      state->ack = true;
      state->completed = true;
      return AcquireHandle(std::move(self), std::move(state));
    }
    t = pickTransportLocked();
    if (finalized_ || !t) {
      state->ack = true;
      state->completed = true;
      state->worst = errUnavailable("dvlib: session not connected");
      state->fileStatus.assign(n, state->worst);
      return AcquireHandle(std::move(self), std::move(state));
    }
    id = nextCallId();
    state->wireId = id;
    state->servedBy = t;
    active_.push_back(state);
    AsyncOp op;
    op.id = id;
    op.transport = t.get();
    op.state = state;
    asyncOps_.push_back(std::move(op));
  }
  // Serialize OUTSIDE the lock (an in-proc send delivers the ack inline
  // on this thread). The scratch views reference state->files, which is
  // immutable while the handle and the async op pin the state.
  msg::MessageRef req;
  req.type = msg::MsgType::kOpenBatchReq;
  req.requestId = id;
  req.intArg2 = deadline;  // relative ns budget; 0 = no deadline
  req.files = scratchViewsOf(state->files);
  const Status sent = t->send(req);
  if (!sent.isOk()) {
    Fired fired;
    {
      std::lock_guard lock(mutex_);
      // A rebind can have retargeted + resent this op on a fresh link
      // while our send raced the old one being closed — then the resend
      // owns the op and this failure is stale, not terminal.
      const auto it = findAsyncOp(id);
      if (it != asyncOps_.end() && it->transport == t.get()) {
        if (const int ri = replicaIndexOfLocked(t.get()); ri >= 0) {
          // A replica link failed under us: not terminal — the batch
          // retargets to the owner through the retry path.
          replicaLinks_[static_cast<std::size_t>(ri)].dead = true;
          queueRetryLocked(id, 0);
        } else {
          asyncOps_.erase(it);
          failStateLocked(state, sent, fired);
        }
      }
    }
    for (auto& [fn, s] : fired) fn(s);
  }
  return AcquireHandle(std::move(self), std::move(state));
}

AcquireHandle Session::acquireAsync(std::vector<std::string> files) {
  return startAcquire(
      [&files](detail::AcquireState& state) { state.files = std::move(files); });
}

AcquireHandle Session::acquireAsync(std::span<const std::string> files) {
  return startAcquire([files](detail::AcquireState& state) {
    // Element-wise assign into the pooled vector: both the vector buffer
    // and each string's capacity are reused on a warm state.
    state.files.resize(files.size());
    for (std::size_t i = 0; i < files.size(); ++i) {
      state.files[i].assign(files[i]);
    }
  });
}

bool Session::awaitAckLocked(
    std::unique_lock<std::mutex>& lock,
    const std::shared_ptr<detail::AcquireState>& state, Fired& fired) {
  const auto acked = [&] { return state->ack || state->completed; };
  if (cv_.wait_for(lock, std::chrono::nanoseconds(callTimeoutNs_), acked)) {
    return true;
  }
  // The DV never answered the batch within the protocol deadline: fail
  // the op exactly like a synchronous call would.
  if (const auto it = findAsyncOp(state->wireId); it != asyncOps_.end()) {
    asyncOps_.erase(it);
  }
  failStateLocked(state, errTimedOut("dvlib: no reply from DV"), fired);
  return false;
}

Status Session::handleWait(
    const std::shared_ptr<detail::AcquireState>& state, SimfsStatus* status,
    VDuration timeoutNs) {
  Fired fired;
  std::unique_lock lock(mutex_);
  const auto done = [&] { return state->completed; };
  if (timeoutNs < 0) {
    // No explicit deadline: the ack phase is still bounded (the old
    // per-file calls timed out after kCallTimeout), the completion
    // phase — a running re-simulation — is not.
    if (awaitAckLocked(lock, state, fired)) cv_.wait(lock, done);
    if (status != nullptr) {
      status->error = state->worst;
      status->estimatedWait = 0;
    }
    const Status result = state->worst;
    lock.unlock();
    for (auto& [fn, s] : fired) fn(s);
    return result;
  }
  if (!cv_.wait_for(lock, std::chrono::nanoseconds(timeoutNs), done)) {
    const Status st = errTimedOut("dvlib: acquire deadline exceeded");
    if (status != nullptr) {
      status->error = st;
      status->estimatedWait = state->estimatedWait;
    }
    return st;
  }
  if (status != nullptr) {
    status->error = state->worst;
    status->estimatedWait = 0;
  }
  return state->worst;
}

Status Session::handleCancel(
    const std::shared_ptr<detail::AcquireState>& state) {
  Fired fired;
  bool hadFiles = false;
  std::shared_ptr<msg::Transport> t;
  {
    std::lock_guard lock(mutex_);
    if (state->cancelled) return Status::ok();  // idempotent
    state->cancelled = true;
    if (!state->completed) {
      state->worst = errCancelled("dvlib: acquire cancelled");
      state->pending.clear();
      completeLocked(state, fired);
    }
    hadFiles = !state->files.empty();
    // The release must land on the endpoint the batch registered on —
    // a replica link when the spread sent it there.
    t = state->servedBy ? state->servedBy : transport_;
    // The cancel frees the batch's registrations wholesale: drop the
    // per-file replica-ref entries it recorded so a later release of the
    // same name does not chase references the cancel already freed.
    for (const auto& f : state->files) {
      const auto it = replicaRefs_.find(f);
      if (it == replicaRefs_.end()) continue;
      const auto pos = std::find(it->second.begin(), it->second.end(), t);
      if (pos != it->second.end()) it->second.erase(pos);
      if (it->second.empty()) replicaRefs_.erase(it);
    }
  }
  for (auto& [fn, s] : fired) fn(s);
  if (!hadFiles) return Status::ok();
  if (!t) return errUnavailable("dvlib: session not connected");
  // One wire op frees everything the batch registered: waiter entries
  // for steps still pending, references for steps already delivered.
  // Fire-and-forget like closeNotify (requestId 0 tells the daemon no
  // ack is wanted): an intercepted close must not pay a round trip, and
  // per-connection FIFO guarantees the release lands after its batch.
  // The file list is served as views over the state's own storage —
  // stable while the caller's handle pins the state — so the cancel is
  // as allocation-free as the acquire it unwinds.
  msg::MessageRef m;
  m.type = msg::MsgType::kCancelReq;
  m.context = context_;
  m.files = scratchViewsOf(state->files);
  return t->send(m);
}

Status Session::acquire(const std::vector<std::string>& files,
                        SimfsStatus* status) {
  auto handle = acquireAsync(std::span<const std::string>(files));
  const Status st = handle.wait(status);
  if (!st.isOk()) {
    // Partial-acquire unwind: files that resolved before the failure
    // already registered DV interest (references or waiter entries) —
    // release them so a failed acquire leaves nothing pinned.
    (void)handle.cancel();
    if (status != nullptr) status->error = st;  // keep the original error
  }
  return st;
}

Result<Session::OpenInfo> Session::open(const std::string& file) {
  {
    // An earlier miss may already have completed.
    std::lock_guard lock(mutex_);
    const auto it = fileWaits_.find(file);
    if (it != fileWaits_.end() && it->second.ready &&
        it->second.status.isOk()) {
      return OpenInfo{true, 0};
    }
  }
  auto handle = acquireAsync(std::span<const std::string>(&file, 1));
  (void)handle.waitAck(nullptr);  // one round trip
  const auto p = handle.probe(0);
  if (!p.status.isOk()) return p.status;
  return OpenInfo{p.available, p.estimatedWait};
}

Status Session::waitFile(const std::string& file) {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [&] {
    const auto it = fileWaits_.find(file);
    return it != fileWaits_.end() && it->second.ready;
  });
  return fileWaits_.find(file)->second.status;
}

void Session::closeNotify(const std::string& file) {
  const std::string_view one[1] = {file};
  msg::MessageRef m;
  m.type = msg::MsgType::kCloseNotify;
  m.context = context_;  // self-describing for daemon-side diagnostics
  m.files = one;
  if (auto t = transportRef()) (void)t->send(m);
  std::lock_guard lock(mutex_);
  fileWaits_.erase(file);  // a later reopen re-queries the DV
}

Status Session::release(const std::string& file) {
  return release(std::span<const std::string>(&file, 1));
}

Status Session::release(std::span<const std::string> files) {
  // Route each file to the node holding its registration: a reference
  // registered off a replica lease lives at THAT replica — the owner
  // would (rightly) answer "release without open" for it.
  std::vector<std::string> owned;
  std::vector<std::pair<std::shared_ptr<msg::Transport>,
                        std::vector<std::string>>>
      byReplica;
  {
    std::lock_guard lock(mutex_);
    for (const auto& f : files) {
      const auto it = replicaRefs_.find(f);
      if (it == replicaRefs_.end() || it->second.empty()) {
        owned.push_back(f);
        continue;
      }
      auto t = std::move(it->second.back());
      it->second.pop_back();
      if (it->second.empty()) replicaRefs_.erase(it);
      const auto group =
          std::find_if(byReplica.begin(), byReplica.end(),
                       [&](const auto& g) { return g.first == t; });
      if (group == byReplica.end()) {
        byReplica.emplace_back(std::move(t), std::vector<std::string>{f});
      } else {
        group->second.push_back(f);
      }
    }
  }
  Status worst = Status::ok();
  for (auto& [t, group] : byReplica) {
    // A dead link already freed its registrations server-side (the
    // daemon unwinds the client on disconnect): nothing left to release.
    if (!t || !t->isOpen()) continue;
    msg::Message m;
    m.type = msg::MsgType::kReleaseReq;
    m.files = std::move(group);
    auto reply = callOn(t, std::move(m));
    if (!reply) {
      if (reply.status().code() != StatusCode::kUnavailable) {
        worst = reply.status();
      }
      continue;
    }
    if (const Status st = statusFrom(*reply); !st.isOk()) worst = st;
  }
  if (!owned.empty()) {
    msg::Message m;
    m.type = msg::MsgType::kReleaseReq;
    m.files = std::move(owned);
    auto reply = call(std::move(m));
    if (!reply) return reply.status();
    if (const Status st = statusFrom(*reply); !st.isOk()) worst = st;
  }
  {
    std::lock_guard lock(mutex_);
    for (const auto& f : files) fileWaits_.erase(f);
  }
  return worst;
}

Result<bool> Session::bitrep(const std::string& file, std::uint64_t digest) {
  msg::Message m;
  m.type = msg::MsgType::kBitrepReq;
  m.files = {file};
  m.intArg = static_cast<std::int64_t>(digest);
  auto reply = call(std::move(m));
  if (!reply) return reply.status();
  const auto st = statusFrom(*reply);
  if (!st.isOk()) return st;
  return reply->intArg == 1;
}

void Session::finalize() {
  std::shared_ptr<msg::Transport> t;
  std::vector<std::shared_ptr<msg::Transport>> retired;
  bool joinRecovery = false;
  Fired fired;
  {
    std::lock_guard lock(mutex_);
    if (finalized_) return;
    finalized_ = true;
    recoveryStop_ = true;
    joinRecovery = recovery_.joinable();
    // Wake every blocked waiter: nothing outstanding can resolve once
    // the session is gone.
    failAllLocked(errUnavailable("dvlib: session finalized"), fired);
    for (auto& link : replicaLinks_) {
      if (link.transport) retired_.push_back(std::move(link.transport));
    }
    replicaLinks_.clear();
    for (auto& [file, refs] : replicaRefs_) {
      for (auto& t : refs) retired_.push_back(std::move(t));
    }
    replicaRefs_.clear();
    t = transport_;
    retired = retired_;  // close outside the lock; entries stay alive
  }
  cv_.notify_all();
  for (auto& [fn, s] : fired) fn(s);
  if (joinRecovery) recovery_.join();
  for (const auto& r : retired) r->close();
  if (t) t->close();
}

}  // namespace simfs::dvlib
