#include "dvlib/simfs_capi.hpp"

#include "common/checksum.hpp"
#include "common/env.hpp"
#include "dv/daemon.hpp"
#include "dvlib/simfs_client.hpp"
#include "vfs/file_store.hpp"

#include <memory>
#include <mutex>
#include <vector>

namespace simfs::dvlib {
namespace {

dv::Daemon* g_daemon = nullptr;
vfs::FileStore* g_store = nullptr;
std::mutex g_mutex;

int codeOf(const Status& st) { return static_cast<int>(st.code()); }

void fillStatus(SIMFS_Status* out, const SimfsStatus& st) {
  if (out == nullptr) return;
  out->error_code = codeOf(st.error);
  out->estimated_wait_ns = st.estimatedWait;
}

}  // namespace

void SIMFS_SetDaemon(dv::Daemon* daemon) {
  std::lock_guard lock(g_mutex);
  g_daemon = daemon;
}

void SIMFS_SetFileStore(vfs::FileStore* store) {
  std::lock_guard lock(g_mutex);
  g_store = store;
}

}  // namespace simfs::dvlib

/// The opaque handle owns the connected client.
struct SIMFS_Context_s {
  std::unique_ptr<simfs::dvlib::SimFSClient> client;
};

extern "C" {

int SIMFS_Init(const char* sim_context, SIMFS_Context* context) {
  using namespace simfs;
  if (sim_context == nullptr || context == nullptr) {
    return static_cast<int>(StatusCode::kInvalidArgument);
  }
  std::unique_ptr<msg::Transport> transport;
  {
    std::lock_guard lock(dvlib::g_mutex);
    if (dvlib::g_daemon != nullptr) {
      transport = dvlib::g_daemon->connectInProc();
    }
  }
  if (!transport) {
    const auto sock = env::get("SIMFS_SOCKET");
    if (!sock) return static_cast<int>(StatusCode::kUnavailable);
    auto conn = msg::unixSocketConnect(*sock);
    if (!conn) return static_cast<int>(conn.status().code());
    transport = std::move(*conn);
  }
  auto client = dvlib::SimFSClient::connect(std::move(transport), sim_context);
  if (!client) return static_cast<int>(client.status().code());
  *context = new SIMFS_Context_s{std::move(*client)};
  return SIMFS_OK;
}

int SIMFS_Finalize(SIMFS_Context* context) {
  using namespace simfs;
  if (context == nullptr || *context == nullptr) {
    return static_cast<int>(StatusCode::kInvalidArgument);
  }
  (*context)->client->finalize();
  delete *context;
  *context = nullptr;
  return SIMFS_OK;
}

int SIMFS_Acquire(SIMFS_Context context, const char* const filenames[],
                  int count, SIMFS_Status* status) {
  using namespace simfs;
  if (context == nullptr || filenames == nullptr || count < 0) {
    return static_cast<int>(StatusCode::kInvalidArgument);
  }
  std::vector<std::string> files(filenames, filenames + count);
  dvlib::SimfsStatus st;
  const auto rc = context->client->acquire(files, &st);
  simfs::dvlib::fillStatus(status, st);
  return static_cast<int>(rc.code());
}

int SIMFS_Acquire_nb(SIMFS_Context context, const char* const filenames[],
                     int count, SIMFS_Status* status, SIMFS_Req* req) {
  using namespace simfs;
  if (context == nullptr || filenames == nullptr || count < 0 ||
      req == nullptr) {
    return static_cast<int>(StatusCode::kInvalidArgument);
  }
  std::vector<std::string> files(filenames, filenames + count);
  dvlib::SimfsStatus st;
  const auto id = context->client->acquireNb(files, &st);
  simfs::dvlib::fillStatus(status, st);
  if (!id) return static_cast<int>(id.status().code());
  req->ctx = context;
  req->id = *id;
  return SIMFS_OK;
}

int SIMFS_Release(SIMFS_Context context, const char* filename) {
  using namespace simfs;
  if (context == nullptr || filename == nullptr) {
    return static_cast<int>(StatusCode::kInvalidArgument);
  }
  return static_cast<int>(context->client->release(filename).code());
}

int SIMFS_Wait(SIMFS_Req* req, SIMFS_Status* status) {
  using namespace simfs;
  if (req == nullptr || req->ctx == nullptr) {
    return static_cast<int>(StatusCode::kInvalidArgument);
  }
  dvlib::SimfsStatus st;
  const auto rc = req->ctx->client->wait(req->id, &st);
  simfs::dvlib::fillStatus(status, st);
  return static_cast<int>(rc.code());
}

int SIMFS_Test(SIMFS_Req* req, int* flag, SIMFS_Status* status) {
  using namespace simfs;
  if (req == nullptr || req->ctx == nullptr || flag == nullptr) {
    return static_cast<int>(StatusCode::kInvalidArgument);
  }
  bool done = false;
  dvlib::SimfsStatus st;
  const auto rc = req->ctx->client->test(req->id, &done, &st);
  *flag = done ? 1 : 0;
  simfs::dvlib::fillStatus(status, st);
  return static_cast<int>(rc.code());
}

int SIMFS_Waitsome(SIMFS_Req* req, int* readycount, int readyidx[],
                   SIMFS_Status* status) {
  using namespace simfs;
  if (req == nullptr || req->ctx == nullptr || readycount == nullptr) {
    return static_cast<int>(StatusCode::kInvalidArgument);
  }
  std::vector<int> ready;
  dvlib::SimfsStatus st;
  const auto rc = req->ctx->client->waitSome(req->id, &ready, &st);
  *readycount = static_cast<int>(ready.size());
  if (readyidx != nullptr) {
    for (std::size_t i = 0; i < ready.size(); ++i) readyidx[i] = ready[i];
  }
  simfs::dvlib::fillStatus(status, st);
  return static_cast<int>(rc.code());
}

int SIMFS_Testsome(SIMFS_Req* req, int* readycount, int readyidx[],
                   SIMFS_Status* status) {
  using namespace simfs;
  if (req == nullptr || req->ctx == nullptr || readycount == nullptr) {
    return static_cast<int>(StatusCode::kInvalidArgument);
  }
  std::vector<int> ready;
  dvlib::SimfsStatus st;
  const auto rc = req->ctx->client->testSome(req->id, &ready, &st);
  *readycount = static_cast<int>(ready.size());
  if (readyidx != nullptr) {
    for (std::size_t i = 0; i < ready.size(); ++i) readyidx[i] = ready[i];
  }
  simfs::dvlib::fillStatus(status, st);
  return static_cast<int>(rc.code());
}

int SIMFS_Bitrep(SIMFS_Context context, const char* filename, int* flag) {
  using namespace simfs;
  if (context == nullptr || filename == nullptr || flag == nullptr) {
    return static_cast<int>(StatusCode::kInvalidArgument);
  }
  vfs::FileStore* store = nullptr;
  {
    std::lock_guard lock(dvlib::g_mutex);
    store = dvlib::g_store;
  }
  if (store == nullptr) return static_cast<int>(StatusCode::kFailedPrecondition);
  const auto content = store->read(filename);
  if (!content) return static_cast<int>(content.status().code());
  const auto digest = fnv1a64(*content);
  const auto match = context->client->bitrep(filename, digest);
  if (!match) return static_cast<int>(match.status().code());
  *flag = *match ? 1 : 0;
  return SIMFS_OK;
}

}  // extern "C"
