// C-style SimFS API with the exact signatures of Sec. III-C2.
//
//   int SIMFS_Init(char* sim_context, SIMFS_Context* context);
//   int SIMFS_Finalize(SIMFS_Context* context);
//   int SIMFS_Acquire(SIMFS_Context context, char* filenames[], int count,
//                     SIMFS_Status* status);
//   int SIMFS_Acquire_nb(SIMFS_Context context, char* filenames[], int count,
//                        SIMFS_Status* status, SIMFS_Req* req);
//   int SIMFS_Release(SIMFS_Context context, char* filename);
//   int SIMFS_Wait(SIMFS_Req* req, SIMFS_Status* status);
//   int SIMFS_Test(SIMFS_Req* req, int* flag, SIMFS_Status* status);
//   int SIMFS_Waitsome(SIMFS_Req* req, int* readycount, int readyidx[],
//                      SIMFS_Status* status);
//   int SIMFS_Testsome(SIMFS_Req* req, int* readycount, int readyidx[],
//                      SIMFS_Status* status);
//   int SIMFS_Bitrep(SIMFS_Context context, char* filename, int* flag);
//
// Connection discovery: SIMFS_SetDaemon() for single-process deployments
// (the examples), or the SIMFS_SOCKET environment variable naming the
// daemon's Unix socket. SIMFS_Bitrep computes the local file's checksum
// through the store installed with SIMFS_SetFileStore.
#pragma once

#include "common/types.hpp"

#include <cstdint>

// Forward declarations keep this header C-flavoured.
namespace simfs::dv {
class Daemon;
}
namespace simfs::vfs {
class FileStore;
}

extern "C" {

/// Opaque context handle (one connected SimFSClient).
typedef struct SIMFS_Context_s* SIMFS_Context;

/// Opaque request handle for non-blocking acquires.
typedef struct SIMFS_Req_s {
  SIMFS_Context ctx;
  std::uint64_t id;
} SIMFS_Req;

/// Error state + estimated waiting time (Sec. III-C2).
typedef struct SIMFS_Status_s {
  int error_code;              ///< simfs::StatusCode as int; 0 = ok
  long long estimated_wait_ns; ///< DV's availability estimate
} SIMFS_Status;

/// Return codes: 0 success, otherwise a simfs::StatusCode.
#define SIMFS_OK 0

int SIMFS_Init(const char* sim_context, SIMFS_Context* context);
int SIMFS_Finalize(SIMFS_Context* context);
int SIMFS_Acquire(SIMFS_Context context, const char* const filenames[],
                  int count, SIMFS_Status* status);
int SIMFS_Acquire_nb(SIMFS_Context context, const char* const filenames[],
                     int count, SIMFS_Status* status, SIMFS_Req* req);
int SIMFS_Release(SIMFS_Context context, const char* filename);
int SIMFS_Wait(SIMFS_Req* req, SIMFS_Status* status);
int SIMFS_Test(SIMFS_Req* req, int* flag, SIMFS_Status* status);
int SIMFS_Waitsome(SIMFS_Req* req, int* readycount, int readyidx[],
                   SIMFS_Status* status);
int SIMFS_Testsome(SIMFS_Req* req, int* readycount, int readyidx[],
                   SIMFS_Status* status);
int SIMFS_Bitrep(SIMFS_Context context, const char* filename, int* flag);

}  // extern "C"

namespace simfs::dvlib {

/// Points SIMFS_Init at an in-process daemon (examples, tests). When
/// unset, SIMFS_Init falls back to the SIMFS_SOCKET environment variable.
void SIMFS_SetDaemon(dv::Daemon* daemon);

/// Store used by SIMFS_Bitrep to read file content for checksumming and
/// by the transparent I/O facades for data bytes.
void SIMFS_SetFileStore(vfs::FileStore* store);

}  // namespace simfs::dvlib
