// Asynchronous, pipelined DVLib session core — the redesigned public
// surface of the client library.
//
// A Session is one context-bound connection into the DV federation. Its
// one primitive is the VECTORED ASYNCHRONOUS ACQUIRE:
//
//   auto handle = session->acquireAsync({f0, f1, ..., fN});
//
// encodes all N files into a single kOpenBatchReq and returns an
// AcquireHandle without blocking — not even for the ack. The daemon
// resolves the whole batch under one shard-lock acquisition and answers
// with per-file outcomes (available now / being re-simulated + estimated
// wait / failed); files still owed retire one by one through kFileReady
// notifications. Completion is driven entirely off the transport receive
// callback, so any number of acquires can be in flight and a 64-file
// acquire costs exactly one round trip instead of 64.
//
// The AcquireHandle is a completion token:
//   wait([status], [timeout])  — block, optionally with a deadline (the
//                                DV's estimated wait, via estimatedWait(),
//                                is the natural deadline seed)
//   test / waitSome / testSome — the paper's SIMFS_Test/Waitsome shapes
//   waitAck                    — block only for the batch ack (one RTT)
//   then(fn)                   — continuation fired once on completion,
//                                on the completing (reactor) thread, or
//                                inline if already complete
//   cancel()                   — first-class cancellation: completes the
//                                handle with kCancelled and sends ONE
//                                kCancelReq releasing every waiter entry
//                                and output-step reference the batch
//                                registered, so an abandoned acquire can
//                                never pin cache slots
//   probe(i)                   — per-file ack outcome (availability,
//                                status, estimated wait)
//
// Everything else is an adapter over this core: Session::acquire (=
// acquireAsync + wait, unwinding partial registrations on failure),
// SimFSClient (the paper's SIMFS_* call shapes), the C API, and the
// transparent I/O facades (whose opens pipeline through per-open
// handles).
//
// Federation: sessions created from a NodeRouter keep the PR 3 redirect
// semantics for batched ops. A kRedirect answering an in-flight
// kOpenBatchReq is not an error: the session rebinds to the named owner
// (dial + hello, on a dedicated recovery thread so the reactor callback
// never blocks) and RESENDS the batch there; the handle completes as if
// nothing happened. Legacy single-transport sessions surface redirects
// as errors, exactly as before.
//
// Thread-safety: all public methods may be called from any thread;
// handles are freely copyable across threads.
#pragma once

#include "common/status.hpp"
#include "common/types.hpp"
#include "dvlib/router.hpp"
#include "msg/transport.hpp"

#include <condition_variable>
#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <vector>

namespace simfs::dvlib {

/// The paper's SIMFS_Status: error state plus estimated waiting time.
struct SimfsStatus {
  Status error;
  VDuration estimatedWait = 0;
};

class Session;

namespace detail {
struct AcquireState;
}

/// Completion token of a vectored asynchronous acquire (the async
/// generalization of the paper's SIMFS_Req).
class AcquireHandle {
 public:
  /// No deadline: wait() blocks until completion.
  static constexpr VDuration kNoDeadline = -1;

  /// Per-file outcome as reported by the batch ack.
  struct FileProbe {
    Status status;                ///< per-file error state
    bool available = false;       ///< true: was on disk at batch time
    VDuration estimatedWait = 0;  ///< DV's estimate until availability
  };

  AcquireHandle();  ///< invalid (empty) handle
  ~AcquireHandle();
  AcquireHandle(const AcquireHandle&);
  AcquireHandle& operator=(const AcquireHandle&);
  AcquireHandle(AcquireHandle&&) noexcept;
  AcquireHandle& operator=(AcquireHandle&&) noexcept;

  [[nodiscard]] bool valid() const noexcept;
  [[nodiscard]] const std::vector<std::string>& files() const;

  /// Blocks until every file resolved (or the handle failed/cancelled).
  /// With a deadline, returns kTimedOut once it expires — the handle
  /// stays live and can be re-waited or cancel()ed.
  [[nodiscard]] Status wait(SimfsStatus* status = nullptr,
                            VDuration timeoutNs = kNoDeadline);

  /// Non-blocking completion check (SIMFS_Test shape).
  [[nodiscard]] Status test(bool* done, SimfsStatus* status = nullptr);

  /// Blocks until at least one file resolved; returns the indices
  /// resolved so far (SIMFS_Waitsome shape).
  [[nodiscard]] Status waitSome(std::vector<int>* readyIdx,
                                SimfsStatus* status = nullptr);

  /// Non-blocking subset check (SIMFS_Testsome shape).
  [[nodiscard]] Status testSome(std::vector<int>* readyIdx,
                                SimfsStatus* status = nullptr);

  /// Blocks only until the batch ack arrived (one round trip): per-file
  /// probes and the estimated wait are valid afterwards.
  [[nodiscard]] Status waitAck(SimfsStatus* status = nullptr);

  /// Registers a continuation fired exactly once when the handle
  /// completes, with the final status. Runs on the completing thread
  /// (usually the transport reactor) — or inline, right here, if the
  /// handle already completed. Continuations must not block.
  void then(std::function<void(const Status&)> fn);

  /// Cancels the acquire: the handle completes with kCancelled (waiters
  /// wake, continuations fire) and one fire-and-forget kCancelReq
  /// releases every waiter entry / step reference the batch registered
  /// at the DV — like closeNotify, no reply round trip blocks the
  /// caller. Idempotent; per-connection FIFO ordering guarantees the
  /// release lands after the batch it unwinds.
  [[nodiscard]] Status cancel();

  /// True once the handle reached a terminal state (non-blocking).
  [[nodiscard]] bool complete() const;

  /// Max estimated wait across still-pending files (valid after the ack;
  /// the natural seed for a wait() deadline).
  [[nodiscard]] VDuration estimatedWait() const;

  /// Per-file ack outcome; index follows files(). Valid after waitAck().
  [[nodiscard]] FileProbe probe(std::size_t index) const;

 private:
  friend class Session;
  AcquireHandle(std::shared_ptr<Session> session,
                std::shared_ptr<detail::AcquireState> state);

  std::shared_ptr<Session> session_;
  std::shared_ptr<detail::AcquireState> state_;
};

/// One context-bound client session against a DV daemon or federation.
class Session : public std::enable_shared_from_this<Session> {
 public:
  /// Result of a (batch-of-one) non-blocking open.
  struct OpenInfo {
    bool available = false;
    VDuration estimatedWait = 0;
  };

  /// Connects over `transport` and opens a session on `context`
  /// (SIMFS_Init). Blocks for the handshake. Single-transport: a
  /// redirect answer is surfaced as an error.
  [[nodiscard]] static Result<std::shared_ptr<Session>> connect(
      std::unique_ptr<msg::Transport> transport, const std::string& context);

  /// Routing-aware SIMFS_Init against a federation: resolves `context`'s
  /// owner through the router's ring, dials (or reuses a pooled
  /// connection to) that node and follows redirects until a daemon
  /// accepts the session.
  [[nodiscard]] static Result<std::shared_ptr<Session>> connect(
      std::shared_ptr<NodeRouter> router, const std::string& context);

  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // --- the asynchronous vectored core ----------------------------------------

  /// Registers interest in all `files` with ONE kOpenBatchReq and
  /// returns immediately — completion (ack + kFileReady retirements) is
  /// driven off the receive callback. Never fails synchronously: send
  /// errors complete the returned handle.
  [[nodiscard]] AcquireHandle acquireAsync(std::vector<std::string> files);

  /// Zero-copy variant: copies `files` into a pooled acquire state
  /// (reusing its string storage) and serializes the batch request
  /// straight into the transport's send buffer — a warm steady-state
  /// acquire/cancel cycle performs no heap allocation.
  [[nodiscard]] AcquireHandle acquireAsync(std::span<const std::string> files);

  // --- blocking adapters over the core ---------------------------------------

  /// SIMFS_Acquire: one vectored round trip, then blocks until every
  /// file is available. On failure the partial registration is unwound
  /// (cancelled) so no reference survives a failed acquire.
  [[nodiscard]] Status acquire(const std::vector<std::string>& files,
                               SimfsStatus* status = nullptr);

  /// Intercepted open (batch of one): one round trip for the ack; on a
  /// miss the DV starts the re-simulation and waitFile() later unblocks.
  [[nodiscard]] Result<OpenInfo> open(const std::string& file);

  /// Intercepted read's blocking point: waits until `file` (previously
  /// opened or acquired) is available on disk.
  [[nodiscard]] Status waitFile(const std::string& file);

  /// Intercepted close: fire-and-forget dereference.
  void closeNotify(const std::string& file);

  /// SIMFS_Release.
  [[nodiscard]] Status release(const std::string& file);

  /// Batched SIMFS_Release: every file travels in ONE kReleaseReq and
  /// the daemon drops all references under a single shard-lock
  /// acquisition (mirrors the vectored acquire).
  [[nodiscard]] Status release(std::span<const std::string> files);

  /// SIMFS_Bitrep: compares the digest (computed over the locally read
  /// content) against the reference recorded at initial-simulation time.
  [[nodiscard]] Result<bool> bitrep(const std::string& file,
                                    std::uint64_t digest);

  /// SIMFS_Finalize: closes the session (idempotent).
  void finalize();

  [[nodiscard]] const std::string& context() const noexcept {
    return context_;
  }
  [[nodiscard]] ClientId clientId() const noexcept { return clientId_; }

  /// Protocol version the daemon picked from this session's advertised
  /// [kProtocolVersionMin, kProtocolVersionMax] range at hello time.
  /// Stays 1 against pre-negotiation daemons (they echo no choice).
  [[nodiscard]] std::int64_t protocolVersion() const noexcept {
    return protocolVersion_.load(std::memory_order_relaxed);
  }

  // --- failure-domain knobs ---------------------------------------------------

  /// Per-op deadline budget (ns, 0 = none; default SIMFS_OP_DEADLINE_MS)
  /// attached to every batch request: the daemon converts it into an
  /// absolute shard deadline and reaps the registration — killing
  /// re-simulations nobody waits for anymore — once it passes. The
  /// affected files then resolve with kTimedOut.
  void setOpDeadline(VDuration ns);

  /// Bounds transient-failure handling (defaults SIMFS_RETRY_BUDGET=3,
  /// SIMFS_RETRY_BASE_MS=10): a shed batch (kUnavailable) is resent
  /// after jittered exponential backoff up to `budget` times; a lost
  /// transport is re-dialed up to `budget` times. Exhaustion completes
  /// the affected ops with kUnreachable instead of hanging.
  void setRetryPolicy(int budget, VDuration baseBackoffNs);

  /// Number of live read-replica links this session holds (0 until the
  /// federation advertises replicas and the links come up). Observability
  /// hook for tests and tools.
  [[nodiscard]] std::size_t replicaEndpoints();

 private:
  friend class AcquireHandle;

  explicit Session(std::string context);

  struct FileWait {
    bool ready = false;
    Status status;
  };

  /// An in-flight async request awaiting its ack, tagged with the
  /// transport it went out on. A redirect-triggered rebind rebuilds the
  /// wire message from the state's file list and resends it under the
  /// same requestId. Kept in a flat vector (in-flight counts are small):
  /// lookup is a scan, erase is cheap, and steady-state traffic reuses
  /// the vector's capacity instead of churning map nodes.
  struct AsyncOp {
    std::uint64_t id = 0;  ///< requestId of the kOpenBatchReq
    const msg::Transport* transport = nullptr;
    std::shared_ptr<detail::AcquireState> state;
    int redirects = 0;
    int attempts = 0;  ///< shed-retry resends consumed (<= retry budget)
  };

  /// Continuations to fire outside the session lock.
  using Fired = std::vector<std::pair<std::function<void(const Status&)>,
                                      Status>>;

  void attach(const std::shared_ptr<msg::Transport>& t);
  /// Receive-path dispatch over the transport's zero-copy view; owned
  /// copies are materialized only for the cold paths (sync replies,
  /// redirects, ring updates).
  void onMessage(const msg::MessageView& m);
  /// Close callback: fails whatever can no longer resolve. A dead
  /// retired link only takes the ops still tagged to it; the live link
  /// going down fails everything outstanding.
  void onTransportClosed(const msg::Transport* t);
  [[nodiscard]] std::shared_ptr<msg::Transport> transportRef();

  /// Sends a request on `t` and blocks for its matching reply.
  [[nodiscard]] Result<msg::Message> callOn(
      const std::shared_ptr<msg::Transport>& t, msg::Message m);

  /// Sends a request on the current transport and blocks for the reply;
  /// routing-aware sessions transparently follow kRedirect answers.
  [[nodiscard]] Result<msg::Message> call(msg::Message m);

  /// Dials + hellos `targetNode` (following further redirects), swaps it
  /// in as the session transport and RESENDS un-acked async ops on the
  /// new link. Router sessions only.
  Status rebind(std::string targetNode);

  /// Applies a kOpenBatchAck (or error reply) to its state, reading the
  /// per-file outcome pairs in place from the view. Lock held.
  void applyBatchAckLocked(detail::AcquireState& state,
                           const msg::MessageView& m);

  /// Pops a recyclable state off the pool (sole pool reference means no
  /// live handle can touch it) or makes a fresh one. Lock held.
  [[nodiscard]] std::shared_ptr<detail::AcquireState> takeStateLocked();

  /// The acquire core shared by both acquireAsync overloads: `fill`
  /// populates state->files (by move or by copy into reused storage).
  template <typename FillFn>
  [[nodiscard]] AcquireHandle startAcquire(FillFn&& fill);

  [[nodiscard]] std::vector<AsyncOp>::iterator findAsyncOp(std::uint64_t id);

  /// Marks a state terminal, wakes waiters, collects continuations.
  void completeLocked(const std::shared_ptr<detail::AcquireState>& state,
                      Fired& fired);

  /// Fails a state with `st` and completes it: still-open per-file slots
  /// take the error (delivered files keep their outcome), pending files
  /// are dropped. No-op on already-terminal states. Lock held.
  void failStateLocked(const std::shared_ptr<detail::AcquireState>& state,
                       const Status& st, Fired& fired);

  /// Fails every un-acked async op (rebind failure, shutdown).
  void failAsyncOps(const Status& st);

  /// Fails everything outstanding — async ops, per-file waits, live
  /// acquire states, in-flight sync calls — with `down`. Lock held.
  void failAllLocked(const Status& down, Fired& fired);

  /// Bounds the ack phase by the protocol call timeout, failing the op
  /// like a sync call would if the DV never answers. Returns false on
  /// timeout. Lock held (via `lock`).
  bool awaitAckLocked(std::unique_lock<std::mutex>& lock,
                      const std::shared_ptr<detail::AcquireState>& state,
                      Fired& fired);

  /// Queues an async-op redirect for the recovery thread. Lock held.
  void queueRedirectLocked(const std::string& target);
  void recoveryLoop();

  /// Lazily starts the recovery thread and wakes it. Lock held.
  void wakeRecoveryLocked();

  /// Schedules an idempotent resend of op `opId` (same requestId; the
  /// daemon's dedup window absorbs duplicate deliveries) after
  /// `delayNs`. Lock held.
  void queueRetryLocked(std::uint64_t opId, VDuration delayNs);

  /// Marks the live transport lost and hands re-dialing to the recovery
  /// thread (router sessions). Lock held.
  void queueReconnectLocked();

  /// Resends the batch request of a still-live async op on the current
  /// transport (recovery thread).
  void resendOp(std::uint64_t opId);

  /// Fails everything that cannot survive a transport loss — per-file
  /// waits, acked-but-owed acquire states, in-flight sync calls — while
  /// leaving un-acked async ops alive for the post-reconnect resend.
  /// Lock held.
  void failNonResendableLocked(const Status& down, Fired& fired);

  /// Jittered exponential backoff for attempt N (1-based), seeded from
  /// `hint` (the DV's estimated wait when known, the base otherwise).
  [[nodiscard]] VDuration retryBackoffNs(int attempt, VDuration hint);

  [[nodiscard]] Status handleWait(
      const std::shared_ptr<detail::AcquireState>& state, SimfsStatus* status,
      VDuration timeoutNs);
  [[nodiscard]] Status handleCancel(
      const std::shared_ptr<detail::AcquireState>& state);

  // --- read-replica spread ----------------------------------------------------

  /// A read-only link to one of the context's lease replicas: helloed
  /// with kHelloCapReplica, so the daemon serves leased resident steps
  /// locally and answers kNotLeased for anything else.
  struct ReplicaLink {
    std::string nodeId;
    std::string endpoint;
    std::shared_ptr<msg::Transport> transport;
    VDuration lastWait = 0;  ///< estimated wait from its last batch ack
    bool dead = false;
  };

  /// A replica answered kNotLeased (its lease no longer covers the
  /// batch): the recovery thread unwinds the partial registration on the
  /// replica and resends the op on the owner.
  struct ReplicaFallback {
    std::uint64_t opId = 0;
    std::shared_ptr<msg::Transport> replica;
  };

  /// Picks the transport for a new batch: owner only until replica links
  /// are up, then power-of-two-choices on per-endpoint estimated wait
  /// across owner + live replicas. Lock held.
  [[nodiscard]] std::shared_ptr<msg::Transport> pickTransportLocked();

  /// Dials + replica-hellos every replica of context_ (recovery thread;
  /// no session lock across the blocking dial/hello).
  void setupReplicaLinks();

  /// Index into replicaLinks_ of the link owning `t`, -1 if none. Lock
  /// held.
  [[nodiscard]] int replicaIndexOfLocked(const msg::Transport* t) const;

  std::vector<ReplicaLink> replicaLinks_;   ///< guarded by mutex_
  bool replicaSetupPending_ = false;  ///< recovery thread owes a setup pass
  bool replicaSetupDone_ = false;     ///< links established (or attempted)
  VDuration ownerWait_ = 0;  ///< owner's estimated wait from its last ack
  std::deque<ReplicaFallback> fallbacks_;  ///< kNotLeased retargets
  /// Per-file step references registered at a REPLICA (one entry per
  /// successful replica-served acquire): release() must unwind them on
  /// the node that holds them — the owner never heard of the open.
  std::map<std::string, std::vector<std::shared_ptr<msg::Transport>>,
           std::less<>>
      replicaRefs_;

  std::shared_ptr<msg::Transport> transport_;  ///< swap guarded by mutex_
  /// Transports replaced by rebind(), already close()d; kept until the
  /// destructor so in-flight reactor callbacks never outlive their target.
  std::vector<std::shared_ptr<msg::Transport>> retired_;
  std::shared_ptr<NodeRouter> router_;  ///< null for single-transport sessions
  std::string context_;
  ClientId clientId_ = 0;
  /// Negotiated wire protocol version (updated on every successful hello,
  /// including rebinds — a mixed-version ring may answer differently per
  /// node). Atomic: read from any thread, written under rebind.
  std::atomic<std::int64_t> protocolVersion_{1};

  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::uint64_t, msg::Message> replies_;  ///< sync calls, by id
  /// Sync calls awaiting a reply, tagged with the transport they went out
  /// on, so rebind() can fail the ones whose connection it closes.
  std::map<std::uint64_t, const msg::Transport*> inflight_;
  std::vector<AsyncOp> asyncOps_;  ///< async ops awaiting ack
  /// Heterogeneous lookup (std::less<>): kFileReady retirements probe by
  /// the view's string_view without materializing a key.
  std::map<std::string, FileWait, std::less<>> fileWaits_;
  /// Acquire states not yet terminal (kFileReady fan-out targets).
  std::vector<std::shared_ptr<detail::AcquireState>> active_;
  /// Recycled AcquireStates: an entry whose use_count() is 1 (pool-only)
  /// has no live handle/op and can be reused, vectors and string
  /// capacities intact — the steady-state acquire allocates nothing.
  std::vector<std::shared_ptr<detail::AcquireState>> statePool_;
  bool finalized_ = false;

  /// Redirect recovery for async ops: rebinds must dial + block for a
  /// hello, which the reactor callback may not do — they are handed to
  /// this lazily-started thread instead. The same thread runs shed-retry
  /// resends and transport-loss reconnects.
  std::thread recovery_;
  std::deque<std::string> redirectTargets_;
  bool recoveryStop_ = false;

  // Failure-domain state (guarded by mutex_).
  VDuration opDeadlineNs_ = 0;      ///< batch deadline budget (0 = none)
  int retryBudget_ = 3;             ///< transient-failure resend bound
  VDuration retryBaseNs_ = 10'000'000;  ///< first backoff interval
  VDuration callTimeoutNs_ = 0;     ///< sync-call / ack protocol timeout
  std::uint64_t retrySalt_ = 0x9e3779b97f4a7c15ULL;  ///< jitter stream
  struct PendingRetry {
    std::uint64_t opId = 0;
    VTime due = 0;  ///< steady-clock ns
  };
  std::deque<PendingRetry> retries_;
  bool reconnectPending_ = false;
  int reconnectAttempts_ = 0;
};

}  // namespace simfs::dvlib
