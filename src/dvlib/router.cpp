#include "dvlib/router.hpp"

namespace simfs::dvlib {

NodeRouter::NodeRouter(cluster::Ring ring, Dialer dial)
    : ring_(std::move(ring)), dial_(std::move(dial)) {}

std::shared_ptr<NodeRouter> NodeRouter::overUnixSockets(cluster::Ring ring) {
  return std::make_shared<NodeRouter>(
      std::move(ring),
      [](const std::string& endpoint) { return msg::unixSocketConnect(endpoint); });
}

Result<cluster::NodeInfo> NodeRouter::ownerOf(const std::string& context) const {
  std::lock_guard lock(mutex_);
  if (ring_.empty()) return errFailedPrecondition("router: empty ring");
  return ring_.ownerOf(context);
}

Result<cluster::NodeInfo> NodeRouter::node(const std::string& id) const {
  std::lock_guard lock(mutex_);
  const cluster::NodeInfo* n = ring_.find(id);
  if (n == nullptr) return errNotFound("router: unknown node: " + id);
  return *n;
}

cluster::Ring NodeRouter::ringSnapshot() const {
  std::lock_guard lock(mutex_);
  return ring_;
}

std::vector<cluster::NodeInfo> NodeRouter::replicasOf(
    const std::string& context) const {
  std::lock_guard lock(mutex_);
  if (replicaCount_ == 0 || ring_.empty()) return {};
  return ring_.replicasOf(context, replicaCount_);
}

void NodeRouter::noteReplicaCount(std::size_t count) {
  std::lock_guard lock(mutex_);
  replicaCount_ = count;
}

std::size_t NodeRouter::replicaCount() const {
  std::lock_guard lock(mutex_);
  return replicaCount_;
}

bool NodeRouter::adoptRing(const cluster::Ring& ring) {
  if (ring.empty()) return false;
  std::lock_guard lock(mutex_);
  if (!ring_.empty()) {
    if (ring.version() < ring_.version()) return false;
    // Same version: daemons hand out their table via kRedirect /
    // kRingUpdate, which makes it authoritative over whatever this
    // client was seeded with — refusing it would leave a client with a
    // wrong same-version seed unable to converge on the very table every
    // redirect is trying to give it. Identical membership is a no-op.
    if (ring.version() == ring_.version() && ring_.sameMembership(ring)) {
      return false;
    }
    // Newer version, identical membership: a pure version bump (e.g. an
    // aborted membership change re-proposed, or an admin no-op commit).
    // Fast-forward the stored table so later comparisons don't thrash,
    // but report "nothing changed" — placement is a function of the node
    // ids only, so no owner moved, and callers must not react with a
    // pool teardown or a rebind of every session.
    if (ring_.sameMembership(ring)) {
      ring_ = ring;
      return false;
    }
  }
  ring_ = ring;
  return true;
}

Result<std::shared_ptr<msg::Transport>> NodeRouter::checkout(
    const std::string& endpoint) {
  {
    std::lock_guard lock(mutex_);
    auto it = idle_.find(endpoint);
    if (it != idle_.end()) {
      while (!it->second.empty()) {
        std::shared_ptr<msg::Transport> t = std::move(it->second.back());
        it->second.pop_back();
        if (t->isOpen()) return t;  // stale (peer died while pooled): drop
      }
    }
  }
  auto dialed = dial_(endpoint);
  if (!dialed) return dialed.status();
  return std::shared_ptr<msg::Transport>(std::move(*dialed));
}

void NodeRouter::checkin(const std::string& endpoint,
                         std::shared_ptr<msg::Transport> transport) {
  if (!transport || !transport->isOpen()) return;
  // Nothing may reference the previous user once pooled: a push arriving
  // while idle (the daemon does not push to unbound sessions, but a
  // hostile/buggy peer might) must not run a dangling handler.
  transport->setHandler([](msg::Message&&) {});
  transport->setCloseHandler([] {});
  std::lock_guard lock(mutex_);
  idle_[endpoint].push_back(std::move(transport));
}

void NodeRouter::drainPool() {
  std::map<std::string, std::vector<std::shared_ptr<msg::Transport>>> idle;
  {
    std::lock_guard lock(mutex_);
    idle.swap(idle_);
  }
  for (auto& [endpoint, transports] : idle) {
    for (auto& t : transports) t->close();
  }
}

Result<cluster::Ring> ringFromMessage(const msg::Message& m) {
  return cluster::Ring::fromEntries(m.files,
                                    static_cast<std::uint64_t>(m.intArg));
}

}  // namespace simfs::dvlib
