// DVLib client (Sec. III-C): the library analyses link against.
//
// SimFSClient speaks the msg:: protocol with a DV daemon over any
// Transport (in-process pair or Unix socket) and exposes the paper's API:
//
//   SIMFS_Init / SIMFS_Finalize        -> connect() / finalize()
//   SIMFS_Acquire / SIMFS_Acquire_nb   -> acquire() / acquireNb()
//   SIMFS_Wait/Test/Waitsome/Testsome  -> wait()/test()/waitSome()/testSome()
//   SIMFS_Release                      -> release()
//   SIMFS_Bitrep                       -> bitrep()
//
// plus the transparent-mode primitives used by the I/O facades:
// open() (non-blocking, like the intercepted nc_open) and waitFile()
// (the blocking point of the intercepted read).
//
// Federation: a session created via connect(NodeRouter, context) is
// routing-aware. The router's ring resolves the owning node, the hello is
// sent there (reusing a pooled connection when one exists), and a
// kRedirect answer — from a stale ring, or a single seed endpoint — is
// followed transparently: the carried ring is adopted, the unbound
// transport returns to the pool, and the hello retries on the named
// owner. Established sessions also follow per-request redirects (rebind +
// resend) and adopt pushed kRingUpdate tables, so later sessions created
// from the same router resolve against the newest membership. The legacy
// connect(transport, context) stays single-transport: a redirect there is
// surfaced as an error.
//
// Thread-safety: all public methods may be called from any thread; the
// receive handler only touches internal state under the client mutex.
#pragma once

#include "common/status.hpp"
#include "common/types.hpp"
#include "dvlib/router.hpp"
#include "msg/transport.hpp"

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace simfs::dvlib {

/// The paper's SIMFS_Status: error state plus estimated waiting time.
struct SimfsStatus {
  Status error;
  VDuration estimatedWait = 0;
};

/// Handle of a non-blocking acquire (the paper's SIMFS_Req).
using RequestId = std::uint64_t;

class SimFSClient {
 public:
  /// Connects over `transport` and opens a session on `context`
  /// (SIMFS_Init). Blocks for the handshake.
  [[nodiscard]] static Result<std::unique_ptr<SimFSClient>> connect(
      std::unique_ptr<msg::Transport> transport, const std::string& context);

  /// Routing-aware SIMFS_Init against a federation: resolves `context`'s
  /// owner through the router's ring, dials (or reuses a pooled
  /// connection to) that node and follows redirects until a daemon
  /// accepts the session.
  [[nodiscard]] static Result<std::unique_ptr<SimFSClient>> connect(
      std::shared_ptr<NodeRouter> router, const std::string& context);

  ~SimFSClient();
  SimFSClient(const SimFSClient&) = delete;
  SimFSClient& operator=(const SimFSClient&) = delete;

  /// SIMFS_Acquire: blocks until every file is available (or one fails).
  [[nodiscard]] Status acquire(const std::vector<std::string>& files,
                               SimfsStatus* status = nullptr);

  /// SIMFS_Acquire_nb: registers interest, returns immediately.
  [[nodiscard]] Result<RequestId> acquireNb(const std::vector<std::string>& files,
                                            SimfsStatus* status = nullptr);

  /// SIMFS_Wait: blocks until the request completes.
  [[nodiscard]] Status wait(RequestId req, SimfsStatus* status = nullptr);

  /// SIMFS_Test: non-blocking completion check.
  [[nodiscard]] Status test(RequestId req, bool* done,
                            SimfsStatus* status = nullptr);

  /// SIMFS_Waitsome: blocks until at least one file of the request is
  /// ready; returns the indices ready so far.
  [[nodiscard]] Status waitSome(RequestId req, std::vector<int>* readyIdx,
                                SimfsStatus* status = nullptr);

  /// SIMFS_Testsome: non-blocking subset check.
  [[nodiscard]] Status testSome(RequestId req, std::vector<int>* readyIdx,
                                SimfsStatus* status = nullptr);

  /// SIMFS_Release.
  [[nodiscard]] Status release(const std::string& file);

  /// SIMFS_Bitrep: compares the digest (computed over the locally read
  /// content) against the reference recorded at initial-simulation time.
  [[nodiscard]] Result<bool> bitrep(const std::string& file,
                                    std::uint64_t digest);

  // --- transparent-mode primitives -------------------------------------------

  /// Result of a non-blocking open.
  struct OpenInfo {
    bool available = false;
    VDuration estimatedWait = 0;
  };

  /// Intercepted open: non-blocking; on a miss the DV starts the
  /// re-simulation and this client later unblocks waitFile().
  [[nodiscard]] Result<OpenInfo> open(const std::string& file);

  /// Intercepted read's blocking point: waits until `file` (previously
  /// open()ed or acquired) is available on disk.
  [[nodiscard]] Status waitFile(const std::string& file);

  /// Intercepted close: fire-and-forget dereference.
  void closeNotify(const std::string& file);

  /// SIMFS_Finalize: closes the session (idempotent).
  void finalize();

  [[nodiscard]] const std::string& context() const noexcept { return context_; }
  [[nodiscard]] ClientId clientId() const noexcept { return clientId_; }

 private:
  explicit SimFSClient(std::string context);

  /// Installs this client's receive/close handlers on `t`.
  void attach(const std::shared_ptr<msg::Transport>& t);

  void onMessage(msg::Message&& m);

  /// Sends a request on `t` and blocks for its matching reply.
  [[nodiscard]] Result<msg::Message> callOn(
      const std::shared_ptr<msg::Transport>& t, msg::Message m);

  /// Sends a request on the current transport and blocks for the reply;
  /// routing-aware sessions transparently follow kRedirect answers
  /// (rebind to the owner, resend) before returning.
  [[nodiscard]] Result<msg::Message> call(msg::Message m);

  /// Current transport (swapped by rebind) under the client mutex.
  [[nodiscard]] std::shared_ptr<msg::Transport> transportRef();

  /// Dials + hellos `targetNode` (following further redirects), then
  /// swaps it in as the session transport. Router sessions only.
  Status rebind(std::string targetNode);

  /// Opens one file and registers it in `pendingOf_[req]` unless ready.
  [[nodiscard]] Status openInto(const std::string& file, RequestId req,
                                VDuration* wait);

  struct FileWait {
    bool ready = false;
    Status status;
  };

  struct Request {
    std::vector<std::string> files;
    std::set<std::string> pending;
    Status worst;
    VDuration estimatedWait = 0;
  };

  std::shared_ptr<msg::Transport> transport_;  ///< swap guarded by mutex_
  /// Transports replaced by rebind(), already close()d; kept until the
  /// destructor so in-flight reactor callbacks never outlive their target.
  std::vector<std::shared_ptr<msg::Transport>> retired_;
  std::shared_ptr<NodeRouter> router_;  ///< null for single-transport sessions
  std::string context_;
  ClientId clientId_ = 0;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::uint64_t, msg::Message> replies_;   ///< by requestId
  /// Calls awaiting a reply, tagged with the transport they went out on,
  /// so rebind() can fail the ones whose connection it is about to close.
  std::map<std::uint64_t, const msg::Transport*> inflight_;
  std::map<std::string, FileWait> fileWaits_;
  std::map<RequestId, Request> requests_;
  std::uint64_t nextRequest_ = 1;
  bool finalized_ = false;
};

}  // namespace simfs::dvlib
