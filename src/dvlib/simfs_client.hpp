// DVLib client (Sec. III-C): the paper-shaped library analyses link
// against — now a THIN ADAPTER over the asynchronous vectored Session
// core (dvlib/session.hpp).
//
// SimFSClient keeps the paper's exact call shapes:
//
//   SIMFS_Init / SIMFS_Finalize        -> connect() / finalize()
//   SIMFS_Acquire / SIMFS_Acquire_nb   -> acquire() / acquireNb()
//   SIMFS_Wait/Test/Waitsome/Testsome  -> wait()/test()/waitSome()/testSome()
//   SIMFS_Release                      -> release()
//   SIMFS_Bitrep                       -> bitrep()
//
// but every acquire — blocking or not, 1 file or 64 — is now ONE
// kOpenBatchReq round trip resolved by the Session core; the old
// per-file kOpenReq loop is gone. RequestIds map 1:1 onto AcquireHandles
// held in a small table; wait/test/waitSome/testSome delegate to the
// handle and erase the entry on completion, reproducing the original
// consume-on-completion semantics. cancel() exposes the core's
// first-class cancellation for non-blocking requests. A failed acquire()
// unwinds its partial registration (the files that resolved before the
// failure release their DV interest) instead of leaking pinned steps.
//
// The transparent-mode primitives used by the I/O facades — open(),
// waitFile(), closeNotify() — pass through to the Session, as do the
// federation semantics (routing-aware connect, redirect-follow, ring
// adoption); see session.hpp for the full contract. The legacy
// single-transport connect() keeps working unchanged.
//
// Thread-safety: all public methods may be called from any thread.
#pragma once

#include "common/status.hpp"
#include "common/types.hpp"
#include "dvlib/router.hpp"
#include "dvlib/session.hpp"
#include "msg/transport.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace simfs::dvlib {

/// Handle of a non-blocking acquire (the paper's SIMFS_Req).
using RequestId = std::uint64_t;

class SimFSClient {
 public:
  /// Result of a non-blocking open.
  using OpenInfo = Session::OpenInfo;

  /// Connects over `transport` and opens a session on `context`
  /// (SIMFS_Init). Blocks for the handshake.
  [[nodiscard]] static Result<std::unique_ptr<SimFSClient>> connect(
      std::unique_ptr<msg::Transport> transport, const std::string& context);

  /// Routing-aware SIMFS_Init against a federation: resolves `context`'s
  /// owner through the router's ring, dials (or reuses a pooled
  /// connection to) that node and follows redirects until a daemon
  /// accepts the session.
  [[nodiscard]] static Result<std::unique_ptr<SimFSClient>> connect(
      std::shared_ptr<NodeRouter> router, const std::string& context);

  ~SimFSClient();
  SimFSClient(const SimFSClient&) = delete;
  SimFSClient& operator=(const SimFSClient&) = delete;

  /// SIMFS_Acquire: ONE vectored round trip, blocks until every file is
  /// available (or one fails, unwinding the partial registration).
  [[nodiscard]] Status acquire(const std::vector<std::string>& files,
                               SimfsStatus* status = nullptr);

  /// SIMFS_Acquire_nb: registers interest (one vectored round trip for
  /// the ack, so `status` carries the DV's estimates), returns a request
  /// handle immediately — completion is asynchronous.
  [[nodiscard]] Result<RequestId> acquireNb(const std::vector<std::string>& files,
                                            SimfsStatus* status = nullptr);

  /// SIMFS_Wait: blocks until the request completes (consumes it).
  [[nodiscard]] Status wait(RequestId req, SimfsStatus* status = nullptr);

  /// SIMFS_Test: non-blocking completion check (consumes when complete).
  [[nodiscard]] Status test(RequestId req, bool* done,
                            SimfsStatus* status = nullptr);

  /// SIMFS_Waitsome: blocks until at least one file of the request is
  /// ready; returns the indices ready so far.
  [[nodiscard]] Status waitSome(RequestId req, std::vector<int>* readyIdx,
                                SimfsStatus* status = nullptr);

  /// SIMFS_Testsome: non-blocking subset check.
  [[nodiscard]] Status testSome(RequestId req, std::vector<int>* readyIdx,
                                SimfsStatus* status = nullptr);

  /// Cancels a non-blocking request: releases every waiter entry / step
  /// reference its batch registered at the DV and consumes the handle.
  [[nodiscard]] Status cancel(RequestId req);

  /// SIMFS_Release.
  [[nodiscard]] Status release(const std::string& file);

  /// SIMFS_Bitrep: compares the digest (computed over the locally read
  /// content) against the reference recorded at initial-simulation time.
  [[nodiscard]] Result<bool> bitrep(const std::string& file,
                                    std::uint64_t digest);

  // --- transparent-mode primitives -------------------------------------------

  /// Intercepted open: non-blocking; on a miss the DV starts the
  /// re-simulation and this client later unblocks waitFile().
  [[nodiscard]] Result<OpenInfo> open(const std::string& file);

  /// Intercepted read's blocking point: waits until `file` (previously
  /// open()ed or acquired) is available on disk.
  [[nodiscard]] Status waitFile(const std::string& file);

  /// Intercepted close: fire-and-forget dereference.
  void closeNotify(const std::string& file);

  /// SIMFS_Finalize: closes the session (idempotent).
  void finalize();

  /// The asynchronous session core (pipelined acquires, continuations,
  /// per-file probes) for callers that outgrow the paper API.
  [[nodiscard]] const std::shared_ptr<Session>& session() const noexcept {
    return session_;
  }

  [[nodiscard]] const std::string& context() const noexcept {
    return session_->context();
  }
  [[nodiscard]] ClientId clientId() const noexcept {
    return session_->clientId();
  }

 private:
  explicit SimFSClient(std::shared_ptr<Session> session);

  /// Looks a request's handle up (copy; handles are shared tokens).
  [[nodiscard]] Result<AcquireHandle> findRequest(RequestId req);

  /// Consume-on-completion semantics of the paper API: drops the table
  /// entry once the request reached a terminal state.
  void eraseIfComplete(RequestId req, const AcquireHandle& handle);

  std::shared_ptr<Session> session_;

  std::mutex mutex_;
  std::map<RequestId, AcquireHandle> requests_;
  RequestId nextRequest_ = 1;
};

}  // namespace simfs::dvlib
