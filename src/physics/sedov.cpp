#include "physics/sedov.hpp"

#include <cmath>
#include <cstring>

namespace simfs::physics {

namespace {
constexpr char kRestartMagic[8] = {'S', 'E', 'D', 'O', 'V', 'R', 'S', '1'};
constexpr char kFieldMagic[4] = {'S', 'N', 'C', '1'};
}  // namespace

SedovSolver::SedovSolver(const SedovConfig& config) : config_(config) {
  SIMFS_CHECK(config_.n >= 3 && config_.n <= 1024);
  SIMFS_CHECK(config_.diffusion > 0.0 && config_.diffusion < 1.0 / 6.0);
  const auto cells = static_cast<std::size_t>(config_.n) * config_.n * config_.n;
  energy_.assign(cells, 0.0);
  scratch_.assign(cells, 0.0);
  // Initial pressure perturbation: all energy in the central cell.
  const std::int32_t c = config_.n / 2;
  energy_[idx(c, c, c)] = config_.blastEnergy;
}

void SedovSolver::step() {
  const std::int32_t n = config_.n;
  const double d = config_.diffusion;
  // Conservative explicit sweep: each cell exchanges a fixed fraction of
  // its energy with the six face neighbours (reflecting boundaries).
  // Deterministic: a single fixed z-y-x traversal, no reductions.
  for (std::int32_t z = 0; z < n; ++z) {
    for (std::int32_t y = 0; y < n; ++y) {
      for (std::int32_t x = 0; x < n; ++x) {
        const double e = energy_[idx(x, y, z)];
        double lap = -6.0 * e;
        lap += x > 0 ? energy_[idx(x - 1, y, z)] : e;
        lap += x + 1 < n ? energy_[idx(x + 1, y, z)] : e;
        lap += y > 0 ? energy_[idx(x, y - 1, z)] : e;
        lap += y + 1 < n ? energy_[idx(x, y + 1, z)] : e;
        lap += z > 0 ? energy_[idx(x, y, z - 1)] : e;
        lap += z + 1 < n ? energy_[idx(x, y, z + 1)] : e;
        scratch_[idx(x, y, z)] = e + d * lap;
      }
    }
  }
  energy_.swap(scratch_);
  ++timestep_;
}

void SedovSolver::run(std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) step();
}

std::vector<double> SedovSolver::densityField() const {
  // The shocked region compresses: density rises with local energy.
  std::vector<double> rho(energy_.size());
  for (std::size_t i = 0; i < energy_.size(); ++i) {
    rho[i] = config_.ambientDensity * (1.0 + energy_[i]);
  }
  return rho;
}

double SedovSolver::totalEnergy() const noexcept {
  double total = 0.0;
  for (const double e : energy_) total += e;
  return total;
}

double SedovSolver::frontRadius() const {
  // Energy-weighted mean distance from the centre.
  const std::int32_t n = config_.n;
  const double c = (n - 1) / 2.0;
  double weighted = 0.0;
  double total = 0.0;
  for (std::int32_t z = 0; z < n; ++z) {
    for (std::int32_t y = 0; y < n; ++y) {
      for (std::int32_t x = 0; x < n; ++x) {
        const double e = energy_[idx(x, y, z)];
        if (e <= 0.0) continue;
        const double r = std::sqrt((x - c) * (x - c) + (y - c) * (y - c) +
                                   (z - c) * (z - c));
        weighted += e * r;
        total += e;
      }
    }
  }
  return total > 0.0 ? weighted / total : 0.0;
}

std::string SedovSolver::writeOutputStep() const {
  const auto rho = densityField();
  std::string out;
  out.reserve(sizeof(kFieldMagic) + sizeof(std::uint64_t) +
              rho.size() * sizeof(double));
  out.append(kFieldMagic, sizeof(kFieldMagic));
  const std::uint64_t count = rho.size();
  out.append(reinterpret_cast<const char*>(&count), sizeof(count));
  out.append(reinterpret_cast<const char*>(rho.data()),
             rho.size() * sizeof(double));
  return out;
}

std::string SedovSolver::writeRestart() const {
  std::string out;
  out.append(kRestartMagic, sizeof(kRestartMagic));
  auto appendRaw = [&out](const void* p, std::size_t n) {
    out.append(reinterpret_cast<const char*>(p), n);
  };
  appendRaw(&config_.n, sizeof(config_.n));
  appendRaw(&config_.blastEnergy, sizeof(config_.blastEnergy));
  appendRaw(&config_.diffusion, sizeof(config_.diffusion));
  appendRaw(&config_.ambientDensity, sizeof(config_.ambientDensity));
  appendRaw(&timestep_, sizeof(timestep_));
  appendRaw(energy_.data(), energy_.size() * sizeof(double));
  return out;
}

Result<SedovSolver> SedovSolver::fromRestart(const std::string& blob) {
  std::size_t pos = 0;
  auto take = [&](void* dst, std::size_t n) -> bool {
    if (pos + n > blob.size()) return false;
    std::memcpy(dst, blob.data() + pos, n);
    pos += n;
    return true;
  };
  char magic[sizeof(kRestartMagic)];
  if (!take(magic, sizeof(magic)) ||
      std::memcmp(magic, kRestartMagic, sizeof(magic)) != 0) {
    return errInvalidArgument("sedov: not a restart blob");
  }
  SedovConfig cfg;
  std::int64_t timestep = 0;
  if (!take(&cfg.n, sizeof(cfg.n)) ||
      !take(&cfg.blastEnergy, sizeof(cfg.blastEnergy)) ||
      !take(&cfg.diffusion, sizeof(cfg.diffusion)) ||
      !take(&cfg.ambientDensity, sizeof(cfg.ambientDensity)) ||
      !take(&timestep, sizeof(timestep))) {
    return errInvalidArgument("sedov: truncated restart header");
  }
  if (cfg.n < 3 || cfg.n > 1024 || cfg.diffusion <= 0.0 ||
      cfg.diffusion >= 1.0 / 6.0) {
    return errInvalidArgument("sedov: corrupt restart config");
  }
  SedovSolver solver(cfg);
  solver.timestep_ = timestep;
  const std::size_t cells =
      static_cast<std::size_t>(cfg.n) * cfg.n * cfg.n;
  if (!take(solver.energy_.data(), cells * sizeof(double)) ||
      pos != blob.size()) {
    return errInvalidArgument("sedov: truncated restart field");
  }
  return solver;
}

}  // namespace simfs::physics
