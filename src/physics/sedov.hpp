// Miniature Sedov-like blast-wave solver (the FLASH stand-in, Sec. VI).
//
// The paper virtualizes a FLASH Sedov simulation: "the evolution of a
// blast wave from an initial pressure perturbation in an otherwise
// homogeneous medium". This module provides a small 3-D explicit solver
// with the properties SimFS actually depends on:
//
//   * deterministic: fixed traversal order, no threading, no wall-clock —
//     a re-run from the same restart file is **bitwise identical**, the
//     prerequisite for SIMFS_Bitrep (Sec. II);
//   * restartable: full state serializes to a restart blob and resumes
//     exactly (write restart -> continue == uninterrupted run);
//   * physically plausible: energy deposited at the grid centre diffuses
//     outward as an expanding spherical front while total energy is
//     conserved, so analyses (mean/variance of a field) see an evolving
//     signal.
//
// It is intentionally not a production hydro code — the timing behaviour
// of Figs. 18/19 comes from the synthetic simulator; this solver gives the
// live examples and the bit-reproducibility tests a real compute kernel.
#pragma once

#include "common/status.hpp"
#include "common/types.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace simfs::physics {

/// Solver configuration; defaults give a fast test-sized run.
struct SedovConfig {
  std::int32_t n = 24;            ///< grid is n^3 cells
  double blastEnergy = 10.0;      ///< energy deposited at the centre at t=0
  double diffusion = 0.12;        ///< front propagation coefficient (< 1/6)
  double ambientDensity = 1.0;

  friend bool operator==(const SedovConfig&, const SedovConfig&) = default;
};

/// Explicit 3-D solver with serializable state.
class SedovSolver {
 public:
  explicit SedovSolver(const SedovConfig& config);

  /// Advances one timestep (one conservative diffusion sweep).
  void step();

  /// Advances `n` timesteps.
  void run(std::int64_t n);

  [[nodiscard]] std::int64_t timestep() const noexcept { return timestep_; }
  [[nodiscard]] const SedovConfig& config() const noexcept { return config_; }

  /// The energy field (cell-major, x fastest).
  [[nodiscard]] const std::vector<double>& energy() const noexcept {
    return energy_;
  }

  /// Density derived from the energy front (what output steps carry).
  [[nodiscard]] std::vector<double> densityField() const;

  /// Conserved total energy (test invariant).
  [[nodiscard]] double totalEnergy() const noexcept;

  /// Mean radius of the blast front (grows with time; test invariant).
  [[nodiscard]] double frontRadius() const;

  /// Serializes an output step: the density field in the SNC1-like raw
  /// format (magic + u64 count + doubles) used by the I/O facades.
  [[nodiscard]] std::string writeOutputStep() const;

  /// Serializes the complete solver state (restart file).
  [[nodiscard]] std::string writeRestart() const;

  /// Restores a solver from a restart blob.
  [[nodiscard]] static Result<SedovSolver> fromRestart(const std::string& blob);

 private:
  [[nodiscard]] std::size_t idx(std::int32_t x, std::int32_t y,
                                std::int32_t z) const noexcept {
    return static_cast<std::size_t>((z * config_.n + y) * config_.n + x);
  }

  SedovConfig config_;
  std::int64_t timestep_ = 0;
  std::vector<double> energy_;
  std::vector<double> scratch_;
};

}  // namespace simfs::physics
