#include "posix/shim.hpp"

#include <cstring>

namespace simfs::posix {

PathClassifier::PathClassifier(std::string prefix) : prefix_(std::move(prefix)) {
  while (!prefix_.empty() && prefix_.back() == '/') prefix_.pop_back();
}

bool PathClassifier::match(const char* path,
                           std::string_view* rest) const noexcept {
  if (prefix_.empty() || path == nullptr) return false;
  const std::size_t n = prefix_.size();
  if (std::strncmp(path, prefix_.c_str(), n) != 0) return false;
  // "/simfs" and "/simfs/..." are ours; "/simfsy" is not.
  if (path[n] != '\0' && path[n] != '/') return false;
  if (rest != nullptr) *rest = std::string_view(path + n);
  return true;
}

FdTable::~FdTable() {
  for (auto& slot : slots_) {
    delete slot.load(std::memory_order_relaxed);
  }
  while (freeList_ != nullptr) {
    FdEntry* next = freeList_->nextFree;
    delete freeList_;
    freeList_ = next;
  }
}

FdEntry* FdTable::acquireEntry() {
  {
    std::lock_guard lock(poolMutex_);
    if (freeList_ != nullptr) {
      FdEntry* entry = freeList_;
      freeList_ = entry->nextFree;
      entry->nextFree = nullptr;
      return entry;
    }
  }
  return new FdEntry();
}

void FdTable::install(int fd, FdEntry* entry) noexcept {
  if (fd < 0 || fd >= kCapacity) return;
  slots_[static_cast<std::size_t>(fd)].store(entry, std::memory_order_release);
}

FdEntry* FdTable::get(int fd) const noexcept {
  if (fd < 0 || fd >= kCapacity) return nullptr;
  return slots_[static_cast<std::size_t>(fd)].load(std::memory_order_acquire);
}

FdEntry* FdTable::take(int fd) noexcept {
  if (fd < 0 || fd >= kCapacity) return nullptr;
  return slots_[static_cast<std::size_t>(fd)].exchange(
      nullptr, std::memory_order_acq_rel);
}

void FdTable::recycle(FdEntry* entry) {
  if (entry == nullptr) return;
  entry->reset();
  std::lock_guard lock(poolMutex_);
  entry->nextFree = freeList_;
  freeList_ = entry;
}

}  // namespace simfs::posix
