// Preload-shim building blocks: the prefix fast path and the fd table.
//
// These live in the main library (not the .so) so tests and the micro
// bench can exercise them without LD_PRELOAD tricks; the interposer
// symbols themselves live in preload/simfs_preload.cpp, OUTSIDE the src/
// glob — linking open()/read() overrides into every binary would hijack
// the whole test suite's I/O.
//
// Contract for the hot paths:
//   - PathClassifier::match is the ONLY work a non-SimFS path costs: one
//     prefix comparison, no locks, no allocation — then the real libc
//     call. The <5% overhead gate in bench/micro_posix.cpp pins this.
//   - FdTable::get is the ONLY work a read()/close() on a non-SimFS fd
//     costs beyond the real call: one bounds check + one atomic load.
//     Slot lookup is lock-free; only the entry pool (touched on SimFS
//     open/close, which already pay an RPC) takes a mutex.
#pragma once

#include "common/types.hpp"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace simfs::posix {

/// Decides "is this path ours?" with a single prefix comparison.
class PathClassifier {
 public:
  PathClassifier() = default;
  /// `prefix` with trailing slashes stripped (e.g. "/simfs"). Empty
  /// prefix matches nothing.
  explicit PathClassifier(std::string prefix);

  /// True when `path` is the prefix itself or below it; `rest` (optional)
  /// receives the part after the prefix ("" for the root itself), which
  /// aliases `path`.
  [[nodiscard]] bool match(const char* path,
                           std::string_view* rest = nullptr) const noexcept;

  [[nodiscard]] bool enabled() const noexcept { return !prefix_.empty(); }
  [[nodiscard]] const std::string& prefix() const noexcept { return prefix_; }

 private:
  std::string prefix_;
};

/// Per-fd shim state. `state` is the cross-thread handoff: a reader that
/// loads kReady (acquire) sees the dup2-ed backing fd; anything else
/// routes through the materialization path.
struct FdEntry {
  enum State : int { kPending = 0, kMaterializing = 1, kReady = 2 };

  std::int64_t vfsOpenId = 0;  ///< 0 for directories (never a vfs handle)
  std::atomic<int> state{kPending};
  bool isDir = false;       ///< directory placeholder: fstat synthesizes DIR
  std::int64_t offset = 0;  ///< tracked while pending (lseek before read)
  Bytes size = 0;           ///< synthesized fstat size until materialized
  int openFlags = 0;        ///< CLOEXEC etc., reapplied after dup2
  std::string backingPath;  ///< real file to dup2 over the placeholder;
                            ///< for directories, the virtual path (fstatat)
  std::mutex materialize;   ///< serializes first-read materialization
  FdEntry* nextFree = nullptr;

  void reset() {
    vfsOpenId = 0;
    state.store(kPending, std::memory_order_relaxed);
    isDir = false;
    offset = 0;
    size = 0;
    openFlags = 0;
    backingPath.clear();
    nextFree = nullptr;
  }
};

/// fd -> FdEntry* map sized for the process fd space. Lookup (the
/// read/close hot path) is one atomic load; installed entries are owned
/// by the table and recycled through a pool so steady-state open/close
/// churn reuses storage (pinned by the reuse test).
class FdTable {
 public:
  static constexpr int kCapacity = 1 << 16;

  FdTable() = default;
  ~FdTable();
  FdTable(const FdTable&) = delete;
  FdTable& operator=(const FdTable&) = delete;

  /// Pool entry for a new SimFS fd (recycled when available).
  [[nodiscard]] FdEntry* acquireEntry();

  /// Publishes `entry` as fd's state (release store).
  void install(int fd, FdEntry* entry) noexcept;

  /// The hot lookup: nullptr for non-SimFS fds (including out-of-range).
  [[nodiscard]] FdEntry* get(int fd) const noexcept;

  /// Detaches and returns fd's entry (nullptr when none) — close path.
  [[nodiscard]] FdEntry* take(int fd) noexcept;

  /// Returns a detached entry to the pool.
  void recycle(FdEntry* entry);

 private:
  std::vector<std::atomic<FdEntry*>> slots_ =
      std::vector<std::atomic<FdEntry*>>(kCapacity);
  std::mutex poolMutex_;
  FdEntry* freeList_ = nullptr;
};

}  // namespace simfs::posix
