#include "posix/geometry.hpp"

#include "common/env.hpp"
#include "msg/transport.hpp"
#include "posix/path.hpp"

#include <condition_variable>
#include <utility>

namespace simfs::posix {

namespace {

/// A synthesized directory never exceeds this many entries per context,
/// and an enumeration never this many contexts — a forged ack claiming
/// more is rejected instead of ballooning client memory.
constexpr std::int64_t kMaxSteps = 100'000'000;
constexpr std::size_t kMaxContexts = 1'000'000;

/// Codec prefixes/suffixes longer than this are nonsense; padWidth is
/// bounded by what an int64 step can render.
constexpr std::size_t kMaxAffixLen = 256;

Status checkAckEnvelope(const msg::Message& ack) {
  if (ack.type != msg::MsgType::kGeometryAck) {
    return errInvalidArgument("geometry: unexpected reply type");
  }
  const auto code = static_cast<StatusCode>(ack.code);
  if (code != StatusCode::kOk) return Status(code, ack.text);
  return Status::ok();
}

}  // namespace

msg::Message makeGeometryReq(std::uint64_t requestId,
                             const std::string& context) {
  msg::Message req;
  req.type = msg::MsgType::kGeometryReq;
  req.requestId = requestId;
  req.context = context;
  return req;
}

Result<ContextGeometry> parseGeometryAck(const msg::Message& ack) {
  if (const Status st = checkAckEnvelope(ack); !st.isOk()) return st;
  // Exact shapes only: ints = [deltaD, deltaR, numTimesteps,
  // outputStepBytes, padWidth], files = [outputPrefix, outputSuffix].
  // A truncated or padded ack is hostile, not "close enough".
  if (ack.ints.size() != 5 || ack.files.size() != 2) {
    return errInvalidArgument("geometry: malformed ack shape");
  }
  const std::int64_t deltaD = ack.ints[0];
  const std::int64_t deltaR = ack.ints[1];
  const std::int64_t numTimesteps = ack.ints[2];
  const std::int64_t stepBytes = ack.ints[3];
  const std::int64_t padWidth = ack.ints[4];
  if (deltaD < 1 || deltaR < 1 || numTimesteps < 0) {
    return errInvalidArgument("geometry: invalid step geometry");
  }
  if (stepBytes < 1) {
    return errInvalidArgument("geometry: invalid output step size");
  }
  if (padWidth < 1 || padWidth > 19) {
    return errInvalidArgument("geometry: invalid pad width");
  }
  if (ack.files[0].size() > kMaxAffixLen || ack.files[1].size() > kMaxAffixLen) {
    return errInvalidArgument("geometry: oversized naming affix");
  }
  // The affixes become path components verbatim — they must not smuggle
  // separators or traversal into the synthesized names.
  for (const auto& affix : ack.files) {
    if (affix.find('/') != std::string::npos) {
      return errInvalidArgument("geometry: affix contains '/'");
    }
  }
  if (ack.files[0].empty() || ack.files[0].front() == '.') {
    return errInvalidArgument("geometry: invalid output prefix");
  }
  if (ack.intArg < 0 || ack.intArg > kMaxSteps) {
    return errInvalidArgument("geometry: step count out of range");
  }
  ContextGeometry g;
  g.context = ack.context;
  g.geometry = simmodel::StepGeometry(deltaD, deltaR, numTimesteps);
  g.outputStepBytes = static_cast<Bytes>(stepBytes);
  g.outputPrefix = ack.files[0];
  g.outputSuffix = ack.files[1];
  g.padWidth = static_cast<int>(padWidth);
  g.numOutputSteps = ack.intArg;
  // The ack's count must agree with the geometry it shipped; a mismatch
  // means someone forged one of the two.
  if (g.numOutputSteps != g.geometry.numOutputSteps()) {
    return errInvalidArgument("geometry: step count disagrees with geometry");
  }
  return g;
}

Result<std::vector<std::string>> parseContextListAck(const msg::Message& ack) {
  if (const Status st = checkAckEnvelope(ack); !st.isOk()) return st;
  if (ack.files.size() > kMaxContexts ||
      ack.intArg != static_cast<std::int64_t>(ack.files.size())) {
    return errInvalidArgument("geometry: forged context count");
  }
  for (const auto& name : ack.files) {
    if (!validComponent(name)) {
      return errInvalidArgument("geometry: invalid context name");
    }
  }
  return ack.files;
}

GeometryClient::Options GeometryClient::defaultOptions() {
  Options o;
  if (const auto ms = env::getInt("SIMFS_POSIX_ATTR_TTL_MS")) {
    o.ttl = std::chrono::milliseconds(*ms < 0 ? 0 : *ms);
  }
  return o;
}

GeometryClient::GeometryClient(CallFn call, Options options)
    : call_(std::move(call)), options_(options) {}

Result<ContextGeometry> GeometryClient::context(const std::string& name) {
  std::unique_lock lock(mutex_);
  const auto now = Clock::now();
  if (const auto it = cache_.find(name);
      it != cache_.end() && now < it->second.expires) {
    return it->second.geometry;
  }
  const auto req = makeGeometryReq(nextRequestId_++, name);
  ++fetches_;
  // The RPC happens outside the lock so a slow daemon stalls only the
  // cold lookups, not cache hits on other threads.
  lock.unlock();
  const auto reply = call_(req);
  if (!reply) return reply.status();
  auto parsed = parseGeometryAck(*reply);
  if (!parsed) return parsed;
  lock.lock();
  cache_[name] = {*parsed, Clock::now() + options_.ttl};
  return parsed;
}

Result<std::vector<std::string>> GeometryClient::contexts() {
  std::unique_lock lock(mutex_);
  const auto now = Clock::now();
  if (namesValid_ && now < namesExpire_) return names_;
  const auto req = makeGeometryReq(nextRequestId_++, "");
  ++fetches_;
  lock.unlock();
  const auto reply = call_(req);
  if (!reply) return reply.status();
  auto parsed = parseContextListAck(*reply);
  if (!parsed) return parsed;
  lock.lock();
  names_ = *parsed;
  namesExpire_ = Clock::now() + options_.ttl;
  namesValid_ = true;
  return parsed;
}

void GeometryClient::invalidate() {
  std::lock_guard lock(mutex_);
  cache_.clear();
  namesValid_ = false;
}

std::uint64_t GeometryClient::fetches() const {
  std::lock_guard lock(mutex_);
  return fetches_;
}

GeometryClient::CallFn socketGeometryCall(std::string socketPath) {
  return [socketPath = std::move(socketPath)](
             const msg::Message& request) -> Result<msg::Message> {
    auto conn = msg::unixSocketConnect(socketPath);
    if (!conn) return conn.status();
    std::mutex mu;
    std::condition_variable cv;
    bool got = false;
    msg::Message reply;
    (*conn)->setHandler([&](msg::Message&& m) {
      std::lock_guard lock(mu);
      reply = std::move(m);
      got = true;
      cv.notify_all();
    });
    if (const Status st = (*conn)->send(request); !st.isOk()) return st;
    std::unique_lock lock(mu);
    if (!cv.wait_for(lock, std::chrono::seconds(5), [&] { return got; })) {
      (*conn)->close();
      return errTimedOut("geometry: no reply from daemon");
    }
    lock.unlock();
    (*conn)->close();
    return reply;
  };
}

}  // namespace simfs::posix
