// POSIX namespace layout of the SimFS virtual tree.
//
// The POSIX frontend (FUSE mount, LD_PRELOAD shim) exposes a two-level
// tree rooted at the mount point / path prefix:
//
//   <root>/                     -> the registered contexts, as directories
//   <root>/<context>/           -> that context's output steps, as files
//   <root>/<context>/<file>     -> one virtualized output step
//
// parsePosixPath classifies the part BELOW the root. It is deliberately
// strict: the namespace is synthesized from step geometry, so anything the
// synthesizer would never emit (dotfiles, "."/".." traversal, deeper
// nesting) is rejected here, before any RPC is spent on it — shells and
// tools probe paths like "<dir>/.git" constantly and those probes must
// fail fast without touching the daemon.
#pragma once

#include <string_view>

namespace simfs::posix {

enum class PathKind {
  kRoot,     ///< "" or "/": the mount root (context listing)
  kContext,  ///< "<context>" or "<context>/": one context directory
  kFile,     ///< "<context>/<file>": one output-step file
  kInvalid,  ///< anything the synthesized namespace can never contain
};

/// A classified path below the POSIX root. The views alias the input
/// string and are valid only as long as it is.
struct ParsedPath {
  PathKind kind = PathKind::kInvalid;
  std::string_view context;  ///< set for kContext and kFile
  std::string_view file;     ///< set for kFile
};

/// Classifies `rel`, the path relative to the mount root. Leading and
/// duplicate slashes collapse (POSIX resolution); a trailing slash is
/// accepted on directories but makes a file path kInvalid; components
/// that are empty, start with '.', or nest deeper than two levels are
/// kInvalid.
[[nodiscard]] ParsedPath parsePosixPath(std::string_view rel) noexcept;

/// True when `name` is a single well-formed namespace component (what
/// parsePosixPath would accept as a context or file name) — the FUSE
/// LOOKUP fast check, where parent and name arrive pre-split.
[[nodiscard]] bool validComponent(std::string_view name) noexcept;

}  // namespace simfs::posix
