// simfs_fuse core — a read-only FUSE server speaking the raw /dev/fuse
// kernel protocol, no libfuse (the PR 7 no-liburing precedent: one less
// dependency, full control of the wire).
//
// The kernel side of FUSE is a character device: mount(2) with
// "fd=<devfd>" splices a mounted superblock to the fd, after which the
// daemon read()s requests (fuse_in_header + opcode body) and write()s
// replies (fuse_out_header + body). This server implements the read-only
// subset — INIT, LOOKUP, GETATTR, OPENDIR, READDIR, OPEN, READ, FLUSH,
// RELEASE(/DIR), FORGET, ACCESS, STATFS — over a PosixVfs: lookups and
// listings come from synthesized geometry, OPEN registers interest via
// the async session core, and READ blocks on re-simulation exactly like
// a facade read before serving bytes from the context's backing store.
// Every mutating opcode answers EROFS (and the mount itself is MS_RDONLY,
// so the kernel rejects most writes before they reach us).
//
// Mounting needs CAP_SYS_ADMIN (or a fusermount helper, which we
// deliberately do not ship). probe() + mount() report failure as a
// Status so callers — the CI smoke in particular — can skip visibly
// instead of erroring.
#pragma once

#include "common/status.hpp"
#include "posix/vfs_core.hpp"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

namespace simfs::posix {

class FuseServer {
 public:
  struct Options {
    std::string mountPoint;
    std::string storeRoot;  ///< directory holding the resident step files
    std::shared_ptr<PosixVfs> vfs;
  };

  explicit FuseServer(Options options);
  ~FuseServer();
  FuseServer(const FuseServer&) = delete;
  FuseServer& operator=(const FuseServer&) = delete;

  /// Cheap environment check: can /dev/fuse be opened at all? (mount()
  /// can still fail with EPERM afterwards — both are "skip the smoke".)
  [[nodiscard]] static Status probe();

  /// Opens /dev/fuse and mounts it read-only on mountPoint.
  [[nodiscard]] Status mount();

  /// Serves kernel requests until the filesystem is unmounted or stop()
  /// is called. Single-threaded: a READ blocking on re-simulation stalls
  /// the mount's other requests for its duration — acceptable for the
  /// analysis-tool workloads this serves; parallel readers belong on the
  /// preload shim.
  void run();

  /// Lazy-unmounts and wakes run() out of its device read.
  void stop();

 private:
  struct Node {
    enum class Kind { kRoot, kContext, kFile };
    Kind kind = Kind::kRoot;
    std::string context;
    std::string file;
  };

  struct OpenState {
    std::int64_t vfsOpenId = 0;
    int backingFd = -1;     ///< opened after the first READ's ready-wait
    std::string storeName;  ///< file name under Options::storeRoot
  };

  /// Request handlers append their reply through these.
  void replyError(std::uint64_t unique, int err);
  void replyData(std::uint64_t unique, const void* data, std::size_t len);

  void handleRequest(const char* buf, std::size_t len);
  void doInit(std::uint64_t unique, const char* body, std::size_t len);
  void doLookup(std::uint64_t unique, std::uint64_t parent, const char* name);
  void doGetattr(std::uint64_t unique, std::uint64_t nodeid);
  void doReaddir(std::uint64_t unique, std::uint64_t nodeid,
                 std::uint64_t offset, std::uint32_t size);
  void doOpen(std::uint64_t unique, std::uint64_t nodeid, std::uint32_t flags);
  void doRead(std::uint64_t unique, std::uint64_t fh, std::uint64_t offset,
              std::uint32_t size);
  void doRelease(std::uint64_t unique, std::uint64_t fh);

  /// nodeid of (parent, name), creating the node on first sight.
  [[nodiscard]] std::uint64_t internNode(Node node);
  [[nodiscard]] const Node* findNode(std::uint64_t nodeid) const;

  Options options_;
  int devFd_ = -1;
  bool mounted_ = false;
  std::atomic<bool> stopping_{false};

  std::vector<Node> nodes_;  ///< nodeid = index + 1; nodes_[0] is the root
  std::map<std::pair<std::uint64_t, std::string>, std::uint64_t> byName_;
  std::map<std::uint64_t, OpenState> openFiles_;  ///< by fh
  std::uint64_t nextFh_ = 1;
};

}  // namespace simfs::posix
