// Context geometry over the wire (kGeometryReq / kGeometryAck) and the
// client-side cache the POSIX adapters share.
//
// The POSIX tree is synthesized, not stored: a directory listing is the
// context's output-step filenames rendered from its FilenameCodec, and a
// stat is its outputStepBytes — all derivable from the ContextConfig the
// daemon registered. kGeometryReq fetches exactly that projection once;
// GeometryClient then answers every lookup/readdir/stat from a TTL cache,
// so `ls -l` over a 64-file directory costs one RPC, not 129.
//
// Parsing is hardened the same way every other ack decoder is: the two
// lists and every scalar are bounds-checked before use, because a hostile
// or truncated peer controls all of them.
#pragma once

#include "common/status.hpp"
#include "common/types.hpp"
#include "msg/message.hpp"
#include "simmodel/filename_codec.hpp"
#include "simmodel/step_geometry.hpp"

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace simfs::posix {

/// One context's namespace-relevant geometry, as shipped by kGeometryAck.
struct ContextGeometry {
  std::string context;
  simmodel::StepGeometry geometry{1, 1, 0};
  Bytes outputStepBytes = 1;
  std::string outputPrefix;
  std::string outputSuffix;
  int padWidth = 10;
  std::int64_t numOutputSteps = 0;

  /// Codec over the shipped naming convention (restart naming is
  /// irrelevant to the POSIX tree — defaults are fine).
  [[nodiscard]] simmodel::FilenameCodec codec() const {
    return simmodel::FilenameCodec(outputPrefix, outputSuffix, "restart_",
                                   ".rst", padWidth);
  }

  /// Filename of output step i (caller checks the range).
  [[nodiscard]] std::string fileAt(StepIndex i) const {
    return codec().outputFile(i);
  }

  /// Parses `name` back to a step index; false when the name does not
  /// match the convention. A matching name can still be out of range —
  /// the caller checks against numOutputSteps.
  [[nodiscard]] bool stepOf(std::string_view name, StepIndex* step) const {
    return codec().matchOutput(name, step);
  }
};

/// Decodes + validates a context-form kGeometryAck. Rejects wrong type,
/// error codes, wrong list lengths, and out-of-range scalars.
[[nodiscard]] Result<ContextGeometry> parseGeometryAck(const msg::Message& ack);

/// Decodes + validates an enumeration-form kGeometryAck (context "").
[[nodiscard]] Result<std::vector<std::string>> parseContextListAck(
    const msg::Message& ack);

/// Builds the kGeometryReq for one context ("" = enumerate).
[[nodiscard]] msg::Message makeGeometryReq(std::uint64_t requestId,
                                           const std::string& context);

/// TTL-cached geometry lookups over an injected request/reply function.
///
/// The call seam keeps the cache testable (tests inject a counting /
/// hostile responder) and transport-agnostic: the FUSE server and the
/// preload shim plug in a one-shot socket call, in-process tests plug in
/// Daemon::buildGeometryReply directly.
class GeometryClient {
 public:
  using CallFn =
      std::function<Result<msg::Message>(const msg::Message& request)>;

  struct Options {
    /// Cache entry lifetime. 0 = every lookup refetches (TTL disabled);
    /// default 2s, overridable via SIMFS_POSIX_ATTR_TTL_MS.
    std::chrono::milliseconds ttl{2000};
  };

  explicit GeometryClient(CallFn call, Options options = defaultOptions());

  /// Options with the TTL resolved from SIMFS_POSIX_ATTR_TTL_MS.
  [[nodiscard]] static Options defaultOptions();

  /// Geometry of one context, from cache when fresh.
  [[nodiscard]] Result<ContextGeometry> context(const std::string& name);

  /// Registered context names, from cache when fresh.
  [[nodiscard]] Result<std::vector<std::string>> contexts();

  /// Drops every cached entry (remount, explicit refresh).
  void invalidate();

  /// RPCs actually issued — the observable the TTL tests pin.
  [[nodiscard]] std::uint64_t fetches() const;

 private:
  using Clock = std::chrono::steady_clock;

  CallFn call_;
  Options options_;
  mutable std::mutex mutex_;
  std::uint64_t fetches_ = 0;
  std::uint64_t nextRequestId_ = 1;
  struct CachedContext {
    ContextGeometry geometry;
    Clock::time_point expires;
  };
  std::map<std::string, CachedContext> cache_;
  std::vector<std::string> names_;
  Clock::time_point namesExpire_{};
  bool namesValid_ = false;
};

/// CallFn doing one connect + request + reply against a daemon's Unix
/// socket per invocation (control-plane frequency; the data plane never
/// goes through this).
[[nodiscard]] GeometryClient::CallFn socketGeometryCall(
    std::string socketPath);

}  // namespace simfs::posix
