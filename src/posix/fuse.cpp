#include "posix/fuse.hpp"

#include "common/log.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <linux/fuse.h>
#include <sys/mount.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

namespace simfs::posix {

namespace {

constexpr const char* kTag = "fuse";

/// One device read must hold the largest request (a write would be
/// max_write + headers; we are read-only, so this is generous).
constexpr std::size_t kRequestBufBytes = 1 << 20;

/// How long the kernel may cache lookups/attrs before re-asking. The
/// namespace only changes when a context is re-registered, so short and
/// simple beats precise invalidation.
constexpr std::uint64_t kCacheSeconds = 1;

// The dirent stream is serialized by hand: fuse_dirent ends in a flex
// array, and PR 7 taught us not to trust C++ offsets of uapi flex-array
// structs (empty-struct padding). Plain `char name[]` is safe today, but
// the manual layout costs nothing and cannot rot.
constexpr std::size_t kDirentNameOffset = 24;
static_assert(FUSE_NAME_OFFSET == kDirentNameOffset,
              "fuse_dirent layout changed");

std::size_t direntSize(std::size_t nameLen) {
  return FUSE_DIRENT_ALIGN(kDirentNameOffset + nameLen);
}

/// Appends one dirent to `out`; returns false (without appending) when
/// it would not fit in `maxBytes`.
bool appendDirent(std::vector<char>& out, std::size_t maxBytes,
                  std::uint64_t ino, std::uint64_t off, std::uint32_t type,
                  std::string_view name) {
  const std::size_t sz = direntSize(name.size());
  if (out.size() + sz > maxBytes) return false;
  const std::size_t at = out.size();
  out.resize(at + sz, 0);
  fuse_dirent d{};
  d.ino = ino;
  d.off = off;
  d.namelen = static_cast<std::uint32_t>(name.size());
  d.type = type;
  std::memcpy(out.data() + at, &d, kDirentNameOffset);
  std::memcpy(out.data() + at + kDirentNameOffset, name.data(), name.size());
  return true;
}

int statusToErrno(const Status& st) {
  switch (st.code()) {
    case StatusCode::kOk: return 0;
    case StatusCode::kNotFound: return ENOENT;
    case StatusCode::kInvalidArgument: return EINVAL;
    case StatusCode::kOutOfRange: return ENOENT;
    case StatusCode::kUnavailable:
    case StatusCode::kUnreachable: return EIO;
    case StatusCode::kTimedOut: return ETIMEDOUT;
    case StatusCode::kCancelled: return EINTR;
    default: return EIO;
  }
}

}  // namespace

FuseServer::FuseServer(Options options) : options_(std::move(options)) {
  nodes_.push_back(Node{Node::Kind::kRoot, "", ""});
}

FuseServer::~FuseServer() {
  stop();
  for (auto& [fh, open] : openFiles_) {
    if (open.backingFd >= 0) ::close(open.backingFd);
    options_.vfs->close(open.vfsOpenId);
  }
  if (devFd_ >= 0) ::close(devFd_);
}

Status FuseServer::probe() {
  const int fd = ::open("/dev/fuse", O_RDWR | O_CLOEXEC);
  if (fd < 0) {
    return errUnavailable(std::string("fuse: cannot open /dev/fuse: ") +
                          std::strerror(errno));
  }
  ::close(fd);
  return Status::ok();
}

Status FuseServer::mount() {
  devFd_ = ::open("/dev/fuse", O_RDWR | O_CLOEXEC);
  if (devFd_ < 0) {
    return errUnavailable(std::string("fuse: cannot open /dev/fuse: ") +
                          std::strerror(errno));
  }
  char opts[128];
  std::snprintf(opts, sizeof(opts),
                "fd=%d,rootmode=40000,user_id=%u,group_id=%u", devFd_,
                static_cast<unsigned>(::getuid()),
                static_cast<unsigned>(::getgid()));
  if (::mount("simfs", options_.mountPoint.c_str(), "fuse",
              MS_RDONLY | MS_NOSUID | MS_NODEV, opts) != 0) {
    const int err = errno;
    ::close(devFd_);
    devFd_ = -1;
    return errUnavailable(std::string("fuse: mount failed: ") +
                          std::strerror(err));
  }
  mounted_ = true;
  return Status::ok();
}

void FuseServer::stop() {
  if (stopping_.exchange(true)) return;
  if (mounted_) {
    // Lazy detach: also fails run()'s device read with ENODEV, which is
    // the loop's exit signal.
    (void)::umount2(options_.mountPoint.c_str(), MNT_DETACH);
    mounted_ = false;
  }
}

void FuseServer::run() {
  std::vector<char> buf(kRequestBufBytes);
  while (!stopping_.load(std::memory_order_relaxed)) {
    const ssize_t n = ::read(devFd_, buf.data(), buf.size());
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      // ENODEV: unmounted (by stop() or an external umount) — done.
      if (errno != ENODEV) {
        SIMFS_LOG_WARN(kTag, "device read failed: %s", std::strerror(errno));
      }
      break;
    }
    if (n == 0) break;
    handleRequest(buf.data(), static_cast<std::size_t>(n));
  }
}

void FuseServer::replyError(std::uint64_t unique, int err) {
  fuse_out_header h{};
  h.len = sizeof(h);
  h.error = -err;
  h.unique = unique;
  (void)!::write(devFd_, &h, sizeof(h));
}

void FuseServer::replyData(std::uint64_t unique, const void* data,
                           std::size_t len) {
  fuse_out_header h{};
  h.len = static_cast<std::uint32_t>(sizeof(h) + len);
  h.error = 0;
  h.unique = unique;
  iovec iov[2] = {{&h, sizeof(h)},
                  {const_cast<void*>(data), len}};
  (void)!::writev(devFd_, iov, len > 0 ? 2 : 1);
}

void FuseServer::handleRequest(const char* buf, std::size_t len) {
  if (len < sizeof(fuse_in_header)) return;
  fuse_in_header h{};
  std::memcpy(&h, buf, sizeof(h));
  const char* body = buf + sizeof(h);
  const std::size_t bodyLen = len - sizeof(h);
  switch (h.opcode) {
    case FUSE_INIT:
      doInit(h.unique, body, bodyLen);
      return;
    case FUSE_LOOKUP: {
      if (bodyLen == 0 || body[bodyLen - 1] != '\0') {
        replyError(h.unique, EINVAL);
        return;
      }
      doLookup(h.unique, h.nodeid, body);
      return;
    }
    case FUSE_GETATTR:
      doGetattr(h.unique, h.nodeid);
      return;
    case FUSE_OPENDIR: {
      fuse_open_out out{};
      replyData(h.unique, &out, sizeof(out));
      return;
    }
    case FUSE_READDIR: {
      if (bodyLen < sizeof(fuse_read_in)) {
        replyError(h.unique, EINVAL);
        return;
      }
      fuse_read_in in{};
      std::memcpy(&in, body, sizeof(in));
      doReaddir(h.unique, h.nodeid, in.offset, in.size);
      return;
    }
    case FUSE_OPEN: {
      if (bodyLen < sizeof(fuse_open_in)) {
        replyError(h.unique, EINVAL);
        return;
      }
      fuse_open_in in{};
      std::memcpy(&in, body, sizeof(in));
      doOpen(h.unique, h.nodeid, in.flags);
      return;
    }
    case FUSE_READ: {
      if (bodyLen < sizeof(fuse_read_in)) {
        replyError(h.unique, EINVAL);
        return;
      }
      fuse_read_in in{};
      std::memcpy(&in, body, sizeof(in));
      doRead(h.unique, in.fh, in.offset, in.size);
      return;
    }
    case FUSE_RELEASE: {
      if (bodyLen < sizeof(fuse_release_in)) {
        replyError(h.unique, EINVAL);
        return;
      }
      fuse_release_in in{};
      std::memcpy(&in, body, sizeof(in));
      doRelease(h.unique, in.fh);
      return;
    }
    case FUSE_RELEASEDIR:
    case FUSE_FLUSH:
      replyError(h.unique, 0);
      return;
    case FUSE_FORGET:
    case FUSE_BATCH_FORGET:
      return;  // no reply by protocol; nodes are kept (they are tiny)
    case FUSE_STATFS: {
      fuse_statfs_out out{};
      out.st.bsize = 4096;
      out.st.frsize = 4096;
      out.st.namelen = 255;
      replyData(h.unique, &out, sizeof(out));
      return;
    }
    // The kernel stops sending an opcode after one ENOSYS — exactly what
    // we want for ACCESS (mount is read-only), xattrs and locks.
    case FUSE_ACCESS:
    case FUSE_GETXATTR:
    case FUSE_LISTXATTR:
    case FUSE_GETLK:
    case FUSE_SETLK:
    case FUSE_SETLKW:
      replyError(h.unique, ENOSYS);
      return;
    // Mutations: the MS_RDONLY mount already blocks these kernel-side;
    // answer EROFS for any that slip through.
    case FUSE_SETATTR:
    case FUSE_MKNOD:
    case FUSE_MKDIR:
    case FUSE_UNLINK:
    case FUSE_RMDIR:
    case FUSE_SYMLINK:
    case FUSE_RENAME:
    case FUSE_RENAME2:
    case FUSE_LINK:
    case FUSE_WRITE:
    case FUSE_CREATE:
    case FUSE_SETXATTR:
    case FUSE_REMOVEXATTR:
    case FUSE_FALLOCATE:
      replyError(h.unique, EROFS);
      return;
    default:
      replyError(h.unique, ENOSYS);
      return;
  }
}

void FuseServer::doInit(std::uint64_t unique, const char* body,
                        std::size_t len) {
  if (len < sizeof(fuse_init_in)) {
    replyError(unique, EINVAL);
    return;
  }
  fuse_init_in in{};
  std::memcpy(&in, body, sizeof(in));
  if (in.major != FUSE_KERNEL_VERSION) {
    // Newer-major kernel: reply with just our major, the kernel re-INITs
    // at our level. Older-major: nothing to negotiate down to.
    fuse_init_out out{};
    out.major = FUSE_KERNEL_VERSION;
    replyData(unique, &out, sizeof(out));
    return;
  }
  if (in.minor < 23) {
    // Pre-7.23 kernels want truncated init replies; nothing this decade
    // runs one, so refuse instead of carrying compat paths.
    replyError(unique, EPROTO);
    return;
  }
  fuse_init_out out{};
  out.major = FUSE_KERNEL_VERSION;
  out.minor = std::min<std::uint32_t>(FUSE_KERNEL_MINOR_VERSION, in.minor);
  out.max_readahead = in.max_readahead;
  out.flags = 0;  // no READDIRPLUS, no caching extensions: plain READDIR
  out.max_background = 16;
  out.congestion_threshold = 12;
  out.max_write = 128 * 1024;
  out.time_gran = 1;
  replyData(unique, &out, sizeof(out));
}

std::uint64_t FuseServer::internNode(Node node) {
  nodes_.push_back(std::move(node));
  return nodes_.size();  // nodeid = index + 1
}

const FuseServer::Node* FuseServer::findNode(std::uint64_t nodeid) const {
  if (nodeid == 0 || nodeid > nodes_.size()) return nullptr;
  return &nodes_[nodeid - 1];
}

void FuseServer::doLookup(std::uint64_t unique, std::uint64_t parent,
                          const char* name) {
  const Node* dir = findNode(parent);
  if (dir == nullptr || dir->kind == Node::Kind::kFile ||
      !validComponent(name)) {
    replyError(unique, ENOENT);
    return;
  }
  ParsedPath path;
  Node node;
  if (dir->kind == Node::Kind::kRoot) {
    path.kind = PathKind::kContext;
    path.context = name;
    node = Node{Node::Kind::kContext, name, ""};
  } else {
    path.kind = PathKind::kFile;
    path.context = dir->context;
    path.file = name;
    node = Node{Node::Kind::kFile, dir->context, name};
  }
  const auto attr = options_.vfs->getattr(path);
  if (!attr) {
    replyError(unique, statusToErrno(attr.status()));
    return;
  }
  const auto key = std::make_pair(parent, std::string(name));
  auto it = byName_.find(key);
  if (it == byName_.end()) {
    it = byName_.emplace(key, internNode(std::move(node))).first;
  }
  fuse_entry_out out{};
  out.nodeid = it->second;
  out.generation = 1;
  out.entry_valid = kCacheSeconds;
  out.attr_valid = kCacheSeconds;
  out.attr.ino = it->second;
  out.attr.size = attr->size;
  out.attr.blocks = (attr->size + 511) / 512;
  out.attr.mode = attr->dir ? (S_IFDIR | 0555) : (S_IFREG | 0444);
  out.attr.nlink = attr->dir ? 2 : 1;
  out.attr.uid = ::getuid();
  out.attr.gid = ::getgid();
  out.attr.blksize = 4096;
  replyData(unique, &out, sizeof(out));
}

void FuseServer::doGetattr(std::uint64_t unique, std::uint64_t nodeid) {
  const Node* node = findNode(nodeid);
  if (node == nullptr) {
    replyError(unique, ENOENT);
    return;
  }
  ParsedPath path;
  switch (node->kind) {
    case Node::Kind::kRoot:
      path.kind = PathKind::kRoot;
      break;
    case Node::Kind::kContext:
      path.kind = PathKind::kContext;
      path.context = node->context;
      break;
    case Node::Kind::kFile:
      path.kind = PathKind::kFile;
      path.context = node->context;
      path.file = node->file;
      break;
  }
  const auto attr = options_.vfs->getattr(path);
  if (!attr) {
    replyError(unique, statusToErrno(attr.status()));
    return;
  }
  fuse_attr_out out{};
  out.attr_valid = kCacheSeconds;
  out.attr.ino = nodeid;
  out.attr.size = attr->size;
  out.attr.blocks = (attr->size + 511) / 512;
  out.attr.mode = attr->dir ? (S_IFDIR | 0555) : (S_IFREG | 0444);
  out.attr.nlink = attr->dir ? 2 : 1;
  out.attr.uid = ::getuid();
  out.attr.gid = ::getgid();
  out.attr.blksize = 4096;
  replyData(unique, &out, sizeof(out));
}

void FuseServer::doReaddir(std::uint64_t unique, std::uint64_t nodeid,
                           std::uint64_t offset, std::uint32_t size) {
  const Node* node = findNode(nodeid);
  if (node == nullptr || node->kind == Node::Kind::kFile) {
    replyError(unique, ENOTDIR);
    return;
  }
  const std::size_t maxBytes = std::min<std::size_t>(size, kRequestBufBytes);
  std::vector<char> out;
  out.reserve(std::min<std::size_t>(maxBytes, 64 * 1024));
  // Offsets are logical entry indices: 0 = ".", 1 = "..", 2+k = entry k.
  // The kernel resumes with the `off` of the last dirent it consumed, so
  // each dirent's off is its successor's index.
  std::uint64_t idx = offset;
  if (idx == 0) {
    if (!appendDirent(out, maxBytes, nodeid, 1, DT_DIR, ".")) {
      replyData(unique, out.data(), out.size());
      return;
    }
    ++idx;
  }
  if (idx == 1) {
    if (!appendDirent(out, maxBytes, FUSE_ROOT_ID, 2, DT_DIR, "..")) {
      replyData(unique, out.data(), out.size());
      return;
    }
    ++idx;
  }
  // Page the synthesized listing in chunks; entry k lives at offset 2+k.
  constexpr std::size_t kChunk = 256;
  bool full = false;
  while (!full) {
    const std::int64_t base = static_cast<std::int64_t>(idx - 2);
    Result<PosixVfs::DirPage> page = errInternal("unset");
    if (node->kind == Node::Kind::kRoot) {
      auto names = options_.vfs->listContexts();
      if (!names) {
        replyError(unique, statusToErrno(names.status()));
        return;
      }
      PosixVfs::DirPage p;
      for (std::size_t i = static_cast<std::size_t>(base);
           i < names->size() && p.names.size() < kChunk; ++i) {
        p.names.push_back((*names)[i]);
      }
      p.more = static_cast<std::size_t>(base) + p.names.size() < names->size();
      page = std::move(p);
    } else {
      page = options_.vfs->readdir(node->context, base, kChunk);
      if (!page) {
        replyError(unique, statusToErrno(page.status()));
        return;
      }
    }
    if (page->names.empty()) break;
    const std::uint32_t type =
        node->kind == Node::Kind::kRoot ? DT_DIR : DT_REG;
    for (const auto& name : page->names) {
      // Inode numbers in dirents may be approximate (FUSE_UNKNOWN_INO
      // exists for exactly this); LOOKUP assigns the real ones.
      if (!appendDirent(out, maxBytes, nodeid + 1, idx + 1, type, name)) {
        full = true;
        break;
      }
      ++idx;
    }
    if (!page->more) break;
  }
  replyData(unique, out.data(), out.size());
}

void FuseServer::doOpen(std::uint64_t unique, std::uint64_t nodeid,
                        std::uint32_t flags) {
  const Node* node = findNode(nodeid);
  if (node == nullptr || node->kind != Node::Kind::kFile) {
    replyError(unique, node == nullptr ? ENOENT : EISDIR);
    return;
  }
  if ((flags & O_ACCMODE) != O_RDONLY) {
    replyError(unique, EROFS);
    return;
  }
  auto opened = options_.vfs->open(node->context, node->file);
  if (!opened) {
    replyError(unique, statusToErrno(opened.status()));
    return;
  }
  const std::uint64_t fh = nextFh_++;
  openFiles_[fh] = OpenState{opened->id, -1, opened->storeName};
  fuse_open_out out{};
  out.fh = fh;
  replyData(unique, &out, sizeof(out));
}

void FuseServer::doRead(std::uint64_t unique, std::uint64_t fh,
                        std::uint64_t offset, std::uint32_t size) {
  const auto it = openFiles_.find(fh);
  if (it == openFiles_.end()) {
    replyError(unique, EBADF);
    return;
  }
  OpenState& open = it->second;
  if (open.backingFd < 0) {
    // First read: block until the step is resident (transparent
    // re-simulation), then serve bytes straight from the backing store.
    if (const Status st = options_.vfs->waitReady(open.vfsOpenId);
        !st.isOk()) {
      replyError(unique, statusToErrno(st));
      return;
    }
    const std::string backing = options_.storeRoot + "/" + open.storeName;
    open.backingFd = ::open(backing.c_str(), O_RDONLY | O_CLOEXEC);
    if (open.backingFd < 0) {
      SIMFS_LOG_WARN(kTag, "backing open failed for %s: %s", backing.c_str(),
                     std::strerror(errno));
      replyError(unique, EIO);
      return;
    }
  }
  std::vector<char> buf(std::min<std::uint32_t>(size, 1 << 20));
  const ssize_t n =
      ::pread(open.backingFd, buf.data(), buf.size(),
              static_cast<off_t>(offset));
  if (n < 0) {
    replyError(unique, errno);
    return;
  }
  replyData(unique, buf.data(), static_cast<std::size_t>(n));
}

void FuseServer::doRelease(std::uint64_t unique, std::uint64_t fh) {
  const auto it = openFiles_.find(fh);
  if (it != openFiles_.end()) {
    if (it->second.backingFd >= 0) ::close(it->second.backingFd);
    options_.vfs->close(it->second.vfsOpenId);
    openFiles_.erase(it);
  }
  replyError(unique, 0);
}

}  // namespace simfs::posix
