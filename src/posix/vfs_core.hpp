// PosixVfs — the one VFS core both POSIX adapters (FUSE server, preload
// shim) are thin over.
//
// It glues three things together:
//   - namespace synthesis: directory listings and stat geometry rendered
//     from GeometryClient's TTL-cached context geometry (no daemon round
//     trip on a warm cache),
//   - the async Session data path: a directory listing fires ONE vectored
//     acquireAsync over the listed step window, and every open() inside
//     that window ATTACHES to the covering batch instead of issuing its
//     own request — a 64-file `ls` + read pipeline costs exactly one
//     kOpenBatchReq,
//   - facade-equivalent blocking semantics: open() registers interest
//     without blocking, waitReady() blocks on re-simulation exactly like
//     an intercepted read (Session::waitFile), and close() of a handle
//     that never became ready cancels instead of leaking the
//     registration.
//
// Bytes are NOT proxied through this class: once waitReady() returns OK
// the output step is resident in the context's store and the adapter
// reads it from the real backing directory itself (FUSE via a FileStore,
// the shim by dup2-ing a real fd over its placeholder).
//
// Thread-safety: all public methods may be called from any thread. The
// internal mutex guards only SimFS-path bookkeeping — the preload shim's
// non-SimFS fast path never enters this class.
#pragma once

#include "common/status.hpp"
#include "common/types.hpp"
#include "dvlib/session.hpp"
#include "msg/transport.hpp"
#include "posix/geometry.hpp"
#include "posix/path.hpp"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace simfs::posix {

class PosixVfs {
 public:
  struct Options {
    /// Geometry request/reply seam (socketGeometryCall for deployments,
    /// an in-process responder in tests).
    GeometryClient::CallFn geometryCall;
    /// Dials a data-plane connection for one context's session. Called
    /// once per context, lazily.
    std::function<Result<std::unique_ptr<msg::Transport>>(
        const std::string& context)>
        connect;
    GeometryClient::Options geometry = GeometryClient::defaultOptions();
    /// Upper bound on the step window one directory listing prefetches
    /// as a single vectored acquire (SIMFS_POSIX_BATCH env override).
    std::size_t readdirBatchMax = 64;
  };

  /// Options wired to a daemon Unix socket for both planes.
  [[nodiscard]] static Options socketOptions(const std::string& socketPath);

  struct Attr {
    bool dir = false;
    Bytes size = 0;           ///< file size (0 for directories)
    std::int64_t entries = 0; ///< directory entry count (0 for files)
  };

  struct DirPage {
    std::vector<std::string> names;
    bool more = false;  ///< entries remain past this page
  };

  /// An open file handle: id for the bookkeeping, plus what the adapter
  /// needs to synthesize fstat before the bytes exist.
  struct OpenedFile {
    std::int64_t id = 0;
    Bytes size = 0;
    std::string storeName;  ///< name in the context's flat backing store
  };

  explicit PosixVfs(Options options);
  ~PosixVfs();
  PosixVfs(const PosixVfs&) = delete;
  PosixVfs& operator=(const PosixVfs&) = delete;

  /// Registered contexts (cached; sorted namespace roots).
  [[nodiscard]] Result<std::vector<std::string>> listContexts();

  /// Stat synthesis for any namespace path.
  [[nodiscard]] Result<Attr> getattr(const ParsedPath& path);

  /// One page of a context's synthesized listing, names ascending by
  /// step. A page starting at offset 0 also fires the vectored prefetch
  /// batch over the first readdirBatchMax steps (one kOpenBatchReq);
  /// later pages never re-fire it.
  [[nodiscard]] Result<DirPage> readdir(const std::string& context,
                                        std::int64_t offset,
                                        std::size_t limit);

  /// Registers interest in one output step (facade open semantics: no
  /// blocking — on a miss the DV starts re-simulating). Attaches to the
  /// covering readdir batch when one exists, else issues a batch of one.
  [[nodiscard]] Result<OpenedFile> open(const std::string& context,
                                        const std::string& file);

  /// Blocks until the opened step is resident (facade read semantics:
  /// transparent re-simulation wait). Idempotent.
  [[nodiscard]] Status waitReady(std::int64_t openId);

  /// Releases the handle. Never-ready handles cancel their registration
  /// (own batch) or leave it to the covering batch; ready handles deref
  /// via closeNotify — deferred while other opens of the same file are
  /// still in flight, so their blocking waits cannot be orphaned.
  void close(std::int64_t openId);

  [[nodiscard]] GeometryClient& geometry() noexcept { return geometry_; }

 private:
  /// One readdir-driven vectored prefetch over a step window.
  struct Batch {
    dvlib::AcquireHandle handle;
    std::map<std::string, std::size_t> index;  ///< file -> handle index
    int users = 0;      ///< opens currently attached
    bool doomed = false;  ///< superseded; cancel once users drains to 0
  };

  struct CtxState {
    std::shared_ptr<dvlib::Session> session;
    std::shared_ptr<Batch> batch;  ///< current listing coverage
  };

  struct Open {
    std::string context;
    std::string file;
    std::shared_ptr<dvlib::Session> session;
    dvlib::AcquireHandle own;      ///< batch of one (when not covered)
    std::shared_ptr<Batch> batch;  ///< covering batch (when covered)
    std::size_t batchIndex = 0;
    bool ready = false;
  };

  /// Session for `context`, dialed on first use. Caller holds mutex_.
  Result<std::shared_ptr<dvlib::Session>> sessionForLocked(
      const std::string& context);

  /// Cancels `batch` if doomed and drained. Caller holds mutex_.
  void maybeReapBatchLocked(const std::shared_ptr<Batch>& batch);

  Options options_;
  GeometryClient geometry_;
  std::mutex mutex_;
  std::map<std::string, CtxState> contexts_;
  std::map<std::int64_t, Open> opens_;
  std::int64_t nextOpenId_ = 1;
  /// Active opens per "context/file" — gates the closeNotify deref so an
  /// early close cannot erase the wait entry under a sibling's read.
  std::map<std::string, int> activeByFile_;
  /// Derefs owed once the last sibling open closes.
  std::map<std::string, int> deferredDerefs_;
};

}  // namespace simfs::posix
