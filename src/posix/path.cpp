#include "posix/path.hpp"

namespace simfs::posix {

bool validComponent(std::string_view name) noexcept {
  // Dotfiles cover "." and ".." too, so one test rejects traversal,
  // hidden-file probes, and the empty component alike.
  if (name.empty() || name.front() == '.') return false;
  return name.find('/') == std::string_view::npos;
}

ParsedPath parsePosixPath(std::string_view rel) noexcept {
  ParsedPath out;
  while (!rel.empty() && rel.front() == '/') rel.remove_prefix(1);
  const bool trailingSlash = !rel.empty() && rel.back() == '/';
  while (!rel.empty() && rel.back() == '/') rel.remove_suffix(1);
  if (rel.empty()) {
    out.kind = PathKind::kRoot;
    return out;
  }
  const auto slash = rel.find('/');
  if (slash == std::string_view::npos) {
    if (!validComponent(rel)) return out;
    out.kind = PathKind::kContext;
    out.context = rel;
    return out;
  }
  std::string_view first = rel.substr(0, slash);
  std::string_view second = rel.substr(slash + 1);
  // "ctx//file" collapses; "ctx/a/b" is deeper than the tree goes.
  while (!second.empty() && second.front() == '/') second.remove_prefix(1);
  if (second.empty()) {
    // "ctx//" — all-slash tail, same as "ctx/".
    if (!validComponent(first)) return out;
    out.kind = PathKind::kContext;
    out.context = first;
    return out;
  }
  if (second.find('/') != std::string_view::npos) return out;
  if (!validComponent(first) || !validComponent(second)) return out;
  if (trailingSlash) return out;  // "ctx/file/": files have no children
  out.kind = PathKind::kFile;
  out.context = first;
  out.file = second;
  return out;
}

}  // namespace simfs::posix
