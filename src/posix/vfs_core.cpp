#include "posix/vfs_core.hpp"

#include "common/env.hpp"

#include <algorithm>
#include <utility>

namespace simfs::posix {

namespace {

std::string fileKey(const std::string& context, const std::string& file) {
  return context + "/" + file;
}

std::size_t resolveBatchMax(std::size_t fromOptions) {
  if (const auto v = env::getInt("SIMFS_POSIX_BATCH")) {
    if (*v > 0) return static_cast<std::size_t>(*v);
  }
  return fromOptions == 0 ? 64 : fromOptions;
}

}  // namespace

PosixVfs::Options PosixVfs::socketOptions(const std::string& socketPath) {
  Options o;
  o.geometryCall = socketGeometryCall(socketPath);
  o.connect = [socketPath](const std::string&)
      -> Result<std::unique_ptr<msg::Transport>> {
    return msg::unixSocketConnect(socketPath);
  };
  return o;
}

PosixVfs::PosixVfs(Options options)
    : options_(std::move(options)),
      geometry_(options_.geometryCall, options_.geometry) {
  options_.readdirBatchMax = resolveBatchMax(options_.readdirBatchMax);
}

PosixVfs::~PosixVfs() {
  std::lock_guard lock(mutex_);
  // Unwind in registration order: per-open registrations first, then the
  // listing batches, then the sessions themselves.
  for (auto& [id, open] : opens_) {
    if (open.own.valid() && !open.ready) (void)open.own.cancel();
  }
  for (auto& [name, ctx] : contexts_) {
    if (ctx.batch != nullptr && ctx.batch->handle.valid()) {
      (void)ctx.batch->handle.cancel();
    }
    if (ctx.session != nullptr) ctx.session->finalize();
  }
}

Result<std::vector<std::string>> PosixVfs::listContexts() {
  auto names = geometry_.contexts();
  if (!names) return names;
  std::sort(names->begin(), names->end());
  return names;
}

Result<PosixVfs::Attr> PosixVfs::getattr(const ParsedPath& path) {
  Attr attr;
  switch (path.kind) {
    case PathKind::kRoot: {
      auto names = geometry_.contexts();
      if (!names) return names.status();
      attr.dir = true;
      attr.entries = static_cast<std::int64_t>(names->size());
      return attr;
    }
    case PathKind::kContext: {
      auto g = geometry_.context(std::string(path.context));
      if (!g) return g.status();
      attr.dir = true;
      attr.entries = g->numOutputSteps;
      return attr;
    }
    case PathKind::kFile: {
      auto g = geometry_.context(std::string(path.context));
      if (!g) return g.status();
      StepIndex step = 0;
      if (!g->stepOf(path.file, &step) || step < 0 ||
          step >= g->numOutputSteps) {
        return errNotFound("posix: no such output step");
      }
      attr.size = g->outputStepBytes;
      return attr;
    }
    case PathKind::kInvalid:
      break;
  }
  return errNotFound("posix: no such path");
}

Result<PosixVfs::DirPage> PosixVfs::readdir(const std::string& context,
                                            std::int64_t offset,
                                            std::size_t limit) {
  auto g = geometry_.context(context);
  if (!g) return g.status();
  const std::int64_t total = g->numOutputSteps;
  if (offset < 0) return errInvalidArgument("posix: negative readdir offset");
  DirPage page;
  const std::int64_t end =
      std::min<std::int64_t>(total, offset + static_cast<std::int64_t>(limit));
  for (std::int64_t i = offset; i < end; ++i) {
    page.names.push_back(g->fileAt(i));
  }
  page.more = end < total;
  if (offset != 0 || total == 0) return page;

  // Fresh listing: prefetch the window as ONE vectored acquire so the
  // `ls` + read-everything pipeline that follows costs a single
  // kOpenBatchReq. opens inside the window attach to this batch.
  const auto window = static_cast<std::size_t>(std::min<std::int64_t>(
      total, static_cast<std::int64_t>(options_.readdirBatchMax)));
  std::vector<std::string> files;
  files.reserve(window);
  for (std::size_t i = 0; i < window; ++i) {
    files.push_back(g->fileAt(static_cast<StepIndex>(i)));
  }
  std::lock_guard lock(mutex_);
  auto session = sessionForLocked(context);
  if (!session) return session.status();
  auto& ctx = contexts_[context];
  if (ctx.batch != nullptr && !ctx.batch->doomed &&
      ctx.batch->index.size() == files.size()) {
    return page;  // identical coverage already in flight / resident
  }
  if (ctx.batch != nullptr) {
    // Superseded listing: the old window's registrations die once its
    // attached opens drain (immediately when none are).
    ctx.batch->doomed = true;
    maybeReapBatchLocked(ctx.batch);
  }
  auto batch = std::make_shared<Batch>();
  for (std::size_t i = 0; i < files.size(); ++i) batch->index[files[i]] = i;
  batch->handle = (*session)->acquireAsync(std::span<const std::string>(files));
  ctx.batch = std::move(batch);
  return page;
}

Result<PosixVfs::OpenedFile> PosixVfs::open(const std::string& context,
                                            const std::string& file) {
  auto g = geometry_.context(context);
  if (!g) return g.status();
  StepIndex step = 0;
  if (!g->stepOf(file, &step) || step < 0 || step >= g->numOutputSteps) {
    return errNotFound("posix: no such output step");
  }
  std::lock_guard lock(mutex_);
  auto session = sessionForLocked(context);
  if (!session) return session.status();
  Open open;
  open.context = context;
  open.file = file;
  open.session = *session;
  auto& ctx = contexts_[context];
  if (ctx.batch != nullptr && !ctx.batch->doomed &&
      ctx.batch->index.count(file) != 0) {
    open.batch = ctx.batch;
    open.batchIndex = ctx.batch->index[file];
    ++ctx.batch->users;
  } else {
    open.own =
        (*session)->acquireAsync(std::span<const std::string>(&file, 1));
  }
  const std::int64_t id = nextOpenId_++;
  ++activeByFile_[fileKey(context, file)];
  OpenedFile out;
  out.id = id;
  out.size = g->outputStepBytes;
  out.storeName = file;
  opens_.emplace(id, std::move(open));
  return out;
}

Status PosixVfs::waitReady(std::int64_t openId) {
  std::shared_ptr<dvlib::Session> session;
  dvlib::AcquireHandle handle;
  std::size_t index = 0;
  std::string file;
  {
    std::lock_guard lock(mutex_);
    const auto it = opens_.find(openId);
    if (it == opens_.end()) {
      return errFailedPrecondition("posix: unknown open handle");
    }
    if (it->second.ready) return Status::ok();
    session = it->second.session;
    file = it->second.file;
    if (it->second.batch != nullptr) {
      handle = it->second.batch->handle;
      index = it->second.batchIndex;
    } else {
      handle = it->second.own;
      index = 0;
    }
  }
  // One round trip establishes the per-file outcome; only files the ack
  // reported OK ever get a wait entry, so probe() gates waitFile().
  if (const Status st = handle.waitAck(nullptr); !st.isOk()) return st;
  const auto probe = handle.probe(index);
  if (!probe.status.isOk()) return probe.status;
  const Status st = session->waitFile(file);
  if (st.isOk()) {
    std::lock_guard lock(mutex_);
    const auto it = opens_.find(openId);
    if (it != opens_.end()) it->second.ready = true;
  }
  return st;
}

void PosixVfs::close(std::int64_t openId) {
  std::shared_ptr<dvlib::Session> session;
  std::vector<std::string> derefs;
  dvlib::AcquireHandle cancelOwn;
  {
    std::lock_guard lock(mutex_);
    const auto it = opens_.find(openId);
    if (it == opens_.end()) return;
    Open open = std::move(it->second);
    opens_.erase(it);
    session = open.session;
    const std::string key = fileKey(open.context, open.file);
    const bool last = --activeByFile_[key] == 0;
    if (last) activeByFile_.erase(key);
    if (open.batch != nullptr) {
      --open.batch->users;
      if (open.ready) {
        // The batch registered one reference for this file; release it
        // early so a read-then-close sweep over a listing unpins as it
        // goes. Deferred while sibling opens still wait on the file:
        // closeNotify erases the session's wait entry, which would
        // orphan their blocking reads.
        if (last) {
          derefs.assign(
              static_cast<std::size_t>(1 + deferredDerefs_[key]), open.file);
          deferredDerefs_.erase(key);
        } else {
          ++deferredDerefs_[key];
        }
      } else if (last) {
        // Never-ready and nobody else waiting: flush derefs siblings
        // deferred onto us (their reads completed; ours never started —
        // the batch still holds this file's registration either way).
        const auto d = deferredDerefs_.find(key);
        if (d != deferredDerefs_.end()) {
          derefs.assign(static_cast<std::size_t>(d->second), open.file);
          deferredDerefs_.erase(d);
        }
      }
      maybeReapBatchLocked(open.batch);
    } else {
      if (open.ready && last) {
        derefs.assign(
            static_cast<std::size_t>(1 + deferredDerefs_[key]), open.file);
        deferredDerefs_.erase(key);
        // The own-batch registration converted into the reference we
        // just queued for deref — nothing left to cancel.
      } else if (open.ready) {
        ++deferredDerefs_[key];
      } else {
        // Close of an unread handle cancels: one fire-and-forget
        // kCancelReq releases the waiter entry (still pending) or the
        // delivered reference, so an opened-never-read file pins nothing.
        cancelOwn = std::move(open.own);
      }
    }
  }
  if (cancelOwn.valid()) (void)cancelOwn.cancel();
  for (const auto& f : derefs) session->closeNotify(f);
}

Result<std::shared_ptr<dvlib::Session>> PosixVfs::sessionForLocked(
    const std::string& context) {
  auto& ctx = contexts_[context];
  if (ctx.session != nullptr) return ctx.session;
  auto transport = options_.connect(context);
  if (!transport) return transport.status();
  auto session = dvlib::Session::connect(std::move(*transport), context);
  if (!session) return session.status();
  ctx.session = *session;
  return ctx.session;
}

void PosixVfs::maybeReapBatchLocked(const std::shared_ptr<Batch>& batch) {
  if (!batch->doomed || batch->users != 0) return;
  if (batch->handle.valid()) (void)batch->handle.cancel();
}

}  // namespace simfs::posix
