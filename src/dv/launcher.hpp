// Simulation launching seam between the DV core and the simulator
// substrate (Sec. III-B).
//
// The DV never runs simulations itself: it renders a JobSpec through the
// context's SimulationDriver and hands it to a SimLauncher. Launcher
// implementations:
//   * simulator::DesSimulatorFleet  — virtual-time actors on the engine
//   * simulator::ThreadedSimulatorFleet — scaled wall-clock threads
// Both report progress back through DataVirtualizer::simulation*() calls.
#pragma once

#include "common/types.hpp"
#include "simmodel/driver.hpp"

namespace simfs::dv {

/// Starts and kills simulation jobs on behalf of the DV.
class SimLauncher {
 public:
  virtual ~SimLauncher() = default;

  /// Launches the job `spec` under DV-assigned id `job`. The launcher must
  /// eventually deliver simulationStarted / simulationFileWritten /
  /// simulationFinished events back to the DV (possibly after a queuing
  /// delay, which is part of the observed restart latency).
  virtual void launch(SimJobId job, const simmodel::JobSpec& spec) = 0;

  /// Best-effort kill of a running/queued job. Steps already written stay;
  /// the DV revokes only the not-yet-produced range.
  virtual void kill(SimJobId job) = 0;
};

}  // namespace simfs::dv
