// dv::Daemon — the live deployment wrapper around the DV core (the
// "daemon process" of Sec. III), restructured as a sharded, batched
// serving pipeline:
//
//   transports (epoll reactor / in-proc) ──► dispatch (thread of arrival)
//        │   zero-copy: inbound frames arrive as msg::MessageView over the
//        │   receive buffer; route by context / client id / job id — no
//        │   global lock
//        ▼
//   per-shard MPSC request queues  (client requests and simulator events
//        │   unified as DaemonRequest; client messages are bump-copied
//        │   into the shard's arena, which is reset after each batch
//        │   drain — steady-state queueing never touches the heap)
//        ▼
//   worker pool: each worker drains whole batches from its shards — one
//        │       shard-lock acquisition and one reply/notification flush
//        ▼       amortized over the batch
//   DvShard state machines (ShardedVirtualizer)
//        │
//        ▼
//   buffered replies + kFileReady notifications, sent after the shard
//   lock drops (the reactor coalesces them into writev batches)
//
// Contexts are pinned to shards, so traffic for different contexts never
// contends; per-context request order is preserved because exactly one
// worker drains any given shard's queue. Aggregate introspection
// (kStatusReq, stats()) and per-shard counters (kShardStatsReq) are
// answered on the dispatching thread without touching the queues.
// Federation (src/cluster): a daemon can be given a node identity and a
// consistent-hash Ring. The ring picks the owning node for a context, the
// shard lattice picks the shard within it — one placement function, two
// levels. A kHello for a context owned by a peer is answered with
// kRedirect (the routing-aware DVLib client re-dials the owner);
// context-tagged fire-and-forget simulator events are transparently
// forwarded over a lazily-dialed peer transport instead, because no
// reply needs to find its way back (single-hop: Message::hops bounds
// relaying even if ring tables disagree). A one-node ring never
// redirects nor forwards — the single-node deployment is byte-identical
// to the pre-federation daemon.
#pragma once

#include "cluster/ring.hpp"
#include "common/clock.hpp"
#include "dv/autotuner.hpp"
#include "dv/sharded_virtualizer.hpp"
#include "msg/transport.hpp"

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace simfs::dv {

/// Thread-safe, transport-facing DV daemon.
class Daemon {
 public:
  struct Options {
    /// Independently-lockable DV shards; contexts round-robin onto them.
    std::size_t shards = 8;
    /// Worker threads draining the shard queues (clamped to [1, shards]).
    std::size_t workers = 4;
    /// Per-shard queue bound: client requests arriving while a shard
    /// already holds this many are shed with kUnavailable instead of
    /// growing the queue without limit. 0 = take SIMFS_SHARD_QUEUE_CAP
    /// from the environment (default 4096; <= 0 there means unbounded).
    std::size_t queueCap = 0;
    /// Federation identity: this daemon's id in `ring`. Empty = not
    /// federated (every context is served locally, the pre-federation
    /// behavior).
    std::string nodeId;
    /// Cluster membership; consulted only when nodeId is non-empty.
    cluster::Ring ring;
    /// Read-replica count R: the owner of a context pushes resident-step
    /// leases to the next R distinct ring successors, which then serve
    /// leased kOpenBatchReq traffic locally. -1 = take SIMFS_REPLICAS
    /// from the environment (default 0 = replicas disabled). Clamped to
    /// ring size - 1; forced to 0 on non-federated daemons.
    int replicas = -1;
  };

  /// Per-shard serving counters (also exposed over the wire via
  /// msg::MsgType::kShardStatsReq and `simfsctl stats`).
  struct ShardCounters {
    std::size_t shard = 0;
    std::vector<std::string> contexts;
    std::uint64_t enqueued = 0;   ///< requests/events ever queued
    std::uint64_t served = 0;     ///< requests/events processed
    std::uint64_t batches = 0;    ///< queue drains (lock acquisitions)
    std::uint64_t maxBatch = 0;   ///< largest single drain
    std::uint64_t shed = 0;       ///< requests rejected by the queue cap
    std::size_t queued = 0;       ///< currently waiting in the queue
    std::size_t residentSteps = 0;
    /// TuneWindow feed for CacheAutotuner (cumulative; diff two samples
    /// for a window): DV opens, misses, and re-simulated output steps.
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    std::uint64_t resimSteps = 0;
    /// Replica-lease serving counters (0 when replicas are disabled).
    std::uint64_t replicaHits = 0;  ///< opens served locally off a lease
    std::uint64_t notLeased = 0;    ///< opens bounced back to the owner
    std::size_t leasedSteps = 0;    ///< steps currently leased in
    /// Per-context lease detail (contexts with lease activity only).
    std::vector<std::pair<std::string, LeaseView>> leases;
  };

  /// Node-level federation counters.
  struct FederationCounters {
    std::uint64_t redirects = 0;     ///< kRedirect replies sent
    std::uint64_t forwarded = 0;     ///< fire-and-forget messages relayed
    std::uint64_t forwardDrops = 0;  ///< relays lost (peer unreachable)
    std::uint64_t pingsSent = 0;     ///< peer heartbeats sent
    std::uint64_t pongsReceived = 0; ///< peer heartbeats answered
    std::uint64_t peersSuspect = 0;  ///< peers currently missing pongs
    std::uint64_t peersDead = 0;     ///< peers currently declared dead
    std::uint64_t leaseGrantsSent = 0;    ///< kLeaseGrant messages pushed
    std::uint64_t leaseRevokesSent = 0;   ///< kLeaseRevoke messages pushed
    std::uint64_t leaseAcksReceived = 0;  ///< kLeaseAck consumed on peer links
    std::uint64_t contextsRevoking = 0;   ///< contexts with un-acked revokes
    /// Elastic-membership handoff progress (old-owner side).
    std::uint64_t handoffsInflight = 0;   ///< transfers queued / streaming
    std::uint64_t handoffsCommitted = 0;  ///< transfers acked by the new owner
    std::uint64_t handoffsAborted = 0;    ///< transfers timed out / faulted
  };

  Daemon() : Daemon(Options{}) {}
  explicit Daemon(const Options& options);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  // --- setup (before serving) -------------------------------------------------

  /// Registers a context on the core (round-robin shard assignment).
  Status registerContext(std::unique_ptr<simmodel::SimulationDriver> driver);

  /// Wires the launcher (e.g. ThreadedSimulatorFleet). launch()/kill() are
  /// invoked on worker threads with the owning shard's lock held.
  void setLauncher(SimLauncher* launcher);

  /// Optional eviction sink (unlink files from the real store). Invoked on
  /// worker threads with the owning shard's lock held; must be thread-safe.
  void setEvictFn(DvShard::EvictFn fn);

  /// Seeds an available step (initial simulation output).
  Status seedAvailableStep(const std::string& context, StepIndex step);

  /// Installs reference checksums for SIMFS_Bitrep.
  Status setChecksumMap(const std::string& context, simmodel::ChecksumMap map);

  // --- serving ------------------------------------------------------------------

  /// Attaches a client connection; the daemon handles its protocol until
  /// the transport closes.
  void serveTransport(std::unique_ptr<msg::Transport> transport);

  /// Convenience: creates an in-process pair, serves one end, returns the
  /// other for a DVLib client living in this process.
  [[nodiscard]] std::unique_ptr<msg::Transport> connectInProc();

  /// Binds a Unix-domain socket and serves every connection.
  Status listen(const std::string& socketPath);

  /// Stops the socket server and the worker pool (already-queued requests
  /// are drained first; in-proc setup calls keep working).
  void stop();

  /// Graceful shutdown (SIGTERM): stops accepting new connections, waits
  /// (bounded by SIMFS_DRAIN_MS, default 2000) for the shard queues to
  /// empty so in-flight replies flush, then stop()s. Safe to call from a
  /// signal-forwarding thread.
  void drain();

  // --- simulator events (called by launcher implementations) ---------------------

  void simulationStarted(SimJobId job);
  void simulationFileWritten(SimJobId job, const std::string& file);
  void simulationFinished(SimJobId job, const Status& status);

  // --- inspection -----------------------------------------------------------------

  [[nodiscard]] DvStats stats() const;
  [[nodiscard]] bool isAvailable(const std::string& context, StepIndex step) const;
  [[nodiscard]] std::size_t shardCount() const noexcept {
    return core_.numShards();
  }
  [[nodiscard]] std::vector<ShardCounters> shardCounters() const;
  [[nodiscard]] FederationCounters federationCounters() const;
  [[nodiscard]] const std::string& nodeId() const noexcept { return nodeId_; }
  /// Snapshot of the current (possibly elastically re-committed) ring.
  [[nodiscard]] cluster::Ring ring() const {
    std::lock_guard lock(ringMutex_);
    return *ring_;
  }
  [[nodiscard]] std::size_t queueCap() const noexcept { return queueCap_; }
  /// Effective read-replica count R (0 = replica serving disabled).
  /// Re-clamped on every committed membership change.
  [[nodiscard]] std::size_t replicas() const noexcept {
    return replicas_.load(std::memory_order_relaxed);
  }

  /// The autotuner observation window between two shard-counter samples
  /// (`prev` all-zero for the first window).
  [[nodiscard]] static TuneWindow tuneWindowOf(const ShardCounters& now,
                                               const ShardCounters& prev);

 private:
  struct Session;
  struct DaemonRequest;
  struct ShardServing;
  struct Worker;

  /// Routes one inbound message on the thread it arrived on: introspection
  /// is answered inline, everything else is arena-copied into its shard's
  /// queue. `m` is a zero-copy view over the transport's receive buffer —
  /// valid only for the duration of this call.
  void dispatch(const std::shared_ptr<Session>& session,
                const msg::MessageView& m);

  /// True when this daemon has a federation identity and `context` hashes
  /// to a different member of `ring` (returned via `owner`). The caller
  /// must keep the ring snapshot alive while it uses `*owner` — the
  /// pointer aims into it.
  [[nodiscard]] bool ownedElsewhere(const cluster::Ring& ring,
                                    std::string_view context,
                                    const cluster::NodeInfo** owner) const;

  /// The current ring, shared: dispatch/worker/maintenance threads read a
  /// stable snapshot while a kRingCommit swaps the holder underneath.
  [[nodiscard]] std::shared_ptr<const cluster::Ring> ringRef() const {
    std::lock_guard lock(ringMutex_);
    return ring_;
  }

  /// The replica count `ring` supports on this daemon (configured R
  /// clamped to ring size - 1; 0 when standalone or single-node).
  [[nodiscard]] std::size_t effectiveReplicas(const cluster::Ring& ring) const;

  /// Relays a fire-and-forget message to `owner` over the cached peer
  /// link. Never dials on this (dispatching / reactor) thread: with no
  /// open link the message is queued (bounded) and the maintenance thread
  /// dials under exponential backoff; messages for a dead peer inside its
  /// backoff window are dropped and counted instead of blocking.
  void forwardToPeer(const cluster::NodeInfo& owner, const msg::Message& m);

  /// Wakes the maintenance thread (pending peer dials, health checks).
  void wakeMaintenance();

  /// Background loop: peer dialing + heartbeats (federated only) and the
  /// per-shard deadline-reap tick.
  void maintenanceLoop();

  /// Dials every peer with queued forwards whose backoff window elapsed;
  /// flushes their pending messages on success.
  void dialPendingPeers();

  /// Sends one kPing per live peer link and demotes peers whose previous
  /// ping went unanswered (healthy -> suspect -> dead).
  void heartbeatPeers();

  /// Drains leaseOutbox_ on the maintenance thread: each queued grant /
  /// revoke is fanned out to the context's R ring successors over the
  /// cached peer links (forwardToPeer semantics — queued for dial when no
  /// link is open). Eviction revokes are recorded in pendingRevokes_
  /// until every replica acks.
  void flushLeaseOutbox();

  /// Peer link just (re)established: push a revoke-all + full resident
  /// grant for every locally-owned context whose replica set includes
  /// `endpoint`, so replicas that missed queued grants (drops, restarts)
  /// converge. Both messages are generation-fenced, hence idempotent.
  void resyncLeasesTo(const std::string& endpoint,
                      const std::shared_ptr<msg::Transport>& link);

  /// Peer declared dead: its un-acked revokes can never complete; stop
  /// flagging their contexts as "revoking" (the peer's leases die with it).
  void clearPendingRevokes(const std::string& endpoint);

  /// True when this node is one of the R ring successors for `context`.
  [[nodiscard]] bool isReplicaFor(std::string_view context) const;

  /// True when this node currently holds a non-empty replica lease for
  /// `context` (takes the owning shard's lock briefly).
  [[nodiscard]] bool hasActiveLease(const std::string& context) const;

  /// Applies an inbound kLeaseGrant / kLeaseRevoke under the owning
  /// shard's lock and acks with kLeaseAck (intArg echoes the generation,
  /// intArg2=1 marks a revoke ack). Runs inline on the dispatch thread —
  /// lease traffic is rare relative to serving traffic.
  void handleLeaseOp(const std::shared_ptr<Session>& session,
                     const msg::MessageView& m);

  // --- elastic membership (kRingPropose / kRingCommit / kContextHandoff) -----

  /// Stages a proposed membership change: validates the version bump,
  /// computes the handoff work list against the current ring, queues
  /// outbound transfers for the contexts this node loses, and (hops == 0)
  /// relays the proposal to every member of old-union-new. Inline on the
  /// dispatch thread — admin-frequency traffic.
  void handleRingPropose(const std::shared_ptr<Session>& session,
                         const msg::MessageView& m);

  /// Commits a membership change: swaps the ring holder, re-clamps the
  /// replica count, applies epoch-matching staged imports (ring first, so
  /// lease grants emitted by the imports already see this node as owner),
  /// settles outbound transfers, and relays (hops == 0).
  void handleRingCommit(const std::shared_ptr<Session>& session,
                        const msg::MessageView& m);

  /// Applies one inbound handoff frame under the epoch fence:
  /// epoch < committed ring version -> rejected (stale sender);
  /// epoch == current -> applied immediately (post-commit delta);
  /// epoch > current -> staged until the matching kRingCommit.
  void handleContextHandoff(const std::shared_ptr<Session>& session,
                            const msg::MessageView& m);

  /// Maintenance-thread handoff engine: exports and streams queued
  /// transfers (fault::Point::kHandoff gates each frame) and aborts
  /// transfers whose final ack missed SIMFS_HANDOFF_TIMEOUT_MS.
  void runHandoffs();

  /// Consumes a kContextHandoffAck arriving on a peer link: a final-frame
  /// ack commits the transfer, an error ack aborts it.
  void onHandoffAck(const msg::Message& reply);

  /// Transfers not yet settled (queued / streaming / awaiting ack).
  [[nodiscard]] std::size_t inflightHandoffs() const;

  [[nodiscard]] msg::Message buildRedirect(std::uint64_t requestId,
                                           std::string_view context,
                                           const cluster::NodeInfo& owner,
                                           const cluster::Ring& ring) const;
  /// Arena-backed redirect for the worker reply path (replies are buffered
  /// under the shard lock and flushed after it drops — a direct send here
  /// would reorder against the batch's other replies).
  [[nodiscard]] msg::MessageRef buildRedirectRef(
      msg::Arena& arena, std::uint64_t requestId, std::string_view context,
      const cluster::NodeInfo& owner, const cluster::Ring& ring) const;
  [[nodiscard]] msg::Message buildRingUpdate(std::uint64_t requestId) const;

  /// Queues a non-client request (sim event, disconnect) to its shard;
  /// these are never shed.
  void enqueue(std::size_t shard, DaemonRequest&& request);
  /// Arena-copies a client message into its shard's queue. Returns false
  /// when the request was shed instead (queue at queueCap_; the
  /// kUnavailable reply has already been sent).
  bool enqueueClient(std::size_t shard, const std::shared_ptr<Session>& s,
                     const msg::MessageView& m);
  /// Post-push bookkeeping shared by the enqueue paths: counters, the
  /// stop-race drain, and the worker wakeup.
  void finishEnqueue(std::size_t shard);
  void enqueueSimEvent(DaemonRequest&& request);
  void onSessionClosed(const std::shared_ptr<Session>& session);
  /// Points the session's transport at this daemon (close + view handler).
  void installSessionHandlers(const std::shared_ptr<Session>& session);
  /// Transport negotiation, decided at the session's first kHello on the
  /// dispatching thread: when the hello offers a shared-memory segment
  /// (kHelloCapShm + key) and this session runs over a plain socket, the
  /// daemon maps the segment and swaps the session onto the rings. Any
  /// failure declines silently — the socket ack settles the client back.
  void maybeUpgradeToShm(const std::shared_ptr<Session>& session,
                         const msg::MessageView& m);
  /// Per-transport connection accounting at hello time (kShardStatsAck).
  void noteHelloTransport(const msg::Transport& t);
  void workerLoop(std::size_t workerIndex);
  bool drainShard(std::size_t shard, std::vector<DaemonRequest>& batch);
  void processOnShard(std::size_t shardIndex, DvShard& shard,
                      DaemonRequest& request);
  void processClientMessage(std::size_t shardIndex, DvShard& shard,
                            const std::shared_ptr<Session>& session,
                            const msg::MessageRef& m);
  void onNotify(ClientId client, const std::string& file, const Status& st);
  [[nodiscard]] msg::Message buildStatusReply(std::uint64_t requestId) const;
  [[nodiscard]] msg::Message buildShardStatsReply(std::uint64_t requestId) const;
  /// kGeometryAck for one context ("" = enumerate registered contexts).
  [[nodiscard]] msg::Message buildGeometryReply(std::uint64_t requestId,
                                                const std::string& context) const;

  RealClock clock_;
  ShardedVirtualizer core_;
  std::string nodeId_;
  /// Committed membership. Swapped whole (shared_ptr) by kRingCommit so
  /// every reader holds an immutable snapshot across its whole decision —
  /// an owner looked up on ring v(N) never dangles when v(N+1) lands.
  std::shared_ptr<const cluster::Ring> ring_;
  mutable std::mutex ringMutex_;
  std::size_t queueCap_ = 0;  ///< 0 = unbounded
  std::size_t replicasConfigured_ = 0;  ///< requested R before ring clamping
  std::atomic<std::size_t> replicas_{0};  ///< effective R (0 = disabled)

  /// One owner-side lease command, queued by the LeaseFn (which fires
  /// with a shard lock held) and flushed by the maintenance thread so
  /// peer sends never happen under a shard lock.
  struct LeaseCmd {
    std::string context;
    std::uint64_t generation = 0;
    std::vector<StepIndex> steps;
    bool revoke = false;
  };

  /// Peer liveness, judged by heartbeat pongs and dial outcomes.
  enum class PeerHealth { kHealthy, kSuspect, kDead };

  /// One cached daemon->daemon link plus its health state. All fields
  /// are guarded by peersMutex_; sends happen on a copied transport ref
  /// outside the lock.
  struct PeerLink {
    std::shared_ptr<msg::Transport> transport;  ///< open link, or null
    std::vector<msg::Message> pending;  ///< forwards awaiting a dial
    PeerHealth health = PeerHealth::kHealthy;
    std::uint64_t pingSeq = 0;   ///< sequence of the last ping sent
    std::uint64_t pongSeq = 0;   ///< highest sequence echoed back
    int missedPongs = 0;         ///< consecutive unanswered pings
    int dialFails = 0;           ///< consecutive failed dials
    VTime nextDialAt = 0;        ///< re-dial gate (backoff window end)
    VDuration dialBackoff = 0;   ///< current backoff interval (ns)
  };

  /// Cumulative sessions that completed a hello, by negotiated transport.
  std::atomic<std::uint64_t> connSocket_{0};
  std::atomic<std::uint64_t> connShm_{0};
  std::atomic<std::uint64_t> connOther_{0};  ///< inproc and friends

  std::atomic<std::uint64_t> redirects_{0};
  std::atomic<std::uint64_t> forwarded_{0};
  std::atomic<std::uint64_t> forwardDrops_{0};
  std::atomic<std::uint64_t> pingsSent_{0};
  std::atomic<std::uint64_t> pongsReceived_{0};
  std::atomic<std::uint64_t> leaseGrantsSent_{0};
  std::atomic<std::uint64_t> leaseRevokesSent_{0};
  std::atomic<std::uint64_t> leaseAcksReceived_{0};
  mutable std::mutex peersMutex_;
  std::map<std::string, PeerLink> peers_;  ///< by endpoint

  /// Lease plane state. Lock order: shard lock -> leaseMutex_; never
  /// held across a send or while holding peersMutex_.
  mutable std::mutex leaseMutex_;
  std::vector<LeaseCmd> leaseOutbox_;
  /// Contexts with eviction revokes not yet acked, by replica endpoint.
  std::map<std::string, std::set<std::string>> pendingRevokes_;

  // --- elastic-membership handoff state ---------------------------------------

  /// One outbound context transfer (this node is the old owner).
  enum class HandoffPhase { kQueued, kStreaming, kAwaitingAck, kCommitted,
                            kAborted };
  struct HandoffOp {
    std::string context;
    std::string targetId;        ///< new owner's node id
    std::string targetEndpoint;  ///< new owner's transport address
    std::uint64_t epoch = 0;     ///< proposed ring version (the fence)
    HandoffPhase phase = HandoffPhase::kQueued;
    VTime deadline = 0;          ///< abort gate once streaming started
  };

  /// An inbound transfer staged until its epoch's kRingCommit arrives
  /// (this node is the new owner). Keyed by context.
  struct StagedHandoff {
    std::uint64_t epoch = 0;
    std::string from;            ///< old owner's node id
    std::uint64_t leaseGen = 0;  ///< old owner's grant fence (final frame)
    std::vector<StepIndex> steps;
    std::vector<std::pair<StepIndex, std::uint32_t>> pendingWaiters;
    bool complete = false;       ///< final frame seen
  };

  /// Where a handed-off (or handing-off) context's new owner lives:
  /// production on this node after the snapshot export is forwarded there
  /// as epoch-tagged kContextHandoff delta frames.
  struct HandoffTarget {
    std::string id;
    std::string endpoint;
    std::uint64_t epoch = 0;
  };

  /// One queued delta frame (post-export step production).
  struct HandoffDelta {
    std::string context;
    std::string targetId;
    std::string targetEndpoint;
    std::uint64_t epoch = 0;
    std::vector<StepIndex> steps;
  };

  /// A staged membership change between kRingPropose and kRingCommit.
  struct PendingTransition {
    std::uint64_t version = 0;
    cluster::Ring ring;               ///< proposed successor table
    std::vector<std::string> moved;   ///< contexts changing owner
  };

  /// Guards everything below. Lock order: shard lock -> handoffMutex_
  /// (the LeaseFn fires under a shard lock); never hold handoffMutex_
  /// while taking a shard lock or across a send.
  mutable std::mutex handoffMutex_;
  std::vector<HandoffOp> handoffs_;
  std::map<std::string, StagedHandoff> stagedHandoffs_;
  std::map<std::string, HandoffTarget> handedOffTo_;
  std::vector<HandoffDelta> handoffDeltas_;
  std::unique_ptr<PendingTransition> pendingTransition_;
  std::atomic<std::uint64_t> handoffsCommitted_{0};
  std::atomic<std::uint64_t> handoffsAborted_{0};
  /// Sticky: a membership change has ever been proposed or committed
  /// here. Gates the per-op moved-context checks out of the pre-elastic
  /// hot path entirely.
  std::atomic<bool> membershipChanged_{false};
  VDuration handoffTimeoutNs_ = 0;  ///< SIMFS_HANDOFF_TIMEOUT_MS
  std::size_t handoffBatch_ = 0;    ///< SIMFS_HANDOFF_BATCH steps per frame

  std::vector<std::unique_ptr<ShardServing>> serving_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stopping_{false};
  bool workersJoined_ = false;
  std::mutex stopMutex_;

  std::mutex sessionsMutex_;
  std::vector<std::shared_ptr<Session>> sessions_;
  std::unique_ptr<msg::UnixSocketServer> server_;

  // Maintenance thread: deadline-reap ticks (always) plus peer dialing
  // and heartbeats (federated daemons).
  std::mutex maintMutex_;
  std::condition_variable maintCv_;
  bool maintWake_ = false;
  bool maintStop_ = false;
  std::thread maintenance_;
  VDuration pingIntervalNs_ = 0;
  VDuration reapIntervalNs_ = 0;
};

}  // namespace simfs::dv
