// dv::Daemon — the live deployment wrapper around the DV core (the
// "daemon process" of Sec. III), restructured as a sharded, batched
// serving pipeline:
//
//   transports (epoll reactor / in-proc) ──► dispatch (thread of arrival)
//        │   route by context / client id / job id — no global lock
//        ▼
//   per-shard MPSC request queues  (client requests and simulator events
//        │                          unified as DaemonRequest)
//        ▼
//   worker pool: each worker drains whole batches from its shards — one
//        │       shard-lock acquisition and one reply/notification flush
//        ▼       amortized over the batch
//   DvShard state machines (ShardedVirtualizer)
//        │
//        ▼
//   buffered replies + kFileReady notifications, sent after the shard
//   lock drops (the reactor coalesces them into writev batches)
//
// Contexts are pinned to shards, so traffic for different contexts never
// contends; per-context request order is preserved because exactly one
// worker drains any given shard's queue. Aggregate introspection
// (kStatusReq, stats()) and per-shard counters (kShardStatsReq) are
// answered on the dispatching thread without touching the queues.
#pragma once

#include "common/clock.hpp"
#include "dv/sharded_virtualizer.hpp"
#include "msg/transport.hpp"

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace simfs::dv {

/// Thread-safe, transport-facing DV daemon.
class Daemon {
 public:
  struct Options {
    /// Independently-lockable DV shards; contexts round-robin onto them.
    std::size_t shards = 8;
    /// Worker threads draining the shard queues (clamped to [1, shards]).
    std::size_t workers = 4;
  };

  /// Per-shard serving counters (also exposed over the wire via
  /// msg::MsgType::kShardStatsReq and `simfsctl stats`).
  struct ShardCounters {
    std::size_t shard = 0;
    std::vector<std::string> contexts;
    std::uint64_t enqueued = 0;   ///< requests/events ever queued
    std::uint64_t served = 0;     ///< requests/events processed
    std::uint64_t batches = 0;    ///< queue drains (lock acquisitions)
    std::uint64_t maxBatch = 0;   ///< largest single drain
    std::size_t queued = 0;       ///< currently waiting in the queue
    std::size_t residentSteps = 0;
  };

  Daemon() : Daemon(Options{}) {}
  explicit Daemon(const Options& options);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  // --- setup (before serving) -------------------------------------------------

  /// Registers a context on the core (round-robin shard assignment).
  Status registerContext(std::unique_ptr<simmodel::SimulationDriver> driver);

  /// Wires the launcher (e.g. ThreadedSimulatorFleet). launch()/kill() are
  /// invoked on worker threads with the owning shard's lock held.
  void setLauncher(SimLauncher* launcher);

  /// Optional eviction sink (unlink files from the real store). Invoked on
  /// worker threads with the owning shard's lock held; must be thread-safe.
  void setEvictFn(DvShard::EvictFn fn);

  /// Seeds an available step (initial simulation output).
  Status seedAvailableStep(const std::string& context, StepIndex step);

  /// Installs reference checksums for SIMFS_Bitrep.
  Status setChecksumMap(const std::string& context, simmodel::ChecksumMap map);

  // --- serving ------------------------------------------------------------------

  /// Attaches a client connection; the daemon handles its protocol until
  /// the transport closes.
  void serveTransport(std::unique_ptr<msg::Transport> transport);

  /// Convenience: creates an in-process pair, serves one end, returns the
  /// other for a DVLib client living in this process.
  [[nodiscard]] std::unique_ptr<msg::Transport> connectInProc();

  /// Binds a Unix-domain socket and serves every connection.
  Status listen(const std::string& socketPath);

  /// Stops the socket server and the worker pool (already-queued requests
  /// are drained first; in-proc setup calls keep working).
  void stop();

  // --- simulator events (called by launcher implementations) ---------------------

  void simulationStarted(SimJobId job);
  void simulationFileWritten(SimJobId job, const std::string& file);
  void simulationFinished(SimJobId job, const Status& status);

  // --- inspection -----------------------------------------------------------------

  [[nodiscard]] DvStats stats() const;
  [[nodiscard]] bool isAvailable(const std::string& context, StepIndex step) const;
  [[nodiscard]] std::size_t shardCount() const noexcept {
    return core_.numShards();
  }
  [[nodiscard]] std::vector<ShardCounters> shardCounters() const;

 private:
  struct Session;
  struct DaemonRequest;
  struct ShardServing;
  struct Worker;

  /// Routes one inbound message on the thread it arrived on: introspection
  /// is answered inline, everything else is enqueued to its shard.
  void dispatch(const std::shared_ptr<Session>& session, msg::Message&& m);

  void enqueue(std::size_t shard, DaemonRequest&& request);
  void enqueueSimEvent(DaemonRequest&& request);
  void onSessionClosed(const std::shared_ptr<Session>& session);
  void workerLoop(std::size_t workerIndex);
  bool drainShard(std::size_t shard, std::vector<DaemonRequest>& batch);
  void processOnShard(std::size_t shardIndex, DvShard& shard,
                      DaemonRequest& request);
  void processClientMessage(std::size_t shardIndex, DvShard& shard,
                            const std::shared_ptr<Session>& session,
                            msg::Message& m);
  void queueReply(std::size_t shardIndex, const std::shared_ptr<Session>& s,
                  msg::Message&& m);
  void onNotify(ClientId client, const std::string& file, const Status& st);
  [[nodiscard]] msg::Message buildStatusReply(std::uint64_t requestId) const;
  [[nodiscard]] msg::Message buildShardStatsReply(std::uint64_t requestId) const;

  RealClock clock_;
  ShardedVirtualizer core_;
  std::vector<std::unique_ptr<ShardServing>> serving_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stopping_{false};
  bool workersJoined_ = false;
  std::mutex stopMutex_;

  std::mutex sessionsMutex_;
  std::vector<std::shared_ptr<Session>> sessions_;
  std::unique_ptr<msg::UnixSocketServer> server_;
};

}  // namespace simfs::dv
