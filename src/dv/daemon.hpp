// dv::Daemon — the live deployment wrapper around the DataVirtualizer core
// (the "daemon process" of Sec. III).
//
// The daemon serializes access to the single-threaded DV core with a
// mutex, speaks the msg:: protocol with DVLib clients over Transports
// (in-process pairs or Unix-domain sockets), and forwards simulator
// events from launcher threads. Notifications (kFileReady) flow back to
// the transport a client connected on.
#pragma once

#include "common/clock.hpp"
#include "dv/data_virtualizer.hpp"
#include "msg/transport.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace simfs::dv {

/// Thread-safe, transport-facing DV daemon.
class Daemon {
 public:
  Daemon();
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  // --- setup (before serving) -------------------------------------------------

  /// Registers a context on the core.
  Status registerContext(std::unique_ptr<simmodel::SimulationDriver> driver);

  /// Wires the launcher (e.g. ThreadedSimulatorFleet).
  void setLauncher(SimLauncher* launcher);

  /// Optional eviction sink (unlink files from the real store).
  void setEvictFn(DataVirtualizer::EvictFn fn);

  /// Seeds an available step (initial simulation output).
  Status seedAvailableStep(const std::string& context, StepIndex step);

  /// Installs reference checksums for SIMFS_Bitrep.
  Status setChecksumMap(const std::string& context, simmodel::ChecksumMap map);

  // --- serving ------------------------------------------------------------------

  /// Attaches a client connection; the daemon handles its protocol until
  /// the transport closes.
  void serveTransport(std::unique_ptr<msg::Transport> transport);

  /// Convenience: creates an in-process pair, serves one end, returns the
  /// other for a DVLib client living in this process.
  [[nodiscard]] std::unique_ptr<msg::Transport> connectInProc();

  /// Binds a Unix-domain socket and serves every connection.
  Status listen(const std::string& socketPath);

  /// Stops the socket server (in-proc connections keep working).
  void stop();

  // --- simulator events (called by launcher implementations) ---------------------

  void simulationStarted(SimJobId job);
  void simulationFileWritten(SimJobId job, const std::string& file);
  void simulationFinished(SimJobId job, const Status& status);

  // --- inspection -----------------------------------------------------------------

  [[nodiscard]] DvStats stats() const;
  [[nodiscard]] bool isAvailable(const std::string& context, StepIndex step) const;

 private:
  struct Session;

  void handleMessage(Session* session, msg::Message&& m);
  void notifyClient(ClientId client, const std::string& file, const Status& st);

  mutable std::mutex mutex_;
  RealClock clock_;
  DataVirtualizer core_;
  std::unique_ptr<msg::UnixSocketServer> server_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::map<ClientId, Session*> byClient_;
};

}  // namespace simfs::dv
