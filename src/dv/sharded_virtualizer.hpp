// ShardedVirtualizer — N independently-lockable DvShards behind one
// routing layer.
//
// Each simulation context is pinned to exactly one shard (round-robin at
// registration), so requests and simulator events for different contexts
// never contend on a lock. Shard i of S issues client/job ids on the
// lattice i+1, i+1+S, i+1+2S, ..., which makes id -> shard routing a pure
// computation (no shared lookup table on the hot path):
//
//     shardOfClient(id) == shardOfJob(id) == (id - 1) % S
//
// Locking contract: the convenience wrappers (registerContext, stats,
// isAvailable, ...) lock internally and may be called from any thread.
// Batch consumers (dv::Daemon's workers) instead take mutexOf(i) once,
// then drive shard(i) directly for a whole batch of requests — one lock
// acquisition amortized over the batch. Callbacks installed via
// setNotifyFn/setEvictFn fire while the owning shard's mutex is held and
// must not re-enter the virtualizer.
#pragma once

#include "dv/shard.hpp"

#include <mutex>
#include <optional>

namespace simfs::dv {

class ShardedVirtualizer {
 public:
  ShardedVirtualizer(const Clock& clock, std::size_t numShards);
  ShardedVirtualizer(const ShardedVirtualizer&) = delete;
  ShardedVirtualizer& operator=(const ShardedVirtualizer&) = delete;

  [[nodiscard]] std::size_t numShards() const noexcept {
    return shards_.size();
  }

  // --- wiring (installed on every shard) -------------------------------------

  void setLauncher(SimLauncher* launcher);
  void setNotifyFn(DvShard::NotifyFn fn);
  void setEvictFn(DvShard::EvictFn fn);
  void setLeaseFn(DvShard::LeaseFn fn);

  // --- routed, internally-locked wrappers -------------------------------------

  /// Registers the context on the next shard (round-robin).
  Status registerContext(std::unique_ptr<simmodel::SimulationDriver> driver);
  Status seedAvailableStep(const std::string& context, StepIndex step);
  Status setChecksumMap(const std::string& context, simmodel::ChecksumMap map);

  // --- routing ----------------------------------------------------------------

  /// Shard owning `context`; nullopt if the context is not registered.
  [[nodiscard]] std::optional<std::size_t> shardOfContext(
      const std::string& context) const;

  [[nodiscard]] std::size_t shardOfClient(ClientId client) const noexcept {
    return static_cast<std::size_t>((client - 1) % shards_.size());
  }

  [[nodiscard]] std::size_t shardOfJob(SimJobId job) const noexcept {
    return static_cast<std::size_t>((job - 1) % shards_.size());
  }

  // --- direct shard access (caller holds mutexOf(i)) --------------------------

  [[nodiscard]] DvShard& shard(std::size_t i) noexcept { return shards_[i]->shard; }
  [[nodiscard]] const DvShard& shard(std::size_t i) const noexcept {
    return shards_[i]->shard;
  }
  [[nodiscard]] std::mutex& mutexOf(std::size_t i) const noexcept {
    return shards_[i]->mutex;
  }

  // --- aggregates (lock each shard briefly) -----------------------------------

  [[nodiscard]] DvStats stats() const;
  [[nodiscard]] bool isAvailable(const std::string& context, StepIndex step) const;
  [[nodiscard]] int runningJobs(const std::string& context) const;
  [[nodiscard]] std::vector<std::string> contextNames() const;
  /// Copy of a registered context's configuration (nullopt: unknown).
  [[nodiscard]] std::optional<simmodel::ContextConfig> contextConfig(
      const std::string& context) const;

 private:
  struct Slot {
    mutable std::mutex mutex;
    DvShard shard;
    Slot(const Clock& clock, std::size_t index, std::size_t stride)
        : shard(clock, static_cast<ClientId>(index + 1),
                static_cast<SimJobId>(index + 1),
                static_cast<std::uint64_t>(stride)) {}
  };

  std::vector<std::unique_ptr<Slot>> shards_;
  mutable std::mutex routeMutex_;
  std::map<std::string, std::size_t> contextShard_;
  std::size_t nextShard_ = 0;
};

}  // namespace simfs::dv
