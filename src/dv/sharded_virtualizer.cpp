#include "dv/sharded_virtualizer.hpp"

namespace simfs::dv {

ShardedVirtualizer::ShardedVirtualizer(const Clock& clock,
                                       std::size_t numShards) {
  const std::size_t n = std::max<std::size_t>(1, numShards);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Slot>(clock, i, n));
  }
}

void ShardedVirtualizer::setLauncher(SimLauncher* launcher) {
  for (auto& slot : shards_) {
    std::lock_guard lock(slot->mutex);
    slot->shard.setLauncher(launcher);
  }
}

void ShardedVirtualizer::setNotifyFn(DvShard::NotifyFn fn) {
  for (auto& slot : shards_) {
    std::lock_guard lock(slot->mutex);
    slot->shard.setNotifyFn(fn);
  }
}

void ShardedVirtualizer::setEvictFn(DvShard::EvictFn fn) {
  for (auto& slot : shards_) {
    std::lock_guard lock(slot->mutex);
    slot->shard.setEvictFn(fn);
  }
}

void ShardedVirtualizer::setLeaseFn(DvShard::LeaseFn fn) {
  for (auto& slot : shards_) {
    std::lock_guard lock(slot->mutex);
    slot->shard.setLeaseFn(fn);
  }
}

Status ShardedVirtualizer::registerContext(
    std::unique_ptr<simmodel::SimulationDriver> driver) {
  SIMFS_CHECK(driver != nullptr);
  const std::string name = driver->config().name;
  std::size_t idx = 0;
  {
    std::lock_guard lock(routeMutex_);
    if (contextShard_.count(name) > 0) {
      return errAlreadyExists("dv: context exists: " + name);
    }
    idx = nextShard_;
    nextShard_ = (nextShard_ + 1) % shards_.size();
    contextShard_.emplace(name, idx);
  }
  std::lock_guard lock(mutexOf(idx));
  const Status st = shard(idx).registerContext(std::move(driver));
  if (!st.isOk()) {
    std::lock_guard routeLock(routeMutex_);
    contextShard_.erase(name);
  }
  return st;
}

Status ShardedVirtualizer::seedAvailableStep(const std::string& context,
                                             StepIndex step) {
  const auto idx = shardOfContext(context);
  if (!idx) return errNotFound("dv: no context: " + context);
  std::lock_guard lock(mutexOf(*idx));
  return shard(*idx).seedAvailableStep(context, step);
}

Status ShardedVirtualizer::setChecksumMap(const std::string& context,
                                          simmodel::ChecksumMap map) {
  const auto idx = shardOfContext(context);
  if (!idx) return errNotFound("dv: no context: " + context);
  std::lock_guard lock(mutexOf(*idx));
  return shard(*idx).setChecksumMap(context, std::move(map));
}

std::optional<std::size_t> ShardedVirtualizer::shardOfContext(
    const std::string& context) const {
  std::lock_guard lock(routeMutex_);
  const auto it = contextShard_.find(context);
  if (it == contextShard_.end()) return std::nullopt;
  return it->second;
}

DvStats ShardedVirtualizer::stats() const {
  DvStats total;
  for (const auto& slot : shards_) {
    std::lock_guard lock(slot->mutex);
    total += slot->shard.stats();
  }
  return total;
}

bool ShardedVirtualizer::isAvailable(const std::string& context,
                                     StepIndex step) const {
  const auto idx = shardOfContext(context);
  if (!idx) return false;
  std::lock_guard lock(mutexOf(*idx));
  return shard(*idx).isAvailable(context, step);
}

int ShardedVirtualizer::runningJobs(const std::string& context) const {
  const auto idx = shardOfContext(context);
  if (!idx) return 0;
  std::lock_guard lock(mutexOf(*idx));
  return shard(*idx).runningJobs(context);
}

std::optional<simmodel::ContextConfig> ShardedVirtualizer::contextConfig(
    const std::string& context) const {
  const auto idx = shardOfContext(context);
  if (!idx) return std::nullopt;
  std::lock_guard lock(mutexOf(*idx));
  const auto* cfg = shard(*idx).contextConfig(context);
  if (cfg == nullptr) return std::nullopt;
  return *cfg;  // copied out so the caller never outlives the shard lock
}

std::vector<std::string> ShardedVirtualizer::contextNames() const {
  // Shard-local name lists are concatenated in shard order; within a
  // shard the names are sorted (std::map). Daemon consumers (kStatusAck)
  // only require the full set.
  std::vector<std::string> out;
  for (const auto& slot : shards_) {
    std::lock_guard lock(slot->mutex);
    auto names = slot->shard.contextNames();
    out.insert(out.end(), names.begin(), names.end());
  }
  return out;
}

}  // namespace simfs::dv
