#include "dv/daemon.hpp"

#include "common/env.hpp"
#include "common/fault.hpp"
#include "common/log.hpp"
#include "common/strings.hpp"
#include "msg/shm_transport.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <limits>

namespace simfs::dv {

namespace {
constexpr const char* kTag = "daemon";

std::int32_t codeOf(const Status& st) noexcept {
  return static_cast<std::int32_t>(st.code());
}

/// TransportChoice echoed in a kHelloAck when (and only when) the hello
/// advertised negotiation caps: what this session actually settled on.
std::int64_t negotiatedChoice(const msg::Transport& t) {
  if (t.kindName() == "shm") {
    return static_cast<std::int64_t>(msg::TransportChoice::kShm);
  }
  return static_cast<std::int64_t>(msg::reactorBackendName() == "uring"
                                       ? msg::TransportChoice::kUringSocket
                                       : msg::TransportChoice::kSocket);
}

void atomicMax(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (cur < value &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

/// Ack type matching a client request, for error replies produced outside
/// the main per-type handling in processClientMessage (which additionally
/// builds the success payloads). kError for non-request types.
msg::MsgType ackTypeFor(msg::MsgType request) noexcept {
  switch (request) {
    case msg::MsgType::kHello: return msg::MsgType::kHelloAck;
    case msg::MsgType::kOpenReq: return msg::MsgType::kOpenAck;
    case msg::MsgType::kOpenBatchReq: return msg::MsgType::kOpenBatchAck;
    case msg::MsgType::kCancelReq: return msg::MsgType::kCancelAck;
    case msg::MsgType::kAcquireReq: return msg::MsgType::kAcquireAck;
    case msg::MsgType::kReleaseReq: return msg::MsgType::kReleaseAck;
    case msg::MsgType::kBitrepReq: return msg::MsgType::kBitrepAck;
    case msg::MsgType::kStatusReq: return msg::MsgType::kStatusAck;
    case msg::MsgType::kShardStatsReq: return msg::MsgType::kShardStatsAck;
    case msg::MsgType::kRingReq: return msg::MsgType::kRingUpdate;
    case msg::MsgType::kGeometryReq: return msg::MsgType::kGeometryAck;
    case msg::MsgType::kLeaseGrant:
    case msg::MsgType::kLeaseRevoke: return msg::MsgType::kLeaseAck;
    // Handled inline at dispatch (never queued, so never shed); listed so
    // generic error replies still carry the matching ack type.
    case msg::MsgType::kRingPropose: return msg::MsgType::kRingProposeAck;
    case msg::MsgType::kRingCommit: return msg::MsgType::kRingCommitAck;
    case msg::MsgType::kContextHandoff:
      return msg::MsgType::kContextHandoffAck;
    default: return msg::MsgType::kError;
  }
}

/// Effective read-replica count R: Options wins when >= 0, otherwise the
/// SIMFS_REPLICAS environment knob (absent / <= 0 means disabled).
std::size_t resolveReplicas(int fromOptions) {
  const std::int64_t v = fromOptions >= 0
                             ? fromOptions
                             : env::getInt("SIMFS_REPLICAS").value_or(0);
  return v <= 0 ? 0 : static_cast<std::size_t>(v);
}

std::size_t resolveQueueCap(std::size_t fromOptions) {
  if (fromOptions != 0) return fromOptions;
  constexpr std::size_t kUnbounded = std::numeric_limits<std::size_t>::max();
  if (const auto v = env::getInt("SIMFS_SHARD_QUEUE_CAP")) {
    return *v <= 0 ? kUnbounded : static_cast<std::size_t>(*v);
  }
  return 4096;  // generous: backstop against runaway producers, not a tuning knob
}

/// Environment interval knob in milliseconds, converted to VTime ns.
VDuration intervalKnobNs(const char* name, std::int64_t defaultMs) {
  const auto ms = env::getInt(name).value_or(defaultMs);
  return ms <= 0 ? 0 : static_cast<VDuration>(ms) * 1'000'000;
}

/// Forwards for a peer with no open link queue up to this many messages
/// while the maintenance thread dials; overflow is dropped and counted.
constexpr std::size_t kPeerPendingCap = 64;

/// Peer dial backoff: first retry after 100ms, doubling to a 5s cap.
constexpr VDuration kDialBackoffInitial = 100'000'000;
constexpr VDuration kDialBackoffCap = 5'000'000'000;

/// Consecutive failed dials (or unanswered pings) before a peer is
/// declared dead and its queued forwards are dropped.
constexpr int kDialFailsToDead = 3;
constexpr int kMissedPongsToDead = 3;
}  // namespace

/// One connected DVLib endpoint (analysis or simulator).
struct Daemon::Session {
  std::unique_ptr<msg::Transport> transport;
  std::atomic<ClientId> client{0};   ///< 0 until kHello completes (analysis)
  std::atomic<int> shard{-1};        ///< bound by kHello (context's shard)
  std::atomic<bool> defunct{false};  ///< transport closed
  /// Context this session bound to, for the per-op moved-context check
  /// after an elastic ring change. Written and read only by the single
  /// worker draining the bound shard.
  std::string context;
  /// Serving a peer-owned context off a local read lease (set at dispatch
  /// before the hello is queued; read by the worker's kHello handler).
  std::atomic<bool> replica{false};

  /// Recently-answered kOpenBatchReq acks, by requestId: a client that
  /// resends a batch under the same id (per-op timeout retry, rebind
  /// resend racing the old delivery) gets the cached ack replayed
  /// instead of double-registering interest — the dedup window that
  /// makes idempotent resend safe. Touched only by the single worker
  /// draining this session's bound shard, so no lock is needed; slots
  /// are reused in a ring, so steady-state caching reuses capacity.
  struct CachedAck {
    std::uint64_t requestId = 0;
    msg::Message ack;
  };
  std::array<CachedAck, 4> recentAcks;
  std::size_t recentAckNext = 0;
};

/// Client requests and simulator events, unified: everything a shard
/// consumes flows through one queue in arrival order. Client messages are
/// MessageRefs whose storage lives in the shard's arena (the transport's
/// receive buffer dies with the dispatch callback), valid until the batch
/// that carries them has been processed and its arena reset.
struct Daemon::DaemonRequest {
  enum class Kind {
    kClientMessage,   ///< protocol message from a session
    kDisconnect,      ///< session's transport closed
    kSimStarted,      ///< launcher: job left the batch queue
    kSimFileWritten,  ///< launcher: output step on disk
    kSimFinished,     ///< launcher: job completed/failed
    kReapExpired,     ///< maintenance tick: drop deadline-expired waiters
  };
  Kind kind = Kind::kClientMessage;
  std::shared_ptr<Session> session;  ///< kClientMessage / kDisconnect
  msg::MessageRef msg;               ///< kClientMessage (arena-backed)
  SimJobId job = 0;                  ///< kSim*
  std::string file;                  ///< kSimFileWritten
  Status status;                     ///< kSimFinished
};

/// Per-shard serving state around the DvShard itself.
struct Daemon::ShardServing {
  mutable std::mutex qMutex;
  std::vector<DaemonRequest> queue;
  /// Request/reply storage, double-buffered: dispatchers bump-copy into
  /// arenas[activeArena] under qMutex while the worker's in-flight batch
  /// (and the replies built from it) still reference the other arena.
  /// drainShard flips the index when it steals the queue and resets the
  /// drained arena after the reply flush — so arena memory is stable for
  /// exactly as long as anything points into it, and a warm drain cycle
  /// performs zero heap allocations.
  msg::Arena arenas[2];
  int activeArena = 0;  ///< guarded by qMutex

  // Touched only by the one worker that drains this shard (plus readers
  // of the counters): no locks needed beyond the queue mutex above.
  msg::Arena* replyArena = nullptr;  ///< arena of the batch being processed
  std::map<ClientId, std::shared_ptr<Session>> byClient;
  std::vector<std::pair<std::shared_ptr<Session>, msg::MessageRef>> out;

  std::atomic<std::uint64_t> enqueued{0};
  std::atomic<std::uint64_t> served{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> maxBatch{0};
  std::atomic<std::uint64_t> shed{0};
};

struct Daemon::Worker {
  std::mutex mutex;
  std::condition_variable cv;
  bool wake = false;
  std::thread thread;
};

Daemon::Daemon(const Options& options)
    : core_(clock_, std::max<std::size_t>(1, options.shards)),
      nodeId_(options.nodeId),
      ring_(std::make_shared<const cluster::Ring>(options.ring)),
      queueCap_(resolveQueueCap(options.queueCap)) {
  if (!nodeId_.empty() && ring_->find(nodeId_) == nullptr) {
    // Drop the ring too: keeping it would advertise (kRingReq, redirects)
    // a placement this daemon does not enforce — clients would route
    // contexts to "owners" while this node serves everything locally.
    SIMFS_LOG_WARN(kTag, "node id not in ring; serving standalone");
    nodeId_.clear();
    ring_ = std::make_shared<const cluster::Ring>();
  }
  replicasConfigured_ = resolveReplicas(options.replicas);
  replicas_.store(effectiveReplicas(*ring_), std::memory_order_relaxed);
  core_.setNotifyFn([this](ClientId c, const std::string& f, const Status& s) {
    onNotify(c, f, s);
  });
  if (!nodeId_.empty()) {
    // Owner-side lease emission, installed on EVERY federated daemon even
    // when R == 0 today: a committed membership change can raise the
    // effective R (a 1-node ring growing), and the same callback feeds
    // the handoff delta plane. The callback fires with a shard lock held
    // (revokes strictly BEFORE the eviction mutates the step), so it only
    // queues and wakes — the maintenance thread does the peer sends.
    core_.setLeaseFn([this](const std::string& ctx, std::uint64_t gen,
                            const std::vector<StepIndex>& steps, bool revoke) {
      if (membershipChanged_.load(std::memory_order_relaxed)) {
        // Production on a context whose snapshot already streamed out is
        // forwarded to its new owner as an epoch-tagged delta frame, so
        // steps landing between export and drain-out are never lost.
        std::lock_guard lock(handoffMutex_);
        const auto it = handedOffTo_.find(ctx);
        if (it != handedOffTo_.end()) {
          if (!revoke && !steps.empty()) {
            handoffDeltas_.push_back(HandoffDelta{
                ctx, it->second.id, it->second.endpoint, it->second.epoch,
                steps});
            wakeMaintenance();
          }
          return;  // handed off: no replica lease traffic for it anymore
        }
      }
      if (replicas_.load(std::memory_order_relaxed) == 0) return;
      const auto ring = ringRef();
      const cluster::NodeInfo* owner = nullptr;
      if (ownedElsewhere(*ring, ctx, &owner)) return;  // replica-side change
      {
        std::lock_guard lock(leaseMutex_);
        leaseOutbox_.push_back(LeaseCmd{ctx, gen, steps, revoke});
      }
      wakeMaintenance();
    });
  }
  serving_.reserve(core_.numShards());
  for (std::size_t i = 0; i < core_.numShards(); ++i) {
    serving_.push_back(std::make_unique<ShardServing>());
  }
  const std::size_t nWorkers =
      std::clamp<std::size_t>(options.workers, 1, core_.numShards());
  workers_.reserve(nWorkers);
  for (std::size_t w = 0; w < nWorkers; ++w) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (std::size_t w = 0; w < nWorkers; ++w) {
    workers_[w]->thread = std::thread([this, w] { workerLoop(w); });
  }
  pingIntervalNs_ = intervalKnobNs("SIMFS_PEER_PING_MS", 500);
  reapIntervalNs_ = intervalKnobNs("SIMFS_DV_REAP_MS", 1000);
  handoffTimeoutNs_ = intervalKnobNs("SIMFS_HANDOFF_TIMEOUT_MS", 5000);
  handoffBatch_ = static_cast<std::size_t>(
      std::max<std::int64_t>(1, env::getInt("SIMFS_HANDOFF_BATCH").value_or(256)));
  maintenance_ = std::thread([this] { maintenanceLoop(); });
  if (fault::active()) {
    SIMFS_LOG_WARN(kTag, "fault injection active: %s",
                   fault::describe().c_str());
  }
}

Daemon::~Daemon() {
  stop();
  // Tear every transport down (reactor deregistration is synchronous)
  // before the members the handlers capture go away.
  std::lock_guard lock(sessionsMutex_);
  sessions_.clear();
}

Status Daemon::registerContext(
    std::unique_ptr<simmodel::SimulationDriver> driver) {
  return core_.registerContext(std::move(driver));
}

void Daemon::setLauncher(SimLauncher* launcher) { core_.setLauncher(launcher); }

void Daemon::setEvictFn(DvShard::EvictFn fn) { core_.setEvictFn(std::move(fn)); }

Status Daemon::seedAvailableStep(const std::string& context, StepIndex step) {
  return core_.seedAvailableStep(context, step);
}

Status Daemon::setChecksumMap(const std::string& context,
                              simmodel::ChecksumMap map) {
  return core_.setChecksumMap(context, std::move(map));
}

void Daemon::serveTransport(std::unique_ptr<msg::Transport> transport) {
  auto session = std::make_shared<Session>();
  session->transport = std::move(transport);
  {
    std::lock_guard lock(sessionsMutex_);
    // Reap sessions that disconnected and are referenced by nobody else
    // (no queued request, no in-flight batch).
    std::erase_if(sessions_, [](const std::shared_ptr<Session>& s) {
      return s->defunct.load() && !s->transport->isOpen() &&
             s.use_count() == 1;
    });
    sessions_.push_back(session);
  }
  installSessionHandlers(session);
}

void Daemon::installSessionHandlers(const std::shared_ptr<Session>& session) {
  std::weak_ptr<Session> weak = session;
  session->transport->setCloseHandler([this, weak] {
    if (auto s = weak.lock()) onSessionClosed(s);
  });
  // Installed last: frames that raced in before this are buffered by the
  // transport and replayed here. The view is only valid inside dispatch —
  // anything queued is arena-copied there.
  session->transport->setViewHandler([this, weak](const msg::MessageView& m) {
    if (auto s = weak.lock()) dispatch(s, m);
  });
}

void Daemon::maybeUpgradeToShm(const std::shared_ptr<Session>& session,
                               const msg::MessageView& m) {
  // Upgrade decision, taken exactly once per session at its first kHello,
  // on the dispatching thread (the only thread that touches an unbound
  // session's transport): the client offered a segment, negotiation is
  // enabled here, and the session actually runs over a plain socket.
  if ((m.intArg2() & msg::kHelloCapShm) == 0) return;
  if (m.text().empty() || !msg::shmNegotiationEnabled()) return;
  if (session->transport->kindName() != "socket") return;
  // Never on a bound session: workers may be sending replies on this
  // transport concurrently (the re-hello is rejected downstream anyway).
  if (session->client.load() != 0 || session->shard.load() >= 0) return;
  auto shm = msg::shmAdoptServer(std::string(m.text()), session->transport);
  if (!shm) return;  // bad segment: decline silently, the socket ack settles
  // Swap the data plane under the session, then re-point the handlers at
  // the wrapper. The hello view `m` stays valid: it references the socket
  // conn's receive buffer, and the socket lives on inside the wrapper for
  // crash detection. The kHelloAck sent after this — over the ring — is
  // the accept signal the client's negotiator waits for.
  session->transport = std::move(shm);
  installSessionHandlers(session);
}

void Daemon::noteHelloTransport(const msg::Transport& t) {
  const std::string_view kind = t.kindName();
  if (kind == "shm") {
    connShm_.fetch_add(1, std::memory_order_relaxed);
  } else if (kind == "socket") {
    connSocket_.fetch_add(1, std::memory_order_relaxed);
  } else {
    connOther_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::unique_ptr<msg::Transport> Daemon::connectInProc() {
  auto [serverEnd, clientEnd] = msg::makeInProcPair();
  serveTransport(std::move(serverEnd));
  return std::move(clientEnd);
}

Status Daemon::listen(const std::string& socketPath) {
  server_ = std::make_unique<msg::UnixSocketServer>(socketPath);
  return server_->start([this](std::unique_ptr<msg::Transport> conn) {
    serveTransport(std::move(conn));
  });
}

void Daemon::stop() {
  if (server_) server_->stop();
  {
    // Stop the maintenance thread before the workers: a reap tick
    // enqueued mid-join would only bounce off the stopping_ re-check,
    // but joining here makes the shutdown order obvious.
    std::lock_guard lock(maintMutex_);
    maintStop_ = true;
    maintWake_ = true;
  }
  maintCv_.notify_all();
  if (maintenance_.joinable()) maintenance_.join();
  {
    // Close peer links next: forwards racing the shutdown fail soft
    // (counted as drops) instead of dialing a dying cluster.
    std::lock_guard lock(peersMutex_);
    for (auto& [endpoint, link] : peers_) {
      if (link.transport) link.transport->close();
      forwardDrops_.fetch_add(link.pending.size(), std::memory_order_relaxed);
      link.pending.clear();
    }
  }
  std::lock_guard stopLock(stopMutex_);
  if (workersJoined_) return;
  stopping_.store(true);
  for (auto& w : workers_) {
    {
      std::lock_guard lock(w->mutex);
      w->wake = true;
    }
    w->cv.notify_all();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  // Sweep requests that raced past the workers' final pass so no client
  // is left waiting for a reply that never comes; enqueue()'s post-push
  // stopping_ re-check (under stopMutex_) covers everything later.
  std::vector<DaemonRequest> batch;
  for (std::size_t s = 0; s < serving_.size(); ++s) (void)drainShard(s, batch);
  workersJoined_ = true;
}

void Daemon::drain() {
  if (server_) server_->stop();  // no new connections
  const VDuration budget = intervalKnobNs("SIMFS_DRAIN_MS", 2000);
  const VTime deadline = clock_.now() + budget;
  for (;;) {
    bool empty = true;
    for (const auto& sv : serving_) {
      std::lock_guard lock(sv->qMutex);
      if (!sv->queue.empty()) {
        empty = false;
        break;
      }
    }
    if (empty || clock_.now() >= deadline || stopping_.load()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop();
}

void Daemon::onSessionClosed(const std::shared_ptr<Session>& session) {
  // Dekker pairing with the worker's kHello handler: we store defunct
  // BEFORE loading client, the worker stores client BEFORE loading
  // defunct (both seq_cst). Whatever the interleaving, at least one side
  // observes the other, so the shard client is disconnected either by
  // the kDisconnect below or by the worker's own unwind; both running is
  // harmless (kDisconnect finds client == 0).
  session->defunct.store(true);
  if (session->client.load() != 0 && session->shard.load() >= 0) {
    DaemonRequest req;
    req.kind = DaemonRequest::Kind::kDisconnect;
    req.session = session;
    enqueue(static_cast<std::size_t>(session->shard.load()), std::move(req));
  }
}

// ----------------------------------------------------------------- dispatch

void Daemon::dispatch(const std::shared_ptr<Session>& session,
                      const msg::MessageView& m) {
  switch (m.type()) {
    case msg::MsgType::kHello: {
      if (static_cast<msg::ClientRole>(m.intArg()) ==
          msg::ClientRole::kSimulator) {
        // Simulator sessions need no per-session state: their events
        // (kSimFileClosed/kSimFinished) route by job id. The transport
        // upgrade still applies — acked inline, over whichever plane won.
        maybeUpgradeToShm(session, m);
        msg::Message reply;
        reply.requestId = m.requestId();
        reply.type = msg::MsgType::kHelloAck;
        reply.code = codeOf(Status::ok());
        if ((m.intArg2() & msg::kHelloCapShm) != 0) {
          reply.intArg2 = negotiatedChoice(*session->transport);
        }
        if ((m.intArg2() & msg::kHelloCapVersion) != 0) {
          std::int64_t theirMin = 1, theirMax = 1;
          if (m.intCount() >= 2) {
            auto it = m.intsBegin();
            theirMin = *it;
            theirMax = *++it;
          }
          const std::int64_t chosen =
              std::min<std::int64_t>(msg::kProtocolVersionMax, theirMax);
          if (chosen <
              std::max<std::int64_t>(msg::kProtocolVersionMin, theirMin)) {
            const Status st =
                errFailedPrecondition("dv: no protocol version overlap");
            reply.code = codeOf(st);
            reply.text = st.message();
          } else {
            reply.ints.push_back(chosen);
          }
        }
        noteHelloTransport(*session->transport);
        (void)session->transport->send(reply);
        return;
      }
      // Federation: a context hashed onto a peer is normally not served
      // here — the client is told who owns it (plus the full ring so it
      // can resolve everything else without more round trips) and
      // re-dials. Exception: a replica-capable client may read a
      // peer-owned context HERE when this node is one of its R ring
      // successors and holds an active lease; the session is flagged so
      // the shard serves it in replica mode (lease lookups only, misses
      // answer kNotLeased instead of re-simulating).
      const auto ringSnap = ringRef();
      const cluster::NodeInfo* owner = nullptr;
      if (ownedElsewhere(*ringSnap, m.context(), &owner)) {
        const bool replicaRead =
            replicas_.load(std::memory_order_relaxed) > 0 &&
            (m.intArg2() & msg::kHelloCapReplica) != 0 &&
            isReplicaFor(m.context()) &&
            hasActiveLease(std::string(m.context()));
        if (!replicaRead) {
          redirects_.fetch_add(1, std::memory_order_relaxed);
          (void)session->transport->send(
              buildRedirect(m.requestId(), m.context(), *owner, *ringSnap));
          return;
        }
        session->replica.store(true);
      }
      const std::string context(m.context());
      const auto idx = core_.shardOfContext(context);
      if (!idx) {
        const Status st = errNotFound("dv: no context: " + context);
        msg::Message reply;
        reply.requestId = m.requestId();
        reply.type = msg::MsgType::kHelloAck;
        reply.code = codeOf(st);
        reply.text = st.message();
        (void)session->transport->send(reply);
        return;
      }
      // Bind the shard already at dispatch time so requests pipelined
      // behind the hello (sent without waiting for kHelloAck) route to
      // the same queue and are served, in order, after it. An already
      // bound session keeps its shard — the worker rejects the re-hello
      // in order with the session's other traffic.
      const int bound = session->shard.load();
      std::size_t target = *idx;
      if (bound < 0) {
        // First hello on a locally-served context: the last point where
        // no worker can hold a reference to this session's transport, so
        // the shm upgrade (if offered) swaps the data plane here. The
        // worker's kHelloAck then travels over the winning channel.
        maybeUpgradeToShm(session, m);
        session->shard.store(static_cast<int>(*idx));
      } else {
        target = static_cast<std::size_t>(bound);
      }
      if (bound < 0 && replicas_.load(std::memory_order_relaxed) > 0) {
        // Advertise the replica count R up front: a requestId-0
        // kRingUpdate push rides the connection FIFO ahead of the
        // worker's kHelloAck, so the client learns R (intArg2) without
        // an extra round trip or ever being redirected. R = 0 daemons
        // push nothing — the legacy hello exchange stays byte-identical.
        (void)session->transport->send(buildRingUpdate(0));
      }
      if (!enqueueClient(target, session, m) && bound < 0) {
        // Shed hello: unbind again so a client retry can rebind cleanly.
        session->shard.store(-1);
      }
      return;
    }
    // Simulator events over the wire route by job id, not by session. A
    // context-tagged event for a peer-owned context is forwarded whole:
    // job ids are issued by the owning node, so the id only means
    // something over there — and being fire-and-forget, no reply has to
    // find its way back through this node. Only never-forwarded messages
    // (hops == 0) are relayed: if ring tables ever disagree, the second
    // node processes the event locally (an unknown job id fails soft)
    // instead of ping-ponging it back forever.
    case msg::MsgType::kSimFileClosed:
    case msg::MsgType::kSimFinished: {
      const auto ringSnap = ringRef();
      const cluster::NodeInfo* owner = nullptr;
      if (m.hops() == 0 && !m.context().empty() &&
          ownedElsewhere(*ringSnap, m.context(), &owner)) {
        forwardToPeer(*owner, m.toMessage());
        return;
      }
      (void)enqueueClient(
          core_.shardOfJob(static_cast<SimJobId>(m.intArg())), session, m);
      return;
    }
    // Aggregate introspection never touches the shard queues. Tradeoff:
    // it briefly takes each shard mutex on THIS (possibly reactor)
    // thread, so a poll can wait behind one in-flight batch per shard —
    // acceptable for an operator-frequency endpoint; latency-sensitive
    // monitoring should use a dedicated in-proc connection.
    case msg::MsgType::kStatusReq: {
      (void)session->transport->send(buildStatusReply(m.requestId()));
      return;
    }
    case msg::MsgType::kShardStatsReq: {
      (void)session->transport->send(buildShardStatsReply(m.requestId()));
      return;
    }
    case msg::MsgType::kRingReq: {
      (void)session->transport->send(buildRingUpdate(m.requestId()));
      return;
    }
    // Context geometry for the POSIX frontend (listings / stat synthesis).
    // Answered inline like the other introspection: geometry is static
    // registration-time config and every federation node registers every
    // context, so the local answer is authoritative — no redirect needed.
    case msg::MsgType::kGeometryReq: {
      (void)session->transport->send(
          buildGeometryReply(m.requestId(), std::string(m.context())));
      return;
    }
    // Liveness probe (peer heartbeat or `simfsctl ping`): answered on the
    // dispatching thread — a wedged worker pool must not make the daemon
    // look dead, the probe answers what the reactor can still answer.
    case msg::MsgType::kPing: {
      msg::Message pong;
      pong.requestId = m.requestId();
      pong.type = msg::MsgType::kPong;
      pong.code = codeOf(Status::ok());
      pong.intArg = m.intArg();
      // Additive protocol-version echo: a ping advertising the sender's
      // max (intArg2 > 0) is answered with the intersection, so peers and
      // `simfsctl ring` read the negotiated version without a session.
      // Legacy pings (intArg2 == 0) get the byte-identical legacy pong.
      pong.intArg2 = m.intArg2() > 0
                         ? std::min<std::int64_t>(msg::kProtocolVersionMax,
                                                  m.intArg2())
                         : 0;
      pong.text = nodeId_;
      (void)session->transport->send(pong);
      return;
    }
    case msg::MsgType::kPong:
      return;  // stray pong on a serving session: ignore
    // Lease plane, owner -> replica. Applied inline under the owning
    // shard's lock: lease traffic runs at owner-event frequency, not
    // request frequency, and inline application keeps the revoke -> ack
    // path independent of worker queue depth (revoke-before-mutate must
    // not wait behind a deep serving queue).
    case msg::MsgType::kLeaseGrant:
    case msg::MsgType::kLeaseRevoke: {
      handleLeaseOp(session, m);
      return;
    }
    case msg::MsgType::kLeaseAck:
      return;  // owners consume acks on their peer links; stray here
    // Elastic membership: admin path and the owner-to-owner transfer
    // plane, all inline on the dispatch thread — admin/peer-frequency
    // traffic whose ordering against serving batches does not matter
    // (the epoch fence, not arrival order, decides what applies).
    case msg::MsgType::kRingPropose: {
      handleRingPropose(session, m);
      return;
    }
    case msg::MsgType::kRingCommit: {
      handleRingCommit(session, m);
      return;
    }
    case msg::MsgType::kContextHandoff: {
      handleContextHandoff(session, m);
      return;
    }
    case msg::MsgType::kContextHandoffAck:
      return;  // old owners consume these on their peer links; stray here
    default:
      break;
  }
  // Everything else needs the session's bound shard.
  const int shard = session->shard.load();
  if (shard < 0) {
    if (m.type() == msg::MsgType::kCloseNotify ||
        (m.type() == msg::MsgType::kCancelReq && m.requestId() == 0)) {
      // Fire-and-forget even when unbound. Not forwarded: a deref only
      // means something for the client session holding the reference,
      // and that session lives on the owner already (hello redirects
      // before any reference can exist here).
      return;
    }
    const Status st = errFailedPrecondition("dv: unknown client");
    msg::Message reply;
    reply.requestId = m.requestId();
    reply.type = ackTypeFor(m.type());
    reply.code = codeOf(st);
    reply.text = st.message();
    (void)session->transport->send(reply);
    return;
  }
  (void)enqueueClient(static_cast<std::size_t>(shard), session, m);
}

// --------------------------------------------------------------- federation

bool Daemon::ownedElsewhere(const cluster::Ring& ring,
                            std::string_view context,
                            const cluster::NodeInfo** owner) const {
  if (nodeId_.empty() || ring.size() < 2) return false;  // standalone / 1-node
  const cluster::NodeInfo& o = ring.ownerOf(context);
  if (o.id == nodeId_) return false;
  *owner = &o;
  return true;
}

std::size_t Daemon::effectiveReplicas(const cluster::Ring& ring) const {
  if (nodeId_.empty() || ring.size() < 2) return 0;  // nobody to lease to
  return std::min(replicasConfigured_, ring.size() - 1);
}

void Daemon::forwardToPeer(const cluster::NodeInfo& owner,
                           const msg::Message& m) {
  msg::Message relay = m;
  relay.hops = static_cast<std::uint16_t>(m.hops + 1);
  std::shared_ptr<msg::Transport> link;
  bool queued = false;
  bool deadInBackoff = false;
  {
    std::lock_guard lock(peersMutex_);
    PeerLink& peer = peers_[owner.endpoint];
    if (peer.transport && peer.transport->isOpen()) {
      link = peer.transport;
    } else if (peer.health == PeerHealth::kDead &&
               clock_.now() < peer.nextDialAt) {
      // Dead peer inside its backoff window: drop instead of queueing —
      // the forward is fire-and-forget, and hoarding messages for a
      // peer that keeps failing dials only delays the inevitable drop.
      deadInBackoff = true;
    } else if (peer.pending.size() >= kPeerPendingCap) {
      deadInBackoff = true;  // queue overflow: same outcome, counted drop
    } else {
      // No open link: NEVER dial here — this is a dispatching (reactor)
      // thread and a stalled peer accept loop must not serialize frame
      // delivery behind connect(). The maintenance thread dials.
      peer.pending.push_back(std::move(relay));
      queued = true;
    }
  }
  if (link) {
    if (link->send(relay).isOk()) {
      forwarded_.fetch_add(1, std::memory_order_relaxed);
    } else {
      forwardDrops_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  if (queued) {
    wakeMaintenance();
    return;
  }
  (void)deadInBackoff;
  forwardDrops_.fetch_add(1, std::memory_order_relaxed);
  SIMFS_LOG_WARN(kTag, "dropping forward to unreachable peer");
}

void Daemon::wakeMaintenance() {
  {
    std::lock_guard lock(maintMutex_);
    maintWake_ = true;
  }
  maintCv_.notify_one();
}

void Daemon::maintenanceLoop() {
  VTime lastPing = clock_.now();
  VTime lastReap = clock_.now();
  const bool federated = !nodeId_.empty();
  for (;;) {
    VDuration tick = reapIntervalNs_ > 0 ? reapIntervalNs_ : 1'000'000'000;
    if (federated && pingIntervalNs_ > 0) {
      tick = std::min(tick, pingIntervalNs_);
    }
    if (federated && inflightHandoffs() > 0) {
      // Transfers awaiting their final ack need deadline checks at a
      // finer grain than the heartbeat cadence.
      tick = std::min<VDuration>(tick, 50'000'000);
    }
    {
      std::unique_lock lock(maintMutex_);
      maintCv_.wait_for(lock, std::chrono::nanoseconds(tick),
                        [&] { return maintWake_; });
      if (maintStop_) return;
      maintWake_ = false;
    }
    if (federated) {
      flushLeaseOutbox();
      runHandoffs();
      dialPendingPeers();
      const VTime now = clock_.now();
      if (pingIntervalNs_ > 0 && now - lastPing >= pingIntervalNs_) {
        lastPing = now;
        heartbeatPeers();
      }
    }
    const VTime now = clock_.now();
    if (reapIntervalNs_ > 0 && now - lastReap >= reapIntervalNs_ &&
        !stopping_.load()) {
      lastReap = now;
      for (std::size_t s = 0; s < serving_.size(); ++s) {
        DaemonRequest req;
        req.kind = DaemonRequest::Kind::kReapExpired;
        enqueue(s, std::move(req));
      }
    }
  }
}

void Daemon::dialPendingPeers() {
  // Snapshot the endpoints that want a dial, then dial OUTSIDE the peers
  // mutex (connect() can block on a stalled accept loop).
  std::vector<std::string> toDial;
  {
    std::lock_guard lock(peersMutex_);
    const VTime now = clock_.now();
    for (auto& [endpoint, peer] : peers_) {
      if (peer.pending.empty()) continue;
      if (peer.transport && peer.transport->isOpen()) continue;
      if (now < peer.nextDialAt) continue;
      toDial.push_back(endpoint);
    }
  }
  for (const auto& endpoint : toDial) {
    std::shared_ptr<msg::Transport> link;
    if (!(fault::active() && fault::shouldFail(fault::Point::kPeerDial))) {
      if (auto conn = msg::unixSocketConnect(endpoint)) {
        link = std::shared_ptr<msg::Transport>(std::move(*conn));
      }
    }
    std::vector<msg::Message> flush;
    std::size_t dropped = 0;
    bool declaredDead = false;
    if (link) {
      // The peer treats the link as any inbound session. The handler
      // feeds heartbeat pongs back into the health state and lease acks
      // into the revocation ledger; everything else (error replies to
      // fire-and-forget forwards) is dropped.
      link->setHandler([this, endpoint](msg::Message&& reply) {
        if (reply.type == msg::MsgType::kContextHandoffAck) {
          onHandoffAck(reply);
          return;
        }
        if (reply.type == msg::MsgType::kLeaseAck) {
          leaseAcksReceived_.fetch_add(1, std::memory_order_relaxed);
          if (reply.intArg2 == 1) {  // revoke ack: context converged there
            std::lock_guard lock(leaseMutex_);
            const auto it = pendingRevokes_.find(reply.context);
            if (it != pendingRevokes_.end()) {
              it->second.erase(endpoint);
              if (it->second.empty()) pendingRevokes_.erase(it);
            }
          }
          return;
        }
        if (reply.type != msg::MsgType::kPong) return;
        pongsReceived_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard lock(peersMutex_);
        const auto it = peers_.find(endpoint);
        if (it == peers_.end()) return;
        PeerLink& peer = it->second;
        peer.pongSeq = std::max<std::uint64_t>(
            peer.pongSeq, static_cast<std::uint64_t>(reply.intArg));
        peer.missedPongs = 0;
        peer.health = PeerHealth::kHealthy;
      });
      std::lock_guard lock(peersMutex_);
      PeerLink& peer = peers_[endpoint];
      if (peer.transport && peer.transport->isOpen()) {
        link->close();  // lost a dial race: reuse the established link
        link = peer.transport;
      } else {
        peer.transport = link;
      }
      peer.health = PeerHealth::kHealthy;
      peer.missedPongs = 0;
      peer.dialFails = 0;
      peer.dialBackoff = 0;
      peer.nextDialAt = 0;
      flush.swap(peer.pending);
    } else {
      std::lock_guard lock(peersMutex_);
      PeerLink& peer = peers_[endpoint];
      ++peer.dialFails;
      peer.dialBackoff = peer.dialBackoff == 0
                             ? kDialBackoffInitial
                             : std::min(peer.dialBackoff * 2, kDialBackoffCap);
      peer.nextDialAt = clock_.now() + peer.dialBackoff;
      if (peer.dialFails >= kDialFailsToDead) {
        peer.health = PeerHealth::kDead;
        declaredDead = true;
        dropped = peer.pending.size();
        peer.pending.clear();
      }
    }
    if (declaredDead) clearPendingRevokes(endpoint);
    if (dropped > 0) {
      forwardDrops_.fetch_add(dropped, std::memory_order_relaxed);
      SIMFS_LOG_WARN(kTag, "peer declared dead; dropped %zu queued forwards",
                     dropped);
    }
    for (auto& msg : flush) {
      if (link->send(msg).isOk()) {
        forwarded_.fetch_add(1, std::memory_order_relaxed);
      } else {
        forwardDrops_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // Fresh link: (re)establish this peer's view of every lease we own
    // for it — queued grants may have been dropped while it was down.
    if (link && replicas_.load(std::memory_order_relaxed) > 0) {
      resyncLeasesTo(endpoint, link);
    }
  }
}

void Daemon::heartbeatPeers() {
  // Collect sends under the lock, send outside it.
  std::vector<std::pair<std::shared_ptr<msg::Transport>, std::uint64_t>> pings;
  std::vector<std::string> died;
  std::size_t dropped = 0;
  {
    std::lock_guard lock(peersMutex_);
    for (auto& [endpoint, peer] : peers_) {
      if (!peer.transport || !peer.transport->isOpen()) continue;
      if (peer.pongSeq < peer.pingSeq) {
        // The previous ping went unanswered within a full interval.
        ++peer.missedPongs;
        if (peer.missedPongs >= kMissedPongsToDead) {
          peer.health = PeerHealth::kDead;
          peer.transport->close();
          peer.transport.reset();
          peer.dialBackoff = kDialBackoffInitial;
          peer.nextDialAt = clock_.now() + peer.dialBackoff;
          dropped += peer.pending.size();
          peer.pending.clear();
          died.push_back(endpoint);
          SIMFS_LOG_WARN(kTag, "peer heartbeat lost; link closed");
          continue;
        }
        peer.health = PeerHealth::kSuspect;
      }
      ++peer.pingSeq;
      pings.emplace_back(peer.transport, peer.pingSeq);
    }
  }
  // A dead peer's leases die with it: its un-acked revokes can never
  // complete, so stop flagging their contexts as "revoking".
  for (const auto& endpoint : died) clearPendingRevokes(endpoint);
  if (dropped > 0) {
    forwardDrops_.fetch_add(dropped, std::memory_order_relaxed);
  }
  for (auto& [transport, seq] : pings) {
    msg::Message ping;
    ping.type = msg::MsgType::kPing;
    ping.intArg = static_cast<std::int64_t>(seq);
    ping.intArg2 = msg::kProtocolVersionMax;  // additive version handshake
    ping.text = nodeId_;
    if (transport->send(ping).isOk()) {
      pingsSent_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

// -------------------------------------------------------------- lease plane

void Daemon::flushLeaseOutbox() {
  // Handoff delta frames first: a step produced on a handed-off context
  // reaches its new owner ahead of any unrelated lease chatter.
  std::vector<HandoffDelta> deltas;
  {
    std::lock_guard lock(handoffMutex_);
    deltas.swap(handoffDeltas_);
  }
  for (const auto& d : deltas) {
    msg::Message frame;
    frame.type = msg::MsgType::kContextHandoff;
    frame.context = d.context;
    frame.intArg = static_cast<std::int64_t>(d.epoch);
    frame.text = nodeId_;
    frame.ints.reserve(d.steps.size());
    for (const StepIndex s : d.steps) {
      frame.ints.push_back(static_cast<std::int64_t>(s));
    }
    forwardToPeer(cluster::NodeInfo{d.targetId, d.targetEndpoint}, frame);
  }
  std::vector<LeaseCmd> cmds;
  {
    std::lock_guard lock(leaseMutex_);
    cmds.swap(leaseOutbox_);
  }
  const auto ringSnap = ringRef();
  const std::size_t replicas = replicas_.load(std::memory_order_relaxed);
  for (const auto& cmd : cmds) {
    const auto replicaSet = ringSnap->replicasOf(cmd.context, replicas);
    if (replicaSet.empty()) continue;
    msg::Message m;
    m.type = cmd.revoke ? msg::MsgType::kLeaseRevoke
                        : msg::MsgType::kLeaseGrant;
    m.context = cmd.context;
    m.intArg = static_cast<std::int64_t>(cmd.generation);
    m.text = nodeId_;
    m.ints.reserve(cmd.steps.size());
    for (const StepIndex s : cmd.steps) {
      m.ints.push_back(static_cast<std::int64_t>(s));
    }
    if (cmd.revoke && !cmd.steps.empty()) {
      // Eviction revoke: flag the context as "revoking" until every
      // replica acks. Operator introspection only — correctness rests on
      // the generation fence, not on this ledger.
      std::lock_guard lock(leaseMutex_);
      auto& eps = pendingRevokes_[cmd.context];
      for (const auto& r : replicaSet) eps.insert(r.endpoint);
    }
    for (const auto& r : replicaSet) {
      forwardToPeer(r, m);
      (cmd.revoke ? leaseRevokesSent_ : leaseGrantsSent_)
          .fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void Daemon::resyncLeasesTo(const std::string& endpoint,
                            const std::shared_ptr<msg::Transport>& link) {
  const auto ringSnap = ringRef();
  const std::size_t replicas = replicas_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < core_.numShards(); ++i) {
    std::vector<std::string> names;
    {
      std::lock_guard lock(core_.mutexOf(i));
      names = core_.shard(i).contextNames();
    }
    for (const auto& name : names) {
      const cluster::NodeInfo* owner = nullptr;
      if (ownedElsewhere(*ringSnap, name, &owner)) continue;  // not ours
      const auto replicaSet = ringSnap->replicasOf(name, replicas);
      const bool covers = std::any_of(
          replicaSet.begin(), replicaSet.end(),
          [&](const cluster::NodeInfo& n) { return n.endpoint == endpoint; });
      if (!covers) continue;
      std::uint64_t gen = 0;
      std::vector<StepIndex> steps;
      {
        std::lock_guard lock(core_.mutexOf(i));
        const auto view = core_.shard(i).leaseView(name);
        if (!view) continue;  // context never emitted a lease
        gen = view->generation;
        steps = core_.shard(i).availableSteps(name);
      }
      // Revoke-all then full grant, both at the current generation: the
      // pair is idempotent under the fence, and the wipe clears grants
      // the replica kept across drops this owner never saw.
      msg::Message wipe;
      wipe.type = msg::MsgType::kLeaseRevoke;
      wipe.context = name;
      wipe.intArg = static_cast<std::int64_t>(gen);
      wipe.text = nodeId_;
      wipe.hops = 1;
      if (!link->send(wipe).isOk()) return;  // link died: next dial resyncs
      leaseRevokesSent_.fetch_add(1, std::memory_order_relaxed);
      if (steps.empty()) continue;
      msg::Message grant;
      grant.type = msg::MsgType::kLeaseGrant;
      grant.context = name;
      grant.intArg = static_cast<std::int64_t>(gen);
      grant.text = nodeId_;
      grant.hops = 1;
      grant.ints.reserve(steps.size());
      for (const StepIndex s : steps) {
        grant.ints.push_back(static_cast<std::int64_t>(s));
      }
      if (!link->send(grant).isOk()) return;
      leaseGrantsSent_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void Daemon::clearPendingRevokes(const std::string& endpoint) {
  std::lock_guard lock(leaseMutex_);
  for (auto it = pendingRevokes_.begin(); it != pendingRevokes_.end();) {
    it->second.erase(endpoint);
    it = it->second.empty() ? pendingRevokes_.erase(it) : std::next(it);
  }
}

bool Daemon::isReplicaFor(std::string_view context) const {
  const auto ringSnap = ringRef();
  const auto replicaSet = ringSnap->replicasOf(
      context, replicas_.load(std::memory_order_relaxed));
  return std::any_of(
      replicaSet.begin(), replicaSet.end(),
      [&](const cluster::NodeInfo& n) { return n.id == nodeId_; });
}

bool Daemon::hasActiveLease(const std::string& context) const {
  const auto idx = core_.shardOfContext(context);
  if (!idx) return false;
  std::lock_guard lock(core_.mutexOf(*idx));
  const auto view = core_.shard(*idx).leaseView(context);
  return view && view->replica && view->steps > 0;
}

void Daemon::handleLeaseOp(const std::shared_ptr<Session>& session,
                           const msg::MessageView& m) {
  const bool grant = m.type() == msg::MsgType::kLeaseGrant;
  msg::Message ack;
  ack.type = msg::MsgType::kLeaseAck;
  ack.requestId = m.requestId();
  ack.context.assign(m.context());
  ack.intArg = m.intArg();  // echo the generation
  ack.intArg2 = grant ? 0 : 1;
  ack.text = nodeId_;
  Status st = Status::ok();
  const std::string context(m.context());
  const auto idx = core_.shardOfContext(context);
  if (nodeId_.empty()) {
    st = errFailedPrecondition("dv: lease op on standalone daemon");
  } else if (!idx) {
    st = errNotFound("dv: no context: " + context);
  } else {
    std::vector<std::int64_t> steps;
    steps.reserve(m.intCount());
    for (auto it = m.intsBegin(); it != m.intsEnd(); ++it) {
      steps.push_back(*it);
    }
    const auto gen = static_cast<std::uint64_t>(m.intArg());
    std::lock_guard lock(core_.mutexOf(*idx));
    DvShard& shard = core_.shard(*idx);
    st = grant ? shard.applyLeaseGrant(context, gen, steps)
               : shard.applyLeaseRevoke(context, gen, steps);
  }
  ack.code = codeOf(st);
  if (!st.isOk()) ack.text = st.message();
  (void)session->transport->send(ack);
}

// ------------------------------------------------------- elastic membership

namespace {
/// Every member of `a` union `b` except `self`, deduped by node id — the
/// relay fan-out of a membership change (old members must learn they are
/// leaving; new members must learn they joined).
std::vector<cluster::NodeInfo> relayTargets(const cluster::Ring& a,
                                            const cluster::Ring& b,
                                            const std::string& self) {
  std::vector<cluster::NodeInfo> out;
  std::set<std::string> seen{self};
  for (const cluster::Ring* ring : {&a, &b}) {
    for (const auto& n : ring->nodes()) {
      if (seen.insert(n.id).second) out.push_back(n);
    }
  }
  return out;
}
}  // namespace

void Daemon::handleRingPropose(const std::shared_ptr<Session>& session,
                               const msg::MessageView& m) {
  const msg::Message full = m.toMessage();
  msg::Message ack;
  ack.type = msg::MsgType::kRingProposeAck;
  ack.requestId = full.requestId;
  ack.text = nodeId_;
  Status st = Status::ok();
  const auto version = static_cast<std::uint64_t>(full.intArg);
  const auto current = ringRef();
  cluster::Ring proposed;
  std::vector<std::string> moved;
  bool relay = false;
  if (nodeId_.empty()) {
    st = errFailedPrecondition("dv: membership change on standalone daemon");
  } else if (auto parsed = cluster::Ring::fromEntries(full.files, version);
             !parsed) {
    st = parsed.status();
  } else if (version <= current->version()) {
    st = errFailedPrecondition(str::format(
        "dv: proposed ring version %llu not newer than committed %llu",
        static_cast<unsigned long long>(version),
        static_cast<unsigned long long>(current->version())));
  } else {
    proposed = std::move(*parsed);
    // The work list is computed OUTSIDE handoffMutex_ (contextNames takes
    // shard locks; the LeaseFn locks handoffMutex_ under a shard lock).
    moved = cluster::Ring::movedContexts(*current, proposed,
                                         core_.contextNames());
    std::lock_guard lock(handoffMutex_);
    if (pendingTransition_ && pendingTransition_->version == version) {
      moved = pendingTransition_->moved;  // idempotent re-propose
    } else if (pendingTransition_) {
      st = errFailedPrecondition(str::format(
          "dv: membership change v%llu already in flight",
          static_cast<unsigned long long>(pendingTransition_->version)));
    } else {
      auto t = std::make_unique<PendingTransition>();
      t->version = version;
      t->ring = proposed;
      t->moved = moved;
      pendingTransition_ = std::move(t);
      // Queue an outbound transfer for every context THIS node loses.
      for (const auto& ctx : moved) {
        if (current->ownerOf(ctx).id != nodeId_) continue;
        const auto& newOwner = proposed.ownerOf(ctx);
        if (newOwner.id == nodeId_) continue;
        handoffs_.push_back(HandoffOp{ctx, newOwner.id, newOwner.endpoint,
                                      version, HandoffPhase::kQueued, 0});
      }
      membershipChanged_.store(true, std::memory_order_relaxed);
      relay = full.hops == 0;
    }
  }
  if (st.isOk()) {
    ack.intArg = static_cast<std::int64_t>(version);
    ack.intArg2 = static_cast<std::int64_t>(moved.size());
    ack.files.reserve(moved.size());
    for (const auto& ctx : moved) {
      ack.files.push_back(ctx + ":" + current->ownerOf(ctx).id + ">" +
                          proposed.ownerOf(ctx).id);
    }
  } else {
    ack.text = st.message();
  }
  ack.code = codeOf(st);
  (void)session->transport->send(ack);
  if (relay) {
    for (const auto& n : relayTargets(*current, proposed, nodeId_)) {
      forwardToPeer(n, full);
    }
  }
  if (st.isOk()) wakeMaintenance();  // start streaming without a tick wait
}

void Daemon::handleRingCommit(const std::shared_ptr<Session>& session,
                              const msg::MessageView& m) {
  const msg::Message full = m.toMessage();
  msg::Message ack;
  ack.type = msg::MsgType::kRingCommitAck;
  ack.requestId = full.requestId;
  ack.text = nodeId_;
  Status st = Status::ok();
  const auto version = static_cast<std::uint64_t>(full.intArg);
  const auto current = ringRef();
  if (nodeId_.empty()) {
    st = errFailedPrecondition("dv: membership change on standalone daemon");
  } else if (version == current->version()) {
    ack.intArg = static_cast<std::int64_t>(version);  // idempotent re-commit
  } else if (version < current->version()) {
    st = errFailedPrecondition(str::format(
        "dv: stale commit v%llu (committed v%llu)",
        static_cast<unsigned long long>(version),
        static_cast<unsigned long long>(current->version())));
  } else if (auto parsed = cluster::Ring::fromEntries(full.files, version);
             !parsed) {
    st = parsed.status();
  } else {
    const auto moved = cluster::Ring::movedContexts(*current, *parsed,
                                                    core_.contextNames());
    auto next = std::make_shared<const cluster::Ring>(std::move(*parsed));
    // Adopt the ring FIRST: lease grants emitted while the staged imports
    // apply below must already see this node as the owner.
    {
      std::lock_guard lock(ringMutex_);
      ring_ = next;
    }
    replicas_.store(effectiveReplicas(*next), std::memory_order_relaxed);
    membershipChanged_.store(true, std::memory_order_relaxed);
    std::map<std::string, StagedHandoff> staged;
    {
      std::lock_guard lock(handoffMutex_);
      pendingTransition_.reset();
      // Settle this epoch's outbound transfers: anything the commit
      // overtook is aborted — the new owner is authoritative (it serves
      // cold), and the un-transferred local state stays as serving
      // residue for this node's remaining waiters.
      for (auto& op : handoffs_) {
        if (op.epoch > version) continue;
        if (op.phase == HandoffPhase::kQueued ||
            op.phase == HandoffPhase::kStreaming ||
            op.phase == HandoffPhase::kAwaitingAck) {
          op.phase = HandoffPhase::kAborted;
          handoffsAborted_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      std::erase_if(handoffs_,
                    [&](const HandoffOp& op) { return op.epoch <= version; });
      // Delta routing: forward future production on every context this
      // node no longer owns; stop forwarding for contexts (re)owned here.
      for (auto it = handedOffTo_.begin(); it != handedOffTo_.end();) {
        it = next->ownerOf(it->first).id == nodeId_ ? handedOffTo_.erase(it)
                                                    : std::next(it);
      }
      for (const auto& ctx : moved) {
        if (current->ownerOf(ctx).id != nodeId_) continue;
        const auto& newOwner = next->ownerOf(ctx);
        if (newOwner.id == nodeId_) continue;
        handedOffTo_[ctx] =
            HandoffTarget{newOwner.id, newOwner.endpoint, version};
      }
      // Claim this epoch's staged imports; drop anything staler.
      for (auto it = stagedHandoffs_.begin(); it != stagedHandoffs_.end();) {
        if (it->second.epoch < version) {
          it = stagedHandoffs_.erase(it);
        } else if (it->second.epoch == version) {
          staged.emplace(it->first, std::move(it->second));
          it = stagedHandoffs_.erase(it);
        } else {
          ++it;
        }
      }
    }
    // Apply the imports AFTER the swap, under the owning shard's lock
    // (never while holding handoffMutex_ — lock order is shard first).
    for (auto& [ctx, s] : staged) {
      if (next->ownerOf(ctx).id != nodeId_) continue;  // not ours after all
      const auto idx = core_.shardOfContext(ctx);
      if (!idx) continue;
      std::vector<std::int64_t> steps;
      steps.reserve(s.steps.size());
      for (const StepIndex step : s.steps) {
        steps.push_back(static_cast<std::int64_t>(step));
      }
      std::lock_guard lock(core_.mutexOf(*idx));
      DvShard& shard = core_.shard(*idx);
      (void)shard.importContextSteps(ctx, steps);
      if (s.complete) {
        (void)shard.adoptContextOwnership(ctx, s.leaseGen, s.pendingWaiters);
      }
    }
    ack.intArg = static_cast<std::int64_t>(version);
    if (full.hops == 0) {
      for (const auto& n : relayTargets(*current, *next, nodeId_)) {
        forwardToPeer(n, full);
      }
    }
    wakeMaintenance();
    SIMFS_LOG_INFO(kTag, "ring v%llu committed (%zu members, %zu moved)",
                   static_cast<unsigned long long>(version), next->size(),
                   moved.size());
  }
  ack.code = codeOf(st);
  if (!st.isOk()) ack.text = st.message();
  (void)session->transport->send(ack);
}

void Daemon::handleContextHandoff(const std::shared_ptr<Session>& session,
                                  const msg::MessageView& m) {
  const auto epoch = static_cast<std::uint64_t>(m.intArg());
  const bool isFinal = (m.intArg2() & 1) != 0;
  const std::string context(m.context());
  msg::Message ack;
  ack.type = msg::MsgType::kContextHandoffAck;
  ack.requestId = m.requestId();
  ack.context = context;
  ack.intArg = static_cast<std::int64_t>(epoch);
  ack.intArg2 = isFinal ? 1 : 0;
  ack.text = nodeId_;
  std::vector<std::int64_t> ints;
  ints.reserve(m.intCount());
  for (auto it = m.intsBegin(); it != m.intsEnd(); ++it) ints.push_back(*it);
  std::uint64_t leaseGen = 0;
  std::vector<std::pair<StepIndex, std::uint32_t>> pendingWaiters;
  Status st = Status::ok();
  if (isFinal) {
    // Final frame: ints = [leaseGen, totalRefs, (step, waiters)...].
    if (ints.size() < 2 || (ints.size() - 2) % 2 != 0) {
      st = errInvalidArgument("dv: malformed handoff final frame");
    } else {
      leaseGen = static_cast<std::uint64_t>(ints[0]);
      for (std::size_t i = 2; i + 1 < ints.size(); i += 2) {
        pendingWaiters.emplace_back(
            static_cast<StepIndex>(ints[i]),
            static_cast<std::uint32_t>(ints[i + 1]));
      }
    }
  }
  const auto current = ringRef();
  if (!st.isOk()) {
    // fall through to the ack
  } else if (nodeId_.empty()) {
    st = errFailedPrecondition("dv: handoff on standalone daemon");
  } else if (epoch < current->version()) {
    // The epoch fence: a frame from a sender still on an older ring is
    // rejected outright — its authority ended at the commit it missed.
    st = errFailedPrecondition(str::format(
        "dv: stale handoff epoch %llu (committed v%llu)",
        static_cast<unsigned long long>(epoch),
        static_cast<unsigned long long>(current->version())));
  } else if (epoch == current->version()) {
    // Committed epoch: a post-commit delta (or a frame racing the commit
    // relay). Applied immediately under the owning shard's lock.
    const cluster::NodeInfo* owner = nullptr;
    const auto idx = core_.shardOfContext(context);
    if (!idx) {
      st = errNotFound("dv: no context: " + context);
    } else if (ownedElsewhere(*current, context, &owner)) {
      st = errFailedPrecondition("dv: handoff for a context owned elsewhere");
    } else {
      std::lock_guard lock(core_.mutexOf(*idx));
      DvShard& shard = core_.shard(*idx);
      st = isFinal ? shard.adoptContextOwnership(context, leaseGen,
                                                 pendingWaiters)
                   : shard.importContextSteps(context, ints);
    }
  } else {
    // Future epoch: staged until the matching kRingCommit makes this node
    // authoritative. An uncommitted transfer is discarded wholesale at
    // the next commit (or expires with its epoch) — crash-of-the-sender
    // resolves to "old owner resumes" with no partial state applied.
    std::lock_guard lock(handoffMutex_);
    auto& s = stagedHandoffs_[context];
    if (s.epoch != epoch) {
      s = StagedHandoff{};
      s.epoch = epoch;
    }
    s.from = std::string(m.text());
    if (isFinal) {
      s.leaseGen = leaseGen;
      s.pendingWaiters = std::move(pendingWaiters);
      s.complete = true;
    } else {
      s.steps.reserve(s.steps.size() + ints.size());
      for (const std::int64_t v : ints) {
        s.steps.push_back(static_cast<StepIndex>(v));
      }
    }
    membershipChanged_.store(true, std::memory_order_relaxed);
  }
  ack.code = codeOf(st);
  if (!st.isOk()) ack.text = st.message();
  (void)session->transport->send(ack);
}

void Daemon::runHandoffs() {
  // Claim the queued transfers. The delta target registers BEFORE the
  // snapshot export: a step produced between the two is queued as a delta
  // frame (possibly duplicated in the snapshot — imports are idempotent),
  // never lost.
  std::vector<HandoffOp> toStream;
  {
    std::lock_guard lock(handoffMutex_);
    for (auto& op : handoffs_) {
      if (op.phase != HandoffPhase::kQueued) continue;
      op.phase = HandoffPhase::kStreaming;
      handedOffTo_[op.context] =
          HandoffTarget{op.targetId, op.targetEndpoint, op.epoch};
      toStream.push_back(op);
    }
  }
  const auto frameFaulted = [] {
    if (!fault::active()) return false;
    fault::maybeDelay(fault::Point::kHandoff);
    return fault::shouldFail(fault::Point::kHandoff);
  };
  for (const auto& op : toStream) {
    std::optional<ContextSnapshot> snap;
    if (const auto idx = core_.shardOfContext(op.context)) {
      std::lock_guard lock(core_.mutexOf(*idx));
      snap = core_.shard(*idx).exportContextSnapshot(op.context);
    }
    // Nothing transferable (a cold context, or a joiner's self-ring
    // mirage): settle as committed without a single frame — the new
    // owner serves from scratch, which IS the complete state.
    const bool trivial = snap && snap->available.empty() &&
                         snap->pendingWaiters.empty() && snap->refs == 0 &&
                         snap->leaseGen <= 1;
    bool failed = !snap;
    bool streamed = false;
    if (snap && !trivial) {
      const cluster::NodeInfo target{op.targetId, op.targetEndpoint};
      for (std::size_t at = 0; at < snap->available.size() && !failed;
           at += handoffBatch_) {
        if (frameFaulted()) {
          failed = true;
          break;
        }
        const std::size_t n =
            std::min(handoffBatch_, snap->available.size() - at);
        msg::Message frame;
        frame.type = msg::MsgType::kContextHandoff;
        frame.context = op.context;
        frame.intArg = static_cast<std::int64_t>(op.epoch);
        frame.text = nodeId_;
        frame.ints.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
          frame.ints.push_back(
              static_cast<std::int64_t>(snap->available[at + i]));
        }
        forwardToPeer(target, frame);
      }
      if (!failed && frameFaulted()) failed = true;
      if (!failed) {
        msg::Message fin;
        fin.type = msg::MsgType::kContextHandoff;
        fin.context = op.context;
        fin.intArg = static_cast<std::int64_t>(op.epoch);
        fin.intArg2 = 1;
        fin.text = nodeId_;
        fin.ints.reserve(2 + 2 * snap->pendingWaiters.size());
        fin.ints.push_back(static_cast<std::int64_t>(snap->leaseGen));
        fin.ints.push_back(static_cast<std::int64_t>(snap->refs));
        for (const auto& [step, waiters] : snap->pendingWaiters) {
          fin.ints.push_back(static_cast<std::int64_t>(step));
          fin.ints.push_back(static_cast<std::int64_t>(waiters));
        }
        forwardToPeer(target, fin);
        streamed = true;
      }
    }
    const VTime deadline =
        clock_.now() + (handoffTimeoutNs_ > 0 ? handoffTimeoutNs_
                                              : 5'000'000'000);
    std::lock_guard lock(handoffMutex_);
    for (auto& h : handoffs_) {
      if (h.context != op.context || h.epoch != op.epoch) continue;
      if (h.phase != HandoffPhase::kStreaming) break;  // settled by an ack
      if (failed) {
        h.phase = HandoffPhase::kAborted;
        handoffsAborted_.fetch_add(1, std::memory_order_relaxed);
        handedOffTo_.erase(op.context);  // old owner resumes authoritative
      } else if (streamed) {
        h.phase = HandoffPhase::kAwaitingAck;
        h.deadline = deadline;
      } else {  // trivial
        h.phase = HandoffPhase::kCommitted;
        handoffsCommitted_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
  }
  // Deadline sweep: a transfer whose final ack never came (receiver
  // crashed mid-stream, frames dropped) aborts deterministically — the
  // old owner never stopped serving, so there is nothing to undo.
  const VTime now = clock_.now();
  std::size_t expired = 0;
  {
    std::lock_guard lock(handoffMutex_);
    for (auto& op : handoffs_) {
      if (op.phase != HandoffPhase::kAwaitingAck) continue;
      if (op.deadline != 0 && now >= op.deadline) {
        op.phase = HandoffPhase::kAborted;
        handoffsAborted_.fetch_add(1, std::memory_order_relaxed);
        handedOffTo_.erase(op.context);
        ++expired;
      }
    }
  }
  if (expired > 0) {
    SIMFS_LOG_WARN(kTag, "%zu context handoff(s) timed out; old owner resumes",
                   expired);
  }
}

void Daemon::onHandoffAck(const msg::Message& reply) {
  const auto epoch = static_cast<std::uint64_t>(reply.intArg);
  std::lock_guard lock(handoffMutex_);
  for (auto& op : handoffs_) {
    if (op.context != reply.context || op.epoch != epoch) continue;
    if (op.phase != HandoffPhase::kStreaming &&
        op.phase != HandoffPhase::kAwaitingAck) {
      return;  // already settled (timeout raced the ack)
    }
    if (reply.code != 0) {
      // The receiver refused a frame (stale epoch, unknown context):
      // abort — this node keeps serving.
      op.phase = HandoffPhase::kAborted;
      handoffsAborted_.fetch_add(1, std::memory_order_relaxed);
      handedOffTo_.erase(op.context);
    } else if (reply.intArg2 == 1) {
      // Final-frame ack: the transfer's commit point.
      op.phase = HandoffPhase::kCommitted;
      handoffsCommitted_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
}

std::size_t Daemon::inflightHandoffs() const {
  std::lock_guard lock(handoffMutex_);
  std::size_t n = 0;
  for (const auto& op : handoffs_) {
    if (op.phase == HandoffPhase::kQueued ||
        op.phase == HandoffPhase::kStreaming ||
        op.phase == HandoffPhase::kAwaitingAck) {
      ++n;
    }
  }
  return n;
}

msg::Message Daemon::buildRedirect(std::uint64_t requestId,
                                   std::string_view context,
                                   const cluster::NodeInfo& owner,
                                   const cluster::Ring& ring) const {
  msg::Message reply;
  reply.type = msg::MsgType::kRedirect;
  reply.requestId = requestId;
  reply.context.assign(context);
  reply.text = owner.id;
  reply.files = ring.encodeEntries();
  reply.intArg = static_cast<std::int64_t>(ring.version());
  // Read-replica count R, additive: 0 whenever replicas are disabled, so
  // those redirects stay byte-identical to pre-replica daemons.
  reply.intArg2 =
      static_cast<std::int64_t>(replicas_.load(std::memory_order_relaxed));
  reply.code = codeOf(Status::ok());
  return reply;
}

msg::MessageRef Daemon::buildRedirectRef(msg::Arena& arena,
                                         std::uint64_t requestId,
                                         std::string_view context,
                                         const cluster::NodeInfo& owner,
                                         const cluster::Ring& ring) const {
  msg::MessageRef reply;
  reply.type = msg::MsgType::kRedirect;
  reply.requestId = requestId;
  reply.context = arena.copyString(context);
  reply.text = arena.copyString(owner.id);
  const auto entries = ring.encodeEntries();
  auto files = arena.allocSpan<std::string_view>(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    files[i] = arena.copyString(entries[i]);
  }
  reply.files = files;
  reply.intArg = static_cast<std::int64_t>(ring.version());
  reply.intArg2 =
      static_cast<std::int64_t>(replicas_.load(std::memory_order_relaxed));
  reply.code = codeOf(Status::ok());
  return reply;
}

msg::Message Daemon::buildRingUpdate(std::uint64_t requestId) const {
  const auto ringSnap = ringRef();
  msg::Message reply;
  reply.type = msg::MsgType::kRingUpdate;
  reply.requestId = requestId;
  reply.text = nodeId_;
  reply.files = ringSnap->encodeEntries();
  reply.intArg = static_cast<std::int64_t>(ringSnap->version());
  reply.intArg2 =
      static_cast<std::int64_t>(replicas_.load(std::memory_order_relaxed));
  reply.code = codeOf(Status::ok());
  return reply;
}

Daemon::FederationCounters Daemon::federationCounters() const {
  FederationCounters c;
  c.redirects = redirects_.load(std::memory_order_relaxed);
  c.forwarded = forwarded_.load(std::memory_order_relaxed);
  c.forwardDrops = forwardDrops_.load(std::memory_order_relaxed);
  c.pingsSent = pingsSent_.load(std::memory_order_relaxed);
  c.pongsReceived = pongsReceived_.load(std::memory_order_relaxed);
  c.leaseGrantsSent = leaseGrantsSent_.load(std::memory_order_relaxed);
  c.leaseRevokesSent = leaseRevokesSent_.load(std::memory_order_relaxed);
  c.leaseAcksReceived = leaseAcksReceived_.load(std::memory_order_relaxed);
  c.handoffsInflight = inflightHandoffs();
  c.handoffsCommitted = handoffsCommitted_.load(std::memory_order_relaxed);
  c.handoffsAborted = handoffsAborted_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(leaseMutex_);
    c.contextsRevoking = pendingRevokes_.size();
  }
  std::lock_guard lock(peersMutex_);
  for (const auto& [endpoint, peer] : peers_) {
    if (peer.health == PeerHealth::kSuspect) ++c.peersSuspect;
    if (peer.health == PeerHealth::kDead) ++c.peersDead;
  }
  return c;
}

// ------------------------------------------------------------------ queueing

void Daemon::enqueue(std::size_t shard, DaemonRequest&& request) {
  auto& sv = *serving_[shard];
  {
    std::lock_guard lock(sv.qMutex);
    sv.queue.push_back(std::move(request));
  }
  finishEnqueue(shard);
}

bool Daemon::enqueueClient(std::size_t shard,
                           const std::shared_ptr<Session>& session,
                           const msg::MessageView& m) {
  auto& sv = *serving_[shard];
  // Backpressure: only request/reply client traffic is sheddable — the
  // client sees kUnavailable and can back off. Fire-and-forget client
  // messages and simulator events always enqueue: dropping those would
  // corrupt bookkeeping, and their volume is bounded by the request
  // traffic that produces them. Cancels also always enqueue: they FREE
  // resources (waiter entries, pinned slots), so shedding one under
  // overload would leak exactly when the daemon can least afford it. The
  // check shares the queue's one lock acquisition, so concurrent
  // dispatchers cannot overshoot the cap — and the arena copy happens
  // under the same lock, into the queue's active arena.
  const bool sheddable = m.type() != msg::MsgType::kCancelReq &&
                         ackTypeFor(m.type()) != msg::MsgType::kError;
  bool shed = false;
  {
    std::lock_guard lock(sv.qMutex);
    if (sheddable && sv.queue.size() >= queueCap_) {
      shed = true;
    } else {
      DaemonRequest req;
      req.kind = DaemonRequest::Kind::kClientMessage;
      req.session = session;
      req.msg = msg::copyToArena(m, sv.arenas[sv.activeArena]);
      sv.queue.push_back(std::move(req));
    }
  }
  if (shed) {
    sv.shed.fetch_add(1, std::memory_order_relaxed);
    const Status st = errUnavailable("dv: shard queue over capacity");
    msg::Message reply;
    reply.requestId = m.requestId();
    reply.type = ackTypeFor(m.type());
    reply.code = codeOf(st);
    reply.text = st.message();
    (void)session->transport->send(reply);
    return false;
  }
  finishEnqueue(shard);
  return true;
}

void Daemon::finishEnqueue(std::size_t shard) {
  serving_[shard]->enqueued.fetch_add(1, std::memory_order_relaxed);
  if (stopping_.load()) {
    // Shutdown race: the workers (or stop()'s sweep) may already be past
    // this queue. Once the join has completed we own the pipeline
    // exclusively under stopMutex_ and can serve the request here.
    std::lock_guard stopLock(stopMutex_);
    if (workersJoined_) {
      std::vector<DaemonRequest> batch;
      (void)drainShard(shard, batch);
    }
    return;
  }
  Worker& w = *workers_[shard % workers_.size()];
  {
    std::lock_guard lock(w.mutex);
    w.wake = true;
  }
  w.cv.notify_one();
}

void Daemon::enqueueSimEvent(DaemonRequest&& request) {
  enqueue(core_.shardOfJob(request.job), std::move(request));
}

void Daemon::simulationStarted(SimJobId job) {
  DaemonRequest req;
  req.kind = DaemonRequest::Kind::kSimStarted;
  req.job = job;
  enqueueSimEvent(std::move(req));
}

void Daemon::simulationFileWritten(SimJobId job, const std::string& file) {
  DaemonRequest req;
  req.kind = DaemonRequest::Kind::kSimFileWritten;
  req.job = job;
  req.file = file;
  enqueueSimEvent(std::move(req));
}

void Daemon::simulationFinished(SimJobId job, const Status& status) {
  DaemonRequest req;
  req.kind = DaemonRequest::Kind::kSimFinished;
  req.job = job;
  req.status = status;
  enqueueSimEvent(std::move(req));
}

// ------------------------------------------------------------------ workers

void Daemon::workerLoop(std::size_t workerIndex) {
  Worker& w = *workers_[workerIndex];
  std::vector<DaemonRequest> batch;
  const std::size_t stride = workers_.size();
  for (;;) {
    bool did = false;
    for (std::size_t s = workerIndex; s < serving_.size(); s += stride) {
      did = drainShard(s, batch) || did;
    }
    if (did) continue;
    std::unique_lock lock(w.mutex);
    if (w.wake) {
      w.wake = false;
      if (stopping_.load()) {
        // Final pass: drain what was enqueued before the stop flag.
        lock.unlock();
        for (std::size_t s = workerIndex; s < serving_.size(); s += stride) {
          (void)drainShard(s, batch);
        }
        return;
      }
      continue;
    }
    w.cv.wait(lock, [&] { return w.wake; });
  }
}

bool Daemon::drainShard(std::size_t shard, std::vector<DaemonRequest>& batch) {
  auto& sv = *serving_[shard];
  if (fault::active()) fault::maybeDelay(fault::Point::kDrain);
  batch.clear();
  int drainedArena = 0;
  {
    std::lock_guard lock(sv.qMutex);
    if (sv.queue.empty()) return false;
    batch.swap(sv.queue);
    // Flip the arenas: new requests copy into the other one while this
    // batch (whose MessageRefs point into arenas[drainedArena]) is
    // processed. Safe because exactly one worker drains a given shard,
    // so the previous batch from the other arena has fully retired.
    drainedArena = sv.activeArena;
    sv.activeArena ^= 1;
  }
  sv.out.clear();
  // Replies (and kFileReady notifications) are built in the same arena
  // as the batch: both stay valid until after the flush below.
  sv.replyArena = &sv.arenas[drainedArena];
  {
    // One lock acquisition for the whole batch.
    std::lock_guard lock(core_.mutexOf(shard));
    DvShard& dv = core_.shard(shard);
    for (auto& request : batch) processOnShard(shard, dv, request);
  }
  sv.batches.fetch_add(1, std::memory_order_relaxed);
  sv.served.fetch_add(batch.size(), std::memory_order_relaxed);
  atomicMax(sv.maxBatch, batch.size());
  // Flush replies and notifications outside the shard lock; the reactor
  // coalesces consecutive frames per connection into writev batches. The
  // transports serialize into their own pooled buffers, so the arena may
  // be reset the moment the loop finishes.
  for (auto& [session, message] : sv.out) {
    if (!session->transport->send(message).isOk()) {
      SIMFS_LOG_DEBUG(kTag, "dropping reply to closed session");
    }
  }
  sv.out.clear();
  batch.clear();  // release session references promptly
  sv.replyArena = nullptr;
  sv.arenas[drainedArena].reset();
  return true;
}

void Daemon::onNotify(ClientId client, const std::string& file,
                      const Status& st) {
  // Fires inside DvShard calls, i.e. on the worker currently holding this
  // client's shard lock mid-drain; buffered and sent after the lock
  // drops.
  const std::size_t shard = core_.shardOfClient(client);
  auto& sv = *serving_[shard];
  const auto it = sv.byClient.find(client);
  if (it == sv.byClient.end()) return;
  if (sv.replyArena == nullptr) {
    // Outside a drain no flush follows (setup-time seeding has no
    // connected clients; every serving-path DvShard call happens inside
    // one) — mirror the old pipeline, which cleared stale entries at the
    // next drain without sending them.
    SIMFS_LOG_DEBUG(kTag, "dropping out-of-drain notification");
    return;
  }
  msg::Arena& arena = *sv.replyArena;
  msg::MessageRef m;
  m.type = msg::MsgType::kFileReady;
  auto files = arena.allocSpan<std::string_view>(1);
  files[0] = arena.copyString(file);
  m.files = files;
  m.code = codeOf(st);
  if (!st.isOk()) m.text = arena.copyString(st.message());
  sv.out.emplace_back(it->second, m);
}

void Daemon::processOnShard(std::size_t shardIndex, DvShard& shard,
                            DaemonRequest& request) {
  switch (request.kind) {
    case DaemonRequest::Kind::kClientMessage:
      processClientMessage(shardIndex, shard, request.session, request.msg);
      return;
    case DaemonRequest::Kind::kDisconnect: {
      const ClientId client = request.session->client.load();
      if (client != 0) {
        shard.clientDisconnect(client);
        serving_[shardIndex]->byClient.erase(client);
        request.session->client.store(0);
      }
      request.session->defunct.store(true);
      return;
    }
    case DaemonRequest::Kind::kSimStarted:
      shard.simulationStarted(request.job);
      return;
    case DaemonRequest::Kind::kSimFileWritten:
      shard.simulationFileWritten(request.job, request.file);
      return;
    case DaemonRequest::Kind::kSimFinished:
      shard.simulationFinished(request.job, request.status);
      return;
    case DaemonRequest::Kind::kReapExpired:
      (void)shard.reapExpiredWaiters(clock_.now());
      return;
  }
}

void Daemon::processClientMessage(std::size_t shardIndex, DvShard& shard,
                                  const std::shared_ptr<Session>& session,
                                  const msg::MessageRef& m) {
  auto& sv = *serving_[shardIndex];
  msg::Arena& arena = *sv.replyArena;
  msg::MessageRef reply;
  reply.requestId = m.requestId;
  bool sendReply = true;
  const ClientId client = session->client.load();

  // Elastic-membership redirect: once a commit moved this session's
  // context to another node, interest-registering ops are answered with
  // kRedirect (carrying the new table) instead of being served here — the
  // client rebinds and resends under the same requestId. Release-side ops
  // (kReleaseReq, kCancelReq, kCloseNotify) still run locally so pinned
  // residue drains, and replica-session reads keep working by design. The
  // sticky membershipChanged_ gate keeps this off every pre-elastic path.
  if (membershipChanged_.load(std::memory_order_relaxed) && client != 0 &&
      !session->replica.load() &&
      (m.type == msg::MsgType::kOpenReq ||
       m.type == msg::MsgType::kOpenBatchReq ||
       m.type == msg::MsgType::kAcquireReq)) {
    const auto ringSnap = ringRef();
    const cluster::NodeInfo* owner = nullptr;
    if (ownedElsewhere(*ringSnap, session->context, &owner)) {
      redirects_.fetch_add(1, std::memory_order_relaxed);
      sv.out.emplace_back(session,
                          buildRedirectRef(arena, m.requestId,
                                           session->context, *owner, *ringSnap));
      return;
    }
  }

  switch (m.type) {
    case msg::MsgType::kHello: {
      reply.type = msg::MsgType::kHelloAck;
      // Negotiation answer, echoed ONLY to clients that advertised caps —
      // acks to legacy clients stay byte-identical to pre-negotiation
      // daemons. The transport itself was already chosen at dispatch.
      if ((m.intArg2 & msg::kHelloCapShm) != 0) {
        reply.intArg2 = negotiatedChoice(*session->transport);
      }
      if ((m.intArg2 & msg::kHelloCapVersion) != 0 && !m.ints.empty()) {
        // Protocol-version handshake: client advertises [min, max], the
        // daemon answers the highest version both sides speak. A client
        // whose floor is above this daemon's ceiling cannot proceed.
        const std::int64_t theirMin = m.ints[0];
        const std::int64_t theirMax =
            m.ints.size() > 1 ? m.ints[1] : m.ints[0];
        const std::int64_t chosen =
            std::min<std::int64_t>(msg::kProtocolVersionMax, theirMax);
        if (chosen < theirMin || chosen < msg::kProtocolVersionMin) {
          const Status st =
              errFailedPrecondition("dv: no protocol version overlap");
          reply.code = codeOf(st);
          reply.text = arena.copyString(st.message());
          break;
        }
        auto negotiated = arena.allocSpan<std::int64_t>(1);
        negotiated[0] = chosen;
        reply.ints = negotiated;
      }
      if (client != 0) {
        // Re-hello on a bound session would orphan the existing client
        // registration (pinned steps, waiters) — reject it instead.
        const Status st = errFailedPrecondition("dv: session already bound");
        reply.code = codeOf(st);
        reply.text = arena.copyString(st.message());
        break;
      }
      auto id = shard.clientConnect(std::string(m.context),
                                    session->replica.load());
      if (id.isOk()) {
        session->shard.store(static_cast<int>(shardIndex));
        session->client.store(*id);
        session->context.assign(m.context);  // single-worker access
        sv.byClient[*id] = session;
        // The transport may already have died: its close handler then saw
        // client == 0 and could not enqueue a disconnect, so the session
        // is marked defunct and this registration must be unwound here or
        // the DvShard client would leak forever.
        if (session->defunct.load()) {
          shard.clientDisconnect(*id);
          sv.byClient.erase(*id);
          session->client.store(0);
          sendReply = false;
          break;
        }
        reply.code = codeOf(Status::ok());
        reply.intArg = static_cast<std::int64_t>(*id);
        noteHelloTransport(*session->transport);
      } else {
        reply.code = codeOf(id.status());
        reply.text = arena.copyString(id.status().message());
      }
      break;
    }
    case msg::MsgType::kOpenReq: {
      reply.type = msg::MsgType::kOpenAck;
      if (m.files.empty()) {
        reply.code = codeOf(errInvalidArgument("open: no file"));
        break;
      }
      const auto res = shard.clientOpen(client, m.files[0]);
      reply.code = codeOf(res.status);
      if (!res.status.isOk()) reply.text = arena.copyString(res.status.message());
      reply.intArg = res.available ? 1 : 0;
      reply.intArg2 = res.estimatedWait;
      // Echo the filename: the request's arena copy is stable until the
      // reply has been flushed, so the span aliases it — no copy at all.
      reply.files = m.files.first(1);
      break;
    }
    case msg::MsgType::kOpenBatchReq: {
      // The vectored open: the whole batch resolves inside this one
      // message, i.e. under the single shard-lock acquisition its queue
      // drain already holds — N files, one round trip, one lock. The ack
      // carries a per-file outcome pair so the client can tell the
      // immediately-available subset from the steps being re-simulated.
      reply.type = msg::MsgType::kOpenBatchAck;
      if (m.requestId != 0) {
        // Dedup window: a batch resent under the same requestId (per-op
        // timeout retry; a rebind resend whose original delivery raced
        // through after all) already registered its interest — replay
        // the cached ack instead of double-registering. The copy into
        // the arena keeps the ref valid even if later requests in this
        // same batch rotate the cache slot.
        bool replayed = false;
        for (const auto& e : session->recentAcks) {
          if (e.requestId != m.requestId) continue;
          msg::MessageRef cached;
          cached.type = e.ack.type;
          cached.requestId = e.ack.requestId;
          cached.code = e.ack.code;
          cached.intArg = e.ack.intArg;
          cached.intArg2 = e.ack.intArg2;
          auto cachedInts = arena.allocSpan<std::int64_t>(e.ack.ints.size());
          std::copy(e.ack.ints.begin(), e.ack.ints.end(), cachedInts.begin());
          cached.ints = cachedInts;
          if (!e.ack.text.empty()) cached.text = arena.copyString(e.ack.text);
          sv.out.emplace_back(session, cached);
          replayed = true;
          break;
        }
        if (replayed) return;
      }
      // Client-supplied deadline budget travels relative (ns) in intArg2
      // and becomes an absolute shard deadline here, at dispatch — the
      // one clock that matters is the daemon's own.
      const VTime deadline =
          m.intArg2 > 0 ? clock_.now() + m.intArg2 : 0;
      Status worst = Status::ok();
      VDuration maxWait = 0;
      std::int64_t availableNow = 0;
      // Outcome pairs only, positional by request order — echoing the
      // filenames back would double the ack payload for nothing.
      auto ints = arena.allocSpan<std::int64_t>(2 * m.files.size());
      std::size_t at = 0;
      for (const auto f : m.files) {
        const auto res = shard.clientOpen(client, f, deadline);
        if (!res.status.isOk()) worst = res.status;
        if (res.available) ++availableNow;
        maxWait = std::max(maxWait, res.estimatedWait);
        ints[at++] = static_cast<std::int64_t>(res.status.code()) * 2 +
                     (res.available ? 1 : 0);
        ints[at++] = res.estimatedWait;
      }
      reply.ints = ints;
      reply.code = codeOf(worst);
      if (!worst.isOk()) reply.text = arena.copyString(worst.message());
      reply.intArg = availableNow;
      reply.intArg2 = maxWait;
      if (m.requestId != 0) {
        auto& e = session->recentAcks[session->recentAckNext];
        session->recentAckNext =
            (session->recentAckNext + 1) % session->recentAcks.size();
        e.requestId = m.requestId;
        e.ack.type = msg::MsgType::kOpenBatchAck;
        e.ack.requestId = m.requestId;
        e.ack.code = reply.code;
        e.ack.intArg = reply.intArg;
        e.ack.intArg2 = reply.intArg2;
        e.ack.ints.assign(ints.begin(), ints.end());
        e.ack.text.assign(reply.text);
      }
      break;
    }
    case msg::MsgType::kCancelReq: {
      // Abandoned acquire: free every piece of interest the batch still
      // holds. Per-file misses (already released, never opened) are
      // expected under races and fail soft — the ack reports how many
      // registrations were actually freed.
      reply.type = msg::MsgType::kCancelAck;
      std::int64_t freed = 0;
      for (const auto f : m.files) {
        if (shard.clientCancel(client, f).isOk()) ++freed;
      }
      reply.code = codeOf(Status::ok());
      reply.intArg = freed;
      // requestId 0 marks a fire-and-forget cancel (the DVLib default,
      // mirroring kCloseNotify): no ack is wanted.
      sendReply = m.requestId != 0;
      break;
    }
    case msg::MsgType::kAcquireReq: {
      reply.type = msg::MsgType::kAcquireAck;
      Status worst = Status::ok();
      VDuration maxWait = 0;
      auto ready = arena.allocSpan<std::string_view>(m.files.size());
      std::size_t nReady = 0;
      for (const auto f : m.files) {
        const auto res = shard.clientOpen(client, f);
        if (!res.status.isOk()) {
          worst = res.status;
          continue;
        }
        if (res.available) {
          ready[nReady++] = f;  // immediately ready subset
        } else {
          maxWait = std::max(maxWait, res.estimatedWait);
        }
      }
      reply.files = ready.first(nReady);
      reply.code = codeOf(worst);
      if (!worst.isOk()) reply.text = arena.copyString(worst.message());
      reply.intArg2 = maxWait;
      break;
    }
    case msg::MsgType::kCloseNotify: {
      if (!m.files.empty()) {
        (void)shard.clientRelease(client, m.files[0]);
      }
      sendReply = false;  // fire-and-forget (transparent-mode close)
      break;
    }
    case msg::MsgType::kReleaseReq: {
      // Batched like kOpenBatchReq: one message releases every file under
      // the single shard-lock acquisition this drain already holds.
      reply.type = msg::MsgType::kReleaseAck;
      Status worst = m.files.empty() ? errInvalidArgument("release: no file")
                                     : Status::ok();
      std::int64_t released = 0;
      for (const auto f : m.files) {
        const Status st = shard.clientRelease(client, f);
        if (st.isOk()) {
          ++released;
        } else {
          worst = st;
        }
      }
      reply.code = codeOf(worst);
      if (!worst.isOk()) reply.text = arena.copyString(worst.message());
      reply.intArg = released;
      break;
    }
    case msg::MsgType::kBitrepReq: {
      reply.type = msg::MsgType::kBitrepAck;
      if (m.files.empty()) {
        reply.code = codeOf(errInvalidArgument("bitrep: no file"));
        break;
      }
      const auto match = shard.clientBitrep(
          client, m.files[0], static_cast<std::uint64_t>(m.intArg));
      if (match.isOk()) {
        reply.code = codeOf(Status::ok());
        reply.intArg = *match ? 1 : 0;
      } else {
        reply.code = codeOf(match.status());
        reply.text = arena.copyString(match.status().message());
      }
      break;
    }
    case msg::MsgType::kSimFileClosed: {
      if (!m.files.empty()) {
        shard.simulationFileWritten(static_cast<SimJobId>(m.intArg),
                                    m.files[0]);
      }
      sendReply = false;
      break;
    }
    case msg::MsgType::kSimFinished: {
      Status st = m.code == 0 ? Status::ok()
                              : Status(static_cast<StatusCode>(m.code),
                                       std::string(m.text));
      shard.simulationFinished(static_cast<SimJobId>(m.intArg), st);
      sendReply = false;
      break;
    }
    default: {
      reply.type = msg::MsgType::kError;
      reply.code = codeOf(errInvalidArgument("unhandled message type"));
      break;
    }
  }
  if (sendReply) sv.out.emplace_back(session, reply);
}

// ------------------------------------------------------------- introspection

msg::Message Daemon::buildStatusReply(std::uint64_t requestId) const {
  msg::Message reply;
  reply.requestId = requestId;
  reply.type = msg::MsgType::kStatusAck;
  const auto s = core_.stats();
  reply.code = codeOf(Status::ok());
  reply.intArg = static_cast<std::int64_t>(s.stepsProduced);
  reply.text = str::format(
      "opens=%llu;hits=%llu;misses=%llu;jobs=%llu;demand=%llu;"
      "prefetch=%llu;killed=%llu;steps=%llu;evictions=%llu;"
      "notifications=%llu;agent_resets=%llu;waiters_expired=%llu",
      static_cast<unsigned long long>(s.opens),
      static_cast<unsigned long long>(s.hits),
      static_cast<unsigned long long>(s.misses),
      static_cast<unsigned long long>(s.jobsLaunched),
      static_cast<unsigned long long>(s.demandJobs),
      static_cast<unsigned long long>(s.prefetchJobs),
      static_cast<unsigned long long>(s.jobsKilled),
      static_cast<unsigned long long>(s.stepsProduced),
      static_cast<unsigned long long>(s.evictions),
      static_cast<unsigned long long>(s.notifications),
      static_cast<unsigned long long>(s.agentResets),
      static_cast<unsigned long long>(s.waitersExpired));
  for (const auto& name : core_.contextNames()) {
    reply.files.push_back(name);
  }
  return reply;
}

msg::Message Daemon::buildGeometryReply(std::uint64_t requestId,
                                        const std::string& context) const {
  msg::Message reply;
  reply.requestId = requestId;
  reply.type = msg::MsgType::kGeometryAck;
  reply.text = nodeId_;
  if (context.empty()) {
    // Enumeration form: the registered namespace roots.
    reply.code = codeOf(Status::ok());
    reply.files = core_.contextNames();
    reply.intArg = static_cast<std::int64_t>(reply.files.size());
    return reply;
  }
  const auto cfg = core_.contextConfig(context);
  if (!cfg) {
    const Status st = errNotFound("dv: no context: " + context);
    reply.code = codeOf(st);
    reply.text = st.message();
    return reply;
  }
  reply.code = codeOf(Status::ok());
  reply.context = context;
  reply.ints = {cfg->geometry.deltaD(), cfg->geometry.deltaR(),
                cfg->geometry.numTimesteps(),
                static_cast<std::int64_t>(cfg->outputStepBytes),
                static_cast<std::int64_t>(cfg->codec.padWidth())};
  reply.files = {cfg->codec.outputPrefix(), cfg->codec.outputSuffix()};
  reply.intArg = cfg->geometry.numOutputSteps();
  return reply;
}

std::vector<Daemon::ShardCounters> Daemon::shardCounters() const {
  std::vector<ShardCounters> out;
  out.reserve(serving_.size());
  for (std::size_t i = 0; i < serving_.size(); ++i) {
    const auto& sv = *serving_[i];
    ShardCounters c;
    c.shard = i;
    c.enqueued = sv.enqueued.load(std::memory_order_relaxed);
    c.served = sv.served.load(std::memory_order_relaxed);
    c.batches = sv.batches.load(std::memory_order_relaxed);
    c.maxBatch = sv.maxBatch.load(std::memory_order_relaxed);
    c.shed = sv.shed.load(std::memory_order_relaxed);
    {
      std::lock_guard lock(sv.qMutex);
      c.queued = sv.queue.size();
    }
    {
      std::lock_guard lock(core_.mutexOf(i));
      c.contexts = core_.shard(i).contextNames();
      c.residentSteps = core_.shard(i).residentSteps();
      const DvStats& s = core_.shard(i).stats();
      c.accesses = s.opens;
      c.misses = s.misses;
      c.resimSteps = s.stepsProduced;
      const LeaseCounters& lc = core_.shard(i).leaseCounters();
      c.replicaHits = lc.replicaHits;
      c.notLeased = lc.notLeased;
      c.leases = core_.shard(i).leaseViews();
      for (const auto& [name, v] : c.leases) {
        if (v.replica) c.leasedSteps += v.steps;
      }
    }
    out.push_back(std::move(c));
  }
  return out;
}

TuneWindow Daemon::tuneWindowOf(const ShardCounters& now,
                                const ShardCounters& prev) {
  TuneWindow w;
  w.accesses = now.accesses - prev.accesses;
  w.misses = now.misses - prev.misses;
  w.resimulatedSteps = now.resimSteps - prev.resimSteps;
  return w;
}

msg::Message Daemon::buildShardStatsReply(std::uint64_t requestId) const {
  msg::Message reply;
  reply.requestId = requestId;
  reply.type = msg::MsgType::kShardStatsAck;
  reply.code = codeOf(Status::ok());
  const auto counters = shardCounters();
  const auto fed = federationCounters();
  reply.intArg = static_cast<std::int64_t>(counters.size());
  // Contexts with un-acked eviction revokes, for `simfsctl cluster-status`.
  std::string revoking;
  {
    std::lock_guard lock(leaseMutex_);
    for (const auto& [name, eps] : pendingRevokes_) {
      if (!revoking.empty()) revoking += ',';
      revoking += name;
    }
  }
  if (revoking.empty()) revoking = "-";
  reply.text = str::format(
      "shards=%zu;workers=%zu;node=%s;ring=%zu;redirects=%llu;"
      "forwarded=%llu;forward_drops=%llu;pings=%llu;pongs=%llu;"
      "peers_suspect=%llu;peers_dead=%llu;"
      "conn_socket=%llu;conn_shm=%llu;conn_other=%llu;reactor=%.*s;"
      "replicas=%zu;lease_grants=%llu;lease_revokes=%llu;lease_acks=%llu;"
      "revoking=%s;proto=%lld;handoffs_inflight=%zu;handoffs_committed=%llu;"
      "handoffs_aborted=%llu",
      serving_.size(), workers_.size(),
      nodeId_.empty() ? "-" : nodeId_.c_str(), ringRef()->size(),
      static_cast<unsigned long long>(fed.redirects),
      static_cast<unsigned long long>(fed.forwarded),
      static_cast<unsigned long long>(fed.forwardDrops),
      static_cast<unsigned long long>(fed.pingsSent),
      static_cast<unsigned long long>(fed.pongsReceived),
      static_cast<unsigned long long>(fed.peersSuspect),
      static_cast<unsigned long long>(fed.peersDead),
      static_cast<unsigned long long>(
          connSocket_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(connShm_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          connOther_.load(std::memory_order_relaxed)),
      static_cast<int>(msg::reactorBackendName().size()),
      msg::reactorBackendName().data(),
      replicas_.load(std::memory_order_relaxed),
      static_cast<unsigned long long>(fed.leaseGrantsSent),
      static_cast<unsigned long long>(fed.leaseRevokesSent),
      static_cast<unsigned long long>(fed.leaseAcksReceived),
      revoking.c_str(),
      static_cast<long long>(msg::kProtocolVersionMax), fed.handoffsInflight,
      static_cast<unsigned long long>(fed.handoffsCommitted),
      static_cast<unsigned long long>(fed.handoffsAborted));
  for (const auto& c : counters) {
    std::string contexts;
    for (const auto& name : c.contexts) {
      if (!contexts.empty()) contexts += ',';
      contexts += name;
    }
    std::string leases;
    for (const auto& [name, v] : c.leases) {
      if (!leases.empty()) leases += ',';
      leases += str::format("%s:%llu:%zu:%c", name.c_str(),
                            static_cast<unsigned long long>(v.generation),
                            v.steps, v.replica ? 'r' : 'o');
    }
    if (leases.empty()) leases = "-";
    reply.files.push_back(str::format(
        "shard=%zu;contexts=%s;queued=%zu;enqueued=%llu;served=%llu;"
        "batches=%llu;max_batch=%llu;shed=%llu;resident_steps=%zu;"
        "accesses=%llu;misses=%llu;resim_steps=%llu;"
        "replica_hits=%llu;not_leased=%llu;leased_steps=%zu;leases=%s",
        c.shard, contexts.c_str(), c.queued,
        static_cast<unsigned long long>(c.enqueued),
        static_cast<unsigned long long>(c.served),
        static_cast<unsigned long long>(c.batches),
        static_cast<unsigned long long>(c.maxBatch),
        static_cast<unsigned long long>(c.shed), c.residentSteps,
        static_cast<unsigned long long>(c.accesses),
        static_cast<unsigned long long>(c.misses),
        static_cast<unsigned long long>(c.resimSteps),
        static_cast<unsigned long long>(c.replicaHits),
        static_cast<unsigned long long>(c.notLeased), c.leasedSteps,
        leases.c_str()));
  }
  return reply;
}

DvStats Daemon::stats() const { return core_.stats(); }

bool Daemon::isAvailable(const std::string& context, StepIndex step) const {
  return core_.isAvailable(context, step);
}

}  // namespace simfs::dv
