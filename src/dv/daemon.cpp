#include "dv/daemon.hpp"

#include "common/log.hpp"
#include "common/strings.hpp"

namespace simfs::dv {

namespace {
constexpr const char* kTag = "daemon";

std::int32_t codeOf(const Status& st) noexcept {
  return static_cast<std::int32_t>(st.code());
}
}  // namespace

/// One connected DVLib endpoint (analysis or simulator).
struct Daemon::Session {
  std::unique_ptr<msg::Transport> transport;
  ClientId client = 0;       ///< 0 until kHello completes (analysis role)
  bool isSimulator = false;
};

Daemon::Daemon() : core_(clock_) {
  core_.setNotifyFn([this](ClientId c, const std::string& f, const Status& s) {
    notifyClient(c, f, s);
  });
}

Daemon::~Daemon() { stop(); }

Status Daemon::registerContext(
    std::unique_ptr<simmodel::SimulationDriver> driver) {
  std::lock_guard lock(mutex_);
  return core_.registerContext(std::move(driver));
}

void Daemon::setLauncher(SimLauncher* launcher) {
  std::lock_guard lock(mutex_);
  core_.setLauncher(launcher);
}

void Daemon::setEvictFn(DataVirtualizer::EvictFn fn) {
  std::lock_guard lock(mutex_);
  core_.setEvictFn(std::move(fn));
}

Status Daemon::seedAvailableStep(const std::string& context, StepIndex step) {
  std::lock_guard lock(mutex_);
  return core_.seedAvailableStep(context, step);
}

Status Daemon::setChecksumMap(const std::string& context,
                              simmodel::ChecksumMap map) {
  std::lock_guard lock(mutex_);
  return core_.setChecksumMap(context, std::move(map));
}

void Daemon::serveTransport(std::unique_ptr<msg::Transport> transport) {
  auto session = std::make_unique<Session>();
  session->transport = std::move(transport);
  Session* raw = session.get();
  {
    std::lock_guard lock(mutex_);
    sessions_.push_back(std::move(session));
  }
  raw->transport->setCloseHandler([this, raw] {
    std::lock_guard lock(mutex_);
    if (raw->client != 0) {
      core_.clientDisconnect(raw->client);
      byClient_.erase(raw->client);
      raw->client = 0;
    }
  });
  raw->transport->setHandler(
      [this, raw](msg::Message&& m) { handleMessage(raw, std::move(m)); });
}

std::unique_ptr<msg::Transport> Daemon::connectInProc() {
  auto [serverEnd, clientEnd] = msg::makeInProcPair();
  serveTransport(std::move(serverEnd));
  return std::move(clientEnd);
}

Status Daemon::listen(const std::string& socketPath) {
  server_ = std::make_unique<msg::UnixSocketServer>(socketPath);
  return server_->start([this](std::unique_ptr<msg::Transport> conn) {
    serveTransport(std::move(conn));
  });
}

void Daemon::stop() {
  if (server_) server_->stop();
}

void Daemon::notifyClient(ClientId client, const std::string& file,
                          const Status& st) {
  // Called from within core_ (mutex held). Sends don't re-enter the core.
  const auto it = byClient_.find(client);
  if (it == byClient_.end()) return;
  msg::Message m;
  m.type = msg::MsgType::kFileReady;
  m.files = {file};
  m.code = codeOf(st);
  m.text = st.message();
  if (!it->second->transport->send(m).isOk()) {
    SIMFS_LOG_WARN(kTag, "client %llu unreachable",
                   static_cast<unsigned long long>(client));
  }
}

void Daemon::handleMessage(Session* session, msg::Message&& m) {
  msg::Message reply;
  reply.requestId = m.requestId;
  bool sendReply = true;

  std::lock_guard lock(mutex_);
  switch (m.type) {
    case msg::MsgType::kHello: {
      if (static_cast<msg::ClientRole>(m.intArg) ==
          msg::ClientRole::kSimulator) {
        session->isSimulator = true;
        reply.type = msg::MsgType::kHelloAck;
        reply.code = codeOf(Status::ok());
        break;
      }
      auto id = core_.clientConnect(m.context);
      reply.type = msg::MsgType::kHelloAck;
      if (id.isOk()) {
        session->client = *id;
        byClient_[*id] = session;
        reply.code = codeOf(Status::ok());
        reply.intArg = static_cast<std::int64_t>(*id);
      } else {
        reply.code = codeOf(id.status());
        reply.text = id.status().message();
      }
      break;
    }
    case msg::MsgType::kOpenReq: {
      reply.type = msg::MsgType::kOpenAck;
      if (m.files.empty()) {
        reply.code = codeOf(errInvalidArgument("open: no file"));
        break;
      }
      const auto res = core_.clientOpen(session->client, m.files[0]);
      reply.code = codeOf(res.status);
      reply.text = res.status.message();
      reply.intArg = res.available ? 1 : 0;
      reply.intArg2 = res.estimatedWait;
      reply.files = {m.files[0]};
      break;
    }
    case msg::MsgType::kAcquireReq: {
      reply.type = msg::MsgType::kAcquireAck;
      Status worst = Status::ok();
      VDuration maxWait = 0;
      for (const auto& f : m.files) {
        const auto res = core_.clientOpen(session->client, f);
        if (!res.status.isOk()) {
          worst = res.status;
          continue;
        }
        if (res.available) {
          reply.files.push_back(f);  // immediately ready subset
        } else {
          maxWait = std::max(maxWait, res.estimatedWait);
        }
      }
      reply.code = codeOf(worst);
      reply.text = worst.message();
      reply.intArg2 = maxWait;
      break;
    }
    case msg::MsgType::kCloseNotify: {
      if (!m.files.empty()) {
        (void)core_.clientRelease(session->client, m.files[0]);
      }
      sendReply = false;  // fire-and-forget (transparent-mode close)
      break;
    }
    case msg::MsgType::kReleaseReq: {
      reply.type = msg::MsgType::kReleaseAck;
      Status st = m.files.empty()
                      ? errInvalidArgument("release: no file")
                      : core_.clientRelease(session->client, m.files[0]);
      reply.code = codeOf(st);
      reply.text = st.message();
      break;
    }
    case msg::MsgType::kBitrepReq: {
      reply.type = msg::MsgType::kBitrepAck;
      if (m.files.empty()) {
        reply.code = codeOf(errInvalidArgument("bitrep: no file"));
        break;
      }
      const auto match = core_.clientBitrep(
          session->client, m.files[0], static_cast<std::uint64_t>(m.intArg));
      if (match.isOk()) {
        reply.code = codeOf(Status::ok());
        reply.intArg = *match ? 1 : 0;
      } else {
        reply.code = codeOf(match.status());
        reply.text = match.status().message();
      }
      break;
    }
    case msg::MsgType::kSimFileClosed: {
      if (!m.files.empty()) {
        core_.simulationFileWritten(static_cast<SimJobId>(m.intArg),
                                    m.files[0]);
      }
      sendReply = false;
      break;
    }
    case msg::MsgType::kStatusReq: {
      reply.type = msg::MsgType::kStatusAck;
      const auto& s = core_.stats();
      reply.code = codeOf(Status::ok());
      reply.intArg = static_cast<std::int64_t>(s.stepsProduced);
      reply.text = str::format(
          "opens=%llu;hits=%llu;misses=%llu;jobs=%llu;demand=%llu;"
          "prefetch=%llu;killed=%llu;steps=%llu;evictions=%llu;"
          "notifications=%llu;agent_resets=%llu",
          static_cast<unsigned long long>(s.opens),
          static_cast<unsigned long long>(s.hits),
          static_cast<unsigned long long>(s.misses),
          static_cast<unsigned long long>(s.jobsLaunched),
          static_cast<unsigned long long>(s.demandJobs),
          static_cast<unsigned long long>(s.prefetchJobs),
          static_cast<unsigned long long>(s.jobsKilled),
          static_cast<unsigned long long>(s.stepsProduced),
          static_cast<unsigned long long>(s.evictions),
          static_cast<unsigned long long>(s.notifications),
          static_cast<unsigned long long>(s.agentResets));
      for (const auto& name : core_.contextNames()) {
        reply.files.push_back(name);
      }
      break;
    }
    case msg::MsgType::kSimFinished: {
      Status st = m.code == 0 ? Status::ok()
                              : Status(static_cast<StatusCode>(m.code), m.text);
      core_.simulationFinished(static_cast<SimJobId>(m.intArg), st);
      sendReply = false;
      break;
    }
    default: {
      reply.type = msg::MsgType::kError;
      reply.code = codeOf(errInvalidArgument("unhandled message type"));
      break;
    }
  }
  if (sendReply) (void)session->transport->send(reply);
}

void Daemon::simulationStarted(SimJobId job) {
  std::lock_guard lock(mutex_);
  core_.simulationStarted(job);
}

void Daemon::simulationFileWritten(SimJobId job, const std::string& file) {
  std::lock_guard lock(mutex_);
  core_.simulationFileWritten(job, file);
}

void Daemon::simulationFinished(SimJobId job, const Status& status) {
  std::lock_guard lock(mutex_);
  core_.simulationFinished(job, status);
}

DvStats Daemon::stats() const {
  std::lock_guard lock(mutex_);
  return core_.stats();
}

bool Daemon::isAvailable(const std::string& context, StepIndex step) const {
  std::lock_guard lock(mutex_);
  return core_.isAvailable(context, step);
}

}  // namespace simfs::dv
