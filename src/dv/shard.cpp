#include "dv/shard.hpp"

#include "common/log.hpp"
#include "common/strings.hpp"

#include <algorithm>
#include <cassert>

namespace simfs::dv {

namespace {
constexpr const char* kTag = "dv";
}  // namespace

DvShard::ContextState::ContextState(
    std::unique_ptr<simmodel::SimulationDriver> d)
    : driver(std::move(d)),
      area(driver->config().name, driver->config().cacheQuotaBytes),
      cache(cache::makeCache(driver->config().policy,
                             driver->config().cacheCapacitySteps())) {}

DvShard::DvShard(const Clock& clock, ClientId firstClientId,
                 SimJobId firstJobId, std::uint64_t idStride)
    : clock_(clock),
      nextClient_(firstClientId),
      nextJob_(firstJobId),
      idStride_(idStride) {
  SIMFS_CHECK(idStride_ > 0);
  SIMFS_CHECK(firstClientId > 0);
  SIMFS_CHECK(firstJobId > 0);
}

DvShard::~DvShard() = default;

Status DvShard::registerContext(
    std::unique_ptr<simmodel::SimulationDriver> driver) {
  SIMFS_CHECK(driver != nullptr);
  const std::string name = driver->config().name;
  if (contexts_.count(name) > 0) {
    return errAlreadyExists("dv: context exists: " + name);
  }
  contexts_.emplace(name, std::make_unique<ContextState>(std::move(driver)));
  SIMFS_LOG_INFO(kTag, "registered context '%s'", name.c_str());
  return Status::ok();
}

Status DvShard::seedAvailableStep(const std::string& context, StepIndex step) {
  auto* ctx = findContext(context);
  if (ctx == nullptr) return errNotFound("dv: no context: " + context);
  const auto& cfg = ctx->driver->config();
  if (!cfg.geometry.validStep(step)) {
    return errOutOfRange(str::format("dv: step %lld outside timeline",
                                     static_cast<long long>(step)));
  }
  auto& fs = ctx->files[step];
  if (fs.kind == FileState::Kind::kAvailable) return Status::ok();
  if (!fs.waiters.empty()) {
    // Seeding over a pending step: it stops being owed, so release the
    // registered producer's waited-step counter (prefetch-kill decisions
    // read it) exactly as makeAvailable would.
    const auto jit = jobs_.find(fs.producer);
    if (jit != jobs_.end()) --jit->second.waitedSteps;
  }
  fs.kind = FileState::Kind::kAvailable;
  fs.producer = 0;
  (void)ctx->area.addStep(step, cfg.outputStepBytes);
  emitLeaseGrant(*ctx, step);
  processEvictions(*ctx, ctx->cache->insert(
                             step, static_cast<double>(
                                       cfg.geometry.missCostSteps(step))));
  return Status::ok();
}

Status DvShard::setChecksumMap(const std::string& context,
                               simmodel::ChecksumMap map) {
  auto* ctx = findContext(context);
  if (ctx == nullptr) return errNotFound("dv: no context: " + context);
  ctx->checksums = std::move(map);
  return Status::ok();
}

Result<ClientId> DvShard::clientConnect(const std::string& context,
                                        bool replica) {
  auto* ctx = findContext(context);
  if (ctx == nullptr) return errNotFound("dv: no context: " + context);
  const ClientId id = nextClient_;
  nextClient_ += idStride_;
  ClientInfo info;
  info.id = id;
  info.ctx = ctx;
  info.replica = replica;
  info.agent = std::make_unique<prefetch::PrefetchAgent>(ctx->driver->config());
  const auto it = clients_.emplace(id, std::move(info)).first;
  ctx->clients.push_back(&it->second);
  SIMFS_LOG_DEBUG(kTag, "client %llu connected to '%s'",
                  static_cast<unsigned long long>(id), context.c_str());
  return id;
}

void DvShard::clientDisconnect(ClientId client) {
  auto* info = findClient(client);
  if (info == nullptr) return;
  auto* ctx = info->ctx;
  SIMFS_CHECK(ctx != nullptr);
  // Drop every reference the client still holds (replica refs are pure
  // lease accounting — there is no pinned cache slot behind them).
  if (!info->replica) {
    for (const auto& [step, count] : info->refs) {
      for (int i = 0; i < count; ++i) ctx->cache->unpin(step);
    }
  }
  // Remove it from the waiter lists it is actually enqueued on.
  for (const StepIndex step : info->waitingSteps) {
    const auto fit = ctx->files.find(step);
    if (fit == ctx->files.end()) continue;
    auto& fs = fit->second;
    const bool hadWaiters = !fs.waiters.empty();
    std::erase_if(fs.waiters,
                  [client](const Waiter& w) { return w.client == client; });
    if (hadWaiters && fs.waiters.empty() &&
        fs.kind == FileState::Kind::kPending) {
      const auto jit = jobs_.find(fs.producer);
      if (jit != jobs_.end()) --jit->second.waitedSteps;
    }
  }
  info->waitingSteps.clear();
  killUnneededPrefetches(client);
  ctx->clients.erase(
      std::remove(ctx->clients.begin(), ctx->clients.end(), info),
      ctx->clients.end());
  clients_.erase(client);
}

OpenResult DvShard::clientOpen(ClientId client, std::string_view file,
                               VTime deadline) {
  OpenResult res;
  auto* info = findClient(client);
  if (info == nullptr) {
    res.status = errFailedPrecondition("dv: unknown client");
    return res;
  }
  if (info->replica) return replicaOpen(*info, file);
  ContextState* ctx = info->ctx;
  SIMFS_CHECK(ctx != nullptr);
  const auto& cfg = ctx->driver->config();

  // Restart files are always kept on disk (they are SimFS's fixed storage
  // investment); opening one succeeds immediately.
  if (cfg.codec.isRestartFile(file)) {
    res.status = Status::ok();
    res.available = true;
    return res;
  }

  // The one and only filename parse of this request.
  const auto key = ctx->driver->key(file);
  if (!key) {
    res.status = key.status();
    return res;
  }
  const StepIndex step = *key;
  if (!cfg.geometry.validStep(step)) {
    res.status = errOutOfRange("dv: step outside timeline: " + std::string(file));
    return res;
  }

  ++stats_.opens;
  bool hit = false;
  bool servedBySim = false;

  const auto fit = ctx->files.find(step);
  if (fit != ctx->files.end() && fit->second.kind == FileState::Kind::kAvailable) {
    hit = true;
    ++stats_.hits;
    // Touch the replacement policy and take a reference (one probe).
    const auto outcome = ctx->cache->accessAndPin(
        step, static_cast<double>(cfg.geometry.missCostSteps(step)));
    SIMFS_CHECK(outcome.hit);
    ++info->refs[step];
    res.status = Status::ok();
    res.available = true;
  } else if (fit != ctx->files.end()) {
    // Pending: some job is already producing it.
    ++stats_.misses;
    servedBySim = true;
    addWaiter(*ctx, step, fit->second, *info, deadline);
    const auto jit = jobs_.find(fit->second.producer);
    res.status = Status::ok();
    res.available = false;
    res.estimatedWait =
        jit == jobs_.end() ? 0 : estimateWait(*ctx, jit->second, step);
  } else if (launcher_ == nullptr) {
    // Launcher detached (fleet shut down): requests that would need a
    // re-simulation fail soft instead of aborting.
    ++stats_.misses;
    res.status = errUnavailable("dv: launcher detached");
    return res;
  } else {
    // Missing: start the demand re-simulation from R(d_i) until at least
    // the next restart step (Sec. II-A).
    ++stats_.misses;
    const auto& geom = cfg.geometry;
    const StepIndex start =
        geom.firstStepAtOrAfterRestart(geom.restartFor(step));
    StepIndex stop = geom.lastStepOfRunUntil(geom.nextRestartAfter(step));
    if (geom.numTimesteps() > 0) {
      stop = std::min<StepIndex>(stop, geom.numOutputSteps() - 1);
    }
    const SimJobId job =
        launchJob(*ctx, start, stop, info->agent->parallelismLevel(),
                  JobPurpose::kDemand, client);
    ++stats_.demandJobs;
    info->agent->onJobLaunched(start, stop, /*prefetched=*/false);
    auto& fs = ctx->files[step];
    fs.kind = FileState::Kind::kPending;
    fs.producer = job;
    addWaiter(*ctx, step, fs, *info, deadline);
    const auto jit = jobs_.find(job);
    res.status = Status::ok();
    res.available = false;
    res.estimatedWait =
        jit == jobs_.end() ? 0 : estimateWait(*ctx, jit->second, step);
  }

  const auto actions =
      info->agent->onAccess(step, clock_.now(), hit, servedBySim);
  applyAgentActions(*ctx, *info, actions);
  return res;
}

OpenResult DvShard::replicaOpen(ClientInfo& info, std::string_view file) {
  OpenResult res;
  ContextState* ctx = info.ctx;
  SIMFS_CHECK(ctx != nullptr);
  const auto& cfg = ctx->driver->config();
  // Restart files are on every node's disk by the paper's storage model.
  if (cfg.codec.isRestartFile(file)) {
    res.status = Status::ok();
    res.available = true;
    return res;
  }
  const auto key = ctx->driver->key(file);
  if (!key) {
    res.status = key.status();
    return res;
  }
  if (ctx->leased.count(*key) > 0) {
    // Leased and resident at the owner: serve locally. No cache pin (the
    // replica's cache holds nothing), no prefetch agent, no allocation.
    ++leaseCounters_.replicaHits;
    ++info.refs[*key];
    res.status = Status::ok();
    res.available = true;
    return res;
  }
  // Not covered (miss, write trigger, or the lease was just revoked):
  // bounce to the owner. The empty message keeps this path alloc-free.
  ++leaseCounters_.notLeased;
  res.status = Status(StatusCode::kNotLeased, std::string());
  return res;
}

void DvShard::addWaiter(ContextState& /*ctx*/, StepIndex step, FileState& fs,
                        ClientInfo& client, VTime deadline) {
  fs.waiters.push_back(Waiter{client.id, deadline});
  client.waitingSteps.push_back(step);
  if (fs.waiters.size() == 1 && fs.kind == FileState::Kind::kPending) {
    const auto jit = jobs_.find(fs.producer);
    if (jit != jobs_.end()) ++jit->second.waitedSteps;
  }
}

Status DvShard::clientRelease(ClientId client, std::string_view file) {
  auto* info = findClient(client);
  if (info == nullptr) return errFailedPrecondition("dv: unknown client");
  ContextState* ctx = info->ctx;
  SIMFS_CHECK(ctx != nullptr);
  // Same parse seam as clientOpen: the driver's key() is the authority
  // (its default is the allocation-free codec fast path).
  const auto key = ctx->driver->key(file);
  if (!key) return errFailedPrecondition("dv: release without open: " + std::string(file));
  const StepIndex step = *key;
  const auto rit = info->refs.find(step);
  if (rit == info->refs.end() || rit->second <= 0) {
    return errFailedPrecondition("dv: release without open: " + std::string(file));
  }
  --rit->second;  // zero-count entries linger: keeps the hot path node-free
  if (!info->replica) ctx->cache->unpin(step);
  return Status::ok();
}

Status DvShard::clientCancel(ClientId client, std::string_view file) {
  auto* info = findClient(client);
  if (info == nullptr) return errFailedPrecondition("dv: unknown client");
  ContextState* ctx = info->ctx;
  SIMFS_CHECK(ctx != nullptr);
  if (ctx->driver->config().codec.isRestartFile(file)) {
    return Status::ok();  // restart opens register nothing to cancel
  }
  const auto key = ctx->driver->key(file);
  if (!key) return errFailedPrecondition("dv: cancel without open: " + std::string(file));
  const StepIndex step = *key;

  // Still pending: the open registered this client as a waiter. Remove
  // exactly ONE entry (overlapping acquires enqueue one entry each) and
  // keep the producing job's waited-step counter consistent, mirroring
  // clientDisconnect's per-step unwind.
  const auto fit = ctx->files.find(step);
  if (fit != ctx->files.end() &&
      fit->second.kind == FileState::Kind::kPending) {
    auto& fs = fit->second;
    const auto wit =
        std::find_if(fs.waiters.begin(), fs.waiters.end(),
                     [client](const Waiter& w) { return w.client == client; });
    if (wit != fs.waiters.end()) {
      fs.waiters.erase(wit);
      const auto pos = std::find(info->waitingSteps.begin(),
                                 info->waitingSteps.end(), step);
      if (pos != info->waitingSteps.end()) {
        *pos = info->waitingSteps.back();
        info->waitingSteps.pop_back();
      }
      if (fs.waiters.empty()) {
        const auto jit = jobs_.find(fs.producer);
        if (jit != jobs_.end()) --jit->second.waitedSteps;
      }
      // The waiter is gone: a prefetch nobody else waits for is now a
      // kill candidate again.
      killUnneededPrefetches(client);
      return Status::ok();
    }
  }

  // Already delivered (available at open time, or the notification won
  // the race against this cancel): the open holds a reference — drop it.
  const auto rit = info->refs.find(step);
  if (rit != info->refs.end() && rit->second > 0) {
    --rit->second;
    if (!info->replica) ctx->cache->unpin(step);
    return Status::ok();
  }
  return errFailedPrecondition("dv: cancel without open: " + std::string(file));
}

Result<bool> DvShard::clientBitrep(ClientId client, std::string_view file,
                                   std::uint64_t digest) {
  auto* info = findClient(client);
  if (info == nullptr) return errFailedPrecondition("dv: unknown client");
  ContextState* ctx = info->ctx;
  SIMFS_CHECK(ctx != nullptr);
  return ctx->checksums.matches(std::string(file), digest);
}

SimJobId DvShard::launchJob(ContextState& ctx, StepIndex start, StepIndex stop,
                            int level, JobPurpose purpose, ClientId owner) {
  SIMFS_CHECK(launcher_ != nullptr);
  const auto& cfg = ctx.driver->config();
  // Align the start onto its restart step: the simulator can only begin
  // from a restart file.
  const StepIndex alignedStart =
      cfg.geometry.firstStepAtOrAfterRestart(cfg.geometry.restartFor(start));
  stop = std::max(stop, start);

  const SimJobId id = nextJob_;
  nextJob_ += idStride_;
  JobInfo job;
  job.id = id;
  job.ctx = &ctx;
  job.startStep = alignedStart;
  job.stopStep = stop;
  job.level = level;
  job.purpose = purpose;
  job.owner = owner;
  job.launchTime = clock_.now();
  jobs_.emplace(id, job);
  ++ctx.running;
  ++stats_.jobsLaunched;

  // Every not-yet-available step in the range becomes pending under this
  // job (steps already pending keep their first producer).
  for (StepIndex s = alignedStart; s <= stop; ++s) {
    if (!cfg.geometry.validStep(s)) break;
    auto [it, inserted] = ctx.files.try_emplace(s);
    if (inserted) {
      it->second.kind = FileState::Kind::kPending;
      it->second.producer = id;
    }
  }

  launcher_->launch(id, ctx.driver->makeJob(alignedStart, stop, level));
  SIMFS_LOG_DEBUG(kTag, "job %llu launched [%lld, %lld] level=%d %s",
                  static_cast<unsigned long long>(id),
                  static_cast<long long>(alignedStart),
                  static_cast<long long>(stop), level,
                  purpose == JobPurpose::kDemand ? "demand" : "prefetch");
  return id;
}

void DvShard::applyAgentActions(ContextState& ctx, ClientInfo& client,
                                const prefetch::AgentActions& actions) {
  if (actions.pollutionDetected) {
    // Sec. IV-C: produced-then-evicted before use. Reset every agent.
    ++stats_.agentResets;
    SIMFS_LOG_DEBUG(kTag, "cache pollution detected; resetting agents");
    for (ClientInfo* ci : ctx.clients) ci->agent->reset();
  }
  if (actions.trajectoryAbandoned) {
    killUnneededPrefetches(client.id);
  }
  if (launcher_ == nullptr) return;  // detached: nothing left to prefetch into
  const int sMax = ctx.driver->config().sMax;
  for (const auto& req : actions.launches) {
    if (ctx.running >= sMax) break;  // s_max clamps prefetch depth
    const SimJobId job = launchJob(ctx, req.startStep, req.stopStep,
                                   req.parallelismLevel, JobPurpose::kPrefetch,
                                   client.id);
    ++stats_.prefetchJobs;
    client.prefetchJobs.push_back(job);  // ids ascend: list stays sorted
    // Report the job range actually launched (start is restart-aligned).
    const auto& info = jobs_.at(job);
    client.agent->onJobLaunched(info.startStep, info.stopStep,
                                /*prefetched=*/true);
  }
}

void DvShard::simulationStarted(SimJobId job) {
  const auto it = jobs_.find(job);
  if (it == jobs_.end()) return;
  it->second.phase = JobPhase::kRunning;
}

void DvShard::simulationFileWritten(SimJobId job, std::string_view file) {
  const auto it = jobs_.find(job);
  if (it == jobs_.end()) return;  // late event from a killed job
  auto& info = it->second;
  ContextState* ctx = info.ctx;
  SIMFS_CHECK(ctx != nullptr);
  // The one and only filename parse of this event.
  const auto key = ctx->driver->key(file);
  if (!key) {
    SIMFS_LOG_WARN(kTag, "simulator wrote unparsable file '%s'",
                    std::string(file).c_str());
    return;
  }
  ++stats_.stepsProduced;

  const VTime now = clock_.now();
  const auto tauCfg = ctx->driver->config().perf.at(info.level).tauSim;
  if (!info.firstFileSeen) {
    info.firstFileSeen = true;
    // Observed restart latency: launch -> first file, minus the one
    // production interval the first file itself took (Sec. IV-C1c).
    const VDuration alpha =
        std::max<VDuration>(0, (now - info.launchTime) - tauCfg);
    for (ClientInfo* ci : ctx->clients) ci->agent->observeRestartLatency(alpha);
  } else {
    const VDuration tau = now - info.lastFileTime;
    if (tau > 0) {
      for (ClientInfo* ci : ctx->clients) ci->agent->observeTauSim(tau);
    }
  }
  info.lastFileTime = now;

  makeAvailable(*ctx, *key, job);
}

void DvShard::makeAvailable(ContextState& ctx, StepIndex step,
                            SimJobId producer) {
  const auto& cfg = ctx.driver->config();
  if (!cfg.geometry.validStep(step)) return;

  auto [it, inserted] = ctx.files.try_emplace(step);
  auto& fs = it->second;
  if (!inserted && fs.kind == FileState::Kind::kAvailable) {
    return;  // overwrite of an existing file: nothing changes
  }
  if (!inserted && fs.kind == FileState::Kind::kPending && !fs.waiters.empty()) {
    // The step stops being owed: release the registered producer's counter
    // (which may differ from the job that actually wrote the file).
    const auto jit = jobs_.find(fs.producer);
    if (jit != jobs_.end()) --jit->second.waitedSteps;
  }
  fs.kind = FileState::Kind::kAvailable;
  fs.producer = producer;

  (void)ctx.area.addStep(step, cfg.outputStepBytes);
  emitLeaseGrant(ctx, step);
  const auto evicted = ctx.cache->insert(
      step, static_cast<double>(cfg.geometry.missCostSteps(step)));

  // Wake the waiters: each takes its reference now. The filename is
  // materialized once, and only when someone needs to hear about it.
  if (!fs.waiters.empty()) {
    std::vector<Waiter> waiters;
    waiters.swap(fs.waiters);
    const std::string file = cfg.codec.outputFile(step);
    for (const Waiter& w : waiters) {
      auto* wi = findClient(w.client);
      if (wi == nullptr) continue;
      ctx.cache->pin(step);
      ++wi->refs[step];
      // One enqueue entry per notification: prune exactly one.
      const auto pos = std::find(wi->waitingSteps.begin(),
                                 wi->waitingSteps.end(), step);
      if (pos != wi->waitingSteps.end()) {
        *pos = wi->waitingSteps.back();
        wi->waitingSteps.pop_back();
      }
      ++stats_.notifications;
      if (notify_) notify_(w.client, file, Status::ok());
    }
  }

  processEvictions(ctx, evicted);
}

void DvShard::processEvictions(ContextState& ctx,
                               const std::vector<StepIndex>& evicted) {
  const auto& cfg = ctx.driver->config();
  // Revoke-before-mutate: the lease revocation leaves this node before
  // any evicted step is erased or unlinked. The generation bumps past
  // every grant emitted so far, fencing off stale in-flight grants.
  if (lease_ && !evicted.empty()) {
    ctx.leaseIsOwner = true;
    ++ctx.leaseGen;
    ++leaseCounters_.revokesEmitted;
    lease_(cfg.name, ctx.leaseGen, evicted, /*revoke=*/true);
  }
  for (const StepIndex step : evicted) {
    ++stats_.evictions;
    ctx.files.erase(step);
    (void)ctx.area.removeStep(step);
    if (evict_) evict_(cfg.name, cfg.codec.outputFile(step));
  }
}

void DvShard::emitLeaseGrant(ContextState& ctx, StepIndex step) {
  if (!lease_) return;
  ctx.leaseIsOwner = true;
  ++leaseCounters_.grantsEmitted;
  lease_(ctx.driver->config().name, ctx.leaseGen, {step}, /*revoke=*/false);
}

Status DvShard::applyLeaseGrant(const std::string& context,
                                std::uint64_t generation,
                                std::span<const std::int64_t> steps) {
  auto* ctx = findContext(context);
  if (ctx == nullptr) return errNotFound("dv: no context: " + context);
  if (generation < ctx->leaseGen && ctx->leaseIsReplica) {
    return Status::ok();  // stale grant behind a revoke: inert by the fence
  }
  ctx->leaseIsReplica = true;
  ctx->leaseGen = std::max(ctx->leaseGen, generation);
  for (const std::int64_t s : steps) {
    ctx->leased.insert(static_cast<StepIndex>(s));
  }
  ++leaseCounters_.grantsApplied;
  return Status::ok();
}

Status DvShard::applyLeaseRevoke(const std::string& context,
                                 std::uint64_t generation,
                                 std::span<const std::int64_t> steps) {
  auto* ctx = findContext(context);
  if (ctx == nullptr) return errNotFound("dv: no context: " + context);
  if (generation < ctx->leaseGen && ctx->leaseIsReplica) {
    return Status::ok();  // already past this fence
  }
  ctx->leaseIsReplica = true;
  ctx->leaseGen = std::max(ctx->leaseGen, generation);
  if (steps.empty()) {
    ctx->leased.clear();  // whole-context revoke (peer-link resync)
  } else {
    for (const std::int64_t s : steps) {
      ctx->leased.erase(static_cast<StepIndex>(s));
    }
  }
  ++leaseCounters_.revokesApplied;
  return Status::ok();
}

void DvShard::simulationFinished(SimJobId job, const Status& status) {
  const auto it = jobs_.find(job);
  if (it == jobs_.end()) return;
  auto& info = it->second;
  ContextState* ctx = info.ctx;
  SIMFS_CHECK(ctx != nullptr);
  if (info.phase == JobPhase::kQueued || info.phase == JobPhase::kRunning) {
    --ctx->running;
  }
  info.phase = status.isOk() ? JobPhase::kFinished : JobPhase::kFailed;

  if (!status.isOk()) {
    // Propagate restart failure to everything this job owed (Sec. III-C2:
    // the SIMFS_Status carries error states such as "restart failed").
    for (StepIndex s = info.startStep; s <= info.stopStep; ++s) {
      const auto fit = ctx->files.find(s);
      if (fit == ctx->files.end() ||
          fit->second.kind != FileState::Kind::kPending ||
          fit->second.producer != job) {
        continue;
      }
      if (!fit->second.waiters.empty()) {
        const std::string file = ctx->driver->config().codec.outputFile(s);
        for (const Waiter& w : fit->second.waiters) {
          ++stats_.notifications;
          if (notify_) notify_(w.client, file, status);
          // Mirror makeAvailable: one waitingSteps entry per notification.
          if (auto* wi = findClient(w.client); wi != nullptr) {
            const auto pos = std::find(wi->waitingSteps.begin(),
                                       wi->waitingSteps.end(), s);
            if (pos != wi->waitingSteps.end()) {
              *pos = wi->waitingSteps.back();
              wi->waitingSteps.pop_back();
            }
          }
        }
      }
      ctx->files.erase(fit);
    }
    SIMFS_LOG_WARN(kTag, "job %llu failed: %s",
                   static_cast<unsigned long long>(job),
                   status.toString().c_str());
  }
  forgetOwnedJob(info);
  jobs_.erase(it);
}

void DvShard::forgetOwnedJob(const JobInfo& job) {
  if (job.purpose != JobPurpose::kPrefetch) return;
  auto* owner = findClient(job.owner);
  if (owner != nullptr) std::erase(owner->prefetchJobs, job.id);
}

void DvShard::killUnneededPrefetches(ClientId client) {
  auto* info = findClient(client);
  if (info == nullptr) return;
  std::vector<SimJobId> toKill;
  for (const SimJobId id : info->prefetchJobs) {
    const auto jit = jobs_.find(id);
    if (jit == jobs_.end()) continue;
    const auto& job = jit->second;
    if (job.phase != JobPhase::kQueued && job.phase != JobPhase::kRunning) {
      continue;
    }
    // Killable only if no analysis waits for any step it still owes —
    // an O(1) counter check instead of scanning the job's step range.
    if (job.waitedSteps == 0) toKill.push_back(id);
  }
  for (const SimJobId id : toKill) {
    killJob(id);
    SIMFS_LOG_DEBUG(kTag, "killed prefetch job %llu",
                    static_cast<unsigned long long>(id));
  }
}

void DvShard::killJob(SimJobId id) {
  const auto jit = jobs_.find(id);
  if (jit == jobs_.end()) return;
  JobInfo& job = jit->second;
  if (job.phase != JobPhase::kQueued && job.phase != JobPhase::kRunning) {
    return;
  }
  ContextState* ctx = job.ctx;
  SIMFS_CHECK(ctx != nullptr);
  // A detached launcher (fleet already shut down) has no jobs left to
  // kill; the bookkeeping below still has to be unwound.
  if (launcher_ != nullptr) launcher_->kill(id);
  // Steps it still owed revert to missing.
  for (StepIndex s = job.startStep; s <= job.stopStep; ++s) {
    const auto fit = ctx->files.find(s);
    if (fit != ctx->files.end() &&
        fit->second.kind == FileState::Kind::kPending &&
        fit->second.producer == id) {
      ctx->files.erase(fit);
    }
  }
  --ctx->running;
  ++stats_.jobsKilled;
  forgetOwnedJob(job);
  jobs_.erase(jit);
}

std::size_t DvShard::reapExpiredWaiters(VTime now) {
  std::size_t reaped = 0;
  // Producers whose last owed waited step expired in THIS sweep. Only
  // those are kill candidates: a job at waitedSteps == 0 because its
  // waiters were already satisfied is healthy read-ahead, not abandoned.
  std::vector<SimJobId> abandoned;
  for (auto& [name, ctxPtr] : contexts_) {
    ContextState& ctx = *ctxPtr;
    const auto& cfg = ctx.driver->config();
    for (auto& [step, fs] : ctx.files) {
      if (fs.kind != FileState::Kind::kPending || fs.waiters.empty()) {
        continue;
      }
      std::string file;  // materialized once, only if something expired
      bool removed = false;
      for (std::size_t i = 0; i < fs.waiters.size();) {
        const Waiter w = fs.waiters[i];
        if (w.deadline == 0 || w.deadline > now) {
          ++i;
          continue;
        }
        fs.waiters[i] = fs.waiters.back();
        fs.waiters.pop_back();
        removed = true;
        ++reaped;
        ++stats_.waitersExpired;
        if (auto* wi = findClient(w.client); wi != nullptr) {
          const auto pos = std::find(wi->waitingSteps.begin(),
                                     wi->waitingSteps.end(), step);
          if (pos != wi->waitingSteps.end()) {
            *pos = wi->waitingSteps.back();
            wi->waitingSteps.pop_back();
          }
        }
        if (file.empty()) file = cfg.codec.outputFile(step);
        ++stats_.notifications;
        if (notify_) notify_(w.client, file, errTimedOut("dv: open deadline expired"));
      }
      if (removed && fs.waiters.empty()) {
        const auto jit = jobs_.find(fs.producer);
        if (jit != jobs_.end() && --jit->second.waitedSteps == 0 &&
            (jit->second.phase == JobPhase::kQueued ||
             jit->second.phase == JobPhase::kRunning)) {
          abandoned.push_back(fs.producer);
        }
      }
    }
  }
  for (const SimJobId id : abandoned) {
    killJob(id);
    SIMFS_LOG_DEBUG(kTag, "killed abandoned job %llu (all waiters expired)",
                    static_cast<unsigned long long>(id));
  }
  return reaped;
}

VDuration DvShard::estimateWait(const ContextState& ctx, const JobInfo& job,
                                StepIndex step) const {
  const auto& perf = ctx.driver->config().perf.at(job.level);
  const std::int64_t stepsToGo = std::max<std::int64_t>(step - job.startStep + 1, 1);
  const VTime eta = job.launchTime + perf.alphaSim + stepsToGo * perf.tauSim;
  return std::max<VDuration>(0, eta - clock_.now());
}

DvShard::ContextState* DvShard::findContext(const std::string& name) {
  const auto it = contexts_.find(name);
  return it == contexts_.end() ? nullptr : it->second.get();
}

const DvShard::ContextState* DvShard::findContext(
    const std::string& name) const {
  const auto it = contexts_.find(name);
  return it == contexts_.end() ? nullptr : it->second.get();
}

DvShard::ClientInfo* DvShard::findClient(ClientId id) {
  const auto it = clients_.find(id);
  return it == clients_.end() ? nullptr : &it->second;
}

bool DvShard::isAvailable(const std::string& context, StepIndex step) const {
  const auto* ctx = findContext(context);
  if (ctx == nullptr) return false;
  const auto it = ctx->files.find(step);
  return it != ctx->files.end() &&
         it->second.kind == FileState::Kind::kAvailable;
}

int DvShard::runningJobs(const std::string& context) const {
  const auto* ctx = findContext(context);
  return ctx == nullptr ? 0 : ctx->running;
}

const cache::CacheStats* DvShard::cacheStats(const std::string& context) const {
  const auto* ctx = findContext(context);
  return ctx == nullptr ? nullptr : &ctx->cache->stats();
}

const simmodel::ContextConfig* DvShard::contextConfig(
    const std::string& context) const {
  const auto* ctx = findContext(context);
  return ctx == nullptr ? nullptr : &ctx->driver->config();
}

std::vector<std::string> DvShard::contextNames() const {
  std::vector<std::string> out;
  out.reserve(contexts_.size());
  for (const auto& [name, _] : contexts_) out.push_back(name);
  return out;
}

std::size_t DvShard::residentSteps() const {
  std::size_t total = 0;
  for (const auto& [name, ctx] : contexts_) total += ctx->area.stepCount();
  return total;
}

std::optional<LeaseView> DvShard::leaseView(const std::string& context) const {
  const auto* ctx = findContext(context);
  if (ctx == nullptr) return std::nullopt;
  return LeaseView{ctx->leaseGen, ctx->leased.size(), ctx->leaseIsReplica};
}

std::vector<std::pair<std::string, LeaseView>> DvShard::leaseViews() const {
  std::vector<std::pair<std::string, LeaseView>> out;
  for (const auto& [name, ctx] : contexts_) {
    if (!ctx->leaseIsReplica && !ctx->leaseIsOwner) {
      continue;  // no lease activity ever
    }
    out.emplace_back(name,
                     LeaseView{ctx->leaseGen, ctx->leased.size(),
                               ctx->leaseIsReplica});
  }
  return out;
}

std::vector<StepIndex> DvShard::availableSteps(
    const std::string& context) const {
  std::vector<StepIndex> out;
  const auto* ctx = findContext(context);
  if (ctx == nullptr) return out;
  out.reserve(ctx->files.size());
  for (const auto& [step, fs] : ctx->files) {
    if (fs.kind == FileState::Kind::kAvailable) out.push_back(step);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<ContextSnapshot> DvShard::exportContextSnapshot(
    const std::string& context) const {
  const auto* ctx = findContext(context);
  if (ctx == nullptr) return std::nullopt;
  ContextSnapshot snap;
  snap.context = context;
  snap.leaseGen = ctx->leaseGen;
  snap.available.reserve(ctx->files.size());
  for (const auto& [step, fs] : ctx->files) {
    if (fs.kind == FileState::Kind::kAvailable) {
      snap.available.push_back(step);
    } else if (!fs.waiters.empty()) {
      snap.pendingWaiters.emplace_back(
          step, static_cast<std::uint32_t>(fs.waiters.size()));
    }
  }
  std::sort(snap.available.begin(), snap.available.end());
  std::sort(snap.pendingWaiters.begin(), snap.pendingWaiters.end());
  for (const ClientInfo* ci : ctx->clients) {
    if (ci->replica) continue;  // lease accounting, not real pins
    for (const auto& [step, count] : ci->refs) {
      (void)step;
      snap.refs += static_cast<std::uint64_t>(count > 0 ? count : 0);
    }
  }
  return snap;
}

Status DvShard::importContextSteps(const std::string& context,
                                   std::span<const std::int64_t> steps) {
  auto* ctx = findContext(context);
  if (ctx == nullptr) return errNotFound("dv: no context: " + context);
  const auto& geom = ctx->driver->config().geometry;
  for (const std::int64_t raw : steps) {
    const auto step = static_cast<StepIndex>(raw);
    if (!geom.validStep(step)) continue;  // hostile/mismatched frame entry
    makeAvailable(*ctx, step, /*producer=*/0);
  }
  return Status::ok();
}

Status DvShard::adoptContextOwnership(
    const std::string& context, std::uint64_t oldOwnerLeaseGen,
    std::span<const std::pair<StepIndex, std::uint32_t>> pendingWaiters) {
  auto* ctx = findContext(context);
  if (ctx == nullptr) return errNotFound("dv: no context: " + context);
  // Continue the old owner's generation sequence strictly past its last
  // value: any grant it emitted before the flip is stale (< the fence)
  // on every replica this owner will talk to.
  ctx->leaseGen = std::max(ctx->leaseGen, oldOwnerLeaseGen) + 1;
  ctx->leaseIsOwner = true;
  // This node may have been a replica for the context until now; the
  // leased-in set is owner state from here on (grants flow FROM here).
  ctx->leaseIsReplica = false;
  ctx->leased.clear();
  if (launcher_ == nullptr) return Status::ok();
  const auto& cfg = ctx->driver->config();
  const auto& geom = cfg.geometry;
  for (const auto& [step, waiters] : pendingWaiters) {
    (void)waiters;
    if (!geom.validStep(step)) continue;
    if (ctx->running >= cfg.sMax) break;  // same clamp as prefetch depth
    const auto fit = ctx->files.find(step);
    if (fit != ctx->files.end()) continue;  // resident or already cooking
    const StepIndex start =
        geom.firstStepAtOrAfterRestart(geom.restartFor(step));
    StepIndex stop = geom.lastStepOfRunUntil(geom.nextRestartAfter(step));
    if (geom.numTimesteps() > 0) {
      stop = std::min<StepIndex>(stop, geom.numOutputSteps() - 1);
    }
    (void)launchJob(*ctx, start, stop, /*level=*/1, JobPurpose::kDemand,
                    /*owner=*/0);
    ++stats_.demandJobs;
  }
  return Status::ok();
}

}  // namespace simfs::dv
