#include "dv/autotuner.hpp"

#include "common/status.hpp"

#include <algorithm>
#include <cmath>

namespace simfs::dv {

CacheAutotuner::CacheAutotuner(Config config, std::int64_t initialCacheSteps)
    : config_(std::move(config)), cacheSteps_(initialCacheSteps) {
  if (config_.maxCacheSteps <= 0) {
    config_.maxCacheSteps = config_.scenario.numOutputSteps;
  }
  SIMFS_CHECK(config_.minCacheSteps >= 0);
  SIMFS_CHECK(config_.maxCacheSteps >= config_.minCacheSteps);
  SIMFS_CHECK(config_.growFactor > 1.0);
  cacheSteps_ =
      std::clamp(cacheSteps_, config_.minCacheSteps, config_.maxCacheSteps);
}

double CacheAutotuner::predictedResimSteps(std::int64_t cacheSteps) const {
  if (windowSteps_ <= 0.0) return 0.0;
  // Conservative counterfactual: caching fraction f of the timeline
  // intercepts the same fraction of re-simulation work; shrinking gives
  // it back. Anchored at the observed window.
  const double total = static_cast<double>(config_.scenario.numOutputSteps);
  const double fNow = static_cast<double>(cacheSteps_) / total;
  const double fNew = static_cast<double>(cacheSteps) / total;
  const double uncovered = std::max(1e-9, 1.0 - fNow);
  const double scale = std::max(0.0, 1.0 - fNew) / uncovered;
  return windowSteps_ * scale;
}

double CacheAutotuner::monthlyCostEstimate() const noexcept {
  if (!primed_) return 0.0;
  const double storage = cost::storeCost(
      cacheSteps_, config_.scenario.outputGiB, 1.0, config_.rates);
  const double compute =
      cost::simCost(static_cast<std::int64_t>(std::llround(windowSteps_)),
                    config_.scenario, config_.rates);
  return storage + compute;
}

TuneDecision CacheAutotuner::observe(const TuneWindow& window) {
  windowSteps_ = static_cast<double>(window.resimulatedSteps);
  windowAccesses_ = static_cast<double>(window.accesses);
  windowMissRate_ =
      window.accesses == 0
          ? 0.0
          : static_cast<double>(window.misses) /
                static_cast<double>(window.accesses);
  primed_ = true;

  auto costOf = [&](std::int64_t cacheSteps) {
    const double storage = cost::storeCost(
        cacheSteps, config_.scenario.outputGiB, 1.0, config_.rates);
    const double compute = cost::simCost(
        static_cast<std::int64_t>(std::llround(predictedResimSteps(cacheSteps))),
        config_.scenario, config_.rates);
    return storage + compute;
  };

  const double now = costOf(cacheSteps_);
  const std::int64_t bigger = std::min(
      config_.maxCacheSteps,
      static_cast<std::int64_t>(
          std::ceil(static_cast<double>(cacheSteps_) * config_.growFactor)));
  const std::int64_t smaller = std::max(
      config_.minCacheSteps,
      static_cast<std::int64_t>(
          std::floor(static_cast<double>(cacheSteps_) / config_.growFactor)));

  TuneDecision decision;
  decision.recommendedCacheSteps = cacheSteps_;

  const double growSaving = now - costOf(bigger);
  const double shrinkSaving = now - costOf(smaller);
  // Hysteresis is anchored on the storage being bought/freed: a move must
  // save meaningfully more than the storage-dollar delta it shuffles,
  // otherwise noise in the window would cause endless reconfiguration.
  auto storageDelta = [&](std::int64_t steps) {
    return std::abs(cost::storeCost(steps - cacheSteps_,
                                    config_.scenario.outputGiB, 1.0,
                                    config_.rates));
  };

  if (bigger != cacheSteps_ &&
      growSaving > config_.hysteresis * storageDelta(bigger) &&
      growSaving >= shrinkSaving) {
    decision.action = TuneDecision::Action::kGrow;
    decision.recommendedCacheSteps = bigger;
    decision.estimatedMonthlySaving = growSaving;
  } else if (smaller != cacheSteps_ &&
             shrinkSaving > config_.hysteresis * storageDelta(smaller)) {
    decision.action = TuneDecision::Action::kShrink;
    decision.recommendedCacheSteps = smaller;
    decision.estimatedMonthlySaving = shrinkSaving;
  }
  return decision;
}

void CacheAutotuner::apply(const TuneDecision& decision) {
  cacheSteps_ = std::clamp(decision.recommendedCacheSteps,
                           config_.minCacheSteps, config_.maxCacheSteps);
}

}  // namespace simfs::dv
