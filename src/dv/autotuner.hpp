// Online configuration adaptation — the paper's stated future work.
//
// Sec. V-B: "we plan to use online information to dynamically adapt the
// SimFS configuration (e.g., cache size, restart interval) in a future
// work. [...] the reduced compute time due to having a bigger cache might
// not be justified by the higher cost."
//
// The CacheAutotuner implements that loop: it watches the observed access
// stream (hits, misses, re-simulated steps) over fixed windows, prices
// both sides of the trade with the Sec. V cost model — storage dollars
// for the cache, compute dollars for the re-simulations — and recommends
// growing or shrinking the cache whenever the marginal economics say so.
//
// It is deliberately advisory (recommendation objects, not mutation): a
// production deployment applies recommendations at context granularity
// when convenient; the ablation bench and tests apply them eagerly.
#pragma once

#include "common/types.hpp"
#include "cost/cost_model.hpp"

#include <cstdint>
#include <optional>

namespace simfs::dv {

/// One window's observations, fed by the deployment.
struct TuneWindow {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  std::uint64_t resimulatedSteps = 0;  ///< output steps produced for them
};

/// What the tuner suggests after a window.
struct TuneDecision {
  enum class Action { kKeep, kGrow, kShrink } action = Action::kKeep;
  std::int64_t recommendedCacheSteps = 0;
  /// Estimated $ saved per month by following the recommendation
  /// (<= 0 for kKeep).
  double estimatedMonthlySaving = 0.0;
};

/// Economic cache-size controller.
class CacheAutotuner {
 public:
  struct Config {
    cost::Scenario scenario;       ///< pricing of steps and bytes
    cost::CostRates rates;         ///< platform $ rates
    std::int64_t minCacheSteps = 0;
    std::int64_t maxCacheSteps = 0;       ///< 0 = numOutputSteps
    double growFactor = 1.25;             ///< step size of a grow/shrink
    double hysteresis = 0.05;             ///< fraction of cost that must be saved
  };

  CacheAutotuner(Config config, std::int64_t initialCacheSteps);

  /// Feeds one observation window; returns a decision.
  [[nodiscard]] TuneDecision observe(const TuneWindow& window);

  /// Applies a decision (the deployment confirmed it).
  void apply(const TuneDecision& decision);

  [[nodiscard]] std::int64_t cacheSteps() const noexcept { return cacheSteps_; }

  /// Current estimate of the monthly cost of this configuration:
  /// cache storage + re-simulation compute extrapolated from the last
  /// window (0 until the first window arrives).
  [[nodiscard]] double monthlyCostEstimate() const noexcept;

 private:
  /// Miss-rate model: a larger cache intercepts a fraction of misses
  /// proportional to the coverage gain (conservative linear model; the
  /// window data cannot see counterfactual hits).
  [[nodiscard]] double predictedResimSteps(std::int64_t cacheSteps) const;

  Config config_;
  std::int64_t cacheSteps_;
  bool primed_ = false;
  double windowSteps_ = 0.0;     ///< re-simulated steps in the last window
  double windowAccesses_ = 0.0;
  double windowMissRate_ = 0.0;
};

}  // namespace simfs::dv
