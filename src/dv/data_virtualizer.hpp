// The Data Virtualizer (DV) — SimFS's coordinating daemon (Sec. III) as a
// single-threaded facade over one DvShard.
//
// The full state machine lives in dv::DvShard (see shard.hpp); this class
// pins it to the (offset 1, stride 1) id lattice, which is exactly the id
// sequence of the original monolithic implementation — the discrete-event
// engine's experiments (Figs. 16-19) stay bit-reproducible. Live
// deployments that need concurrency use dv::ShardedVirtualizer inside
// dv::Daemon instead.
//
// Not thread-safe by design: every input is an explicit method call on
// one thread — client requests (open/close/acquire/release/bitrep) and
// simulator events (started/file written/finished) — and every side
// effect goes through an injected seam (SimLauncher, notification
// callback, eviction callback).
#pragma once

#include "dv/shard.hpp"

namespace simfs::dv {

/// The single-threaded DV core. See dv::Daemon for the sharded,
/// transport-facing wrapper.
class DataVirtualizer {
 public:
  using NotifyFn = DvShard::NotifyFn;
  using EvictFn = DvShard::EvictFn;

  /// The clock provides request timestamps (virtual in DES, steady in live).
  explicit DataVirtualizer(const Clock& clock) : shard_(clock) {}
  DataVirtualizer(const DataVirtualizer&) = delete;
  DataVirtualizer& operator=(const DataVirtualizer&) = delete;

  // --- wiring ---------------------------------------------------------------

  /// Must be called before any client/simulator activity.
  void setLauncher(SimLauncher* launcher) noexcept {
    shard_.setLauncher(launcher);
  }
  void setNotifyFn(NotifyFn fn) { shard_.setNotifyFn(std::move(fn)); }
  void setEvictFn(EvictFn fn) { shard_.setEvictFn(std::move(fn)); }

  /// Registers a simulation context (driver carries the full config).
  Status registerContext(std::unique_ptr<simmodel::SimulationDriver> driver) {
    return shard_.registerContext(std::move(driver));
  }

  /// Marks an output step as already on disk (initial-simulation leftovers
  /// or warm-cache seeding in tests/benches).
  Status seedAvailableStep(const std::string& context, StepIndex step) {
    return shard_.seedAvailableStep(context, step);
  }

  /// Reference checksums for SIMFS_Bitrep (recorded by the "command line
  /// utility" after the initial run).
  Status setChecksumMap(const std::string& context, simmodel::ChecksumMap map) {
    return shard_.setChecksumMap(context, std::move(map));
  }

  // --- client side (DVLib requests) ------------------------------------------

  [[nodiscard]] Result<ClientId> clientConnect(const std::string& context) {
    return shard_.clientConnect(context);
  }

  void clientDisconnect(ClientId client) { shard_.clientDisconnect(client); }

  [[nodiscard]] OpenResult clientOpen(ClientId client,
                                      std::string_view file) {
    return shard_.clientOpen(client, file);
  }

  Status clientRelease(ClientId client, std::string_view file) {
    return shard_.clientRelease(client, file);
  }

  [[nodiscard]] Result<bool> clientBitrep(ClientId client,
                                          const std::string& file,
                                          std::uint64_t digest) {
    return shard_.clientBitrep(client, file, digest);
  }

  // --- simulator side (driver/launcher events) -------------------------------

  void simulationStarted(SimJobId job) { shard_.simulationStarted(job); }

  void simulationFileWritten(SimJobId job, std::string_view file) {
    shard_.simulationFileWritten(job, file);
  }

  void simulationFinished(SimJobId job, const Status& status) {
    shard_.simulationFinished(job, status);
  }

  // --- inspection -------------------------------------------------------------

  [[nodiscard]] const DvStats& stats() const noexcept { return shard_.stats(); }
  [[nodiscard]] bool isAvailable(const std::string& context,
                                 StepIndex step) const {
    return shard_.isAvailable(context, step);
  }
  [[nodiscard]] int runningJobs(const std::string& context) const {
    return shard_.runningJobs(context);
  }
  [[nodiscard]] const cache::CacheStats* cacheStats(
      const std::string& context) const {
    return shard_.cacheStats(context);
  }
  [[nodiscard]] std::vector<std::string> contextNames() const {
    return shard_.contextNames();
  }

 private:
  DvShard shard_;
};

}  // namespace simfs::dv
