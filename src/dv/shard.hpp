// DvShard — the Data Virtualizer state machine (SimFS's coordinating
// daemon, Sec. III) for one group of simulation contexts.
//
// A shard is the deterministic heart of the system: a single-threaded,
// clock-agnostic state machine. Every input is an explicit method call —
// client requests (open/close/acquire/release/bitrep) and simulator events
// (started/file written/finished) — and every side effect goes through an
// injected seam (SimLauncher, notification callback, eviction callback).
//
// Sharding model: a shard owns the complete state of its contexts (cache,
// storage area, pending steps, client sessions, prefetch agents, jobs) and
// nothing else, so two shards never share mutable state. Client and job
// ids are issued on an (offset, stride) lattice — shard i of S issues ids
// i+1, i+1+S, i+1+2S, ... — which makes id -> shard routing stateless:
// shard(id) == (id - 1) % S. The single-shard configuration (offset 1,
// stride 1) reproduces the exact id sequence of the original monolithic
// DataVirtualizer, which keeps the DES experiments bit-reproducible.
//
// Deployment:
//   * dv::DataVirtualizer wraps ONE shard for the discrete-event engine
//     (Figs. 16-19) and all single-threaded callers, and
//   * dv::ShardedVirtualizer owns N independently-lockable shards inside
//     dv::Daemon, where a worker pool drains per-shard request queues.
//
// Hot-path design: filenames exist only at the client boundary. clientOpen
// and simulationFileWritten parse the name exactly once (FilenameCodec via
// the driver's key()); everything below — cache, storage accounting,
// pending-file states, client references, job bookkeeping — is keyed by
// StepIndex, and filename strings are re-materialized lazily only for
// notification and eviction callbacks. The open-hit path performs no heap
// allocation.
//
// Responsibilities (Sec. III-A/C/D, IV):
//   - track per-context file states (missing / pending / available),
//   - start demand re-simulations on misses, from R(d_i) until at least
//     the next restart step,
//   - reference-count output steps opened by analyses; evict unreferenced
//     steps through the context's replacement policy when the storage
//     area exceeds its quota,
//   - notify blocked clients when files appear (or their job fails),
//   - run one prefetch agent per client, clamp its launch requests
//     against s_max, and kill prefetched simulations nobody waits for,
//   - reset all agents on cache-pollution signals.
#pragma once

#include "cache/cache.hpp"
#include "common/clock.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "dv/launcher.hpp"
#include "prefetch/agent.hpp"
#include "simmodel/context.hpp"
#include "simmodel/driver.hpp"
#include "vfs/storage_area.hpp"

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace simfs::dv {

/// Lifecycle of a (re-)simulation job.
enum class JobPhase { kQueued, kRunning, kFinished, kFailed, kKilled };

/// Why a job exists (prefetched jobs are kill candidates, Sec. IV-C).
enum class JobPurpose { kDemand, kPrefetch };

/// Reply to an open/acquire of one file.
struct OpenResult {
  Status status;               ///< kOk, or why the request is unserviceable
  bool available = false;      ///< true: file on disk, go ahead
  VDuration estimatedWait = 0; ///< DV's estimate until availability
};

/// Aggregate DV statistics (benchmarks read these).
struct DvStats {
  std::uint64_t opens = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t jobsLaunched = 0;
  std::uint64_t demandJobs = 0;
  std::uint64_t prefetchJobs = 0;
  std::uint64_t jobsKilled = 0;
  std::uint64_t stepsProduced = 0;
  std::uint64_t evictions = 0;
  std::uint64_t notifications = 0;
  std::uint64_t agentResets = 0;   ///< pollution-triggered global resets
  std::uint64_t waitersExpired = 0;  ///< waiter entries reaped past deadline

  DvStats& operator+=(const DvStats& o) noexcept {
    opens += o.opens;
    hits += o.hits;
    misses += o.misses;
    jobsLaunched += o.jobsLaunched;
    demandJobs += o.demandJobs;
    prefetchJobs += o.prefetchJobs;
    jobsKilled += o.jobsKilled;
    stepsProduced += o.stepsProduced;
    evictions += o.evictions;
    notifications += o.notifications;
    agentResets += o.agentResets;
    waitersExpired += o.waitersExpired;
    return *this;
  }
};

/// A context's read-lease state as seen by introspection (simfsctl
/// `replicas`, kShardStatsAck). On an owner `steps` counts the steps
/// granted out; on a replica it counts the steps currently leased in.
struct LeaseView {
  std::uint64_t generation = 0;
  std::size_t steps = 0;
  bool replica = false;  ///< true: this node holds leases granted by an owner
};

/// Per-shard replica-lease counters (kShardStatsAck; NOT part of DvStats so
/// federated stats stay comparable to a single-node replay).
struct LeaseCounters {
  std::uint64_t grantsEmitted = 0;   ///< owner: grant batches handed to LeaseFn
  std::uint64_t revokesEmitted = 0;  ///< owner: revoke batches handed to LeaseFn
  std::uint64_t grantsApplied = 0;   ///< replica: kLeaseGrant applied
  std::uint64_t revokesApplied = 0;  ///< replica: kLeaseRevoke applied
  std::uint64_t replicaHits = 0;     ///< opens served locally off a lease
  std::uint64_t notLeased = 0;       ///< opens bounced back to the owner
};

/// One context's transferable serving state, exported by the old owner
/// during an elastic-membership handoff and streamed to the new owner as
/// kContextHandoff frames. Carries metadata only — step bytes live in the
/// (shared or re-simulable) store; what moves is the knowledge of what is
/// resident, what is still owed to whom, and the lease generation fence.
struct ContextSnapshot {
  std::string context;
  std::uint64_t leaseGen = 0;  ///< old owner's grant fence (PR 8 discipline)
  std::uint64_t refs = 0;      ///< open references held by analysis clients
  std::vector<StepIndex> available;  ///< resident steps, ascending
  /// Pending steps with registered waiters (step, waiter count): demand
  /// the new owner can warm-launch so rebound clients resolve quickly.
  std::vector<std::pair<StepIndex, std::uint32_t>> pendingWaiters;
};

/// One DV shard. Not thread-safe by design; see dv::DataVirtualizer for the
/// single-threaded facade and dv::Daemon for the locked, queue-fed
/// deployment.
class DvShard {
 public:
  /// `file` became available (status ok) or permanently failed.
  using NotifyFn =
      std::function<void(ClientId, const std::string& file, const Status&)>;
  /// `file` was evicted from `context`'s storage area (live mode unlinks).
  using EvictFn =
      std::function<void(const std::string& context, const std::string& file)>;
  /// Owner-side lease event: `steps` of `context` were granted (revoke ==
  /// false) or revoked (revoke == true) at `generation`. Invoked WITH the
  /// shard lock held, and — critically — revokes fire BEFORE the shard
  /// mutates the step (file-table erase / eviction unlink), so a FIFO
  /// peer link delivers the revoke before the step can change. The
  /// callback must not re-enter the shard; the daemon just queues the
  /// event for its maintenance thread.
  using LeaseFn = std::function<void(const std::string& context,
                                     std::uint64_t generation,
                                     const std::vector<StepIndex>& steps,
                                     bool revoke)>;

  /// The clock provides request timestamps (virtual in DES, steady in
  /// live). Client/job ids are issued as firstId, firstId + stride, ...;
  /// the (1, 1) default reproduces the monolithic DV's id sequence.
  explicit DvShard(const Clock& clock, ClientId firstClientId = 1,
                   SimJobId firstJobId = 1, std::uint64_t idStride = 1);
  ~DvShard();
  DvShard(const DvShard&) = delete;
  DvShard& operator=(const DvShard&) = delete;

  // --- wiring ---------------------------------------------------------------

  /// Must be called before any client/simulator activity.
  void setLauncher(SimLauncher* launcher) noexcept { launcher_ = launcher; }
  void setNotifyFn(NotifyFn fn) { notify_ = std::move(fn); }
  void setEvictFn(EvictFn fn) { evict_ = std::move(fn); }
  /// Installing a LeaseFn turns on owner-side lease emission (grants on
  /// seed/makeAvailable, revoke-before-mutate on eviction). Unset = the
  /// pre-replica behavior, bit for bit.
  void setLeaseFn(LeaseFn fn) { lease_ = std::move(fn); }

  /// Registers a simulation context (driver carries the full config).
  Status registerContext(std::unique_ptr<simmodel::SimulationDriver> driver);

  /// Marks an output step as already on disk (initial-simulation leftovers
  /// or warm-cache seeding in tests/benches).
  Status seedAvailableStep(const std::string& context, StepIndex step);

  /// Reference checksums for SIMFS_Bitrep (recorded by the "command line
  /// utility" after the initial run).
  Status setChecksumMap(const std::string& context, simmodel::ChecksumMap map);

  // --- client side (DVLib requests) ------------------------------------------

  /// Registers a client session on a context; returns its id. A replica
  /// client (replica == true) is served purely off the context's leased
  /// step set: opens of leased steps succeed without touching the cache
  /// or prefetch machinery, everything else returns kNotLeased so the
  /// client retries at the ring owner.
  [[nodiscard]] Result<ClientId> clientConnect(const std::string& context,
                                               bool replica = false);

  /// Releases every reference the client holds, resets its prefetch agent
  /// and kills its unneeded prefetched jobs.
  void clientDisconnect(ClientId client);

  /// Transparent-mode open (also the per-file primitive of Acquire):
  /// non-blocking; on a miss the demand re-simulation is started and the
  /// client is registered as a waiter (notified via NotifyFn).
  /// On success (immediate or later notification) the file is referenced.
  /// `deadline` (absolute clock time, 0 = none) bounds how long the client
  /// is willing to wait: reapExpiredWaiters drops the registration and
  /// notifies kTimedOut once the clock passes it.
  [[nodiscard]] OpenResult clientOpen(ClientId client, std::string_view file,
                                      VTime deadline = 0);

  /// Transparent-mode close / SIMFS_Release: drops one reference.
  Status clientRelease(ClientId client, std::string_view file);

  /// Cancellation of an abandoned acquire (kCancelReq): releases whatever
  /// interest the client's open of `file` registered — the waiter entry
  /// if the step is still pending, or one reference if the open (or the
  /// availability notification racing the cancel) already delivered it.
  /// A cancelled acquire therefore can never pin a cache slot. Fails soft
  /// (kFailedPrecondition) when no interest is held.
  Status clientCancel(ClientId client, std::string_view file);

  /// SIMFS_Bitrep: compares `digest` (computed client-side over the
  /// re-simulated file) with the recorded reference checksum.
  [[nodiscard]] Result<bool> clientBitrep(ClientId client,
                                          std::string_view file,
                                          std::uint64_t digest);

  // --- simulator side (driver/launcher events) -------------------------------

  /// The job left the batch queue and started executing.
  void simulationStarted(SimJobId job);

  /// The simulator closed an output file: it is ready on disk (Fig. 4
  /// step 4-5). Size accounting uses the context's configured step size.
  void simulationFileWritten(SimJobId job, std::string_view file);

  /// Job completed (ok) or failed (error status propagates to waiters).
  void simulationFinished(SimJobId job, const Status& status);

  // --- replica-side lease application (kLeaseGrant / kLeaseRevoke) ------------

  /// Unions `steps` into the context's leased set at `generation`. Grants
  /// older than the current generation are inert (stale in-flight grant
  /// racing a revoke). Idempotent.
  Status applyLeaseGrant(const std::string& context, std::uint64_t generation,
                         std::span<const std::int64_t> steps);

  /// Removes `steps` from the leased set (an EMPTY span revokes the whole
  /// context) and advances the generation fence. Revokes older than the
  /// current generation are inert.
  Status applyLeaseRevoke(const std::string& context, std::uint64_t generation,
                          std::span<const std::int64_t> steps);

  // --- deadline reaping --------------------------------------------------------

  /// Drops every waiter whose deadline passed (notified kTimedOut) and
  /// kills the re-simulations those expiries drove to zero owed waited
  /// steps — a job every interested client abandoned burns cycles for
  /// nobody. Returns the number of waiter entries reaped. Called
  /// periodically by the daemon's maintenance tick.
  std::size_t reapExpiredWaiters(VTime now);

  // --- inspection -------------------------------------------------------------

  [[nodiscard]] const DvStats& stats() const noexcept { return stats_; }
  [[nodiscard]] bool isAvailable(const std::string& context, StepIndex step) const;
  [[nodiscard]] int runningJobs(const std::string& context) const;
  [[nodiscard]] const cache::CacheStats* cacheStats(const std::string& context) const;
  [[nodiscard]] std::vector<std::string> contextNames() const;

  /// Full configuration of a registered context (nullptr: unknown). The
  /// pointer is borrowed from the driver and valid only while the caller
  /// holds this shard's lock.
  [[nodiscard]] const simmodel::ContextConfig* contextConfig(
      const std::string& context) const;

  /// Output steps currently resident across this shard's storage areas
  /// (per-shard introspection for simfsctl stats).
  [[nodiscard]] std::size_t residentSteps() const;

  /// Lease state of one context (nullopt: unknown context).
  [[nodiscard]] std::optional<LeaseView> leaseView(
      const std::string& context) const;

  /// Lease state of every context with lease activity (generation moved
  /// or steps leased), for kShardStatsAck / simfsctl.
  [[nodiscard]] std::vector<std::pair<std::string, LeaseView>> leaseViews()
      const;

  [[nodiscard]] const LeaseCounters& leaseCounters() const noexcept {
    return leaseCounters_;
  }

  /// Currently available (resident) steps of `context`, ascending — what
  /// an owner re-grants when a replica's peer link is re-established.
  [[nodiscard]] std::vector<StepIndex> availableSteps(
      const std::string& context) const;

  // --- elastic-membership handoff (old owner -> new owner) --------------------

  /// Snapshot of `context` for a live handoff (nullopt: unknown context).
  /// Pure read — the old owner keeps serving (and keeps every waiter)
  /// until the membership change commits, so an aborted handoff needs no
  /// undo on this side.
  [[nodiscard]] std::optional<ContextSnapshot> exportContextSnapshot(
      const std::string& context) const;

  /// Applies one handoff data frame: marks `steps` available exactly as a
  /// simulator write would (waiter wake, lease grant, cache insert,
  /// evictions) — a resent client op racing the import is woken instead of
  /// stranded. Invalid steps are skipped; idempotent on available ones.
  Status importContextSteps(const std::string& context,
                            std::span<const std::int64_t> steps);

  /// Applies the final handoff frame: advances the lease-generation fence
  /// past the old owner's (stale grants emitted over there become inert
  /// everywhere) and warm-launches demand re-simulations for the pending
  /// steps the old owner's clients were still owed, so they are already
  /// cooking when those clients rebind and resend.
  Status adoptContextOwnership(
      const std::string& context, std::uint64_t oldOwnerLeaseGen,
      std::span<const std::pair<StepIndex, std::uint32_t>> pendingWaiters);

 private:
  struct ContextState;

  struct Waiter {
    ClientId client = 0;
    VTime deadline = 0;  ///< absolute give-up time, 0 = wait forever
  };

  struct FileState {
    enum class Kind { kPending, kAvailable } kind = Kind::kPending;
    SimJobId producer = 0;                ///< job producing it (pending)
    std::vector<Waiter> waiters;          ///< clients blocked on it
  };

  struct JobInfo {
    SimJobId id = 0;
    ContextState* ctx = nullptr;
    StepIndex startStep = 0;
    StepIndex stopStep = 0;
    int level = 0;
    JobPhase phase = JobPhase::kQueued;
    JobPurpose purpose = JobPurpose::kDemand;
    ClientId owner = 0;       ///< client whose agent requested it
    VTime launchTime = 0;
    bool firstFileSeen = false;
    VTime lastFileTime = 0;
    /// Owed pending steps (producer == this job) with >= 1 waiter. Kept
    /// incrementally so the prefetch-kill decision is O(1) instead of a
    /// jobs x step-range scan.
    int waitedSteps = 0;
  };

  struct ClientInfo {
    ClientId id = 0;
    ContextState* ctx = nullptr;
    std::unique_ptr<prefetch::PrefetchAgent> agent;
    /// step -> open count. Zero-count entries are kept so that steady
    /// open/release cycles do not churn map nodes (allocation-free hits).
    std::unordered_map<StepIndex, int> refs;
    /// Steps this client is (or recently was) enqueued as a waiter for;
    /// one entry per enqueue, pruned on wake/notify.
    std::vector<StepIndex> waitingSteps;
    /// Live prefetch jobs owned by this client's agent, ascending id.
    std::vector<SimJobId> prefetchJobs;
    /// Replica-served session: refs are lease accounting only (the
    /// replica's cache holds nothing to pin/unpin).
    bool replica = false;
  };

  struct ContextState {
    std::unique_ptr<simmodel::SimulationDriver> driver;
    vfs::StorageArea area;
    std::unique_ptr<cache::Cache> cache;
    std::unordered_map<StepIndex, FileState> files;  ///< pending/available
    /// Connected clients in connect (= ascending id) order, so agent
    /// observation fan-out is O(context clients), not O(all clients).
    std::vector<ClientInfo*> clients;
    simmodel::ChecksumMap checksums;
    int running = 0;  ///< jobs in kQueued/kRunning phase
    /// Read-lease state. Owner role: leaseGen fences emitted grants
    /// (bumped before each eviction revoke); `leased` stays empty. Replica
    /// role: `leased` is the step set this node may serve locally.
    std::unordered_set<StepIndex> leased;
    std::uint64_t leaseGen = 1;
    bool leaseIsReplica = false;  ///< a grant/revoke was applied here
    bool leaseIsOwner = false;    ///< a grant/revoke was emitted from here
    ContextState(std::unique_ptr<simmodel::SimulationDriver> d);
  };

  [[nodiscard]] ContextState* findContext(const std::string& name);
  [[nodiscard]] const ContextState* findContext(const std::string& name) const;
  [[nodiscard]] ClientInfo* findClient(ClientId id);

  /// Launches a job covering [start, stop] (clamped/aligned to restarts).
  SimJobId launchJob(ContextState& ctx, StepIndex start, StepIndex stop,
                     int level, JobPurpose purpose, ClientId owner);

  /// Runs one agent's actions: clamp + launch prefetches, handle pollution.
  void applyAgentActions(ContextState& ctx, ClientInfo& client,
                         const prefetch::AgentActions& actions);

  /// Marks a step available, inserts it into the cache, processes
  /// evictions and wakes waiters.
  void makeAvailable(ContextState& ctx, StepIndex step, SimJobId producer);

  /// Applies cache evictions to DV bookkeeping (revoking leases first).
  void processEvictions(ContextState& ctx, const std::vector<StepIndex>& evicted);

  /// Serves one open for a replica client entirely off the leased set —
  /// allocation-free on the leased hit path.
  [[nodiscard]] OpenResult replicaOpen(ClientInfo& info, std::string_view file);

  /// Owner-side single-step grant emission (seed / makeAvailable).
  void emitLeaseGrant(ContextState& ctx, StepIndex step);

  /// Enqueues `client` as a waiter on a pending step, maintaining the
  /// producing job's waited-step counter.
  void addWaiter(ContextState& ctx, StepIndex step, FileState& fs,
                 ClientInfo& client, VTime deadline);

  /// Kills a queued/running job and reverts the pending steps it still
  /// owes to missing (shared by prefetch kills and deadline reaping).
  void killJob(SimJobId id);

  /// Kills the client's prefetched jobs that nobody waits for.
  void killUnneededPrefetches(ClientId client);

  /// Drops a finished/killed job from its owner's prefetch-job list.
  void forgetOwnedJob(const JobInfo& job);

  /// Estimated wait until `step` is available, given its producing job.
  [[nodiscard]] VDuration estimateWait(const ContextState& ctx,
                                       const JobInfo& job, StepIndex step) const;

  const Clock& clock_;
  SimLauncher* launcher_ = nullptr;
  NotifyFn notify_;
  EvictFn evict_;
  LeaseFn lease_;
  LeaseCounters leaseCounters_;

  // Ordered maps for contexts/jobs keep cross-entity iteration
  // deterministic — the DES benches rely on bit-identical replays. The
  // client and per-context file tables are hash maps: they are only ever
  // probed by key or iterated without order-sensitive effects (client
  // fan-out goes through ContextState::clients, which is in connect
  // order).
  std::map<std::string, std::unique_ptr<ContextState>> contexts_;
  std::unordered_map<ClientId, ClientInfo> clients_;
  std::map<SimJobId, JobInfo> jobs_;
  ClientId nextClient_;
  SimJobId nextJob_;
  std::uint64_t idStride_;
  DvStats stats_;
};

}  // namespace simfs::dv
