#include "common/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace simfs::str {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool startsWith(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string toLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(static_cast<char>(std::tolower(c)));
  return out;
}

std::optional<std::int64_t> parseInt(std::string_view s) noexcept {
  const auto t = trim(s);
  if (t.empty()) return std::nullopt;
  std::string buf(t);
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return static_cast<std::int64_t>(v);
}

std::optional<double> parseDouble(std::string_view s) noexcept {
  const auto t = trim(s);
  if (t.empty()) return std::nullopt;
  std::string buf(t);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args2);
    out.resize(static_cast<std::size_t>(n));
  }
  va_end(args2);
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string replaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  std::size_t pos = 0;
  for (;;) {
    const auto hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      return out;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
}

}  // namespace simfs::str
