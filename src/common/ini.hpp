// Tiny INI parser used for simulation-driver descriptions.
//
// The paper attaches a LUA script to each simulator (Sec. III-B); this repo
// replaces it with a C++ SimulationDriver interface configured from small
// `.drv` files of the form:
//
//   [context]
//   name = cosmo-5min
//   delta_d = 15
//   delta_r = 96
//   ; comments start with ';' or '#'
#pragma once

#include "common/status.hpp"

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace simfs {

/// Parsed INI document: section -> key -> value, with typed getters.
class IniDoc {
 public:
  /// Parses text; returns an error with a line number on malformed input.
  [[nodiscard]] static Result<IniDoc> parse(std::string_view text);

  /// Loads and parses a file.
  [[nodiscard]] static Result<IniDoc> load(const std::string& path);

  /// Raw value lookup; nullopt if section or key is missing.
  [[nodiscard]] std::optional<std::string> get(const std::string& section,
                                               const std::string& key) const;

  /// Typed lookups; nullopt if missing or unparsable.
  [[nodiscard]] std::optional<std::int64_t> getInt(const std::string& section,
                                                   const std::string& key) const;
  [[nodiscard]] std::optional<double> getDouble(const std::string& section,
                                                const std::string& key) const;

  /// Value with default.
  [[nodiscard]] std::string getOr(const std::string& section,
                                  const std::string& key,
                                  std::string fallback) const;
  [[nodiscard]] std::int64_t getIntOr(const std::string& section,
                                      const std::string& key,
                                      std::int64_t fallback) const;
  [[nodiscard]] double getDoubleOr(const std::string& section,
                                   const std::string& key,
                                   double fallback) const;

  /// True if the section exists (even if empty).
  [[nodiscard]] bool hasSection(const std::string& section) const;

  /// All keys of a section in insertion-independent (sorted) order.
  [[nodiscard]] std::vector<std::string> keys(const std::string& section) const;

  /// Sets a value (used by tests and by programmatic driver construction).
  void set(const std::string& section, const std::string& key,
           std::string value);

 private:
  std::map<std::string, std::map<std::string, std::string>> sections_;
};

}  // namespace simfs
