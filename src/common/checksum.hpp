// Checksums backing SIMFS_Bitrep (Sec. III-C2).
//
// The paper compares a re-simulated file's checksum against the one recorded
// when the initial simulation ran; the checksum function is
// simulator-specific. We provide FNV-1a 64 (default, fast) and CRC-32C
// (common in archival tooling) behind one incremental interface.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace simfs {

/// FNV-1a 64-bit over a byte span.
[[nodiscard]] std::uint64_t fnv1a64(std::span<const std::byte> data) noexcept;

/// FNV-1a 64-bit over a string.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view data) noexcept;

/// CRC-32C (Castagnoli) over a byte span, software table driven.
[[nodiscard]] std::uint32_t crc32c(std::span<const std::byte> data) noexcept;

/// CRC-32C over a string.
[[nodiscard]] std::uint32_t crc32c(std::string_view data) noexcept;

/// Incremental FNV-1a 64 hasher; feed chunks, then read digest().
class Fnv1a64Hasher {
 public:
  /// Absorbs a chunk of bytes.
  void update(std::span<const std::byte> data) noexcept;

  /// Absorbs a string chunk.
  void update(std::string_view data) noexcept;

  /// Absorbs a trivially-copyable value byte-wise (for struct fields).
  template <typename T>
  void updateValue(const T& v) noexcept {
    static_assert(std::is_trivially_copyable_v<T>);
    update(std::span<const std::byte>(
        reinterpret_cast<const std::byte*>(&v), sizeof(T)));
  }

  /// Current digest (can keep updating afterwards).
  [[nodiscard]] std::uint64_t digest() const noexcept { return state_; }

 private:
  std::uint64_t state_ = 0xCBF29CE484222325ULL;
};

/// Renders a 64-bit digest as fixed-width lowercase hex.
[[nodiscard]] std::string digestToHex(std::uint64_t digest);

}  // namespace simfs
