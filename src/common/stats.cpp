#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace simfs {

std::vector<double> Summary::sorted() const {
  std::vector<double> s = samples_;
  std::sort(s.begin(), s.end());
  return s;
}

double Summary::min() const {
  assert(!empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  assert(!empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::mean() const {
  assert(!empty());
  double acc = 0.0;
  for (double x : samples_) acc += x;
  return acc / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::median() const { return quantile(0.5); }

double Summary::quantile(double q) const {
  assert(!empty());
  assert(q >= 0.0 && q <= 1.0);
  const auto s = sorted();
  if (s.size() == 1) return s.front();
  const double pos = q * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, s.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return s[lo] * (1.0 - frac) + s[hi] * frac;
}

Summary::Interval Summary::medianCi95() const {
  assert(!empty());
  const auto s = sorted();
  const auto n = s.size();
  if (n < 6) return {s.front(), s.back()};
  // Binomial order-statistic bounds: ranks n/2 +- 1.96*sqrt(n)/2.
  const double half = 1.96 * std::sqrt(static_cast<double>(n)) / 2.0;
  const double mid = static_cast<double>(n) / 2.0;
  auto clampIdx = [&](double r) {
    if (r < 0) r = 0;
    if (r > static_cast<double>(n - 1)) r = static_cast<double>(n - 1);
    return static_cast<std::size_t>(r);
  };
  return {s[clampIdx(std::floor(mid - half))],
          s[clampIdx(std::ceil(mid + half))]};
}

std::string Summary::toString() const {
  if (empty()) return "(no samples)";
  const auto ci = medianCi95();
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%.3f [%.3f, %.3f]", median(), ci.lo, ci.hi);
  return buf;
}

Ema::Ema(double smoothing) noexcept : smoothing_(smoothing) {
  assert(smoothing > 0.0 && smoothing <= 1.0);
}

void Ema::observe(double x) noexcept {
  if (!primed_) {
    value_ = x;
    primed_ = true;
  } else {
    value_ = (1.0 - smoothing_) * value_ + smoothing_ * x;
  }
}

void Ema::reset() noexcept {
  value_ = 0.0;
  primed_ = false;
}

}  // namespace simfs
