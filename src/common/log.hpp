// Minimal leveled logger.
//
// The DV daemon and simulators log through this sink; benches keep it at
// kWarn so tables stay clean. Thread-safe: one global sink guarded by a
// mutex (logging is never on the DES hot path).
#pragma once

#include <cstdarg>
#include <string>

namespace simfs::log {

enum class Level : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Sets the global log threshold. Messages below it are dropped.
void setLevel(Level level) noexcept;

/// Returns the current global log threshold.
[[nodiscard]] Level level() noexcept;

/// Parses "trace|debug|info|warn|error|off" (case-insensitive).
/// Unknown strings leave the level unchanged and return false.
bool setLevelFromString(const std::string& name) noexcept;

/// printf-style logging. `tag` is a short module name (e.g. "dv").
void logf(Level level, const char* tag, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace simfs::log

#define SIMFS_LOG_TRACE(tag, ...) \
  ::simfs::log::logf(::simfs::log::Level::kTrace, tag, __VA_ARGS__)
#define SIMFS_LOG_DEBUG(tag, ...) \
  ::simfs::log::logf(::simfs::log::Level::kDebug, tag, __VA_ARGS__)
#define SIMFS_LOG_INFO(tag, ...) \
  ::simfs::log::logf(::simfs::log::Level::kInfo, tag, __VA_ARGS__)
#define SIMFS_LOG_WARN(tag, ...) \
  ::simfs::log::logf(::simfs::log::Level::kWarn, tag, __VA_ARGS__)
#define SIMFS_LOG_ERROR(tag, ...) \
  ::simfs::log::logf(::simfs::log::Level::kError, tag, __VA_ARGS__)
