#include "common/status.hpp"

namespace simfs {

const char* statusCodeName(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kAlreadyExists: return "already_exists";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kOutOfRange: return "out_of_range";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kFailedPrecondition: return "failed_precondition";
    case StatusCode::kRestartFailed: return "restart_failed";
    case StatusCode::kTimedOut: return "timed_out";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kIoError: return "io_error";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kUnreachable: return "unreachable";
    case StatusCode::kNotLeased: return "not_leased";
  }
  return "unknown";
}

}  // namespace simfs
