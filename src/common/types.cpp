#include "common/types.hpp"

#include <array>
#include <cstdio>

namespace simfs {
namespace vtime {

std::string toString(VTime t) {
  if (t == kNoTime) return "never";
  if (t == kTimeInf) return "inf";
  const bool neg = t < 0;
  if (neg) t = -t;
  std::array<char, 64> buf{};
  const auto days = t / kDay;
  t %= kDay;
  const auto hours = t / kHour;
  t %= kHour;
  const auto mins = t / kMinute;
  t %= kMinute;
  const double secs = static_cast<double>(t) / static_cast<double>(kSecond);
  int n = 0;
  if (days > 0) {
    n = std::snprintf(buf.data(), buf.size(), "%s%lldd%lldh%lldm%.3fs",
                      neg ? "-" : "", static_cast<long long>(days),
                      static_cast<long long>(hours),
                      static_cast<long long>(mins), secs);
  } else if (hours > 0) {
    n = std::snprintf(buf.data(), buf.size(), "%s%lldh%lldm%.3fs",
                      neg ? "-" : "", static_cast<long long>(hours),
                      static_cast<long long>(mins), secs);
  } else if (mins > 0) {
    n = std::snprintf(buf.data(), buf.size(), "%s%lldm%.3fs", neg ? "-" : "",
                      static_cast<long long>(mins), secs);
  } else {
    n = std::snprintf(buf.data(), buf.size(), "%s%.6fs", neg ? "-" : "", secs);
  }
  return std::string(buf.data(), static_cast<size_t>(n));
}

}  // namespace vtime

namespace bytes {

std::string toString(Bytes b) {
  std::array<char, 64> buf{};
  int n = 0;
  if (b >= TiB) {
    n = std::snprintf(buf.data(), buf.size(), "%.2fTiB",
                      static_cast<double>(b) / static_cast<double>(TiB));
  } else if (b >= GiB) {
    n = std::snprintf(buf.data(), buf.size(), "%.2fGiB",
                      static_cast<double>(b) / static_cast<double>(GiB));
  } else if (b >= MiB) {
    n = std::snprintf(buf.data(), buf.size(), "%.2fMiB",
                      static_cast<double>(b) / static_cast<double>(MiB));
  } else if (b >= KiB) {
    n = std::snprintf(buf.data(), buf.size(), "%.2fKiB",
                      static_cast<double>(b) / static_cast<double>(KiB));
  } else {
    n = std::snprintf(buf.data(), buf.size(), "%lluB",
                      static_cast<unsigned long long>(b));
  }
  return std::string(buf.data(), static_cast<size_t>(n));
}

}  // namespace bytes
}  // namespace simfs
