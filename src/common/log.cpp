#include "common/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <mutex>

namespace simfs::log {
namespace {

std::atomic<Level> g_level{Level::kWarn};
std::mutex g_mutex;

const char* levelName(Level l) noexcept {
  switch (l) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void setLevel(Level level) noexcept { g_level.store(level); }

Level level() noexcept { return g_level.load(); }

bool setLevelFromString(const std::string& name) noexcept {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "trace") { setLevel(Level::kTrace); return true; }
  if (lower == "debug") { setLevel(Level::kDebug); return true; }
  if (lower == "info") { setLevel(Level::kInfo); return true; }
  if (lower == "warn") { setLevel(Level::kWarn); return true; }
  if (lower == "error") { setLevel(Level::kError); return true; }
  if (lower == "off") { setLevel(Level::kOff); return true; }
  return false;
}

void logf(Level level, const char* tag, const char* fmt, ...) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s %s] ", levelName(level), tag);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace simfs::log
