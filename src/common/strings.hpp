// Small string helpers shared by the driver parser, trace I/O, and CLIs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace simfs::str {

/// Splits on a single character; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Removes ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// True if `s` begins with `prefix`.
[[nodiscard]] bool startsWith(std::string_view s, std::string_view prefix) noexcept;

/// True if `s` ends with `suffix`.
[[nodiscard]] bool endsWith(std::string_view s, std::string_view suffix) noexcept;

/// Lowercases ASCII.
[[nodiscard]] std::string toLower(std::string_view s);

/// Parses a signed integer; rejects trailing garbage.
[[nodiscard]] std::optional<std::int64_t> parseInt(std::string_view s) noexcept;

/// Parses a double; rejects trailing garbage.
[[nodiscard]] std::optional<double> parseDouble(std::string_view s) noexcept;

/// printf-style formatting into a std::string.
[[nodiscard]] std::string format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins elements with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Replaces every occurrence of `from` (non-empty) with `to`.
[[nodiscard]] std::string replaceAll(std::string_view s, std::string_view from,
                                     std::string_view to);

}  // namespace simfs::str
