#include "common/clock.hpp"

#include <cassert>
#include <chrono>

namespace simfs {

VTime RealClock::now() const noexcept {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(t).count();
}

void ManualClock::advanceTo(VTime t) noexcept {
  assert(t >= now_ && "ManualClock cannot move backwards");
  if (t > now_) now_ = t;
}

}  // namespace simfs
