#include "common/fault.hpp"

#include "common/env.hpp"
#include "common/rng.hpp"

#include <array>
#include <atomic>
#include <charconv>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

namespace simfs::fault {
namespace {

struct PointRules {
  double failProbability = 0.0;   // 0 = no fail rule
  std::int64_t delayNs = 0;       // 0 = no delay rule
  std::uint32_t closeAfter = 0;   // 0 = no close_after rule
};

struct Config {
  std::array<PointRules, kPointCount> points{};
  Rng rng{1};
  std::string spec;
  bool anyRule = false;
};

std::atomic<bool> g_active{false};
std::mutex g_mutex;           // guards g_config (rules + RNG draws)
Config g_config;              // under g_mutex
std::atomic<bool> g_envParsed{false};

bool parsePoint(std::string_view name, Point* out) {
  if (name == "peer_dial") { *out = Point::kPeerDial; return true; }
  if (name == "recv") { *out = Point::kRecv; return true; }
  if (name == "send") { *out = Point::kSend; return true; }
  if (name == "conn") { *out = Point::kConn; return true; }
  if (name == "drain") { *out = Point::kDrain; return true; }
  if (name == "handoff") { *out = Point::kHandoff; return true; }
  return false;
}

bool parseU64(std::string_view s, std::uint64_t* out) {
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last;
}

bool parseDouble(std::string_view s, double* out) {
  // from_chars<double> is available in libstdc++ >= 11.
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last;
}

/// "5ms" / "100us" / "2s" / "250ns" -> nanoseconds; false on bad input.
bool parseDuration(std::string_view s, std::int64_t* outNs) {
  std::size_t unitAt = s.size();
  while (unitAt > 0 && !(s[unitAt - 1] >= '0' && s[unitAt - 1] <= '9')) {
    --unitAt;
  }
  const std::string_view digits = s.substr(0, unitAt);
  const std::string_view unit = s.substr(unitAt);
  std::uint64_t n = 0;
  if (!parseU64(digits, &n)) return false;
  std::int64_t scale = 0;
  if (unit == "ns") scale = 1;
  else if (unit == "us") scale = 1000;
  else if (unit == "ms") scale = 1000 * 1000;
  else if (unit == "s") scale = 1000LL * 1000 * 1000;
  else return false;
  *outNs = static_cast<std::int64_t>(n) * scale;
  return true;
}

/// Parses one `point:action[:arg]` rule into `cfg`. Unknown tokens are
/// skipped so newer specs degrade gracefully on older binaries.
void applyRule(Config& cfg, std::string_view rule, std::uint64_t* seed) {
  const auto c1 = rule.find(':');
  if (c1 == std::string_view::npos) return;
  const std::string_view head = rule.substr(0, c1);
  std::string_view rest = rule.substr(c1 + 1);

  if (head == "seed") {
    std::uint64_t s = 0;
    if (parseU64(rest, &s)) *seed = s;
    return;
  }

  Point point{};
  if (!parsePoint(head, &point)) return;
  const auto c2 = rest.find(':');
  const std::string_view action =
      c2 == std::string_view::npos ? rest : rest.substr(0, c2);
  const std::string_view arg =
      c2 == std::string_view::npos ? std::string_view() : rest.substr(c2 + 1);
  PointRules& rules = cfg.points[static_cast<std::size_t>(point)];

  if (action == "fail") {
    double p = 0;
    if (parseDouble(arg, &p) && p > 0.0) {
      rules.failProbability = p > 1.0 ? 1.0 : p;
      cfg.anyRule = true;
    }
  } else if (action == "delay") {
    std::int64_t ns = 0;
    if (parseDuration(arg, &ns) && ns > 0) {
      rules.delayNs = ns;
      cfg.anyRule = true;
    }
  } else if (action == "close_after") {
    std::uint64_t n = 0;
    if (parseU64(arg, &n) && n > 0) {
      rules.closeAfter = static_cast<std::uint32_t>(n);
      cfg.anyRule = true;
    }
  }
}

void installLocked(std::string_view spec, std::uint64_t seed) {
  Config cfg;
  std::uint64_t effectiveSeed = seed;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find_first_of(",;", begin);
    if (end == std::string_view::npos) end = spec.size();
    std::string_view rule = spec.substr(begin, end - begin);
    // Trim surrounding spaces.
    while (!rule.empty() && rule.front() == ' ') rule.remove_prefix(1);
    while (!rule.empty() && rule.back() == ' ') rule.remove_suffix(1);
    if (!rule.empty()) applyRule(cfg, rule, &effectiveSeed);
    begin = end + 1;
  }
  cfg.rng = Rng(effectiveSeed);
  cfg.spec = std::string(spec);
  g_config = std::move(cfg);
  g_active.store(g_config.anyRule, std::memory_order_release);
}

void parseEnvLocked() {
  const auto spec = env::getOr("SIMFS_FAULTS", "");
  const auto seed = env::getInt("SIMFS_FAULT_SEED").value_or(1);
  installLocked(spec, static_cast<std::uint64_t>(seed));
  g_envParsed.store(true, std::memory_order_release);
}

void ensureParsed() {
  if (g_envParsed.load(std::memory_order_acquire)) return;
  std::lock_guard lock(g_mutex);
  if (!g_envParsed.load(std::memory_order_relaxed)) parseEnvLocked();
}

}  // namespace

bool active() noexcept {
  if (!g_envParsed.load(std::memory_order_acquire)) ensureParsed();
  return g_active.load(std::memory_order_relaxed);
}

void configure(std::string_view spec, std::uint64_t seed) {
  std::lock_guard lock(g_mutex);
  installLocked(spec, seed);
  g_envParsed.store(true, std::memory_order_release);
}

void reset() {
  std::lock_guard lock(g_mutex);
  parseEnvLocked();
}

bool shouldFail(Point p) noexcept {
  std::lock_guard lock(g_mutex);
  PointRules& rules = g_config.points[static_cast<std::size_t>(p)];
  if (rules.failProbability <= 0.0) return false;
  return g_config.rng.bernoulli(rules.failProbability);
}

void maybeDelay(Point p) noexcept {
  std::int64_t ns = 0;
  {
    std::lock_guard lock(g_mutex);
    ns = g_config.points[static_cast<std::size_t>(p)].delayNs;
  }
  if (ns > 0) std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

std::uint32_t closeAfterLimit() noexcept {
  std::lock_guard lock(g_mutex);
  return g_config.points[static_cast<std::size_t>(Point::kConn)].closeAfter;
}

std::string describe() {
  ensureParsed();
  std::lock_guard lock(g_mutex);
  return g_config.anyRule ? g_config.spec : std::string();
}

}  // namespace simfs::fault
