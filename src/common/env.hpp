// Environment-variable helpers.
//
// The paper configures the transparent mode's simulation context through an
// environment variable (Sec. III-C1: SIMFS_CONTEXT); DVLib reads it here.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace simfs::env {

/// Returns the variable's value or nullopt if unset.
[[nodiscard]] std::optional<std::string> get(const std::string& name);

/// Returns the variable's value or `fallback` if unset.
[[nodiscard]] std::string getOr(const std::string& name, std::string fallback);

/// Parses an integer-valued variable; nullopt if unset or unparsable.
[[nodiscard]] std::optional<std::int64_t> getInt(const std::string& name);

}  // namespace simfs::env
