#include "common/checksum.hpp"

#include <array>
#include <cstdio>

namespace simfs {
namespace {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

std::array<std::uint32_t, 256> makeCrc32cTable() noexcept {
  std::array<std::uint32_t, 256> table{};
  constexpr std::uint32_t poly = 0x82F63B78U;  // reflected Castagnoli
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1U) ? (crc >> 1) ^ poly : (crc >> 1);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc32cTable() noexcept {
  static const auto table = makeCrc32cTable();
  return table;
}

}  // namespace

std::uint64_t fnv1a64(std::span<const std::byte> data) noexcept {
  std::uint64_t h = kFnvOffset;
  for (std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a64(std::string_view data) noexcept {
  return fnv1a64(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(data.data()), data.size()));
}

std::uint32_t crc32c(std::span<const std::byte> data) noexcept {
  const auto& table = crc32cTable();
  std::uint32_t crc = 0xFFFFFFFFU;
  for (std::byte b : data) {
    crc = table[(crc ^ static_cast<std::uint32_t>(b)) & 0xFFU] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFU;
}

std::uint32_t crc32c(std::string_view data) noexcept {
  return crc32c(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(data.data()), data.size()));
}

void Fnv1a64Hasher::update(std::span<const std::byte> data) noexcept {
  for (std::byte b : data) {
    state_ ^= static_cast<std::uint64_t>(b);
    state_ *= kFnvPrime;
  }
}

void Fnv1a64Hasher::update(std::string_view data) noexcept {
  update(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(data.data()), data.size()));
}

std::string digestToHex(std::uint64_t digest) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

}  // namespace simfs
