// Deterministic fault injection for failure-domain testing.
//
// A process opts in through the SIMFS_FAULTS environment variable — a
// comma/semicolon-separated rule list, each rule `<point>:<action>[:<arg>]`:
//
//   peer_dial:fail:0.3     fail 30% of daemon peer-transport dials
//   recv:delay:5ms         sleep 5 ms before dispatching a received frame
//   conn:close_after:64    hard-close a socket after 64 received frames
//   send:fail:0.05         fail 5% of transport sends with kUnavailable
//   drain:delay:1ms        sleep 1 ms per shard drain batch
//   handoff:fail:0.5       abort 50% of context-handoff snapshot frames
//   handoff:delay:10ms     sleep 10 ms before each handoff frame is sent
//   seed:42                seed the fault RNG (default SIMFS_FAULT_SEED or 1)
//
// Durations accept ns/us/ms/s suffixes. Probabilistic rules draw from one
// seeded xoshiro stream, so a given (spec, seed) pair replays the same fault
// schedule — tests assert recovery, not luck.
//
// Zero-cost when unset: every call site guards with fault::active(), a single
// relaxed atomic load that is false unless SIMFS_FAULTS parsed to at least
// one rule (or a test called fault::configure). No rule lookup, no RNG, no
// lock on the fast path.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace simfs::fault {

/// Instrumented locations. Call sites name the point; rules attach to it.
enum class Point : std::uint8_t {
  kPeerDial = 0,  ///< daemon dialing a cached peer transport
  kRecv,          ///< reactor delivering a received frame
  kSend,          ///< transport queueing an outbound frame
  kConn,          ///< per-connection lifetime (close_after)
  kDrain,         ///< shard drain batch
  kHandoff,       ///< old owner streaming a context-handoff frame
};
inline constexpr std::size_t kPointCount = 6;

/// True when at least one fault rule is installed. The only check hot
/// paths make; keep every other helper behind it.
[[nodiscard]] bool active() noexcept;

/// (Re)parses a spec string — the test hook. An empty spec deactivates
/// injection. Unknown points/actions are ignored (forward compatibility),
/// malformed arguments disable the rule. Thread-safe, but intended for
/// test setup, not concurrent reconfiguration under load.
void configure(std::string_view spec, std::uint64_t seed);

/// Restores the environment-driven configuration (SIMFS_FAULTS /
/// SIMFS_FAULT_SEED, parsed lazily on first use).
void reset();

/// Draws the `<point>:fail:<p>` rule: true = the call site must fail as
/// if the real operation failed. Always false when no such rule exists.
[[nodiscard]] bool shouldFail(Point p) noexcept;

/// Applies the `<point>:delay:<dur>` rule by sleeping. No-op without one.
void maybeDelay(Point p) noexcept;

/// The `conn:close_after:<N>` limit, 0 when unset. Connections count
/// received frames themselves and tear down once the count reaches N.
[[nodiscard]] std::uint32_t closeAfterLimit() noexcept;

/// Human-readable dump of the installed rules ("" when inactive) — logged
/// once by daemons at startup so fault runs are self-describing.
[[nodiscard]] std::string describe();

}  // namespace simfs::fault
