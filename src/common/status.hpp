// Status / Result<T> error handling used across SimFS.
//
// SimFS avoids exceptions on hot paths (DV request handling, cache ops,
// event loop). Functions that can fail return Status or Result<T>;
// programming errors use assertions (SIMFS_CHECK).
#pragma once

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace simfs {

/// Machine-readable error categories, loosely mirroring POSIX + SimFS
/// protocol errors (e.g. kRestartFailed maps to SIMFS_Status error states).
enum class StatusCode : int {
  kOk = 0,
  kNotFound,        // file/context/key does not exist
  kAlreadyExists,   // creating something that exists
  kInvalidArgument, // caller passed a bad value
  kOutOfRange,      // index outside the simulation timeline
  kResourceExhausted, // quota exceeded, no evictable entry, ...
  kUnavailable,     // transport down / daemon not reachable
  kFailedPrecondition, // call sequencing violated (e.g. wait without acquire)
  kRestartFailed,   // the (re-)simulation job failed to start or crashed
  kTimedOut,        // blocking call exceeded its deadline
  kCancelled,       // request cancelled (client gone, sim killed)
  kIoError,         // underlying filesystem / socket error
  kInternal,        // invariant violation escaped as error
  kUnreachable,     // retry budget exhausted: the op terminally failed to
                    // reach a daemon (distinct from kUnavailable, which is
                    // transient and retried)
  kNotLeased,       // replica node: step is not covered by an active
                    // read lease; the client retries the batch at the
                    // ring owner
};

/// Returns a stable lowercase name for a StatusCode (for logs and tests).
[[nodiscard]] const char* statusCodeName(StatusCode code) noexcept;

/// A cheap error-or-ok value. Ok status carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  /// Constructs an error status with a message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status ok() noexcept { return {}; }

  [[nodiscard]] bool isOk() const noexcept { return code_ == StatusCode::kOk; }
  explicit operator bool() const noexcept { return isOk(); }

  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// Renders "code: message" for logging.
  [[nodiscard]] std::string toString() const {
    if (isOk()) return "ok";
    return std::string(statusCodeName(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Convenience factories mirroring the StatusCode list.
[[nodiscard]] inline Status errNotFound(std::string m) {
  return {StatusCode::kNotFound, std::move(m)};
}
[[nodiscard]] inline Status errAlreadyExists(std::string m) {
  return {StatusCode::kAlreadyExists, std::move(m)};
}
[[nodiscard]] inline Status errInvalidArgument(std::string m) {
  return {StatusCode::kInvalidArgument, std::move(m)};
}
[[nodiscard]] inline Status errOutOfRange(std::string m) {
  return {StatusCode::kOutOfRange, std::move(m)};
}
[[nodiscard]] inline Status errResourceExhausted(std::string m) {
  return {StatusCode::kResourceExhausted, std::move(m)};
}
[[nodiscard]] inline Status errUnavailable(std::string m) {
  return {StatusCode::kUnavailable, std::move(m)};
}
[[nodiscard]] inline Status errFailedPrecondition(std::string m) {
  return {StatusCode::kFailedPrecondition, std::move(m)};
}
[[nodiscard]] inline Status errRestartFailed(std::string m) {
  return {StatusCode::kRestartFailed, std::move(m)};
}
[[nodiscard]] inline Status errTimedOut(std::string m) {
  return {StatusCode::kTimedOut, std::move(m)};
}
[[nodiscard]] inline Status errCancelled(std::string m) {
  return {StatusCode::kCancelled, std::move(m)};
}
[[nodiscard]] inline Status errIoError(std::string m) {
  return {StatusCode::kIoError, std::move(m)};
}
[[nodiscard]] inline Status errInternal(std::string m) {
  return {StatusCode::kInternal, std::move(m)};
}
[[nodiscard]] inline Status errUnreachable(std::string m) {
  return {StatusCode::kUnreachable, std::move(m)};
}
[[nodiscard]] inline Status errNotLeased(std::string m) {
  return {StatusCode::kNotLeased, std::move(m)};
}

/// Value-or-error. Like std::expected (which libstdc++ 12 lacks).
template <typename T>
class Result {
 public:
  /// Implicit from value: `return 42;`
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit from error status: `return errNotFound(...);`
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.isOk() && "Result(Status) requires an error status");
  }

  [[nodiscard]] bool isOk() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return isOk(); }

  [[nodiscard]] const Status& status() const noexcept { return status_; }

  /// Access the value; asserts in debug builds if this holds an error.
  [[nodiscard]] T& value() & {
    assert(isOk());
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    assert(isOk());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    assert(isOk());
    return std::move(*value_);
  }

  [[nodiscard]] T valueOr(T fallback) const& {
    return isOk() ? *value_ : std::move(fallback);
  }

  [[nodiscard]] T* operator->() {
    assert(isOk());
    return &*value_;
  }
  [[nodiscard]] const T* operator->() const {
    assert(isOk());
    return &*value_;
  }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T& operator*() const& { return value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Fatal invariant check that stays active in release builds.
#define SIMFS_CHECK(cond)                                                 \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "SIMFS_CHECK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

/// Propagates an error Status out of the current function.
#define SIMFS_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::simfs::Status _simfs_st = (expr);        \
    if (!_simfs_st.isOk()) return _simfs_st;   \
  } while (false)

}  // namespace simfs
