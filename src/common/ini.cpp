#include "common/ini.hpp"

#include "common/strings.hpp"

#include <fstream>
#include <sstream>

namespace simfs {

Result<IniDoc> IniDoc::parse(std::string_view text) {
  IniDoc doc;
  std::string section;
  int lineno = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto nl = text.find('\n', pos);
    const auto lineEnd = (nl == std::string_view::npos) ? text.size() : nl;
    std::string_view line = str::trim(text.substr(pos, lineEnd - pos));
    pos = lineEnd + 1;
    ++lineno;
    if (nl == std::string_view::npos && line.empty()) break;
    if (line.empty() || line.front() == ';' || line.front() == '#') continue;
    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        return errInvalidArgument(
            str::format("ini: malformed section header at line %d", lineno));
      }
      section = std::string(str::trim(line.substr(1, line.size() - 2)));
      doc.sections_[section];  // materialize even if empty
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      return errInvalidArgument(
          str::format("ini: missing '=' at line %d", lineno));
    }
    const auto key = std::string(str::trim(line.substr(0, eq)));
    const auto value = std::string(str::trim(line.substr(eq + 1)));
    if (key.empty()) {
      return errInvalidArgument(str::format("ini: empty key at line %d", lineno));
    }
    doc.sections_[section][key] = value;
  }
  return doc;
}

Result<IniDoc> IniDoc::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return errIoError("ini: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

std::optional<std::string> IniDoc::get(const std::string& section,
                                       const std::string& key) const {
  const auto sit = sections_.find(section);
  if (sit == sections_.end()) return std::nullopt;
  const auto kit = sit->second.find(key);
  if (kit == sit->second.end()) return std::nullopt;
  return kit->second;
}

std::optional<std::int64_t> IniDoc::getInt(const std::string& section,
                                           const std::string& key) const {
  const auto v = get(section, key);
  if (!v) return std::nullopt;
  return str::parseInt(*v);
}

std::optional<double> IniDoc::getDouble(const std::string& section,
                                        const std::string& key) const {
  const auto v = get(section, key);
  if (!v) return std::nullopt;
  return str::parseDouble(*v);
}

std::string IniDoc::getOr(const std::string& section, const std::string& key,
                          std::string fallback) const {
  auto v = get(section, key);
  return v ? *v : std::move(fallback);
}

std::int64_t IniDoc::getIntOr(const std::string& section,
                              const std::string& key,
                              std::int64_t fallback) const {
  const auto v = getInt(section, key);
  return v ? *v : fallback;
}

double IniDoc::getDoubleOr(const std::string& section, const std::string& key,
                           double fallback) const {
  const auto v = getDouble(section, key);
  return v ? *v : fallback;
}

bool IniDoc::hasSection(const std::string& section) const {
  return sections_.count(section) > 0;
}

std::vector<std::string> IniDoc::keys(const std::string& section) const {
  std::vector<std::string> out;
  const auto sit = sections_.find(section);
  if (sit == sections_.end()) return out;
  out.reserve(sit->second.size());
  for (const auto& [k, _] : sit->second) out.push_back(k);
  return out;
}

void IniDoc::set(const std::string& section, const std::string& key,
                 std::string value) {
  sections_[section][key] = std::move(value);
}

}  // namespace simfs
