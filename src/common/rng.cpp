#include "common/rng.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace simfs {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~range + 1) % range;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) {
      return lo + static_cast<std::int64_t>(r % range);
    }
  }
}

double Rng::uniformReal() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniformReal(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniformReal();
}

double Rng::exponential(double mean) noexcept {
  assert(mean > 0);
  double u;
  do { u = uniformReal(); } while (u <= 0.0);
  return -mean * std::log(u);
}

bool Rng::bernoulli(double p) noexcept { return uniformReal() < p; }

Rng Rng::split() noexcept { return Rng((*this)() ^ 0xA5A5A5A5DEADBEEFULL); }

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against FP rounding at the tail
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniformReal();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace simfs
