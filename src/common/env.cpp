#include "common/env.hpp"

#include "common/strings.hpp"

#include <cstdlib>

namespace simfs::env {

std::optional<std::string> get(const std::string& name) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr) return std::nullopt;
  return std::string(v);
}

std::string getOr(const std::string& name, std::string fallback) {
  auto v = get(name);
  return v ? *v : std::move(fallback);
}

std::optional<std::int64_t> getInt(const std::string& name) {
  const auto v = get(name);
  if (!v) return std::nullopt;
  return str::parseInt(*v);
}

}  // namespace simfs::env
