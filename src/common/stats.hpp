// Summary statistics for experiment harnesses.
//
// The paper reports medians with 95% confidence intervals over repeated
// runs (Fig. 5 caption); Summary reproduces that reporting. Ema implements
// the exponential moving average the DV uses to track restart latencies
// (Sec. IV-C1c).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace simfs {

/// Collects samples and reports order statistics.
class Summary {
 public:
  /// Adds one observation.
  void add(double x) { samples_.push_back(x); }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double median() const;

  /// Order-statistic quantile with linear interpolation, q in [0, 1].
  [[nodiscard]] double quantile(double q) const;

  /// Nonparametric 95% CI of the median via binomial order statistics
  /// (the standard way to put a CI on a median without normality).
  struct Interval {
    double lo = 0.0;
    double hi = 0.0;
  };
  [[nodiscard]] Interval medianCi95() const;

  /// "median [lo, hi]" convenience formatting.
  [[nodiscard]] std::string toString() const;

 private:
  /// Sorted copy of the samples (the collector itself is append-only).
  [[nodiscard]] std::vector<double> sorted() const;

  std::vector<double> samples_;
};

/// Exponential moving average: est <- (1-a)*est + a*observation.
///
/// The smoothing factor is a simulation-context parameter in the paper;
/// SimFS uses it to estimate restart latencies (alpha_sim) online.
class Ema {
 public:
  /// `smoothing` in (0, 1]; higher tracks recent observations faster.
  explicit Ema(double smoothing = 0.5) noexcept;

  /// Feeds one observation; the first observation initializes the estimate.
  void observe(double x) noexcept;

  /// Current estimate; 0 until the first observation.
  [[nodiscard]] double value() const noexcept { return value_; }

  /// True once at least one observation was recorded.
  [[nodiscard]] bool primed() const noexcept { return primed_; }

  /// Drops all state (used when a prefetch agent resets).
  void reset() noexcept;

  [[nodiscard]] double smoothing() const noexcept { return smoothing_; }

 private:
  double smoothing_;
  double value_ = 0.0;
  bool primed_ = false;
};

}  // namespace simfs
