// Core value types shared by every SimFS module.
//
// SimFS models time as 64-bit signed nanoseconds ("virtual time", VTime).
// All event-queue arithmetic is integral so discrete-event runs are exactly
// reproducible; floating-point seconds only appear at API edges.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace simfs {

/// Virtual time in nanoseconds. Signed so durations/differences are natural.
using VTime = std::int64_t;

/// A duration in virtual-time nanoseconds.
using VDuration = std::int64_t;

/// Index of an output step (d_i in the paper). Steps are numbered from 0.
using StepIndex = std::int64_t;

/// Index of a restart step (r_j in the paper).
using RestartIndex = std::int64_t;

/// Identifier of a connected client (analysis application) session.
using ClientId = std::uint64_t;

/// Identifier of a running (re-)simulation job.
using SimJobId = std::uint64_t;

/// Bytes; used for file sizes and storage quotas.
using Bytes = std::uint64_t;

/// Sentinel for "no step".
inline constexpr StepIndex kNoStep = std::numeric_limits<StepIndex>::min();

/// Sentinel for "never" / unset time.
inline constexpr VTime kNoTime = std::numeric_limits<VTime>::min();

/// Largest representable time (used as "infinity" in schedulers).
inline constexpr VTime kTimeInf = std::numeric_limits<VTime>::max();

namespace vtime {

inline constexpr VTime kNanosecond = 1;
inline constexpr VTime kMicrosecond = 1000 * kNanosecond;
inline constexpr VTime kMillisecond = 1000 * kMicrosecond;
inline constexpr VTime kSecond = 1000 * kMillisecond;
inline constexpr VTime kMinute = 60 * kSecond;
inline constexpr VTime kHour = 60 * kMinute;
inline constexpr VTime kDay = 24 * kHour;

/// Converts floating-point seconds to VTime, rounding to nearest ns.
[[nodiscard]] constexpr VTime fromSeconds(double s) noexcept {
  return static_cast<VTime>(s * static_cast<double>(kSecond) +
                            (s >= 0 ? 0.5 : -0.5));
}

/// Converts VTime to floating-point seconds.
[[nodiscard]] constexpr double toSeconds(VTime t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Converts VTime to floating-point hours (cost models bill per node-hour).
[[nodiscard]] constexpr double toHours(VTime t) noexcept {
  return toSeconds(t) / 3600.0;
}

/// Renders a VTime as a short human-readable string, e.g. "2m3.5s".
[[nodiscard]] std::string toString(VTime t);

}  // namespace vtime

namespace bytes {

inline constexpr Bytes KiB = 1024;
inline constexpr Bytes MiB = 1024 * KiB;
inline constexpr Bytes GiB = 1024 * MiB;
inline constexpr Bytes TiB = 1024 * GiB;

/// Converts bytes to GiB as a double (cost models price $/GiB/month).
[[nodiscard]] constexpr double toGiB(Bytes b) noexcept {
  return static_cast<double>(b) / static_cast<double>(GiB);
}

/// Renders a byte count as a short human-readable string, e.g. "6.0GiB".
[[nodiscard]] std::string toString(Bytes b);

}  // namespace bytes
}  // namespace simfs
