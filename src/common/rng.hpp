// Deterministic random number generation for trace synthesis and
// workload generators.
//
// xoshiro256** (public domain, Blackman & Vigna) seeded via SplitMix64.
// All SimFS experiments take explicit seeds so every figure regenerates
// bit-identically.
#pragma once

#include <cstdint>
#include <vector>

namespace simfs {

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from `seed` through SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next 64 random bits.
  result_type operator()() noexcept;

  /// Uniform integer in [lo, hi] inclusive (unbiased via rejection).
  [[nodiscard]] std::int64_t uniformInt(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniformReal() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniformReal(double lo, double hi) noexcept;

  /// Exponentially distributed double with the given mean (> 0).
  [[nodiscard]] double exponential(double mean) noexcept;

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Fisher-Yates shuffles a vector in place.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniformInt(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for per-trace streams).
  [[nodiscard]] Rng split() noexcept;

 private:
  std::uint64_t s_[4];
};

/// Zipf-distributed integer sampler over {0, ..., n-1} with exponent `s`.
///
/// Uses the classic inverse-CDF table (O(n) memory, O(log n) sample), which
/// is exact — important because Fig. 5's ECMWF-like trace relies on a
/// heavy-tailed popularity distribution.
class ZipfSampler {
 public:
  /// `n` ranks, exponent `s` (>0). s≈0.9 approximates archival traces.
  ZipfSampler(std::size_t n, double s);

  /// Samples a rank in [0, n).
  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace simfs
