// Clock abstraction: the DV core and DVLib never read wall time directly.
//
// In live (daemon) mode they are given a RealClock; in discrete-event mode
// the engine advances a ManualClock. This is the seam that lets the same
// DV code run the paper's experiments in virtual time.
#pragma once

#include "common/types.hpp"

namespace simfs {

/// Monotonic time source interface.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in virtual-time nanoseconds. Monotonic, non-decreasing.
  [[nodiscard]] virtual VTime now() const noexcept = 0;
};

/// Wall-clock backed by std::chrono::steady_clock.
class RealClock final : public Clock {
 public:
  [[nodiscard]] VTime now() const noexcept override;
};

/// Manually-advanced clock used by the discrete-event engine and by tests.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(VTime start = 0) noexcept : now_(start) {}

  [[nodiscard]] VTime now() const noexcept override { return now_; }

  /// Moves time forward to `t`; moving backwards is an invariant violation.
  void advanceTo(VTime t) noexcept;

  /// Moves time forward by `d` nanoseconds.
  void advanceBy(VDuration d) noexcept { advanceTo(now_ + d); }

 private:
  VTime now_;
};

}  // namespace simfs
