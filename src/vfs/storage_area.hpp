// StorageArea: quota-tracked metadata view of a simulation context's
// output directory (Sec. III-A).
//
// "we associate each simulation context with a storage area (i.e., a file
//  system directory). [...] The simulation context also specifies the
//  maximum size of its storage area."
//
// The DV does all its accounting here (sizes, reference counts); actual
// bytes may live in a FileStore (live mode) or nowhere (DES mode).
//
// Output steps are tracked under their StepIndex (the DV's hot path never
// materializes a filename for quota accounting); the string-keyed table
// remains for files that genuinely are names — restart files and whatever
// operator tooling registers.
#pragma once

#include "common/status.hpp"
#include "common/types.hpp"

#include <string>
#include <unordered_map>
#include <vector>

namespace simfs::vfs {

/// Metadata-only storage accounting with a byte quota and per-file
/// reference counts (an output step can be evicted only when unreferenced).
class StorageArea {
 public:
  /// `quota` == 0 means unlimited.
  StorageArea(std::string name, Bytes quota)
      : name_(std::move(name)), quota_(quota) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Bytes quota() const noexcept { return quota_; }
  [[nodiscard]] Bytes used() const noexcept { return used_; }
  [[nodiscard]] std::size_t fileCount() const noexcept {
    return files_.size() + steps_.size();
  }

  // --- integer-keyed output-step accounting (DV hot path) -----------------

  /// Registers an output step; kAlreadyExists if present.
  Status addStep(StepIndex step, Bytes size);

  /// Unregisters an output step; kNotFound if absent, kFailedPrecondition
  /// if still referenced.
  Status removeStep(StepIndex step);

  [[nodiscard]] bool containsStep(StepIndex step) const noexcept {
    return steps_.count(step) > 0;
  }

  /// Size of a registered step; 0 if absent.
  [[nodiscard]] Bytes stepSize(StepIndex step) const noexcept;

  [[nodiscard]] std::size_t stepCount() const noexcept { return steps_.size(); }

  /// Visits every registered output step as (step, size) without
  /// materializing filenames.
  template <typename Fn>
  void forEachStep(Fn&& fn) const {
    for (const auto& [step, entry] : steps_) fn(step, entry.size);
  }

  /// Registers a file; kAlreadyExists if present. Quota is NOT enforced
  /// here: the DV evicts *after* a simulator writes (files appear on disk
  /// first; see Fig. 4 step 4), so usage may transiently exceed the quota.
  [[nodiscard]] Status addFile(const std::string& file, Bytes size);

  /// Unregisters a file; kNotFound if absent, kFailedPrecondition if the
  /// file is still referenced by some analysis.
  [[nodiscard]] Status removeFile(const std::string& file);

  [[nodiscard]] bool contains(const std::string& file) const noexcept {
    return files_.count(file) > 0;
  }

  /// Size of a registered file; 0 if absent.
  [[nodiscard]] Bytes sizeOf(const std::string& file) const noexcept;

  /// True if usage currently exceeds the quota (eviction needed).
  [[nodiscard]] bool overQuota() const noexcept {
    return quota_ != 0 && used_ > quota_;
  }

  /// Bytes above quota (0 when within quota or unlimited).
  [[nodiscard]] Bytes excessBytes() const noexcept {
    return overQuota() ? used_ - quota_ : 0;
  }

  /// Increments the reference counter of a file (analysis opened it).
  /// The file must be registered.
  [[nodiscard]] Status ref(const std::string& file);

  /// Decrements the reference counter; kFailedPrecondition on underflow.
  [[nodiscard]] Status unref(const std::string& file);

  /// Current reference count (0 if absent).
  [[nodiscard]] int refCount(const std::string& file) const noexcept;

  /// True if the file exists and has zero references.
  [[nodiscard]] bool evictable(const std::string& file) const noexcept;

  /// All registered file names (unsorted).
  [[nodiscard]] std::vector<std::string> files() const;

 private:
  struct Entry {
    Bytes size = 0;
    int refs = 0;
  };

  std::string name_;
  Bytes quota_;
  Bytes used_ = 0;
  std::unordered_map<std::string, Entry> files_;
  std::unordered_map<StepIndex, Entry> steps_;
};

}  // namespace simfs::vfs
