#include "vfs/storage_area.hpp"

namespace simfs::vfs {

Status StorageArea::addStep(StepIndex step, Bytes size) {
  const auto [it, inserted] = steps_.emplace(step, Entry{size, 0});
  if (!inserted) {
    return errAlreadyExists("storage: step exists: " + std::to_string(step));
  }
  used_ += size;
  return Status::ok();
}

Status StorageArea::removeStep(StepIndex step) {
  const auto it = steps_.find(step);
  if (it == steps_.end()) {
    return errNotFound("storage: no step: " + std::to_string(step));
  }
  if (it->second.refs > 0) {
    return errFailedPrecondition("storage: step still referenced: " +
                                 std::to_string(step));
  }
  used_ -= it->second.size;
  steps_.erase(it);
  return Status::ok();
}

Bytes StorageArea::stepSize(StepIndex step) const noexcept {
  const auto it = steps_.find(step);
  return it == steps_.end() ? 0 : it->second.size;
}

Status StorageArea::addFile(const std::string& file, Bytes size) {
  const auto [it, inserted] = files_.emplace(file, Entry{size, 0});
  if (!inserted) return errAlreadyExists("storage: file exists: " + file);
  used_ += size;
  return Status::ok();
}

Status StorageArea::removeFile(const std::string& file) {
  const auto it = files_.find(file);
  if (it == files_.end()) return errNotFound("storage: no file: " + file);
  if (it->second.refs > 0) {
    return errFailedPrecondition("storage: file still referenced: " + file);
  }
  used_ -= it->second.size;
  files_.erase(it);
  return Status::ok();
}

Bytes StorageArea::sizeOf(const std::string& file) const noexcept {
  const auto it = files_.find(file);
  return it == files_.end() ? 0 : it->second.size;
}

Status StorageArea::ref(const std::string& file) {
  const auto it = files_.find(file);
  if (it == files_.end()) return errNotFound("storage: no file: " + file);
  ++it->second.refs;
  return Status::ok();
}

Status StorageArea::unref(const std::string& file) {
  const auto it = files_.find(file);
  if (it == files_.end()) return errNotFound("storage: no file: " + file);
  if (it->second.refs == 0) {
    return errFailedPrecondition("storage: refcount underflow: " + file);
  }
  --it->second.refs;
  return Status::ok();
}

int StorageArea::refCount(const std::string& file) const noexcept {
  const auto it = files_.find(file);
  return it == files_.end() ? 0 : it->second.refs;
}

bool StorageArea::evictable(const std::string& file) const noexcept {
  const auto it = files_.find(file);
  return it != files_.end() && it->second.refs == 0;
}

std::vector<std::string> StorageArea::files() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [k, _] : files_) out.push_back(k);
  return out;
}

}  // namespace simfs::vfs
