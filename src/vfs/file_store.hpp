// File stores: where simulation output bytes actually live.
//
// The DV itself only needs metadata (names, sizes, quotas; see
// StorageArea), but simulators and analyses in live mode read and write
// real content. MemFileStore backs tests and DES runs; DiskFileStore backs
// the daemon-mode examples under a scratch directory, standing in for the
// parallel file system (Lustre in the paper).
#pragma once

#include "common/status.hpp"
#include "common/types.hpp"

#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace simfs::vfs {

/// Per-file metadata.
struct FileInfo {
  std::string name;
  Bytes size = 0;
  std::uint64_t checksum = 0;  // FNV-1a of content, maintained on put
};

/// Abstract content store keyed by flat file names.
///
/// Thread-safe: implementations serialize internally so DVLib clients and
/// simulator threads can share one store.
class FileStore {
 public:
  virtual ~FileStore() = default;

  /// Creates or replaces a file with the given content.
  [[nodiscard]] virtual Status put(const std::string& name,
                                   std::string content) = 0;

  /// Reads the whole file.
  [[nodiscard]] virtual Result<std::string> read(const std::string& name) const = 0;

  /// True if the file exists.
  [[nodiscard]] virtual bool exists(const std::string& name) const = 0;

  /// Metadata for one file.
  [[nodiscard]] virtual Result<FileInfo> stat(const std::string& name) const = 0;

  /// Deletes a file; kNotFound if absent.
  [[nodiscard]] virtual Status remove(const std::string& name) = 0;

  /// All file names, sorted.
  [[nodiscard]] virtual std::vector<std::string> list() const = 0;

  /// Sum of all file sizes.
  [[nodiscard]] virtual Bytes totalBytes() const = 0;
};

/// In-memory store (tests, DES integration).
class MemFileStore final : public FileStore {
 public:
  [[nodiscard]] Status put(const std::string& name, std::string content) override;
  [[nodiscard]] Result<std::string> read(const std::string& name) const override;
  [[nodiscard]] bool exists(const std::string& name) const override;
  [[nodiscard]] Result<FileInfo> stat(const std::string& name) const override;
  [[nodiscard]] Status remove(const std::string& name) override;
  [[nodiscard]] std::vector<std::string> list() const override;
  [[nodiscard]] Bytes totalBytes() const override;

 private:
  struct Entry {
    std::string content;
    std::uint64_t checksum;
  };
  mutable std::mutex mutex_;
  std::map<std::string, Entry> files_;
};

/// Directory-backed store. File names map to paths under `root`; names may
/// not contain '/' or ".." (flat namespace, as output steps are flat files
/// within a context's storage area).
class DiskFileStore final : public FileStore {
 public:
  /// Creates the root directory if needed.
  explicit DiskFileStore(std::string root);

  [[nodiscard]] Status put(const std::string& name, std::string content) override;
  [[nodiscard]] Result<std::string> read(const std::string& name) const override;
  [[nodiscard]] bool exists(const std::string& name) const override;
  [[nodiscard]] Result<FileInfo> stat(const std::string& name) const override;
  [[nodiscard]] Status remove(const std::string& name) override;
  [[nodiscard]] std::vector<std::string> list() const override;
  [[nodiscard]] Bytes totalBytes() const override;

  [[nodiscard]] const std::string& root() const noexcept { return root_; }

 private:
  [[nodiscard]] Result<std::string> pathFor(const std::string& name) const;

  std::string root_;
  mutable std::mutex mutex_;
};

}  // namespace simfs::vfs
