#include "vfs/file_store.hpp"

#include "common/checksum.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace simfs::vfs {

namespace fs = std::filesystem;

// ---------------------------------------------------------------- MemFileStore

Status MemFileStore::put(const std::string& name, std::string content) {
  std::lock_guard lock(mutex_);
  const auto sum = fnv1a64(content);
  files_[name] = Entry{std::move(content), sum};
  return Status::ok();
}

Result<std::string> MemFileStore::read(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = files_.find(name);
  if (it == files_.end()) return errNotFound("mem: no file " + name);
  return it->second.content;
}

bool MemFileStore::exists(const std::string& name) const {
  std::lock_guard lock(mutex_);
  return files_.count(name) > 0;
}

Result<FileInfo> MemFileStore::stat(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = files_.find(name);
  if (it == files_.end()) return errNotFound("mem: no file " + name);
  return FileInfo{name, it->second.content.size(), it->second.checksum};
}

Status MemFileStore::remove(const std::string& name) {
  std::lock_guard lock(mutex_);
  if (files_.erase(name) == 0) return errNotFound("mem: no file " + name);
  return Status::ok();
}

std::vector<std::string> MemFileStore::list() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [k, _] : files_) out.push_back(k);
  return out;
}

Bytes MemFileStore::totalBytes() const {
  std::lock_guard lock(mutex_);
  Bytes total = 0;
  for (const auto& [_, e] : files_) total += e.content.size();
  return total;
}

// --------------------------------------------------------------- DiskFileStore

DiskFileStore::DiskFileStore(std::string root) : root_(std::move(root)) {
  std::error_code ec;
  fs::create_directories(root_, ec);
}

Result<std::string> DiskFileStore::pathFor(const std::string& name) const {
  if (name.empty() || name.find('/') != std::string::npos ||
      name.find("..") != std::string::npos) {
    return errInvalidArgument("disk: invalid file name: " + name);
  }
  return root_ + "/" + name;
}

Status DiskFileStore::put(const std::string& name, std::string content) {
  auto path = pathFor(name);
  if (!path) return path.status();
  std::lock_guard lock(mutex_);
  std::ofstream out(*path, std::ios::binary | std::ios::trunc);
  if (!out) return errIoError("disk: cannot open for write: " + *path);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) return errIoError("disk: short write: " + *path);
  return Status::ok();
}

Result<std::string> DiskFileStore::read(const std::string& name) const {
  auto path = pathFor(name);
  if (!path) return path.status();
  std::lock_guard lock(mutex_);
  std::ifstream in(*path, std::ios::binary);
  if (!in) return errNotFound("disk: no file " + name);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool DiskFileStore::exists(const std::string& name) const {
  auto path = pathFor(name);
  if (!path) return false;
  std::lock_guard lock(mutex_);
  std::error_code ec;
  return fs::exists(*path, ec);
}

Result<FileInfo> DiskFileStore::stat(const std::string& name) const {
  auto content = read(name);
  if (!content) return content.status();
  return FileInfo{name, content->size(), fnv1a64(*content)};
}

Status DiskFileStore::remove(const std::string& name) {
  auto path = pathFor(name);
  if (!path) return path.status();
  std::lock_guard lock(mutex_);
  std::error_code ec;
  if (!fs::remove(*path, ec)) return errNotFound("disk: no file " + name);
  return Status::ok();
}

std::vector<std::string> DiskFileStore::list() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    if (entry.is_regular_file()) out.push_back(entry.path().filename().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

Bytes DiskFileStore::totalBytes() const {
  std::lock_guard lock(mutex_);
  Bytes total = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    if (entry.is_regular_file()) {
      total += static_cast<Bytes>(entry.file_size(ec));
    }
  }
  return total;
}

}  // namespace simfs::vfs
