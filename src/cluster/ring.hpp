// Cluster membership and context placement for federated DV deployments.
//
// The paper's DV is one coordinating daemon; this layer generalizes the
// serving stack's "which shard owns this context" question to "which
// node, then which shard". A Ring is a static membership table (node id +
// transport endpoint) plus a consistent-hash ring with virtual nodes:
//
//     Ring::ownerOf(context)  ->  the one NodeInfo serving that context
//
// Inside the owning node, the existing ShardedVirtualizer lattice
// ((id - 1) % S) picks the shard — the ring is the top level of the same
// placement function, not a replacement for it. A one-node ring maps
// every context to that node, so the single-node deployment degenerates
// to exactly the pre-federation behavior (bit-identical DES outputs).
//
// Virtual nodes (kDefaultVirtualNodes points per member) smooth the
// assignment so K contexts spread ~K/N per node, and membership changes
// move only ~1/N of the contexts. Membership is static per process in
// this iteration: rings are built at startup (Ring::parse of a
// "id=endpoint,id=endpoint" spec, mirrored by the SIMFS_RING environment
// convention) and exchanged over the wire via msg::MsgType::kRingUpdate;
// the version field lets receivers keep the newest table.
#pragma once

#include "common/status.hpp"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace simfs::cluster {

/// One federation member: a DV daemon process.
struct NodeInfo {
  std::string id;        ///< stable node name (e.g. "dv0")
  std::string endpoint;  ///< transport address (Unix-socket path)

  friend bool operator==(const NodeInfo&, const NodeInfo&) = default;
};

/// Immutable consistent-hash ring over a static membership table.
/// Copyable and cheap to share; an empty ring means "not federated".
class Ring {
 public:
  static constexpr std::size_t kDefaultVirtualNodes = 64;

  Ring() = default;

  /// Builds a ring. Node ids must be non-empty, unique, and free of the
  /// '=' / ',' separators used by the entry encoding; endpoints must be
  /// non-empty.
  [[nodiscard]] static Result<Ring> make(
      std::vector<NodeInfo> nodes, std::uint64_t version = 1,
      std::size_t virtualNodesPerNode = kDefaultVirtualNodes);

  /// Parses a membership spec "id=endpoint,id=endpoint,..." (the format
  /// of the SIMFS_RING environment variable and simfs_daemon --ring).
  [[nodiscard]] static Result<Ring> parse(
      std::string_view spec, std::uint64_t version = 1,
      std::size_t virtualNodesPerNode = kDefaultVirtualNodes);

  /// Rebuilds a ring from encodeEntries() output (wire form).
  [[nodiscard]] static Result<Ring> fromEntries(
      const std::vector<std::string>& entries, std::uint64_t version,
      std::size_t virtualNodesPerNode = kDefaultVirtualNodes);

  [[nodiscard]] bool empty() const noexcept { return nodes_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }
  [[nodiscard]] const std::vector<NodeInfo>& nodes() const noexcept {
    return nodes_;
  }

  /// The node owning `context`. Requires !empty().
  [[nodiscard]] const NodeInfo& ownerOf(std::string_view context) const;

  /// The read-replica set for `context`: the next `count` *distinct*
  /// nodes after the owner in ring-point order (wrapping), owner
  /// excluded. Fewer than `count` entries when the membership is too
  /// small; empty for a one-node ring or count == 0. Every node and
  /// client computes the same set from the same ring — replica
  /// placement needs no extra wire state beyond the replica count.
  [[nodiscard]] std::vector<NodeInfo> replicasOf(std::string_view context,
                                                 std::size_t count) const;

  /// Membership lookup by node id; nullptr if unknown.
  [[nodiscard]] const NodeInfo* find(std::string_view nodeId) const;

  /// Wire form: one "id=endpoint" string per member, membership order.
  [[nodiscard]] std::vector<std::string> encodeEntries() const;

  /// Same membership (ignores version and ring geometry).
  [[nodiscard]] bool sameMembership(const Ring& other) const;

  // --- membership ops (elastic ring) ---------------------------------------
  // Rings stay immutable: each op builds the successor table at
  // `newVersion`. Validation is Ring::make's — duplicate ids, bad
  // separators, or an empty result fail the op instead of minting a ring
  // the rest of the cluster would reject.

  /// This membership plus `node`. Fails on a duplicate id.
  [[nodiscard]] Result<Ring> withNode(NodeInfo node,
                                      std::uint64_t newVersion) const;

  /// This membership minus the member named `nodeId`. Fails when the id
  /// is unknown or the ring would become empty.
  [[nodiscard]] Result<Ring> withoutNode(std::string_view nodeId,
                                         std::uint64_t newVersion) const;

  /// The contexts (from `contexts`) whose owner differs between `from`
  /// and `to` — the handoff work list of a membership change. Empty when
  /// either ring is empty (nothing placed) or the membership is
  /// identical (a pure version bump moves nothing, by construction: the
  /// ring points depend only on node ids).
  [[nodiscard]] static std::vector<std::string> movedContexts(
      const Ring& from, const Ring& to,
      const std::vector<std::string>& contexts);

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t node;  ///< index into nodes_
  };

  std::vector<NodeInfo> nodes_;
  std::vector<Point> points_;  ///< sorted by hash
  std::uint64_t version_ = 0;
};

}  // namespace simfs::cluster
