#include "cluster/ring.hpp"

#include "common/checksum.hpp"
#include "common/strings.hpp"

#include <algorithm>

namespace simfs::cluster {
namespace {

/// splitmix64 finalizer. Raw FNV-1a digests of short, shared-prefix keys
/// ("dv0#0", "dv1#0", ...) cluster enough that whole nodes can end up
/// owning nothing; this scrambles them into a uniform ring position. The
/// function is fixed constants only — stable across builds/processes,
/// which the placement function requires (every node and client must
/// agree byte-for-byte).
std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

/// Ring-point hash for virtual node `vnode` of `id`.
std::uint64_t pointHash(const std::string& id, std::size_t vnode) {
  Fnv1a64Hasher h;
  h.update(id);
  h.update("#");
  h.update(std::to_string(vnode));
  return mix64(h.digest());
}

/// One "id=endpoint" member entry (shared by the spec and wire forms;
/// make() separately rejects separators smuggled into either half).
Result<NodeInfo> parseEntry(const std::string& entry) {
  const auto eq = entry.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == entry.size()) {
    return errInvalidArgument("ring: bad entry (want id=endpoint): " + entry);
  }
  return NodeInfo{entry.substr(0, eq), entry.substr(eq + 1)};
}

}  // namespace

Result<Ring> Ring::make(std::vector<NodeInfo> nodes, std::uint64_t version,
                        std::size_t virtualNodesPerNode) {
  if (nodes.empty()) return errInvalidArgument("ring: no nodes");
  if (virtualNodesPerNode == 0) {
    return errInvalidArgument("ring: need >= 1 virtual node per member");
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto& n = nodes[i];
    if (n.id.empty() || n.endpoint.empty()) {
      return errInvalidArgument("ring: empty node id or endpoint");
    }
    if (n.id.find('=') != std::string::npos ||
        n.id.find(',') != std::string::npos ||
        n.endpoint.find(',') != std::string::npos) {
      return errInvalidArgument("ring: '=' / ',' not allowed in member: " +
                                n.id);
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (nodes[j].id == n.id) {
        return errInvalidArgument("ring: duplicate node id: " + n.id);
      }
    }
  }
  Ring ring;
  ring.nodes_ = std::move(nodes);
  ring.version_ = version;
  ring.points_.reserve(ring.nodes_.size() * virtualNodesPerNode);
  for (std::size_t i = 0; i < ring.nodes_.size(); ++i) {
    for (std::size_t v = 0; v < virtualNodesPerNode; ++v) {
      ring.points_.push_back(
          Point{pointHash(ring.nodes_[i].id, v), static_cast<std::uint32_t>(i)});
    }
  }
  std::sort(ring.points_.begin(), ring.points_.end(),
            [](const Point& a, const Point& b) {
              // Tie-break on node index so colliding hashes still yield
              // one deterministic owner everywhere.
              return a.hash != b.hash ? a.hash < b.hash : a.node < b.node;
            });
  return ring;
}

Result<Ring> Ring::parse(std::string_view spec, std::uint64_t version,
                         std::size_t virtualNodesPerNode) {
  std::vector<NodeInfo> nodes;
  for (const auto& entry : str::split(spec, ',')) {
    if (entry.empty()) continue;
    auto node = parseEntry(entry);
    if (!node) return node.status();
    nodes.push_back(std::move(*node));
  }
  return make(std::move(nodes), version, virtualNodesPerNode);
}

Result<Ring> Ring::fromEntries(const std::vector<std::string>& entries,
                               std::uint64_t version,
                               std::size_t virtualNodesPerNode) {
  // Each wire entry is one member — never re-split on ',' (a forged
  // "x=/a,y=/b" entry must fail make()'s validation, not mint members).
  std::vector<NodeInfo> nodes;
  nodes.reserve(entries.size());
  for (const auto& entry : entries) {
    auto node = parseEntry(entry);
    if (!node) return node.status();
    nodes.push_back(std::move(*node));
  }
  return make(std::move(nodes), version, virtualNodesPerNode);
}

const NodeInfo& Ring::ownerOf(std::string_view context) const {
  SIMFS_CHECK(!points_.empty());
  const std::uint64_t h = mix64(fnv1a64(context));
  // First ring point at or after the context's hash, wrapping past the
  // top of the hash space back to the first point.
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, std::uint64_t value) { return p.hash < value; });
  if (it == points_.end()) it = points_.begin();
  return nodes_[it->node];
}

std::vector<NodeInfo> Ring::replicasOf(std::string_view context,
                                       std::size_t count) const {
  std::vector<NodeInfo> out;
  if (points_.empty() || count == 0 || nodes_.size() < 2) return out;
  const std::uint64_t h = mix64(fnv1a64(context));
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, std::uint64_t value) { return p.hash < value; });
  if (it == points_.end()) it = points_.begin();
  const std::uint32_t owner = it->node;
  // Walk successor points (wrapping) and collect the first `count`
  // distinct non-owner nodes, in successor order. Bounded by one full
  // lap: after points_.size() steps every member has been seen.
  std::vector<bool> seen(nodes_.size(), false);
  seen[owner] = true;
  for (std::size_t step = 0;
       step < points_.size() && out.size() < std::min(count, nodes_.size() - 1);
       ++step) {
    ++it;
    if (it == points_.end()) it = points_.begin();
    if (seen[it->node]) continue;
    seen[it->node] = true;
    out.push_back(nodes_[it->node]);
  }
  return out;
}

const NodeInfo* Ring::find(std::string_view nodeId) const {
  for (const auto& n : nodes_) {
    if (n.id == nodeId) return &n;
  }
  return nullptr;
}

std::vector<std::string> Ring::encodeEntries() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) out.push_back(n.id + "=" + n.endpoint);
  return out;
}

bool Ring::sameMembership(const Ring& other) const {
  return nodes_ == other.nodes_;
}

Result<Ring> Ring::withNode(NodeInfo node, std::uint64_t newVersion) const {
  std::vector<NodeInfo> nodes = nodes_;
  nodes.push_back(std::move(node));
  return make(std::move(nodes), newVersion);
}

Result<Ring> Ring::withoutNode(std::string_view nodeId,
                               std::uint64_t newVersion) const {
  std::vector<NodeInfo> nodes;
  nodes.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    if (n.id != nodeId) nodes.push_back(n);
  }
  if (nodes.size() == nodes_.size()) {
    return errNotFound("ring: no member named: " + std::string(nodeId));
  }
  return make(std::move(nodes), newVersion);
}

std::vector<std::string> Ring::movedContexts(
    const Ring& from, const Ring& to, const std::vector<std::string>& contexts) {
  std::vector<std::string> moved;
  if (from.empty() || to.empty()) return moved;
  for (const auto& ctx : contexts) {
    if (from.ownerOf(ctx).id != to.ownerOf(ctx).id) moved.push_back(ctx);
  }
  return moved;
}

}  // namespace simfs::cluster
