// Zero-copy wire pipeline tests: golden bytes pinning the PR 4 format,
// MessageView in-place decoding (including hostile input), the pooled
// WireBuffer send path, arena-backed message copies, and the transports'
// view-handler delivery contract.
#include "common/rng.hpp"
#include "msg/message.hpp"
#include "msg/transport.hpp"
#include "msg/wire.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace simfs::msg {
namespace {

// --- golden bytes ------------------------------------------------------------
//
// Byte dumps recorded from the PR 4 encoder BEFORE the zero-copy rewrite.
// encode() (now a wrapper over encodeInto) and encodeInto's frame payload
// must reproduce them exactly: the wire format is pinned across the
// refactor, so mixed-version deployments keep interoperating.

// kHello, requestId=7, context="cosmo-5min", intArg=0 (58 bytes)
constexpr unsigned char kGoldenHello[] = {
    0x01,0x00,0x07,0x00,0x00,0x00,0x00,0x00,0x00,0x00,0x00,0x00,
    0x00,0x00,0x00,0x00,0x00,0x00,0x00,0x00,0x00,0x00,0x00,0x00,
    0x00,0x00,0x00,0x00,0x00,0x00,0x00,0x00,0x0a,0x00,0x00,0x00,
    0x63,0x6f,0x73,0x6d,0x6f,0x2d,0x35,0x6d,0x69,0x6e,0x00,0x00,
    0x00,0x00,0x00,0x00,0x00,0x00,0x00,0x00,0x00,0x00};

// kOpenBatchAck, requestId=55, 2 files, ints={1,0,0,1500}, intArg=1,
// intArg2=1500, hops=1, text="ok" (126 bytes)
constexpr unsigned char kGoldenBatchAck[] = {
    0x1a,0x00,0x37,0x00,0x00,0x00,0x00,0x00,0x00,0x00,0x00,0x00,
    0x00,0x00,0x01,0x00,0x00,0x00,0x00,0x00,0x00,0x00,0xdc,0x05,
    0x00,0x00,0x00,0x00,0x00,0x00,0x01,0x00,0x00,0x00,0x00,0x00,
    0x02,0x00,0x00,0x00,0x6f,0x6b,0x02,0x00,0x00,0x00,0x12,0x00,
    0x00,0x00,0x6f,0x75,0x74,0x5f,0x30,0x30,0x30,0x30,0x30,0x30,
    0x30,0x30,0x30,0x31,0x2e,0x73,0x6e,0x63,0x12,0x00,0x00,0x00,
    0x6f,0x75,0x74,0x5f,0x30,0x30,0x30,0x30,0x30,0x30,0x30,0x30,
    0x30,0x32,0x2e,0x73,0x6e,0x63,0x04,0x00,0x00,0x00,0x01,0x00,
    0x00,0x00,0x00,0x00,0x00,0x00,0x00,0x00,0x00,0x00,0x00,0x00,
    0x00,0x00,0x00,0x00,0x00,0x00,0x00,0x00,0x00,0x00,0xdc,0x05,
    0x00,0x00,0x00,0x00,0x00,0x00};

// kRedirect, requestId=41, context="ctx", text="dv2", 1 ring entry,
// intArg=9 (75 bytes)
constexpr unsigned char kGoldenRedirect[] = {
    0x16,0x00,0x29,0x00,0x00,0x00,0x00,0x00,0x00,0x00,0x00,0x00,
    0x00,0x00,0x09,0x00,0x00,0x00,0x00,0x00,0x00,0x00,0x00,0x00,
    0x00,0x00,0x00,0x00,0x00,0x00,0x00,0x00,0x03,0x00,0x00,0x00,
    0x63,0x74,0x78,0x03,0x00,0x00,0x00,0x64,0x76,0x32,0x01,0x00,
    0x00,0x00,0x11,0x00,0x00,0x00,0x64,0x76,0x30,0x3d,0x2f,0x74,
    0x6d,0x70,0x2f,0x64,0x76,0x30,0x2e,0x73,0x6f,0x63,0x6b,0x00,
    0x00,0x00,0x00};

template <std::size_t N>
std::string goldenString(const unsigned char (&bytes)[N]) {
  return std::string(reinterpret_cast<const char*>(bytes), N);
}

Message goldenHello() {
  Message m;
  m.type = MsgType::kHello;
  m.requestId = 7;
  m.context = "cosmo-5min";
  m.intArg = 0;
  return m;
}

Message goldenBatchAck() {
  Message m;
  m.type = MsgType::kOpenBatchAck;
  m.requestId = 55;
  m.files = {"out_0000000001.snc", "out_0000000002.snc"};
  m.ints = {1, 0, 0, 1500};
  m.code = 0;
  m.intArg = 1;
  m.intArg2 = 1500;
  m.hops = 1;
  m.text = "ok";
  return m;
}

Message goldenRedirect() {
  Message m;
  m.type = MsgType::kRedirect;
  m.requestId = 41;
  m.context = "ctx";
  m.text = "dv2";
  m.files = {"dv0=/tmp/dv0.sock"};
  m.intArg = 9;
  m.code = 0;
  return m;
}

TEST(GoldenBytesTest, EncodeReproducesPr4Bytes) {
  EXPECT_EQ(encode(goldenHello()), goldenString(kGoldenHello));
  EXPECT_EQ(encode(goldenBatchAck()), goldenString(kGoldenBatchAck));
  EXPECT_EQ(encode(goldenRedirect()), goldenString(kGoldenRedirect));
}

TEST(GoldenBytesTest, EncodeIntoPayloadMatchesEncodeByteForByte) {
  for (const Message& m :
       {goldenHello(), goldenBatchAck(), goldenRedirect()}) {
    WireBuffer buf;
    encodeInto(m, buf);
    EXPECT_EQ(std::string(buf.payload()), encode(m));
  }
}

TEST(GoldenBytesTest, EncodeIntoFrameHeaderIsLengthPrefix) {
  WireBuffer buf;
  encodeInto(goldenBatchAck(), buf);
  // The frame layout must equal frame(encode(m)) — the old two-copy path.
  EXPECT_EQ(std::string(buf.view()), frame(encode(goldenBatchAck())));
  ASSERT_GE(buf.size(), WireBuffer::kFrameHeaderBytes);
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(buf.data()[i]))
           << (8 * i);
  }
  EXPECT_EQ(len, buf.size() - WireBuffer::kFrameHeaderBytes);
}

TEST(GoldenBytesTest, MessageRefEncodesIdenticallyToMessage) {
  const Message m = goldenBatchAck();
  const std::vector<std::string_view> files(m.files.begin(), m.files.end());
  MessageRef ref;
  ref.type = m.type;
  ref.requestId = m.requestId;
  ref.context = m.context;
  ref.files = files;
  ref.ints = m.ints;
  ref.code = m.code;
  ref.intArg = m.intArg;
  ref.intArg2 = m.intArg2;
  ref.hops = m.hops;
  ref.text = m.text;
  WireBuffer fromRef;
  encodeInto(ref, fromRef);
  WireBuffer fromMsg;
  encodeInto(m, fromMsg);
  EXPECT_EQ(fromRef.view(), fromMsg.view());
  EXPECT_EQ(materialize(ref), m);
}

// --- MessageView -------------------------------------------------------------

TEST(MessageViewTest, DecodesScalarsAndStringsInPlace) {
  const Message m = goldenBatchAck();
  const std::string wire = encode(m);
  const auto view = MessageView::parse(wire);
  ASSERT_TRUE(view.isOk());
  EXPECT_EQ(view->type(), m.type);
  EXPECT_EQ(view->requestId(), m.requestId);
  EXPECT_EQ(view->code(), m.code);
  EXPECT_EQ(view->intArg(), m.intArg);
  EXPECT_EQ(view->intArg2(), m.intArg2);
  EXPECT_EQ(view->hops(), m.hops);
  EXPECT_EQ(view->context(), m.context);
  EXPECT_EQ(view->text(), m.text);
  // In place: the views must point into the wire buffer, not a copy.
  EXPECT_GE(view->text().data(), wire.data());
  EXPECT_LT(view->text().data(), wire.data() + wire.size());
}

TEST(MessageViewTest, LazyIteratorsDecodeListsInPlace) {
  const Message m = goldenBatchAck();
  const std::string wire = encode(m);
  const auto view = MessageView::parse(wire);
  ASSERT_TRUE(view.isOk());
  ASSERT_EQ(view->fileCount(), m.files.size());
  std::size_t i = 0;
  for (auto it = view->filesBegin(); it != view->filesEnd(); ++it, ++i) {
    EXPECT_EQ(*it, m.files[i]);
    EXPECT_GE((*it).data(), wire.data());  // zero-copy
    EXPECT_LT((*it).data(), wire.data() + wire.size());
  }
  EXPECT_EQ(i, m.files.size());
  ASSERT_EQ(view->intCount(), m.ints.size());
  i = 0;
  for (auto it = view->intsBegin(); it != view->intsEnd(); ++it, ++i) {
    EXPECT_EQ(*it, m.ints[i]);
  }
  EXPECT_EQ(view->file0(), m.files[0]);
}

TEST(MessageViewTest, ToMessageMatchesDecode) {
  for (const Message& m :
       {goldenHello(), goldenBatchAck(), goldenRedirect()}) {
    const std::string wire = encode(m);
    const auto view = MessageView::parse(wire);
    ASSERT_TRUE(view.isOk());
    EXPECT_EQ(view->toMessage(), m);
    const auto legacy = decode(wire);
    ASSERT_TRUE(legacy.isOk());
    EXPECT_EQ(view->toMessage(), *legacy);
  }
}

// The ints region has no alignment guarantee: an odd-length context shifts
// it onto arbitrary byte offsets, and the iterator must byte-decode.
TEST(MessageViewTest, MisalignedIntsDecodeCorrectly) {
  for (int pad = 0; pad < 8; ++pad) {
    Message m;
    m.type = MsgType::kOpenBatchAck;
    m.context = std::string(static_cast<std::size_t>(pad), 'x');
    m.ints = {std::int64_t{0x0123456789abcdef}, -1,
              std::numeric_limits<std::int64_t>::min()};
    const std::string wire = encode(m);
    const auto view = MessageView::parse(wire);
    ASSERT_TRUE(view.isOk()) << "pad=" << pad;
    std::vector<std::int64_t> got;
    for (auto it = view->intsBegin(); it != view->intsEnd(); ++it) {
      got.push_back(*it);
    }
    EXPECT_EQ(got, m.ints) << "pad=" << pad;
  }
}

TEST(MessageViewTest, TruncatedFramesFailCleanly) {
  const std::string full = encode(goldenBatchAck());
  for (std::size_t len = 0; len < full.size(); ++len) {
    EXPECT_FALSE(MessageView::parse(full.substr(0, len)).isOk())
        << "len=" << len;
  }
}

TEST(MessageViewTest, TrailingBytesRejected) {
  std::string wire = encode(goldenHello());
  wire.push_back('\0');
  EXPECT_FALSE(MessageView::parse(wire).isOk());
}

TEST(MessageViewTest, ForgedFileCountFailsCleanly) {
  auto wire = encode(goldenRedirect());
  // The file-count u32 sits after the fixed header and the two
  // length-prefixed strings.
  const std::size_t header = 2 + 8 + 4 + 8 + 8 + 2;
  const std::size_t countAt =
      header + (4 + goldenRedirect().context.size()) +
      (4 + goldenRedirect().text.size());
  for (int i = 0; i < 4; ++i) wire[countAt + i] = static_cast<char>(0xFF);
  EXPECT_FALSE(MessageView::parse(wire).isOk());
}

TEST(MessageViewTest, ForgedIntCountFailsCleanly) {
  const Message m = goldenBatchAck();
  auto wire = encode(m);
  const std::size_t countAt = wire.size() - (4 + 8 * m.ints.size());
  for (int i = 0; i < 4; ++i) wire[countAt + i] = static_cast<char>(0xFF);
  EXPECT_FALSE(MessageView::parse(wire).isOk());
}

// Fuzz parity with the owned decoder: every buffer either fails in BOTH
// paths or parses in both with identical materialization.
TEST(MessageViewTest, FuzzedBuffersMatchDecode) {
  simfs::Rng rng(0xF024);
  for (int i = 0; i < 2000; ++i) {
    const auto len = static_cast<std::size_t>(rng.uniformInt(0, 256));
    std::string buf(len, '\0');
    for (auto& c : buf) c = static_cast<char>(rng.uniformInt(0, 255));
    const auto view = MessageView::parse(buf);
    const auto owned = decode(buf);
    ASSERT_EQ(view.isOk(), owned.isOk());
    if (view.isOk()) {
      EXPECT_EQ(view->toMessage(), *owned);
      EXPECT_EQ(encode(view->toMessage()), buf);
    }
  }
}

// --- WireBuffer / BufferPool -------------------------------------------------

TEST(WireBufferTest, SmallFramesStayInline) {
  WireBuffer buf;
  encodeInto(goldenHello(), buf);
  EXPECT_LE(buf.size(), WireBuffer::kInlineCapacity);
  EXPECT_EQ(buf.capacity(), WireBuffer::kInlineCapacity);  // no heap spill
}

TEST(WireBufferTest, LargePayloadsSpillAndSurviveMove) {
  Message m;
  m.type = MsgType::kSimFileClosed;
  m.files = {std::string(4096, 'a')};
  WireBuffer buf;
  encodeInto(m, buf);
  EXPECT_GT(buf.capacity(), WireBuffer::kInlineCapacity);
  const std::string before(buf.view());
  WireBuffer moved = std::move(buf);
  EXPECT_EQ(std::string(moved.view()), before);
  // Inline contents must be copied by moves too.
  WireBuffer small;
  encodeInto(goldenHello(), small);
  const std::string smallBytes(small.view());
  WireBuffer movedSmall = std::move(small);
  EXPECT_EQ(std::string(movedSmall.view()), smallBytes);
}

TEST(WireBufferTest, ShrinkDropsOversizedHeap) {
  Message m;
  m.type = MsgType::kSimFileClosed;
  m.files = {std::string(1 << 20, 'a')};
  WireBuffer buf;
  encodeInto(m, buf);
  EXPECT_GT(buf.capacity(), 64u * 1024);
  buf.shrink(64 * 1024);
  EXPECT_EQ(buf.capacity(), WireBuffer::kInlineCapacity);
  EXPECT_EQ(buf.size(), 0u);
}

TEST(BufferPoolTest, ReusesReleasedBuffers) {
  BufferPool pool(4, 64 * 1024);
  WireBuffer a = pool.acquire();
  encodeInto(goldenBatchAck(), a);
  pool.release(std::move(a));
  EXPECT_EQ(pool.retained(), 1u);
  WireBuffer b = pool.acquire();
  EXPECT_EQ(pool.retained(), 0u);
  EXPECT_EQ(b.size(), 0u);  // released buffers come back cleared
}

TEST(BufferPoolTest, CapsRetainedBuffers) {
  BufferPool pool(2, 64 * 1024);
  for (int i = 0; i < 5; ++i) pool.release(WireBuffer());
  EXPECT_EQ(pool.retained(), 2u);
}

/// Pool reuse/lifetime under concurrency (runs in the TSan CI job):
/// many threads acquire, fill, and release buffers; contents must never
/// tear and the pool must stay bounded.
TEST(BufferPoolTest, ConcurrentAcquireReleaseIsSafe) {
  BufferPool pool(8, 64 * 1024);
  std::atomic<bool> fail{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&pool, &fail, t] {
      Message m;
      m.type = MsgType::kOpenReq;
      m.files = {"out_0000000001.snc"};
      m.intArg = t;
      for (int i = 0; i < 2000; ++i) {
        WireBuffer buf = pool.acquire();
        encodeInto(m, buf);
        const auto view = MessageView::parse(buf.payload());
        if (!view.isOk() || view->intArg() != t) fail.store(true);
        pool.release(std::move(buf));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(fail.load());
  EXPECT_LE(pool.retained(), 8u);
}

// --- Arena -------------------------------------------------------------------

TEST(ArenaTest, CopiesViewsIntoStableStorage) {
  const Message m = goldenBatchAck();
  const std::string wire = encode(m);
  Arena arena(256);  // tiny blocks: force multi-block operation
  MessageRef copy;
  {
    // The source buffer dies before the copy is read — the arena copy
    // must be self-contained.
    std::string ephemeral = wire;
    const auto view = MessageView::parse(ephemeral);
    ASSERT_TRUE(view.isOk());
    copy = copyToArena(*view, arena);
    std::fill(ephemeral.begin(), ephemeral.end(), '\0');
  }
  EXPECT_EQ(materialize(copy), m);
}

TEST(ArenaTest, ResetRecyclesBlocksWithoutFreeing) {
  Arena arena(128);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 32; ++i) {
      (void)arena.copyString("some moderately long payload string");
    }
    const std::size_t blocksAfterFirstRound = arena.blockCount();
    arena.reset();
    EXPECT_EQ(arena.blockCount(), blocksAfterFirstRound);  // blocks kept
  }
}

TEST(ArenaTest, ResetDropsBlocksBeyondRetainBudget) {
  // Burst hygiene: a flood of oversized copies must not pin its peak
  // footprint forever — reset() frees blocks past the retain budget.
  Arena arena(/*blockBytes=*/128, /*maxRetainBytes=*/256);
  (void)arena.copyString(std::string(100, 'a'));   // block 0 (128)
  (void)arena.copyString(std::string(100, 'b'));   // block 1 (128)
  (void)arena.copyString(std::string(1000, 'c'));  // oversize block
  EXPECT_EQ(arena.blockCount(), 3u);
  arena.reset();
  EXPECT_EQ(arena.blockCount(), 2u);  // 128 + 128 <= 256; oversize freed
  // The retained blocks still serve post-reset traffic.
  EXPECT_EQ(arena.copyString("warm"), "warm");
}

TEST(ArenaTest, OversizeAllocationsGetDedicatedBlocks) {
  Arena arena(64);
  const auto big = arena.copyString(std::string(1000, 'x'));
  EXPECT_EQ(big.size(), 1000u);
  const auto small = arena.copyString("tail");
  EXPECT_EQ(small, "tail");
}

TEST(ArenaTest, SpansAreAligned) {
  Arena arena(256);
  (void)arena.copyString("x");  // misalign the bump cursor
  const auto ints = arena.allocSpan<std::int64_t>(4);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(ints.data()) % alignof(std::int64_t),
            0u);
}

// --- transport view delivery -------------------------------------------------

TEST(ViewHandlerTest, InProcDeliversViewsBothWays) {
  auto [a, b] = makeInProcPair();
  std::vector<Message> atB;
  b->setViewHandler([&](const MessageView& v) { atB.push_back(v.toMessage()); });
  const Message m = goldenBatchAck();
  ASSERT_TRUE(a->send(m).isOk());
  ASSERT_EQ(atB.size(), 1u);
  EXPECT_EQ(atB[0], m);
  // MessageRef sends land identically.
  MessageRef ref;
  ref.type = MsgType::kReleaseAck;
  ref.requestId = 9;
  ASSERT_TRUE(a->send(ref).isOk());
  ASSERT_EQ(atB.size(), 2u);
  EXPECT_EQ(atB[1].type, MsgType::kReleaseAck);
  EXPECT_EQ(atB[1].requestId, 9u);
}

TEST(ViewHandlerTest, PreHandlerBacklogReplaysToViewHandler) {
  auto [a, b] = makeInProcPair();
  ASSERT_TRUE(a->send(goldenHello()).isOk());
  ASSERT_TRUE(a->send(goldenRedirect()).isOk());
  std::vector<Message> atB;
  b->setViewHandler([&](const MessageView& v) { atB.push_back(v.toMessage()); });
  ASSERT_EQ(atB.size(), 2u);
  EXPECT_EQ(atB[0], goldenHello());
  EXPECT_EQ(atB[1], goldenRedirect());
}

/// A handler that replies inline over a second in-proc pair exercises the
/// nested scratch-buffer delivery (outer view must stay intact).
TEST(ViewHandlerTest, NestedInlineDeliveryKeepsOuterViewValid) {
  auto [a, b] = makeInProcPair();
  auto [c, d] = makeInProcPair();
  std::vector<Message> atD;
  d->setViewHandler([&](const MessageView& v) { atD.push_back(v.toMessage()); });
  std::vector<Message> atB;
  b->setViewHandler([&](const MessageView& v) {
    // Nested send BEFORE reading the outer view: if deliveries shared one
    // scratch buffer this would corrupt `v`.
    MessageRef nested;
    nested.type = MsgType::kCancelAck;
    nested.requestId = v.requestId() + 1;
    ASSERT_TRUE(c->send(nested).isOk());
    atB.push_back(v.toMessage());
  });
  const Message m = goldenBatchAck();
  ASSERT_TRUE(a->send(m).isOk());
  ASSERT_EQ(atB.size(), 1u);
  EXPECT_EQ(atB[0], m);
  ASSERT_EQ(atD.size(), 1u);
  EXPECT_EQ(atD[0].requestId, m.requestId + 1);
}

TEST(ViewHandlerTest, SocketDeliversViewsOverReceiveBuffer) {
  const std::string path =
      "/tmp/simfs_wire_test_" + std::to_string(::getpid()) + ".sock";
  UnixSocketServer server(path);
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::unique_ptr<Transport>> serverConns;
  std::vector<Message> received;
  ASSERT_TRUE(server
                  .start([&](std::unique_ptr<Transport> conn) {
                    conn->setViewHandler([&](const MessageView& v) {
                      std::lock_guard lock(mu);
                      received.push_back(v.toMessage());
                      cv.notify_all();
                    });
                    std::lock_guard lock(mu);
                    serverConns.push_back(std::move(conn));
                  })
                  .isOk());
  auto client = unixSocketConnect(path);
  ASSERT_TRUE(client.isOk());
  const Message m = goldenBatchAck();
  ASSERT_TRUE((*client)->send(m).isOk());
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                            [&] { return !received.empty(); }));
    EXPECT_EQ(received[0], m);
  }
  (*client)->close();
  server.stop();
}

}  // namespace
}  // namespace simfs::msg
