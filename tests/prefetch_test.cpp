// Unit tests for the prefetch agent — Sec. IV formulas pinned to
// hand-computed values from the paper's worked examples (Figs. 7-10).
#include "prefetch/agent.hpp"

#include <gtest/gtest.h>

namespace simfs::prefetch {
namespace {

using simmodel::ContextConfig;
using simmodel::PerfModel;
using simmodel::StepGeometry;

/// The textbook configuration of Figs. 7-9: delta_d=1, delta_r=4,
/// alpha=2, tau_sim=1, tau_cli=1/2 (time unit = 1 second here).
ContextConfig paperConfig() {
  ContextConfig cfg;
  cfg.name = "paper";
  cfg.geometry = StepGeometry(1, 4, 0);
  cfg.sMax = 8;
  cfg.perf = PerfModel(1, vtime::kSecond, 2 * vtime::kSecond);
  return cfg;
}

TEST(AgentDetectionTest, ForwardDetectedAfterTwoStridedAccesses) {
  const auto cfg = paperConfig();
  PrefetchAgent agent(cfg);
  EXPECT_FALSE(agent.patternDetected());
  (void)agent.onAccess(1, 0, true, false);
  EXPECT_FALSE(agent.patternDetected());
  (void)agent.onAccess(2, vtime::kSecond, true, false);
  EXPECT_TRUE(agent.patternDetected());
  EXPECT_EQ(agent.direction(), Direction::kForward);
  EXPECT_EQ(agent.stride(), 1);
}

TEST(AgentDetectionTest, BackwardAndStride) {
  const auto cfg = paperConfig();
  PrefetchAgent agent(cfg);
  (void)agent.onAccess(20, 0, true, false);
  (void)agent.onAccess(17, vtime::kSecond, true, false);
  EXPECT_EQ(agent.direction(), Direction::kBackward);
  EXPECT_EQ(agent.stride(), 3);
}

TEST(AgentDetectionTest, DirectionChangeAbandonsTrajectory) {
  const auto cfg = paperConfig();
  PrefetchAgent agent(cfg);
  (void)agent.onAccess(1, 0, true, false);
  (void)agent.onAccess(2, 1, true, false);
  const auto actions = agent.onAccess(1, 2, true, false);
  EXPECT_TRUE(actions.trajectoryAbandoned);
  EXPECT_EQ(agent.direction(), Direction::kBackward);
}

TEST(AgentDetectionTest, RepeatedAccessKeepsPattern) {
  const auto cfg = paperConfig();
  PrefetchAgent agent(cfg);
  (void)agent.onAccess(1, 0, true, false);
  (void)agent.onAccess(2, 1, true, false);
  const auto actions = agent.onAccess(2, 2, true, false);
  EXPECT_FALSE(actions.trajectoryAbandoned);
  EXPECT_EQ(agent.direction(), Direction::kForward);
}

TEST(AgentTimingTest, TauCliMeasuredOnlyBetweenHits) {
  const auto cfg = paperConfig();
  PrefetchAgent agent(cfg);
  (void)agent.onAccess(1, 0, /*hit=*/false, true);
  (void)agent.onAccess(2, 10 * vtime::kSecond, /*hit=*/true, false);
  // Previous access stalled: no measurement yet.
  EXPECT_DOUBLE_EQ(agent.tauCliEstimate(), 0.0);
  (void)agent.onAccess(3, 10 * vtime::kSecond + vtime::kSecond / 2, true, false);
  EXPECT_DOUBLE_EQ(agent.tauCliEstimate(),
                   static_cast<double>(vtime::kSecond) / 2);
}

TEST(AgentFormulaTest, ForwardResimLengthMatchesPaperExample) {
  // alpha=2, tau_sim=1, k=1, tau_cli=1/2: per-step = max(1, 0.5) = 1;
  // n >= ceil(2/1 + 2) * 1 = 4, plus one restart interval, rounded up to
  // a multiple of 4 -> 8.
  const auto cfg = paperConfig();
  PrefetchAgent agent(cfg);
  (void)agent.onAccess(1, 0, true, false);
  (void)agent.onAccess(2, vtime::kSecond / 2, true, false);
  (void)agent.onAccess(3, vtime::kSecond, true, false);
  EXPECT_EQ(agent.resimLength(), 8);
  // Masking distance L = ceil(2 / 1) * 1 = 2.
  EXPECT_EQ(agent.maskingDistance(), 2);
}

TEST(AgentFormulaTest, ForwardSoptMatchesPaperExample) {
  // s_opt = ceil(k * tau_sim / tau_cli) = ceil(1 / 0.5) = 2 (Fig. 9).
  const auto cfg = paperConfig();
  PrefetchAgent agent(cfg);
  (void)agent.onAccess(1, 0, true, false);
  (void)agent.onAccess(2, vtime::kSecond / 2, true, false);
  EXPECT_EQ(agent.targetParallelSims(), 2);
}

TEST(AgentFormulaTest, UnknownClientSpeedUsesAllSlots) {
  const auto cfg = paperConfig();
  PrefetchAgent agent(cfg);
  (void)agent.onAccess(1, 0, false, true);
  (void)agent.onAccess(2, 5, false, true);
  EXPECT_EQ(agent.targetParallelSims(), cfg.sMax);
}

TEST(AgentFormulaTest, BackwardSlowAnalysisLength) {
  // Backward with analysis slower than sim: tau_cli=4s > k*tau_sim=1s;
  // n = k*alpha/(tau_cli - k*tau_sim) = 2/(4-1) = 0.67 -> restart multiple 4.
  const auto cfg = paperConfig();
  PrefetchAgent agent(cfg);
  (void)agent.onAccess(20, 0, true, false);
  (void)agent.onAccess(19, 4 * vtime::kSecond, true, false);
  (void)agent.onAccess(18, 8 * vtime::kSecond, true, false);
  EXPECT_EQ(agent.direction(), Direction::kBackward);
  EXPECT_EQ(agent.resimLength(), 4);
}

TEST(AgentFormulaTest, BackwardFastAnalysisParallelism) {
  // Fig. 10: alpha=2, tau_sim=1, tau_cli=1/2, n=4:
  // s = ceil(k*alpha/(n*tau_cli) + k*tau_sim/tau_cli) = ceil(1 + 2) = 3.
  const auto cfg = paperConfig();
  PrefetchAgent agent(cfg);
  (void)agent.onAccess(28, 0, true, false);
  (void)agent.onAccess(27, vtime::kSecond / 2, true, false);
  EXPECT_EQ(agent.resimLength(), 4);
  EXPECT_EQ(agent.targetParallelSims(), 3);
}

TEST(AgentLaunchTest, ForwardPrefetchTriggersNearFrontier) {
  const auto cfg = paperConfig();
  PrefetchAgent agent(cfg);
  // Recovery job for the first interval reported by the DV.
  agent.onJobLaunched(0, 4, false);
  (void)agent.onAccess(0, 0, false, true);
  (void)agent.onAccess(1, vtime::kSecond / 2, true, false);
  (void)agent.onAccess(2, vtime::kSecond, true, false);
  // Frontier 4, L=2: at step >= 2 prefetch fires, covering [5, ...].
  const auto actions = agent.onAccess(3, 3 * vtime::kSecond / 2, true, false);
  ASSERT_FALSE(actions.launches.empty());
  EXPECT_EQ(actions.launches[0].startStep, 5);
  // s_opt = 2 parallel sims -> each covers one restart interval (Fig. 9).
  ASSERT_EQ(actions.launches.size(), 2u);
  EXPECT_EQ(actions.launches[0].stopStep, 8);
  EXPECT_EQ(actions.launches[1].startStep, 9);
  EXPECT_EQ(actions.launches[1].stopStep, 12);
}

TEST(AgentLaunchTest, NoLaunchFarFromFrontier) {
  const auto cfg = paperConfig();
  PrefetchAgent agent(cfg);
  agent.onJobLaunched(0, 100, false);
  (void)agent.onAccess(0, 0, true, false);
  (void)agent.onAccess(1, 1, true, false);
  const auto actions = agent.onAccess(2, 2, true, false);
  EXPECT_TRUE(actions.launches.empty());  // 98 steps of slack > L
}

TEST(AgentLaunchTest, BackwardPrefetchCoversEarlierBlocks) {
  const auto cfg = paperConfig();
  PrefetchAgent agent(cfg);
  agent.onJobLaunched(24, 28, false);
  (void)agent.onAccess(28, 0, false, true);
  (void)agent.onAccess(27, vtime::kSecond / 2, true, false);
  (void)agent.onAccess(26, vtime::kSecond, true, false);
  const auto actions = agent.onAccess(25, 3 * vtime::kSecond / 2, true, false);
  ASSERT_FALSE(actions.launches.empty());
  // Blocks below 24, highest first.
  EXPECT_EQ(actions.launches[0].stopStep, 23);
  EXPECT_EQ(actions.launches[0].startStep, 23 - agent.resimLength() + 1);
  if (actions.launches.size() > 1) {
    EXPECT_LT(actions.launches[1].stopStep, actions.launches[0].startStep);
  }
}

TEST(AgentLaunchTest, BackwardStopsAtZero) {
  const auto cfg = paperConfig();
  PrefetchAgent agent(cfg);
  agent.onJobLaunched(0, 4, false);
  (void)agent.onAccess(4, 0, true, false);
  (void)agent.onAccess(3, 1, true, false);
  const auto actions = agent.onAccess(2, 2, true, false);
  EXPECT_TRUE(actions.launches.empty());  // nothing below step 0
}

TEST(AgentLaunchTest, DoublingRampLimitsFirstBatch) {
  auto cfg = paperConfig();
  cfg.doublingRampUp = true;
  PrefetchAgent agent(cfg);
  agent.onJobLaunched(0, 4, false);
  (void)agent.onAccess(0, 0, false, true);
  (void)agent.onAccess(1, 1, false, true);  // stalls: tau_cli unknown
  const auto actions = agent.onAccess(2, 2, false, true);
  // Without ramp it would ask for s_max; the ramp starts at 1.
  ASSERT_EQ(actions.launches.size(), 1u);
}

TEST(AgentPollutionTest, PrefetchedStepMissingSignalsPollution) {
  const auto cfg = paperConfig();
  PrefetchAgent agent(cfg);
  agent.onJobLaunched(8, 11, /*prefetched=*/true);
  const auto actions = agent.onAccess(9, 0, /*hit=*/false, /*servedBySim=*/false);
  EXPECT_TRUE(actions.pollutionDetected);
}

TEST(AgentPollutionTest, PrefetchedStepStillPendingIsNotPollution) {
  const auto cfg = paperConfig();
  PrefetchAgent agent(cfg);
  agent.onJobLaunched(8, 11, /*prefetched=*/true);
  const auto actions = agent.onAccess(9, 0, /*hit=*/false, /*servedBySim=*/true);
  EXPECT_FALSE(actions.pollutionDetected);
}

TEST(AgentPollutionTest, PrefetchedStepHitIsFine) {
  const auto cfg = paperConfig();
  PrefetchAgent agent(cfg);
  agent.onJobLaunched(8, 11, /*prefetched=*/true);
  const auto actions = agent.onAccess(9, 0, /*hit=*/true, false);
  EXPECT_FALSE(actions.pollutionDetected);
}

TEST(AgentLevelTest, StrategyOneRaisesLevelWhileItHelps) {
  ContextConfig cfg = paperConfig();
  cfg.perf = PerfModel::strongScaling(1, 4 * vtime::kSecond, 2 * vtime::kSecond,
                                      2, 1.0);
  PrefetchAgent agent(cfg);
  EXPECT_EQ(agent.parallelismLevel(), 0);
  // Fast client (tau_cli = 1s < tau_sim = 4s) raises the level once per
  // measured access until the ladder tops out.
  (void)agent.onAccess(1, 0, true, false);
  (void)agent.onAccess(2, vtime::kSecond, true, false);
  EXPECT_EQ(agent.parallelismLevel(), 1);
  (void)agent.onAccess(3, 2 * vtime::kSecond, true, false);
  EXPECT_EQ(agent.parallelismLevel(), 2);
  (void)agent.onAccess(4, 3 * vtime::kSecond, true, false);
  EXPECT_EQ(agent.parallelismLevel(), 2);  // maxLevel reached
}

TEST(AgentObservationTest, EmaTracksRestartLatency) {
  const auto cfg = paperConfig();
  PrefetchAgent agent(cfg);
  EXPECT_DOUBLE_EQ(agent.alphaEstimate(), 2.0 * vtime::kSecond);  // model prior
  agent.observeRestartLatency(10 * vtime::kSecond);
  EXPECT_DOUBLE_EQ(agent.alphaEstimate(), 10.0 * vtime::kSecond);
  agent.observeRestartLatency(20 * vtime::kSecond);
  EXPECT_DOUBLE_EQ(agent.alphaEstimate(), 15.0 * vtime::kSecond);  // EMA 0.5
}

TEST(AgentObservationTest, ResetKeepsSystemObservations) {
  const auto cfg = paperConfig();
  PrefetchAgent agent(cfg);
  agent.observeRestartLatency(10 * vtime::kSecond);
  (void)agent.onAccess(1, 0, true, false);
  (void)agent.onAccess(2, 1, true, false);
  agent.reset();
  EXPECT_FALSE(agent.patternDetected());
  EXPECT_DOUBLE_EQ(agent.alphaEstimate(), 10.0 * vtime::kSecond);
}

TEST(AgentConfigTest, PrefetchDisabledNeverLaunches) {
  auto cfg = paperConfig();
  cfg.prefetchEnabled = false;
  PrefetchAgent agent(cfg);
  agent.onJobLaunched(0, 4, false);
  (void)agent.onAccess(0, 0, false, true);
  (void)agent.onAccess(1, 1, true, false);
  const auto actions = agent.onAccess(2, 2, true, false);
  EXPECT_TRUE(actions.launches.empty());
}

}  // namespace
}  // namespace simfs::prefetch
